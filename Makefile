GO ?= go

.PHONY: all build test race bench verify fmt vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector runs for the concurrency-sensitive packages: the sharded
# lock table and its block-chain lease pools.
race:
	$(GO) test -race ./internal/lockmgr ./internal/memblock

bench:
	$(GO) test -run xxx -bench BenchmarkLockScalability -benchtime 1s .

# verify is the tier-1 gate (see ROADMAP.md): formatting, vet, build, the
# full test suite, and the race-detector pass over lockmgr/memblock.
verify: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
