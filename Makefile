GO ?= go

.PHONY: all build test race bench bench-lock bench-engine bench-obs bench-commit bench-read obs-demo verify fmt vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector runs for the concurrency-sensitive packages: the sharded
# lock table, its block-chain lease pools, the engine facade that exposes
# the latch-free snapshot path, the lock-free observability primitives
# (striped histograms, decision log), and the event ring.
race:
	$(GO) test -race ./internal/lockmgr ./internal/memblock ./internal/engine \
		./internal/obs ./internal/trace

bench: bench-lock

# bench-lock measures raw lock-table scalability (grant/release fast path
# across goroutine counts). BENCH_JSON captures one record per run so
# before/after numbers can be checked in (BENCH_LOCKSCALE_*.json).
bench-lock:
	BENCH_JSON=$${BENCH_JSON:-BENCH_LOCKSCALE.json} \
		$(GO) test -run xxx -bench BenchmarkLockScalability -benchtime 1s .

# bench-engine measures end-to-end engine commit throughput with the
# control plane (deadlock detector + timeout sweep) off and on at the
# simulator cadence. The detector-on/off gap is the cost of the control
# plane; BENCH_ENGINE_*.json records the before/after evidence.
bench-engine:
	BENCH_JSON=$${BENCH_JSON:-BENCH_ENGINE.json} \
		$(GO) test -run xxx -bench BenchmarkEngineThroughput -benchtime 1s .

# bench-obs measures the cost of the always-on observability layer on the
# engine hot path (detector on): wall-clock sampling disabled vs the
# default 1/64 stride, work-for-work on identical iteration counts. The
# acceptance bound is overhead below 3% of commits/sec;
# BENCH_OBS_OVERHEAD.json records the evidence.
bench-obs:
	BENCH_JSON=$${BENCH_JSON:-BENCH_OBS_OVERHEAD.json} \
		$(GO) test -run xxx -bench BenchmarkObsOverhead -benchtime 1s .

# bench-commit measures the transaction commit path: short transactions
# (2/8/64 locks, disjoint and hot-key) acquired and then released via
# ReleaseAll, reporting commits/sec and shard-latch acquisitions per
# commit. BENCH_COMMIT_BASELINE.json holds the full-sweep release path
# (3×shards latches per commit); BENCH_COMMIT_RELEASEPATH.json holds the
# touched-shard walk (O(shards touched)).
bench-commit:
	BENCH_JSON=$${BENCH_JSON:-BENCH_COMMIT.json} \
		$(GO) test -run xxx -bench BenchmarkCommitThroughput -benchtime 1s .

# bench-read measures the read-mostly hot-set shape (90% S/IS on a shared
# hot set, 10% X on a disjoint one) — the regime the latch-free admission
# fast path targets. BENCH_READPATH_BASELINE.json holds the pre-fast-path
# numbers (every grant serializes on its header's shard latch);
# BENCH_READPATH_FASTPATH.json holds the grant-word CAS admission numbers.
bench-read:
	BENCH_JSON=$${BENCH_JSON:-BENCH_READPATH.json} \
		$(GO) test -run xxx -bench 'BenchmarkLockScalability/readmostly' -benchtime 1s .

# obs-demo runs the workbench surge workload with the HTTP surface up and
# curls it mid-run: /metrics must serve lock-wait histogram buckets and
# per-shard latch-wait counters; /debug/tuner must serve decision records.
obs-demo: build
	@set -e; \
	$(GO) run ./cmd/workbench -clients 60 -surge-to 200 -surge-at 120 \
		-ticks 600 -chart=false -http 127.0.0.1:8372 -serve-for 6s & \
	pid=$$!; sleep 3; \
	curl -sf http://127.0.0.1:8372/metrics | grep -m1 lockmem_lock_wait_seconds_bucket; \
	curl -sf http://127.0.0.1:8372/metrics | grep -m1 'lockmem_latch_waits_total{shard="0"}'; \
	curl -sf 'http://127.0.0.1:8372/debug/tuner?kind=tuning-pass&n=1'; \
	curl -sf 'http://127.0.0.1:8372/debug/events?n=3' >/dev/null; \
	echo "obs-demo: endpoints OK"; \
	wait $$pid

# verify is the tier-1 gate (see ROADMAP.md): formatting, vet, build, the
# full test suite, and the race-detector pass over the concurrency-
# sensitive packages.
verify: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
