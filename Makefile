GO ?= go

.PHONY: all build test race bench bench-lock bench-engine bench-obs bench-obs-profiler bench-commit bench-read bench-latch bench-throttle bench-diff smoke-read smoke-commit smoke-profile smoke-latch smoke-throttle obs-demo verify fmt vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector runs for the concurrency-sensitive packages: the sharded
# lock table, its spin-then-park shard latch, its block-chain lease pools,
# the engine facade that exposes the latch-free snapshot path, the
# lock-free observability primitives (striped histograms, decision log),
# the event ring, and the transaction layer (optimistic read tokens
# validated against concurrent writers).
race:
	$(GO) test -race ./internal/latch ./internal/lockmgr ./internal/memblock \
		./internal/engine ./internal/obs ./internal/trace ./internal/txn

bench: bench-lock

# bench-lock measures raw lock-table scalability (grant/release fast path
# across goroutine counts). BENCH_JSON captures one record per run so
# before/after numbers can be checked in (BENCH_LOCKSCALE_*.json).
bench-lock:
	BENCH_JSON=$${BENCH_JSON:-BENCH_LOCKSCALE.json} \
		$(GO) test -run xxx -bench BenchmarkLockScalability -benchtime 1s .

# bench-engine measures end-to-end engine commit throughput with the
# control plane (deadlock detector + timeout sweep) off and on at the
# simulator cadence. The detector-on/off gap is the cost of the control
# plane; BENCH_ENGINE_*.json records the before/after evidence.
bench-engine:
	BENCH_JSON=$${BENCH_JSON:-BENCH_ENGINE.json} \
		$(GO) test -run xxx -bench BenchmarkEngineThroughput -benchtime 1s .

# bench-obs measures the cost of the always-on observability layer on the
# engine hot path (detector on): wall-clock sampling disabled vs the
# default 1/64 stride, work-for-work on identical iteration counts. The
# acceptance bound is overhead below 3% of commits/sec;
# BENCH_OBS_OVERHEAD.json records the evidence.
bench-obs:
	BENCH_JSON=$${BENCH_JSON:-BENCH_OBS_OVERHEAD.json} \
		$(GO) test -run xxx -bench BenchmarkObsOverhead -benchtime 1s .

# bench-obs-profiler measures the contention profiler's cost on the engine
# hot path: profiler off (ProfileDisabled, wall-clock sampling off) vs the
# default-on configuration, work-for-work on identical iteration counts,
# on the hotkey and readmostly shapes at 16 goroutines. The pinned
# iteration count keeps each leg long enough for the best-of-three pairing
# to see past scheduler noise on small machines. The acceptance bound is
# overhead below 3% of commits/sec; BENCH_OBS_PROFILER.json records the
# evidence.
bench-obs-profiler:
	BENCH_JSON=$${BENCH_JSON:-BENCH_OBS_PROFILER.json} \
		$(GO) test -run xxx -bench BenchmarkObsProfiler -benchtime 120000x .

# bench-commit measures the transaction commit path: short transactions
# (2/8/64 locks, disjoint and hot-key, plus the commitstorm shape — 2
# locks confined to 4 hot shards at 1/16/64 goroutines) acquired and then
# released via ReleaseAll, reporting commits/sec and shard-latch
# acquisitions per commit. BENCH_COMMIT_BASELINE.json holds the
# full-sweep release path (3×shards latches per commit);
# BENCH_COMMIT_RELEASEPATH.json the touched-shard walk (O(shards
# touched)); BENCH_COMMIT_GROUPRELEASE.json the group-release path
# (staged batches + flush leaders on storming shards).
bench-commit:
	BENCH_JSON=$${BENCH_JSON:-BENCH_COMMIT.json} \
		$(GO) test -run xxx -bench BenchmarkCommitThroughput -benchtime 1s .

# bench-read measures the read-path shapes: readmostly (90% S/IS on a
# shared hot set, 10% X on a disjoint one — the CAS fast path's regime) and
# dss (≥99% S scans served by zero-CAS optimistic tokens — the seqlock
# tier's regime). BENCH_READPATH_BASELINE.json holds the pre-fast-path
# numbers (every grant serializes on its header's shard latch);
# BENCH_READPATH_FASTPATH.json the grant-word CAS admission numbers;
# BENCH_READPATH_OPTIMISTIC.json the token-tier numbers.
bench-read:
	BENCH_JSON=$${BENCH_JSON:-BENCH_READPATH_OPTIMISTIC.json} \
		$(GO) test -run xxx -bench 'BenchmarkLockScalability/(readmostly|dss)' -benchtime 1s .

# bench-latch runs the shard-latch A/B (hotkey + commitstorm + readmostly
# at 16/64 goroutines) twice: once with a fixed 64-spin budget (the naive
# fixed-spin latch, LATCH_SPIN=64) into BENCH_LATCH_BASELINE.json, once
# under the adaptive controller (LATCH_SPIN unset) into
# BENCH_LATCH_ADAPTIVE.json. The pinned iteration count means both legs do
# identical work (work-for-work comparison, no go-bench sizing probes),
# and -count 3 emits three independent runs per shape — contended waits on
# a loaded box are scheduler-quantized and run-to-run noisy, so compare
# pooled means (sum of mean_wait_ns×contended over sum of contended), not
# single rows. EXPERIMENTS.md records the acceptance numbers.
bench-latch:
	rm -f BENCH_LATCH_BASELINE.json BENCH_LATCH_ADAPTIVE.json
	BENCH_JSON=BENCH_LATCH_BASELINE.json LATCH_SPIN=64 \
		$(GO) test -run xxx -bench BenchmarkLatchContention -benchtime 3000000x -count 3 .
	BENCH_JSON=BENCH_LATCH_ADAPTIVE.json \
		$(GO) test -run xxx -bench BenchmarkLatchContention -benchtime 3000000x -count 3 .

# bench-throttle runs the admission-throttle collapse-curve A/B: one hot
# exclusive lock swept over g=16..256 with the control plane (timeout
# sweep, deadlock detector, throttle retune) ticking concurrently.
# BENCH_THROTTLE_BASELINE.json is the throttle-off leg (THROTTLE=0): past
# the knee, each grant pays FIFO removal, wakeup fan-out, and wait-graph
# export proportional to the live queue, and throughput collapses.
# BENCH_THROTTLE_LIMITED.json is the fixed-ceiling leg (THROTTLE=8): the
# excess parks in the culled set and the curve holds near its peak (the
# acceptance bound is ≥90% of peak at g=256). Pinned iterations keep both
# legs work-for-work comparable; benchdiff -pct gates regressions.
bench-throttle:
	rm -f BENCH_THROTTLE_BASELINE.json BENCH_THROTTLE_LIMITED.json
	BENCH_JSON=BENCH_THROTTLE_BASELINE.json THROTTLE=0 \
		$(GO) test -run xxx -bench BenchmarkHotkeySweep -benchtime 20000x .
	BENCH_JSON=BENCH_THROTTLE_LIMITED.json THROTTLE=8 \
		$(GO) test -run xxx -bench BenchmarkHotkeySweep -benchtime 20000x .

# bench-diff compares two BENCH_*.json trajectory files produced by the
# benchmarks above, printing per-shape deltas (grants/sec, commits/sec,
# hit rates). Usage: make bench-diff OLD=BENCH_READPATH_FASTPATH.json \
# NEW=BENCH_READPATH_OPTIMISTIC.json
bench-diff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# smoke-read is the -short gate run of the read bench: one iteration per
# shape, no JSON (the b.N==1 probe never emits), just proof the dss/
# readmostly harnesses still grant and validate.
smoke-read:
	$(GO) test -run xxx -bench 'BenchmarkLockScalability/(readmostly|dss)' \
		-benchtime 1x -short .

# smoke-commit runs the workbench commitstorm workload — short X
# transactions confined to a few hot shards, with a shared row set that
# generates genuine FIFO waits — and fails unless the group-release path
# actually coalesced grant wakeups (-min-coalesced turns the counter into
# an exit status).
smoke-commit:
	$(GO) run ./cmd/workbench -workload commitstorm -clients 64 -ticks 200 \
		-chart=false -events 0 -min-coalesced 1 >/dev/null
	@echo "smoke-commit: wakeups coalesced OK"

# smoke-profile runs the workbench commitstorm (hot-key) workload with the
# HTTP surface up and curls the contention profiler mid-run: /debug/hotlocks
# must serve a non-empty top-K (a "name" field proves at least one tracked
# hot lock) and /debug/waiters must have observed a wait edge ("holder"
# proves a live blocked-on row). The run then prints the -profile report.
smoke-profile: build
	@set -e; \
	$(GO) run ./cmd/workbench -workload commitstorm -clients 64 -ticks 2500 \
		-chart=false -events 0 -profile -http 127.0.0.1:8373 -serve-for 4s >/dev/null & \
	pid=$$!; \
	ok=""; \
	for i in $$(seq 1 40); do \
		sleep 0.5; \
		if curl -sf http://127.0.0.1:8373/debug/hotlocks | grep -q '"name"' \
		&& curl -sf http://127.0.0.1:8373/debug/waiters | grep -q '"holder"'; then \
			ok=1; break; \
		fi; \
	done; \
	if [ -z "$$ok" ]; then echo "smoke-profile: no hot lock + wait edge observed"; kill $$pid 2>/dev/null; exit 1; fi; \
	echo "smoke-profile: hot locks + wait edges OK"; \
	wait $$pid

# smoke-latch runs the workbench commitstorm workload with the HTTP
# surface up and asserts the spin-then-park latch counters are on
# /metrics: the three lockmem_latch_{spins,parks,handoffs}_total families
# must be served per shard (values may be zero mid-run — the assertion is
# that the instrumented latch is wired into the exposition, not that the
# sim contends).
smoke-latch: build
	@set -e; \
	$(GO) run ./cmd/workbench -workload commitstorm -clients 64 -ticks 400 \
		-chart=false -events 0 -http 127.0.0.1:8374 -serve-for 5s >/dev/null & \
	pid=$$!; sleep 3; \
	curl -sf http://127.0.0.1:8374/metrics | grep -m1 'lockmem_latch_spins_total{shard="0"}'; \
	curl -sf http://127.0.0.1:8374/metrics | grep -m1 'lockmem_latch_parks_total{shard="0"}'; \
	curl -sf http://127.0.0.1:8374/metrics | grep -m1 'lockmem_latch_handoffs_total{shard="0"}'; \
	echo "smoke-latch: latch counters OK"; \
	wait $$pid

# smoke-throttle is the admission throttle's verify gate: a brief hot-lock
# hammer against a fixed ceiling must actually cull waiters, and at full
# drain every culled waiter must have been reactivated (culled > 0,
# reactivated == culled, invariants clean) — proof the culled set loses
# no one.
smoke-throttle:
	$(GO) test -run TestThrottleSmoke -count=1 .
	@echo "smoke-throttle: cull/reactivate accounting OK"

# obs-demo runs the workbench surge workload with the HTTP surface up and
# curls it mid-run: /metrics must serve lock-wait histogram buckets and
# per-shard latch-wait counters; /debug/tuner must serve decision records.
obs-demo: build
	@set -e; \
	$(GO) run ./cmd/workbench -clients 60 -surge-to 200 -surge-at 120 \
		-ticks 600 -chart=false -http 127.0.0.1:8372 -serve-for 6s & \
	pid=$$!; sleep 3; \
	curl -sf http://127.0.0.1:8372/metrics | grep -m1 lockmem_lock_wait_seconds_bucket; \
	curl -sf http://127.0.0.1:8372/metrics | grep -m1 'lockmem_latch_waits_total{shard="0"}'; \
	curl -sf 'http://127.0.0.1:8372/debug/tuner?kind=tuning-pass&n=1'; \
	curl -sf 'http://127.0.0.1:8372/debug/events?n=3' >/dev/null; \
	echo "obs-demo: endpoints OK"; \
	wait $$pid

# verify is the tier-1 gate (see ROADMAP.md): formatting, vet, build, the
# full test suite, the race-detector pass over the concurrency-sensitive
# packages, and one-iteration smoke runs of the read-path benches, the
# group-release commit path, the contention profiler's live endpoints,
# the spin-then-park latch counters on /metrics, and the admission
# throttle's cull/reactivate accounting.
verify: fmt vet build test race smoke-read smoke-commit smoke-profile smoke-latch smoke-throttle

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
