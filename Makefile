GO ?= go

.PHONY: all build test race bench bench-lock bench-engine verify fmt vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector runs for the concurrency-sensitive packages: the sharded
# lock table, its block-chain lease pools, and the engine facade that
# exposes the latch-free snapshot path.
race:
	$(GO) test -race ./internal/lockmgr ./internal/memblock ./internal/engine

bench: bench-lock

# bench-lock measures raw lock-table scalability (grant/release fast path
# across goroutine counts). BENCH_JSON captures one record per run so
# before/after numbers can be checked in (BENCH_LOCKSCALE_*.json).
bench-lock:
	BENCH_JSON=$${BENCH_JSON:-BENCH_LOCKSCALE.json} \
		$(GO) test -run xxx -bench BenchmarkLockScalability -benchtime 1s .

# bench-engine measures end-to-end engine commit throughput with the
# control plane (deadlock detector + timeout sweep) off and on at the
# simulator cadence. The detector-on/off gap is the cost of the control
# plane; BENCH_ENGINE_*.json records the before/after evidence.
bench-engine:
	BENCH_JSON=$${BENCH_JSON:-BENCH_ENGINE.json} \
		$(GO) test -run xxx -bench BenchmarkEngineThroughput -benchtime 1s .

# verify is the tier-1 gate (see ROADMAP.md): formatting, vet, build, the
# full test suite, and the race-detector pass over the concurrency-
# sensitive packages.
verify: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...
