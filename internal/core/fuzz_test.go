package core

import (
	"testing"

	"repro/internal/memblock"
)

// FuzzDecide hammers the tuner with arbitrary inputs and checks the safety
// properties every decision must satisfy: block alignment, bound clamping,
// and bounded shrink steps. Run with `go test -fuzz=FuzzDecide ./internal/core`;
// the seed corpus also runs under plain `go test`.
func FuzzDecide(f *testing.F) {
	f.Add(131072, 2048, 50_000, 131072, 10, int64(0))
	f.Add(1310720, 512, 0, 32768, 130, int64(3))
	f.Add(1024, 0, 0, 0, 0, int64(0))
	f.Add(1<<30, 1<<20, 1<<24, 1<<26, 10_000, int64(100))

	f.Fuzz(func(t *testing.T, dbPages, lockPages, used, capacity, apps int, esc int64) {
		// Clamp to sane, non-negative shapes (the tuner's contract).
		if dbPages < 1 || dbPages > 1<<30 || lockPages < 0 || lockPages > 1<<28 {
			t.Skip()
		}
		if capacity < 0 || capacity > 1<<30 || used < 0 || used > capacity {
			t.Skip()
		}
		if apps < 0 || apps > 1<<20 || esc < 0 {
			t.Skip()
		}
		tu := NewTuner(DefaultParams())
		d := tu.Decide(Inputs{
			DatabasePages:   dbPages,
			LockPages:       lockPages,
			UsedStructs:     used,
			CapacityStructs: capacity,
			NumApplications: apps,
			Escalations:     esc,
		})
		if d.TargetPages%memblock.BlockPages != 0 {
			t.Fatalf("unaligned target %d", d.TargetPages)
		}
		if d.TargetPages < d.MinPages || d.TargetPages > d.MaxPages {
			t.Fatalf("target %d outside [%d,%d]", d.TargetPages, d.MinPages, d.MaxPages)
		}
		if d.MaxPages < d.MinPages {
			t.Fatalf("max %d < min %d", d.MaxPages, d.MinPages)
		}
		if d.Action == ActionShrink && lockPages <= d.MaxPages {
			maxStep := int(0.05*float64(lockPages)) + memblock.BlockPages
			if lockPages-d.TargetPages > maxStep {
				t.Fatalf("shrink step %d exceeds δreduce bound %d", lockPages-d.TargetPages, maxStep)
			}
		}
	})
}

// FuzzAppPercent checks the quota curve's range and monotonicity for
// arbitrary usage percentages.
func FuzzAppPercent(f *testing.F) {
	f.Add(0.0, 50.0)
	f.Add(75.0, 100.0)
	f.Fuzz(func(t *testing.T, x, y float64) {
		if x != x || y != y { // NaN
			t.Skip()
		}
		p := DefaultParams()
		vx, vy := p.AppPercent(x), p.AppPercent(y)
		if vx < 1 || vx > 98 || vy < 1 || vy > 98 {
			t.Fatalf("curve out of range: f(%g)=%g f(%g)=%g", x, vx, y, vy)
		}
		// Monotone non-increasing over the clamped domain.
		cx, cy := clampPct(x), clampPct(y)
		if cx <= cy && vx < vy {
			t.Fatalf("curve not monotone: f(%g)=%g < f(%g)=%g", cx, vx, cy, vy)
		}
	})
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
