// Package core implements the paper's primary contribution: the adaptive
// lock-memory tuning algorithm of DB2 9's Self-Tuning Memory Manager (STMM),
// sections 3.1–3.7 of the paper.
//
// The algorithm is deliberately deterministic ("lock memory will be tuned as
// a deterministic heap") — no cost-benefit model. At each tuning interval it
// computes a target size for lock memory such that a set fraction of all
// lock structures is allocated but unused:
//
//   - below minFreeLockMemory (50%) free → grow so that minFree is restored;
//   - above maxFreeLockMemory (60%) free → shrink, but slowly, by
//     δreduce = 5% of the current size per interval;
//   - in between → leave the allocation alone (the 50–60% spread prevents
//     constant resizing);
//   - escalations occurred during the interval (overflow memory was
//     constrained) → double the lock memory each interval while they
//     continue;
//   - always clamp to [minLockMemory, maxLockMemory] and round to whole
//     128 KB blocks.
//
// Sudden spikes that exceed the free structures *within* an interval are
// handled synchronously by the lock manager growing into database overflow
// memory; core provides the admission bound for that path
// (LMOmax = C1 × available overflow).
//
// The per-application quota lockPercentPerApplication (DB2's MAXLOCKS) is
// adapted on a cubic curve P·(1−(x/100)³) of the fraction x of
// maxLockMemory currently in use, recomputed on every resize and every
// refreshPeriodForAppPercent lock-structure requests.
package core

import (
	"fmt"
	"math"

	"repro/internal/memblock"
)

// Params holds the modelling parameters of Table 1. The zero value is not
// usable; start from DefaultParams.
type Params struct {
	// MinFreeFrac is minFreeLockMemory: the minimum fraction of lock
	// structures that must be free before asynchronous growth is
	// required. Paper value: 0.50.
	MinFreeFrac float64

	// MaxFreeFrac is maxFreeLockMemory: the maximum fraction of lock
	// structures that may be free before asynchronous shrinking starts.
	// Paper value: 0.60.
	MaxFreeFrac float64

	// DeltaReduce is δreduce: the fraction of the current lock memory
	// released per tuning interval while shrinking. Paper value: 0.05.
	DeltaReduce float64

	// C1 caps how much of the database overflow memory the lock memory
	// may consume synchronously. Paper value: 0.65.
	C1 float64

	// MaxLockFrac defines maxLockMemory as a fraction of databaseMemory.
	// Paper value: 0.20.
	MaxLockFrac float64

	// CompilerFrac defines sqlCompilerLockMem as a fraction of
	// databaseMemory. Paper value: 0.10.
	CompilerFrac float64

	// MinLockBytes is the absolute floor of minLockMemory. Paper: 2 MB.
	MinLockBytes int

	// MinStructsPerApp scales minLockMemory with connected applications:
	// minLockMemory = MAX(MinLockBytes, MinStructsPerApp·locksize·apps).
	// Paper value: 500.
	MinStructsPerApp int

	// LockSizeBytes is the size of one lock structure. 64 bytes gives the
	// paper's ≈2000 structures per 128 KB block.
	LockSizeBytes int

	// MaxAppPercent is P: the per-application quota when lock memory is
	// far from its maximum. Paper value: 98 (percent).
	MaxAppPercent float64

	// CurveExponent is the exponent of the attenuation curve. Paper: 3.
	CurveExponent float64

	// RefreshPeriod is refreshPeriodForAppPercent: lock-structure
	// requests between recomputations of lockPercentPerApplication.
	// Paper value: 0x80 (128).
	RefreshPeriod int64
}

// DefaultParams returns the paper's Table 1 values.
func DefaultParams() Params {
	return Params{
		MinFreeFrac:      0.50,
		MaxFreeFrac:      0.60,
		DeltaReduce:      0.05,
		C1:               0.65,
		MaxLockFrac:      0.20,
		CompilerFrac:     0.10,
		MinLockBytes:     2 * 1024 * 1024,
		MinStructsPerApp: 500,
		LockSizeBytes:    memblock.LockSize,
		MaxAppPercent:    98,
		CurveExponent:    3,
		RefreshPeriod:    0x80,
	}
}

// Validate reports the first configuration error, or nil.
func (p Params) Validate() error {
	switch {
	case p.MinFreeFrac <= 0 || p.MinFreeFrac >= 1:
		return fmt.Errorf("core: MinFreeFrac %g outside (0,1)", p.MinFreeFrac)
	case p.MaxFreeFrac <= p.MinFreeFrac || p.MaxFreeFrac >= 1:
		return fmt.Errorf("core: MaxFreeFrac %g must be in (MinFreeFrac,1)", p.MaxFreeFrac)
	case p.DeltaReduce <= 0 || p.DeltaReduce >= 1:
		return fmt.Errorf("core: DeltaReduce %g outside (0,1)", p.DeltaReduce)
	case p.C1 <= 0 || p.C1 >= 1:
		return fmt.Errorf("core: C1 %g outside (0,1)", p.C1)
	case p.MaxLockFrac <= 0 || p.MaxLockFrac > 1:
		return fmt.Errorf("core: MaxLockFrac %g outside (0,1]", p.MaxLockFrac)
	case p.CompilerFrac <= 0 || p.CompilerFrac > 1:
		return fmt.Errorf("core: CompilerFrac %g outside (0,1]", p.CompilerFrac)
	case p.MinLockBytes < memblock.BlockBytes:
		return fmt.Errorf("core: MinLockBytes %d below one block", p.MinLockBytes)
	case p.MinStructsPerApp < 0:
		return fmt.Errorf("core: MinStructsPerApp %d negative", p.MinStructsPerApp)
	case p.LockSizeBytes <= 0:
		return fmt.Errorf("core: LockSizeBytes %d non-positive", p.LockSizeBytes)
	case p.MaxAppPercent <= 0 || p.MaxAppPercent > 100:
		return fmt.Errorf("core: MaxAppPercent %g outside (0,100]", p.MaxAppPercent)
	case p.CurveExponent <= 0:
		return fmt.Errorf("core: CurveExponent %g non-positive", p.CurveExponent)
	case p.RefreshPeriod <= 0:
		return fmt.Errorf("core: RefreshPeriod %d non-positive", p.RefreshPeriod)
	}
	return nil
}

// roundUpBlocks rounds pages up to whole 128 KB blocks — "all increments and
// decrements to the lock memory are performed in integral units of lock
// memory blocks".
func roundUpBlocks(pages int) int {
	if pages <= 0 {
		return 0
	}
	return (pages + memblock.BlockPages - 1) / memblock.BlockPages * memblock.BlockPages
}

// roundNearestBlocks converts pages to the nearest whole number of blocks,
// never less than one.
func roundNearestBlocks(pages float64) int {
	blocks := int(math.Round(pages / memblock.BlockPages))
	if blocks < 1 {
		blocks = 1
	}
	return blocks * memblock.BlockPages
}

// MinLockPages returns minLockMemory in pages for the given number of
// connected applications: MAX(2 MB, 500·locksize·num_applications), rounded
// up to whole blocks.
func (p Params) MinLockPages(numApplications int) int {
	if numApplications < 0 {
		numApplications = 0
	}
	byApps := p.MinStructsPerApp * p.LockSizeBytes * numApplications
	bytes := p.MinLockBytes
	if byApps > bytes {
		bytes = byApps
	}
	return roundUpBlocks((bytes + memblock.PageSize - 1) / memblock.PageSize)
}

// MaxLockPages returns maxLockMemory in pages: 0.20 × databaseMemory,
// rounded down to whole blocks so the cap is never exceeded.
func (p Params) MaxLockPages(databasePages int) int {
	pages := int(p.MaxLockFrac * float64(databasePages))
	return pages / memblock.BlockPages * memblock.BlockPages
}

// CompilerLockPages returns sqlCompilerLockMem in pages: the stable,
// generous estimate of available lock memory exposed to the SQL query
// compiler (section 3.6), decoupled from the instantaneous allocation.
func (p Params) CompilerLockPages(databasePages int) int {
	return int(p.CompilerFrac * float64(databasePages))
}

// LMOMaxPages returns LMOmax: the most lock memory that may be held out of
// database overflow memory, C1 × (databaseMemory − Σ heapsizes + LMO).
// sumHeapPages is the total of all heap allocations (including the lock
// heap); lmoPages is the lock memory currently allocated from overflow.
func (p Params) LMOMaxPages(databasePages, sumHeapPages, lmoPages int) int {
	avail := databasePages - sumHeapPages + lmoPages
	if avail < 0 {
		avail = 0
	}
	return int(p.C1 * float64(avail))
}

// AllowedSyncGrowthPages returns how many more pages the lock memory may
// take synchronously from overflow right now, honouring both LMOmax and the
// physically available overflow.
func (p Params) AllowedSyncGrowthPages(databasePages, sumHeapPages, lmoPages, overflowPages int) int {
	room := p.LMOMaxPages(databasePages, sumHeapPages, lmoPages) - lmoPages
	if room > overflowPages {
		room = overflowPages
	}
	if room < 0 {
		room = 0
	}
	return room
}

// AppPercent evaluates the adaptive lockPercentPerApplication curve
// P·(1−(x/100)^CurveExponent) where x is the percentage of maxLockMemory
// currently used. The result is clamped to [1, P]: the paper specifies the
// quota "dropping down to 1 when lock memory is 100% of its maximum size".
func (p Params) AppPercent(usedPct float64) float64 {
	if usedPct < 0 {
		usedPct = 0
	}
	if usedPct > 100 {
		usedPct = 100
	}
	v := p.MaxAppPercent * (1 - math.Pow(usedPct/100, p.CurveExponent))
	if v < 1 {
		v = 1
	}
	return v
}

// Action classifies a tuning decision.
type Action int

const (
	// ActionNone leaves the allocation unchanged.
	ActionNone Action = iota
	// ActionGrow raises the lock memory to Decision.TargetPages.
	ActionGrow
	// ActionShrink lowers the lock memory to Decision.TargetPages.
	ActionShrink
)

func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionGrow:
		return "grow"
	case ActionShrink:
		return "shrink"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Inputs is the lock manager state sampled at a tuning interval.
type Inputs struct {
	// DatabasePages is total databaseMemory in pages.
	DatabasePages int
	// LockPages is the lock memory currently allocated (pages).
	LockPages int
	// UsedStructs is the number of lock structures in use.
	UsedStructs int
	// CapacityStructs is the number of lock structures the current
	// allocation can hold.
	CapacityStructs int
	// NumApplications is the number of connected applications.
	NumApplications int
	// Escalations counts lock escalations since the previous interval.
	Escalations int64
}

// Decision is the outcome of one asynchronous tuning step.
type Decision struct {
	// TargetPages is the new lock memory size (whole blocks).
	TargetPages int
	// Action summarizes the direction of the change.
	Action Action
	// MinPages/MaxPages are the bounds that applied.
	MinPages, MaxPages int
	// Doubled reports that the escalation-recovery doubling fired.
	Doubled bool
	// Reason is a human-readable explanation for logs and tests.
	Reason string
}

// Tuner carries the small amount of state the asynchronous algorithm needs
// between intervals (the previous target, for the no-change band). It is not
// safe for concurrent use; the STMM controller serializes tuning.
type Tuner struct {
	params     Params
	prevTarget int
}

// NewTuner creates a tuner. It panics on invalid params — a configuration
// bug that should fail fast at startup.
func NewTuner(p Params) *Tuner {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Tuner{params: p}
}

// Params returns the tuner's parameters.
func (t *Tuner) Params() Params { return t.params }

// PrevTarget returns the previous interval's target (0 before the first
// Decide) — the only cross-interval state the algorithm keeps, consulted
// by the within-band no-change rule.
func (t *Tuner) PrevTarget() int { return t.prevTarget }

// RestorePrevTarget seeds the no-change-band state. Together with
// PrevTarget it makes every recorded decision replayable: construct a
// fresh tuner, restore the recorded PrevTarget, re-run Decide on the
// recorded inputs, and the same target must come out (the obs decision
// log's replay test relies on this).
func (t *Tuner) RestorePrevTarget(pages int) { t.prevTarget = pages }

// structsToPages converts a structure count to pages, rounding up.
func structsToPages(structs int) int {
	if structs <= 0 {
		return 0
	}
	return (structs + memblock.StructsPerPage - 1) / memblock.StructsPerPage
}

// Decide computes the lock-memory target for this tuning interval.
//
// The order of the rules mirrors section 3: escalation doubling first (the
// system is in distress), then the free-band growth and δreduce shrink
// rules, then the min/max clamps, then block rounding.
func (t *Tuner) Decide(in Inputs) Decision {
	p := t.params
	min := p.MinLockPages(in.NumApplications)
	max := p.MaxLockPages(in.DatabasePages)
	if max < min {
		// Tiny databases: the floor wins; the cap is advisory.
		max = min
	}

	usedPages := structsToPages(in.UsedStructs)
	// Pages needed so that MinFreeFrac of structures are free.
	growTarget := roundUpBlocks(int(math.Ceil(float64(usedPages) / (1 - p.MinFreeFrac))))
	// Pages at which exactly MaxFreeFrac of structures are free — the
	// shrink path never goes below this in a single step.
	shrinkFloor := roundUpBlocks(int(math.Ceil(float64(usedPages) / (1 - p.MaxFreeFrac))))

	var freeFrac float64
	if in.CapacityStructs > 0 {
		freeFrac = float64(in.CapacityStructs-in.UsedStructs) / float64(in.CapacityStructs)
	}

	target := in.LockPages
	action := ActionNone
	doubled := false
	reason := "free fraction within [minFree,maxFree] band"

	switch {
	case in.Escalations > 0:
		// Escalations mean overflow was constrained and demand was cut
		// off: double each interval while they continue, but never
		// below what the free-band rule would ask for.
		target = in.LockPages * 2
		if target < growTarget {
			target = growTarget
		}
		doubled = true
		action = ActionGrow
		reason = fmt.Sprintf("%d escalations during interval: doubling", in.Escalations)
	case in.CapacityStructs == 0:
		target = min
		action = ActionGrow
		reason = "no lock memory allocated: raising to minimum"
	case freeFrac < p.MinFreeFrac:
		target = growTarget
		action = ActionGrow
		reason = fmt.Sprintf("free fraction %.2f below minFree %.2f", freeFrac, p.MinFreeFrac)
	case freeFrac > p.MaxFreeFrac:
		// δreduce is "rounded to the nearest number of 128KB blocks";
		// at least one block so the shrink always makes progress.
		step := roundNearestBlocks(p.DeltaReduce * float64(in.LockPages))
		target = in.LockPages - step
		if target < shrinkFloor {
			target = shrinkFloor
		}
		action = ActionShrink
		reason = fmt.Sprintf("free fraction %.2f above maxFree %.2f: δreduce step %d pages", freeFrac, p.MaxFreeFrac, step)
	default:
		// Within the band: keep the previous target so that the
		// allocation is not adjusted ("avoids constant modification").
		if t.prevTarget != 0 {
			target = t.prevTarget
		}
	}

	// Bounds apply to every path, including the doubling path.
	if target < min {
		if action == ActionNone || target < in.LockPages {
			reason = fmt.Sprintf("raised to minLockMemory %d pages (apps=%d)", min, in.NumApplications)
		}
		target = min
	}
	if target > max {
		target = max
		reason += fmt.Sprintf("; clamped to maxLockMemory %d pages", max)
	}
	target = roundUpBlocks(target)

	// Derive the action from the final relationship to the current size.
	switch {
	case target > in.LockPages:
		action = ActionGrow
	case target < in.LockPages:
		action = ActionShrink
	default:
		action = ActionNone
	}

	t.prevTarget = target
	return Decision{
		TargetPages: target,
		Action:      action,
		MinPages:    min,
		MaxPages:    max,
		Doubled:     doubled,
		Reason:      reason,
	}
}

// QuotaTracker maintains the live lockPercentPerApplication value,
// recomputing it on every lock-memory resize and after every RefreshPeriod
// lock-structure requests (section 3.5). It is safe for use under the lock
// manager's latch; it performs no locking of its own.
type QuotaTracker struct {
	params       Params
	lastRequests int64
	current      float64
	initialized  bool
}

// NewQuotaTracker returns a tracker that starts at the unconstrained value P.
func NewQuotaTracker(p Params) *QuotaTracker {
	return &QuotaTracker{params: p, current: p.MaxAppPercent}
}

// Current returns the quota (percent of lock memory a single application may
// hold) as of the last recomputation.
func (q *QuotaTracker) Current() float64 { return q.current }

// OnResize recomputes the quota immediately; usedPct is the percentage of
// maxLockMemory currently in use.
func (q *QuotaTracker) OnResize(usedPct float64) float64 {
	q.current = q.params.AppPercent(usedPct)
	q.initialized = true
	return q.current
}

// MaybeRefresh recomputes the quota if at least RefreshPeriod lock-structure
// requests have occurred since the last recomputation. It returns the
// (possibly updated) quota and whether a recomputation happened.
func (q *QuotaTracker) MaybeRefresh(totalRequests int64, usedPct float64) (float64, bool) {
	if q.initialized && totalRequests-q.lastRequests < q.params.RefreshPeriod {
		return q.current, false
	}
	q.lastRequests = totalRequests
	q.current = q.params.AppPercent(usedPct)
	q.initialized = true
	return q.current, true
}
