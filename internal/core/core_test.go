package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/memblock"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MinFreeFrac != 0.50 {
		t.Errorf("minFreeLockMemory = %g, want 0.50", p.MinFreeFrac)
	}
	if p.MaxFreeFrac != 0.60 {
		t.Errorf("maxFreeLockMemory = %g, want 0.60", p.MaxFreeFrac)
	}
	if p.DeltaReduce != 0.05 {
		t.Errorf("δreduce = %g, want 0.05", p.DeltaReduce)
	}
	if p.C1 != 0.65 {
		t.Errorf("C1 = %g, want 0.65", p.C1)
	}
	if p.MaxLockFrac != 0.20 {
		t.Errorf("maxLockMemory fraction = %g, want 0.20", p.MaxLockFrac)
	}
	if p.CompilerFrac != 0.10 {
		t.Errorf("sqlCompilerLockMem fraction = %g, want 0.10", p.CompilerFrac)
	}
	if p.MinLockBytes != 2*1024*1024 {
		t.Errorf("min lock bytes = %d, want 2 MB", p.MinLockBytes)
	}
	if p.MinStructsPerApp != 500 {
		t.Errorf("structs per app = %d, want 500", p.MinStructsPerApp)
	}
	if p.MaxAppPercent != 98 {
		t.Errorf("P = %g, want 98", p.MaxAppPercent)
	}
	if p.CurveExponent != 3 {
		t.Errorf("curve exponent = %g, want 3", p.CurveExponent)
	}
	if p.RefreshPeriod != 0x80 {
		t.Errorf("refreshPeriodForAppPercent = %d, want 0x80", p.RefreshPeriod)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Params)
	}{
		{"MinFreeFrac", func(p *Params) { p.MinFreeFrac = 0 }},
		{"MaxFreeFrac below min", func(p *Params) { p.MaxFreeFrac = 0.4 }},
		{"MaxFreeFrac=1", func(p *Params) { p.MaxFreeFrac = 1 }},
		{"DeltaReduce", func(p *Params) { p.DeltaReduce = 0 }},
		{"C1", func(p *Params) { p.C1 = 1.5 }},
		{"MaxLockFrac", func(p *Params) { p.MaxLockFrac = 0 }},
		{"CompilerFrac", func(p *Params) { p.CompilerFrac = -0.1 }},
		{"MinLockBytes", func(p *Params) { p.MinLockBytes = 1024 }},
		{"MinStructsPerApp", func(p *Params) { p.MinStructsPerApp = -1 }},
		{"LockSizeBytes", func(p *Params) { p.LockSizeBytes = 0 }},
		{"MaxAppPercent", func(p *Params) { p.MaxAppPercent = 101 }},
		{"CurveExponent", func(p *Params) { p.CurveExponent = 0 }},
		{"RefreshPeriod", func(p *Params) { p.RefreshPeriod = 0 }},
	}
	for _, m := range mutations {
		p := DefaultParams()
		m.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted bad %s", m.name)
		}
	}
}

func TestNewTunerPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTuner must panic on invalid params")
		}
	}()
	NewTuner(Params{})
}

func TestMinLockPages(t *testing.T) {
	p := DefaultParams()
	// 2 MB floor = 512 pages, already block aligned.
	if got := p.MinLockPages(0); got != 512 {
		t.Errorf("MinLockPages(0) = %d, want 512", got)
	}
	if got := p.MinLockPages(1); got != 512 {
		t.Errorf("MinLockPages(1) = %d, want 512", got)
	}
	if got := p.MinLockPages(-3); got != 512 {
		t.Errorf("MinLockPages(-3) = %d, want 512", got)
	}
	// 500·64 B = 32 KB per application; 2 MB covers 64 applications.
	if got := p.MinLockPages(64); got != 512 {
		t.Errorf("MinLockPages(64) = %d, want 512 (still at 2 MB floor)", got)
	}
	// 130 applications: 500·64·130 = 4.16 MB = 1016 pages → 32 blocks = 1024.
	if got := p.MinLockPages(130); got != 1024 {
		t.Errorf("MinLockPages(130) = %d, want 1024", got)
	}
	// Result is always whole blocks.
	for apps := 0; apps < 300; apps += 7 {
		if got := p.MinLockPages(apps); got%memblock.BlockPages != 0 {
			t.Fatalf("MinLockPages(%d) = %d not block aligned", apps, got)
		}
	}
}

func TestMaxLockPages(t *testing.T) {
	p := DefaultParams()
	// 512 MB database = 131072 pages; 20% = 26214.4 → block-floor 26208.
	if got := p.MaxLockPages(131072); got != 26208 {
		t.Errorf("MaxLockPages(131072) = %d, want 26208", got)
	}
	if got := p.MaxLockPages(0); got != 0 {
		t.Errorf("MaxLockPages(0) = %d, want 0", got)
	}
	if got := p.MaxLockPages(131072); float64(got) > 0.20*131072 {
		t.Errorf("cap exceeded: %d", got)
	}
}

func TestCompilerLockPages(t *testing.T) {
	p := DefaultParams()
	if got := p.CompilerLockPages(131072); got != 13107 {
		t.Errorf("CompilerLockPages = %d, want 13107", got)
	}
}

func TestLMOMaxPages(t *testing.T) {
	p := DefaultParams()
	// db=10000, heaps sum 9000 (of which 500 is LMO): avail = 1500, C1 = 975.
	if got := p.LMOMaxPages(10000, 9000, 500); got != 975 {
		t.Errorf("LMOMaxPages = %d, want 975", got)
	}
	if got := p.LMOMaxPages(100, 500, 0); got != 0 {
		t.Errorf("LMOMaxPages negative avail = %d, want 0", got)
	}
}

func TestAllowedSyncGrowthPages(t *testing.T) {
	p := DefaultParams()
	// LMOmax = 975, LMO = 500 → room 475, overflow 1000 → 475.
	if got := p.AllowedSyncGrowthPages(10000, 9000, 500, 1000); got != 475 {
		t.Errorf("AllowedSyncGrowth = %d, want 475", got)
	}
	// Overflow is the binding constraint.
	if got := p.AllowedSyncGrowthPages(10000, 9000, 500, 100); got != 100 {
		t.Errorf("AllowedSyncGrowth = %d, want 100", got)
	}
	// Already above LMOmax (LMOmax = 0.65·(1000+2000) = 1950 < 2000):
	// no further growth.
	if got := p.AllowedSyncGrowthPages(10000, 9000, 2000, 1000); got != 0 {
		t.Errorf("AllowedSyncGrowth = %d, want 0", got)
	}
}

// TestAppPercentCurve checks the Table 1 formula 98·(1−(x/100)³) at
// representative points.
func TestAppPercentCurve(t *testing.T) {
	p := DefaultParams()
	cases := []struct{ x, want float64 }{
		{0, 98},
		{25, 98 * (1 - 0.015625)},
		{50, 98 * (1 - 0.125)},
		{75, 98 * (1 - 0.421875)},
		{90, 98 * (1 - 0.729)},
		{100, 1}, // curve hits 0, clamped to 1
	}
	for _, tc := range cases {
		if got := p.AppPercent(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("AppPercent(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	if got := p.AppPercent(-10); got != 98 {
		t.Errorf("AppPercent(-10) = %g, want 98", got)
	}
	if got := p.AppPercent(250); got != 1 {
		t.Errorf("AppPercent(250) = %g, want 1", got)
	}
}

// Property: the quota curve is monotonically non-increasing and bounded.
func TestQuickAppPercentMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint8) bool {
		x, y := float64(a%101), float64(b%101)
		if x > y {
			x, y = y, x
		}
		px, py := p.AppPercent(x), p.AppPercent(y)
		return px >= py && px <= 98 && py >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Decide ---

const testDBPages = 131072 // 512 MB database memory

func steadyInputs() Inputs {
	// 2048 pages allocated, 45% free: inside the [40%,50%] ... no: with
	// default params the band is [50%,60%] free. 45% free is below
	// minFree. Use 55% free for "steady".
	capacity := 2048 * memblock.StructsPerPage
	return Inputs{
		DatabasePages:   testDBPages,
		LockPages:       2048,
		UsedStructs:     int(0.45 * float64(capacity)), // 55% free
		CapacityStructs: capacity,
		NumApplications: 10,
	}
}

func TestDecideSteadyStateNoChange(t *testing.T) {
	tu := NewTuner(DefaultParams())
	d := tu.Decide(steadyInputs())
	if d.Action != ActionNone {
		t.Fatalf("action = %v (%s), want none", d.Action, d.Reason)
	}
	if d.TargetPages != 2048 {
		t.Fatalf("target = %d, want 2048", d.TargetPages)
	}
}

func TestDecideGrowsWhenBelowMinFree(t *testing.T) {
	tu := NewTuner(DefaultParams())
	in := steadyInputs()
	in.UsedStructs = int(0.70 * float64(in.CapacityStructs)) // only 30% free
	d := tu.Decide(in)
	if d.Action != ActionGrow {
		t.Fatalf("action = %v (%s), want grow", d.Action, d.Reason)
	}
	// Target should make used ≈ 50%: usedPages = 0.7·2048 = 1434 (rounded
	// up), target = ceil(1434/0.5) = 2868 → block-rounded 2880.
	if d.TargetPages != 2880 {
		t.Fatalf("target = %d, want 2880", d.TargetPages)
	}
}

func TestDecideShrinksSlowlyWhenAboveMaxFree(t *testing.T) {
	tu := NewTuner(DefaultParams())
	in := steadyInputs()
	in.UsedStructs = int(0.10 * float64(in.CapacityStructs)) // 90% free
	d := tu.Decide(in)
	if d.Action != ActionShrink {
		t.Fatalf("action = %v (%s), want shrink", d.Action, d.Reason)
	}
	// δreduce = 5% of 2048 = 102.4 pages → nearest blocks = 3 → 96 pages.
	if got := in.LockPages - d.TargetPages; got != 96 {
		t.Fatalf("shrink step = %d pages, want 96", got)
	}
}

func TestDecideShrinkStopsAtMaxFreeFloor(t *testing.T) {
	tu := NewTuner(DefaultParams())
	// 544 pages allocated, used 208 pages of structs (≈38% used, 62% free:
	// just above maxFree). The shrink floor is ceil(208/0.4)=520→544;
	// a 5% step would go to 512, but the floor holds at 544.
	capacity := 544 * memblock.StructsPerPage
	in := Inputs{
		DatabasePages:   testDBPages,
		LockPages:       544,
		UsedStructs:     208 * memblock.StructsPerPage,
		CapacityStructs: capacity,
		NumApplications: 1,
	}
	d := tu.Decide(in)
	if d.TargetPages != 544 || d.Action != ActionNone {
		t.Fatalf("target = %d action=%v (%s), want hold at 544", d.TargetPages, d.Action, d.Reason)
	}
}

func TestDecideDoublesOnEscalations(t *testing.T) {
	tu := NewTuner(DefaultParams())
	in := steadyInputs()
	in.Escalations = 3
	d := tu.Decide(in)
	if !d.Doubled {
		t.Fatalf("doubling did not fire: %s", d.Reason)
	}
	if d.TargetPages != 4096 {
		t.Fatalf("target = %d, want 4096 (double)", d.TargetPages)
	}
	if !strings.Contains(d.Reason, "escalations") {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestDecideDoublingRespectsMax(t *testing.T) {
	tu := NewTuner(DefaultParams())
	in := steadyInputs()
	in.LockPages = 20000
	in.CapacityStructs = 20000 * memblock.StructsPerPage
	in.UsedStructs = in.CapacityStructs / 2
	in.Escalations = 1
	d := tu.Decide(in)
	max := DefaultParams().MaxLockPages(testDBPages)
	if d.TargetPages != max {
		t.Fatalf("target = %d, want clamp at max %d", d.TargetPages, max)
	}
}

func TestDecideRaisesToMinimumWithApplications(t *testing.T) {
	tu := NewTuner(DefaultParams())
	// 130 applications connected, small allocation with plenty free:
	// the per-application floor (1024 pages) must still lift it.
	capacity := 512 * memblock.StructsPerPage
	in := Inputs{
		DatabasePages:   testDBPages,
		LockPages:       512,
		UsedStructs:     capacity / 2, // in-band free fraction
		CapacityStructs: capacity,
		NumApplications: 130,
	}
	d := tu.Decide(in)
	if d.TargetPages != 1024 || d.Action != ActionGrow {
		t.Fatalf("target = %d action=%v, want grow to 1024", d.TargetPages, d.Action)
	}
	if d.MinPages != 1024 {
		t.Fatalf("MinPages = %d, want 1024", d.MinPages)
	}
}

func TestDecideZeroCapacityBootstrap(t *testing.T) {
	tu := NewTuner(DefaultParams())
	d := tu.Decide(Inputs{DatabasePages: testDBPages, NumApplications: 1})
	if d.TargetPages != 512 || d.Action != ActionGrow {
		t.Fatalf("bootstrap target = %d action=%v, want grow to 512", d.TargetPages, d.Action)
	}
}

func TestDecideBandKeepsPreviousTarget(t *testing.T) {
	tu := NewTuner(DefaultParams())
	// First interval: grow decision to 2880 (from the grow test setup).
	in := steadyInputs()
	in.UsedStructs = int(0.70 * float64(in.CapacityStructs))
	d1 := tu.Decide(in)
	if d1.TargetPages != 2880 {
		t.Fatalf("setup failed: %d", d1.TargetPages)
	}
	// Second interval: suppose STMM could not apply the full growth (lock
	// memory still 2048) but usage fell back into the band. The target
	// stays at the previous target rather than snapping to current.
	in2 := steadyInputs() // 55% free at 2048 pages
	d2 := tu.Decide(in2)
	if d2.TargetPages != 2880 {
		t.Fatalf("band target = %d, want previous target 2880", d2.TargetPages)
	}
}

func TestDecideMaxNeverBelowMin(t *testing.T) {
	tu := NewTuner(DefaultParams())
	// A 4 MB database: max (20%) would be below the 2 MB floor.
	d := tu.Decide(Inputs{DatabasePages: 1024, NumApplications: 1})
	if d.TargetPages != 512 {
		t.Fatalf("target = %d, want 512 (floor beats cap)", d.TargetPages)
	}
	if d.MaxPages < d.MinPages {
		t.Fatalf("max %d < min %d", d.MaxPages, d.MinPages)
	}
}

func TestActionString(t *testing.T) {
	if ActionNone.String() != "none" || ActionGrow.String() != "grow" || ActionShrink.String() != "shrink" {
		t.Fatal("Action strings wrong")
	}
	if Action(9).String() != "Action(9)" {
		t.Fatalf("unknown action string = %q", Action(9).String())
	}
}

// Property: for any inputs the decision is block-aligned and within bounds,
// and a shrink decision never cuts more than δreduce (rounded up to one
// block) in a single step.
func TestQuickDecideInvariants(t *testing.T) {
	p := DefaultParams()
	f := func(lockBlocks uint16, usedFracByte, apps uint8, esc bool) bool {
		tu := NewTuner(p)
		lockPages := int(lockBlocks%2048) * memblock.BlockPages
		capacity := lockPages * memblock.StructsPerPage
		used := int(float64(capacity) * float64(usedFracByte) / 255)
		in := Inputs{
			DatabasePages:   testDBPages,
			LockPages:       lockPages,
			UsedStructs:     used,
			CapacityStructs: capacity,
			NumApplications: int(apps),
		}
		if esc {
			in.Escalations = 1
		}
		d := tu.Decide(in)
		if d.TargetPages%memblock.BlockPages != 0 {
			return false
		}
		if d.TargetPages < d.MinPages || d.TargetPages > d.MaxPages {
			return false
		}
		// The δreduce damping bounds shrink steps — except when the
		// starting size violates maxLockMemory, where the clamp cuts
		// straight to the cap.
		if d.Action == ActionShrink && lockPages <= d.MaxPages {
			maxStep := int(math.Ceil(p.DeltaReduce*float64(lockPages))) + memblock.BlockPages
			if lockPages-d.TargetPages > maxStep {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated shrink decisions converge (geometric decay) to the
// shrink floor without oscillating.
func TestShrinkConvergesWithoutOscillation(t *testing.T) {
	p := DefaultParams()
	tu := NewTuner(p)
	lockPages := 10240
	used := 100 * memblock.StructsPerPage // far below allocation
	var sizes []int
	for i := 0; i < 100; i++ {
		in := Inputs{
			DatabasePages:   testDBPages,
			LockPages:       lockPages,
			UsedStructs:     used,
			CapacityStructs: lockPages * memblock.StructsPerPage,
			NumApplications: 1,
		}
		d := tu.Decide(in)
		if d.TargetPages > lockPages {
			t.Fatalf("iteration %d: shrink phase grew from %d to %d", i, lockPages, d.TargetPages)
		}
		lockPages = d.TargetPages
		sizes = append(sizes, lockPages)
		if d.Action == ActionNone {
			break
		}
	}
	last := sizes[len(sizes)-1]
	// Floor: used=100 pages → ceil(100/0.4)=250 → 256 pages; min is 512.
	if last != 512 {
		t.Fatalf("converged at %d pages, want 512 (min); trajectory %v", last, sizes)
	}
}

// --- QuotaTracker ---

func TestQuotaTrackerStartsUnconstrained(t *testing.T) {
	q := NewQuotaTracker(DefaultParams())
	if got := q.Current(); got != 98 {
		t.Fatalf("initial quota = %g, want 98", got)
	}
}

func TestQuotaTrackerRefreshPeriod(t *testing.T) {
	q := NewQuotaTracker(DefaultParams())
	// First call always computes (tracker not yet initialized).
	v, refreshed := q.MaybeRefresh(10, 50)
	if !refreshed {
		t.Fatal("first MaybeRefresh must compute")
	}
	if want := 98 * (1 - 0.125); math.Abs(v-want) > 1e-9 {
		t.Fatalf("quota = %g, want %g", v, want)
	}
	// 127 more requests: below the 128-request period, no refresh.
	if _, refreshed := q.MaybeRefresh(10+127, 99); refreshed {
		t.Fatal("refresh before period elapsed")
	}
	// 128 requests: refresh fires.
	v, refreshed = q.MaybeRefresh(10+128, 100)
	if !refreshed || v != 1 {
		t.Fatalf("refresh at period: v=%g refreshed=%v", v, refreshed)
	}
}

func TestQuotaTrackerOnResize(t *testing.T) {
	q := NewQuotaTracker(DefaultParams())
	if got := q.OnResize(75); math.Abs(got-98*(1-0.421875)) > 1e-9 {
		t.Fatalf("OnResize(75) = %g", got)
	}
	// A resize resets the baseline value immediately even mid-period.
	if got := q.Current(); math.Abs(got-98*(1-0.421875)) > 1e-9 {
		t.Fatalf("Current = %g", got)
	}
}

// Property: applying an unclamped grow decision restores at least
// minFreeLockMemory free — the growth rule's entire purpose.
func TestQuickGrowRestoresMinFree(t *testing.T) {
	p := DefaultParams()
	f := func(usedPagesRaw uint16) bool {
		usedPages := int(usedPagesRaw%8000) + 1
		used := usedPages * memblock.StructsPerPage
		cap := used + used/10 // only ~9% free: growth required
		tu := NewTuner(p)
		d := tu.Decide(Inputs{
			DatabasePages:   1 << 22, // large db: max clamp never binds
			LockPages:       (cap + memblock.StructsPerPage - 1) / memblock.StructsPerPage,
			UsedStructs:     used,
			CapacityStructs: cap,
			NumApplications: 1,
		})
		if d.Action != ActionGrow && d.TargetPages < usedPages*2 {
			// The floor may already satisfy minFree.
			return d.TargetPages >= usedPages*2 || d.TargetPages == d.MinPages
		}
		newFree := float64(d.TargetPages-usedPages) / float64(d.TargetPages)
		return newFree >= p.MinFreeFrac-0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecideReasonStrings: decisions explain themselves.
func TestDecideReasonStrings(t *testing.T) {
	tu := NewTuner(DefaultParams())
	in := steadyInputs()
	in.UsedStructs = int(0.7 * float64(in.CapacityStructs))
	if d := tu.Decide(in); !strings.Contains(d.Reason, "below minFree") {
		t.Fatalf("grow reason = %q", d.Reason)
	}
	in.UsedStructs = int(0.1 * float64(in.CapacityStructs))
	if d := tu.Decide(in); !strings.Contains(d.Reason, "δreduce") {
		t.Fatalf("shrink reason = %q", d.Reason)
	}
}
