// Package sortheap models the sort/hash-join memory heap: a performance
// memory consumer whose under-allocation causes sort spills rather than
// failures. In the paper's worked example (Figure 6) sort memory is "the
// least needy consumer" that donates pages when lock memory must grow; this
// model gives the STMM controller that donor.
package sortheap

import (
	"sync"
)

// Heap tracks concurrent sort allocations against a budget. It is safe for
// concurrent use.
type Heap struct {
	mu    sync.Mutex
	pages int // budget
	inUse int

	spills         int64
	grants         int64
	intervalSpills int64
	intervalAsks   int64
}

// Sort is one active sort operation's reservation.
type Sort struct {
	h       *Heap
	granted int
	// Spilled reports the sort ran with less memory than requested and
	// wrote intermediate runs to disk.
	Spilled bool
	done    bool
}

// New creates a sort heap with the given page budget.
func New(pages int) *Heap {
	if pages < 0 {
		pages = 0
	}
	return &Heap{pages: pages}
}

// Pages returns the heap budget.
func (h *Heap) Pages() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pages
}

// InUse returns the pages reserved by active sorts.
func (h *Heap) InUse() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inUse
}

// Begin reserves memory for a sort needing `need` pages. If the remaining
// budget cannot cover it the sort receives what is left and spills. End the
// returned Sort when the operation finishes.
func (h *Heap) Begin(need int) *Sort {
	if need < 0 {
		need = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.intervalAsks++
	h.grants++
	avail := h.pages - h.inUse
	if avail < 0 {
		avail = 0
	}
	granted := need
	spilled := false
	if granted > avail {
		granted = avail
		spilled = true
		h.spills++
		h.intervalSpills++
	}
	h.inUse += granted
	return &Sort{h: h, granted: granted, Spilled: spilled}
}

// End releases the sort's reservation. Ending twice is a no-op.
func (s *Sort) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.h.mu.Lock()
	s.h.inUse -= s.granted
	s.h.mu.Unlock()
}

// Resize changes the budget. Active reservations are not revoked; a shrink
// below current use simply causes subsequent sorts to spill until
// reservations drain.
func (h *Heap) Resize(pages int) {
	if pages < 0 {
		pages = 0
	}
	h.mu.Lock()
	h.pages = pages
	h.mu.Unlock()
}

// SpillCount returns the lifetime number of spilled sorts.
func (h *Heap) SpillCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.spills
}

// Benefit estimates the marginal value of additional pages: the fraction of
// this interval's sorts that spilled, scaled to be comparable with the
// buffer pool's eviction pressure. An idle heap reports zero and becomes the
// natural donor.
func (h *Heap) Benefit() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.intervalAsks == 0 {
		return 0
	}
	return float64(h.intervalSpills) / float64(h.intervalAsks) * 100
}

// ResetInterval clears per-interval counters.
func (h *Heap) ResetInterval() {
	h.mu.Lock()
	h.intervalSpills, h.intervalAsks = 0, 0
	h.mu.Unlock()
}

// Name identifies the consumer in STMM reports.
func (h *Heap) Name() string { return "sortheap" }

// ApplySize forwards to Resize for the STMM controller.
func (h *Heap) ApplySize(pages int) { h.Resize(pages) }
