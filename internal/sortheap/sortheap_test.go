package sortheap

import (
	"sync"
	"testing"
)

func TestGrantWithinBudget(t *testing.T) {
	h := New(100)
	s := h.Begin(40)
	if s.Spilled {
		t.Fatal("sort within budget must not spill")
	}
	if got := h.InUse(); got != 40 {
		t.Fatalf("in use = %d, want 40", got)
	}
	s.End()
	if got := h.InUse(); got != 0 {
		t.Fatalf("in use after end = %d, want 0", got)
	}
}

func TestSpillWhenOverBudget(t *testing.T) {
	h := New(50)
	a := h.Begin(40)
	b := h.Begin(40) // only 10 left
	if a.Spilled {
		t.Fatal("first sort must not spill")
	}
	if !b.Spilled {
		t.Fatal("second sort must spill")
	}
	if got := h.InUse(); got != 50 {
		t.Fatalf("in use = %d, want 50 (clamped)", got)
	}
	if got := h.SpillCount(); got != 1 {
		t.Fatalf("spills = %d", got)
	}
	a.End()
	b.End()
}

func TestEndIsIdempotent(t *testing.T) {
	h := New(10)
	s := h.Begin(5)
	s.End()
	s.End()
	if got := h.InUse(); got != 0 {
		t.Fatalf("in use = %d after double End", got)
	}
	var nilSort *Sort
	nilSort.End() // must not panic
}

func TestResizeBelowUse(t *testing.T) {
	h := New(100)
	s := h.Begin(80)
	h.Resize(40) // active reservation remains
	if got := h.InUse(); got != 80 {
		t.Fatalf("in use = %d", got)
	}
	// New sorts spill until the reservation drains.
	s2 := h.Begin(10)
	if !s2.Spilled {
		t.Fatal("sort after shrink below use must spill")
	}
	s.End()
	s2.End()
	s3 := h.Begin(10)
	if s3.Spilled {
		t.Fatal("sort after drain must fit")
	}
	s3.End()
}

func TestBenefitAndReset(t *testing.T) {
	h := New(10)
	h.Begin(5).End()
	if got := h.Benefit(); got != 0 {
		t.Fatalf("benefit with no spills = %g", got)
	}
	h.Begin(50).End() // spill
	if got := h.Benefit(); got != 50 {
		t.Fatalf("benefit = %g, want 50 (1 of 2 spilled)", got)
	}
	h.ResetInterval()
	if got := h.Benefit(); got != 0 {
		t.Fatalf("benefit after reset = %g", got)
	}
}

func TestNegativeInputsClamp(t *testing.T) {
	h := New(-5)
	if h.Pages() != 0 {
		t.Fatal("negative budget must clamp to 0")
	}
	s := h.Begin(-10)
	if s.Spilled {
		t.Fatal("zero-page sort cannot spill")
	}
	s.End()
	h.Resize(-1)
	if h.Pages() != 0 {
		t.Fatal("negative resize must clamp to 0")
	}
}

func TestApplySizeAndName(t *testing.T) {
	h := New(10)
	h.ApplySize(20)
	if h.Pages() != 20 {
		t.Fatal("ApplySize did not resize")
	}
	if h.Name() != "sortheap" {
		t.Fatal("name wrong")
	}
}

func TestConcurrentSorts(t *testing.T) {
	h := New(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := h.Begin(10)
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := h.InUse(); got != 0 {
		t.Fatalf("in use = %d after drain", got)
	}
}
