package baseline

import (
	"testing"

	"repro/internal/lockmgr"
	"repro/internal/memblock"
)

// --- SQL Server 2005 model ---

func TestSQLServerInitialPages(t *testing.T) {
	// 2500 locks → 2 blocks → 64 pages.
	if got := SQLServerInitialPages(); got != 64 {
		t.Fatalf("initial pages = %d, want 64", got)
	}
}

func newSQLServer(t *testing.T, dbPages int) (*SQLServerPolicy, *lockmgr.Manager) {
	t.Helper()
	p := NewSQLServerPolicy(dbPages)
	m := lockmgr.New(lockmgr.Config{
		InitialPages: SQLServerInitialPages(),
		GrowSync:     p.GrowSync,
		Quota:        p,
	})
	p.Bind(m)
	return p, m
}

func TestSQLServerGrowsOnDemand(t *testing.T) {
	_, m := newSQLServer(t, 100000)
	app := m.RegisterApp()
	o := m.NewOwner(app)
	if st, _ := m.AcquireAsync(o, lockmgr.TableName(1), lockmgr.ModeIS, 1).Status(); st != lockmgr.StatusGranted {
		t.Fatal("intent failed")
	}
	// 4500 locks exceed the initial allocation (2 blocks = 4096 structs)
	// but stay under
	// the 5000-per-app trigger: growth, no escalation.
	for i := 0; i < 4500; i++ {
		p := m.AcquireAsync(o, lockmgr.RowName(1, uint64(i)), lockmgr.ModeS, 1)
		if st, err := p.Status(); st != lockmgr.StatusGranted {
			t.Fatalf("row %d: %v %v", i, st, err)
		}
	}
	if m.Stats().Escalations != 0 {
		t.Fatalf("escalated below 5000 locks: %+v", m.Stats())
	}
	if m.Pages() <= SQLServerInitialPages() {
		t.Fatal("lock memory did not grow")
	}
}

func TestSQLServer5000LockTrigger(t *testing.T) {
	_, m := newSQLServer(t, 10_000_000) // memory is ample; the count triggers
	app := m.RegisterApp()
	o := m.NewOwner(app)
	if st, _ := m.AcquireAsync(o, lockmgr.TableName(1), lockmgr.ModeIS, 1).Status(); st != lockmgr.StatusGranted {
		t.Fatal("intent failed")
	}
	for i := 0; m.Stats().Escalations == 0; i++ {
		p := m.AcquireAsync(o, lockmgr.RowName(1, uint64(i)), lockmgr.ModeS, 1)
		if st, err := p.Status(); st != lockmgr.StatusGranted {
			t.Fatalf("row %d: %v %v", i, st, err)
		}
		if i > SQLServerLocksPerApp+100 {
			t.Fatal("no escalation at 5000 locks")
		}
	}
	// The escalation fired near the 5000-lock mark, NOT from memory
	// pressure ("a single reporting query can easily result in lock
	// escalation").
	if held := m.AppStructs(app); held > 10 {
		t.Fatalf("structs after escalation = %d", held)
	}
}

func TestSQLServerGrowthCeiling60Percent(t *testing.T) {
	p, m := newSQLServer(t, 1000) // tiny database: ceiling = 600 pages
	if got := p.GrowSync(10_000); got > 600-m.Pages() {
		t.Fatalf("grant %d exceeds 60%% ceiling", got)
	}
	m.GrowPages(p.GrowSync(10_000))
	if m.Pages() > 600 {
		t.Fatalf("lock memory %d above ceiling 600", m.Pages())
	}
	if got := p.GrowSync(32); got != 0 {
		t.Fatalf("growth above ceiling granted %d", got)
	}
}

func TestSQLServer40PercentGlobalTrigger(t *testing.T) {
	p, _ := newSQLServer(t, 1000)
	// 40% of 1000 pages = 400 pages = 25600 structs used.
	if got := p.QuotaPercent(1, 0, 400*memblock.StructsPerPage); got != 0 {
		t.Fatalf("quota at 40%% used = %g, want 0 (forced escalation)", got)
	}
	if got := p.QuotaPercent(1, 0, 100); got <= 0 {
		t.Fatalf("quota below 40%% = %g", got)
	}
}

func TestSQLServerUnboundBehaviour(t *testing.T) {
	p := NewSQLServerPolicy(1000)
	if got := p.QuotaPercent(1, 0, 0); got != 100 {
		t.Fatalf("unbound quota = %g", got)
	}
	if got := p.GrowSync(100); got != 0 {
		t.Fatalf("unbound grow = %d", got)
	}
}

// --- Oracle ITL model ---

func TestOracleBasicLockAndRelease(t *testing.T) {
	o := NewOracleDB(2, 4)
	if got := o.TryLockRow(1, 10, 5, 100); got != OracleGranted {
		t.Fatalf("lock = %v", got)
	}
	// Same txn re-locks its row freely.
	if got := o.TryLockRow(1, 10, 5, 100); got != OracleGranted {
		t.Fatalf("relock = %v", got)
	}
	// Another txn must wait on the lock byte.
	if got := o.TryLockRow(2, 10, 5, 100); got != OracleRowWait {
		t.Fatalf("conflict = %v", got)
	}
	o.ReleaseAll(1, func(uint32, uint64) uint64 { return 100 })
	if got := o.TryLockRow(2, 10, 5, 100); got != OracleGranted {
		t.Fatalf("after release = %v", got)
	}
}

func TestOracleITLExhaustionBlocksFreeRows(t *testing.T) {
	o := NewOracleDB(1, 2) // at most two interested transactions per page
	if o.TryLockRow(1, 1, 0, 7) != OracleGranted {
		t.Fatal("txn1")
	}
	if o.TryLockRow(2, 1, 1, 7) != OracleGranted {
		t.Fatal("txn2 (ITL grows to 2)")
	}
	// Row 2 is entirely unlocked, but txn3 cannot register interest:
	// "this is true even if the row ... is not locked by any other
	// application".
	if got := o.TryLockRow(3, 1, 2, 7); got != OracleITLWait {
		t.Fatalf("txn3 = %v, want ITL wait", got)
	}
	st := o.Stats()
	if st.ITLWaits != 1 || st.ITLGrowths != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOracleITLSpaceIsPermanent(t *testing.T) {
	o := NewOracleDB(1, 8)
	pageOf := func(uint32, uint64) uint64 { return 3 }
	for txn := uint64(1); txn <= 4; txn++ {
		if o.TryLockRow(txn, 1, txn, 3) != OracleGranted {
			t.Fatalf("txn %d", txn)
		}
	}
	grown := o.PermanentITLSlots()
	for txn := uint64(1); txn <= 4; txn++ {
		o.ReleaseAll(txn, pageOf)
	}
	// Slots in use return, capacity does not.
	if got := o.PermanentITLSlots(); got != grown {
		t.Fatalf("ITL capacity changed after release: %d != %d", got, grown)
	}
	if grown != 4 { // initial 1 + three growths
		t.Fatalf("permanent slots = %d, want 4", grown)
	}
}

func TestOracleQueueJumping(t *testing.T) {
	o := NewOracleDB(4, 8)
	if o.TryLockRow(1, 1, 0, 9) != OracleGranted {
		t.Fatal("txn1")
	}
	// txn2 polls and fails (it would now sleep).
	if o.TryLockRow(2, 1, 0, 9) != OracleRowWait {
		t.Fatal("txn2 should wait")
	}
	o.ReleaseAll(1, func(uint32, uint64) uint64 { return 9 })
	// txn3 arrives after txn2 but grabs the row while txn2 sleeps — the
	// queue jump the paper contrasts with DB2's FIFO post.
	if o.TryLockRow(3, 1, 0, 9) != OracleGranted {
		t.Fatal("txn3 should jump the queue")
	}
	if o.TryLockRow(2, 1, 0, 9) != OracleRowWait {
		t.Fatal("txn2 still waits")
	}
}

func TestOracleLocksHeld(t *testing.T) {
	o := NewOracleDB(2, 4)
	for r := uint64(0); r < 5; r++ {
		o.TryLockRow(1, 1, r, r/2)
	}
	if got := o.LocksHeld(1); got != 5 {
		t.Fatalf("locks held = %d", got)
	}
	o.ReleaseAll(1, func(_ uint32, row uint64) uint64 { return row / 2 })
	if got := o.LocksHeld(1); got != 0 {
		t.Fatalf("locks held after release = %d", got)
	}
}

func TestOracleWaitStrings(t *testing.T) {
	if OracleGranted.String() != "granted" || OracleRowWait.String() != "row-wait" ||
		OracleITLWait.String() != "itl-wait" || OracleWait(9).String() != "OracleWait(9)" {
		t.Fatal("strings wrong")
	}
}
