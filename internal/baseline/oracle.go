package baseline

import (
	"fmt"
	"sync"
)

// The Oracle model (section 2.3, Figure 4): locks live on the data pages.
// Every row has a lock byte; every page has an interested transaction list
// (ITL) in which a transaction must hold a slot before locking any row on
// that page. Consequences the paper calls out, all modelled here:
//
//   - no dynamic lock memory at all — "pre-allocated" as page space;
//   - the ITL grows as transactions register concurrent interest and "is
//     not decreased until the table is reorganized" — permanent space;
//   - ITL exhaustion blocks new transactions from locking any row of the
//     page, even unlocked rows — effectively page-level locking;
//   - waiters poll (sleep-wake-check) rather than queue, so a later
//     transaction can "jump the queue".

// OracleWait classifies why an Oracle-model lock attempt did not succeed.
type OracleWait uint8

const (
	// OracleGranted — the row lock was taken.
	OracleGranted OracleWait = iota
	// OracleRowWait — the row's lock byte is set by another transaction.
	OracleRowWait
	// OracleITLWait — no ITL slot is available on the page and the ITL
	// cannot grow further.
	OracleITLWait
)

func (w OracleWait) String() string {
	switch w {
	case OracleGranted:
		return "granted"
	case OracleRowWait:
		return "row-wait"
	case OracleITLWait:
		return "itl-wait"
	default:
		return fmt.Sprintf("OracleWait(%d)", uint8(w))
	}
}

type oraclePage struct {
	slots   map[uint64]int // txn -> locked row count on this page
	itlCap  int            // slots ever allocated (never shrinks)
	itlSize int            // slots in use
}

// OracleStats counts the model's events.
type OracleStats struct {
	Grants      int64
	RowWaits    int64
	ITLWaits    int64
	ITLGrowths  int64
	ITLSlotsCap int64 // permanent space: slots ever allocated
}

// OracleDB is the on-page lock model. Lock attempts are try-style: the
// caller retries on a wait (polling, as Oracle's sleeping waiters do). It is
// safe for concurrent use.
type OracleDB struct {
	mu    sync.Mutex
	pages map[uint64]*oraclePage
	rows  map[rowKey]uint64 // lock byte: row -> holding txn
	byTxn map[uint64][]rowKey

	initialITL int
	maxITL     int
	stats      OracleStats
}

type rowKey struct {
	table uint32
	row   uint64
}

// NewOracleDB creates the model. initialITL is the ITL slots preallocated
// per page (Oracle's INITRANS, default 2 for tables); maxITL caps growth
// (MAXTRANS, bounded by free space in the page).
func NewOracleDB(initialITL, maxITL int) *OracleDB {
	if initialITL < 1 {
		initialITL = 1
	}
	if maxITL < initialITL {
		maxITL = initialITL
	}
	return &OracleDB{
		pages:      make(map[uint64]*oraclePage),
		rows:       make(map[rowKey]uint64),
		byTxn:      make(map[uint64][]rowKey),
		initialITL: initialITL,
		maxITL:     maxITL,
	}
}

func (o *OracleDB) page(id uint64) *oraclePage {
	p, ok := o.pages[id]
	if !ok {
		p = &oraclePage{slots: make(map[uint64]int), itlCap: o.initialITL}
		o.pages[id] = p
		o.stats.ITLSlotsCap += int64(o.initialITL)
	}
	return p
}

// TryLockRow attempts to set the lock byte of (table, row) for txn. page is
// the data page holding the row (storage.Table.PageOf). On OracleRowWait or
// OracleITLWait the caller should retry later — there is no queue.
func (o *OracleDB) TryLockRow(txn uint64, table uint32, row, page uint64) OracleWait {
	o.mu.Lock()
	defer o.mu.Unlock()
	k := rowKey{table: table, row: row}
	if holder, locked := o.rows[k]; locked {
		if holder == txn {
			o.stats.Grants++
			return OracleGranted // already ours
		}
		o.stats.RowWaits++
		return OracleRowWait
	}
	pg := o.page(page)
	if _, has := pg.slots[txn]; !has {
		if pg.itlSize >= pg.itlCap {
			if pg.itlCap >= o.maxITL {
				// "the exhaustion of ITL space results in page
				// level locking": the row itself is free, but we
				// cannot register interest.
				o.stats.ITLWaits++
				return OracleITLWait
			}
			pg.itlCap++ // permanent growth; never reclaimed
			o.stats.ITLGrowths++
			o.stats.ITLSlotsCap++
		}
		pg.slots[txn] = 0
		pg.itlSize++
	}
	pg.slots[txn]++
	o.rows[k] = txn
	o.byTxn[txn] = append(o.byTxn[txn], k)
	o.stats.Grants++
	return OracleGranted
}

// pageOfFn maps a row key back to its page; the caller supplies it to
// Release since the model does not retain the mapping.
type pageOfFn func(table uint32, row uint64) uint64

// ReleaseAll clears every lock byte held by txn and releases its ITL slots.
// The ITL *capacity* of each page remains at its high-water mark.
func (o *OracleDB) ReleaseAll(txn uint64, pageOf pageOfFn) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, k := range o.byTxn[txn] {
		if o.rows[k] == txn {
			delete(o.rows, k)
		}
		pg := o.pages[pageOf(k.table, k.row)]
		if pg == nil {
			continue
		}
		if n, ok := pg.slots[txn]; ok {
			if n <= 1 {
				delete(pg.slots, txn)
				pg.itlSize--
			} else {
				pg.slots[txn] = n - 1
			}
		}
	}
	delete(o.byTxn, txn)
}

// LocksHeld returns the number of lock bytes txn has set.
func (o *OracleDB) LocksHeld(txn uint64) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.byTxn[txn])
}

// PermanentITLPagesOverhead reports the cumulative ITL slots ever allocated:
// the permanent disk-space cost the paper criticises (24 bytes per slot in
// Oracle; we report slots and let callers convert).
func (o *OracleDB) PermanentITLSlots() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats.ITLSlotsCap
}

// Stats returns a snapshot of the model's counters.
func (o *OracleDB) Stats() OracleStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}
