// Package baseline implements the alternative lock-management policies the
// paper compares against in section 2.3:
//
//   - the static pre-DB2 9 configuration (a fixed LOCKLIST with
//     MAXLOCKS = 10, modelled with lockmgr's fixed quota — see the engine's
//     PolicyStatic);
//   - Microsoft SQL Server 2005: lock memory starts at 2500 locks, grows
//     dynamically up to 60% of database server memory, never shrinks;
//     escalation triggers when lock memory reaches 40% of engine memory or
//     when a single application acquires 5000 row locks — neither threshold
//     is configurable;
//   - Oracle: no lock memory at all — a lock byte per row on the data page
//     plus an interested transaction list (ITL) per page, whose exhaustion
//     degrades to page-level blocking and whose growth permanently consumes
//     page space.
package baseline

import (
	"sync"

	"repro/internal/lockmgr"
	"repro/internal/memblock"
)

// SQLServerLocksPerApp is the fixed, non-configurable per-application
// escalation trigger: "if a single application acquires 5000 row level locks
// an automatic lock escalation is triggered regardless of the amount of
// memory available for locks".
const SQLServerLocksPerApp = 5000

// SQLServerInitialLocks is the initial allocation: "SQL Server 2005 will
// initially allocate enough memory for 2500 locks".
const SQLServerInitialLocks = 2500

// SQLServerInitialPages returns the initial lock memory in pages (whole
// blocks covering 2500 lock structures).
func SQLServerInitialPages() int {
	blocks := (SQLServerInitialLocks + memblock.StructsPerBlock - 1) / memblock.StructsPerBlock
	return blocks * memblock.BlockPages
}

// SQLServerPolicy implements the SQL Server 2005 rules as a lockmgr quota
// provider and synchronous-growth hook. It performs no asynchronous tuning:
// lock memory only ever grows.
type SQLServerPolicy struct {
	mu            sync.Mutex
	databasePages int
	mgr           *lockmgr.Manager
}

// NewSQLServerPolicy creates the policy for a database of the given size.
func NewSQLServerPolicy(databasePages int) *SQLServerPolicy {
	return &SQLServerPolicy{databasePages: databasePages}
}

// Bind attaches the lock manager (two-step wiring, as the manager is
// constructed with the policy's hooks).
func (p *SQLServerPolicy) Bind(m *lockmgr.Manager) {
	p.mu.Lock()
	p.mgr = m
	p.mu.Unlock()
}

// escalationFloorPages is 40% of database memory: once lock memory usage
// reaches it, escalations begin regardless of per-application counts.
func (p *SQLServerPolicy) escalationFloorPages() int {
	return p.databasePages * 40 / 100
}

// growthCeilingPages is 60% of database memory: the hard cap on lock memory.
func (p *SQLServerPolicy) growthCeilingPages() int {
	return p.databasePages * 60 / 100
}

// QuotaPercent implements lockmgr.QuotaProvider with the two fixed triggers.
func (p *SQLServerPolicy) QuotaPercent(appID int, structRequests int64, usedStructs int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mgr == nil {
		return 100
	}
	capacity := p.mgr.CapacityStructs()
	if capacity == 0 {
		return 100
	}
	usedPages := (usedStructs + memblock.StructsPerPage - 1) / memblock.StructsPerPage
	if usedPages >= p.escalationFloorPages() {
		// Global 40% trigger: the next allocation escalates.
		return 0
	}
	pct := float64(SQLServerLocksPerApp) / float64(capacity) * 100
	if pct > 100 {
		pct = 100
	}
	return pct
}

// GrowSync implements the dynamic growth rule: grant while lock memory is
// below 60% of database memory. Grants are whole blocks.
func (p *SQLServerPolicy) GrowSync(needPages int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mgr == nil {
		return 0
	}
	room := p.growthCeilingPages() - p.mgr.Pages()
	if needPages > room {
		needPages = room
	}
	needPages = needPages / memblock.BlockPages * memblock.BlockPages
	if needPages < 0 {
		needPages = 0
	}
	return needPages
}
