package txn

// ReadOnly transactions over the lock manager's zero-CAS optimistic read
// tier. A ReadOnly transaction's reads acquire epoch-stamped tokens
// instead of locks: nothing is written to any shared line, no lock
// structure is consumed, and commit validates every token against its
// header's epoch. Validation failure means some writer (or fence, or a
// settle-seq wrap) intervened inside a read window — the transaction
// aborts with ErrReadInvalidated and the caller reruns it; RunReadOnly
// packages that retry loop with a bounded backoff and a final fallback to
// plain RR two-phase locking, whose real S locks cannot be invalidated.

import (
	"errors"
	"runtime"

	"repro/internal/lockmgr"
	"repro/internal/storage"
)

// ErrReadInvalidated is returned by CommitValidated when an optimistic
// read token failed validation: a conflicting writer touched a read
// header inside the transaction's read window, so the reads do not form a
// consistent snapshot. The transaction has been aborted; rerun it.
var ErrReadInvalidated = errors.New("txn: optimistic read invalidated at commit")

// ErrReadOnlyWrite is returned when a ReadOnly transaction requests a
// write (or any non-shared) lock mode.
var ErrReadOnlyWrite = errors.New("txn: write lock requested in readonly transaction")

// OptimisticReads returns the number of reads this transaction satisfied
// with optimistic tokens (vs rowsLocked, the reads that fell back to real
// locks).
func (t *Txn) OptimisticReads() int64 { return int64(len(t.tokens)) }

// readOptimisticRow satisfies a ReadOnly row read: an IS token on the
// table (cached per table — scans revisit the same one) and an S token on
// the row. Either token miss falls back to the locking tiers via the
// normal acquire path; the fallback locks are held to commit and released
// by FinishOwner like any other.
func (t *Txn) readOptimisticRow(table storage.TableID, row uint64) (tableTok, rowTok lockmgr.OptToken, ok2 bool) {
	locks := t.mgr.locks
	if t.tokTableOK && t.tokTable == uint32(table) {
		tableTok = lockmgr.OptToken{} // already stamped this table's IS
	} else if tok, ok := locks.TryOptimisticRead(lockmgr.TableName(uint32(table)), lockmgr.ModeIS); ok {
		tableTok = tok
	} else {
		return lockmgr.OptToken{}, lockmgr.OptToken{}, false
	}
	rowTok, ok := locks.TryOptimisticRead(lockmgr.RowName(uint32(table), row), lockmgr.ModeS)
	if !ok {
		// The table token (if any) is simply dropped: an unvalidated token
		// mutated nothing and needs no release.
		return lockmgr.OptToken{}, lockmgr.OptToken{}, false
	}
	return tableTok, rowTok, true
}

// noteTokens records a successful optimistic row read.
func (t *Txn) noteTokens(table storage.TableID, tableTok, rowTok lockmgr.OptToken) {
	if tableTok.Valid() {
		t.tokens = append(t.tokens, tableTok)
		t.tokTable, t.tokTableOK = uint32(table), true
	}
	t.tokens = append(t.tokens, rowTok)
}

// validateTokens closes every optimistic read window. It validates all
// tokens (not first-failure-exit) so the failure counters reflect every
// invalidated window.
func (t *Txn) validateTokens() bool {
	ok := true
	for _, tok := range t.tokens {
		if !t.mgr.locks.ValidateOptimistic(tok) {
			ok = false
		}
	}
	return ok
}

// CommitValidated ends the transaction like Commit, but surfaces
// optimistic read validation: if any token fails, the transaction aborts
// and ErrReadInvalidated is returned. For non-ReadOnly transactions (no
// tokens) it always commits and returns nil.
func (t *Txn) CommitValidated() error {
	if t.state != StateActive {
		return ErrNotActive
	}
	if !t.validateTokens() {
		t.finish(StateAborted, false)
		return ErrReadInvalidated
	}
	t.finish(StateCommitted, true)
	return nil
}

// roBackoff yields the scheduler a bounded, exponentially growing number
// of times between ReadOnly retry attempts: enough to let the conflicting
// writer's window close, without ever parking the goroutine (simulation
// ticks and benchmark loops both poll through here).
func roBackoff(attempt int) {
	spins := 8 << uint(attempt)
	if spins > 256 {
		spins = 256
	}
	for i := 0; i < spins; i++ {
		runtime.Gosched()
	}
}

// RunReadOnly runs fn inside a ReadOnly transaction, retrying on
// ErrReadInvalidated with a bounded backoff (maxRetries optimistic
// attempts). If every optimistic attempt is invalidated — a hot writer
// keeps touching the read set — the final attempt runs under plain
// RepeatableRead two-phase locking, which takes real S locks and cannot be
// invalidated, so RunReadOnly always terminates with fn's own error or
// nil. fn must be idempotent (it reruns on retry) and must only read.
func (m *Manager) RunReadOnly(app *lockmgr.App, maxRetries int, fn func(*Txn) error) error {
	if maxRetries < 1 {
		maxRetries = 1
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		t := m.Begin(app)
		t.isolation = ReadOnly
		if err := fn(t); err != nil {
			t.Abort()
			return err
		}
		err := t.CommitValidated()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrReadInvalidated) {
			return err
		}
		roBackoff(attempt)
	}
	// Pessimistic fallback: real locks, guaranteed progress.
	t := m.Begin(app)
	if err := fn(t); err != nil {
		t.Abort()
		return err
	}
	t.Commit()
	return nil
}
