package txn

import (
	"fmt"

	"repro/internal/lockmgr"
	"repro/internal/storage"
)

// Isolation selects DB2's isolation levels, which determine how long read
// locks are held — and therefore how much lock memory a workload demands
// (the tuning algorithm's whole input). Write (X) locks are always held to
// commit.
type Isolation uint8

const (
	// RepeatableRead (RR) holds every row lock to commit: the strictest
	// level and the default of this package (plain strict 2PL).
	RepeatableRead Isolation = iota
	// ReadStability (RS) holds locks on rows actually read to commit; in
	// this model (we only lock rows actually touched) it behaves as RR.
	ReadStability
	// CursorStability (CS) holds the S lock only while the cursor is on
	// the row: acquiring the next S row lock releases the previous one.
	CursorStability
	// UncommittedRead (UR) reads without row locks at all — only the
	// table intent lock is taken.
	UncommittedRead
	// ReadOnly (RO) admits no writes and takes no locks on the happy
	// path: reads acquire zero-CAS optimistic tokens (epoch-stamped
	// seqlock reads on the published grant word) that are validated at
	// commit. A read whose token cannot be issued falls back to a real S
	// lock held to commit; a validation failure at commit aborts the
	// transaction with ErrReadInvalidated, and RunReadOnly packages the
	// bounded-backoff retry loop around that.
	ReadOnly
)

func (i Isolation) String() string {
	switch i {
	case RepeatableRead:
		return "RR"
	case ReadStability:
		return "RS"
	case CursorStability:
		return "CS"
	case UncommittedRead:
		return "UR"
	case ReadOnly:
		return "RO"
	default:
		return fmt.Sprintf("Isolation(%d)", uint8(i))
	}
}

// SetIsolation changes the transaction's isolation level. Allowed only
// before the first lock request so the release discipline stays coherent.
func (t *Txn) SetIsolation(iso Isolation) error {
	if t.state != StateActive {
		return ErrNotActive
	}
	if t.rowsLocked > 0 {
		return fmt.Errorf("txn: isolation change after %d row locks", t.rowsLocked)
	}
	if len(t.tokens) > 0 {
		return fmt.Errorf("txn: isolation change after %d optimistic reads", len(t.tokens))
	}
	t.isolation = iso
	return nil
}

// Isolation returns the transaction's isolation level.
func (t *Txn) Isolation() Isolation { return t.isolation }

// applyIsolationBeforeRead implements the CS/UR read-lock disciplines for a
// row about to be read in mode S. It reports whether a row lock is needed
// at all.
func (t *Txn) applyIsolationBeforeRead(table storage.TableID, row uint64) bool {
	switch t.isolation {
	case UncommittedRead:
		return false // intent lock only
	case CursorStability:
		// Release the previous cursor position, unless this re-reads it.
		if t.cursor != nil && !(t.cursor.Table == uint32(table) && t.cursor.Row == row) {
			// The cursor lock may have been upgraded to X (read then
			// update); upgraded locks are held to commit.
			if req := t.mgr.locks.HeldMode(t.owner, *t.cursor); req == lockmgr.ModeS {
				_ = t.mgr.locks.Release(t.owner, *t.cursor)
			}
			t.cursor = nil
		}
		return true
	default:
		return true
	}
}

// noteRead records the cursor position after an S row lock is granted.
func (t *Txn) noteRead(table storage.TableID, row uint64) {
	if t.isolation == CursorStability {
		name := lockmgr.RowName(uint32(table), row)
		t.cursor = &name
	}
}
