package txn

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lockmgr"
)

// publishRow makes the row's header (and its table's intent header) hot
// enough to publish into the fast-slot array: two concurrent S holders on
// the row, committed away. ReadOnly reads of the row can then be served by
// optimistic tokens.
func publishRow(t *testing.T, m *Manager, lm *lockmgr.Manager, app *lockmgr.App, table uint32, row uint64) {
	t.Helper()
	ctx := context.Background()
	t1, t2 := m.Begin(app), m.Begin(app)
	if err := t1.LockRow(ctx, 1, row, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if err := t2.LockRow(ctx, 1, row, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	t1.Commit()
	t2.Commit()
}

func TestReadOnlyOptimisticHappyPath(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()
	publishRow(t, m, lm, app, 1, 10)

	tx := m.Begin(app)
	if err := tx.SetIsolation(ReadOnly); err != nil {
		t.Fatal(err)
	}
	if err := tx.LockRow(context.Background(), 1, 10, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if got := tx.OptimisticReads(); got != 2 { // table IS token + row S token
		t.Fatalf("optimistic reads = %d, want 2", got)
	}
	if got := tx.RowsLocked(); got != 0 {
		t.Fatalf("rowsLocked = %d, want 0 (token, not lock)", got)
	}
	// Tokens consume no lock structures at all.
	if got := lm.UsedStructs(); got != 0 {
		t.Fatalf("used structs = %d, want 0", got)
	}
	// Re-reading the same table caches the IS token: only one more token.
	if err := tx.LockRow(context.Background(), 1, 10, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if got := tx.OptimisticReads(); got != 3 {
		t.Fatalf("optimistic reads = %d, want 3 (table token cached)", got)
	}
	if err := tx.CommitValidated(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != StateCommitted {
		t.Fatalf("state = %v", tx.State())
	}
	if err := lm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyInvalidatedByWriter(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()
	publishRow(t, m, lm, app, 1, 10)

	tx := m.Begin(app)
	if err := tx.SetIsolation(ReadOnly); err != nil {
		t.Fatal(err)
	}
	if err := tx.LockRow(context.Background(), 1, 10, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if tx.OptimisticReads() == 0 {
		t.Fatal("read did not take the optimistic path; setup broken")
	}

	// A writer commits an X on the read row inside the read window: the
	// token's epoch is bumped by the latched grant.
	wx := m.Begin(app)
	if err := wx.LockRow(context.Background(), 1, 10, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	wx.Commit()

	fails0 := lm.OptimisticFailures()
	if err := tx.CommitValidated(); !errors.Is(err, ErrReadInvalidated) {
		t.Fatalf("CommitValidated = %v, want ErrReadInvalidated", err)
	}
	if tx.State() != StateAborted {
		t.Fatalf("state = %v, want aborted", tx.State())
	}
	if lm.OptimisticFailures() <= fails0 {
		t.Fatal("validation failure not counted")
	}
	_, aborts, _ := m.Stats()
	if aborts == 0 {
		t.Fatal("invalidated readonly txn not counted as abort")
	}
	if err := lm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()
	tx := m.Begin(app)
	if err := tx.SetIsolation(ReadOnly); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := tx.LockRow(ctx, 1, 1, lockmgr.ModeX); !errors.Is(err, ErrReadOnlyWrite) {
		t.Fatalf("LockRow X = %v, want ErrReadOnlyWrite", err)
	}
	if err := tx.LockTable(ctx, 1, lockmgr.ModeIX); !errors.Is(err, ErrReadOnlyWrite) {
		t.Fatalf("LockTable IX = %v, want ErrReadOnlyWrite", err)
	}
	if err := tx.LockRange(ctx, 1, 1, lockmgr.ModeX, 4); !errors.Is(err, ErrReadOnlyWrite) {
		t.Fatalf("LockRange X = %v, want ErrReadOnlyWrite", err)
	}
	op := tx.AcquireRow(1, 1, lockmgr.ModeU, 1)
	if op.Poll() != OpDenied || !errors.Is(op.Err(), ErrReadOnlyWrite) {
		t.Fatalf("AcquireRow U = %v/%v, want denied ErrReadOnlyWrite", op.Poll(), op.Err())
	}
	tx.Abort()
}

func TestReadOnlyFallsBackToRealLocks(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()

	// Nothing published: the optimistic tier misses and the read takes a
	// real S lock (held to commit), which still commits cleanly.
	tx := m.Begin(app)
	if err := tx.SetIsolation(ReadOnly); err != nil {
		t.Fatal(err)
	}
	if err := tx.LockRow(context.Background(), 1, 77, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if got := tx.OptimisticReads(); got != 0 {
		t.Fatalf("optimistic reads = %d, want 0 (unpublished header)", got)
	}
	if got := tx.RowsLocked(); got != 1 {
		t.Fatalf("rowsLocked = %d, want 1 (fallback real lock)", got)
	}
	if got := lm.UsedStructs(); got != 2 { // intent + row
		t.Fatalf("used structs = %d, want 2", got)
	}
	if err := tx.CommitValidated(); err != nil {
		t.Fatal(err)
	}
	if got := lm.UsedStructs(); got != 0 {
		t.Fatalf("used after commit = %d", got)
	}
}

func TestReadOnlyPolledOp(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()
	publishRow(t, m, lm, app, 1, 10)

	tx := m.Begin(app)
	if err := tx.SetIsolation(ReadOnly); err != nil {
		t.Fatal(err)
	}
	op := tx.AcquireRow(1, 10, lockmgr.ModeS, 1)
	if op.Poll() != OpGranted {
		t.Fatalf("polled readonly read = %v, want granted", op.Poll())
	}
	if tx.OptimisticReads() != 2 {
		t.Fatalf("optimistic reads = %d, want 2", tx.OptimisticReads())
	}
	if err := tx.CommitValidated(); err != nil {
		t.Fatal(err)
	}
}

func TestSetIsolationBlockedAfterTokens(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()
	publishRow(t, m, lm, app, 1, 10)

	tx := m.Begin(app)
	if err := tx.SetIsolation(ReadOnly); err != nil {
		t.Fatal(err)
	}
	if err := tx.LockRow(context.Background(), 1, 10, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetIsolation(RepeatableRead); err == nil {
		t.Fatal("isolation change allowed after optimistic reads")
	}
	tx.Abort()
}

// TestRunReadOnlyUnderStorm proves the bounded retry loop terminates even
// against a writer that keeps invalidating the read set: the final
// attempt's RR fallback takes real locks and cannot be invalidated.
func TestRunReadOnlyUnderStorm(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()
	publishRow(t, m, lm, app, 1, 10)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for !stop.Load() {
			wx := m.Begin(app)
			if err := wx.LockRow(ctx, 1, 10, lockmgr.ModeX); err != nil {
				wx.Abort()
				continue
			}
			wx.Commit()
		}
	}()

	for i := 0; i < 50; i++ {
		reads := 0
		err := m.RunReadOnly(app, 3, func(tx *Txn) error {
			reads++
			return tx.LockRow(context.Background(), 1, 10, lockmgr.ModeS)
		})
		if err != nil {
			t.Fatalf("RunReadOnly = %v", err)
		}
		if reads == 0 {
			t.Fatal("fn never ran")
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := lm.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRunReadOnlySucceedsQuiet: no writers, the first optimistic attempt
// must stand.
func TestRunReadOnlySucceedsQuiet(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()
	publishRow(t, m, lm, app, 1, 10)

	var sawTokens int64
	err := m.RunReadOnly(app, 3, func(tx *Txn) error {
		if err := tx.LockRow(context.Background(), 1, 10, lockmgr.ModeS); err != nil {
			return err
		}
		sawTokens = tx.OptimisticReads()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawTokens == 0 {
		t.Fatal("quiet RunReadOnly did not use the optimistic tier")
	}
	commits, aborts, _ := m.Stats()
	if commits != 3 || aborts != 0 { // 2 publishing commits + 1 readonly
		t.Fatalf("stats = %d/%d, want 3/0", commits, aborts)
	}
}
