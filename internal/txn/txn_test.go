package txn

import (
	"context"
	"errors"
	"testing"

	"repro/internal/lockmgr"
)

func newManagers() (*Manager, *lockmgr.Manager) {
	lm := lockmgr.New(lockmgr.Config{InitialPages: 32 * 8})
	return NewManager(lm), lm
}

func TestCommitReleasesLocks(t *testing.T) {
	m, lm := newManagers()
	app := lm.RegisterApp()
	tx := m.Begin(app)
	if err := tx.LockRow(context.Background(), 1, 10, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	if got := lm.UsedStructs(); got != 2 { // intent + row
		t.Fatalf("used = %d, want 2", got)
	}
	tx.Commit()
	if tx.State() != StateCommitted {
		t.Fatalf("state = %v", tx.State())
	}
	if got := lm.UsedStructs(); got != 0 {
		t.Fatalf("used after commit = %d", got)
	}
	commits, aborts, active := m.Stats()
	if commits != 1 || aborts != 0 || active != 0 {
		t.Fatalf("stats = %d/%d/%d", commits, aborts, active)
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	if err := tx.LockRow(context.Background(), 1, 10, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if tx.State() != StateAborted {
		t.Fatalf("state = %v", tx.State())
	}
	if got := lm.UsedStructs(); got != 0 {
		t.Fatalf("used after abort = %d", got)
	}
}

func TestFinishIsIdempotent(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	tx.Commit()
	tx.Abort() // must not flip the state or double count
	if tx.State() != StateCommitted {
		t.Fatalf("state = %v", tx.State())
	}
	commits, aborts, _ := m.Stats()
	if commits != 1 || aborts != 0 {
		t.Fatalf("stats = %d/%d", commits, aborts)
	}
}

func TestLockAfterFinishFails(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	tx.Commit()
	if err := tx.LockRow(context.Background(), 1, 1, lockmgr.ModeS); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v, want ErrNotActive", err)
	}
	if err := tx.LockTable(context.Background(), 1, lockmgr.ModeS); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v, want ErrNotActive", err)
	}
	op := tx.AcquireRow(1, 1, lockmgr.ModeS, 1)
	if op.Poll() != OpDenied || !errors.Is(op.Err(), ErrNotActive) {
		t.Fatalf("op = %v err=%v", op.Poll(), op.Err())
	}
}

func TestLockRowTakesIntentFirst(t *testing.T) {
	m, lm := newManagers()
	// Another transaction holds table X: LockRow must block at the intent
	// lock. Use the async API to observe the waiting state.
	blocker := m.Begin(lm.RegisterApp())
	if err := blocker.LockTable(context.Background(), 1, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(lm.RegisterApp())
	op := tx.AcquireRow(1, 5, lockmgr.ModeS, 1)
	if op.Poll() != OpWaiting {
		t.Fatalf("op state = %v, want waiting at intent", op.Poll())
	}
	blocker.Commit()
	if op.Poll() != OpGranted {
		t.Fatalf("op state = %v after blocker commit", op.Poll())
	}
	if tx.RowsLocked() != 1 {
		t.Fatalf("rows locked = %d", tx.RowsLocked())
	}
	tx.Commit()
}

func TestAcquireRowImmediateGrant(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	op := tx.AcquireRow(2, 7, lockmgr.ModeX, 1)
	if op.Poll() != OpGranted {
		t.Fatalf("op = %v err=%v", op.Poll(), op.Err())
	}
	// Second phase ran: both intent and row held.
	if got := lm.UsedStructs(); got != 2 {
		t.Fatalf("used = %d, want 2", got)
	}
	tx.Commit()
}

func TestAcquireRowSecondPhaseBlocks(t *testing.T) {
	m, lm := newManagers()
	holder := m.Begin(lm.RegisterApp())
	if err := holder.LockRow(context.Background(), 1, 5, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(lm.RegisterApp())
	op := tx.AcquireRow(1, 5, lockmgr.ModeS, 1)
	// Intent (IS vs IX) grants; row blocks.
	if op.Poll() != OpWaiting {
		t.Fatalf("op = %v, want waiting at row", op.Poll())
	}
	holder.Commit()
	if op.Poll() != OpGranted {
		t.Fatalf("op = %v", op.Poll())
	}
	tx.Commit()
}

func TestAcquireTable(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	op := tx.AcquireTable(4, lockmgr.ModeS)
	if op.Poll() != OpGranted {
		t.Fatalf("op = %v", op.Poll())
	}
	if got := lm.UsedStructs(); got != 1 {
		t.Fatalf("used = %d, want 1", got)
	}
	tx.Commit()
}

func TestWeightedAcquire(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	op := tx.AcquireRow(1, 0, lockmgr.ModeS, 64)
	if op.Poll() != OpGranted {
		t.Fatalf("op = %v err=%v", op.Poll(), op.Err())
	}
	if got := lm.UsedStructs(); got != 65 { // 64 + intent
		t.Fatalf("used = %d, want 65", got)
	}
	tx.Commit()
}

func TestAbortWhileWaitingDeniesOp(t *testing.T) {
	m, lm := newManagers()
	holder := m.Begin(lm.RegisterApp())
	if err := holder.LockRow(context.Background(), 1, 5, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(lm.RegisterApp())
	op := tx.AcquireRow(1, 5, lockmgr.ModeX, 1)
	if op.Poll() != OpWaiting {
		t.Fatalf("op = %v", op.Poll())
	}
	tx.Abort()
	if op.Poll() != OpDenied {
		t.Fatalf("op after abort = %v", op.Poll())
	}
	holder.Commit()
	if got := lm.UsedStructs(); got != 0 {
		t.Fatalf("used = %d", got)
	}
}

func TestStateStrings(t *testing.T) {
	if StateActive.String() != "active" || StateCommitted.String() != "committed" ||
		StateAborted.String() != "aborted" || State(7).String() != "State(7)" {
		t.Fatal("state strings wrong")
	}
}

func TestLockRange(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	if err := tx.LockRange(context.Background(), 5, 100, lockmgr.ModeS, 64); err != nil {
		t.Fatal(err)
	}
	// 64 structures for the range + 1 intent.
	if got := lm.UsedStructs(); got != 65 {
		t.Fatalf("structs = %d, want 65", got)
	}
	if got := tx.RowsLocked(); got != 64 {
		t.Fatalf("rows locked = %d, want 64", got)
	}
	if err := tx.LockRange(context.Background(), 5, 200, lockmgr.ModeX, 0); err == nil {
		t.Fatal("zero-weight range accepted")
	}
	tx.Commit()
	if err := tx.LockRange(context.Background(), 5, 0, lockmgr.ModeS, 8); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v, want ErrNotActive", err)
	}
	if got := lm.UsedStructs(); got != 0 {
		t.Fatalf("leak: %d", got)
	}
}

func TestAcquireTableBlocksAndResolves(t *testing.T) {
	m, lm := newManagers()
	holder := m.Begin(lm.RegisterApp())
	if err := holder.LockTable(context.Background(), 9, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(lm.RegisterApp())
	op := tx.AcquireTable(9, lockmgr.ModeS)
	if op.Poll() != OpWaiting {
		t.Fatalf("op = %v, want waiting", op.Poll())
	}
	holder.Commit()
	if op.Poll() != OpGranted {
		t.Fatalf("op = %v after holder commit", op.Poll())
	}
	tx.Commit()
}
