// Package txn implements strict two-phase-locking transactions over the
// lock manager. A transaction acquires a table intent lock before each row
// lock (the multigranularity protocol escalation relies on) and releases
// everything at commit or abort.
//
// Two acquisition styles are provided:
//
//   - Lock / LockRow: blocking calls for goroutine-per-connection use;
//   - AcquireRow / AcquireTable returning an *Op that a discrete simulation
//     polls each tick, so thousands of clients can run deterministically on
//     one goroutine.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/lockmgr"
	"repro/internal/storage"
)

// State is a transaction's lifecycle state.
type State uint8

const (
	// StateActive — running, may acquire locks.
	StateActive State = iota
	// StateCommitted — finished successfully; locks released.
	StateCommitted
	// StateAborted — rolled back; locks released.
	StateAborted
)

func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ErrNotActive is returned when locking on a finished transaction.
var ErrNotActive = errors.New("txn: transaction not active")

// Manager creates transactions bound to a lock manager. The counters are
// atomics: Begin and commit/abort sit on the transaction fast path, and a
// shared mutex there would serialize exactly the commits the touched-shard
// release walk just unserialized.
type Manager struct {
	locks *lockmgr.Manager

	active  atomic.Int64
	commits atomic.Int64
	aborts  atomic.Int64
}

// NewManager returns a transaction manager over the given lock manager.
func NewManager(locks *lockmgr.Manager) *Manager {
	return &Manager{locks: locks}
}

// Stats returns cumulative commits and aborts and the active count. The
// three loads are independent atomics, so the triple is fuzzy — fine for
// monitoring, which is its only caller.
func (m *Manager) Stats() (commits, aborts int64, active int) {
	return m.commits.Load(), m.aborts.Load(), int(m.active.Load())
}

// Txn is one transaction. Not safe for concurrent use by multiple
// goroutines (like a database connection).
type Txn struct {
	mgr   *Manager
	owner *lockmgr.Owner
	state State

	isolation Isolation
	cursor    *lockmgr.Name // CS: the currently locked cursor position

	// RO: optimistic read tokens awaiting commit validation, plus a
	// one-entry cache of the table whose IS token is already stamped
	// (scans revisit one table; a map would be overkill).
	tokens     []lockmgr.OptToken
	tokTable   uint32
	tokTableOK bool

	rowsLocked int64
}

// Begin starts a transaction for the given application.
func (m *Manager) Begin(app *lockmgr.App) *Txn {
	m.active.Add(1)
	return &Txn{mgr: m, owner: m.locks.NewOwner(app)}
}

// State returns the transaction state.
func (t *Txn) State() State { return t.state }

// RowsLocked returns the number of row-lock acquisitions performed.
func (t *Txn) RowsLocked() int64 { return t.rowsLocked }

// Owner exposes the underlying lock owner (for diagnostics).
func (t *Txn) Owner() *lockmgr.Owner { return t.owner }

func (t *Txn) finish(to State, committed bool) {
	if t.state != StateActive {
		return
	}
	t.state = to
	// finish runs at most once (state guard) and the Txn owns its lock
	// owner exclusively, so the owner can be handed back for recycling.
	t.mgr.locks.FinishOwner(t.owner)
	t.mgr.active.Add(-1)
	if committed {
		t.mgr.commits.Add(1)
	} else {
		t.mgr.aborts.Add(1)
	}
}

// Commit ends the transaction, releasing all locks. Idempotent. A
// ReadOnly transaction validates its optimistic read tokens here and
// silently aborts when one fails — callers that need the verdict use
// CommitValidated (or RunReadOnly, which retries).
func (t *Txn) Commit() {
	if len(t.tokens) > 0 && t.state == StateActive && !t.validateTokens() {
		t.finish(StateAborted, false)
		return
	}
	t.finish(StateCommitted, true)
}

// Abort rolls the transaction back, releasing all locks. Idempotent.
func (t *Txn) Abort() { t.finish(StateAborted, false) }

// LockTable blocks until a table lock of the given mode is held.
func (t *Txn) LockTable(ctx context.Context, table storage.TableID, mode lockmgr.Mode) error {
	if t.state != StateActive {
		return ErrNotActive
	}
	if t.isolation == ReadOnly {
		if mode != lockmgr.ModeS && mode != lockmgr.ModeIS {
			return ErrReadOnlyWrite
		}
		if tok, ok := t.mgr.locks.TryOptimisticRead(lockmgr.TableName(uint32(table)), mode); ok {
			t.tokens = append(t.tokens, tok)
			return nil
		}
	}
	return t.mgr.locks.Acquire(ctx, t.owner, lockmgr.TableName(uint32(table)), mode, 1)
}

// LockRow blocks until the row lock (and its table intent lock) is held.
// Under CursorStability an S lock releases the previous cursor position;
// under UncommittedRead S reads take only the table intent lock.
func (t *Txn) LockRow(ctx context.Context, table storage.TableID, row uint64, mode lockmgr.Mode) error {
	if t.state != StateActive {
		return ErrNotActive
	}
	if t.isolation == ReadOnly {
		if mode != lockmgr.ModeS {
			return ErrReadOnlyWrite
		}
		if tt, rt, ok := t.readOptimisticRow(table, row); ok {
			t.noteTokens(table, tt, rt)
			return nil
		}
		// Token miss (unpublished header, conflicting holder, fence):
		// fall through to the locking tiers below; the real S lock is
		// held to commit and cannot be invalidated.
	}
	intent := lockmgr.IntentFor(mode)
	if err := t.mgr.locks.Acquire(ctx, t.owner, lockmgr.TableName(uint32(table)), intent, 1); err != nil {
		return fmt.Errorf("txn: intent lock: %w", err)
	}
	if mode == lockmgr.ModeS && !t.applyIsolationBeforeRead(table, row) {
		return nil // UR: no row lock
	}
	if err := t.mgr.locks.Acquire(ctx, t.owner, lockmgr.RowName(uint32(table), row), mode, 1); err != nil {
		return err
	}
	t.rowsLocked++
	if mode == lockmgr.ModeS {
		t.noteRead(table, row)
	}
	return nil
}

// OpState is the state of a polled lock operation.
type OpState uint8

const (
	// OpWaiting — still blocked; poll again next tick.
	OpWaiting OpState = iota
	// OpGranted — all locks held.
	OpGranted
	// OpDenied — failed; see Err.
	OpDenied
)

// Op is a two-phase (intent, then row) lock acquisition driven by polling.
type Op struct {
	txn     *Txn
	table   uint32
	row     uint64
	mode    lockmgr.Mode
	weight  int
	rowOp   bool
	phase   int // 0 = intent in flight, 1 = row in flight
	pending *lockmgr.Pending
	state   OpState
	err     error
}

// AcquireRow starts acquiring a row lock (intent lock first) of the given
// mode and weight. Poll the returned Op each tick until it completes.
func (t *Txn) AcquireRow(table storage.TableID, row uint64, mode lockmgr.Mode, weight int) *Op {
	op := &Op{txn: t, table: uint32(table), row: row, mode: mode, weight: weight, rowOp: true}
	if t.state != StateActive {
		op.state, op.err = OpDenied, ErrNotActive
		return op
	}
	if t.isolation == ReadOnly {
		if mode != lockmgr.ModeS {
			op.state, op.err = OpDenied, ErrReadOnlyWrite
			return op
		}
		if tt, rt, ok := t.readOptimisticRow(table, row); ok {
			// Zero-CAS hit: the op completes instantly with no Pending at
			// all — nothing was acquired, so there is nothing to poll.
			t.noteTokens(table, tt, rt)
			op.state = OpGranted
			return op
		}
	}
	if mode == lockmgr.ModeS && !t.applyIsolationBeforeRead(table, row) {
		op.rowOp = false // UR: the intent lock is the whole operation
	}
	op.pending = t.mgr.locks.AcquireAsync(t.owner, lockmgr.TableName(op.table), lockmgr.IntentFor(mode), 1)
	op.Poll()
	return op
}

// AcquireTable starts acquiring a table lock of the given mode.
func (t *Txn) AcquireTable(table storage.TableID, mode lockmgr.Mode) *Op {
	op := &Op{txn: t, table: uint32(table), mode: mode, weight: 1, phase: 1}
	if t.state != StateActive {
		op.state, op.err = OpDenied, ErrNotActive
		return op
	}
	op.pending = t.mgr.locks.AcquireAsync(t.owner, lockmgr.TableName(op.table), mode, 1)
	op.Poll()
	return op
}

// Poll advances the operation and returns its state. Safe to call after
// completion.
func (op *Op) Poll() OpState {
	for {
		if op.state != OpWaiting {
			return op.state
		}
		st, err := op.pending.Status()
		switch st {
		case lockmgr.StatusWaiting:
			return OpWaiting
		case lockmgr.StatusDenied:
			op.state, op.err = OpDenied, err
			return op.state
		}
		// Granted: advance the phase.
		if op.phase == 0 && op.rowOp {
			op.phase = 1
			op.pending = op.txn.mgr.locks.AcquireAsync(
				op.txn.owner, lockmgr.RowName(op.table, op.row), op.mode, op.weight)
			continue
		}
		op.state = OpGranted
		if op.rowOp {
			op.txn.rowsLocked++
			if op.mode == lockmgr.ModeS {
				op.txn.noteRead(storage.TableID(op.table), op.row)
			}
		}
		return op.state
	}
}

// Err returns the denial reason after OpDenied.
func (op *Op) Err() error { return op.err }

// LockRange blocks until a weighted row lock covering `rows` contiguous
// rows starting at row is held (one lock request accounting `rows` lock
// structures), plus the table intent lock. Range locks follow the write
// discipline: they are held to commit regardless of isolation level.
func (t *Txn) LockRange(ctx context.Context, table storage.TableID, row uint64, mode lockmgr.Mode, rows int) error {
	if t.state != StateActive {
		return ErrNotActive
	}
	if rows < 1 {
		return fmt.Errorf("txn: invalid range weight %d", rows)
	}
	if t.isolation == ReadOnly {
		if mode != lockmgr.ModeS {
			return ErrReadOnlyWrite
		}
		// A token carries no weight — it consumes no lock structures —
		// so a range read is the same single-header seqlock read as a row
		// read.
		if tt, rt, ok := t.readOptimisticRow(table, row); ok {
			t.noteTokens(table, tt, rt)
			return nil
		}
	}
	intent := lockmgr.IntentFor(mode)
	if err := t.mgr.locks.Acquire(ctx, t.owner, lockmgr.TableName(uint32(table)), intent, 1); err != nil {
		return fmt.Errorf("txn: intent lock: %w", err)
	}
	if err := t.mgr.locks.Acquire(ctx, t.owner, lockmgr.RowName(uint32(table), row), mode, rows); err != nil {
		return err
	}
	t.rowsLocked += int64(rows)
	return nil
}
