package txn

import (
	"context"
	"testing"

	"repro/internal/lockmgr"
)

func TestIsolationStrings(t *testing.T) {
	if RepeatableRead.String() != "RR" || ReadStability.String() != "RS" ||
		CursorStability.String() != "CS" || UncommittedRead.String() != "UR" ||
		Isolation(9).String() != "Isolation(9)" {
		t.Fatal("isolation strings wrong")
	}
}

func TestSetIsolationGuards(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	if err := tx.SetIsolation(CursorStability); err != nil {
		t.Fatal(err)
	}
	if tx.Isolation() != CursorStability {
		t.Fatal("isolation not set")
	}
	if err := tx.LockRow(context.Background(), 1, 1, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetIsolation(RepeatableRead); err == nil {
		t.Fatal("isolation change after locking must fail")
	}
	tx.Commit()
	if err := tx.SetIsolation(RepeatableRead); err == nil {
		t.Fatal("isolation change after commit must fail")
	}
}

// TestRepeatableReadHoldsEverything: default RR accumulates one S lock per
// row read.
func TestRepeatableReadHoldsEverything(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	for row := uint64(0); row < 20; row++ {
		if err := tx.LockRow(context.Background(), 1, row, lockmgr.ModeS); err != nil {
			t.Fatal(err)
		}
	}
	if got := lm.UsedStructs(); got != 21 { // 20 rows + intent
		t.Fatalf("structs = %d, want 21", got)
	}
	tx.Commit()
}

// TestCursorStabilityHoldsOneReadLock: CS keeps only the current cursor
// position — lock memory demand stays flat regardless of rows read.
func TestCursorStabilityHoldsOneReadLock(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	if err := tx.SetIsolation(CursorStability); err != nil {
		t.Fatal(err)
	}
	for row := uint64(0); row < 20; row++ {
		if err := tx.LockRow(context.Background(), 1, row, lockmgr.ModeS); err != nil {
			t.Fatal(err)
		}
	}
	if got := lm.UsedStructs(); got != 2 { // intent + current cursor
		t.Fatalf("structs = %d, want 2 (CS releases behind the cursor)", got)
	}
	tx.Commit()
	if got := lm.UsedStructs(); got != 0 {
		t.Fatalf("leak: %d", got)
	}
}

// TestCursorStabilityKeepsUpgradedLocks: a row read then updated (S→X) is
// held to commit even as the cursor moves on.
func TestCursorStabilityKeepsUpgradedLocks(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	if err := tx.SetIsolation(CursorStability); err != nil {
		t.Fatal(err)
	}
	if err := tx.LockRow(context.Background(), 1, 1, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if err := tx.LockRow(context.Background(), 1, 1, lockmgr.ModeX); err != nil {
		t.Fatal(err) // upgrade in place
	}
	if err := tx.LockRow(context.Background(), 1, 2, lockmgr.ModeS); err != nil {
		t.Fatal(err) // cursor moves; row 1 must NOT be released (it is X)
	}
	if got := lm.HeldMode(tx.Owner(), lockmgr.RowName(1, 1)); got != lockmgr.ModeX {
		t.Fatalf("upgraded lock mode = %v, want X held to commit", got)
	}
	tx.Commit()
}

// TestCursorStabilityRereadKeepsCursor: re-reading the cursor row must not
// release it.
func TestCursorStabilityRereadKeepsCursor(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	_ = tx.SetIsolation(CursorStability)
	if err := tx.LockRow(context.Background(), 1, 5, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if err := tx.LockRow(context.Background(), 1, 5, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	if got := lm.HeldMode(tx.Owner(), lockmgr.RowName(1, 5)); got != lockmgr.ModeS {
		t.Fatalf("cursor lock = %v", got)
	}
	tx.Commit()
}

// TestUncommittedReadTakesNoRowLocks: UR readers consume only the intent
// lock and never block on row X locks.
func TestUncommittedReadTakesNoRowLocks(t *testing.T) {
	m, lm := newManagers()
	writer := m.Begin(lm.RegisterApp())
	if err := writer.LockRow(context.Background(), 1, 7, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}

	reader := m.Begin(lm.RegisterApp())
	_ = reader.SetIsolation(UncommittedRead)
	// Reads the X-locked row without waiting (dirty read).
	if err := reader.LockRow(context.Background(), 1, 7, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	// Only the two intents + writer's row lock exist.
	if got := lm.UsedStructs(); got != 3 {
		t.Fatalf("structs = %d, want 3", got)
	}
	// Writes under UR still lock normally.
	if err := reader.LockRow(context.Background(), 1, 99, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	reader.Commit()
	writer.Commit()
}

// TestCSAsyncPath: the polled AcquireRow honours cursor stability too.
func TestCSAsyncPath(t *testing.T) {
	m, lm := newManagers()
	tx := m.Begin(lm.RegisterApp())
	_ = tx.SetIsolation(CursorStability)
	for row := uint64(0); row < 10; row++ {
		op := tx.AcquireRow(1, row, lockmgr.ModeS, 1)
		if op.Poll() != OpGranted {
			t.Fatalf("row %d: %v", row, op.Err())
		}
	}
	if got := lm.UsedStructs(); got != 2 {
		t.Fatalf("structs = %d, want 2", got)
	}
	tx.Commit()
}

// TestURAsyncPath: the polled AcquireRow under UR grants after the intent
// lock alone.
func TestURAsyncPath(t *testing.T) {
	m, lm := newManagers()
	holder := m.Begin(lm.RegisterApp())
	if err := holder.LockRow(context.Background(), 1, 3, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(lm.RegisterApp())
	_ = tx.SetIsolation(UncommittedRead)
	op := tx.AcquireRow(1, 3, lockmgr.ModeS, 1)
	if op.Poll() != OpGranted {
		t.Fatalf("UR read blocked: %v", op.Err())
	}
	tx.Commit()
	holder.Commit()
}
