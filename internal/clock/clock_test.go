package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestSimStartsAtEpoch(t *testing.T) {
	s := NewSim()
	if got := s.Elapsed(); got != 0 {
		t.Fatalf("Elapsed at start = %v, want 0", got)
	}
}

func TestSimAdvance(t *testing.T) {
	s := NewSim()
	start := s.Now()
	s.Advance(30 * time.Second)
	if got := s.Now().Sub(start); got != 30*time.Second {
		t.Fatalf("advanced %v, want 30s", got)
	}
	if got := s.Elapsed(); got != 30*time.Second {
		t.Fatalf("Elapsed = %v, want 30s", got)
	}
}

func TestSimAdvanceAccumulates(t *testing.T) {
	s := NewSim()
	for i := 0; i < 10; i++ {
		s.Advance(time.Second)
	}
	if got := s.Elapsed(); got != 10*time.Second {
		t.Fatalf("Elapsed = %v, want 10s", got)
	}
}

func TestSimIgnoresNonPositiveAdvance(t *testing.T) {
	s := NewSim()
	s.Advance(0)
	s.Advance(-time.Hour)
	if got := s.Elapsed(); got != 0 {
		t.Fatalf("Elapsed = %v, want 0 after non-positive advances", got)
	}
}

func TestSimConcurrentAccess(t *testing.T) {
	s := NewSim()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Advance(time.Millisecond)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				_ = s.Now()
			}
		}()
	}
	wg.Wait()
	if got, want := s.Elapsed(), 8*1000*time.Millisecond; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}
