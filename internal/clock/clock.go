// Package clock abstracts time so that every component of the simulation —
// the lock manager, the STMM controller, workloads and metrics — can run
// either against the wall clock or against a deterministic simulated clock.
//
// The paper's experiments span 5 to 50 minutes of wall time with a 30 second
// STMM tuning interval; driving those through a SimClock lets the benchmark
// harness regenerate every figure in milliseconds, deterministically.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// simEpoch is the instant at which every SimClock starts. The specific value
// is arbitrary; a fixed epoch keeps simulated timestamps reproducible.
var simEpoch = time.Date(2007, time.April, 16, 0, 0, 0, 0, time.UTC)

// Sim is a deterministic simulated clock. It only moves when Advance is
// called, so a single-threaded simulation driver has full control over the
// passage of time.
type Sim struct {
	mu  sync.RWMutex
	now time.Time
}

// NewSim returns a simulated clock positioned at the simulation epoch.
func NewSim() *Sim {
	return &Sim{now: simEpoch}
}

// Now returns the current simulated instant.
func (s *Sim) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the simulated clock forward by d. Negative durations are
// ignored: simulated time never flows backwards.
func (s *Sim) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

// Elapsed reports how much simulated time has passed since the epoch.
func (s *Sim) Elapsed() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now.Sub(simEpoch)
}
