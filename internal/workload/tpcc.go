package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/txn"
)

// TPC-C-shaped transactions. The paper's test database combined TPCC and
// TPCH schemas; these clients produce the TPCC half's locking footprints —
// the five transaction types with their standard mix — against the scaled
// catalog of storage.CombinedTPCCTPCH. Row addressing follows the TPC-C
// hierarchy (warehouse → district → customer; stock = warehouse × item), so
// conflicts concentrate realistically on warehouse and district rows.

// TPCCTables resolves the tables the transactions touch.
type TPCCTables struct {
	Warehouse, District, Customer, Stock, Item *storage.Table
	Orders, OrderLine, NewOrder, History       *storage.Table
}

// LookupTPCCTables fetches the TPCC tables from a catalog.
func LookupTPCCTables(cat *storage.Catalog) (TPCCTables, error) {
	t := TPCCTables{
		Warehouse: cat.ByName("warehouse"),
		District:  cat.ByName("district"),
		Customer:  cat.ByName("customer"),
		Stock:     cat.ByName("stock"),
		Item:      cat.ByName("item"),
		Orders:    cat.ByName("orders"),
		OrderLine: cat.ByName("order_line"),
		NewOrder:  cat.ByName("new_order"),
		History:   cat.ByName("history"),
	}
	for _, tab := range []*storage.Table{t.Warehouse, t.District, t.Customer, t.Stock,
		t.Item, t.Orders, t.OrderLine, t.NewOrder, t.History} {
		if tab == nil {
			return TPCCTables{}, fmt.Errorf("workload: catalog is missing TPCC tables")
		}
	}
	return t, nil
}

// TPCCTxnType enumerates the five transaction types.
type TPCCTxnType uint8

// The transaction types with their standard mix percentages.
const (
	TxnNewOrder    TPCCTxnType = iota // 45%
	TxnPayment                        // 43%
	TxnOrderStatus                    // 4%
	TxnDelivery                       // 4%
	TxnStockLevel                     // 4%
	numTxnTypes
)

func (t TPCCTxnType) String() string {
	switch t {
	case TxnNewOrder:
		return "new-order"
	case TxnPayment:
		return "payment"
	case TxnOrderStatus:
		return "order-status"
	case TxnDelivery:
		return "delivery"
	case TxnStockLevel:
		return "stock-level"
	default:
		return fmt.Sprintf("TPCCTxnType(%d)", uint8(t))
	}
}

// lockStep is one row access of a transaction.
type lockStep struct {
	table *storage.Table
	row   uint64
	mode  lockmgr.Mode
}

// TPCCProfile parameterizes TPCC clients.
type TPCCProfile struct {
	// Warehouses is the home-warehouse spread (≤ the warehouse table's
	// rows; default all 50).
	Warehouses int
	// StepsPerTick is the locking rate.
	StepsPerTick int
	// ThinkTicks / HoldTicks as in OLTPProfile.
	ThinkTicks, HoldTicks int
}

// DefaultTPCCProfile returns sensible defaults for the scaled catalog.
func DefaultTPCCProfile() TPCCProfile {
	return TPCCProfile{Warehouses: 50, StepsPerTick: 40, ThinkTicks: 4, HoldTicks: 1}
}

// TPCC is one terminal running the five-transaction mix. It implements
// sim.Client.
type TPCC struct {
	db     *engine.Database
	tables TPCCTables
	prof   TPCCProfile
	rng    *rand.Rand

	conn   *engine.Conn
	tx     *txn.Txn
	op     *txn.Op
	state  clientState
	active bool

	steps     []lockStep
	stepIdx   int
	curType   TPCCTxnType
	thinkLeft int
	holdLeft  int

	commits int64
	aborts  int64
	byType  [numTxnTypes]int64
}

// NewTPCC creates a terminal with a deterministic seed.
func NewTPCC(db *engine.Database, prof TPCCProfile, seed int64) (*TPCC, error) {
	tables, err := LookupTPCCTables(db.Catalog())
	if err != nil {
		return nil, err
	}
	if prof.Warehouses <= 0 || uint64(prof.Warehouses) > tables.Warehouse.Rows {
		prof.Warehouses = int(tables.Warehouse.Rows)
	}
	if prof.StepsPerTick <= 0 {
		prof.StepsPerTick = 40
	}
	return &TPCC{db: db, tables: tables, prof: prof, rng: rand.New(rand.NewSource(seed))}, nil
}

// SetActive activates/drains the terminal (sim.Client).
func (c *TPCC) SetActive(active bool) { c.active = active }

// Active reports whether the terminal occupies the system.
func (c *TPCC) Active() bool { return c.active || c.state != stateDisconnected }

// Commits returns committed transactions.
func (c *TPCC) Commits() int64 { return c.commits }

// Aborts returns aborted transactions.
func (c *TPCC) Aborts() int64 { return c.aborts }

// CountByType returns commits of one transaction type.
func (c *TPCC) CountByType(t TPCCTxnType) int64 { return c.byType[t] }

// Step advances the terminal one tick (sim.Client).
func (c *TPCC) Step() {
	switch c.state {
	case stateDisconnected:
		if !c.active {
			return
		}
		c.conn = c.db.Connect()
		c.state = stateThinking
		c.thinkLeft = c.rng.Intn(c.prof.ThinkTicks + 1)
	case stateThinking:
		if !c.active {
			if c.conn != nil {
				_ = c.conn.Close()
				c.conn = nil
			}
			c.state = stateDisconnected
			return
		}
		c.thinkLeft--
		if c.thinkLeft <= 0 {
			c.begin()
		}
	case stateAcquiring:
		c.acquire()
	case stateHolding:
		c.holdLeft--
		if c.holdLeft <= 0 {
			c.finish(true)
		}
	}
}

// sampleType draws a transaction type from the standard mix.
func (c *TPCC) sampleType() TPCCTxnType {
	v := c.rng.Intn(100)
	switch {
	case v < 45:
		return TxnNewOrder
	case v < 88:
		return TxnPayment
	case v < 92:
		return TxnOrderStatus
	case v < 96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

func (c *TPCC) begin() {
	c.tx = c.conn.Begin()
	typ := c.sampleType()
	c.steps = c.buildSteps(typ)
	c.byType[typ]++ // counted at start; decremented on abort
	c.stepIdx = 0
	c.op = nil
	c.curType = typ
	c.state = stateAcquiring
	c.acquire()
}

// Row addressing helpers. The scaled catalog has 50 warehouses, 10
// districts each, 3000 customers per district, 100k items, stock = w×item.
func (c *TPCC) warehouse() uint64 { return uint64(c.rng.Intn(c.prof.Warehouses)) }
func (c *TPCC) district(w uint64) uint64 {
	return w*10 + uint64(c.rng.Intn(10))
}
func (c *TPCC) customer(d uint64) uint64 {
	return (d*3000 + uint64(c.rng.Intn(3000))) % c.tables.Customer.Rows
}
func (c *TPCC) item() uint64 { return uint64(c.rng.Intn(int(c.tables.Item.Rows))) }
func (c *TPCC) stock(w, item uint64) uint64 {
	return (w*c.tables.Item.Rows + item) % c.tables.Stock.Rows
}
func (c *TPCC) anyRow(t *storage.Table) uint64 { return c.rng.Uint64() % t.Rows }

func (c *TPCC) buildSteps(typ TPCCTxnType) []lockStep {
	t := c.tables
	var s []lockStep
	add := func(tab *storage.Table, row uint64, mode lockmgr.Mode) {
		s = append(s, lockStep{table: tab, row: row, mode: mode})
	}
	w := c.warehouse()
	d := c.district(w)
	switch typ {
	case TxnNewOrder:
		add(t.Warehouse, w, lockmgr.ModeS)
		add(t.District, d, lockmgr.ModeX) // next order number
		add(t.Customer, c.customer(d), lockmgr.ModeS)
		lines := 5 + c.rng.Intn(11)
		order := c.anyRow(t.Orders)
		for i := 0; i < lines; i++ {
			it := c.item()
			add(t.Item, it, lockmgr.ModeS)
			add(t.Stock, c.stock(w, it), lockmgr.ModeX)
		}
		add(t.Orders, order, lockmgr.ModeX)
		add(t.NewOrder, order%t.NewOrder.Rows, lockmgr.ModeX)
		for i := 0; i < lines; i++ {
			add(t.OrderLine, (order*10+uint64(i))%t.OrderLine.Rows, lockmgr.ModeX)
		}
	case TxnPayment:
		add(t.Warehouse, w, lockmgr.ModeX)
		add(t.District, d, lockmgr.ModeX)
		add(t.Customer, c.customer(d), lockmgr.ModeX)
		add(t.History, c.anyRow(t.History), lockmgr.ModeX)
	case TxnOrderStatus:
		add(t.Customer, c.customer(d), lockmgr.ModeS)
		order := c.anyRow(t.Orders)
		add(t.Orders, order, lockmgr.ModeS)
		for i := 0; i < 5+c.rng.Intn(11); i++ {
			add(t.OrderLine, (order*10+uint64(i))%t.OrderLine.Rows, lockmgr.ModeS)
		}
	case TxnDelivery:
		for dd := uint64(0); dd < 10; dd++ {
			dist := w*10 + dd
			order := c.anyRow(t.Orders)
			add(t.NewOrder, order%t.NewOrder.Rows, lockmgr.ModeX)
			add(t.Orders, order, lockmgr.ModeX)
			for i := 0; i < 5; i++ {
				add(t.OrderLine, (order*10+uint64(i))%t.OrderLine.Rows, lockmgr.ModeX)
			}
			add(t.Customer, c.customer(dist), lockmgr.ModeX)
		}
	case TxnStockLevel:
		add(t.District, d, lockmgr.ModeS)
		for i := 0; i < 20; i++ {
			add(t.OrderLine, c.anyRow(t.OrderLine), lockmgr.ModeS)
		}
		for i := 0; i < 20; i++ {
			add(t.Stock, c.stock(w, c.item()), lockmgr.ModeS)
		}
	}
	return s
}

func (c *TPCC) acquire() {
	budget := c.prof.StepsPerTick
	for budget > 0 {
		if c.op != nil {
			switch c.op.Poll() {
			case txn.OpWaiting:
				return
			case txn.OpDenied:
				c.finish(false)
				return
			}
			c.op = nil
			c.stepIdx++
			budget--
			continue
		}
		if c.stepIdx >= len(c.steps) {
			c.holdLeft = c.prof.HoldTicks
			if c.holdLeft < 1 {
				c.holdLeft = 1
			}
			c.state = stateHolding
			return
		}
		st := c.steps[c.stepIdx]
		c.db.TouchRow(st.table, st.row)
		c.op = c.tx.AcquireRow(st.table.ID, st.row, st.mode, 1)
	}
}

func (c *TPCC) finish(commit bool) {
	if commit {
		c.tx.Commit()
		c.commits++
	} else {
		c.tx.Abort()
		c.aborts++
		c.byType[c.curType]--
	}
	c.tx, c.op, c.steps = nil, nil, nil
	c.state = stateThinking
	c.thinkLeft = c.prof.ThinkTicks
	if !commit {
		c.thinkLeft += 2
	}
	if !c.active {
		if c.conn != nil {
			_ = c.conn.Close()
			c.conn = nil
		}
		c.state = stateDisconnected
	}
}
