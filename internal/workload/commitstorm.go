package workload

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/txn"
)

// CommitStormProfile parameterizes the commit-storm shape: many short
// write transactions whose row locks are confined to a handful of hot
// shards, so concurrently committing clients pile onto the same few shard
// latches — the group-release regime. Most transactions touch
// client-private rows (no lock conflicts; the contention is purely on the
// shard latches), and every SharedEvery-th transaction instead updates a
// small shared row set in a fixed order, generating genuine FIFO waits —
// and therefore grant wakeups for the release path to coalesce.
type CommitStormProfile struct {
	// Table is the table the storm updates.
	Table *storage.Table
	// HotShards is the number of distinct lock-table shards the rows are
	// confined to.
	HotShards int
	// RowsPerTxn is the X row locks per private transaction, spread
	// round-robin over the hot shards.
	RowsPerTxn int
	// RowsPerClient is each client's private row count per hot shard.
	RowsPerClient int
	// SharedRows is the size of the shared hot set; every client locks it
	// in the same fixed order (deadlock-free by construction).
	SharedRows int
	// SharedEvery makes every SharedEvery-th transaction a shared-set
	// update (0 disables shared transactions).
	SharedEvery int
	// ThinkTicks is the idle time between transactions.
	ThinkTicks int
	// HoldTicks holds all locks before committing.
	HoldTicks int
}

// DefaultCommitStormProfile returns the workbench shape: 4 hot shards,
// 2-lock private transactions, and a 4-row shared set hit every 16th
// transaction.
func DefaultCommitStormProfile(cat *storage.Catalog) CommitStormProfile {
	return CommitStormProfile{
		Table:         cat.ByName("stock"),
		HotShards:     4,
		RowsPerTxn:    2,
		RowsPerClient: 64,
		SharedRows:    4,
		SharedEvery:   16,
		ThinkTicks:    0,
		// One hold tick makes transactions span ticks, so shared-set
		// updates genuinely overlap and queue — without it the sim's
		// single-goroutine tick loop completes every transaction within
		// one Step and no waits (or coalesced wakeups) ever happen.
		HoldTicks: 1,
	}
}

// CommitStormPlan maps the profile's hot shards to concrete row ids. Row
// hashing is deterministic, so every run storms the same shards; the plan
// is built once and shared by all clients.
type CommitStormPlan struct {
	prof CommitStormProfile
	// rows[k] holds the row ids homed in hot shard k: the shared prefix
	// (SharedRows split round-robin over the shards) followed by each
	// client's private slice.
	rows [][]uint64
	// shared is the shared hot set in its fixed locking order.
	shared []uint64
}

// PlanCommitStorm scans the row id space until it has found, for
// prof.HotShards distinct shards, enough rows to give each of `clients`
// clients a private slice plus the shared set. The shard routing comes
// from the live lock manager, so the plan matches whatever shard count the
// engine was opened with.
func PlanCommitStorm(db *engine.Database, prof CommitStormProfile, clients int) *CommitStormPlan {
	return PlanCommitStormRows(db.Locks(), prof, clients)
}

// PlanCommitStormRows is PlanCommitStorm on the bare lock-manager seam, for
// harnesses (the real-concurrency latch benchmarks) that drive a Manager
// without an engine around it. The manager must have at least
// prof.HotShards shards or the scan can never terminate.
func PlanCommitStormRows(m *lockmgr.Manager, prof CommitStormProfile, clients int) *CommitStormPlan {
	perShard := clients*prof.RowsPerClient + prof.SharedRows
	var targets []int
	byShard := make(map[int][]uint64, prof.HotShards)
	for row := uint64(0); ; row++ {
		si := m.ShardOf(lockmgr.RowName(uint32(prof.Table.ID), row%prof.Table.Rows))
		if list, ok := byShard[si]; ok {
			if len(list) < perShard {
				byShard[si] = append(list, row%prof.Table.Rows)
			}
		} else if len(targets) < prof.HotShards {
			targets = append(targets, si)
			byShard[si] = []uint64{row % prof.Table.Rows}
		}
		if len(targets) == prof.HotShards {
			done := true
			for _, t := range targets {
				if len(byShard[t]) < perShard {
					done = false
					break
				}
			}
			if done {
				break
			}
		}
	}
	p := &CommitStormPlan{prof: prof, rows: make([][]uint64, prof.HotShards)}
	for k, t := range targets {
		p.rows[k] = byShard[t]
	}
	for j := 0; j < prof.SharedRows; j++ {
		p.shared = append(p.shared, p.rows[j%prof.HotShards][j/prof.HotShards])
	}
	return p
}

// private returns client id's private row j in hot shard k.
func (p *CommitStormPlan) private(id, k, j int) uint64 {
	base := p.prof.SharedRows + id*p.prof.RowsPerClient
	return p.rows[k][base+j%p.prof.RowsPerClient]
}

// Shared returns the shared hot set in its fixed locking order.
func (p *CommitStormPlan) Shared() []uint64 { return p.shared }

// PrivateRow exposes private for external harnesses: client id's private
// row j in hot shard k (k < prof.HotShards; j wraps).
func (p *CommitStormPlan) PrivateRow(id, k, j int) uint64 { return p.private(id, k, j) }

// Profile returns the profile the plan was built from.
func (p *CommitStormPlan) Profile() CommitStormProfile { return p.prof }

// CommitStorm is one storm client.
type CommitStorm struct {
	db   *engine.Database
	plan *CommitStormPlan
	id   int
	rng  *rand.Rand

	conn   *engine.Conn
	tx     *txn.Txn
	op     *txn.Op
	state  clientState
	active bool

	txCount   int64
	sharedTx  bool
	lockIdx   int
	locksLeft int
	thinkLeft int
	holdLeft  int

	commits int64
	aborts  int64
	denials int64
}

// NewCommitStorm creates storm client id over a shared plan.
func NewCommitStorm(db *engine.Database, plan *CommitStormPlan, id int, seed int64) *CommitStorm {
	return &CommitStorm{db: db, plan: plan, id: id, rng: rand.New(rand.NewSource(seed))}
}

// SetActive marks the client as (in)active (drains like OLTP).
func (c *CommitStorm) SetActive(active bool) { c.active = active }

// Active reports whether the client still occupies the system.
func (c *CommitStorm) Active() bool { return c.active || c.state != stateDisconnected }

// Commits returns the client's committed transaction count.
func (c *CommitStorm) Commits() int64 { return c.commits }

// Aborts returns the client's aborted transaction count.
func (c *CommitStorm) Aborts() int64 { return c.aborts }

// Step advances the client by one tick.
func (c *CommitStorm) Step() {
	switch c.state {
	case stateDisconnected:
		if !c.active {
			return
		}
		c.conn = c.db.Connect()
		c.state = stateThinking
		c.thinkLeft = c.rng.Intn(c.plan.prof.ThinkTicks + 1)
	case stateThinking:
		if !c.active {
			c.disconnect()
			return
		}
		c.thinkLeft--
		if c.thinkLeft <= 0 {
			c.begin()
		}
	case stateAcquiring:
		c.acquire()
	case stateHolding:
		c.holdLeft--
		if c.holdLeft <= 0 {
			c.finish(true)
		}
	}
}

func (c *CommitStorm) disconnect() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.state = stateDisconnected
}

func (c *CommitStorm) begin() {
	prof := &c.plan.prof
	c.txCount++
	c.sharedTx = prof.SharedEvery > 0 && c.txCount%int64(prof.SharedEvery) == 0
	c.tx = c.conn.Begin()
	if c.sharedTx {
		c.locksLeft = len(c.plan.shared)
	} else {
		c.locksLeft = prof.RowsPerTxn
	}
	c.lockIdx = 0
	c.state = stateAcquiring
	c.op = nil
	c.acquire()
}

// acquire takes the transaction's row locks, stalling on a lock wait. A
// shared transaction walks the shared set in the plan's fixed order, so
// concurrent shared transactions queue FIFO instead of deadlocking.
func (c *CommitStorm) acquire() {
	prof := &c.plan.prof
	for {
		if c.op != nil {
			switch c.op.Poll() {
			case txn.OpWaiting:
				return // blocked; retry next tick
			case txn.OpDenied:
				c.denials++
				c.finish(false)
				return
			}
			c.op = nil
			c.locksLeft--
			c.lockIdx++
			continue
		}
		if c.locksLeft <= 0 {
			c.holdLeft = prof.HoldTicks
			if c.holdLeft <= 0 {
				c.finish(true)
				return
			}
			c.state = stateHolding
			return
		}
		var row uint64
		if c.sharedTx {
			row = c.plan.shared[c.lockIdx]
		} else {
			shard := (int(c.txCount) + c.lockIdx) % prof.HotShards
			row = c.plan.private(c.id, shard, int(c.txCount)*prof.RowsPerTxn+c.lockIdx)
		}
		c.db.TouchRow(prof.Table, row)
		c.op = c.tx.AcquireRow(prof.Table.ID, row, lockmgr.ModeX, 1)
	}
}

func (c *CommitStorm) finish(commit bool) {
	if commit {
		c.tx.Commit()
		c.commits++
	} else {
		c.tx.Abort()
		c.aborts++
	}
	c.tx, c.op = nil, nil
	c.state = stateThinking
	think := c.plan.prof.ThinkTicks
	if !commit {
		think += 2 // back off after an abort
	}
	// think == 0 still waits out one thinking tick, so a storm client
	// commits at most one transaction per tick (no same-tick re-begin).
	c.thinkLeft = think
	if !c.active {
		c.disconnect()
	}
}
