// Package workload provides the synthetic clients that reproduce the
// paper's experiment loads: OLTP clients running short locking transactions
// against the TPCC-like tables, and a decision-support (DSS) client running
// one reporting query with massive row-lock requirements against the
// TPCH-like fact table.
//
// Clients are deterministic state machines stepped once per simulation tick
// (1 virtual second), so experiments are exactly reproducible. Activation
// over time is controlled by a Schedule.
package workload

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Schedule maps simulation time (seconds) to the desired number of active
// clients.
type Schedule func(seconds float64) int

// Constant keeps n clients active for the whole run.
func Constant(n int) Schedule {
	return func(float64) int { return n }
}

// Ramp grows the client count linearly from `from` at startSec to `to` at
// endSec (then holds at `to`).
func Ramp(from, to int, startSec, endSec float64) Schedule {
	return func(s float64) int {
		switch {
		case s <= startSec:
			return from
		case s >= endSec:
			return to
		default:
			frac := (s - startSec) / (endSec - startSec)
			return from + int(frac*float64(to-from))
		}
	}
}

// Step switches from `before` clients to `after` clients at atSec.
func Step(before, after int, atSec float64) Schedule {
	return func(s float64) int {
		if s < atSec {
			return before
		}
		return after
	}
}

// OLTPProfile parameterizes the OLTP transaction mix.
type OLTPProfile struct {
	// Tables are the tables the transactions touch (weighted uniformly).
	Tables []*storage.Table
	// RowsMin/RowsMax bound the row locks acquired per transaction.
	RowsMin, RowsMax int
	// RowsPerTick is the locking rate while a transaction runs.
	RowsPerTick int
	// WriteFrac is the fraction of row locks taken in X mode (the rest
	// are S).
	WriteFrac float64
	// HotRows confines a fraction of accesses to the first HotRows rows
	// of each table, generating real lock conflicts. 0 disables.
	HotRows uint64
	// HotFrac is the probability an access goes to the hot set.
	HotFrac float64
	// ThinkTicks is the idle time between transactions.
	ThinkTicks int
	// HoldTicks holds all locks after acquisition before committing
	// (simulating the transaction's non-locking work).
	HoldTicks int
	// SortPages, if > 0, reserves sort memory for the transaction's
	// lifetime (ORDER BY work).
	SortPages int
	// WarmRows confines non-hot accesses to the first WarmRows rows of
	// each table — the workload's cacheable working set. 0 means the
	// whole table (effectively uncacheable).
	WarmRows uint64
	// MissPenalty adds this many hold ticks per buffer pool miss,
	// modelling synchronous read I/O. It is what makes the buffer-pool
	// size — and therefore memory stolen by an oversized LOCKLIST —
	// matter to throughput.
	MissPenalty float64
	// Isolation is the transactions' isolation level (default
	// RepeatableRead). CursorStability and UncommittedRead sharply
	// reduce the client's lock-memory footprint.
	Isolation txn.Isolation
}

// DefaultOLTPProfile returns the mix used by most experiments: modest
// transactions whose aggregate demand at 130 clients sits near the
// per-application minimum lock memory, as in the paper's Figures 9–12.
func DefaultOLTPProfile(cat *storage.Catalog) OLTPProfile {
	return OLTPProfile{
		Tables: []*storage.Table{
			cat.ByName("customer"),
			cat.ByName("stock"),
			cat.ByName("orders"),
			cat.ByName("order_line"),
		},
		RowsMin:     40,
		RowsMax:     90,
		RowsPerTick: 30,
		WriteFrac:   0.3,
		HotRows:     4000,
		HotFrac:     0.1,
		ThinkTicks:  4,
		HoldTicks:   2,
		SortPages:   16,
	}
}

type clientState uint8

const (
	stateDisconnected clientState = iota
	stateThinking
	stateAcquiring
	stateHolding
)

// OLTP is one OLTP application client.
type OLTP struct {
	db   *engine.Database
	prof OLTPProfile
	rng  *rand.Rand

	conn     *engine.Conn
	tx       *txn.Txn
	op       *txn.Op
	sort     interface{ End() }
	state    clientState
	active   bool
	slowdown int

	rowsLeft  int
	thinkLeft int
	holdLeft  int
	ioDebt    float64 // accumulated miss penalty for the current txn

	commits int64
	aborts  int64
	denials int64
}

// NewOLTP creates a client with a deterministic seed.
func NewOLTP(db *engine.Database, prof OLTPProfile, seed int64) *OLTP {
	return &OLTP{db: db, prof: prof, rng: rand.New(rand.NewSource(seed))}
}

// SetActive marks the client as (in)active. A deactivated client finishes
// its current transaction, then disconnects — dropping num_applications, as
// in the Figure 12 load-shed experiment.
func (c *OLTP) SetActive(active bool) { c.active = active }

// Active reports whether the client still occupies the system: it is either
// activated or connected-and-draining.
func (c *OLTP) Active() bool { return c.active || c.state != stateDisconnected }

// Commits returns the client's committed transaction count.
func (c *OLTP) Commits() int64 { return c.commits }

// Aborts returns the client's aborted transaction count.
func (c *OLTP) Aborts() int64 { return c.aborts }

// SetSlowdown adds extra think/hold ticks, modelling CPU and I/O
// competition from concurrent heavy work (the DSS query in Figure 11).
func (c *OLTP) SetSlowdown(ticks int) { c.slowdown = ticks }

// Step advances the client by one tick.
func (c *OLTP) Step() {
	switch c.state {
	case stateDisconnected:
		if !c.active {
			return
		}
		c.conn = c.db.Connect()
		c.state = stateThinking
		c.thinkLeft = c.rng.Intn(c.prof.ThinkTicks + 1)
	case stateThinking:
		if !c.active {
			c.disconnect()
			return
		}
		c.thinkLeft--
		if c.thinkLeft <= 0 {
			c.begin()
		}
	case stateAcquiring:
		c.acquire()
	case stateHolding:
		c.holdLeft--
		if c.holdLeft <= 0 {
			c.finish(true)
		}
	}
}

func (c *OLTP) disconnect() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.state = stateDisconnected
}

func (c *OLTP) begin() {
	c.tx = c.conn.Begin()
	if c.prof.Isolation != txn.RepeatableRead {
		_ = c.tx.SetIsolation(c.prof.Isolation)
	}
	span := c.prof.RowsMax - c.prof.RowsMin
	c.rowsLeft = c.prof.RowsMin
	if span > 0 {
		c.rowsLeft += c.rng.Intn(span + 1)
	}
	if c.prof.SortPages > 0 {
		c.sort = c.db.Sorts().Begin(c.prof.SortPages)
	}
	c.state = stateAcquiring
	c.op = nil
	c.acquire()
}

// acquire takes up to RowsPerTick row locks, stalling on a lock wait.
func (c *OLTP) acquire() {
	budget := c.prof.RowsPerTick
	for budget > 0 {
		if c.op != nil {
			switch c.op.Poll() {
			case txn.OpWaiting:
				return // blocked; retry next tick
			case txn.OpDenied:
				c.denials++
				c.finish(false)
				return
			}
			c.op = nil
			c.rowsLeft--
			budget--
			continue
		}
		if c.rowsLeft <= 0 {
			// Accumulated miss penalty (synchronous read I/O) extends
			// the transaction's work phase.
			c.holdLeft = c.prof.HoldTicks + c.slowdown + int(c.ioDebt)
			c.ioDebt = 0
			c.state = stateHolding
			return
		}
		table := c.prof.Tables[c.rng.Intn(len(c.prof.Tables))]
		row := c.pickRow(table)
		mode := lockmgr.ModeS
		if c.rng.Float64() < c.prof.WriteFrac {
			mode = lockmgr.ModeX
		}
		if !c.db.TouchRow(table, row) {
			c.ioDebt += c.prof.MissPenalty
		}
		c.op = c.tx.AcquireRow(table.ID, row, mode, 1)
	}
}

func (c *OLTP) pickRow(t *storage.Table) uint64 {
	if c.prof.HotRows > 0 && c.rng.Float64() < c.prof.HotFrac {
		return c.rng.Uint64() % min64(c.prof.HotRows, t.Rows)
	}
	if c.prof.WarmRows > 0 {
		return c.rng.Uint64() % min64(c.prof.WarmRows, t.Rows)
	}
	return c.rng.Uint64() % t.Rows
}

func (c *OLTP) finish(commit bool) {
	if c.sort != nil {
		c.sort.End()
		c.sort = nil
	}
	if commit {
		c.tx.Commit()
		c.commits++
	} else {
		c.tx.Abort()
		c.aborts++
	}
	c.tx, c.op = nil, nil
	c.state = stateThinking
	think := c.prof.ThinkTicks + c.slowdown
	if !commit {
		think += 2 // back off after an abort
	}
	c.thinkLeft = think
	if !c.active {
		c.disconnect()
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// DSSProfile parameterizes a bulk locking job: the Figure 11 reporting
// query (share-mode scan), or — with Mode X — the "batch processing of
// updates, inserts and deletes (rollout)" whose short-lived lock peaks
// motivate the asynchronous shrink of section 3.4.
type DSSProfile struct {
	// Table is the fact table scanned (lineitem).
	Table *storage.Table
	// Mode is the row lock mode: ModeS (default) for the reporting
	// query, ModeX for a batch update/delete rollout.
	Mode lockmgr.Mode
	// ChunkRows is the contiguous row range each lock request covers;
	// the request consumes ChunkRows lock structures (see DESIGN.md §5 —
	// identical memory accounting with tractable object counts).
	ChunkRows int
	// Chunks is the total number of chunk locks the query acquires.
	Chunks int
	// ChunksPerTick is the scan's locking rate.
	ChunksPerTick int
	// HoldTicks keeps the full lock set before the query completes
	// (aggregation phase).
	HoldTicks int
	// SortPages reserves sort memory for the query's lifetime.
	SortPages int
}

// mode returns the configured row mode, defaulting to S.
func (p DSSProfile) mode() lockmgr.Mode {
	if p.Mode == 0 {
		return lockmgr.ModeS
	}
	return p.Mode
}

// DSS is the single reporting query client.
type DSS struct {
	db   *engine.Database
	prof DSSProfile

	conn     *engine.Conn
	tx       *txn.Txn
	op       *txn.Op
	sort     interface{ End() }
	active   bool
	started  bool
	doneFlag bool
	acquired int
	holdLeft int
	denials  int64
}

// NewDSS creates the reporting-query client.
func NewDSS(db *engine.Database, prof DSSProfile) *DSS {
	return &DSS{db: db, prof: prof}
}

// SetActive starts (or, before start, cancels) the query.
func (d *DSS) SetActive(active bool) { d.active = active }

// Active reports whether the query is running.
func (d *DSS) Active() bool { return d.active && !d.doneFlag }

// Done reports whether the query completed.
func (d *DSS) Done() bool { return d.doneFlag }

// Commits returns 1 after successful completion.
func (d *DSS) Commits() int64 {
	if d.doneFlag && d.denials == 0 {
		return 1
	}
	return 0
}

// LocksAcquired returns the chunk locks taken so far.
func (d *DSS) LocksAcquired() int { return d.acquired }

// Step advances the query by one tick.
func (d *DSS) Step() {
	if !d.active || d.doneFlag {
		return
	}
	if !d.started {
		d.conn = d.db.Connect()
		d.tx = d.conn.Begin()
		if d.prof.SortPages > 0 {
			d.sort = d.db.Sorts().Begin(d.prof.SortPages)
		}
		d.started = true
		d.holdLeft = d.prof.HoldTicks
	}
	budget := d.prof.ChunksPerTick
	for budget > 0 && d.acquired < d.prof.Chunks {
		if d.op != nil {
			switch d.op.Poll() {
			case txn.OpWaiting:
				return
			case txn.OpDenied:
				d.denials++
				d.complete(false)
				return
			}
			d.op = nil
			d.acquired++
			budget--
			continue
		}
		row := uint64(d.acquired) * uint64(d.prof.ChunkRows)
		d.db.TouchRow(d.prof.Table, row)
		d.op = d.tx.AcquireRow(d.prof.Table.ID, row, d.prof.mode(), d.prof.ChunkRows)
	}
	if d.op != nil {
		// Drain the final in-flight request before holding.
		switch d.op.Poll() {
		case txn.OpWaiting:
			return
		case txn.OpDenied:
			d.denials++
			d.complete(false)
			return
		}
		d.op = nil
		d.acquired++
	}
	if d.acquired >= d.prof.Chunks {
		d.holdLeft--
		if d.holdLeft <= 0 {
			d.complete(true)
		}
	}
}

func (d *DSS) complete(commit bool) {
	if d.sort != nil {
		d.sort.End()
		d.sort = nil
	}
	if commit {
		d.tx.Commit()
	} else {
		d.tx.Abort()
	}
	_ = d.conn.Close()
	d.doneFlag = true
}

// DSSScanProfile parameterizes the scan-heavy decision-support shape: a
// fleet of repeating reporting scans that are ≥99% S. Each transaction
// scans the shared hot set (the rows every concurrent scan revisits — the
// headers the zero-CAS optimistic tier publishes and serves), and every
// ColdEvery-th transaction instead walks a chunk of the large cold key
// range. A small WriteFrac of transactions are single-row updates, which
// is what generates optimistic invalidations.
type DSSScanProfile struct {
	// Table is the fact table scanned.
	Table *storage.Table
	// HotRows is the shared hot set revisited by every scan.
	HotRows uint64
	// ScanRows is the number of rows a hot-set scan reads.
	ScanRows int
	// ColdEvery makes every ColdEvery-th transaction a cold-range scan
	// (0 disables cold scans).
	ColdEvery int
	// ColdRows is the number of rows a cold scan reads, spread over the
	// whole table beyond the hot set.
	ColdRows int
	// WriteFrac is the fraction of transactions that are single-row
	// updates (X on one hot row). ≤ 0.01 keeps the mix ≥99% S.
	WriteFrac float64
	// RowsPerTick is the scan's locking rate.
	RowsPerTick int
	// ThinkTicks is the idle time between transactions.
	ThinkTicks int
	// HoldTicks holds the read set before commit (aggregation phase).
	HoldTicks int
	// ReadOnly runs the scans as readonly transactions: reads acquire
	// zero-CAS optimistic tokens validated at commit, retrying on
	// invalidation (writes still run as ordinary RR transactions).
	ReadOnly bool
}

// DefaultDSSScanProfile returns the bench/workbench shape: 99.5% S over a
// large key range with every scan revisiting a 256-row hot set, a cold
// chunk walk every 8th transaction, and 0.5% single-row updates.
func DefaultDSSScanProfile(cat *storage.Catalog) DSSScanProfile {
	return DSSScanProfile{
		Table:       cat.ByName("lineitem"),
		HotRows:     256,
		ScanRows:    48,
		ColdEvery:   8,
		ColdRows:    32,
		WriteFrac:   0.005,
		RowsPerTick: 48,
		ThinkTicks:  1,
		HoldTicks:   1,
	}
}

// DSSScan is one repeating scan client.
type DSSScan struct {
	db   *engine.Database
	prof DSSScanProfile
	rng  *rand.Rand

	conn   *engine.Conn
	tx     *txn.Txn
	op     *txn.Op
	state  clientState
	active bool

	writing   bool
	cold      bool
	txCount   int64
	rowsLeft  int
	scanBase  uint64
	scanNext  int
	thinkLeft int
	holdLeft  int

	commits     int64
	aborts      int64
	invalidated int64
	denials     int64
}

// NewDSSScan creates a repeating scan client with a deterministic seed.
func NewDSSScan(db *engine.Database, prof DSSScanProfile, seed int64) *DSSScan {
	return &DSSScan{db: db, prof: prof, rng: rand.New(rand.NewSource(seed))}
}

// SetActive marks the client as (in)active (drains like OLTP).
func (c *DSSScan) SetActive(active bool) { c.active = active }

// Active reports whether the client still occupies the system.
func (c *DSSScan) Active() bool { return c.active || c.state != stateDisconnected }

// Commits returns the client's committed transaction count.
func (c *DSSScan) Commits() int64 { return c.commits }

// Aborts returns the client's aborted transaction count.
func (c *DSSScan) Aborts() int64 { return c.aborts }

// Invalidated returns how many readonly commits failed optimistic
// validation (each is retried as a fresh transaction).
func (c *DSSScan) Invalidated() int64 { return c.invalidated }

// Step advances the client by one tick.
func (c *DSSScan) Step() {
	switch c.state {
	case stateDisconnected:
		if !c.active {
			return
		}
		c.conn = c.db.Connect()
		c.state = stateThinking
		c.thinkLeft = c.rng.Intn(c.prof.ThinkTicks + 1)
	case stateThinking:
		if !c.active {
			if c.conn != nil {
				_ = c.conn.Close()
				c.conn = nil
			}
			c.state = stateDisconnected
			return
		}
		c.thinkLeft--
		if c.thinkLeft <= 0 {
			c.begin()
		}
	case stateAcquiring:
		c.acquire()
	case stateHolding:
		c.holdLeft--
		if c.holdLeft <= 0 {
			c.finish(true)
		}
	}
}

func (c *DSSScan) begin() {
	c.txCount++
	c.writing = c.rng.Float64() < c.prof.WriteFrac
	c.cold = !c.writing && c.prof.ColdEvery > 0 && c.txCount%int64(c.prof.ColdEvery) == 0
	c.tx = c.conn.Begin()
	switch {
	case c.writing:
		c.rowsLeft = 1
	case c.cold:
		c.rowsLeft = c.prof.ColdRows
		c.scanBase = c.prof.HotRows + c.rng.Uint64()%maxu64(c.prof.Table.Rows-c.prof.HotRows, 1)
	default:
		c.rowsLeft = c.prof.ScanRows
		c.scanBase = c.rng.Uint64() % maxu64(c.prof.HotRows, 1)
		if c.prof.ReadOnly {
			_ = c.tx.SetIsolation(txn.ReadOnly)
		}
	}
	c.scanNext = 0
	c.state = stateAcquiring
	c.op = nil
	c.acquire()
}

func (c *DSSScan) acquire() {
	budget := c.prof.RowsPerTick
	for budget > 0 {
		if c.op != nil {
			switch c.op.Poll() {
			case txn.OpWaiting:
				return
			case txn.OpDenied:
				c.denials++
				c.finish(false)
				return
			}
			c.op = nil
			c.rowsLeft--
			budget--
			continue
		}
		if c.rowsLeft <= 0 {
			c.holdLeft = c.prof.HoldTicks
			c.state = stateHolding
			return
		}
		var row uint64
		mode := lockmgr.ModeS
		switch {
		case c.writing:
			mode = lockmgr.ModeX
			row = c.rng.Uint64() % maxu64(c.prof.HotRows, 1)
		case c.cold:
			row = (c.scanBase + uint64(c.scanNext)) % c.prof.Table.Rows
		default:
			row = (c.scanBase + uint64(c.scanNext)) % maxu64(c.prof.HotRows, 1)
		}
		c.scanNext++
		c.db.TouchRow(c.prof.Table, row)
		c.op = c.tx.AcquireRow(c.prof.Table.ID, row, mode, 1)
	}
}

func (c *DSSScan) finish(commit bool) {
	if commit {
		if err := c.tx.CommitValidated(); err != nil {
			// Optimistic invalidation: the whole scan retries as a fresh
			// transaction after the think-time backoff below (the
			// client-level arm of the bounded retry loop).
			c.invalidated++
			c.aborts++
			commit = false
		} else {
			c.commits++
		}
	} else {
		c.tx.Abort()
		c.aborts++
	}
	c.tx, c.op = nil, nil
	c.state = stateThinking
	think := c.prof.ThinkTicks
	if !commit {
		think += 1 // bounded backoff before the retry
	}
	c.thinkLeft = think
	if !c.active {
		if c.conn != nil {
			_ = c.conn.Close()
			c.conn = nil
		}
		c.state = stateDisconnected
	}
}

func maxu64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
