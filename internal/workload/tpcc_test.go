package workload

import (
	"testing"

	"repro/internal/storage"
)

func TestLookupTPCCTables(t *testing.T) {
	cat := storage.CombinedTPCCTPCH()
	tabs, err := LookupTPCCTables(cat)
	if err != nil {
		t.Fatal(err)
	}
	if tabs.Warehouse.Rows != 50 || tabs.District.Rows != 500 {
		t.Fatalf("unexpected scale: %d warehouses, %d districts", tabs.Warehouse.Rows, tabs.District.Rows)
	}
	if _, err := LookupTPCCTables(storage.NewCatalog()); err == nil {
		t.Fatal("empty catalog accepted")
	}
}

func TestTxnTypeStrings(t *testing.T) {
	want := map[TPCCTxnType]string{
		TxnNewOrder: "new-order", TxnPayment: "payment", TxnOrderStatus: "order-status",
		TxnDelivery: "delivery", TxnStockLevel: "stock-level",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d = %q, want %q", typ, typ.String(), s)
		}
	}
	if TPCCTxnType(99).String() != "TPCCTxnType(99)" {
		t.Fatal("unknown type string")
	}
}

func TestTPCCRunsAndCommits(t *testing.T) {
	db := newDB(t)
	c, err := NewTPCC(db, DefaultTPCCProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	c.SetActive(true)
	for i := 0; i < 600; i++ {
		c.Step()
		db.Locks().DetectDeadlocks()
	}
	if c.Commits() < 20 {
		t.Fatalf("commits = %d (aborts %d)", c.Commits(), c.Aborts())
	}
	// Drain cleanly.
	c.SetActive(false)
	for i := 0; i < 200 && c.Active(); i++ {
		c.Step()
	}
	if got := db.Locks().UsedStructs(); got != 0 {
		t.Fatalf("locks leaked: %d", got)
	}
	if db.Locks().NumApps() != 0 {
		t.Fatal("connection leaked")
	}
}

func TestTPCCMixMatchesStandard(t *testing.T) {
	db := newDB(t)
	c, err := NewTPCC(db, DefaultTPCCProfile(), 11)
	if err != nil {
		t.Fatal(err)
	}
	// Sample the type generator directly for a tight statistical check.
	var counts [numTxnTypes]int
	const n = 20000
	for i := 0; i < n; i++ {
		counts[c.sampleType()]++
	}
	within := func(got int, wantPct, tol float64) bool {
		frac := float64(got) / n * 100
		return frac > wantPct-tol && frac < wantPct+tol
	}
	if !within(counts[TxnNewOrder], 45, 2) || !within(counts[TxnPayment], 43, 2) ||
		!within(counts[TxnOrderStatus], 4, 1) || !within(counts[TxnDelivery], 4, 1) ||
		!within(counts[TxnStockLevel], 4, 1) {
		t.Fatalf("mix off: %v", counts)
	}
}

func TestTPCCStepShapes(t *testing.T) {
	db := newDB(t)
	c, err := NewTPCC(db, DefaultTPCCProfile(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// New-order: 3 header reads + lines×(item+stock) + order + neworder +
	// lines orderlines, lines ∈ [5,15] → between 20 and 50 steps.
	for i := 0; i < 50; i++ {
		s := c.buildSteps(TxnNewOrder)
		if len(s) < 20 || len(s) > 50 {
			t.Fatalf("new-order steps = %d", len(s))
		}
	}
	// Delivery is the heavyweight: 10 districts × 8 steps.
	if got := len(c.buildSteps(TxnDelivery)); got != 80 {
		t.Fatalf("delivery steps = %d, want 80", got)
	}
	if got := len(c.buildSteps(TxnPayment)); got != 4 {
		t.Fatalf("payment steps = %d, want 4", got)
	}
	if got := len(c.buildSteps(TxnStockLevel)); got != 41 {
		t.Fatalf("stock-level steps = %d, want 41", got)
	}
	// Every step's row is within its table.
	for typ := TPCCTxnType(0); typ < numTxnTypes; typ++ {
		for _, st := range c.buildSteps(typ) {
			if st.row >= st.table.Rows {
				t.Fatalf("%v: row %d out of range for %s (%d rows)", typ, st.row, st.table.Name, st.table.Rows)
			}
		}
	}
}

func TestTPCCContentionOnDistricts(t *testing.T) {
	db := newDB(t)
	prof := DefaultTPCCProfile()
	prof.Warehouses = 2 // concentrate on 20 district rows
	clients := make([]*TPCC, 16)
	for i := range clients {
		c, err := NewTPCC(db, prof, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		c.SetActive(true)
		clients[i] = c
	}
	for tick := 0; tick < 300; tick++ {
		for _, c := range clients {
			c.Step()
		}
		db.Locks().DetectDeadlocks()
	}
	if db.Locks().Stats().Waits == 0 {
		t.Fatal("no contention on shared districts")
	}
	var commits int64
	for _, c := range clients {
		commits += c.Commits()
	}
	if commits == 0 {
		t.Fatal("no progress under contention")
	}
}
