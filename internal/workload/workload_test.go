package workload

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/lockmgr"
	"repro/internal/txn"
)

func newDB(t *testing.T) *engine.Database {
	t.Helper()
	db, err := engine.Open(engine.Config{
		Clock:       clock.NewSim(),
		LockTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSchedules(t *testing.T) {
	c := Constant(7)
	if c(0) != 7 || c(1e9) != 7 {
		t.Fatal("Constant wrong")
	}
	r := Ramp(10, 110, 100, 200)
	if r(0) != 10 || r(50) != 10 {
		t.Fatal("ramp before start")
	}
	if r(150) != 60 {
		t.Fatalf("ramp midpoint = %d, want 60", r(150))
	}
	if r(200) != 110 || r(1e9) != 110 {
		t.Fatal("ramp after end")
	}
	s := Step(50, 130, 1500)
	if s(1499) != 50 || s(1500) != 130 {
		t.Fatal("step wrong")
	}
}

func TestOLTPLifecycle(t *testing.T) {
	db := newDB(t)
	prof := DefaultOLTPProfile(db.Catalog())
	c := NewOLTP(db, prof, 1)

	// Inactive client does nothing.
	c.Step()
	if db.Locks().NumApps() != 0 {
		t.Fatal("inactive client connected")
	}

	c.SetActive(true)
	for i := 0; i < 200; i++ {
		c.Step()
	}
	if c.Commits() == 0 {
		t.Fatalf("no commits after 200 ticks (aborts=%d)", c.Aborts())
	}
	if db.Locks().NumApps() != 1 {
		t.Fatal("client not connected")
	}

	// Deactivate: the client drains and disconnects.
	c.SetActive(false)
	for i := 0; i < 100 && c.Active(); i++ {
		c.Step()
	}
	if c.Active() {
		t.Fatal("client did not drain")
	}
	if db.Locks().NumApps() != 0 {
		t.Fatal("client did not disconnect")
	}
	if got := db.Locks().UsedStructs(); got != 0 {
		t.Fatalf("locks leaked: %d structs", got)
	}
}

func TestOLTPDeterminism(t *testing.T) {
	run := func() int64 {
		db := newDB(t)
		prof := DefaultOLTPProfile(db.Catalog())
		c := NewOLTP(db, prof, 42)
		c.SetActive(true)
		for i := 0; i < 300; i++ {
			c.Step()
		}
		return c.Commits()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
}

func TestOLTPSlowdownReducesThroughput(t *testing.T) {
	run := func(slow int) int64 {
		db := newDB(t)
		prof := DefaultOLTPProfile(db.Catalog())
		prof.HotRows = 0 // no conflicts: isolate the slowdown effect
		c := NewOLTP(db, prof, 42)
		c.SetSlowdown(slow)
		c.SetActive(true)
		for i := 0; i < 500; i++ {
			c.Step()
		}
		return c.Commits()
	}
	fast, slow := run(0), run(5)
	if slow >= fast {
		t.Fatalf("slowdown had no effect: fast=%d slow=%d", fast, slow)
	}
}

func TestOLTPConflictsCauseWaits(t *testing.T) {
	db := newDB(t)
	prof := DefaultOLTPProfile(db.Catalog())
	prof.HotRows = 10 // tiny hot set: guaranteed collisions
	prof.HotFrac = 1.0
	prof.WriteFrac = 1.0
	clients := make([]*OLTP, 8)
	for i := range clients {
		clients[i] = NewOLTP(db, prof, int64(i))
		clients[i].SetActive(true)
	}
	for tick := 0; tick < 200; tick++ {
		for _, c := range clients {
			c.Step()
		}
		db.Locks().DetectDeadlocks()
	}
	if db.Locks().Stats().Waits == 0 {
		t.Fatal("hot-set writers produced no lock waits")
	}
}

func TestDSSLifecycle(t *testing.T) {
	db := newDB(t)
	cat := db.Catalog()
	d := NewDSS(db, DSSProfile{
		Table:         cat.ByName("lineitem"),
		ChunkRows:     64,
		Chunks:        100,
		ChunksPerTick: 10,
		HoldTicks:     5,
		SortPages:     64,
	})
	d.Step() // inactive: no-op
	if d.Done() || db.Locks().NumApps() != 0 {
		t.Fatal("inactive DSS did something")
	}
	d.SetActive(true)
	ticks := 0
	for !d.Done() && ticks < 100 {
		d.Step()
		ticks++
	}
	if !d.Done() {
		t.Fatal("DSS did not complete")
	}
	if got := d.LocksAcquired(); got != 100 {
		t.Fatalf("chunks = %d, want 100", got)
	}
	if d.Commits() != 1 {
		t.Fatalf("commits = %d", d.Commits())
	}
	// Scan+hold takes at least chunks/rate + hold ticks.
	if ticks < 100/10+5-2 {
		t.Fatalf("completed suspiciously fast: %d ticks", ticks)
	}
	if got := db.Locks().UsedStructs(); got != 0 {
		t.Fatalf("locks leaked after commit: %d", got)
	}
	if db.Locks().NumApps() != 0 {
		t.Fatal("DSS connection not closed")
	}
}

func TestDSSConsumesWeightedStructs(t *testing.T) {
	db := newDB(t)
	cat := db.Catalog()
	d := NewDSS(db, DSSProfile{
		Table:         cat.ByName("lineitem"),
		ChunkRows:     64,
		Chunks:        50,
		ChunksPerTick: 50,
		HoldTicks:     100, // hold so we can observe
	})
	d.SetActive(true)
	d.Step()
	d.Step()
	// 50 chunks × 64 structs + 1 intent.
	if got := db.Locks().UsedStructs(); got < 50*64 {
		t.Fatalf("structs = %d, want >= %d", got, 50*64)
	}
}

func TestBatchRolloutXMode(t *testing.T) {
	db := newDB(t)
	cat := db.Catalog()
	batch := NewDSS(db, DSSProfile{
		Table:         cat.ByName("order_line"),
		Mode:          lockmgr.ModeX, // batch update/delete rollout
		ChunkRows:     64,
		Chunks:        40,
		ChunksPerTick: 20,
		HoldTicks:     50,
	})
	batch.SetActive(true)
	batch.Step()
	batch.Step()
	batch.Step()

	// The rollout holds X chunk locks under an IX table intent.
	var sawX bool
	for _, li := range db.Locks().DumpLocks() {
		for _, h := range li.Holders {
			if li.Name.Gran == lockmgr.GranRow && h.Mode == lockmgr.ModeX {
				sawX = true
			}
		}
	}
	if !sawX {
		t.Fatal("rollout did not take X row locks")
	}
	// A concurrent reader on a locked row must wait.
	conn := db.Connect()
	tx := conn.Begin()
	op := tx.AcquireRow(cat.ByName("order_line").ID, 0, lockmgr.ModeS, 1)
	if op.Poll() != txn.OpWaiting {
		t.Fatalf("reader state = %v, want waiting behind the rollout", op.Poll())
	}
	tx.Abort()
}
