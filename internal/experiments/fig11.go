package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// dbPages5GB is the paper's experimental scale (5.11 GB of database memory,
// rounded to 5 GB of 4 KB pages). The Figure 11 ratios — steady lock memory
// at 0.15% of database memory, a 60× surge, a peak near 10% — only fit
// between the 2 MB minimum and the 20% maximum at this scale, so this one
// experiment runs at it. Memory is accounted virtually; the process
// footprint stays modest because the DSS scan locks contiguous 64-row
// chunks, each accounted as 64 lock structures (DESIGN.md §5).
const dbPages5GB = 1310720

// Fig11DSSInjection reproduces Figure 11: a reporting query with massive
// row-locking requirements is injected into a steady 130-client OLTP system
// after 5.5 minutes. The paper reports ≈60× lock memory growth within the
// first ~25 seconds (synchronously, out of overflow memory), a peak over
// 500 MB ≈ 10% of database memory, and no exclusive lock escalations; the
// adaptive lockPercentPerApplication lets the single query dominate lock
// memory.
func Fig11DSSInjection() *Outcome {
	db, clk := newAdaptiveDB(dbPages5GB, 0)
	cat := db.Catalog()

	// A heavier OLTP mix than the other figures: the paper's fig-11 OLTP
	// steady state used ≈8 MB (2048 pages) of lock memory, i.e. ≈500
	// locks held per client.
	prof := workload.DefaultOLTPProfile(cat)
	prof.RowsMin, prof.RowsMax = 900, 1100
	prof.RowsPerTick = 200
	prof.ThinkTicks = 2
	prof.HoldTicks = 2
	// The paper's fig-11 OLTP sustains high throughput alongside the DSS
	// query: its transactions rarely collide. Locking ~1000 rows from a
	// 4000-row hot set would serialize all 130 clients instead, so this
	// profile spreads accesses uniformly over the full tables.
	prof.HotRows = 0

	const injectAt = 330 // 5.5 minutes of steady state

	// The reporting query: ~4.2M row locks in 64-row chunks, acquired
	// fast enough that most growth lands inside one tuning interval.
	dss := workload.NewDSS(db, workload.DSSProfile{
		Table:         cat.ByName("lineitem"),
		ChunkRows:     64,
		Chunks:        65536, // 65536 × 64 structs = 65536 pages used
		ChunksPerTick: 2600,  // ≈ full scan in ~25 virtual seconds
		HoldTicks:     120,   // aggregation phase before commit
		SortPages:     4096,
	})

	clients := makeOLTPPool(db, prof, 130)
	oltp := make([]*workload.OLTP, len(clients))
	for i, c := range clients {
		oltp[i] = c.(*workload.OLTP)
	}

	res := sim.Run(sim.Config{
		DB:         db,
		Clock:      clk,
		Ticks:      900,
		Clients:    clients,
		Schedule:   workload.Constant(130),
		Standalone: []sim.Client{dss},
		Events: []sim.Event{
			{AtTick: injectAt, Fire: func() {
				dss.SetActive(true)
				// CPU and disk-controller competition from the new
				// work slows the OLTP side (the paper attributes the
				// OLTP dip entirely to this, not to locking).
				for _, c := range oltp {
					c.SetSlowdown(2)
				}
			}},
		},
	})

	lock := res.Series.Get("lock memory")
	steady := lock.MeanBetween(120, injectAt)
	peak := lock.Max()
	at25s := lock.ValueAt(injectAt + 25)
	growth25 := at25s / steady

	tp := res.Series.Get("throughput")
	tpSteady := tp.MeanBetween(120, injectAt)
	tpDuring := tp.MeanBetween(injectAt+30, injectAt+150)

	o := &Outcome{ID: "fig11", Title: "Lock memory adaptation for OLTP with sudden DSS injection", Result: res}
	o.Findings = append(o.Findings,
		check("steady lock memory", "≈0.15% of database memory",
			100*steady/float64(dbPages5GB), 0.05, 0.4, "%.2f%%"),
		check("peak lock memory", "≈10% of database memory",
			100*peak/float64(dbPages5GB), 7, 14, "%.1f%%"),
		check("growth factor (peak/steady)", "≈60×", peak/steady, 40, 100, "%.0f×"),
		check("growth in first 25 s", "60× within ~25 s", growth25, 20, 100, "%.0f×"),
		check("exclusive escalations", "0", float64(res.Final.LockStats.ExclusiveEscalations), 0, 0, "%.0f"),
		check("escalations (any mode)", "0 observed", float64(res.Final.LockStats.Escalations), 0, 0, "%.0f"),
		Finding{Label: "DSS query completed", Paper: "query runs to completion",
			Measured: fmt.Sprintf("done=%v locks=%d", dss.Done(), dss.LocksAcquired()), Pass: dss.Done()},
		check("OLTP dip from CPU/disk competition", "reduced but alive",
			tpDuring/tpSteady, 0.3, 1.0, "%.2f of steady"),
	)
	return o
}
