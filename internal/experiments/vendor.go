package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// vendorRun drives the same workload — steady OLTP plus one reporting query
// — through an engine with the given lock-memory policy and returns the
// run plus the DSS client.
func vendorRun(policy engine.Policy) (*sim.Result, *workload.DSS) {
	clk := clock.NewSim()
	initial := 96
	if policy == engine.PolicySQLServer {
		initial = baseline.SQLServerInitialPages()
	}
	db, err := engine.Open(engine.Config{
		DatabasePages:    dbPages512MB,
		InitialLockPages: initial,
		Policy:           policy,
		StaticQuotaPct:   10,
		Clock:            clk,
		LockTimeout:      60 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	cat := db.Catalog()
	// The Figure 7 load: heavy enough that the static 0.4 MB LOCKLIST is
	// inadequate, while the adaptive policy absorbs it without incident.
	prof := workload.DefaultOLTPProfile(cat)
	prof.RowsMin, prof.RowsMax = 80, 160

	dss := workload.NewDSS(db, workload.DSSProfile{
		Table:         cat.ByName("lineitem"),
		ChunkRows:     64,
		Chunks:        4096, // 4096 pages ≈ 3% of database memory
		ChunksPerTick: 400,
		HoldTicks:     60,
		SortPages:     1024,
	})

	res := sim.Run(sim.Config{
		DB:         db,
		Clock:      clk,
		Ticks:      600,
		Clients:    makeOLTPPool(db, prof, 130),
		Schedule:   workload.Ramp(1, 130, 0, 120),
		Standalone: []sim.Client{dss},
		Events:     []sim.Event{{AtTick: 200, Fire: func() { dss.SetActive(true) }}},
	})
	return res, dss
}

// VendorComparison contrasts the section 2.3 policies on one workload: DB2 9
// adaptive tuning, the static pre-9 configuration, the SQL Server 2005
// model, and the Oracle on-page ITL model.
func VendorComparison() *Outcome {
	adaptive, adaptiveDSS := vendorRun(engine.PolicyAdaptive)
	static, _ := vendorRun(engine.PolicyStatic)
	sqlsrv, _ := vendorRun(engine.PolicySQLServer)

	o := &Outcome{ID: "vendor", Title: "Policy comparison: adaptive vs static vs SQL Server 2005 vs Oracle ITL", Result: adaptive}

	aEsc := adaptive.Final.LockStats.Escalations
	sEsc := static.Final.LockStats.Escalations
	qEsc := sqlsrv.Final.LockStats.Escalations

	o.Findings = append(o.Findings,
		Finding{Label: "adaptive: escalations", Paper: "0 (goal: avoid at all times)",
			Measured: fmt.Sprintf("%d", aEsc), Pass: aEsc == 0},
		Finding{Label: "adaptive: DSS completes under row locking", Paper: "single user may dominate",
			Measured: fmt.Sprintf("done=%v", adaptiveDSS.Done()), Pass: adaptiveDSS.Done()},
		Finding{Label: "static 0.4MB: escalations", Paper: "many (inadequate LOCKLIST)",
			Measured: fmt.Sprintf("%d", sEsc), Pass: sEsc > 0},
		Finding{Label: "SQL Server: reporting query escalates", Paper: "5000-lock trigger, not configurable",
			Measured: fmt.Sprintf("%d escalations", qEsc), Pass: qEsc > 0},
	)

	// Memory release after the burst: DB2 relaxes, SQL Server's lock
	// memory never shrinks.
	aLock := adaptive.Series.Get("lock memory")
	qLock := sqlsrv.Series.Get("lock memory")
	aBack := aLock.Last().Value / aLock.Max()
	qBack := qLock.Last().Value / qLock.Max()
	o.Findings = append(o.Findings,
		check("adaptive releases memory after burst", "asynchronous reduction", aBack, 0, 0.95, "%.2f of peak"),
		check("SQL Server keeps lock memory", "no documented shrink", qBack, 1.0, 1.0, "%.2f of peak"),
	)

	// Relative throughput: the adaptive policy should beat the static
	// configuration once the burst has caused static escalations.
	aTP := adaptive.Series.Get("throughput").MeanBetween(200, 600)
	sTP := static.Series.Get("throughput").MeanBetween(200, 600)
	o.Findings = append(o.Findings,
		check("adaptive vs static throughput", "adaptive wins after escalations", aTP/sTP, 1.2, 1e9, "%.1f×"),
	)

	// Oracle ITL micro-benchmark: on-page locking has no lock memory but
	// degrades to page-level blocking when ITLs exhaust, and its ITL
	// space is permanent.
	ora := baseline.NewOracleDB(2, 3)
	pageOf := func(_ uint32, row uint64) uint64 { return row / 64 }
	itlBlockedFreeRow := false
	for txnID := uint64(1); txnID <= 8; txnID++ {
		row := txnID // all on page 0, distinct rows
		if ora.TryLockRow(txnID, 1, row, 0) == baseline.OracleITLWait {
			itlBlockedFreeRow = true
		}
	}
	slotsBefore := ora.PermanentITLSlots()
	for txnID := uint64(1); txnID <= 8; txnID++ {
		ora.ReleaseAll(txnID, pageOf)
	}
	o.Findings = append(o.Findings,
		Finding{Label: "Oracle: ITL exhaustion blocks unlocked rows", Paper: "effectively page-level locking",
			Measured: fmt.Sprintf("%v (waits=%d)", itlBlockedFreeRow, ora.Stats().ITLWaits), Pass: itlBlockedFreeRow},
		Finding{Label: "Oracle: ITL space is permanent", Paper: "not decreased until reorganization",
			Measured: fmt.Sprintf("%d slots before and after release", slotsBefore),
			Pass:     ora.PermanentITLSlots() == slotsBefore && slotsBefore > 2},
	)
	return o
}
