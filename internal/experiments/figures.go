package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/lockmgr"
	"repro/internal/sim"
	"repro/internal/workload"
)

// dbPages512MB scales most experiments to a 512 MB database memory; the
// DSS-injection experiment uses the paper's full 5.11 GB scale because its
// headline ratios (0.15% steady → 10% peak, 60× growth) only fit between the
// 2 MB minimum and the 20% maximum at that scale.
const dbPages512MB = 131072

// newAdaptiveDB opens a self-tuning engine on a simulated clock.
func newAdaptiveDB(dbPages, initialLockPages int) (*engine.Database, *clock.Sim) {
	clk := clock.NewSim()
	db, err := engine.Open(engine.Config{
		DatabasePages:    dbPages,
		InitialLockPages: initialLockPages,
		Policy:           engine.PolicyAdaptive,
		Clock:            clk,
		LockTimeout:      60 * time.Second,
	})
	if err != nil {
		panic(err) // configuration is static; failure is a build bug
	}
	return db, clk
}

// makeOLTPPool builds n OLTP clients with distinct seeds.
func makeOLTPPool(db *engine.Database, prof workload.OLTPProfile, n int) []sim.Client {
	clients := make([]sim.Client, n)
	for i := range clients {
		clients[i] = workload.NewOLTP(db, prof, int64(1000+i))
	}
	return clients
}

// Fig9RampAdaptation reproduces Figure 9: starting from a minimal LOCKLIST,
// an OLTP workload ramps from 1 to 130 clients. The paper reports immediate
// convergence to a stable allocation, a 10.5× increase in lock memory, and
// — "very significantly" — zero lock escalations.
func Fig9RampAdaptation() *Outcome {
	const initialPages = 96 // ≈ 0.4 MB: the minimal configuration
	db, clk := newAdaptiveDB(dbPages512MB, initialPages)
	prof := workload.DefaultOLTPProfile(db.Catalog())

	res := sim.Run(sim.Config{
		DB:       db,
		Clock:    clk,
		Ticks:    900,
		Clients:  makeOLTPPool(db, prof, 130),
		Schedule: workload.Ramp(1, 130, 0, 300),
	})

	lock := res.Series.Get("lock memory")
	tp := res.Series.Get("throughput")
	growth := lock.Last().Value / float64(initialPages)
	earlyTP := tp.MeanBetween(30, 90)
	lateTP := tp.MeanBetween(600, 900)
	// Convergence: the allocation must be at its final level within two
	// tuning intervals of the ramp completing.
	settled := lock.ValueAt(360) / lock.Last().Value

	o := &Outcome{ID: "fig9", Title: "Rapid lock memory adaptation to steady-state OLTP load", Result: res}
	o.Findings = append(o.Findings,
		check("lock memory growth", "10.5×", growth, 8, 13, "%.1f×"),
		check("lock escalations", "0", float64(res.Final.LockStats.Escalations), 0, 0, "%.0f"),
		check("throughput scales with clients", ">4× early load", lateTP/earlyTP, 4, 1e9, "%.1f×"),
		check("settled within 2 intervals of ramp end", "immediate convergence", settled, 0.95, 1.01, "%.2f of final"),
	)
	return o
}

// Fig10WorkloadSurge reproduces Figure 10: 50 clients in steady state for
// 25 minutes, then a switch to 130 clients. The paper reports a practically
// instantaneous increase to "just more than double" the previous allocation
// with no escalations.
func Fig10WorkloadSurge() *Outcome {
	db, clk := newAdaptiveDB(dbPages512MB, 0)
	prof := workload.DefaultOLTPProfile(db.Catalog())
	const surgeAt = 1500 // 25 minutes

	res := sim.Run(sim.Config{
		DB:       db,
		Clock:    clk,
		Ticks:    2400,
		Clients:  makeOLTPPool(db, prof, 130),
		Schedule: workload.Step(50, 130, surgeAt),
	})

	lock := res.Series.Get("lock memory")
	before := lock.MeanBetween(600, surgeAt)
	after := lock.MeanBetween(surgeAt+120, 2400)
	// Responsiveness: within two tuning intervals of the surge the
	// allocation has reached its new level.
	atPlus60 := lock.ValueAt(surgeAt + 60)

	tp := res.Series.Get("throughput")
	tpBefore := tp.MeanBetween(600, surgeAt)
	tpAfter := tp.MeanBetween(surgeAt+120, 2400)

	o := &Outcome{ID: "fig10", Title: "Lock memory with 2.6× workload surge", Result: res}
	o.Findings = append(o.Findings,
		check("allocation ratio after/before", "just more than double", after/before, 1.8, 2.6, "%.2f×"),
		check("growth within 2 intervals", "practically instantaneous", atPlus60/after, 0.9, 1.1, "%.2f of new level"),
		check("lock escalations", "0", float64(res.Final.LockStats.Escalations), 0, 0, "%.0f"),
		check("throughput rises with surge", "higher throughput", tpAfter/tpBefore, 1.5, 1e9, "%.1f×"),
	)
	return o
}

// Fig12GradualReduction reproduces Figure 12: 130 clients for 1500 s, then a
// 76.9% reduction to 30 clients. The paper reports a gradual ≈5%-per-interval
// reduction over about 10 tuning intervals, settling at roughly half the
// earlier allocation.
func Fig12GradualReduction() *Outcome {
	db, clk := newAdaptiveDB(dbPages512MB, 0)
	prof := workload.DefaultOLTPProfile(db.Catalog())
	const shedAt = 1500

	res := sim.Run(sim.Config{
		DB:       db,
		Clock:    clk,
		Ticks:    3000,
		Clients:  makeOLTPPool(db, prof, 130),
		Schedule: workload.Step(130, 30, shedAt),
	})

	lock := res.Series.Get("lock memory")
	before := lock.MeanBetween(900, shedAt)
	final := lock.Last().Value

	// Count tuning intervals from the shed until the allocation first
	// reaches (within one block of) its final level, and verify each
	// step's cut is within δreduce of the previous size.
	intervals := 0
	maxStepFrac := 0.0
	prev := lock.ValueAt(shedAt)
	for t := float64(shedAt) + 30; t <= 3000; t += 30 {
		cur := lock.ValueAt(t)
		if cur < prev {
			frac := (prev - cur) / prev
			if frac > maxStepFrac {
				maxStepFrac = frac
			}
		}
		if cur > final+32 {
			intervals++
		}
		prev = cur
	}

	o := &Outcome{ID: "fig12", Title: "Gradual lock memory reduction", Result: res}
	o.Findings = append(o.Findings,
		check("settles at fraction of prior", "≈ half", final/before, 0.40, 0.60, "%.2f"),
		check("intervals to settle", "≈ 10", float64(intervals), 8, 20, "%.0f"),
		check("max per-interval cut", "δreduce ≈ 5%", maxStepFrac*100, 0, 7.5, "%.1f%%"),
		check("lock escalations", "0", float64(res.Final.LockStats.Escalations), 0, 0, "%.0f"),
	)
	return o
}

var (
	fig78Once sync.Once
	fig78Res  *sim.Result
)

// fig78 runs the shared Figure 7/8 experiment: a static 0.4 MB LOCKLIST with
// MAXLOCKS=10 under a 130-client OLTP ramp — the catastrophe motivating
// self-tuning.
func fig78() *sim.Result {
	fig78Once.Do(func() { fig78Res = runFig78() })
	return fig78Res
}

func runFig78() *sim.Result {
	clk := clock.NewSim()
	db, err := engine.Open(engine.Config{
		DatabasePages:    dbPages512MB,
		InitialLockPages: 96, // ≈ 0.4 MB
		Policy:           engine.PolicyStatic,
		StaticQuotaPct:   10,
		Clock:            clk,
		LockTimeout:      60 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	prof := workload.DefaultOLTPProfile(db.Catalog())
	// Heavier transactions than the adaptive runs so that aggregate
	// demand exceeds the undersized 0.4 MB allocation (the point of the
	// experiment: the static configuration is inadequate).
	prof.RowsMin, prof.RowsMax = 80, 160

	return sim.Run(sim.Config{
		DB:       db,
		Clock:    clk,
		Ticks:    600,
		Clients:  makeOLTPPool(db, prof, 130),
		Schedule: workload.Ramp(1, 130, 0, 120),
	})
}

// Fig7EscalationLockMemory reproduces Figure 7: under the static
// configuration, escalations begin as the ramp saturates the lock memory,
// and the escalations *reduce* the lock memory requirements (row locks
// replaced by table locks).
func Fig7EscalationLockMemory() *Outcome {
	res := fig78()
	esc := res.Series.Get("escalations")
	used := res.Series.Get("lock memory used")

	// Find the first escalation.
	var firstEsc float64 = -1
	for _, s := range esc.Samples() {
		if s.Value > 0 {
			firstEsc = s.Seconds
			break
		}
	}
	peakUsed := used.Max()
	usedAfter := used.MeanAfter(firstEsc + 60)

	o := &Outcome{ID: "fig7", Title: "Escalation under static 0.4 MB LOCKLIST reduces lock memory use", Result: res}
	o.Findings = append(o.Findings,
		Finding{Label: "escalations occur during ramp", Paper: "yes",
			Measured: fmt.Sprintf("first at t=%.0fs, total %d", firstEsc, res.Final.LockStats.Escalations),
			Pass:     firstEsc >= 0 && res.Final.LockStats.Escalations > 0},
		check("lock usage after escalations", "reduced vs peak", usedAfter/peakUsed, 0, 0.8, "%.2f of peak"),
		check("LOCKLIST stays fixed", "0.4 MB", res.Series.Get("lock memory").Last().Value, 96, 96, "%.0f pages"),
	)
	return o
}

// Fig8EscalationThroughput reproduces Figure 8: the same run's throughput
// collapses after escalation — "the system throughput drops practically to
// zero" with only a few of the 130 clients making progress.
func Fig8EscalationThroughput() *Outcome {
	res := fig78()
	esc := res.Series.Get("escalations")
	tp := res.Series.Get("throughput")

	var firstEsc float64 = -1
	for _, s := range esc.Samples() {
		if s.Value > 0 {
			firstEsc = s.Seconds
			break
		}
	}
	peakTP := tp.Max()
	lateTP := tp.MeanAfter(firstEsc + 120)

	o := &Outcome{ID: "fig8", Title: "Escalation collapses system throughput", Result: res}
	o.Findings = append(o.Findings,
		Finding{Label: "escalations occurred", Paper: "yes",
			Measured: fmt.Sprintf("%d", res.Final.LockStats.Escalations),
			Pass:     res.Final.LockStats.Escalations > 0},
		check("throughput after escalation", "drops practically to zero", lateTP/peakTP, 0, 0.25, "%.2f of peak"),
		Finding{Label: "lock waits & deadlocks", Paper: "severe concurrency impact",
			Measured: fmt.Sprintf("%d timeouts, %d deadlocks", res.Final.LockStats.Timeouts, res.Final.LockStats.Deadlocks),
			Pass:     res.Final.LockStats.Timeouts+res.Final.LockStats.Deadlocks > 0},
	)
	return o
}

// Fig3LockQueuing demonstrates the FIFO lock chain of Figure 3 as a
// scenario run against the real lock manager (the unit tests verify it
// mechanically; this produces the narrative for the experiment index).
func Fig3LockQueuing() *Outcome {
	m := lockmgr.New(lockmgr.Config{InitialPages: 32})
	owners := make([]*lockmgr.Owner, 5)
	for i := 1; i <= 4; i++ {
		owners[i] = m.NewOwner(m.RegisterApp())
	}
	row := lockmgr.RowName(1, 1)
	p1 := m.AcquireAsync(owners[1], row, lockmgr.ModeS, 1)
	p2 := m.AcquireAsync(owners[2], row, lockmgr.ModeS, 1)
	p3 := m.AcquireAsync(owners[3], row, lockmgr.ModeX, 1)
	p4 := m.AcquireAsync(owners[4], row, lockmgr.ModeS, 1)

	st1, _ := p1.Status()
	st2, _ := p2.Status()
	st3, _ := p3.Status()
	st4, _ := p4.Status()
	shared := st1 == lockmgr.StatusGranted && st2 == lockmgr.StatusGranted
	queued := st3 == lockmgr.StatusWaiting && st4 == lockmgr.StatusWaiting

	m.ReleaseAll(owners[1])
	m.ReleaseAll(owners[2])
	st3b, _ := p3.Status()
	st4b, _ := p4.Status()
	ordered := st3b == lockmgr.StatusGranted && st4b == lockmgr.StatusWaiting

	o := &Outcome{ID: "fig3", Title: "Lock queuing: share group, then FIFO chain"}
	o.Findings = append(o.Findings,
		Finding{Label: "app1+app2 share one lock", Paper: "compatible S holders share", Measured: fmt.Sprintf("%v", shared), Pass: shared},
		Finding{Label: "app3 X and app4 S queue", Paper: "chain forms behind X", Measured: fmt.Sprintf("%v", queued), Pass: queued},
		Finding{Label: "app3 served before app4", Paper: "requests serviced in order", Measured: fmt.Sprintf("%v", ordered), Pass: ordered},
	)
	return o
}
