package experiments

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Overprovision quantifies the introduction's economic argument: configuring
// lock memory statically "for peak requirements" causes "significant memory
// waste" — memory that the buffer pool needed. Two engines run the same
// I/O-sensitive OLTP workload:
//
//   - adaptive: lock memory self-tunes to the few MB actually needed and
//     STMM hands the surplus to the buffer pool;
//   - peak-provisioned: a static LOCKLIST sized at the 20% ceiling (the
//     "monthly batch peak" insurance), with a correspondingly smaller
//     buffer pool and no redistribution.
//
// The expected shape: the adaptive system ends with a much larger buffer
// pool, a higher hit ratio, and higher throughput — without escalations.
func Overprovision() *Outcome {
	run := func(policy engine.Policy, lockPages int, bpFrac float64) (*sim.Result, *engine.Database) {
		clk := clock.NewSim()
		db, err := engine.Open(engine.Config{
			DatabasePages:    dbPages512MB,
			InitialLockPages: lockPages,
			BufferPoolFrac:   bpFrac,
			Policy:           policy,
			StaticQuotaPct:   90, // generous: escalations are not the point here
			Clock:            clk,
			LockTimeout:      60 * time.Second,
		})
		if err != nil {
			panic(err)
		}
		prof := workload.DefaultOLTPProfile(db.Catalog())
		// An I/O-sensitive working set: ≈6 GB of warm rows across the
		// four tables, far beyond any buffer pool here, so every page
		// of buffer pool earns hits; a miss costs one tick of I/O.
		prof.WarmRows = 1_500_000
		prof.HotRows = 0
		prof.MissPenalty = 0.25
		clients := make([]sim.Client, 60)
		for i := range clients {
			clients[i] = workload.NewOLTP(db, prof, int64(i+1))
		}
		res := sim.Run(sim.Config{
			DB:       db,
			Clock:    clk,
			Ticks:    1200,
			Clients:  clients,
			Schedule: workload.Constant(60),
		})
		return res, db
	}

	// Peak-provisioned static: LOCKLIST at the 20% ceiling; the buffer
	// pool gives up those pages.
	peakLock := 26208
	staticRes, staticDB := run(engine.PolicyStatic, peakLock, 0.45)
	// Adaptive: the same total memory, lock memory starts at the minimum.
	adaptRes, adaptDB := run(engine.PolicyAdaptive, 0, 0.45)

	aHit := adaptDB.Pool().HitRatio()
	sHit := staticDB.Pool().HitRatio()
	aTP := adaptRes.Series.Get("throughput").MeanAfter(600)
	sTP := staticRes.Series.Get("throughput").MeanAfter(600)
	aBP := adaptRes.Series.Get("bufferpool").Last().Value
	sBP := staticRes.Series.Get("bufferpool").Last().Value
	aLock := adaptRes.Series.Get("lock memory").Last().Value

	o := &Outcome{ID: "overprovision",
		Title:  "Cost of peak-sized static lock memory vs self-tuning (section 1 motivation)",
		Result: adaptRes}
	o.Findings = append(o.Findings,
		Finding{Label: "adaptive lock memory settles small", Paper: "locks need 1–10% typically",
			Measured: fmt.Sprintf("%.0f pages (%.1f%% of memory) vs %d static", aLock, 100*aLock/dbPages512MB, peakLock),
			Pass:     aLock < float64(peakLock)/5},
		Finding{Label: "buffer pool reclaims the waste", Paper: "over-allocation reduces cache memory",
			Measured: fmt.Sprintf("%.0f vs %.0f pages", aBP, sBP), Pass: aBP > sBP+10000},
		Finding{Label: "hit ratio", Paper: "more cache → more hits",
			Measured: fmt.Sprintf("%.1f%% vs %.1f%%", 100*aHit, 100*sHit), Pass: aHit > sHit},
		check("throughput advantage", "adaptive wins", aTP/sTP, 1.05, 1e9, "%.2fx"),
		Finding{Label: "no escalations on either side", Paper: "ample lock memory in both",
			Measured: fmt.Sprintf("adaptive %d, static %d",
				adaptRes.Final.LockStats.Escalations, staticRes.Final.LockStats.Escalations),
			Pass: adaptRes.Final.LockStats.Escalations == 0 && staticRes.Final.LockStats.Escalations == 0},
	)
	return o
}
