package experiments

import (
	"strings"
	"testing"
)

// assertPassed fails the test with the rendered findings table when any
// finding missed its band.
func assertPassed(t *testing.T, o *Outcome) {
	t.Helper()
	if !o.Passed() {
		t.Fatalf("experiment %s failed:\n%s", o.ID, o)
	}
	t.Logf("\n%s", o)
}

func TestTable1(t *testing.T) { assertPassed(t, Table1()) }
func TestFig3(t *testing.T)   { assertPassed(t, Fig3LockQueuing()) }
func TestFig6(t *testing.T)   { assertPassed(t, Fig6WorkedExample()) }
func TestFig7(t *testing.T)   { assertPassed(t, Fig7EscalationLockMemory()) }
func TestFig8(t *testing.T)   { assertPassed(t, Fig8EscalationThroughput()) }
func TestFig9(t *testing.T)   { assertPassed(t, Fig9RampAdaptation()) }
func TestFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	assertPassed(t, Fig10WorkloadSurge())
}
func TestFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	assertPassed(t, Fig11DSSInjection())
}
func TestFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	assertPassed(t, Fig12GradualReduction())
}
func TestOverprovision(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	assertPassed(t, Overprovision())
}
func TestVendor(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	assertPassed(t, VendorComparison())
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"table1", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "vendor", "overprovision"} {
		if reg[id] == nil {
			t.Fatalf("registry missing %s", id)
		}
	}
	if len(IDs()) != len(reg) {
		t.Fatal("IDs() incomplete")
	}
}

func TestOutcomeString(t *testing.T) {
	o := &Outcome{ID: "x", Title: "t", Findings: []Finding{
		{Label: "a", Paper: "p", Measured: "m", Pass: true},
		{Label: "b", Paper: "p", Measured: "m", Pass: false},
	}}
	s := o.String()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "FAIL") {
		t.Fatalf("rendering wrong:\n%s", s)
	}
	if o.Passed() {
		t.Fatal("outcome with a failed finding must not pass")
	}
}

func TestOutcomeMarkdown(t *testing.T) {
	o := &Outcome{ID: "x", Title: "t", Findings: []Finding{
		{Label: "a", Paper: "p", Measured: "m", Pass: true},
		{Label: "b", Paper: "q", Measured: "n", Pass: false},
	}}
	md := o.Markdown()
	for _, want := range []string{"### x — t", "| a | p | m | ✅ |", "| b | q | n | ❌ |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
