package experiments

import (
	"fmt"

	"repro/internal/lockmgr"
	"repro/internal/txn"
)

// Fig6WorkedExample replays section 4's descriptive example as a scripted
// run: a single application whose lock-structure demand follows the T0…Tn
// narrative, with the STMM controller tuning on interval boundaries.
//
//	T0  steady state: ~2% of memory used by locks, allocation ~4% (half free)
//	T1  surge to 3% used — absorbed by the free structures, no allocation
//	T2  tuning interval: grow to restore minFree (allocation ~6%)
//	T3  surge to 8% used — free space + synchronous overflow consumption
//	T4  tuning interval: rebalance, allocation ~16%, overflow repaid
//	T5  demand back to 2% — most of the lock memory now empty
//	T6+ δreduce shrinking, 5% per interval, toward maxFree free
func Fig6WorkedExample() *Outcome {
	db, clk := newAdaptiveDB(dbPages512MB, 0)
	_ = clk
	locks := db.Locks()
	cat := db.Catalog()
	fact := cat.ByName("lineitem")

	conn := db.Connect()
	tx := conn.Begin()

	dbf := float64(dbPages512MB)
	pct := func(pages int) float64 { return 100 * float64(pages) / dbf }

	// demand drives the held lock structures to `usedPages` pages' worth
	// using 64-row chunk locks.
	var held []uint64 // chunk indices held
	demand := func(usedPages int) {
		targetChunks := usedPages // one chunk (64 structs) per page
		for len(held) < targetChunks {
			idx := uint64(len(held))
			op := tx.AcquireRow(fact.ID, idx*64, lockmgr.ModeS, 64)
			if op.Poll() != txn.OpGranted {
				panic(fmt.Sprintf("worked example: lock denied: %v", op.Err()))
			}
			held = append(held, idx)
		}
		for len(held) > targetChunks {
			idx := held[len(held)-1]
			held = held[:len(held)-1]
			if err := locks.Release(tx.Owner(), lockmgr.RowName(uint32(fact.ID), idx*64)); err != nil {
				panic(err)
			}
		}
	}

	o := &Outcome{ID: "fig6", Title: "Worked example of combined synchronous & asynchronous tuning (section 4)"}
	add := func(label, paper string, measured string, pass bool) {
		o.Findings = append(o.Findings, Finding{Label: label, Paper: paper, Measured: measured, Pass: pass})
	}

	// T0: ~2% used; tune twice to reach steady state.
	demand(int(0.02 * dbf))
	db.TuneOnce()
	db.TuneOnce()
	t0Alloc := locks.Pages()
	add("T0 allocation", "≈4% of memory (2% used, half free)",
		fmt.Sprintf("%.1f%% alloc, %.1f%% used", pct(t0Alloc), pct(locks.UsedPages())),
		pct(t0Alloc) > 3.5 && pct(t0Alloc) < 4.6)

	// T1: surge to 3% used mid-interval — contained by free structures.
	demand(int(0.03 * dbf))
	add("T1 surge to 3% used", "no new allocation needed",
		fmt.Sprintf("alloc still %.1f%%", pct(locks.Pages())), locks.Pages() == t0Alloc)

	// T2: tuning interval restores minFree.
	rep2, _ := db.TuneOnce()
	t2Alloc := locks.Pages()
	add("T2 grow to restore minFree", "≈6% of memory",
		fmt.Sprintf("%.1f%%", pct(t2Alloc)), pct(t2Alloc) > 5.5 && pct(t2Alloc) < 7)
	add("T2 funded by least-needy heaps", "sort donates, no overflow",
		fmt.Sprintf("fromPMCs=%d fromOverflow=%d", rep2.FromPMCs, rep2.FromOverflow),
		rep2.FromPMCs > 0)

	// T3: 267% surge to 8% used — synchronous overflow consumption.
	overflowBefore := db.Set().Overflow()
	demand(int(0.08 * dbf))
	lmo := db.Controller().LMO()
	add("T3 surge to 8% used", "part from free space, ~2% synchronously from overflow",
		fmt.Sprintf("LMO=%.1f%% of memory, overflow %.1f%%→%.1f%%",
			pct(lmo), pct(overflowBefore), pct(db.Set().Overflow())),
		lmo > 0 && db.Set().Overflow() < overflowBefore)

	// T4: tuning interval rebalances and repays overflow.
	rep4, _ := db.TuneOnce()
	add("T4 rebalance", "heaps reduced, overflow reclaimed, alloc ≈16%",
		fmt.Sprintf("alloc %.1f%%, repaid %d pages, LMO=%d", pct(locks.Pages()), rep4.RepaidOverflow, db.Controller().LMO()),
		pct(locks.Pages()) > 14 && pct(locks.Pages()) < 18 && db.Controller().LMO() == 0 &&
			db.Set().OverflowDeficit() == 0)

	// T5: pressure returns to the T0 level.
	demand(int(0.02 * dbf))
	free := locks.FreeFraction()
	add("T5 demand returns to 2%", "most of lock memory empty (≈87.5%)",
		fmt.Sprintf("%.1f%% free", free*100), free > 0.80)

	// T6+: δreduce shrinking, ≤5% (plus block rounding) per interval.
	sizes := []int{locks.Pages()}
	intervals := 0
	for i := 0; i < 40; i++ {
		db.TuneOnce()
		sizes = append(sizes, locks.Pages())
		if sizes[len(sizes)-1] < sizes[len(sizes)-2] {
			intervals++
		} else if intervals > 0 {
			break
		}
	}
	maxCut := 0.0
	for i := 1; i < len(sizes); i++ {
		if cut := float64(sizes[i-1]-sizes[i]) / float64(sizes[i-1]); cut > maxCut {
			maxCut = cut
		}
	}
	finalFree := locks.FreeFraction()
	add("T6..Tn gradual shrink", "δreduce = 5% per interval",
		fmt.Sprintf("%d shrink intervals, max cut %.1f%%", intervals, maxCut*100),
		intervals >= 5 && maxCut <= 0.075)
	add("Tn settles at maxFree free", "≈60% free",
		fmt.Sprintf("%.1f%% free", finalFree*100), finalFree >= 0.55 && finalFree <= 0.70)

	tx.Commit()
	_ = conn.Close()
	return o
}
