package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memblock"
)

// Table1 verifies that the implementation's constants are exactly the
// paper's Table 1 ("Key parameters") and that the derived quantities
// evaluate as published.
func Table1() *Outcome {
	p := core.DefaultParams()
	o := &Outcome{ID: "table1", Title: "Key modelling parameters (Table 1)"}

	add := func(label, paper string, got string, pass bool) {
		o.Findings = append(o.Findings, Finding{Label: label, Paper: paper, Measured: got, Pass: pass})
	}

	add("minFreeLockMemory", "50%", fmt.Sprintf("%.0f%%", p.MinFreeFrac*100), p.MinFreeFrac == 0.50)
	add("maxFreeLockMemory", "60%", fmt.Sprintf("%.0f%%", p.MaxFreeFrac*100), p.MaxFreeFrac == 0.60)
	add("δreduce", "5% of current size", fmt.Sprintf("%.0f%%", p.DeltaReduce*100), p.DeltaReduce == 0.05)
	add("C1 (LMOmax)", "65% of overflow", fmt.Sprintf("%.0f%%", p.C1*100), p.C1 == 0.65)
	add("maxLockMemory", "0.20 × databaseMemory", fmt.Sprintf("%.2f × db", p.MaxLockFrac), p.MaxLockFrac == 0.20)
	add("sqlCompilerLockMem", "0.10 × databaseMemory", fmt.Sprintf("%.2f × db", p.CompilerFrac), p.CompilerFrac == 0.10)
	add("minLockMemory", "MAX(2MB, 500·locksize·apps)",
		fmt.Sprintf("MAX(%dMB, %d·%dB·apps)", p.MinLockBytes>>20, p.MinStructsPerApp, p.LockSizeBytes),
		p.MinLockBytes == 2<<20 && p.MinStructsPerApp == 500)
	add("refreshPeriodForAppPercent", "0x80", fmt.Sprintf("%#x", p.RefreshPeriod), p.RefreshPeriod == 0x80)
	add("lockPercentPerApplication", "98(1−(x/100)³)",
		fmt.Sprintf("%.0f(1−(x/100)^%.0f)", p.MaxAppPercent, p.CurveExponent),
		p.MaxAppPercent == 98 && p.CurveExponent == 3)

	// Derived values at the paper's scale (5.11 GB ≈ 1,310,720 pages).
	const dbPages = 1310720
	add("maxLockMemory @5GB", "≈1 GB", fmt.Sprintf("%d pages", p.MaxLockPages(dbPages)),
		p.MaxLockPages(dbPages) == 262144)
	add("minLockMemory @130 apps", "≈4.2 MB", fmt.Sprintf("%d pages", p.MinLockPages(130)),
		p.MinLockPages(130) == 1024)
	add("curve @x=75", "aggressive attenuation", fmt.Sprintf("%.1f%%", p.AppPercent(75)),
		p.AppPercent(75) > 56 && p.AppPercent(75) < 57)
	add("curve @x=100", "drops to 1", fmt.Sprintf("%.0f%%", p.AppPercent(100)), p.AppPercent(100) == 1)
	add("locks per 128KB block", "≈2000", fmt.Sprintf("%d", memblock.StructsPerBlock),
		memblock.StructsPerBlock == 2048)
	return o
}
