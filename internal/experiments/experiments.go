// Package experiments defines one runnable reproduction per table and
// figure of the paper's evaluation (section 5), plus the worked example of
// section 4 and the vendor comparison of section 2.3. Each experiment builds
// a simulated engine, drives the published workload shape through it, and
// reports findings — paper claim vs measured value — that EXPERIMENTS.md and
// the benchmark harness consume.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Finding compares one published claim with the measured value.
type Finding struct {
	Label    string
	Paper    string
	Measured string
	Pass     bool
}

// Outcome is the result of one experiment.
type Outcome struct {
	ID       string // "fig9", "table1", ...
	Title    string
	Result   *sim.Result // nil for non-simulation outcomes (Table 1)
	Findings []Finding
}

// Passed reports whether every finding matched.
func (o *Outcome) Passed() bool {
	for _, f := range o.Findings {
		if !f.Pass {
			return false
		}
	}
	return true
}

// String renders the outcome as a fixed-width findings table.
func (o *Outcome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", o.ID, o.Title)
	w1, w2, w3 := len("finding"), len("paper"), len("measured")
	for _, f := range o.Findings {
		w1, w2, w3 = max(w1, len(f.Label)), max(w2, len(f.Paper)), max(w3, len(f.Measured))
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %-*s  ok\n", w1, "finding", w2, "paper", w3, "measured")
	for _, f := range o.Findings {
		mark := "PASS"
		if !f.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %-*s  %s\n", w1, f.Label, w2, f.Paper, w3, f.Measured, mark)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Markdown renders the outcome as a GitHub-flavoured markdown table, for
// regenerating the EXPERIMENTS.md summaries.
func (o *Outcome) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", o.ID, o.Title)
	b.WriteString("| Finding | Paper | Measured | OK |\n|---|---|---|---|\n")
	for _, f := range o.Findings {
		mark := "✅"
		if !f.Pass {
			mark = "❌"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", f.Label, f.Paper, f.Measured, mark)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func() *Outcome

// Registry returns every experiment keyed by id.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":        Table1,
		"fig3":          Fig3LockQueuing,
		"fig6":          Fig6WorkedExample,
		"fig7":          Fig7EscalationLockMemory,
		"fig8":          Fig8EscalationThroughput,
		"fig9":          Fig9RampAdaptation,
		"fig10":         Fig10WorkloadSurge,
		"fig11":         Fig11DSSInjection,
		"fig12":         Fig12GradualReduction,
		"vendor":        VendorComparison,
		"overprovision": Overprovision,
	}
}

// IDs returns the experiment ids in a stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// check builds a Finding from a numeric measurement and an inclusive range.
func check(label, paper string, measured, lo, hi float64, format string) Finding {
	return Finding{
		Label:    label,
		Paper:    paper,
		Measured: fmt.Sprintf(format, measured),
		Pass:     measured >= lo && measured <= hi,
	}
}
