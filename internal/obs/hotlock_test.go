package obs

import (
	"math/rand"
	"sync"
	"testing"
)

func TestHotSketchExactWithinSlots(t *testing.T) {
	h := NewHotSketch[string](1, 4)
	truth := map[string]int64{"a": 100, "b": 250, "c": 30}
	for k, v := range truth {
		for i := int64(0); i < v; i += 10 {
			h.Observe(0, k, 10, HotWaitNs, 10)
		}
	}
	es := h.Entries()
	if len(es) != len(truth) {
		t.Fatalf("tracked %d keys, want %d", len(es), len(truth))
	}
	for _, e := range es {
		if e.Score != truth[e.Key] {
			t.Errorf("%s score %d, want %d (must be exact within slot budget)", e.Key, e.Score, truth[e.Key])
		}
		if e.Err != 0 {
			t.Errorf("%s err %d, want 0", e.Key, e.Err)
		}
		if e.Vals[HotWaitNs] != truth[e.Key] {
			t.Errorf("%s wait %d, want %d", e.Key, e.Vals[HotWaitNs], truth[e.Key])
		}
	}
}

// TestHotSketchBoundUnderEviction overflows a stripe with many distinct
// keys and checks the space-saving accuracy contract for every tracked
// key: true ≤ Score and Score − Err ≤ true.
func TestHotSketchBoundUnderEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHotSketch[int](1, 8)
	truth := make(map[int]int64)
	// Zipf-ish: a few heavy keys, a long tail of light ones.
	for i := 0; i < 50000; i++ {
		var k int
		if rng.Intn(4) > 0 {
			k = rng.Intn(5) // heavy
		} else {
			k = 5 + rng.Intn(200) // tail
		}
		d := int64(1 + rng.Intn(100))
		truth[k] += d
		h.Observe(0, k, d, HotWaitNs, d)
	}
	es := h.Entries()
	if len(es) != 8 {
		t.Fatalf("tracked %d keys, want the full 8 slots", len(es))
	}
	var sum int64
	for _, e := range es {
		tr := truth[e.Key]
		if tr > e.Score {
			t.Errorf("key %d: true %d > score %d (overcount contract broken)", e.Key, tr, e.Score)
		}
		if e.Score-e.Err > tr {
			t.Errorf("key %d: score %d − err %d > true %d (error bound broken)", e.Key, e.Score, e.Err, tr)
		}
		sum += e.Score
	}
	// Σ Score never exceeds the stripe's lifetime observed blame.
	if obs := h.StripeObserved(0); sum > obs {
		t.Fatalf("Σ score %d > observed %d", sum, obs)
	}
	// The heavy keys must have survived the tail's churn.
	tracked := make(map[int]bool)
	for _, e := range es {
		tracked[e.Key] = true
	}
	for k := 0; k < 5; k++ {
		if !tracked[k] {
			t.Errorf("heavy key %d evicted by the tail", k)
		}
	}
}

func TestHotSketchZeroScoreRideAlong(t *testing.T) {
	h := NewHotSketch[string](1, 2)
	// Untracked key + zero blame: dropped entirely.
	h.Observe(0, "cold", 0, HotFallbacks, 1)
	if got := len(h.Entries()); got != 0 {
		t.Fatalf("zero-blame observation installed %d entries", got)
	}
	if got := h.StripeObserved(0); got != 0 {
		t.Fatalf("zero-blame observation bumped observed to %d", got)
	}
	// Tracked key: the attribute rides along without adding blame.
	h.Observe(0, "hot", 500, HotWaitNs, 500)
	h.Observe(0, "hot", 0, HotFallbacks, 3)
	e := h.Entries()[0]
	if e.Score != 500 || e.Vals[HotFallbacks] != 3 {
		t.Fatalf("ride-along: score %d vals %v", e.Score, e.Vals)
	}
}

func TestHotSketchQueueMaxAndDecay(t *testing.T) {
	h := NewHotSketch[string](1, 2)
	h.Observe(0, "k", 1000, HotQueueMax, 7)
	h.Observe(0, "k", 1000, HotQueueMax, 3) // below the high-water: ignored
	h.Observe(0, "k", 1000, HotWaitNs, 2000)
	e := h.Entries()[0]
	if e.Vals[HotQueueMax] != 7 {
		t.Fatalf("queue max %d, want 7", e.Vals[HotQueueMax])
	}
	h.Decay()
	e = h.Entries()[0]
	if e.Score != 1500 || e.Vals[HotWaitNs] != 1000 {
		t.Fatalf("after decay: score %d wait %d, want 1500/1000", e.Score, e.Vals[HotWaitNs])
	}
	if e.Vals[HotQueueMax] != 7 {
		t.Fatalf("decay touched the high-water mark: %d", e.Vals[HotQueueMax])
	}
	// observed is lifetime: never decayed.
	if got := h.StripeObserved(0); got != 3000 {
		t.Fatalf("observed %d, want 3000", got)
	}
}

func TestHotSketchStriping(t *testing.T) {
	h := NewHotSketch[string](4, 2)
	if h.Stripes() != 4 {
		t.Fatalf("stripes = %d", h.Stripes())
	}
	h.Observe(0, "same", 10, HotWaitNs, 10)
	h.Observe(2, "same", 20, HotWaitNs, 20)
	es := h.TopK(0)
	if len(es) != 2 {
		t.Fatalf("striped key tracked %d times, want 2 (one per stripe)", len(es))
	}
	if es[0].Score != 20 || es[0].Stripe != 2 || es[1].Stripe != 0 {
		t.Fatalf("TopK order wrong: %+v", es)
	}
	if got := h.TotalScore(); got != 30 {
		t.Fatalf("total score %d, want 30", got)
	}
	if got := len(h.TopK(1)); got != 1 {
		t.Fatalf("TopK(1) len %d", got)
	}
}

func TestHotSketchNilSafe(t *testing.T) {
	var h *HotSketch[string]
	h.Observe(0, "x", 1, HotWaitNs, 1)
	h.Decay()
	if h.Entries() != nil || h.TopK(3) != nil || h.TotalScore() != 0 ||
		h.Stripes() != 0 || h.StripeObserved(0) != 0 {
		t.Fatal("nil sketch must no-op")
	}
}

// TestHotSketchConcurrent hammers one stripe from many goroutines under
// -race and checks the invariants that must hold even for a lossy sketch:
// Σ Score ≤ observed, and a key observed on every goroutine is tracked
// with at most the true total.
func TestHotSketchConcurrent(t *testing.T) {
	h := NewHotSketch[int](2, 8)
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				k := rng.Intn(64)
				h.Observe(k%2, k, int64(1+rng.Intn(10)), HotWaitNs, 1)
			}
		}(w)
	}
	wg.Wait()
	for s := 0; s < 2; s++ {
		var sum int64
		for _, e := range h.Entries() {
			if e.Stripe == s {
				sum += e.Score
			}
		}
		if obs := h.StripeObserved(s); sum > obs {
			t.Fatalf("stripe %d: Σ score %d > observed %d", s, sum, obs)
		}
	}
}
