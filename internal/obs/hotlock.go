// hotlock.go is the top-K heavy-hitter sketch behind the contention
// profiler: a striped, lock-free variant of the space-saving algorithm
// (Metwally et al., "Efficient Computation of Frequent and Top-k Elements
// in Data Streams") that attributes "blame" — cumulative wait time plus a
// fixed charge per contention event — to individual keys (lock names).
//
// Each stripe owns a small fixed array of entry slots. Recording against a
// tracked key is one or two uncontended atomic adds; an untracked key with
// non-zero blame takes over the stripe's minimum-score slot by pointer CAS,
// inheriting the evicted score as both its starting count and its error
// bound (the classic space-saving takeover). Zero-blame observations on
// untracked keys are dropped — attribute counters ride along only for keys
// the blame ranking already tracks.
//
// Accuracy contract (asserted by tests): for any tracked key,
//
//	true blame ≤ Score  and  Score − Err ≤ true blame
//
// and a stripe observing at most its slot count of distinct keys is exact
// (Err == 0, attribute counters equal their true sums). Σ Score over a
// stripe's entries never exceeds the stripe's lifetime observed blame —
// the cross-check CheckInvariants runs under the stopped world.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Hot-metric indexes: the per-key attribute counters a HotSketch entry
// carries alongside its blame score.
const (
	// HotWaitNs is cumulative attributed wait time in nanoseconds (sum).
	HotWaitNs = iota
	// HotQueueMax is the queue-depth high-water mark (max, never decayed).
	HotQueueMax
	// HotFallbacks counts fast-path fallbacks to the latched admission
	// path (sum).
	HotFallbacks
	// HotOptFailures counts optimistic-read validation failures (sum).
	HotOptFailures
	// NumHotMetrics sizes the per-entry attribute array.
	NumHotMetrics
)

// hotEntry is one tracked key. The key is immutable after publication;
// score, err and vals advance atomically under concurrent recording.
type hotEntry[K comparable] struct {
	key   K
	score atomic.Int64
	err   atomic.Int64 // overestimate inherited at takeover
	vals  [NumHotMetrics]atomic.Int64
}

// hotStripe is one stripe: a slot array plus the lifetime observed-blame
// total (never decayed), the right-hand side of the Σ Score invariant.
type hotStripe[K comparable] struct {
	slots    []atomic.Pointer[hotEntry[K]]
	observed atomic.Int64
	_        [40]byte // keep adjacent stripes' counters off one line
}

// HotSketch is the striped top-K sketch. The zero value is unusable; a nil
// *HotSketch is a valid disabled sketch (every method no-ops).
type HotSketch[K comparable] struct {
	mask    uint64
	stripes []hotStripe[K]
}

// NewHotSketch creates a sketch with the given stripe count (rounded up to
// a power of two, minimum 1) and slots per stripe (minimum 1). Callers
// stripe by a stable key→stripe mapping (the lock table stripes by home
// shard), so one key's counts are never split across stripes.
func NewHotSketch[K comparable](stripes, slots int) *HotSketch[K] {
	if stripes < 1 {
		stripes = 1
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	if slots < 1 {
		slots = 1
	}
	h := &HotSketch[K]{mask: uint64(n - 1), stripes: make([]hotStripe[K], n)}
	for i := range h.stripes {
		h.stripes[i].slots = make([]atomic.Pointer[hotEntry[K]], slots)
	}
	return h
}

// Stripes returns the stripe count (a power of two).
func (h *HotSketch[K]) Stripes() int {
	if h == nil {
		return 0
	}
	return len(h.stripes)
}

// StripeObserved returns stripe i's lifetime observed blame — every
// scoreDelta ever passed to Observe for that stripe, never decayed.
func (h *HotSketch[K]) StripeObserved(i int) int64 {
	if h == nil {
		return 0
	}
	return h.stripes[uint64(i)&h.mask].observed.Load()
}

// Observe attributes scoreDelta blame and one attribute delta to key on
// the given stripe. metric selects the attribute counter; HotQueueMax
// updates by max, every other metric by sum. A zero scoreDelta on an
// untracked key is dropped (attributes ride along, they do not rank).
// Lock-free: tracked keys cost one or two atomic adds; takeovers a bounded
// CAS retry loop (a lost race drops the observation — the sketch is lossy
// by construction and the error bound already covers it).
func (h *HotSketch[K]) Observe(stripe int, key K, scoreDelta int64, metric int, delta int64) {
	if h == nil {
		return
	}
	st := &h.stripes[uint64(stripe)&h.mask]
	if scoreDelta != 0 {
		st.observed.Add(scoreDelta)
	}
	for attempt := 0; attempt < 4; attempt++ {
		var (
			minE     *hotEntry[K]
			minSlot  int
			minScore int64 = math.MaxInt64
			empty          = -1
		)
		for i := range st.slots {
			e := st.slots[i].Load()
			if e == nil {
				if empty < 0 {
					empty = i
				}
				continue
			}
			if e.key == key {
				e.score.Add(scoreDelta)
				if metric == HotQueueMax {
					storeMax(&e.vals[metric], delta)
				} else {
					e.vals[metric].Add(delta)
				}
				return
			}
			if s := e.score.Load(); s < minScore {
				minScore, minSlot, minE = s, i, e
			}
		}
		if scoreDelta == 0 {
			return
		}
		ne := &hotEntry[K]{key: key}
		ne.vals[metric].Store(delta)
		if empty >= 0 {
			ne.score.Store(scoreDelta)
			if st.slots[empty].CompareAndSwap(nil, ne) {
				return
			}
			continue
		}
		// Space-saving takeover: the new key inherits the evicted minimum
		// as both its starting score and its error bound.
		ne.score.Store(minScore + scoreDelta)
		ne.err.Store(minScore)
		if st.slots[minSlot].CompareAndSwap(minE, ne) {
			return
		}
	}
}

// storeMax lifts v to at least x.
func storeMax(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Decay halves every entry's score, error bound and summed attributes —
// the epoch step that ages old storms out of the ranking. High-water marks
// (HotQueueMax) are left alone. Concurrent observations may race a halving
// and land on either side of it; both outcomes respect the accuracy
// contract (Decay only ever shrinks counters).
func (h *HotSketch[K]) Decay() {
	if h == nil {
		return
	}
	for s := range h.stripes {
		for i := range h.stripes[s].slots {
			e := h.stripes[s].slots[i].Load()
			if e == nil {
				continue
			}
			halve(&e.score)
			halve(&e.err)
			for mIdx := range e.vals {
				if mIdx != HotQueueMax {
					halve(&e.vals[mIdx])
				}
			}
		}
	}
}

func halve(v *atomic.Int64) {
	for {
		cur := v.Load()
		if v.CompareAndSwap(cur, cur/2) {
			return
		}
	}
}

// HotEntry is a point-in-time copy of one tracked key.
type HotEntry[K comparable] struct {
	Key    K
	Stripe int
	Score  int64 // decayed blame, the ranking metric
	Err    int64 // worst-case overestimate of Score
	Vals   [NumHotMetrics]int64
}

// Entries returns a copy of every tracked entry, unordered. Lock-free; the
// copy of one entry is not atomic across its counters (fine for the
// monotone ≤-style checks and displays it feeds).
func (h *HotSketch[K]) Entries() []HotEntry[K] {
	if h == nil {
		return nil
	}
	var out []HotEntry[K]
	for s := range h.stripes {
		for i := range h.stripes[s].slots {
			e := h.stripes[s].slots[i].Load()
			if e == nil {
				continue
			}
			he := HotEntry[K]{Key: e.key, Stripe: s, Score: e.score.Load(), Err: e.err.Load()}
			for mIdx := range e.vals {
				he.Vals[mIdx] = e.vals[mIdx].Load()
			}
			out = append(out, he)
		}
	}
	return out
}

// TopK returns the n highest-blame entries across all stripes, highest
// first (ties broken by stripe for a stable order).
func (h *HotSketch[K]) TopK(n int) []HotEntry[K] {
	all := h.Entries()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Stripe < all[j].Stripe
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// TotalScore sums the current (decayed) blame of every tracked entry —
// the deterministic aggregate the sim records as a byte-compared series.
func (h *HotSketch[K]) TotalScore() int64 {
	var t int64
	for _, e := range h.Entries() {
		t += e.Score
	}
	return t
}
