// blame.go turns a wait-for edge dump into the blocked-on blame report
// behind /debug/waiters: per-owner "blocked on lock L held by owner O for
// D" rows, convoy detection (N waiters queued behind one holder on one
// lock), and the longest blocked-on chain. The edges come from the lock
// manager's per-shard deadlock-detector export (one shard latch at a time,
// never the all-shard latch); this file is pure graph analysis and knows
// nothing about lock tables.
package obs

import (
	"fmt"
	"sort"
	"time"
)

// BlameEdge is one observed wait: WaiterID's request on Lock is queued
// behind HolderID (a granted holder, a converter, or an earlier waiter —
// the same blocking relation the deadlock detector searches).
type BlameEdge struct {
	WaiterID  uint64 `json:"waiter"`
	WaiterApp int    `json:"waiter_app"`
	HolderID  uint64 `json:"holder"`
	HolderApp int    `json:"holder_app"`
	Lock      string `json:"lock"`
	Mode      string `json:"mode"`
	WaitNs    int64  `json:"wait_ns"`
}

// String renders the edge as the report's human-readable row.
func (e BlameEdge) String() string {
	return fmt.Sprintf("owner %d blocked on %s (mode %s) held by owner %d for %s",
		e.WaiterID, e.Lock, e.Mode, e.HolderID, time.Duration(e.WaitNs))
}

// Convoy is N waiters queued behind one holder on one lock.
type Convoy struct {
	HolderID uint64 `json:"holder"`
	Lock     string `json:"lock"`
	Waiters  int    `json:"waiters"`
}

// BlameReport is the /debug/waiters payload.
type BlameReport struct {
	// Edges is the full dump, sorted (waiter, holder, lock) for a stable
	// rendering; Rows is the same dump as human-readable lines.
	Edges []BlameEdge `json:"edges"`
	Rows  []string    `json:"rows"`
	// Waiters counts distinct blocked owners.
	Waiters int `json:"waiters"`
	// Convoys lists (holder, lock) pairs with at least two distinct
	// waiters behind them, most crowded first.
	Convoys []Convoy `json:"convoys"`
	// LongestChain is a maximal blocked-on owner chain (each owner waits
	// on the next); LongestChainLen is its length in owners. Chains are
	// cut at cycles (a genuine deadlock is the detector's job, not the
	// profiler's), so the length is a lower bound in that rare window.
	LongestChain    []uint64 `json:"longest_chain"`
	LongestChainLen int      `json:"longest_chain_len"`
}

// BuildBlame assembles the report from an edge dump.
func BuildBlame(edges []BlameEdge) BlameReport {
	rep := BlameReport{Edges: append([]BlameEdge(nil), edges...)}
	sort.Slice(rep.Edges, func(i, j int) bool {
		a, b := rep.Edges[i], rep.Edges[j]
		if a.WaiterID != b.WaiterID {
			return a.WaiterID < b.WaiterID
		}
		if a.HolderID != b.HolderID {
			return a.HolderID < b.HolderID
		}
		return a.Lock < b.Lock
	})
	rep.Rows = make([]string, len(rep.Edges))
	for i, e := range rep.Edges {
		rep.Rows[i] = e.String()
	}

	// Distinct blocked owners, convoy groups, and the owner adjacency.
	waiters := make(map[uint64]struct{})
	type convoyKey struct {
		holder uint64
		lock   string
	}
	convoy := make(map[convoyKey]map[uint64]struct{})
	next := make(map[uint64][]uint64) // waiter → holders, deduped
	seen := make(map[[2]uint64]struct{})
	for _, e := range rep.Edges {
		waiters[e.WaiterID] = struct{}{}
		ck := convoyKey{e.HolderID, e.Lock}
		if convoy[ck] == nil {
			convoy[ck] = make(map[uint64]struct{})
		}
		convoy[ck][e.WaiterID] = struct{}{}
		pair := [2]uint64{e.WaiterID, e.HolderID}
		if _, dup := seen[pair]; !dup && e.WaiterID != e.HolderID {
			seen[pair] = struct{}{}
			next[e.WaiterID] = append(next[e.WaiterID], e.HolderID)
		}
	}
	rep.Waiters = len(waiters)
	for ck, ws := range convoy {
		if len(ws) >= 2 {
			rep.Convoys = append(rep.Convoys, Convoy{HolderID: ck.holder, Lock: ck.lock, Waiters: len(ws)})
		}
	}
	sort.Slice(rep.Convoys, func(i, j int) bool {
		a, b := rep.Convoys[i], rep.Convoys[j]
		if a.Waiters != b.Waiters {
			return a.Waiters > b.Waiters
		}
		if a.HolderID != b.HolderID {
			return a.HolderID < b.HolderID
		}
		return a.Lock < b.Lock
	})

	// Longest blocked-on chain: memoized depth-first walk over the owner
	// graph, deterministic (adjacency sorted) and cycle-cut (an on-stack
	// target contributes nothing).
	for _, hs := range next {
		sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	}
	depth := make(map[uint64]int)  // longest chain starting at owner
	via := make(map[uint64]uint64) // successor achieving that depth
	onStack := make(map[uint64]bool)
	var dfs func(o uint64) int
	dfs = func(o uint64) int {
		if d, ok := depth[o]; ok {
			return d
		}
		if onStack[o] {
			return 0
		}
		onStack[o] = true
		best, bestVia := 0, uint64(0)
		for _, to := range next[o] {
			if d := dfs(to); d > best {
				best, bestVia = d, to
			}
		}
		onStack[o] = false
		d := best + 1
		if best > 0 {
			via[o] = bestVia
		}
		depth[o] = d
		return d
	}
	starts := make([]uint64, 0, len(next))
	for o := range next {
		starts = append(starts, o)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	bestStart, bestLen := uint64(0), 0
	for _, o := range starts {
		if d := dfs(o); d > bestLen {
			bestStart, bestLen = o, d
		}
	}
	if bestLen > 0 {
		rep.LongestChainLen = bestLen
		o := bestStart
		rep.LongestChain = append(rep.LongestChain, o)
		for {
			to, ok := via[o]
			if !ok {
				break
			}
			rep.LongestChain = append(rep.LongestChain, to)
			o = to
		}
	}
	return rep
}
