package obs

import (
	"sync"
	"testing"
	"time"
)

func TestDecisionLogAddAndQuery(t *testing.T) {
	l := NewDecisionLog(16)
	for i := 0; i < 10; i++ {
		kind := KindTuningPass
		if i%3 == 0 {
			kind = KindSyncGrowth
		}
		d := l.Add(Decision{Kind: kind, Time: time.Unix(int64(i), 0)})
		if d.Seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", d.Seq, i+1)
		}
	}
	all := l.Decisions()
	if len(all) != 10 {
		t.Fatalf("Decisions len = %d, want 10", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatal("Decisions not ordered oldest-first")
		}
	}
	tail := l.Tail(3)
	if len(tail) != 3 || tail[2].Seq != 10 {
		t.Fatalf("Tail(3) = %+v", tail)
	}
	sync3 := l.Query(KindSyncGrowth, 0)
	if len(sync3) != 4 { // i = 0, 3, 6, 9
		t.Fatalf("Query sync-growth len = %d, want 4", len(sync3))
	}
	if got := l.Query(KindSyncGrowth, 2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Query(kind, 2) = %+v", got)
	}
}

func TestDecisionLogEviction(t *testing.T) {
	l := NewDecisionLog(16)
	for i := 0; i < 40; i++ {
		l.Add(Decision{Kind: KindTuningPass})
	}
	if l.Total() != 40 {
		t.Fatalf("Total = %d, want 40", l.Total())
	}
	if l.Evicted() != 24 {
		t.Fatalf("Evicted = %d, want 24", l.Evicted())
	}
	got := l.Decisions()
	if len(got) != 16 {
		t.Fatalf("retained %d, want 16", len(got))
	}
	if got[0].Seq != 25 || got[15].Seq != 40 {
		t.Fatalf("retained window [%d, %d], want [25, 40]", got[0].Seq, got[15].Seq)
	}
	if tot := l.TotalByKind()[KindTuningPass]; tot != 40 {
		t.Fatalf("TotalByKind = %d, want 40 (must survive eviction)", tot)
	}
}

func TestDecisionLogGet(t *testing.T) {
	l := NewDecisionLog(16)
	for i := 0; i < 20; i++ {
		l.Add(Decision{Kind: KindTuningPass, TargetPages: i})
	}
	if _, ok := l.Get(2); ok {
		t.Fatal("Get(2) should have been evicted")
	}
	d, ok := l.Get(12)
	if !ok || d.TargetPages != 11 {
		t.Fatalf("Get(12) = %+v, %v", d, ok)
	}
}

func TestDecisionLogConcurrent(t *testing.T) {
	l := NewDecisionLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Add(Decision{Kind: KindSyncGrowth})
				if i%16 == 0 {
					l.Tail(8)
					l.TotalByKind()
				}
			}
		}()
	}
	wg.Wait()
	if l.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", l.Total())
	}
	ds := l.Decisions()
	seen := make(map[int64]bool, len(ds))
	for _, d := range ds {
		if seen[d.Seq] {
			t.Fatalf("duplicate seq %d", d.Seq)
		}
		seen[d.Seq] = true
	}
}

func TestDecisionLogMinimumCapacity(t *testing.T) {
	l := NewDecisionLog(1)
	for i := 0; i < 20; i++ {
		l.Add(Decision{Kind: KindTuningPass})
	}
	if got := len(l.Decisions()); got != 16 {
		t.Fatalf("minimum capacity: retained %d, want 16", got)
	}
}
