package obs

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func edge(waiter, holder uint64, lock string) BlameEdge {
	return BlameEdge{WaiterID: waiter, HolderID: holder, Lock: lock, Mode: "X", WaitNs: 1e6}
}

func TestBuildBlameEmpty(t *testing.T) {
	rep := BuildBlame(nil)
	if rep.Waiters != 0 || len(rep.Convoys) != 0 || rep.LongestChainLen != 0 {
		t.Fatalf("empty report: %+v", rep)
	}
}

func TestBuildBlameRowsAndWaiters(t *testing.T) {
	rep := BuildBlame([]BlameEdge{
		edge(3, 1, "row(1.7)"),
		edge(2, 1, "row(1.7)"),
		edge(2, 4, "row(2.9)"), // one waiter blocked behind two holders
	})
	if rep.Waiters != 2 {
		t.Fatalf("waiters = %d, want 2", rep.Waiters)
	}
	// Sorted (waiter, holder, lock).
	if rep.Edges[0].WaiterID != 2 || rep.Edges[0].HolderID != 1 ||
		rep.Edges[1].HolderID != 4 || rep.Edges[2].WaiterID != 3 {
		t.Fatalf("edge order: %+v", rep.Edges)
	}
	if len(rep.Rows) != 3 || !strings.Contains(rep.Rows[0], "owner 2 blocked on row(1.7) (mode X) held by owner 1") {
		t.Fatalf("rows: %v", rep.Rows)
	}
}

func TestBuildBlameConvoys(t *testing.T) {
	var edges []BlameEdge
	// Five waiters behind holder 1 on one lock; two behind holder 9 on
	// another; a lone waiter behind holder 20 (not a convoy).
	for w := uint64(2); w <= 6; w++ {
		edges = append(edges, edge(w, 1, "row(5.1)"))
	}
	edges = append(edges, edge(7, 9, "row(6.2)"), edge(8, 9, "row(6.2)"))
	edges = append(edges, edge(10, 20, "row(7.3)"))
	// A duplicate edge must not inflate the waiter count.
	edges = append(edges, edge(2, 1, "row(5.1)"))

	rep := BuildBlame(edges)
	if len(rep.Convoys) != 2 {
		t.Fatalf("convoys: %+v", rep.Convoys)
	}
	if rep.Convoys[0].HolderID != 1 || rep.Convoys[0].Waiters != 5 || rep.Convoys[0].Lock != "row(5.1)" {
		t.Fatalf("most crowded convoy first: %+v", rep.Convoys[0])
	}
	if rep.Convoys[1].HolderID != 9 || rep.Convoys[1].Waiters != 2 {
		t.Fatalf("second convoy: %+v", rep.Convoys[1])
	}
}

func TestBuildBlameLongestChain(t *testing.T) {
	// 5 → 4 → 3 → 2 → 1 plus a short branch 6 → 1.
	rep := BuildBlame([]BlameEdge{
		edge(5, 4, "a"), edge(4, 3, "b"), edge(3, 2, "c"), edge(2, 1, "d"),
		edge(6, 1, "e"),
	})
	if rep.LongestChainLen != 5 {
		t.Fatalf("chain len = %d, want 5", rep.LongestChainLen)
	}
	if want := []uint64{5, 4, 3, 2, 1}; !reflect.DeepEqual(rep.LongestChain, want) {
		t.Fatalf("chain = %v, want %v", rep.LongestChain, want)
	}
}

// TestBuildBlameCycleCut: a cycle (a genuine deadlock mid-detection) must
// not hang or panic the walk; the chain is cut at the repeated owner.
func TestBuildBlameCycleCut(t *testing.T) {
	rep := BuildBlame([]BlameEdge{
		edge(1, 2, "a"), edge(2, 3, "b"), edge(3, 1, "c"), // 3-cycle
		edge(9, 1, "d"), // tail into the cycle
	})
	if rep.LongestChainLen < 3 || rep.LongestChainLen > 4 {
		t.Fatalf("cycle chain len = %d (%v)", rep.LongestChainLen, rep.LongestChain)
	}
	seen := make(map[uint64]bool)
	for _, o := range rep.LongestChain {
		if seen[o] {
			t.Fatalf("chain revisits owner %d: %v", o, rep.LongestChain)
		}
		seen[o] = true
	}
}

// TestBuildBlameDeterministic shuffles the same edge dump and checks the
// whole report — edges, convoys, chain — is order-independent.
func TestBuildBlameDeterministic(t *testing.T) {
	base := []BlameEdge{
		edge(5, 4, "a"), edge(4, 3, "b"), edge(3, 2, "c"),
		edge(7, 4, "a"), edge(8, 4, "a"), edge(9, 3, "b"),
	}
	ref := BuildBlame(base)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]BlameEdge(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := BuildBlame(shuffled)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("report depends on edge order:\n%+v\nvs\n%+v", got, ref)
		}
	}
}
