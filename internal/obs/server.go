package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// TunerQuery narrows a /debug/tuner request: Kind filters by decision
// kind (empty = all), N limits to the most recent N records (0 = all
// retained).
type TunerQuery struct {
	Kind string
	N    int
}

// EventQuery narrows a /debug/events request: Kind filters by event kind
// name (empty = all), Last limits to the most recent N matching events
// (0 = all retained).
type EventQuery struct {
	Kind string
	Last int
}

// FlightQuery narrows a /debug/flight request: Shard selects one shard's
// flight ring (negative = all shards merged), Last limits to the most
// recent N events (0 = all retained).
type FlightQuery struct {
	Shard int
	Last  int
}

// Handlers supplies the data behind the debug endpoints. Each callback is
// invoked per request, so the mux always serves the live engine state;
// nil callbacks answer 404 (surface not wired). Callbacks returning any
// are rendered as indented JSON.
type Handlers struct {
	// Metrics writes the full Prometheus exposition.
	Metrics func(w *MetricWriter)
	// Locks returns the current lock-table dump (/debug/locks).
	Locks func() any
	// Events returns recent trace events (/debug/events, newest last).
	Events func(q EventQuery) any
	// Tuner returns tuning decisions matching the query (/debug/tuner).
	Tuner func(q TunerQuery) any
	// Hotlocks returns the contention profiler's current top-N hot locks
	// (/debug/hotlocks).
	Hotlocks func(n int) any
	// Waiters returns the live blocked-on blame report (/debug/waiters).
	Waiters func() any
	// Flight returns flight-recorder events matching the query
	// (/debug/flight).
	Flight func(q FlightQuery) any
}

// NewMux builds the observability mux: /metrics (Prometheus text),
// /debug/locks, /debug/events?n=, /debug/tuner?n=&kind=, the stdlib
// pprof endpoints under /debug/pprof/, and a plain-text index at /.
// stdlib net/http only — no third-party exposition library.
func NewMux(h Handlers) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if h.Metrics == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		h.Metrics(NewMetricWriter(w))
	})

	mux.HandleFunc("/debug/locks", func(w http.ResponseWriter, r *http.Request) {
		if h.Locks == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, h.Locks())
	})

	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if h.Events == nil {
			http.NotFound(w, r)
			return
		}
		// ?last= is the documented limit; ?n= stays as an alias so the
		// pre-profiler URLs keep working.
		last := intParam(r, "last", 0)
		if last == 0 {
			last = intParam(r, "n", 0)
		}
		writeJSON(w, h.Events(EventQuery{Kind: r.URL.Query().Get("kind"), Last: last}))
	})

	mux.HandleFunc("/debug/hotlocks", func(w http.ResponseWriter, r *http.Request) {
		if h.Hotlocks == nil {
			http.NotFound(w, r)
			return
		}
		n, ok := posIntParam(w, r, "n", 10)
		if !ok {
			return
		}
		writeJSON(w, h.Hotlocks(n))
	})

	mux.HandleFunc("/debug/waiters", func(w http.ResponseWriter, r *http.Request) {
		if h.Waiters == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, h.Waiters())
	})

	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if h.Flight == nil {
			http.NotFound(w, r)
			return
		}
		last, ok := posIntParam(w, r, "last", 0)
		if !ok {
			return
		}
		q := FlightQuery{Shard: intParam(r, "shard", -1), Last: last}
		writeJSON(w, h.Flight(q))
	})

	mux.HandleFunc("/debug/tuner", func(w http.ResponseWriter, r *http.Request) {
		if h.Tuner == nil {
			http.NotFound(w, r)
			return
		}
		q := TunerQuery{Kind: r.URL.Query().Get("kind"), N: intParam(r, "n", 0)}
		writeJSON(w, h.Tuner(q))
	})

	// net/http/pprof registers on http.DefaultServeMux at import; mount
	// its handlers on our private mux explicitly instead.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "lockmem observability\n\n"+
			"  /metrics        Prometheus text exposition\n"+
			"  /debug/locks    live lock-table dump (JSON)\n"+
			"  /debug/events   recent trace events (?last=50&kind=escalation)\n"+
			"  /debug/tuner    tuning decisions (?n=20&kind=tuning-pass)\n"+
			"  /debug/hotlocks contention profiler top-K hot locks (?n=10)\n"+
			"  /debug/waiters  live blocked-on blame report (JSON)\n"+
			"  /debug/flight   flight-recorder events (?shard=3&last=50)\n"+
			"  /debug/pprof/   Go runtime profiles\n")
	})

	return mux
}

// Serve binds addr and serves mux on a background goroutine, returning
// the bound address (useful with ":0") or an error if the listen fails.
// The listener lives for the life of the process; observability servers
// in the CLIs have no graceful-shutdown story and do not need one.
func Serve(addr string, mux *http.ServeMux) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		srv := &http.Server{Handler: mux}
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// posIntParam parses a query parameter that, when present, must be a
// positive integer. Absent → (def, true). Garbage or a non-positive value
// → a 400 with the parameter name and (0, false); a silently-swallowed
// typo ("?n=ten", "?last=-5") used to fall back to the default, which
// reads as "the limit worked" when it did not.
func posIntParam(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		http.Error(w, fmt.Sprintf("bad %s=%q: want a positive integer", name, s),
			http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

func intParam(r *http.Request, name string, def int) int {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}
