package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Invariant: 2^(i-1) <= v < 2^i for bucket i >= 1.
	for _, v := range []int64{1, 5, 100, 1e6, 1e12, math.MaxInt64 / 3} {
		i := BucketOf(v)
		lo := int64(1) << uint(i-1)
		if v < lo {
			t.Errorf("v=%d below bucket %d lower bound %d", v, i, lo)
		}
		if i < 63 && v >= lo*2 {
			t.Errorf("v=%d above bucket %d upper bound %d", v, i, lo*2)
		}
	}
}

func TestHistogramRecordAndSnapshot(t *testing.T) {
	h := NewHistogram("t", "ns", 4)
	for i := 0; i < 100; i++ {
		h.RecordStripe(i, 1000) // spreads across stripes, same bucket
	}
	s := h.Snapshot()
	if s.Total != 100 {
		t.Fatalf("Total = %d, want 100", s.Total)
	}
	if got := s.Counts[BucketOf(1000)]; got != 100 {
		t.Fatalf("bucket count = %d, want 100", got)
	}
}

func TestStripesRoundUpAndClamp(t *testing.T) {
	if got := NewHistogram("t", "ns", 3).Stripes(); got != 4 {
		t.Errorf("3 stripes rounded to %d, want 4", got)
	}
	if got := NewHistogram("t", "ns", 0).Stripes(); got != 1 {
		t.Errorf("0 stripes gave %d, want 1", got)
	}
	if got := NewHistogram("t", "ns", 100000).Stripes(); got != maxStripes {
		t.Errorf("huge stripes gave %d, want %d", got, maxStripes)
	}
}

func TestMergeAssociativeAndCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() Snapshot {
		h := NewHistogram("t", "ns", 2)
		for i := 0; i < 500; i++ {
			h.RecordStripe(i, rng.Int63n(1<<40)+1)
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left != right {
		t.Fatal("merge is not associative")
	}
	if a.Merge(b) != b.Merge(a) {
		t.Fatal("merge is not commutative")
	}
	if left.Total != a.Total+b.Total+c.Total {
		t.Fatalf("merged total %d != %d", left.Total, a.Total+b.Total+c.Total)
	}
}

// TestQuantileBoundSurvivesMergeOrder is the merge-order property test:
// one value stream split across many histograms (as the per-shard latch
// profiles and per-stripe wait histograms split theirs), whose snapshots
// are then merged in random orders. Every merge order must produce the
// identical snapshot, and that snapshot's quantiles must satisfy the same
// factor-of-two bound as a single histogram fed the whole stream.
func TestQuantileBoundSurvivesMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const parts = 9
	hs := make([]*Histogram, parts)
	for i := range hs {
		hs[i] = NewHistogram("t", "ns", 2)
	}
	vals := make([]int64, 0, 30000)
	for i := 0; i < 30000; i++ {
		v := int64(math.Exp(rng.Float64()*14)) + 1
		vals = append(vals, v)
		// Skewed split: part 0 sees half the stream, the rest share it.
		p := 0
		if rng.Intn(2) == 0 {
			p = 1 + rng.Intn(parts-1)
		}
		hs[p].RecordStripe(i, v)
	}
	snaps := make([]Snapshot, parts)
	for i, h := range hs {
		snaps[i] = h.Snapshot()
	}

	var ref Snapshot
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(parts)
		var merged Snapshot
		for _, i := range order {
			merged = merged.Merge(snaps[i])
		}
		if trial == 0 {
			ref = merged
			continue
		}
		if merged != ref {
			t.Fatalf("merge order %v produced a different snapshot", order)
		}
	}
	if ref.Total != uint64(len(vals)) {
		t.Fatalf("merged total %d, want %d", ref.Total, len(vals))
	}
	sortInt64(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(len(vals)))) - 1
		if rank < 0 {
			rank = 0
		}
		truth := float64(vals[rank])
		est := ref.Quantile(q)
		if ratio := est / truth; ratio <= 0.5 || ratio > 2.0 {
			t.Errorf("q=%g: merged estimate %g vs truth %g (ratio %g) outside (1/2, 2]", q, est, truth, ratio)
		}
	}
}

// TestQuantileAccuracyBound checks the documented factor-of-two bound:
// for values recorded from a known distribution, the estimated quantile
// must satisfy estimate/true ∈ (1/2, 2].
func TestQuantileAccuracyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram("t", "ns", 1)
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform across ~6 decades, the shape of latency data.
		v := int64(math.Exp(rng.Float64()*14)) + 1
		vals = append(vals, v)
		h.Record(v)
	}
	s := h.Snapshot()
	sortInt64(vals)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(len(vals)))) - 1
		if rank < 0 {
			rank = 0
		}
		truth := float64(vals[rank])
		est := s.Quantile(q)
		if ratio := est / truth; ratio <= 0.5 || ratio > 2.0 {
			t.Errorf("q=%g: estimate %g vs truth %g (ratio %g) outside (1/2, 2]", q, est, truth, ratio)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Snapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	h := NewHistogram("t", "ns", 1)
	h.Record(0) // bucket 0
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Errorf("bucket-0 quantile = %g, want 0", got)
	}
	h2 := NewHistogram("t", "ns", 1)
	h2.Record(100)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := h2.Snapshot().Quantile(q)
		if got < 64 || got > 128 {
			t.Errorf("single-value quantile(%g) = %g, want within bucket [64,128)", q, got)
		}
	}
}

func TestMeanAndApproxSum(t *testing.T) {
	h := NewHistogram("t", "ns", 1)
	for i := 0; i < 1000; i++ {
		h.Record(1000) // bucket [512, 1024): estimate 768
	}
	s := h.Snapshot()
	if m := s.Mean(); m != 768 {
		t.Errorf("Mean = %g, want 768", m)
	}
	if sum := s.ApproxSum(); sum != 768000 {
		t.Errorf("ApproxSum = %g, want 768000", sum)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram("t", "ns", 8)
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.RecordStripe(w, int64(i%4096)+1)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Total; got != workers*perWorker {
		t.Fatalf("Total = %d, want %d (lost updates)", got, workers*perWorker)
	}
}

func TestSampler(t *testing.T) {
	var off Sampler
	for i := 0; i < 10; i++ {
		if off.Tick() {
			t.Fatal("zero Sampler admitted a tick")
		}
	}
	s := NewSampler(5) // rounds up to 8
	if s.Stride() != 8 {
		t.Fatalf("stride = %d, want 8", s.Stride())
	}
	admitted := 0
	for i := 0; i < 800; i++ {
		if s.Tick() {
			admitted++
		}
	}
	if admitted != 100 {
		t.Fatalf("admitted %d of 800 at stride 8, want 100", admitted)
	}
	dis := NewSampler(-1)
	if dis.Stride() != 0 {
		t.Fatal("negative stride should disable")
	}
}

func sortInt64(v []int64) {
	// insertion-free: simple sort via sort.Slice is fine in tests, but
	// avoid the import churn — shell sort.
	for gap := len(v) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(v); i++ {
			for j := i; j >= gap && v[j-gap] > v[j]; j -= gap {
				v[j-gap], v[j] = v[j], v[j-gap]
			}
		}
	}
}
