package obs

import "testing"

func TestLatchProfRecordAndMerge(t *testing.T) {
	lp := NewLatchProf(4)
	if lp.Shards() != 4 {
		t.Fatalf("shards = %d", lp.Shards())
	}
	lp.RecordHold(0, 100)
	lp.RecordHold(2, 100)
	lp.RecordWait(2, 5000)
	if got := lp.Hold(0).Total; got != 1 {
		t.Fatalf("shard 0 holds = %d", got)
	}
	if got := lp.Hold(1).Total; got != 0 {
		t.Fatalf("shard 1 holds = %d", got)
	}
	if got := lp.MergedHold().Total; got != 2 {
		t.Fatalf("merged holds = %d", got)
	}
	if got := lp.MergedWait().Total; got != 1 {
		t.Fatalf("merged waits = %d", got)
	}
	// Shard index wraps rather than panicking (defensive: callers index by
	// home shard, which is already in range).
	lp.RecordHold(6, 100)
	if got := lp.Hold(2).Total; got != 2 {
		t.Fatalf("wrapped record landed elsewhere: %d", got)
	}
}

func TestLatchProfNilSafe(t *testing.T) {
	var lp *LatchProf
	lp.RecordHold(0, 1)
	lp.RecordWait(0, 1)
	if lp.Shards() != 0 || lp.Hold(0).Total != 0 || lp.Wait(0).Total != 0 ||
		lp.MergedHold().Total != 0 || lp.MergedWait().Total != 0 {
		t.Fatal("nil LatchProf must no-op")
	}
}

func TestLatchProfMinimumShards(t *testing.T) {
	if got := NewLatchProf(0).Shards(); got != 1 {
		t.Fatalf("0 shards gave %d, want 1", got)
	}
}
