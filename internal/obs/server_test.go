package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricWriterFormat(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Counter("x_total", "things", 42)
	m.Gauge("y_frac", "a ratio", 0.5625)
	m.CounterVec("shard_total", "per shard", "shard", []int64{3, 0, 7})
	m.CounterMap("by_kind_total", "per kind", "kind", map[string]int64{"b": 2, "a": 1})

	h := NewHistogram("w", "ns", 1)
	h.Record(3)    // bucket 2, upper 4
	h.Record(1000) // bucket 10, upper 1024
	h.Record(1000)
	m.Histogram("wait_seconds", "waits", h.Snapshot(), 1e-9)

	out := b.String()
	for _, want := range []string{
		"# HELP x_total things",
		"# TYPE x_total counter",
		"x_total 42",
		"y_frac 0.5625",
		`shard_total{shard="0"} 3`,
		`shard_total{shard="2"} 7`,
		`by_kind_total{kind="a"} 1`,
		"# TYPE wait_seconds histogram",
		`wait_seconds_bucket{le="4e-09"} 1`,
		`wait_seconds_bucket{le="1.024e-06"} 3`,
		`wait_seconds_bucket{le="+Inf"} 3`,
		"wait_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative: the map emission must be sorted (a before b).
	if strings.Index(out, `kind="a"`) > strings.Index(out, `kind="b"`) {
		t.Error("CounterMap keys not sorted")
	}
}

func TestHistogramOmitsEmptyBuckets(t *testing.T) {
	var b strings.Builder
	h := NewHistogram("w", "ns", 1)
	h.Record(1 << 20)
	NewMetricWriter(&b).Histogram("x", "h", h.Snapshot(), 1)
	out := b.String()
	// One value → exactly one finite bucket line plus +Inf.
	if got := strings.Count(out, "x_bucket{"); got != 2 {
		t.Fatalf("bucket lines = %d, want 2\n%s", got, out)
	}
}

func TestMuxEndpoints(t *testing.T) {
	log := NewDecisionLog(16)
	log.Add(Decision{Kind: KindTuningPass, Action: "grow", TargetPages: 128})
	log.Add(Decision{Kind: KindSyncGrowth, Action: "sync-grow", GrantedPages: 8})

	mux := NewMux(Handlers{
		Metrics: func(m *MetricWriter) { m.Counter("up", "liveness", 1) },
		Locks:   func() any { return []string{"row(1.2)"} },
		Events:  func(q EventQuery) any { return map[string]any{"kind": q.Kind, "last": q.Last} },
		Tuner: func(q TunerQuery) any {
			return log.Query(q.Kind, q.N)
		},
		Hotlocks: func(n int) any { return map[string]int{"topk": n} },
		Waiters:  func() any { return BuildBlame(nil) },
		Flight:   func(q FlightQuery) any { return map[string]int{"shard": q.Shard, "last": q.Last} },
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ct := get("/metrics")
	if code != 200 || !strings.Contains(body, "up 1") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if ct != ContentType {
		t.Errorf("/metrics content type %q", ct)
	}

	code, body, _ = get("/debug/locks")
	if code != 200 || !strings.Contains(body, "row(1.2)") {
		t.Errorf("/debug/locks: %d %q", code, body)
	}

	code, body, _ = get("/debug/events?n=5")
	if code != 200 || !strings.Contains(body, `"last": 5`) {
		t.Errorf("/debug/events ?n= alias: %d %q", code, body)
	}

	code, body, _ = get("/debug/events?last=7&kind=escalation")
	if code != 200 || !strings.Contains(body, `"last": 7`) || !strings.Contains(body, `"kind": "escalation"`) {
		t.Errorf("/debug/events ?last=&kind=: %d %q", code, body)
	}

	code, body, _ = get("/debug/hotlocks?n=3")
	if code != 200 || !strings.Contains(body, `"topk": 3`) {
		t.Errorf("/debug/hotlocks: %d %q", code, body)
	}

	code, body, _ = get("/debug/hotlocks")
	if code != 200 || !strings.Contains(body, `"topk": 10`) {
		t.Errorf("/debug/hotlocks default n: %d %q", code, body)
	}

	code, body, _ = get("/debug/waiters")
	if code != 200 || !strings.Contains(body, `"waiters": 0`) {
		t.Errorf("/debug/waiters: %d %q", code, body)
	}

	code, body, _ = get("/debug/flight?shard=2&last=9")
	if code != 200 || !strings.Contains(body, `"shard": 2`) || !strings.Contains(body, `"last": 9`) {
		t.Errorf("/debug/flight: %d %q", code, body)
	}

	code, body, _ = get("/debug/flight")
	if code != 200 || !strings.Contains(body, `"shard": -1`) {
		t.Errorf("/debug/flight default shard: %d %q", code, body)
	}

	code, body, _ = get("/debug/tuner?kind=sync-growth")
	if code != 200 {
		t.Fatalf("/debug/tuner: %d", code)
	}
	var ds []Decision
	if err := json.Unmarshal([]byte(body), &ds); err != nil {
		t.Fatalf("/debug/tuner not JSON: %v\n%s", err, body)
	}
	if len(ds) != 1 || ds[0].Kind != KindSyncGrowth || ds[0].GrantedPages != 8 {
		t.Errorf("/debug/tuner filter: %+v", ds)
	}

	code, _, _ = get("/debug/pprof/")
	if code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	code, _, _ = get("/nope")
	if code != 404 {
		t.Errorf("/nope = %d, want 404", code)
	}

	// Index page.
	code, body, _ = get("/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d %q", code, body)
	}
}

// TestMuxBadParams pins the strict query validation: a present-but-broken
// limit parameter is a 400, never a silent fall-back to the default.
func TestMuxBadParams(t *testing.T) {
	called := false
	mux := NewMux(Handlers{
		Hotlocks: func(n int) any { called = true; return n },
		Flight:   func(q FlightQuery) any { called = true; return q },
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{
		"/debug/hotlocks?n=0",
		"/debug/hotlocks?n=-3",
		"/debug/hotlocks?n=ten",
		"/debug/hotlocks?n=1e3",
		"/debug/flight?last=0",
		"/debug/flight?last=-5",
		"/debug/flight?last=garbage",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "positive integer") {
			t.Errorf("%s body %q does not name the problem", path, body)
		}
		if called {
			t.Fatalf("%s reached the handler despite the bad parameter", path)
		}
	}

	// The boundary value and absence still work.
	for _, path := range []string{"/debug/hotlocks?n=1", "/debug/hotlocks", "/debug/flight?last=1", "/debug/flight"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestMuxNilHandlers(t *testing.T) {
	srv := httptest.NewServer(NewMux(Handlers{}))
	defer srv.Close()
	for _, p := range []string{"/metrics", "/debug/locks", "/debug/events", "/debug/tuner", "/debug/hotlocks", "/debug/waiters", "/debug/flight"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s with nil handler = %d, want 404", p, resp.StatusCode)
		}
	}
}

func TestServeBindsAndServes(t *testing.T) {
	addr, err := Serve("127.0.0.1:0", NewMux(Handlers{
		Metrics: func(m *MetricWriter) { m.Counter("up", "liveness", 1) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up 1") {
		t.Errorf("served body %q", body)
	}
}
