// latchprof.go is the per-shard latch profile behind the contention
// profiler: one histogram pair per shard — sampled latch hold time, and
// the blocking-acquire wait time paid after a failed TryLock. The lock
// manager owns the sampling decision (its per-shard counter advances under
// the latch, so sampling costs no shared cache line); this type owns the
// storage and the merged views /metrics exposes. Exactly the input the
// self-tuning spin-then-park latch work needs: hold-time tails say whether
// spinning could win, wait-time tails say how much is being lost.
package obs

import "fmt"

// LatchProf holds one (hold, wait) histogram pair per shard. A nil
// *LatchProf is a valid disabled profile: every method no-ops or returns
// zero values.
type LatchProf struct {
	hold []*Histogram
	wait []*Histogram
}

// NewLatchProf creates a profile for the given shard count. Each histogram
// is single-striped: recordings into one shard's pair happen under (hold)
// or immediately before (wait) that shard's latch, so striping would buy
// nothing.
func NewLatchProf(shards int) *LatchProf {
	if shards < 1 {
		shards = 1
	}
	lp := &LatchProf{
		hold: make([]*Histogram, shards),
		wait: make([]*Histogram, shards),
	}
	for i := range lp.hold {
		lp.hold[i] = NewHistogram(fmt.Sprintf("latch_hold_%d", i), "ns", 1)
		lp.wait[i] = NewHistogram(fmt.Sprintf("latch_wait_%d", i), "ns", 1)
	}
	return lp
}

// Shards returns the shard count the profile was sized for.
func (lp *LatchProf) Shards() int {
	if lp == nil {
		return 0
	}
	return len(lp.hold)
}

// RecordHold records one sampled latch hold duration for shard i.
func (lp *LatchProf) RecordHold(i int, ns int64) {
	if lp == nil {
		return
	}
	lp.hold[i%len(lp.hold)].Record(ns)
}

// RecordWait records one contended latch acquire (post-TryLock-failure
// blocking time) for shard i.
func (lp *LatchProf) RecordWait(i int, ns int64) {
	if lp == nil {
		return
	}
	lp.wait[i%len(lp.wait)].Record(ns)
}

// Hold returns shard i's hold-time snapshot.
func (lp *LatchProf) Hold(i int) Snapshot {
	if lp == nil {
		return Snapshot{}
	}
	return lp.hold[i%len(lp.hold)].Snapshot()
}

// Wait returns shard i's contended-acquire snapshot.
func (lp *LatchProf) Wait(i int) Snapshot {
	if lp == nil {
		return Snapshot{}
	}
	return lp.wait[i%len(lp.wait)].Snapshot()
}

// MergedHold merges every shard's hold-time histogram — the /metrics view.
func (lp *LatchProf) MergedHold() Snapshot {
	var out Snapshot
	if lp == nil {
		return out
	}
	for _, h := range lp.hold {
		out = out.Merge(h.Snapshot())
	}
	return out
}

// MergedWait merges every shard's contended-acquire histogram.
func (lp *LatchProf) MergedWait() Snapshot {
	var out Snapshot
	if lp == nil {
		return out
	}
	for _, h := range lp.wait {
		out = out.Merge(h.Snapshot())
	}
	return out
}
