package obs

import (
	"sync"
	"time"
)

// Decision kinds. A tuning pass whose escalation-recovery doubling fired is
// recorded as KindEscalationDoubling so distress intervals are queryable on
// their own; ordinary passes are KindTuningPass; synchronous overflow
// growth admitted by the lock manager between passes is KindSyncGrowth.
// KindLatchTune records a shard latch's adaptive spin-budget change (the
// self-tuning spin-then-park latch controller); the lock manager appends
// these while holding the retuned shard's latch, same leaf discipline as
// sync-growth records.
// KindThrottleTune records a shard's admission-throttle ceiling change
// (the saturation-aware concurrency limiter): engage, hill-climb step,
// reverse, latency relief, or disengage, with the queue-depth high-water
// mark, grant-throughput delta, and lock-wait p99 the controller saw.
const (
	KindTuningPass         = "tuning-pass"
	KindEscalationDoubling = "escalation-doubling"
	KindSyncGrowth         = "sync-growth"
	KindLatchTune          = "latch-tune"
	KindThrottleTune       = "throttle-tune"
)

// Decision is one explainable tuning action: the inputs the tuner saw, the
// parameters that bound it, and the action it chose. Every field needed to
// replay the decision is present — "why did the tuner do that" is
// answerable by re-running the recorded inputs through the algorithm (see
// the stmm replay test).
type Decision struct {
	// Seq is the log-assigned sequence number (monotone, never reused).
	Seq int64 `json:"seq"`
	// Time is the engine clock at the decision (virtual time under the
	// simulated clock, wall time in real deployments).
	Time time.Time `json:"time"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`

	// Inputs: the tuner's view of the system when it decided.
	DatabasePages   int     `json:"database_pages,omitempty"`
	LockPagesBefore int     `json:"lock_pages_before"`
	UsedStructs     int     `json:"used_structs,omitempty"`
	CapacityStructs int     `json:"capacity_structs,omitempty"`
	FreeFrac        float64 `json:"free_frac"`
	NumApps         int     `json:"num_apps,omitempty"`
	Escalations     int64   `json:"escalations,omitempty"`
	PrevTarget      int     `json:"prev_target,omitempty"`

	// Parameters that bounded the decision (Table 1 excerpts).
	MinFreeFrac float64 `json:"min_free_frac,omitempty"`
	MaxFreeFrac float64 `json:"max_free_frac,omitempty"`
	DeltaReduce float64 `json:"delta_reduce,omitempty"`
	C1          float64 `json:"c1,omitempty"`
	MinPages    int     `json:"min_pages,omitempty"`
	MaxPages    int     `json:"max_pages,omitempty"`
	// QuotaCurveX is x of the lockPercentPerApplication curve: the
	// percentage of maxLockMemory in use after the pass.
	QuotaCurveX float64 `json:"quota_curve_x,omitempty"`

	// Sync-growth inputs (KindSyncGrowth only).
	NeedPages     int `json:"need_pages,omitempty"`
	AllowedPages  int `json:"allowed_pages,omitempty"`
	LMOPages      int `json:"lmo_pages,omitempty"`
	OverflowPages int `json:"overflow_pages,omitempty"`

	// Latch-tune inputs/outputs (KindLatchTune only): the shard whose
	// latch retuned, the spin budget before/after, and the evidence the
	// controller saw — the hold-time EWMA and the last window's spin
	// attempts/wins.
	Shard            int   `json:"shard,omitempty"`
	SpinBudgetBefore int   `json:"spin_budget_before,omitempty"`
	SpinBudgetAfter  int   `json:"spin_budget_after,omitempty"`
	HoldEwmaNs       int64 `json:"hold_ewma_ns,omitempty"`
	SpinTries        int   `json:"spin_tries,omitempty"`
	SpinWins         int   `json:"spin_wins,omitempty"`

	// Throttle-tune inputs/outputs (KindThrottleTune only; Shard is
	// shared with latch-tune): the concurrency ceiling before/after (0 =
	// disengaged) and the window signals the controller decided from —
	// the queue-depth high-water mark, the grant-throughput delta, and
	// the lock-wait p99.
	CeilingBefore int   `json:"ceiling_before,omitempty"`
	CeilingAfter  int   `json:"ceiling_after,omitempty"`
	QueueDepthHW  int64 `json:"queue_depth_hw,omitempty"`
	GrantsDelta   int64 `json:"grants_delta,omitempty"`
	WaitP99Ns     int64 `json:"wait_p99_ns,omitempty"`

	// Action: what the tuner chose and what actually happened.
	Action         string  `json:"action"`
	TargetPages    int     `json:"target_pages,omitempty"`
	LockPagesAfter int     `json:"lock_pages_after"`
	GrantedPages   int     `json:"granted_pages,omitempty"`
	Doubled        bool    `json:"doubled,omitempty"`
	QuotaPercent   float64 `json:"quota_percent,omitempty"`
	DurationNS     int64   `json:"duration_ns,omitempty"`
	Reason         string  `json:"reason,omitempty"`
}

// DecisionLog is a fixed-capacity ring of Decisions, safe for concurrent
// use, with lifetime per-kind totals that survive eviction. The lock
// manager appends sync-growth records while holding shard latches, so Add
// must stay a leaf: it takes only the log's own mutex.
type DecisionLog struct {
	mu     sync.Mutex
	buf    []Decision
	next   int
	count  int
	seq    int64
	byKind map[string]int64
}

// NewDecisionLog creates a log retaining up to n decisions (minimum 16).
func NewDecisionLog(n int) *DecisionLog {
	if n < 16 {
		n = 16
	}
	return &DecisionLog{buf: make([]Decision, n), byKind: make(map[string]int64)}
}

// Add records a decision, assigning its Seq, and returns the stored value.
// The oldest retained decision is evicted when the ring is full.
func (l *DecisionLog) Add(d Decision) Decision {
	l.mu.Lock()
	l.seq++
	d.Seq = l.seq
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.count < len(l.buf) {
		l.count++
	}
	l.byKind[d.Kind]++
	l.mu.Unlock()
	return d
}

// Decisions returns the retained decisions, oldest first.
func (l *DecisionLog) Decisions() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.copyLocked(l.count, "")
}

// Tail returns up to n of the most recent decisions, oldest first.
func (l *DecisionLog) Tail(n int) []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > l.count {
		n = l.count
	}
	return l.copyLocked(n, "")
}

// Query returns up to n of the most recent decisions of the given kind
// (empty kind matches all), oldest first. n ≤ 0 means no limit.
func (l *DecisionLog) Query(kind string, n int) []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.count {
		n = l.count
	}
	return l.copyLocked(n, kind)
}

// copyLocked copies the newest n retained decisions matching kind, oldest
// first. Caller holds l.mu.
func (l *DecisionLog) copyLocked(n int, kind string) []Decision {
	out := make([]Decision, 0, n)
	start := l.next - l.count
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.count; i++ {
		d := l.buf[(start+i)%len(l.buf)]
		if kind == "" || d.Kind == kind {
			out = append(out, d)
		}
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Get returns the decision with the given sequence number, if retained.
func (l *DecisionLog) Get(seq int64) (Decision, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.next - l.count
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.count; i++ {
		if d := l.buf[(start+i)%len(l.buf)]; d.Seq == seq {
			return d, true
		}
	}
	return Decision{}, false
}

// Total returns the number of decisions ever added, including evicted ones.
func (l *DecisionLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Evicted returns how many decisions have aged out of the ring.
func (l *DecisionLog) Evicted() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - int64(l.count)
}

// TotalByKind returns lifetime per-kind totals (a copy), unaffected by
// eviction.
func (l *DecisionLog) TotalByKind() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.byKind))
	for k, v := range l.byKind {
		out[k] = v
	}
	return out
}
