package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// ContentType is the Prometheus text exposition content type served by
// /metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4) onto an io.Writer. It is a thin formatting helper — the
// engine decides what to expose; this type only knows how to spell it.
type MetricWriter struct {
	w io.Writer
}

// NewMetricWriter wraps w.
func NewMetricWriter(w io.Writer) *MetricWriter {
	return &MetricWriter{w: w}
}

// Counter emits a single counter sample with a HELP/TYPE header.
func (m *MetricWriter) Counter(name, help string, v int64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// Gauge emits a single gauge sample with a HELP/TYPE header.
func (m *MetricWriter) Gauge(name, help string, v float64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
}

// CounterVec emits one counter per element of vals, labelled
// {label="index"}. The per-shard latch-wait exposition uses this.
func (m *MetricWriter) CounterVec(name, help, label string, vals []int64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for i, v := range vals {
		fmt.Fprintf(m.w, "%s{%s=%q} %d\n", name, label, strconv.Itoa(i), v)
	}
}

// CounterMap emits one counter per key, labelled {label="key"}, keys in
// sorted order so output is deterministic.
func (m *MetricWriter) CounterMap(name, help, label string, vals map[string]int64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(m.w, "%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}

// GaugeVec emits one gauge per element of vals, labelled {label="index"}.
// The per-shard throttle-ceiling exposition uses this: a ceiling is live
// controller state that can fall back to zero, not a monotone counter.
func (m *MetricWriter) GaugeVec(name, help, label string, vals []int64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for i, v := range vals {
		fmt.Fprintf(m.w, "%s{%s=%q} %d\n", name, label, strconv.Itoa(i), v)
	}
}

// GaugeMap emits one gauge per key, labelled {label="key"}, keys in
// sorted order so output is deterministic. The hot-lock top-K exposition
// uses this: a lock's blame is a decayed score, not a monotone counter.
func (m *MetricWriter) GaugeMap(name, help, label string, vals map[string]float64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(m.w, "%s{%s=%q} %s\n", name, label, k, formatFloat(vals[k]))
	}
}

// Histogram emits a Snapshot as a Prometheus histogram: cumulative
// `_bucket{le="..."}` samples for every non-empty bucket (plus the
// mandatory +Inf bucket), `_sum`, and `_count`. scale multiplies the
// bucket upper bounds and the sum — recordings are nanoseconds, so pass
// 1e-9 to expose seconds, the Prometheus base unit.
//
// Only non-empty buckets are written (cumulative counts stay correct:
// a scrape sees the running total at each emitted bound). With 65
// power-of-two buckets, sparse emission keeps the page readable.
func (m *MetricWriter) Histogram(name, help string, s Snapshot, scale float64) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		upper := BucketUpper(i) * scale
		if math.IsInf(upper, 1) {
			continue // folded into the +Inf bucket below
		}
		fmt.Fprintf(m.w, "%s_bucket{le=%q} %d\n", name, formatFloat(upper), cum)
	}
	fmt.Fprintf(m.w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Total)
	fmt.Fprintf(m.w, "%s_sum %s\n", name, formatFloat(s.ApproxSum()*scale))
	fmt.Fprintf(m.w, "%s_count %d\n", name, s.Total)
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, integers without a mantissa dot.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
