// Package obs is the engine's live observability layer: lock-free latency
// histograms, the structured tuning-decision log, and the HTTP exposition
// surface (/metrics in Prometheus text format plus the /debug endpoints).
//
// The paper's evaluation — and the latch/lock studies it builds on — hinge
// on *distributions* of wait behaviour, not means: a lock manager whose
// p50 wait is microseconds can still be strangling its tail. The
// histograms here make tails observable at full production rates:
//
//   - power-of-two buckets: a recorded value v lands in bucket
//     ⌈log2 v⌉, so the bucket index is one bits.Len64 instruction and the
//     65 buckets cover the full int64 nanosecond range with ≤2× relative
//     quantile error;
//   - per-stripe counters: recorders pick a stripe (lock-table shards use
//     their shard index), so concurrent recording does not serialize on a
//     shared cache line; a record is exactly one atomic add;
//   - mergeable snapshots: stripes sum into a Snapshot, Snapshots merge
//     associatively, and quantiles are estimated from the merged buckets —
//     the shape a multi-node aggregation needs.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of power-of-two buckets. Bucket 0 holds
// non-positive values; bucket i (1 ≤ i ≤ 64) holds v with
// 2^(i-1) ≤ v < 2^i. Values are conventionally nanoseconds, but the
// histogram is unit-agnostic; Unit records the convention for renderers.
const NumBuckets = 65

// maxStripes bounds the stripe array (memory: ~0.5 KB per stripe).
const maxStripes = 256

// BucketOf returns the bucket index for a value.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the exclusive upper bound of bucket i as a float
// (+Inf for the last bucket, which holds v ≥ 2^63).
func BucketUpper(i int) float64 {
	switch {
	case i <= 0:
		return 1 // bucket 0 ∪ bucket boundary: v < 1
	case i >= NumBuckets-1:
		return math.Inf(1)
	default:
		return float64(uint64(1) << uint(i))
	}
}

// stripe is one recorder lane. The trailing pad keeps hot stripes from
// sharing a cache line across their boundary counters.
type stripe struct {
	counts [NumBuckets]atomic.Uint64
	_      [56]byte
}

// Histogram is a lock-free, striped, power-of-two bucketed latency
// histogram. Record is one atomic add; Snapshot merges the stripes without
// stopping recorders (the result is a fuzzy-but-complete cut, like every
// other latch-free observer in this codebase).
type Histogram struct {
	name   string
	unit   string
	mask   uint64
	stripe []stripe
}

// NewHistogram creates a histogram with the given number of stripes
// (rounded up to a power of two, clamped to [1, 256]). name/unit label the
// exposition ("lock wait", "ns").
func NewHistogram(name, unit string, stripes int) *Histogram {
	n := 1
	for n < stripes && n < maxStripes {
		n <<= 1
	}
	return &Histogram{name: name, unit: unit, mask: uint64(n - 1), stripe: make([]stripe, n)}
}

// Name returns the histogram's name.
func (h *Histogram) Name() string { return h.name }

// Unit returns the recording unit label (conventionally "ns").
func (h *Histogram) Unit() string { return h.unit }

// Stripes returns the number of recorder lanes.
func (h *Histogram) Stripes() int { return len(h.stripe) }

// Record adds one observation on stripe 0. Use RecordStripe from striped
// hot paths.
func (h *Histogram) Record(v int64) { h.RecordStripe(0, v) }

// RecordStripe adds one observation on the given stripe (masked into
// range, so callers may pass any non-negative lane id — e.g. a lock-table
// shard index). It is exactly one atomic add.
func (h *Histogram) RecordStripe(stripe int, v int64) {
	h.stripe[uint64(stripe)&h.mask].counts[BucketOf(v)].Add(1)
}

// Snapshot is an immutable, mergeable view of a histogram's buckets.
type Snapshot struct {
	// Counts holds per-bucket observation counts.
	Counts [NumBuckets]uint64
	// Total is the sum of Counts.
	Total uint64
}

// Snapshot merges all stripes into one view. Recording continues while the
// stripes are read; the snapshot is complete but not a single atomic cut,
// which monitoring tolerates.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.stripe {
		st := &h.stripe[i]
		for b := 0; b < NumBuckets; b++ {
			c := st.counts[b].Load()
			s.Counts[b] += c
			s.Total += c
		}
	}
	return s
}

// Merge returns the bucket-wise sum of s and o. Merging is commutative and
// associative, so snapshots from any number of histograms (or the same
// histogram over time, since counts are monotone) aggregate in any order.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := s
	for i := range out.Counts {
		out.Counts[i] += o.Counts[i]
	}
	out.Total += o.Total
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded values by
// rank-walking the buckets and interpolating linearly within the landing
// bucket. Because bucket i spans [2^(i-1), 2^i), the estimate is within a
// factor of two of the true value: estimate/true ∈ (1/2, 2]. Returns 0 for
// an empty snapshot.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(i-1))
			hi := lo * 2
			within := float64(target-cum) / float64(c)
			return lo + (hi-lo)*within
		}
		cum += c
	}
	return 0 // unreachable: target ≤ Total
}

// Mean estimates the arithmetic mean using each bucket's geometric
// location (1.5 × lower bound). Like Quantile it is a bucketed estimate,
// not an exact sum.
func (s Snapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	sum := 0.0
	for i, c := range s.Counts {
		if c == 0 || i == 0 {
			continue
		}
		lo := float64(uint64(1) << uint(i-1))
		sum += 1.5 * lo * float64(c)
	}
	return sum / float64(s.Total)
}

// ApproxSum estimates the sum of all recorded values (Mean × Total).
func (s Snapshot) ApproxSum() float64 {
	return s.Mean() * float64(s.Total)
}

// Sampler admits every strideth Tick — the cheap way to put wall-clock
// timestamping on a hot path without paying for two time.Now calls per
// operation. Tick is one atomic add; the stride is a power of two so the
// admit test is a mask. The zero Sampler admits nothing (stride 0 =
// disabled). It uses plain-word atomics so a pre-use value copy (struct
// embedding at construction) is legal.
type Sampler struct {
	stride uint64
	n      uint64
}

// NewSampler returns a sampler admitting one in stride Ticks (rounded up
// to a power of two). stride ≤ 0 disables the sampler.
func NewSampler(stride int) Sampler {
	if stride <= 0 {
		return Sampler{}
	}
	n := uint64(1)
	for n < uint64(stride) {
		n <<= 1
	}
	return Sampler{stride: n}
}

// Stride returns the effective stride (0 = disabled).
func (s *Sampler) Stride() int { return int(s.stride) }

// Tick reports whether this event is sampled.
func (s *Sampler) Tick() bool {
	if s.stride == 0 {
		return false
	}
	return atomic.AddUint64(&s.n, 1)&(s.stride-1) == 0
}
