package stmm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memblock"
)

// TestQuickControllerRandomWalk subjects a controller to random demand
// walks, random PMC benefits and random synchronous growth, checking the
// global invariants after every tuning pass:
//
//   - page conservation across the whole memory set;
//   - lock heap == block chain size, block aligned;
//   - lock memory within [minLockMemory, maxLockMemory];
//   - LMO reset and overflow deficit repaid after each pass (while the
//     PMCs have pages to give).
func TestQuickControllerRandomWalk(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRigForWalk(t)
		demand := 10_000 // structs

		for i := 0; i < int(steps%40)+5; i++ {
			// Random demand move, biased to spikes.
			switch rng.Intn(4) {
			case 0:
				demand *= 2
			case 1:
				demand = demand * 2 / 3
			case 2:
				demand += rng.Intn(200_000)
			case 3:
				// steady
			}
			if demand < 100 {
				demand = 100
			}
			if demand > 4_000_000 {
				demand = 4_000_000
			}

			// Synchronous consumption when demand exceeds capacity,
			// like the lock manager would.
			if demand > r.lock.CapacityStructs() {
				needPages := (demand - r.lock.CapacityStructs()) / memblock.StructsPerPage
				granted := r.ctl.SyncGrow(needPages + memblock.BlockPages)
				r.lock.pages += granted
			}
			used := demand
			if used > r.lock.CapacityStructs() {
				used = r.lock.CapacityStructs()
			}
			r.lock.used = used
			r.lock.apps = rng.Intn(200)
			r.bp.benefit = float64(rng.Intn(100))
			r.sort.benefit = float64(rng.Intn(100))

			rep := r.ctl.TuneOnce()

			if err := r.set.CheckConservation(); err != nil {
				t.Logf("step %d: %v", i, err)
				return false
			}
			if r.lockHeap.Pages() != r.lock.Pages() {
				t.Logf("step %d: heap %d != chain %d", i, r.lockHeap.Pages(), r.lock.Pages())
				return false
			}
			if r.lock.Pages()%memblock.BlockPages != 0 {
				t.Logf("step %d: misaligned %d", i, r.lock.Pages())
				return false
			}
			if rep.LockPagesAfter > rep.Decision.MaxPages {
				t.Logf("step %d: above max: %d > %d", i, rep.LockPagesAfter, rep.Decision.MaxPages)
				return false
			}
			if r.ctl.LMO() != 0 {
				t.Logf("step %d: LMO not reset", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// newRigForWalk builds the standard rig without the *testing.T plumbing
// assertions of newRig (quick functions run many times).
func newRigForWalk(t *testing.T) *rig {
	t.Helper()
	return newRig(t, 2048)
}
