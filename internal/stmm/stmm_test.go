package stmm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/memblock"
	"repro/internal/memory"
)

// fakeLock is a LockMemory with direct control over usage.
type fakeLock struct {
	pages    int
	used     int
	apps     int
	requests int64
}

func (f *fakeLock) Pages() int            { return f.pages }
func (f *fakeLock) UsedStructs() int      { return f.used }
func (f *fakeLock) CapacityStructs() int  { return f.pages * memblock.StructsPerPage }
func (f *fakeLock) UsedPages() int        { return (f.used + 63) / 64 }
func (f *fakeLock) NumApps() int          { return f.apps }
func (f *fakeLock) StructRequests() int64 { return f.requests }
func (f *fakeLock) Resize(target int) int {
	// Like the real chain: shrink only frees wholly unused blocks.
	minPages := ((f.used + memblock.StructsPerBlock - 1) / memblock.StructsPerBlock) * memblock.BlockPages
	if target < minPages {
		target = minPages
	}
	f.pages = (target + memblock.BlockPages - 1) / memblock.BlockPages * memblock.BlockPages
	return f.pages
}

// fakePMC records applied sizes and reports a fixed benefit.
type fakePMC struct {
	name    string
	benefit float64
	applied []int
	resets  int
}

func (f *fakePMC) Name() string        { return f.name }
func (f *fakePMC) Benefit() float64    { return f.benefit }
func (f *fakePMC) ResetInterval()      { f.resets++ }
func (f *fakePMC) ApplySize(pages int) { f.applied = append(f.applied, pages) }
func (f *fakePMC) lastApplied() int {
	if len(f.applied) == 0 {
		return -1
	}
	return f.applied[len(f.applied)-1]
}

// rig builds a 131072-page (512 MB) memory set with two PMC heaps and a
// lock heap, plus a fake lock memory bound to a controller.
type rig struct {
	set      *memory.Set
	ctl      *Controller
	lock     *fakeLock
	bp, sort *fakePMC
	bpHeap   *memory.Heap
	sortHeap *memory.Heap
	lockHeap *memory.Heap
}

func newRig(t *testing.T, lockPages int) *rig {
	t.Helper()
	set := memory.NewSet(131072, 13107) // overflow goal 10%
	bpHeap, err := set.Register("bufferpool", 80000, 10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	sortHeap, err := set.Register("sortheap", 20000, 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	lockHeap, err := set.Register("locklist", lockPages, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctl := New(Config{Set: set, LockHeap: lockHeap, Params: core.DefaultParams()})
	lock := &fakeLock{pages: lockPages, apps: 10}
	ctl.BindLock(lock)
	bp := &fakePMC{name: "bufferpool", benefit: 50}
	sort := &fakePMC{name: "sortheap", benefit: 1}
	ctl.RegisterPMC(bpHeap, bp)
	ctl.RegisterPMC(sortHeap, sort)
	return &rig{set: set, ctl: ctl, lock: lock, bp: bp, sort: sort,
		bpHeap: bpHeap, sortHeap: sortHeap, lockHeap: lockHeap}
}

func TestTuneOncePanicsUnbound(t *testing.T) {
	set := memory.NewSet(1000, 100)
	h, _ := set.Register("locklist", 512, 0, 0)
	ctl := New(Config{Set: set, LockHeap: h, Params: core.DefaultParams()})
	defer func() {
		if recover() == nil {
			t.Fatal("TuneOnce before BindLock must panic")
		}
	}()
	ctl.TuneOnce()
}

func TestSteadyStateNoChange(t *testing.T) {
	r := newRig(t, 2048)
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs())) // 55% free
	rep := r.ctl.TuneOnce()
	if rep.Decision.Action != core.ActionNone {
		t.Fatalf("action = %v (%s)", rep.Decision.Action, rep.Decision.Reason)
	}
	if rep.LockPagesAfter != 2048 {
		t.Fatalf("lock pages = %d", rep.LockPagesAfter)
	}
	if err := r.set.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthTakesFromLeastNeedyPMC(t *testing.T) {
	r := newRig(t, 2048)
	r.lock.used = int(0.80 * float64(r.lock.CapacityStructs())) // 20% free
	sortBefore := r.sortHeap.Pages()
	rep := r.ctl.TuneOnce()
	if rep.Decision.Action != core.ActionGrow {
		t.Fatalf("action = %v", rep.Decision.Action)
	}
	if rep.FromPMCs == 0 {
		t.Fatalf("growth not funded by PMCs: %+v", rep)
	}
	// The sort heap (benefit 1) donates before the buffer pool (50).
	if r.sortHeap.Pages() >= sortBefore {
		t.Fatal("sort heap did not donate")
	}
	// The buffer pool (higher benefit) must not have donated; it may even
	// have received surplus overflow afterwards.
	if r.bpHeap.Pages() < 80000 {
		t.Fatalf("buffer pool donated despite higher benefit: %d", r.bpHeap.Pages())
	}
	if r.sort.lastApplied() != r.sortHeap.Pages() {
		t.Fatal("ApplySize not called on donor")
	}
	// Heap and chain sizes agree, block aligned.
	if r.lockHeap.Pages() != r.lock.Pages() || r.lockHeap.Pages()%memblock.BlockPages != 0 {
		t.Fatalf("heap %d vs chain %d", r.lockHeap.Pages(), r.lock.Pages())
	}
	if err := r.set.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthFallsBackToOverflow(t *testing.T) {
	r := newRig(t, 2048)
	// Pin both PMCs at their minimums.
	r.set.Shrink(r.bpHeap, 1<<30)
	r.set.Shrink(r.sortHeap, 1<<30)
	r.lock.used = int(0.80 * float64(r.lock.CapacityStructs()))
	rep := r.ctl.TuneOnce()
	if rep.FromPMCs != 0 {
		t.Fatalf("PMCs at min still donated %d", rep.FromPMCs)
	}
	if rep.FromOverflow == 0 {
		t.Fatalf("overflow not used: %+v", rep)
	}
	if err := r.set.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkReturnsToOverflow(t *testing.T) {
	r := newRig(t, 10240)
	r.lock.used = 100 // almost everything free
	overflowBefore := r.set.Overflow()
	rep := r.ctl.TuneOnce()
	if rep.Decision.Action != core.ActionShrink {
		t.Fatalf("action = %v (%s)", rep.Decision.Action, rep.Decision.Reason)
	}
	// δreduce: 5% of 10240 = 512 pages.
	if rep.ToOverflow != 512 {
		t.Fatalf("released %d pages, want 512", rep.ToOverflow)
	}
	// Overflow was above goal already, so the surplus goes nowhere (fake
	// PMC benefit > 0 receives it instead).
	_ = overflowBefore
	if err := r.set.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestEscalationsTriggerDoubling(t *testing.T) {
	r := newRig(t, 2048)
	var cum int64
	r.ctl.BindEscalations(func() int64 { return cum })
	r.lock.used = r.lock.CapacityStructs() / 2

	cum = 5 // five escalations during the interval
	rep := r.ctl.TuneOnce()
	if !rep.Decision.Doubled {
		t.Fatalf("no doubling: %s", rep.Decision.Reason)
	}
	if rep.LockPagesAfter != 4096 {
		t.Fatalf("lock pages = %d, want 4096", rep.LockPagesAfter)
	}
	// Same cumulative count next interval: no new escalations, no double.
	r.lock.pages = rep.LockPagesAfter
	rep2 := r.ctl.TuneOnce()
	if rep2.Decision.Doubled {
		t.Fatal("doubling repeated without new escalations")
	}
}

func TestSyncGrowRespectsLMOMaxAndBlocks(t *testing.T) {
	r := newRig(t, 2048)
	// Overflow: 131072 − 80000 − 20000 − 2048 = 29024 pages.
	// LMOmax = 0.65 × 29024 = 18865; block-floored grant.
	got := r.ctl.SyncGrow(100000)
	if got%memblock.BlockPages != 0 {
		t.Fatalf("sync grant %d not block aligned", got)
	}
	if got > 18865 || got < 18865-memblock.BlockPages {
		t.Fatalf("grant = %d, want ≈ LMOmax 18865", got)
	}
	if r.ctl.LMO() != got {
		t.Fatalf("LMO = %d, want %d", r.ctl.LMO(), got)
	}
	// A second call: LMO already at LMOmax → nothing more.
	if more := r.ctl.SyncGrow(100000); more != 0 {
		t.Fatalf("second grant = %d, want 0", more)
	}
	if err := r.set.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestTuneRepaysOverflowAfterSyncGrowth(t *testing.T) {
	r := newRig(t, 2048)
	granted := r.ctl.SyncGrow(16000)
	if granted == 0 {
		t.Fatal("sync grow failed")
	}
	r.lock.pages = r.lockHeap.Pages() // chain grew with the heap
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	if r.set.OverflowDeficit() == 0 {
		t.Fatal("test setup: expected overflow deficit")
	}
	rep := r.ctl.TuneOnce()
	if rep.RepaidOverflow == 0 {
		t.Fatalf("overflow not repaid: %+v", rep)
	}
	if r.set.OverflowDeficit() != 0 {
		t.Fatalf("deficit remains: %d", r.set.OverflowDeficit())
	}
	if r.ctl.LMO() != 0 {
		t.Fatalf("LMO not reset: %d", r.ctl.LMO())
	}
	if err := r.set.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSurplusGoesToNeediestPMC(t *testing.T) {
	r := newRig(t, 2048)
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	bpBefore := r.bpHeap.Pages()
	rep := r.ctl.TuneOnce()
	if rep.DistributedSurplus == 0 {
		t.Fatalf("surplus not distributed: %+v", rep)
	}
	if r.bpHeap.Pages() <= bpBefore {
		t.Fatal("neediest PMC (bufferpool) did not receive the surplus")
	}
	if got := r.set.OverflowSurplus(); got != 0 {
		t.Fatalf("surplus remains: %d", got)
	}
}

func TestSurplusSkipsZeroBenefitPMCs(t *testing.T) {
	r := newRig(t, 2048)
	r.bp.benefit, r.sort.benefit = 0, 0
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	rep := r.ctl.TuneOnce()
	if rep.DistributedSurplus != 0 {
		t.Fatalf("surplus distributed to idle PMCs: %+v", rep)
	}
	if r.set.OverflowSurplus() == 0 {
		t.Fatal("surplus should remain in reserve")
	}
}

func TestQuotaRecomputedOnResize(t *testing.T) {
	r := newRig(t, 2048)
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	rep := r.ctl.TuneOnce()
	// maxLock = 26208 pages; used ≈ 922 pages → x ≈ 3.5% → quota ≈ 98.
	if rep.QuotaPercent < 97 || rep.QuotaPercent > 98 {
		t.Fatalf("quota = %g", rep.QuotaPercent)
	}
	// Heavy usage drives the quota down via QuotaPercent.
	r.lock.used = 24000 * memblock.StructsPerPage // ≈ 91% of max
	r.lock.requests = 10_000
	q := r.ctl.QuotaPercent(1, r.lock.requests, r.lock.used)
	if q > 30 {
		t.Fatalf("quota at 91%% of max = %g, want heavy attenuation", q)
	}
}

func TestPMCIntervalReset(t *testing.T) {
	r := newRig(t, 2048)
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	r.ctl.TuneOnce()
	r.ctl.TuneOnce()
	if r.bp.resets != 2 || r.sort.resets != 2 {
		t.Fatalf("resets = %d/%d, want 2/2", r.bp.resets, r.sort.resets)
	}
}

func TestLMOCExternalized(t *testing.T) {
	r := newRig(t, 2048)
	r.lock.used = int(0.80 * float64(r.lock.CapacityStructs()))
	rep := r.ctl.TuneOnce()
	if r.ctl.LMOC() != rep.Decision.TargetPages {
		t.Fatalf("LMOC = %d, want %d", r.ctl.LMOC(), rep.Decision.TargetPages)
	}
	if rep.LMOC != r.ctl.LMOC() {
		t.Fatal("report LMOC mismatch")
	}
}

func TestCompilerViewIsStable(t *testing.T) {
	r := newRig(t, 2048)
	want := core.DefaultParams().CompilerLockPages(131072)
	if got := r.ctl.CompilerLockPages(); got != want {
		t.Fatalf("compiler view = %d, want %d", got, want)
	}
	// It must not move with the actual allocation.
	r.lock.used = int(0.8 * float64(r.lock.CapacityStructs()))
	r.ctl.TuneOnce()
	if got := r.ctl.CompilerLockPages(); got != want {
		t.Fatalf("compiler view moved to %d", got)
	}
}

// TestIntegrationWithRealLockManager wires a real lockmgr.Manager through
// the controller: sudden demand grows synchronously from overflow without
// escalation, and the next tuning pass rebalances.
func TestIntegrationWithRealLockManager(t *testing.T) {
	// Buffer pool sized so that overflow starts just above its goal and
	// synchronous lock growth pushes it into deficit.
	set := memory.NewSet(131072, 13107)
	bpHeap, _ := set.Register("bufferpool", 117000, 10000, 0)
	lockHeap, _ := set.Register("locklist", 512, 0, 0)
	ctl := New(Config{Set: set, LockHeap: lockHeap, Params: core.DefaultParams()})
	mgr := lockmgr.New(lockmgr.Config{
		InitialPages: 512,
		GrowSync:     ctl.SyncGrow,
		Quota:        ctl,
	})
	ctl.BindLock(mgr)
	st := mgr.Stats
	ctl.BindEscalations(func() int64 { return st().Escalations })
	bp := &fakePMC{name: "bufferpool", benefit: 5}
	ctl.RegisterPMC(bpHeap, bp)

	app := mgr.RegisterApp()
	o := mgr.NewOwner(app)
	if st, _ := mgr.AcquireAsync(o, lockmgr.TableName(1), lockmgr.ModeIX, 1).Status(); st != lockmgr.StatusGranted {
		t.Fatal("intent lock failed")
	}
	// Demand far beyond the initial 512 pages (32768 structs).
	for i := 0; i < 100000; i++ {
		p := mgr.AcquireAsync(o, lockmgr.RowName(1, uint64(i)), lockmgr.ModeX, 1)
		if s, err := p.Status(); s != lockmgr.StatusGranted {
			t.Fatalf("row %d: %v %v", i, s, err)
		}
	}
	if got := mgr.Stats().Escalations; got != 0 {
		t.Fatalf("escalations = %d, want 0 (sync growth should cover)", got)
	}
	if mgr.Pages() <= 512 {
		t.Fatal("no synchronous growth")
	}
	if ctl.LMO() == 0 {
		t.Fatal("LMO not tracked")
	}
	if set.OverflowDeficit() == 0 {
		t.Fatal("expected overflow deficit before tuning")
	}

	rep := ctl.TuneOnce()
	if set.OverflowDeficit() != 0 {
		t.Fatalf("overflow deficit after tuning: %d", set.OverflowDeficit())
	}
	if lockHeap.Pages() != mgr.Pages() {
		t.Fatalf("heap %d != chain %d", lockHeap.Pages(), mgr.Pages())
	}
	if err := set.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	_ = rep

	// Release everything: δreduce shrinks over subsequent intervals.
	mgr.ReleaseAll(o)
	sizeBefore := mgr.Pages()
	for i := 0; i < 200 && mgr.Pages() > rep.Decision.MinPages; i++ {
		ctl.TuneOnce()
	}
	if mgr.Pages() >= sizeBefore {
		t.Fatalf("no shrink after load drop: %d", mgr.Pages())
	}
	if lockHeap.Pages() != mgr.Pages() {
		t.Fatalf("heap %d != chain %d after shrink", lockHeap.Pages(), mgr.Pages())
	}
	if err := set.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
