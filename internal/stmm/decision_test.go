package stmm

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/memblock"
	"repro/internal/obs"
)

// TestDecisionLogReplay drives the controller through growth, shrink,
// steady-state, and escalation-doubling passes plus synchronous growth,
// then replays every recorded tuning decision through a fresh tuner: the
// recorded inputs must reproduce the recorded action and target. This is
// the explainability contract behind /debug/tuner.
func TestDecisionLogReplay(t *testing.T) {
	r := newRig(t, 2048)
	log := obs.NewDecisionLog(64)
	clk := clock.NewSim()
	r.ctl.SetDecisionLog(log, clk)
	if r.ctl.DecisionLog() != log {
		t.Fatal("DecisionLog accessor mismatch")
	}

	var escCum int64
	r.ctl.BindEscalations(func() int64 { return escCum })

	// Pass 1: heavy usage → grow.
	r.lock.used = int(0.8 * float64(r.lock.CapacityStructs()))
	r.ctl.TuneOnce()
	clk.Advance(30e9)

	// Pass 2: usage collapsed → shrink.
	r.lock.used = int(0.05 * float64(r.lock.CapacityStructs()))
	r.ctl.TuneOnce()
	clk.Advance(30e9)

	// Pass 3: inside the band → none.
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	r.ctl.TuneOnce()
	clk.Advance(30e9)

	// Pass 4: escalations fired → doubling.
	escCum = 7
	r.ctl.TuneOnce()
	clk.Advance(30e9)

	// Synchronous growth between passes.
	granted := r.ctl.SyncGrow(memblock.BlockPages * 2)
	if granted <= 0 {
		t.Fatalf("SyncGrow granted %d", granted)
	}

	recs := log.Decisions()
	if len(recs) != 5 {
		t.Fatalf("recorded %d decisions, want 5", len(recs))
	}

	// Kinds: pass 4 must be escalation-doubling, the last sync-growth.
	if recs[3].Kind != obs.KindEscalationDoubling || !recs[3].Doubled {
		t.Fatalf("pass 4 kind = %s doubled=%v", recs[3].Kind, recs[3].Doubled)
	}
	if recs[4].Kind != obs.KindSyncGrowth {
		t.Fatalf("last kind = %s", recs[4].Kind)
	}
	if recs[4].GrantedPages != granted || recs[4].LockPagesAfter-recs[4].LockPagesBefore != granted {
		t.Fatalf("sync-growth record %+v inconsistent with grant %d", recs[4], granted)
	}
	// Deterministic timestamps from the sim clock.
	if !recs[1].Time.Equal(recs[0].Time.Add(30e9)) {
		t.Fatalf("timestamps not sim-clock driven: %v, %v", recs[0].Time, recs[1].Time)
	}

	// Replay: recorded inputs through a fresh tuner reproduce the action.
	for _, rec := range recs {
		if rec.Kind == obs.KindSyncGrowth {
			// Sync growth replays through the admission bound instead.
			p := core.DefaultParams()
			sumHeaps := rec.DatabasePages - rec.OverflowPages
			allowed := p.AllowedSyncGrowthPages(rec.DatabasePages, sumHeaps, rec.LMOPages, rec.OverflowPages)
			if allowed != rec.AllowedPages {
				t.Errorf("sync-growth replay: allowed %d, recorded %d", allowed, rec.AllowedPages)
			}
			continue
		}
		tuner := core.NewTuner(core.DefaultParams())
		tuner.RestorePrevTarget(rec.PrevTarget)
		dec := tuner.Decide(core.Inputs{
			DatabasePages:   rec.DatabasePages,
			LockPages:       rec.LockPagesBefore,
			UsedStructs:     rec.UsedStructs,
			CapacityStructs: rec.CapacityStructs,
			NumApplications: rec.NumApps,
			Escalations:     rec.Escalations,
		})
		if dec.TargetPages != rec.TargetPages {
			t.Errorf("seq %d: replayed target %d != recorded %d (%s)", rec.Seq, dec.TargetPages, rec.TargetPages, rec.Reason)
		}
		if dec.Action.String() != rec.Action {
			t.Errorf("seq %d: replayed action %s != recorded %s", rec.Seq, dec.Action, rec.Action)
		}
		if dec.MinPages != rec.MinPages || dec.MaxPages != rec.MaxPages {
			t.Errorf("seq %d: replayed bounds [%d,%d] != recorded [%d,%d]", rec.Seq, dec.MinPages, dec.MaxPages, rec.MinPages, rec.MaxPages)
		}
	}
}

// TestDecisionLogDetachable confirms a nil store detaches the sink.
func TestDecisionLogDetachable(t *testing.T) {
	r := newRig(t, 2048)
	log := obs.NewDecisionLog(16)
	r.ctl.SetDecisionLog(log, nil) // nil clock = wall clock
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	r.ctl.TuneOnce()
	if log.Total() != 1 {
		t.Fatalf("Total = %d, want 1", log.Total())
	}
	if log.Decisions()[0].Time.IsZero() {
		t.Fatal("wall-clock timestamp missing")
	}
	r.ctl.SetDecisionLog(nil, nil)
	if r.ctl.DecisionLog() != nil {
		t.Fatal("detach failed")
	}
	r.ctl.TuneOnce()
	if log.Total() != 1 {
		t.Fatalf("detached log still recorded: %d", log.Total())
	}
}
