package stmm

import (
	"context"
	"testing"
	"time"

	"repro/internal/memblock"
)

func TestAdaptiveIntervalLengthensWhenStable(t *testing.T) {
	r := newRig(t, 2048)
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs())) // in band
	start := r.ctl.Interval()
	// Three stable passes lengthen the interval by 50%.
	var rep Report
	for i := 0; i < 3; i++ {
		rep = r.ctl.TuneOnce()
	}
	if got := r.ctl.Interval(); got <= start {
		t.Fatalf("interval did not lengthen: %v", got)
	}
	if rep.NextInterval != r.ctl.Interval() {
		t.Fatalf("report interval %v != controller %v", rep.NextInterval, r.ctl.Interval())
	}
}

func TestAdaptiveIntervalShortensOnChange(t *testing.T) {
	r := newRig(t, 2048)
	// Stabilize long first.
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	for i := 0; i < 12; i++ {
		r.ctl.TuneOnce()
	}
	long := r.ctl.Interval()
	if long <= MinInterval {
		t.Fatalf("setup: interval did not lengthen (%v)", long)
	}
	// A resize halves it.
	r.lock.used = int(0.9 * float64(r.lock.CapacityStructs()))
	r.ctl.TuneOnce()
	if got := r.ctl.Interval(); got >= long {
		t.Fatalf("interval did not shorten: %v vs %v", got, long)
	}
}

func TestAdaptiveIntervalClamps(t *testing.T) {
	r := newRig(t, 2048)
	// Repeated growth cannot push below MinInterval.
	for i := 0; i < 10; i++ {
		r.lock.used = r.lock.CapacityStructs() * 9 / 10
		r.ctl.TuneOnce()
		r.lock.pages *= 2
		r.lock.used = r.lock.CapacityStructs() / 10 // force shrink next
	}
	if got := r.ctl.Interval(); got < MinInterval {
		t.Fatalf("interval below minimum: %v", got)
	}
	// Long stability cannot push above MaxInterval.
	r.lock.pages = 2048
	r.lock.used = int(0.45 * float64(r.lock.CapacityStructs()))
	for i := 0; i < 100; i++ {
		r.ctl.TuneOnce()
	}
	if got := r.ctl.Interval(); got > MaxInterval {
		t.Fatalf("interval above maximum: %v", got)
	}
}

// TestRunLoopRealTime exercises the wall-clock Run loop with a short
// interval, as a real deployment would use it.
func TestRunLoopRealTime(t *testing.T) {
	r := newRig(t, 2048)
	r.ctl.mu.Lock()
	r.ctl.interval = 5 * time.Millisecond // test-only: bypass the clamp
	r.ctl.mu.Unlock()
	r.lock.used = int(0.80 * float64(r.lock.CapacityStructs())) // needs growth

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		r.ctl.Run(ctx)
		close(done)
	}()
	<-done
	// At least one pass ran: the allocation grew beyond 2048 pages.
	if got := r.lockHeap.Pages(); got <= 2048 {
		t.Fatalf("Run loop never tuned: %d pages", got)
	}
	if r.lockHeap.Pages()%memblock.BlockPages != 0 {
		t.Fatal("misaligned heap after Run loop")
	}
}
