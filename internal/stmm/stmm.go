// Package stmm implements the Self-Tuning Memory Manager controller: the
// asynchronous half of the paper's algorithm (sections 2.1 and 3.3–3.5).
//
// At each tuning interval the controller:
//
//  1. samples the lock manager and asks the core tuner for a lock-memory
//     target (growth to restore minFreeLockMemory, δreduce shrink, or
//     escalation-recovery doubling);
//  2. applies the target — growth is funded first by the least-needy
//     performance memory consumers (PMCs, compared by their marginal
//     Benefit), then by overflow memory; shrinkage returns pages to
//     overflow, limited to entirely free lock blocks;
//  3. restores the overflow area to its goal size by shrinking PMCs when
//     heaps (notably lock memory, synchronously) grew into it during the
//     interval, and distributes any surplus overflow to the neediest PMCs;
//  4. externalizes the on-disk configuration value (LMOC) and recomputes
//     lockPercentPerApplication.
//
// Between intervals, the controller's SyncGrow method is the lock manager's
// synchronous-growth hook: it admits on-demand growth out of overflow
// memory up to LMOmax = C1 × available overflow.
package stmm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/memblock"
	"repro/internal/memory"
	"repro/internal/obs"
)

// LockMemory is the view of the lock manager the controller needs. It is
// implemented by *lockmgr.Manager.
type LockMemory interface {
	// Pages returns the current lock memory allocation.
	Pages() int
	// UsedStructs returns lock structures in use.
	UsedStructs() int
	// CapacityStructs returns the structures the allocation can hold.
	CapacityStructs() int
	// UsedPages returns structure usage in whole pages.
	UsedPages() int
	// Resize grows or (best-effort) shrinks toward target; returns the
	// resulting size in pages.
	Resize(targetPages int) int
	// NumApps returns the number of connected applications.
	NumApps() int
	// StructRequests returns the cumulative lock-structure request count.
	StructRequests() int64
}

// EscalationSource reports cumulative lock escalations; the controller
// differences it across intervals. Implemented via lockmgr stats.
type EscalationSource func() int64

// PMC is a performance memory consumer participating in redistribution.
type PMC interface {
	// Name identifies the consumer.
	Name() string
	// Benefit is the marginal value of more pages this interval; the
	// lowest-benefit consumer donates first, the highest receives first.
	Benefit() float64
	// ResetInterval clears per-interval statistics.
	ResetInterval()
	// ApplySize informs the consumer of its new heap size.
	ApplySize(pages int)
}

// Config wires a Controller.
type Config struct {
	// Set is the database shared memory set.
	Set *memory.Set
	// LockHeap is the lock memory heap within Set.
	LockHeap *memory.Heap
	// Params are the core tuning parameters (Table 1).
	Params core.Params
	// Escalations reports cumulative escalations (nil = always 0).
	Escalations EscalationSource
	// Interval is the initial tuning interval (informational; the driver
	// decides when to call TuneOnce). Defaults to 30 s, the value fixed
	// in all the paper's experiments.
	Interval time.Duration
}

// Report summarizes one tuning pass for logs, metrics and tests.
type Report struct {
	// Decision is the core tuner's output.
	Decision core.Decision
	// LockPagesBefore/After are the allocation around the pass.
	LockPagesBefore, LockPagesAfter int
	// FromPMCs / FromOverflow are pages taken to fund growth.
	FromPMCs, FromOverflow int
	// ToOverflow is pages released by shrinking lock memory.
	ToOverflow int
	// RepaidOverflow is pages taken from PMCs to restore the overflow
	// goal.
	RepaidOverflow int
	// DistributedSurplus is overflow surplus handed to needy PMCs.
	DistributedSurplus int
	// QuotaPercent is lockPercentPerApplication after the pass.
	QuotaPercent float64
	// LMOC is the externalized on-disk configuration value in pages.
	LMOC int
	// NextInterval is the adaptive tuning interval after this pass.
	NextInterval time.Duration
}

type pmcEntry struct {
	heap *memory.Heap
	pmc  PMC
}

// Controller is the STMM controller. TuneOnce is serialized internally;
// SyncGrow and QuotaPercent may be called concurrently by the lock manager.
//
// Lock ordering: the lock manager calls SyncGrow and QuotaPercent while
// holding its own latch, and TuneOnce calls into the lock manager while
// holding mu — so those callbacks must never take mu. They use the
// innermost syncMu instead, which is never held across a lock-manager call
// (the memory.Set has its own latch and sits below both).
type Controller struct {
	mu    sync.Mutex // tuning passes, wiring, interval, lmoc
	set   *memory.Set
	heap  *memory.Heap
	tuner *core.Tuner
	prm   core.Params
	lock  LockMemory
	esc   EscalationSource
	pmcs  []pmcEntry
	// throttle, when bound, retunes the lock manager's saturation-aware
	// admission ceilings at the end of every tuning pass — the same
	// cadence as lock-memory tuning, so its windows align with the
	// tuner's throughput deltas.
	throttle ThrottleTuner

	interval     time.Duration
	stablePasses int // consecutive no-change passes (interval adaptation)
	lmoc         int // externalized configuration value
	lastEsc      int64

	syncMu sync.Mutex // innermost: state shared with lock-manager callbacks
	lmo    int        // lock pages currently owed to overflow (since last pass)
	quota  *core.QuotaTracker

	// decis is the optional explainability sink. It is an atomic pointer
	// because SyncGrow reads it while holding a lock-manager shard latch
	// (where taking mu is forbidden) and SetDecisionLog may run
	// concurrently with tuning.
	decis atomic.Pointer[decSink]
}

// decSink pairs the decision log with the clock that timestamps records
// (the sim clock in simulations, so decision times are deterministic).
type decSink struct {
	log *obs.DecisionLog
	clk clock.Clock
}

// SetDecisionLog attaches an explainability log: every tuning pass,
// escalation doubling, and synchronous growth is recorded with the inputs
// that produced it. clk timestamps the records (nil = wall clock).
func (c *Controller) SetDecisionLog(log *obs.DecisionLog, clk clock.Clock) {
	if log == nil {
		c.decis.Store(nil)
		return
	}
	if clk == nil {
		clk = clock.Real{}
	}
	c.decis.Store(&decSink{log: log, clk: clk})
}

// DecisionLog returns the attached decision log (nil if none).
func (c *Controller) DecisionLog() *obs.DecisionLog {
	if ds := c.decis.Load(); ds != nil {
		return ds.log
	}
	return nil
}

// New creates a controller. BindLock must be called before tuning (the lock
// manager itself is constructed with the controller's SyncGrow and quota
// hooks, hence the two-step wiring).
func New(cfg Config) *Controller {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	return &Controller{
		set:      cfg.Set,
		heap:     cfg.LockHeap,
		tuner:    core.NewTuner(cfg.Params),
		prm:      cfg.Params,
		quota:    core.NewQuotaTracker(cfg.Params),
		esc:      cfg.Escalations,
		interval: cfg.Interval,
		lmoc:     cfg.LockHeap.Pages(),
	}
}

// BindLock attaches the lock manager view.
func (c *Controller) BindLock(lock LockMemory) {
	c.mu.Lock()
	c.lock = lock
	c.mu.Unlock()
}

// BindEscalations attaches the escalation counter source.
func (c *Controller) BindEscalations(src EscalationSource) {
	c.mu.Lock()
	c.esc = src
	c.mu.Unlock()
}

// ThrottleTuner is the saturation-throttle view of the lock manager: one
// retune pass over its per-shard admission ceilings. The controller calls
// it at the end of every tuning pass, so the concurrency limiter runs on
// the same cadence as lock-memory tuning (see lockmgr.RetuneThrottle).
type ThrottleTuner interface {
	RetuneThrottle()
}

// BindThrottle attaches the admission-throttle retuner (nil detaches).
func (c *Controller) BindThrottle(t ThrottleTuner) {
	c.mu.Lock()
	c.throttle = t
	c.mu.Unlock()
}

// RegisterPMC adds a performance consumer backed by a heap in the set.
func (c *Controller) RegisterPMC(heap *memory.Heap, pmc PMC) {
	c.mu.Lock()
	c.pmcs = append(c.pmcs, pmcEntry{heap: heap, pmc: pmc})
	c.mu.Unlock()
}

// Interval returns the tuning interval.
func (c *Controller) Interval() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.interval
}

// LMOC returns the externalized (on-disk) lock memory configuration.
func (c *Controller) LMOC() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lmoc
}

// LMO returns the lock pages currently consumed from overflow memory and
// not yet rebalanced.
func (c *Controller) LMO() int {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	return c.lmo
}

// SyncGrow is the lock manager's synchronous growth hook (Config.GrowSync):
// it moves up to needPages from overflow into the lock heap, honouring
// LMOmax = C1 × (available overflow including current LMO). It returns the
// pages granted.
func (c *Controller) SyncGrow(needPages int) int {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	asked := needPages
	snap := c.set.Snapshot()
	sumHeaps := snap.TotalPages - snap.Overflow
	lmoBefore := c.lmo
	allowed := c.prm.AllowedSyncGrowthPages(snap.TotalPages, sumHeaps, c.lmo, snap.Overflow)
	if needPages > allowed {
		needPages = allowed
	}
	// Grants are whole 128 KB blocks so the heap and the block chain stay
	// in lockstep.
	needPages = needPages / memblock.BlockPages * memblock.BlockPages
	granted := c.set.GrowUpTo(c.heap, needPages)
	if rem := granted % memblock.BlockPages; rem != 0 {
		// A heap-max clamp mid-block: return the unusable remainder.
		granted -= c.set.Shrink(c.heap, rem)
	}
	c.lmo += granted
	if ds := c.decis.Load(); ds != nil {
		// The lock manager calls SyncGrow with a shard latch held;
		// DecisionLog.Add is a leaf (its own mutex only), so recording
		// here is latch-safe.
		pagesAfter := c.heap.Pages()
		ds.log.Add(obs.Decision{
			Time:            ds.clk.Now(),
			Kind:            obs.KindSyncGrowth,
			DatabasePages:   snap.TotalPages,
			LockPagesBefore: pagesAfter - granted,
			C1:              c.prm.C1,
			NeedPages:       asked,
			AllowedPages:    allowed,
			LMOPages:        lmoBefore,
			OverflowPages:   snap.Overflow,
			Action:          "sync-grow",
			GrantedPages:    granted,
			LockPagesAfter:  pagesAfter,
			Reason:          fmt.Sprintf("demand %d pages; LMOmax (C1=%.2f) admits %d of %d overflow pages", asked, c.prm.C1, allowed, snap.Overflow),
		})
	}
	return granted
}

// QuotaPercent implements lockmgr.QuotaProvider: the live
// lockPercentPerApplication value, recomputed every refresh period.
func (c *Controller) QuotaPercent(appID int, structRequests int64, usedStructs int) float64 {
	_ = appID // the adaptive quota is uniform across applications
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	pct, _ := c.quota.MaybeRefresh(structRequests, c.usedPctOfMax(usedStructs))
	return pct
}

// usedPctOfMax converts a structure count to the percentage of
// maxLockMemory in use — the x of the Table 1 curve. Caller holds c.mu.
func (c *Controller) usedPctOfMax(usedStructs int) float64 {
	maxPages := c.prm.MaxLockPages(c.set.TotalPages())
	if maxPages <= 0 {
		return 100
	}
	usedPages := (usedStructs*c.prm.LockSizeBytes + memblock.PageSize - 1) / memblock.PageSize
	return 100 * float64(usedPages) / float64(maxPages)
}

// CurrentQuota returns the lockPercentPerApplication value as of its last
// recomputation.
func (c *Controller) CurrentQuota() float64 {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	return c.quota.Current()
}

// CompilerLockPages returns sqlCompilerLockMem: the stable view exposed to
// the SQL compiler (section 3.6), independent of instantaneous allocations.
func (c *Controller) CompilerLockPages() int {
	return c.prm.CompilerLockPages(c.set.TotalPages())
}

// TuneOnce runs one asynchronous tuning pass and returns its report.
func (c *Controller) TuneOnce() Report {
	started := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lock == nil {
		panic("stmm: TuneOnce before BindLock")
	}

	var escDelta int64
	if c.esc != nil {
		cum := c.esc()
		escDelta = cum - c.lastEsc
		c.lastEsc = cum
	}

	in := core.Inputs{
		DatabasePages:   c.set.TotalPages(),
		LockPages:       c.lock.Pages(),
		UsedStructs:     c.lock.UsedStructs(),
		CapacityStructs: c.lock.CapacityStructs(),
		NumApplications: c.lock.NumApps(),
		Escalations:     escDelta,
	}
	prevTarget := c.tuner.PrevTarget()
	dec := c.tuner.Decide(in)
	rep := Report{Decision: dec, LockPagesBefore: in.LockPages}

	// Keep the heap bounds in step with the adaptive minimum/maximum.
	_ = c.set.SetBounds(c.heap, dec.MinPages, dec.MaxPages)

	switch {
	case dec.TargetPages > in.LockPages:
		c.applyGrowth(dec.TargetPages-in.LockPages, &rep)
	case dec.TargetPages < in.LockPages:
		c.applyShrink(in.LockPages-dec.TargetPages, &rep)
	}

	// The interval rebalance re-homes any synchronous overflow
	// consumption: from here on those pages are ordinary lock heap pages
	// and the overflow deficit is repaid from the PMCs below.
	c.syncMu.Lock()
	c.lmo = 0
	c.syncMu.Unlock()
	c.repayOverflow(&rep)
	c.distributeSurplus(&rep)

	c.reconcileHeap()
	rep.LockPagesAfter = c.lock.Pages()
	c.lmoc = dec.TargetPages
	rep.LMOC = c.lmoc
	usedNow := c.lock.UsedStructs()
	quotaX := c.usedPctOfMax(usedNow)
	c.syncMu.Lock()
	rep.QuotaPercent = c.quota.OnResize(quotaX)
	c.syncMu.Unlock()
	c.updateInterval(dec)
	rep.NextInterval = c.interval

	for _, e := range c.pmcs {
		e.pmc.ResetInterval()
	}

	if ds := c.decis.Load(); ds != nil {
		kind := obs.KindTuningPass
		if dec.Doubled {
			kind = obs.KindEscalationDoubling
		}
		var freeFrac float64
		if in.CapacityStructs > 0 {
			freeFrac = float64(in.CapacityStructs-in.UsedStructs) / float64(in.CapacityStructs)
		}
		ds.log.Add(obs.Decision{
			Time:            ds.clk.Now(),
			Kind:            kind,
			DatabasePages:   in.DatabasePages,
			LockPagesBefore: in.LockPages,
			UsedStructs:     in.UsedStructs,
			CapacityStructs: in.CapacityStructs,
			FreeFrac:        freeFrac,
			NumApps:         in.NumApplications,
			Escalations:     in.Escalations,
			PrevTarget:      prevTarget,
			MinFreeFrac:     c.prm.MinFreeFrac,
			MaxFreeFrac:     c.prm.MaxFreeFrac,
			DeltaReduce:     c.prm.DeltaReduce,
			C1:              c.prm.C1,
			MinPages:        dec.MinPages,
			MaxPages:        dec.MaxPages,
			QuotaCurveX:     quotaX,
			Action:          dec.Action.String(),
			TargetPages:     dec.TargetPages,
			LockPagesAfter:  rep.LockPagesAfter,
			Doubled:         dec.Doubled,
			QuotaPercent:    rep.QuotaPercent,
			DurationNS:      time.Since(started).Nanoseconds(),
			Reason:          dec.Reason,
		})
	}
	// Retune the admission throttle on the way out: the lock-memory pass
	// above is the window edge its controller measures throughput deltas
	// against. RetuneThrottle takes only lock-manager internals (never
	// this controller's locks), so the nesting is safe under c.mu.
	if c.throttle != nil {
		c.throttle.RetuneThrottle()
	}
	return rep
}

// reconcileHeap realigns the heap accounting with the block chain. In
// real-time deployments a synchronous growth can land between this pass's
// reads of the heap size and the chain resize acquiring the lock manager's
// latch, leaving the two a few blocks apart; the chain (the actual lock
// structures) is the truth. Caller holds c.mu.
func (c *Controller) reconcileHeap() {
	chainPages := c.lock.Pages()
	switch diff := c.heap.Pages() - chainPages; {
	case diff > 0:
		c.set.Shrink(c.heap, diff)
	case diff < 0:
		if got := c.set.GrowUpTo(c.heap, -diff); got < -diff {
			// Overflow exhausted mid-race: take the remainder from
			// the donors so pages stay conserved.
			for _, e := range c.sortedPMCs(false) {
				rem := chainPages - c.heap.Pages()
				if rem <= 0 {
					break
				}
				if moved := c.set.Transfer(e.heap, c.heap, rem); moved > 0 {
					e.pmc.ApplySize(e.heap.Pages())
				}
			}
		}
	}
}

// applyGrowth funds `need` pages of lock memory growth: least-needy PMCs
// first (the paper's T2 step decreases sort memory "without consuming
// overflow memory"), then the overflow surplus above goal, then — if demand
// remains — overflow below goal. Caller holds c.mu.
func (c *Controller) applyGrowth(need int, rep *Report) {
	// Heap accounting first.
	remaining := need

	// 1. Take from PMCs, least benefit first.
	for _, e := range c.sortedPMCs(false) {
		if remaining <= 0 {
			break
		}
		moved := c.set.Transfer(e.heap, c.heap, remaining)
		if moved > 0 {
			e.pmc.ApplySize(e.heap.Pages())
			rep.FromPMCs += moved
			remaining -= moved
		}
	}
	// 2. Remainder from overflow (first-come-first-served reserve).
	if remaining > 0 {
		granted := c.set.GrowUpTo(c.heap, remaining)
		rep.FromOverflow += granted
		remaining -= granted
	}
	// Donor minimums can leave the heap mid-block; return the fragment to
	// overflow so the heap matches the chain's whole-block size.
	if rem := c.heap.Pages() % memblock.BlockPages; rem != 0 {
		back := c.set.Shrink(c.heap, rem)
		if back >= rep.FromOverflow {
			back -= rep.FromOverflow
			rep.FromOverflow = 0
			rep.FromPMCs -= back
		} else {
			rep.FromOverflow -= back
		}
	}
	// Apply whatever the heap actually received to the block chain.
	c.lock.Resize(c.heap.Pages())
}

// applyShrink releases up to `cut` pages of lock memory. Only entirely free
// blocks can be released (section 2.2); the heap gives back exactly what the
// chain freed. Caller holds c.mu.
func (c *Controller) applyShrink(cut int, rep *Report) {
	before := c.lock.Pages()
	after := c.lock.Resize(before - cut)
	freed := before - after
	if freed > 0 {
		c.set.Shrink(c.heap, freed)
		rep.ToOverflow += freed
	}
}

// repayOverflow shrinks PMCs (least benefit first) until overflow returns
// to its goal. Caller holds c.mu.
func (c *Controller) repayOverflow(rep *Report) {
	deficit := c.set.OverflowDeficit()
	if deficit <= 0 {
		return
	}
	for _, e := range c.sortedPMCs(false) {
		if deficit <= 0 {
			break
		}
		got := c.set.Shrink(e.heap, deficit)
		if got > 0 {
			e.pmc.ApplySize(e.heap.Pages())
			rep.RepaidOverflow += got
			deficit -= got
		}
	}
}

// distributeSurplus hands overflow above goal to the neediest PMCs. Caller
// holds c.mu.
func (c *Controller) distributeSurplus(rep *Report) {
	surplus := c.set.OverflowSurplus()
	if surplus <= 0 {
		return
	}
	needy := c.sortedPMCs(true)
	for _, e := range needy {
		if surplus <= 0 {
			break
		}
		if e.pmc.Benefit() <= 0 {
			continue // no demonstrated demand; leave pages in reserve
		}
		granted := c.set.GrowUpTo(e.heap, surplus)
		if granted > 0 {
			e.pmc.ApplySize(e.heap.Pages())
			rep.DistributedSurplus += granted
			surplus -= granted
		}
	}
}

// sortedPMCs returns the PMC entries ordered by benefit — ascending for
// donors, descending for recipients. Caller holds c.mu.
func (c *Controller) sortedPMCs(desc bool) []pmcEntry {
	out := make([]pmcEntry, len(c.pmcs))
	copy(out, c.pmcs)
	// Insertion sort: the PMC list is tiny (a handful of heaps).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			bi, bj := out[j].pmc.Benefit(), out[j-1].pmc.Benefit()
			if (desc && bi > bj) || (!desc && bi < bj) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

// Run executes TuneOnce every interval until ctx is done. This is the
// real-time deployment mode; the discrete simulation calls TuneOnce
// directly on interval boundaries.
func (c *Controller) Run(ctx context.Context) {
	t := time.NewTimer(c.Interval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.TuneOnce()
			t.Reset(c.Interval())
		}
	}
}
