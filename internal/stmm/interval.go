package stmm

import (
	"time"

	"repro/internal/core"
)

// Adaptive tuning interval. STMM "will determine ... the tuning interval
// (time between adjustments)", generally between 0.5 and 10 minutes: when
// the memory distribution is in flux the controller samples quickly; when
// the system is stable it backs off so tuning overhead vanishes. (The
// paper's experiments pin the interval at 30 s; the simulation driver does
// the same by calling TuneOnce on a fixed cadence and ignoring this logic,
// which serves the real-time Run loop.)

const (
	// MinInterval is the fastest tuning cadence (0.5 min).
	MinInterval = 30 * time.Second
	// MaxInterval is the slowest tuning cadence (10 min).
	MaxInterval = 10 * time.Minute
)

// updateInterval adapts the cadence from the latest decision: any resize
// halves the interval (more churn expected soon); three consecutive
// no-change passes lengthen it by 50%. Caller holds c.mu.
func (c *Controller) updateInterval(dec core.Decision) {
	if dec.Action == core.ActionNone {
		c.stablePasses++
		if c.stablePasses >= 3 {
			c.interval = time.Duration(float64(c.interval) * 1.5)
			c.stablePasses = 0
		}
	} else {
		c.stablePasses = 0
		c.interval /= 2
	}
	if c.interval < MinInterval {
		c.interval = MinInterval
	}
	if c.interval > MaxInterval {
		c.interval = MaxInterval
	}
}
