package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseCSV reads a table written by Set.CSV back into a Set. Column headers
// of the form "name (unit)" recover both fields; the first column must be
// the shared time axis. Rows with unparsable numbers are skipped.
func ParseCSV(r io.Reader) (*Set, error) {
	rows, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("metrics: parsing CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("metrics: empty CSV")
	}
	header := rows[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("metrics: CSV needs a time column and at least one series")
	}

	set := NewSet()
	series := make([]*Series, len(header)-1)
	for i, h := range header[1:] {
		name, unit := splitHeader(h)
		series[i] = set.Series(name, unit)
	}
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			continue
		}
		sec, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			continue
		}
		for i, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				continue
			}
			series[i].Record(sec, v)
		}
	}
	return set, nil
}

// splitHeader separates "lock memory (pages)" into name and unit.
func splitHeader(h string) (name, unit string) {
	h = strings.TrimSpace(h)
	if i := strings.LastIndex(h, " ("); i >= 0 && strings.HasSuffix(h, ")") {
		return h[:i], h[i+2 : len(h)-1]
	}
	return h, ""
}
