package metrics

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	set := NewSet()
	a := set.Series("lock memory", "pages")
	b := set.Series("throughput", "tx/s")
	for i := 0; i < 10; i++ {
		a.Record(float64(i), float64(i*100))
		b.Record(float64(i), float64(i)/2)
	}

	back, err := ParseCSV(strings.NewReader(set.CSV()))
	if err != nil {
		t.Fatal(err)
	}
	a2 := back.Get("lock memory")
	if a2 == nil || a2.Unit() != "pages" {
		t.Fatalf("series lost: %+v", back.Names())
	}
	if a2.Len() != 10 || a2.Max() != 900 {
		t.Fatalf("values lost: len=%d max=%g", a2.Len(), a2.Max())
	}
	b2 := back.Get("throughput")
	if b2 == nil || b2.Unit() != "tx/s" || b2.Last().Value != 4.5 {
		t.Fatalf("second series wrong: %+v", b2)
	}
}

func TestParseCSVErrors(t *testing.T) {
	if _, err := ParseCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ParseCSV(strings.NewReader("onlytime\n1\n")); err == nil {
		t.Fatal("headerless single column accepted")
	}
	// Ragged quoting is a CSV error.
	if _, err := ParseCSV(strings.NewReader("a,b\n\"x\n")); err == nil {
		t.Fatal("malformed CSV accepted")
	}
}

func TestParseCSVSkipsBadRows(t *testing.T) {
	in := "seconds,x (u)\n1,10\nnot-a-number,20\n3,oops\n4,40\n"
	set, err := ParseCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := set.Get("x")
	if s.Len() != 2 { // rows 1 and 4 only
		t.Fatalf("len = %d, want 2", s.Len())
	}
}

func TestSplitHeader(t *testing.T) {
	for in, want := range map[string][2]string{
		"lock memory (pages)": {"lock memory", "pages"},
		"plain":               {"plain", ""},
		"weird (a) (b)":       {"weird (a)", "b"},
		"  padded (x)":        {"padded", "x"},
		"no-unit-parens(oops": {"no-unit-parens(oops", ""},
	} {
		name, unit := splitHeader(in)
		if name != want[0] || unit != want[1] {
			t.Errorf("splitHeader(%q) = %q,%q want %q,%q", in, name, unit, want[0], want[1])
		}
	}
}
