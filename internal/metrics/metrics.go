// Package metrics provides the lightweight telemetry used to regenerate the
// paper's figures: named time series sampled on the simulation tick, plus
// monotonic counters and instantaneous gauges for engine statistics such as
// lock escalations and lock-structure requests.
//
// Everything here is safe for concurrent use; the simulation driver samples
// single-threaded, but the real-time engine updates counters from many
// connection goroutines.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Negative n is a programming error and is
// ignored so a counter can never decrease.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores v as the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MaxGauge records the maximum value ever observed — a high-watermark
// gauge, e.g. the longest all-shard latch hold of the lock manager's
// control plane. Observe is lock-free (CAS loop) and safe for concurrent
// use; Reset lets samplers read per-interval maxima.
type MaxGauge struct {
	v atomic.Int64
}

// Observe records v if it exceeds the current maximum.
func (g *MaxGauge) Observe(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the maximum observed since creation (or the last Reset).
func (g *MaxGauge) Value() int64 { return g.v.Load() }

// Reset clears the gauge and returns the maximum it held.
func (g *MaxGauge) Reset() int64 { return g.v.Swap(0) }

// ShardCounters is a fixed-width array of counters, one per shard of a
// striped data structure (e.g. the lock manager's latch-wait counts). Each
// shard increments its own cache line-distant counter; readers aggregate
// with Total or inspect the distribution with Values. All methods are safe
// for concurrent use.
type ShardCounters struct {
	name string
	cs   []Counter
}

// NewShardCounters creates a counter per shard. shards must be positive.
func NewShardCounters(name string, shards int) *ShardCounters {
	if shards < 1 {
		shards = 1
	}
	return &ShardCounters{name: name, cs: make([]Counter, shards)}
}

// Name returns the collection's name.
func (s *ShardCounters) Name() string { return s.name }

// Len returns the number of shards.
func (s *ShardCounters) Len() int { return len(s.cs) }

// Shard returns the counter for one shard.
func (s *ShardCounters) Shard(i int) *Counter { return &s.cs[i] }

// Total returns the sum across all shards.
func (s *ShardCounters) Total() int64 {
	var t int64
	for i := range s.cs {
		t += s.cs[i].Value()
	}
	return t
}

// Values returns a snapshot of every shard's count.
func (s *ShardCounters) Values() []int64 {
	out := make([]int64, len(s.cs))
	for i := range s.cs {
		out[i] = s.cs[i].Value()
	}
	return out
}

// Sample is one observation of a series: a value at a simulation time
// expressed in seconds since the start of the run.
type Sample struct {
	Seconds float64
	Value   float64
}

// Series is an append-only sequence of samples for one measured quantity,
// e.g. "lock memory (pages)" or "throughput (tx/s)".
type Series struct {
	mu      sync.Mutex
	name    string
	unit    string
	samples []Sample
}

// NewSeries creates an empty series. The unit is free text used by renderers
// ("pages", "tx/s", "%").
func NewSeries(name, unit string) *Series {
	return &Series{name: name, unit: unit}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Unit returns the series unit label.
func (s *Series) Unit() string { return s.unit }

// Record appends one observation. Out-of-order times are permitted but the
// renderers assume samples were appended in time order, which the simulation
// driver guarantees.
func (s *Series) Record(seconds, value float64) {
	s.mu.Lock()
	s.samples = append(s.samples, Sample{Seconds: seconds, Value: value})
	s.mu.Unlock()
}

// Samples returns a copy of all recorded samples.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Len returns the number of recorded samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Last returns the most recent sample, or a zero Sample if empty.
func (s *Series) Last() Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return Sample{}
	}
	return s.samples[len(s.samples)-1]
}

// Max returns the maximum recorded value, or 0 for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0.0
	for i, smp := range s.samples {
		if i == 0 || smp.Value > max {
			max = smp.Value
		}
	}
	return max
}

// Min returns the minimum recorded value, or 0 for an empty series.
func (s *Series) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	min := s.samples[0].Value
	for _, smp := range s.samples[1:] {
		if smp.Value < min {
			min = smp.Value
		}
	}
	return min
}

// Mean returns the arithmetic mean of all values, or 0 for an empty series.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, smp := range s.samples {
		sum += smp.Value
	}
	return sum / float64(len(s.samples))
}

// MeanAfter returns the mean of values at or after the given time, or 0 if
// no samples qualify. Useful for "steady state after the surge" summaries.
func (s *Series) MeanAfter(seconds float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, n := 0.0, 0
	for _, smp := range s.samples {
		if smp.Seconds >= seconds {
			sum += smp.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanBetween returns the mean of values with time in [from, to), or 0 if no
// samples qualify.
func (s *Series) MeanBetween(from, to float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, n := 0.0, 0
	for _, smp := range s.samples {
		if smp.Seconds >= from && smp.Seconds < to {
			sum += smp.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ValueAt returns the value of the latest sample at or before the given
// time, or 0 if none exists.
func (s *Series) ValueAt(seconds float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := 0.0
	for _, smp := range s.samples {
		if smp.Seconds > seconds {
			break
		}
		v = smp.Value
	}
	return v
}

// Set is a named collection of series captured by one experiment run.
type Set struct {
	mu     sync.Mutex
	order  []string
	series map[string]*Series
}

// NewSet returns an empty series set.
func NewSet() *Set {
	return &Set{series: make(map[string]*Series)}
}

// Series returns the series with the given name, creating it (with the given
// unit) on first use. The unit of an existing series is not changed.
func (st *Set) Series(name, unit string) *Series {
	st.mu.Lock()
	defer st.mu.Unlock()
	if s, ok := st.series[name]; ok {
		return s
	}
	s := NewSeries(name, unit)
	st.series[name] = s
	st.order = append(st.order, name)
	return s
}

// Get returns the named series or nil if it was never created.
func (st *Set) Get(name string) *Series {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.series[name]
}

// Names returns series names in creation order.
func (st *Set) Names() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, len(st.order))
	copy(out, st.order)
	return out
}

// CSV renders the set as a comma-separated table with a shared time column.
// Series are sampled at the union of all observation times; a series without
// an observation at a given time repeats its previous value (step
// interpolation), matching how the simulation captures state per tick.
func (st *Set) CSV() string {
	return st.CSVExcluding()
}

// CSVExcluding renders the set as CSV like CSV, omitting the named series.
// Determinism tests use it to drop wall-clock-derived series (e.g. latch
// hold times) from byte-identical comparisons while every simulated-time
// series stays covered.
func (st *Set) CSVExcluding(exclude ...string) string {
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}
	st.mu.Lock()
	names := make([]string, 0, len(st.order))
	for _, n := range st.order {
		if !skip[n] {
			names = append(names, n)
		}
	}
	sers := make([]*Series, len(names))
	for i, n := range names {
		sers[i] = st.series[n]
	}
	st.mu.Unlock()

	timeSet := make(map[float64]struct{})
	samplesBy := make([][]Sample, len(sers))
	for i, s := range sers {
		samplesBy[i] = s.Samples()
		for _, smp := range samplesBy[i] {
			timeSet[smp.Seconds] = struct{}{}
		}
	}
	times := make([]float64, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Float64s(times)

	var b strings.Builder
	b.WriteString("seconds")
	for i, n := range names {
		fmt.Fprintf(&b, ",%s (%s)", n, sers[i].Unit())
	}
	b.WriteByte('\n')

	idx := make([]int, len(sers))
	last := make([]float64, len(sers))
	for _, t := range times {
		fmt.Fprintf(&b, "%g", t)
		for i := range sers {
			for idx[i] < len(samplesBy[i]) && samplesBy[i][idx[i]].Seconds <= t {
				last[i] = samplesBy[i][idx[i]].Value
				idx[i]++
			}
			fmt.Fprintf(&b, ",%g", last[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart renders an ASCII line chart of the series, width x height characters
// for the plot area. It is deliberately simple — good enough to eyeball the
// shape of each reproduced figure in a terminal.
func Chart(s *Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	samples := s.Samples()
	if len(samples) == 0 {
		return fmt.Sprintf("%s: (no samples)\n", s.Name())
	}
	minT, maxT := samples[0].Seconds, samples[0].Seconds
	minV, maxV := samples[0].Value, samples[0].Value
	for _, smp := range samples {
		minT = math.Min(minT, smp.Seconds)
		maxT = math.Max(maxT, smp.Seconds)
		minV = math.Min(minV, smp.Value)
		maxV = math.Max(maxV, smp.Value)
	}
	if maxT == minT {
		maxT = minT + 1
	}
	if maxV == minV {
		maxV = minV + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, smp := range samples {
		col := int(float64(width-1) * (smp.Seconds - minT) / (maxT - minT))
		row := int(float64(height-1) * (smp.Value - minV) / (maxV - minV))
		grid[height-1-row][col] = '*'
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)  min=%.4g max=%.4g\n", s.Name(), s.Unit(), minV, maxV)
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", maxV)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.3g", minV)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	// Time-axis footer: the two endpoint labels sit under the axis, the
	// first flush left under the '+', the second flush right under the last
	// dash. The padding between them is derived from the label widths, so
	// the footer never extends past the plot area — a fixed width-22 pad
	// used to push the right label out of alignment for widths below ~22.
	leftLbl := fmt.Sprintf("%.4gs", minT)
	rightLbl := fmt.Sprintf("%.4gs", maxT)
	axis := width + 1 // '+' column plus the dashes
	if pad := axis - len(leftLbl) - len(rightLbl); pad >= 1 {
		fmt.Fprintf(&b, "%s %s%s%s\n", strings.Repeat(" ", 8),
			leftLbl, strings.Repeat(" ", pad), rightLbl)
	} else {
		// Too narrow for both endpoints: keep only the end time,
		// right-aligned (and truncated from the left as a last resort).
		if len(rightLbl) > axis {
			rightLbl = rightLbl[len(rightLbl)-axis:]
		}
		fmt.Fprintf(&b, "%s %*s\n", strings.Repeat(" ", 8), axis, rightLbl)
	}
	return b.String()
}
