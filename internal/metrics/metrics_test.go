package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3 (negative Add must be ignored)", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestSeriesRecordAndStats(t *testing.T) {
	s := NewSeries("lock memory", "pages")
	if s.Name() != "lock memory" || s.Unit() != "pages" {
		t.Fatalf("name/unit round trip failed: %q %q", s.Name(), s.Unit())
	}
	for i := 0; i < 5; i++ {
		s.Record(float64(i), float64(i*10))
	}
	if got := s.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	if got := s.Max(); got != 40 {
		t.Fatalf("Max = %g, want 40", got)
	}
	if got := s.Min(); got != 0 {
		t.Fatalf("Min = %g, want 0", got)
	}
	if got := s.Mean(); got != 20 {
		t.Fatalf("Mean = %g, want 20", got)
	}
	if got := s.Last(); got.Seconds != 4 || got.Value != 40 {
		t.Fatalf("Last = %+v, want {4 40}", got)
	}
}

func TestSeriesEmptyStats(t *testing.T) {
	s := NewSeries("x", "")
	if s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 {
		t.Fatal("empty series stats must all be 0")
	}
	if got := s.Last(); got != (Sample{}) {
		t.Fatalf("Last of empty = %+v, want zero", got)
	}
}

func TestSeriesMeanAfterAndBetween(t *testing.T) {
	s := NewSeries("x", "")
	for i := 0; i < 10; i++ {
		s.Record(float64(i), float64(i))
	}
	if got := s.MeanAfter(5); got != 7 { // mean of 5..9
		t.Fatalf("MeanAfter(5) = %g, want 7", got)
	}
	if got := s.MeanBetween(2, 5); got != 3 { // mean of 2,3,4
		t.Fatalf("MeanBetween(2,5) = %g, want 3", got)
	}
	if got := s.MeanAfter(100); got != 0 {
		t.Fatalf("MeanAfter past end = %g, want 0", got)
	}
}

func TestSeriesValueAt(t *testing.T) {
	s := NewSeries("x", "")
	s.Record(0, 1)
	s.Record(10, 2)
	s.Record(20, 3)
	if got := s.ValueAt(15); got != 2 {
		t.Fatalf("ValueAt(15) = %g, want 2 (step interpolation)", got)
	}
	if got := s.ValueAt(-1); got != 0 {
		t.Fatalf("ValueAt before first = %g, want 0", got)
	}
	if got := s.ValueAt(100); got != 3 {
		t.Fatalf("ValueAt after last = %g, want 3", got)
	}
}

func TestSetCreatesAndReuses(t *testing.T) {
	st := NewSet()
	a := st.Series("throughput", "tx/s")
	b := st.Series("throughput", "ignored")
	if a != b {
		t.Fatal("Series must return the same instance for the same name")
	}
	if b.Unit() != "tx/s" {
		t.Fatalf("unit changed on reuse: %q", b.Unit())
	}
	if st.Get("missing") != nil {
		t.Fatal("Get of unknown series must be nil")
	}
	st.Series("lock pages", "pages")
	names := st.Names()
	if len(names) != 2 || names[0] != "throughput" || names[1] != "lock pages" {
		t.Fatalf("Names = %v, want creation order", names)
	}
}

func TestSetCSV(t *testing.T) {
	st := NewSet()
	a := st.Series("a", "u1")
	b := st.Series("b", "u2")
	a.Record(0, 1)
	a.Record(2, 3)
	b.Record(1, 5)
	csv := st.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want 4 (header + 3 times):\n%s", len(lines), csv)
	}
	if lines[0] != "seconds,a (u1),b (u2)" {
		t.Fatalf("header = %q", lines[0])
	}
	// At t=1 a repeats its previous value (step interpolation).
	if lines[2] != "1,1,5" {
		t.Fatalf("t=1 row = %q, want 1,1,5", lines[2])
	}
	if lines[3] != "2,3,5" {
		t.Fatalf("t=2 row = %q, want 2,3,5", lines[3])
	}
}

func TestChartRendersShape(t *testing.T) {
	s := NewSeries("ramp", "pages")
	for i := 0; i <= 100; i++ {
		s.Record(float64(i), float64(i))
	}
	out := Chart(s, 40, 10)
	if !strings.Contains(out, "ramp (pages)") {
		t.Fatalf("chart missing title:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("chart has no points:\n%s", out)
	}
}

func TestChartEmptySeries(t *testing.T) {
	s := NewSeries("empty", "")
	out := Chart(s, 40, 10)
	if !strings.Contains(out, "no samples") {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	s := NewSeries("flat", "")
	s.Record(0, 5)
	s.Record(1, 5)
	out := Chart(s, 10, 4) // must not divide by zero
	if !strings.Contains(out, "*") {
		t.Fatalf("flat chart has no points:\n%s", out)
	}
}

// TestChartFooterAlignment pins the time-axis footer geometry: for every
// width (including the narrow ones that used to overflow with the fixed
// width-22 padding) no line may extend past the plot area, and the end-time
// label must end flush under the last dash of the axis.
func TestChartFooterAlignment(t *testing.T) {
	s := NewSeries("narrow", "pages")
	for i := 0; i <= 300; i++ {
		s.Record(float64(i), float64(i%7))
	}
	for _, width := range []int{8, 10, 12, 16, 21, 22, 30, 40, 72} {
		out := Chart(s, width, 4)
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		// Line layout: title, height plot rows, axis, footer.
		axisLine := lines[len(lines)-2]
		footer := lines[len(lines)-1]
		if len(footer) > len(axisLine) {
			t.Errorf("width=%d: footer %d chars overflows axis %d chars:\n%s",
				width, len(footer), len(axisLine), out)
		}
		if len(footer) != len(axisLine) {
			t.Errorf("width=%d: end-time label not flush with axis end (footer %d, axis %d):\n%s",
				width, len(footer), len(axisLine), out)
		}
		if !strings.HasSuffix(footer, "s") {
			t.Errorf("width=%d: footer missing time label: %q", width, footer)
		}
	}
	// Wide charts keep both endpoint labels.
	wide := Chart(s, 72, 4)
	footer := strings.Split(strings.TrimRight(wide, "\n"), "\n")
	last := footer[len(footer)-1]
	if !strings.Contains(last, "0s") || !strings.HasSuffix(last, "300s") {
		t.Errorf("wide footer lost endpoint labels: %q", last)
	}
}
