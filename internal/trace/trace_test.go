package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func ev(kind Kind, detail string) Event {
	return Event{Time: time.Unix(0, 0), Kind: kind, Detail: detail}
}

func TestKindStrings(t *testing.T) {
	for kind, want := range map[Kind]string{
		KindEscalation: "escalation", KindSyncGrowth: "sync-growth",
		KindTuningPass: "tuning-pass", KindDeadlock: "deadlock",
		KindTimeout: "timeout", KindQuotaDenial: "quota-denial",
		KindMemoryDenial: "memory-denial", KindGrant: "grant",
		KindWait: "wait", KindRelease: "release",
	} {
		if kind.String() != want {
			t.Errorf("%d = %q", kind, kind.String())
		}
	}
	if Kind(77).String() != "Kind(77)" {
		t.Fatal("unknown kind string")
	}
}

func TestRingOrderAndEviction(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 20; i++ {
		r.Add(ev(KindEscalation, string(rune('a'+i))))
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("retained = %d, want 16", len(evs))
	}
	// Oldest retained is the 5th added ('e'), newest is the 20th ('t').
	if evs[0].Detail != "e" || evs[15].Detail != "t" {
		t.Fatalf("order wrong: %q .. %q", evs[0].Detail, evs[15].Detail)
	}
	if r.Total() != 20 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingTail(t *testing.T) {
	r := NewRing(32)
	for i := 0; i < 10; i++ {
		r.Add(ev(KindTimeout, ""))
	}
	if got := len(r.Tail(3)); got != 3 {
		t.Fatalf("tail = %d", got)
	}
	if got := len(r.Tail(100)); got != 10 {
		t.Fatalf("tail clamped = %d", got)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(1)
	for i := 0; i < 20; i++ {
		r.Add(ev(KindDeadlock, ""))
	}
	if got := len(r.Events()); got != 16 {
		t.Fatalf("minimum capacity not enforced: %d", got)
	}
}

func TestCountByKind(t *testing.T) {
	r := NewRing(32)
	r.Add(ev(KindEscalation, ""))
	r.Add(ev(KindEscalation, ""))
	r.Add(ev(KindSyncGrowth, ""))
	counts := r.CountByKind()
	if counts[KindEscalation] != 2 || counts[KindSyncGrowth] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFilter(t *testing.T) {
	evs := []Event{
		ev(KindGrant, "g1"), ev(KindWait, "w1"), ev(KindGrant, "g2"),
		ev(KindRelease, "r1"), ev(KindEscalation, "e1"),
	}
	got := Filter(evs, "grant")
	if len(got) != 2 || got[0].Detail != "g1" || got[1].Detail != "g2" {
		t.Fatalf("Filter(grant) = %v", got)
	}
	// Empty kind passes everything through, order preserved.
	if all := Filter(evs, ""); len(all) != len(evs) {
		t.Fatalf("Filter(\"\") kept %d of %d", len(all), len(evs))
	}
	if none := Filter(evs, "no-such-kind"); len(none) != 0 {
		t.Fatalf("Filter(unknown) = %v", none)
	}
	// The filtered slice must not alias the input's backing array.
	got[0].Detail = "mutated"
	if evs[0].Detail != "g1" {
		t.Fatal("Filter aliased its input")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: time.Date(2007, 4, 16, 12, 30, 45, 0, time.UTC),
		Kind: KindEscalation, AppID: 7, Detail: "table 3 escalated to X"}
	s := e.String()
	if !strings.Contains(s, "12:30:45") || !strings.Contains(s, "escalation") ||
		!strings.Contains(s, "app=7") || !strings.Contains(s, "table 3") {
		t.Fatalf("render = %q", s)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(ev(KindTuningPass, ""))
				_ = r.Events()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingEvictedAndTotalByKind(t *testing.T) {
	r := NewRing(16)
	if r.Evicted() != 0 || r.Len() != 0 {
		t.Fatalf("fresh ring: evicted=%d len=%d", r.Evicted(), r.Len())
	}
	for i := 0; i < 30; i++ {
		r.Add(ev(KindEscalation, ""))
	}
	for i := 0; i < 10; i++ {
		r.Add(ev(KindDeadlock, ""))
	}
	if r.Len() != 16 {
		t.Fatalf("len = %d, want 16", r.Len())
	}
	if got := r.Evicted(); got != 24 { // 40 added − 16 retained
		t.Fatalf("evicted = %d, want 24", got)
	}
	// Retained window: 6 escalations + 10 deadlocks.
	counts := r.CountByKind()
	if counts[KindEscalation] != 6 || counts[KindDeadlock] != 10 {
		t.Fatalf("retained counts = %v", counts)
	}
	// Lifetime tallies must survive eviction.
	totals := r.TotalByKind()
	if totals[KindEscalation] != 30 || totals[KindDeadlock] != 10 {
		t.Fatalf("lifetime totals = %v", totals)
	}
}

// TestRingWraparoundConcurrent drives concurrent adders across many
// wraparounds and checks, under -race, that every snapshot is internally
// ordered (non-decreasing per-goroutine sequence numbers, oldest first)
// and that lifetime accounting stays exact.
func TestRingWraparoundConcurrent(t *testing.T) {
	r := NewRing(32) // tiny: 8 goroutines × 1000 adds ⇒ ~250 wraps
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Add(Event{Kind: Kind(g + 1), AppID: g, Detail: "", Time: time.Unix(int64(i), 0)})
				if i%32 == 0 {
					// Snapshot mid-wrap: per-goroutine times must be
					// non-decreasing oldest→newest.
					last := make(map[int]int64)
					for _, e := range r.Events() {
						if sec := e.Time.Unix(); sec < last[e.AppID] {
							t.Errorf("goroutine %d events out of order: %d after %d", e.AppID, sec, last[e.AppID])
							return
						} else {
							last[e.AppID] = sec
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != workers*perWorker {
		t.Fatalf("total = %d, want %d", r.Total(), workers*perWorker)
	}
	if r.Evicted() != workers*perWorker-32 {
		t.Fatalf("evicted = %d", r.Evicted())
	}
	var sum int64
	for _, v := range r.TotalByKind() {
		sum += v
	}
	if sum != workers*perWorker {
		t.Fatalf("per-kind totals sum %d, want %d", sum, workers*perWorker)
	}
}
