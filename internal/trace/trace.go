// Package trace provides the engine's event log: a fixed-capacity ring
// buffer of structured events (escalations, synchronous growth, tuning
// passes, deadlocks, timeouts) for diagnostics — the kind of evidence a DBA
// pulls after an incident, and what the workbench tool prints.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies events.
type Kind uint8

// Event kinds.
const (
	KindEscalation Kind = iota + 1
	KindSyncGrowth
	KindTuningPass
	KindDeadlock
	KindTimeout
	KindQuotaDenial
	KindMemoryDenial
	// Flight-recorder kinds (the lock manager's per-shard rings): a wait
	// beginning, a grant (after a wait, or sampled), and a sampled release.
	KindGrant
	KindWait
	KindRelease
)

func (k Kind) String() string {
	switch k {
	case KindEscalation:
		return "escalation"
	case KindSyncGrowth:
		return "sync-growth"
	case KindTuningPass:
		return "tuning-pass"
	case KindDeadlock:
		return "deadlock"
	case KindTimeout:
		return "timeout"
	case KindQuotaDenial:
		return "quota-denial"
	case KindMemoryDenial:
		return "memory-denial"
	case KindGrant:
		return "grant"
	case KindWait:
		return "wait"
	case KindRelease:
		return "release"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MarshalJSON renders the kind by name ("escalation", "tuning-pass") so
// /debug/events serves self-describing records; kinds are never
// unmarshalled back.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", k.String())), nil
}

// Event is one logged occurrence.
type Event struct {
	Time time.Time
	Kind Kind
	// AppID identifies the application involved (0 when not applicable).
	AppID int
	// Detail is a short human-readable summary.
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%s %-12s app=%-3d %s",
		e.Time.Format("15:04:05"), e.Kind, e.AppID, e.Detail)
}

// Ring is a fixed-capacity event ring buffer, safe for concurrent use. It
// keeps lifetime per-kind totals alongside the retained window, so an
// incident review can tell "12 escalations ever, 3 still visible" apart
// from "3 escalations ever".
type Ring struct {
	mu          sync.Mutex
	buf         []Event
	next        int
	count       int
	total       int64
	totalByKind map[Kind]int64
}

// NewRing creates a ring holding up to n events (minimum 16).
func NewRing(n int) *Ring {
	if n < 16 {
		n = 16
	}
	return &Ring{buf: make([]Event, n), totalByKind: make(map[Kind]int64)}
}

// Add appends an event, evicting the oldest when full.
func (r *Ring) Add(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.totalByKind[e.Kind]++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Tail returns up to n most recent events, oldest first.
func (r *Ring) Tail(n int) []Event {
	evs := r.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Total returns the number of events ever added (including evicted ones).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Evicted returns how many events have aged out of the ring
// (Total − retained).
func (r *Ring) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - int64(r.count)
}

// CountByKind tallies the *retained* events per kind — the window a DBA is
// looking at. For lifetime tallies unaffected by eviction use TotalByKind.
func (r *Ring) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// Filter returns the events whose kind renders as the given name
// ("escalation", "grant", ...), preserving order. An empty kind keeps
// everything — the /debug/events ?kind= contract.
func Filter(evs []Event, kind string) []Event {
	if kind == "" {
		return evs
	}
	out := evs[:0:0]
	for _, e := range evs {
		if e.Kind.String() == kind {
			out = append(out, e)
		}
	}
	return out
}

// TotalByKind returns lifetime per-kind totals (a copy). Unlike
// CountByKind, these survive eviction: a kind's count never decreases.
func (r *Ring) TotalByKind() map[Kind]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Kind]int64, len(r.totalByKind))
	for k, v := range r.totalByKind {
		out[k] = v
	}
	return out
}
