// Package storage provides the lockable object space: a catalog of tables
// with row counts and a row→page mapping for buffer pool accesses. The
// default catalog mirrors the paper's test database — a combined TPCC and
// TPCH schema in a single database — with row counts scaled so that the
// simulated lock-memory ratios match the published figures.
package storage

import (
	"fmt"
	"sort"
)

// TableID identifies a table; it doubles as the lock name's table field.
type TableID uint32

// Table describes one table.
type Table struct {
	ID          TableID
	Name        string
	Rows        uint64
	RowsPerPage uint64
}

// PageOf returns the global page number holding the given row. Page numbers
// are unique across tables so they can index a shared buffer pool.
func (t *Table) PageOf(row uint64) uint64 {
	if t.RowsPerPage == 0 {
		return uint64(t.ID) << 40
	}
	return uint64(t.ID)<<40 | row/t.RowsPerPage
}

// Pages returns the number of data pages the table occupies.
func (t *Table) Pages() uint64 {
	if t.RowsPerPage == 0 {
		return 1
	}
	return (t.Rows + t.RowsPerPage - 1) / t.RowsPerPage
}

// Catalog is a set of tables.
type Catalog struct {
	tables []*Table
	byName map[string]*Table
	byID   map[TableID]*Table
	nextID TableID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		byName: make(map[string]*Table),
		byID:   make(map[TableID]*Table),
	}
}

// Add creates a table. Names must be unique.
func (c *Catalog) Add(name string, rows, rowsPerPage uint64) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("storage: empty table name")
	}
	if _, ok := c.byName[name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	if rowsPerPage == 0 {
		rowsPerPage = 1
	}
	c.nextID++
	t := &Table{ID: c.nextID, Name: name, Rows: rows, RowsPerPage: rowsPerPage}
	c.tables = append(c.tables, t)
	c.byName[name] = t
	c.byID[t.ID] = t
	return t, nil
}

// ByName returns the named table, or nil.
func (c *Catalog) ByName(name string) *Table { return c.byName[name] }

// ByID returns the table with the given id, or nil.
func (c *Catalog) ByID(id TableID) *Table { return c.byID[id] }

// Tables returns all tables sorted by id.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, len(c.tables))
	copy(out, c.tables)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of tables.
func (c *Catalog) Len() int { return len(c.tables) }

// TotalRows returns the row count across all tables.
func (c *Catalog) TotalRows() uint64 {
	var n uint64
	for _, t := range c.tables {
		n += t.Rows
	}
	return n
}

// CombinedTPCCTPCH builds the paper's combined schema, scaled to keep the
// simulation laptop-sized: an OLTP half (TPCC-like) whose transactions touch
// a handful of rows each, and a decision-support half (TPCH-like) whose
// reporting query scans and locks millions of fact rows.
func CombinedTPCCTPCH() *Catalog {
	c := NewCatalog()
	mustAdd := func(name string, rows, rowsPerPage uint64) {
		if _, err := c.Add(name, rows, rowsPerPage); err != nil {
			panic(err)
		}
	}
	// TPCC-like OLTP tables (≈ 50 warehouses scale).
	mustAdd("warehouse", 50, 8)
	mustAdd("district", 500, 8)
	mustAdd("customer", 1_500_000, 16)
	mustAdd("stock", 5_000_000, 16)
	mustAdd("item", 100_000, 32)
	mustAdd("orders", 1_500_000, 32)
	mustAdd("order_line", 15_000_000, 64)
	mustAdd("new_order", 450_000, 64)
	mustAdd("history", 1_500_000, 32)
	// TPCH-like DSS tables; lineitem is the reporting query's target.
	mustAdd("lineitem", 30_000_000, 64)
	mustAdd("tpch_orders", 7_500_000, 32)
	mustAdd("part", 1_000_000, 32)
	mustAdd("supplier", 50_000, 32)
	return c
}
