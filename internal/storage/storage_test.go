package storage

import "testing"

func TestAddAndLookup(t *testing.T) {
	c := NewCatalog()
	tab, err := c.Add("widgets", 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.ByName("widgets") != tab || c.ByID(tab.ID) != tab {
		t.Fatal("lookup failed")
	}
	if c.ByName("missing") != nil || c.ByID(999) != nil {
		t.Fatal("missing lookups must be nil")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestAddValidation(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Add("", 1, 1); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := c.Add("a", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add("a", 1, 1); err == nil {
		t.Fatal("duplicate name must fail")
	}
}

func TestZeroRowsPerPageDefaults(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.Add("t", 10, 0)
	if tab.RowsPerPage != 1 {
		t.Fatalf("rows/page = %d, want 1", tab.RowsPerPage)
	}
}

func TestPageOfDistinctAcrossTables(t *testing.T) {
	c := NewCatalog()
	a, _ := c.Add("a", 100, 10)
	b, _ := c.Add("b", 100, 10)
	if a.PageOf(5) == b.PageOf(5) {
		t.Fatal("page numbers must be unique across tables")
	}
	if a.PageOf(0) != a.PageOf(9) {
		t.Fatal("rows 0..9 share a page at 10 rows/page")
	}
	if a.PageOf(9) == a.PageOf(10) {
		t.Fatal("row 10 starts a new page")
	}
}

func TestPages(t *testing.T) {
	c := NewCatalog()
	tab, _ := c.Add("t", 95, 10)
	if got := tab.Pages(); got != 10 {
		t.Fatalf("pages = %d, want 10", got)
	}
}

func TestTablesSortedByID(t *testing.T) {
	c := NewCatalog()
	c.Add("z", 1, 1)
	c.Add("a", 1, 1)
	ts := c.Tables()
	if len(ts) != 2 || ts[0].Name != "z" || ts[1].Name != "a" {
		t.Fatalf("order wrong: %v", ts)
	}
	if ts[0].ID >= ts[1].ID {
		t.Fatal("ids not ascending")
	}
}

func TestCombinedCatalog(t *testing.T) {
	c := CombinedTPCCTPCH()
	for _, name := range []string{"warehouse", "customer", "stock", "order_line", "lineitem"} {
		if c.ByName(name) == nil {
			t.Fatalf("missing table %q", name)
		}
	}
	if c.ByName("lineitem").Rows < 10_000_000 {
		t.Fatal("lineitem must be large enough to drive the DSS experiment")
	}
	if c.TotalRows() == 0 {
		t.Fatal("total rows zero")
	}
}
