package memory

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func newTestSet(t *testing.T) (*Set, *Heap, *Heap) {
	t.Helper()
	s := NewSet(10000, 1000)
	bp, err := s.Register("bufferpool", 6000, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	lk, err := s.Register("locklist", 100, 50, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return s, bp, lk
}

func TestNewSetValidation(t *testing.T) {
	for _, tc := range []struct{ total, goal int }{{0, 0}, {-5, 0}, {100, 101}, {100, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSet(%d,%d) must panic", tc.total, tc.goal)
				}
			}()
			NewSet(tc.total, tc.goal)
		}()
	}
}

func TestRegisterAndOverflow(t *testing.T) {
	s, bp, lk := newTestSet(t)
	if got := s.Overflow(); got != 10000-6000-100 {
		t.Fatalf("overflow = %d, want 3900", got)
	}
	if bp.Pages() != 6000 || lk.Pages() != 100 {
		t.Fatalf("heap sizes wrong: %d, %d", bp.Pages(), lk.Pages())
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterErrors(t *testing.T) {
	s := NewSet(1000, 100)
	if _, err := s.Register("a", 500, 0, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name              string
		initial, min, max int
		wantErrContains   string
	}{
		{"a", 10, 0, 0, "already registered"},
		{"b", -1, 0, 0, "invalid bounds"},
		{"b", 10, 20, 0, "outside"},
		{"b", 30, 0, 20, "outside"},
		{"b", 10, 5, 3, "invalid bounds"},
		{"b", 600, 0, 0, "exceeds free memory"},
	}
	for _, tc := range cases {
		_, err := s.Register(tc.name, tc.initial, tc.min, tc.max)
		if err == nil || !strings.Contains(err.Error(), tc.wantErrContains) {
			t.Errorf("Register(%q,%d,%d,%d) err = %v, want contains %q",
				tc.name, tc.initial, tc.min, tc.max, err, tc.wantErrContains)
		}
	}
}

func TestHeapLookup(t *testing.T) {
	s, bp, _ := newTestSet(t)
	if s.Heap("bufferpool") != bp {
		t.Fatal("Heap lookup failed")
	}
	if s.Heap("nope") != nil {
		t.Fatal("unknown heap must be nil")
	}
	hs := s.Heaps()
	if len(hs) != 2 || hs[0].Name() != "bufferpool" || hs[1].Name() != "locklist" {
		t.Fatalf("Heaps() order wrong: %v", hs)
	}
}

func TestGrowExactFromOverflow(t *testing.T) {
	s, _, lk := newTestSet(t)
	if err := s.Grow(lk, 500); err != nil {
		t.Fatal(err)
	}
	if got := lk.Pages(); got != 600 {
		t.Fatalf("locklist = %d, want 600", got)
	}
	// Exceeds overflow: all-or-nothing failure.
	if err := s.Grow(lk, 100000); err == nil {
		t.Fatal("grow beyond overflow must fail")
	}
	if got := lk.Pages(); got != 600 {
		t.Fatalf("failed grow changed heap: %d", got)
	}
	// Exceeds heap max (2000).
	if err := s.Grow(lk, 1500); err == nil {
		t.Fatal("grow beyond heap max must fail")
	}
	if err := s.Grow(lk, -1); err == nil {
		t.Fatal("negative grow must fail")
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowUpToClamps(t *testing.T) {
	s, _, lk := newTestSet(t)
	// Overflow is 3900; heap max 2000 allows +1900 only.
	if got := s.GrowUpTo(lk, 5000); got != 1900 {
		t.Fatalf("granted = %d, want 1900 (heap max clamp)", got)
	}
	if got := lk.Pages(); got != 2000 {
		t.Fatalf("locklist = %d, want 2000", got)
	}
	if got := s.GrowUpTo(lk, 10); got != 0 {
		t.Fatalf("grow at max granted %d, want 0", got)
	}
	// Overflow clamp: bufferpool is uncapped.
	bp := s.Heap("bufferpool")
	if got := s.GrowUpTo(bp, 99999); got != s.TotalPages()-2000-6000 {
		t.Fatalf("granted = %d, want remaining overflow", got)
	}
	if got := s.Overflow(); got != 0 {
		t.Fatalf("overflow = %d, want 0", got)
	}
	if got := s.GrowUpTo(bp, 0); got != 0 {
		t.Fatalf("GrowUpTo(0) = %d", got)
	}
}

func TestShrinkClampsAtMin(t *testing.T) {
	s, _, lk := newTestSet(t)
	if got := s.Shrink(lk, 30); got != 30 {
		t.Fatalf("shrink = %d, want 30", got)
	}
	// locklist now 70, min 50: only 20 more available.
	if got := s.Shrink(lk, 100); got != 20 {
		t.Fatalf("shrink = %d, want 20 (min clamp)", got)
	}
	if got := lk.Pages(); got != 50 {
		t.Fatalf("locklist = %d, want min 50", got)
	}
	if got := s.Shrink(lk, 10); got != 0 {
		t.Fatalf("shrink below min = %d, want 0", got)
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestTransfer(t *testing.T) {
	s, bp, lk := newTestSet(t)
	if got := s.Transfer(bp, lk, 500); got != 500 {
		t.Fatalf("transfer = %d, want 500", got)
	}
	if bp.Pages() != 5500 || lk.Pages() != 600 {
		t.Fatalf("sizes after transfer: bp=%d lk=%d", bp.Pages(), lk.Pages())
	}
	// Recipient max clamp: lk max is 2000, so only 1400 more fits.
	if got := s.Transfer(bp, lk, 3000); got != 1400 {
		t.Fatalf("transfer = %d, want 1400", got)
	}
	// Donor min clamp.
	big, err := s.Register("sort", 100, 90, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Transfer(big, bp, 50); got != 10 {
		t.Fatalf("transfer = %d, want 10 (donor min clamp)", got)
	}
	if got := s.Transfer(bp, bp, 10); got != 0 {
		t.Fatalf("self transfer = %d, want 0", got)
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestOverflowDeficitAndSurplus(t *testing.T) {
	s, bp, _ := newTestSet(t) // overflow 3900, goal 1000
	if got := s.OverflowSurplus(); got != 2900 {
		t.Fatalf("surplus = %d, want 2900", got)
	}
	if got := s.OverflowDeficit(); got != 0 {
		t.Fatalf("deficit = %d, want 0", got)
	}
	s.GrowUpTo(bp, 3500) // overflow drops to 400
	if got := s.OverflowDeficit(); got != 600 {
		t.Fatalf("deficit = %d, want 600", got)
	}
	if got := s.OverflowSurplus(); got != 0 {
		t.Fatalf("surplus = %d, want 0", got)
	}
}

func TestSetBounds(t *testing.T) {
	s, _, lk := newTestSet(t)
	if err := s.SetBounds(lk, 500, 3000); err != nil {
		t.Fatal(err)
	}
	if lk.Min() != 500 || lk.Max() != 3000 {
		t.Fatalf("bounds = [%d,%d], want [500,3000]", lk.Min(), lk.Max())
	}
	if err := s.SetBounds(lk, -1, 0); err == nil {
		t.Fatal("negative min must fail")
	}
	if err := s.SetBounds(lk, 10, 5); err == nil {
		t.Fatal("max < min must fail")
	}
}

func TestSnapshot(t *testing.T) {
	s, _, _ := newTestSet(t)
	snap := s.Snapshot()
	if snap.TotalPages != 10000 || snap.Overflow != 3900 || snap.OverflowGoal != 1000 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.HeapPages["bufferpool"] != 6000 || snap.HeapPages["locklist"] != 100 {
		t.Fatalf("snapshot heaps = %v", snap.HeapPages)
	}
}

// Property: any sequence of grows, shrinks and transfers conserves pages.
func TestQuickConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSet(5000, 500)
		a, _ := s.Register("a", 1000, 100, 0)
		b, _ := s.Register("b", 1000, 0, 3000)
		heaps := []*Heap{a, b}
		for _, op := range ops {
			h := heaps[int(op)%2]
			pages := int(op / 4 % 997)
			switch (op / 2) % 3 {
			case 0:
				s.GrowUpTo(h, pages)
			case 1:
				s.Shrink(h, pages)
			case 2:
				s.Transfer(h, heaps[(int(op)+1)%2], pages)
			}
			if s.CheckConservation() != nil {
				return false
			}
			if a.Pages() < a.Min() || (b.Max() != 0 && b.Pages() > b.Max()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentResizes(t *testing.T) {
	s := NewSet(100000, 10000)
	a, _ := s.Register("a", 20000, 1000, 0)
	b, _ := s.Register("b", 20000, 1000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				switch rng.Intn(3) {
				case 0:
					s.GrowUpTo(a, rng.Intn(100))
				case 1:
					s.Shrink(b, rng.Intn(100))
				case 2:
					s.Transfer(a, b, rng.Intn(100))
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
