// Package memory models the DB2 database shared memory set introduced in
// v8.2 and used by STMM in DB2 9 (paper section 2.1).
//
// A Set owns a fixed budget of 4 KB pages (databaseMemory). Named heaps —
// bufferpool, sort, hash join, package cache, lock memory — are carved out
// of the set; whatever is not allocated to a heap is the *overflow memory*:
// a reserve that heaps may consume on demand, synchronously, on a first
// come-first-served basis. The STMM controller later rebalances heaps so the
// overflow area returns to its goal size.
//
// The Set enforces conservation (Σ heap pages + overflow == total) and
// per-heap bounds; *policy* — who grows, who shrinks, by how much — lives in
// the stmm and core packages.
package memory

import (
	"fmt"
	"sync"
)

// Heap is one named memory consumer inside the set. All mutation goes
// through the owning Set so conservation can be enforced; a Heap handle is
// read-only for its holder.
type Heap struct {
	set  *Set
	name string
	// guarded by set.mu:
	pages int
	min   int
	max   int // 0 means "no cap beyond the set total"
}

// Name returns the heap's name.
func (h *Heap) Name() string { return h.name }

// Pages returns the heap's current size in pages.
func (h *Heap) Pages() int {
	h.set.mu.Lock()
	defer h.set.mu.Unlock()
	return h.pages
}

// Min returns the heap's configured minimum size.
func (h *Heap) Min() int {
	h.set.mu.Lock()
	defer h.set.mu.Unlock()
	return h.min
}

// Max returns the heap's configured maximum size (0 = uncapped).
func (h *Heap) Max() int {
	h.set.mu.Lock()
	defer h.set.mu.Unlock()
	return h.max
}

// Set is the database shared memory set.
type Set struct {
	mu           sync.Mutex
	totalPages   int
	overflowGoal int
	heaps        map[string]*Heap
	order        []string
}

// NewSet creates a memory set of totalPages with the given overflow goal
// (the amount of memory STMM tries to keep unallocated as the database's
// last reserve). It panics on non-positive totals — a configuration bug.
func NewSet(totalPages, overflowGoal int) *Set {
	if totalPages <= 0 {
		panic(fmt.Sprintf("memory: invalid set size %d pages", totalPages))
	}
	if overflowGoal < 0 || overflowGoal > totalPages {
		panic(fmt.Sprintf("memory: invalid overflow goal %d of %d pages", overflowGoal, totalPages))
	}
	return &Set{
		totalPages:   totalPages,
		overflowGoal: overflowGoal,
		heaps:        make(map[string]*Heap),
	}
}

// TotalPages returns databaseMemory in pages.
func (s *Set) TotalPages() int { return s.totalPages }

// OverflowGoal returns the configured overflow goal in pages.
func (s *Set) OverflowGoal() int { return s.overflowGoal }

// Register carves a new heap out of the overflow area. min and max bound
// later resizes (max 0 = uncapped). It fails if the name is taken, if the
// initial size violates the bounds, or if the overflow cannot cover it.
func (s *Set) Register(name string, initial, min, max int) (*Heap, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.heaps[name]; ok {
		return nil, fmt.Errorf("memory: heap %q already registered", name)
	}
	if initial < 0 || min < 0 || (max != 0 && max < min) {
		return nil, fmt.Errorf("memory: heap %q invalid bounds initial=%d min=%d max=%d", name, initial, min, max)
	}
	if initial < min || (max != 0 && initial > max) {
		return nil, fmt.Errorf("memory: heap %q initial size %d outside [%d,%d]", name, initial, min, max)
	}
	if initial > s.overflowLocked() {
		return nil, fmt.Errorf("memory: heap %q initial size %d exceeds free memory %d", name, initial, s.overflowLocked())
	}
	h := &Heap{set: s, name: name, pages: initial, min: min, max: max}
	s.heaps[name] = h
	s.order = append(s.order, name)
	return h, nil
}

// Heap returns the named heap, or nil.
func (s *Set) Heap(name string) *Heap {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heaps[name]
}

// Heaps returns all heaps in registration order.
func (s *Set) Heaps() []*Heap {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Heap, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.heaps[n])
	}
	return out
}

func (s *Set) overflowLocked() int {
	used := 0
	for _, h := range s.heaps {
		used += h.pages
	}
	return s.totalPages - used
}

// Overflow returns the current overflow (unallocated) pages.
func (s *Set) Overflow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.overflowLocked()
}

// OverflowDeficit returns how many pages the overflow area is below its
// goal, or 0 when at/above goal. STMM shrinks heaps to repay this.
func (s *Set) OverflowDeficit() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.overflowGoal - s.overflowLocked()
	if d < 0 {
		return 0
	}
	return d
}

// OverflowSurplus returns how many pages the overflow area holds above its
// goal, or 0 when at/below goal. STMM distributes this to needy heaps.
func (s *Set) OverflowSurplus() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sur := s.overflowLocked() - s.overflowGoal
	if sur < 0 {
		return 0
	}
	return sur
}

// Grow moves exactly `pages` from overflow into the heap, or fails without
// any change. This is the synchronous on-demand path ("first come-first
// served"). Heap max is respected.
func (s *Set) Grow(h *Heap, pages int) error {
	if pages < 0 {
		return fmt.Errorf("memory: negative grow %d for heap %q", pages, h.name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pages > s.overflowLocked() {
		return fmt.Errorf("memory: heap %q grow %d exceeds overflow %d", h.name, pages, s.overflowLocked())
	}
	if h.max != 0 && h.pages+pages > h.max {
		return fmt.Errorf("memory: heap %q grow %d exceeds max %d", h.name, pages, h.max)
	}
	h.pages += pages
	return nil
}

// GrowUpTo moves up to `pages` from overflow into the heap, clamped by both
// the available overflow and the heap max, and returns the pages granted.
func (s *Set) GrowUpTo(h *Heap, pages int) int {
	if pages <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	grant := pages
	if free := s.overflowLocked(); grant > free {
		grant = free
	}
	if h.max != 0 && h.pages+grant > h.max {
		grant = h.max - h.pages
	}
	if grant < 0 {
		grant = 0
	}
	h.pages += grant
	return grant
}

// Shrink returns up to `pages` from the heap to overflow, clamped by the
// heap minimum, and returns the pages released.
func (s *Set) Shrink(h *Heap, pages int) int {
	if pages <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	give := pages
	if h.pages-give < h.min {
		give = h.pages - h.min
	}
	if give < 0 {
		give = 0
	}
	h.pages -= give
	return give
}

// Transfer moves up to `pages` directly from one heap to another, clamped by
// the donor's minimum and the recipient's maximum. Returns pages moved.
func (s *Set) Transfer(from, to *Heap, pages int) int {
	if pages <= 0 || from == to {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	move := pages
	if from.pages-move < from.min {
		move = from.pages - from.min
	}
	if to.max != 0 && to.pages+move > to.max {
		move = to.max - to.pages
	}
	if move < 0 {
		move = 0
	}
	from.pages -= move
	to.pages += move
	return move
}

// SetBounds adjusts a heap's min/max at runtime. The adaptive tuner moves
// the lock-memory minimum as applications connect and disconnect
// (minLockMemory depends on num_applications). The current size is not
// changed even if it now violates the bounds; the next tuning interval
// corrects it.
func (s *Set) SetBounds(h *Heap, min, max int) error {
	if min < 0 || (max != 0 && max < min) {
		return fmt.Errorf("memory: heap %q invalid bounds min=%d max=%d", h.name, min, max)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h.min, h.max = min, max
	return nil
}

// Snapshot is a point-in-time view of the whole memory set.
type Snapshot struct {
	TotalPages   int
	Overflow     int
	OverflowGoal int
	HeapPages    map[string]int
}

// Snapshot returns a consistent copy of the current distribution.
func (s *Set) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	hp := make(map[string]int, len(s.heaps))
	for n, h := range s.heaps {
		hp[n] = h.pages
	}
	return Snapshot{
		TotalPages:   s.totalPages,
		Overflow:     s.overflowLocked(),
		OverflowGoal: s.overflowGoal,
		HeapPages:    hp,
	}
}

// CheckConservation verifies that pages are conserved; it is cheap and used
// by tests and the simulation's self-checks.
func (s *Set) CheckConservation() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	of := s.overflowLocked()
	if of < 0 {
		return fmt.Errorf("memory: overflow negative (%d pages)", of)
	}
	sum := of
	for _, h := range s.heaps {
		if h.pages < 0 {
			return fmt.Errorf("memory: heap %q negative (%d pages)", h.name, h.pages)
		}
		sum += h.pages
	}
	if sum != s.totalPages {
		return fmt.Errorf("memory: conservation violated: sum %d != total %d", sum, s.totalPages)
	}
	return nil
}
