package lockmgr

// Latch-free admission fast path for shared and intent lock modes.
//
// The last three perf passes sharded the table, de-globalized the control
// plane, and made commit O(locks-held) — but every grant still serialized
// on an exclusive shard latch, so the hottest headers in a TPC-C-shaped
// workload (S reads on a shared hot set, the IS/IX table intents every
// transaction takes) collapse onto a handful of latches no matter how many
// shards exist. This file admits compatible requests without the latch.
//
// # The grant word
//
// Each published lockHeader carries a packed 64-bit grant word:
//
//	bit 63      lk     — header spinlock: a fast op owns the header's
//	                     granted-group fields (g0/gmap/groupMode)
//	bit 62      fence  — fast path off: a latched section owns the header,
//	                     or the header state is not fast-representable
//	bits 51–61  seq    — settle counter (anti-ABA belt and braces; bumped
//	                     by every latched settle)
//	bits 48–50  gm     — group mode (Mode fits in 3 bits)
//	bits 32–47  nS     — granted S holders
//	bits 16–31  nIS    — granted IS holders
//	bits 0–15   nIX    — granted IX holders
//
// An unfenced word is a pure function of the header's granted group: it
// exists only when the header has no converters, no waiters, no in-flight
// conversions, and every holder's mode is IS, S or IX (the fast-eligible
// modes) with counts below saturation. Everything else — X/U/SIX holders,
// queued waiters, escalating conversions — fences the word, and fenced
// requests take today's latched path unchanged, preserving FIFO fairness,
// quota accounting, escalation, and deadlock-detection semantics.
//
// # Seal / settle protocol
//
// Latched code obeys one rule: before reading or mutating a published
// header's granted group or queues, it seals the word (sets fence, waiting
// out a fast op's brief lk hold); before releasing the latch it settles
// (recomputes the word from the latched chain state, bumping seq). Between
// seal and settle the latched section owns the header exactly as it did
// before this fast path existed. The seal CAS / settle store on the single
// atomic word also carries the happens-before edges that make the fast
// ops' plain writes to g0/gmap/groupMode visible to latched readers (and
// vice versa), so the -race gate stays green without any extra locking.
//
// Lock ordering: a fast op acquires Owner.mu first and only then spins for
// lk, and an lk holder never blocks on anything else — so a latched seal
// spinning on lk always terminates, even when that seal runs under some
// other owner's mu (startRequest's fast branch).
//
// # Structure accounting: fast credit
//
// Fast grants cannot touch the shard's lease pool (it is latch-guarded),
// so each shard fronts it with a credit counter (fastFree) backed by a
// standing lease (fastLease) the latched path refills via Pool.Lease.
// A fast grant CAS-decrements the credit and calls Chain.ConsumeReserved —
// the structures were already reserved at lease time, so chain Used/
// Requests accounting stays exact and latch-free. Latched frees of
// fast-granted requests (ReleaseAll, escalation) return the weight to the
// credit; the global admission pipeline and Resize drain credit back to
// the pool before declaring memory exhausted or shrinking, so fast credit
// never masquerades as memory pressure.
//
// # Publication
//
// Headers are published into a per-shard, latch-free slot array
// (fastSlots) by the latched settle, once they prove hot (a table lock, or
// ≥ 2 holders) and fast-eligible. Published headers are never evicted or
// recycled — an empty published header stays resident with an admitting
// all-zero word, which is exactly what keeps a hot key's grants latch-free
// across transactions (deferred reclamation, per the release design). The
// slot population is bounded (fastSlotsPerShard), so residency is too.
//
// # The gate
//
// runGlobal's "all latches ⇒ the world stands still" contract is restored
// by a Dekker-style gate: fast ops bump a per-shard in-flight counter
// before reading Manager.fastGate; runGlobal raises the gate, takes every
// latch, then waits for the counters to drain. Fast ops that lose the race
// back out having mutated nothing.

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Grant-word field layout.
const (
	wordLk    = uint64(1) << 63
	wordFence = uint64(1) << 62

	wordSeqShift = 51
	wordSeqMask  = uint64(1)<<11 - 1

	wordGMShift = 48
	wordGMMask  = uint64(7)

	wordCntMask  = uint64(1)<<16 - 1
	wordNSShift  = 32
	wordNISShift = 16
	wordNIXShift = 0
)

// fastSlotsPerShard is the size of each shard's latch-free header slot
// array. Slot index is the top 6 bits of the name hash (independent of the
// shard-selection bits at the bottom).
const fastSlotsPerShard = 64

// fastSlotIndex maps a name hash to its shard-local slot.
func fastSlotIndex(hash uint64) int { return int(hash >> 58) }

// Fast-credit watermarks: refill the shard's credit toward
// fastCreditChunk structures whenever a latched acquire finds it below
// fastCreditLow (and the shard actually has published headers).
const (
	fastCreditLow   = 32
	fastCreditChunk = 128
)

// fastEligible reports whether a mode can be represented in the grant
// word's holder counts. Exactly the modes whose pairwise compatibility is
// decidable from counts alone: IS is compatible with everything but X,
// S excludes IX, IX excludes S.
func fastEligible(mode Mode) bool {
	return mode == ModeIS || mode == ModeIX || mode == ModeS
}

// wordCounts unpacks the holder counts.
func wordCounts(w uint64) (nS, nIS, nIX uint64) {
	return (w >> wordNSShift) & wordCntMask,
		(w >> wordNISShift) & wordCntMask,
		(w >> wordNIXShift) & wordCntMask
}

// wordGroupMode derives the group mode implied by the counts — the
// supremum fold of the holders, computable directly because nS and nIX can
// never both be non-zero (S and IX are incompatible):
// sup over {IS…}={IS}, {S,IS…}={S}, {IX,IS…}={IX}.
func wordGroupMode(nS, nIS, nIX uint64) Mode {
	switch {
	case nIX > 0:
		return ModeIX
	case nS > 0:
		return ModeS
	case nIS > 0:
		return ModeIS
	default:
		return ModeNone
	}
}

// wordAdmit is the fast-path compatibility predicate: given an unfenced
// grant word, may a new request of mode join the granted group? It must
// agree with Compatible(mode, groupMode) on every reachable word — the
// property test ties it to the compat/sup tables exhaustively.
func wordAdmit(w uint64, mode Mode) bool {
	nS, nIS, nIX := wordCounts(w)
	switch mode {
	case ModeIS:
		return nIS < wordCntMask // saturation forces the latched path
	case ModeS:
		return nIX == 0 && nS < wordCntMask
	case ModeIX:
		return nS == 0 && nIX < wordCntMask
	default:
		return false
	}
}

// wordAdd returns w with one holder of mode added and the group-mode bits
// recomputed. Caller has checked wordAdmit.
func wordAdd(w uint64, mode Mode) uint64 {
	switch mode {
	case ModeIS:
		w += 1 << wordNISShift
	case ModeS:
		w += 1 << wordNSShift
	case ModeIX:
		w += 1 << wordNIXShift
	}
	return wordWithGM(w)
}

// wordSub returns w with one holder of mode removed and the group-mode
// bits recomputed. Caller guarantees the count is non-zero (it holds the
// granted request being released).
func wordSub(w uint64, mode Mode) uint64 {
	switch mode {
	case ModeIS:
		w -= 1 << wordNISShift
	case ModeS:
		w -= 1 << wordNSShift
	case ModeIX:
		w -= 1 << wordNIXShift
	}
	return wordWithGM(w)
}

func wordWithGM(w uint64) uint64 {
	nS, nIS, nIX := wordCounts(w)
	w &^= wordGMMask << wordGMShift
	return w | uint64(wordGroupMode(nS, nIS, nIX))<<wordGMShift
}

// sealFast fences a published header's grant word, waiting out any fast
// op's brief lk hold. Latched sections call it before touching the
// header's granted group or queues; unpublished headers need nothing (the
// fast path cannot reach them). Idempotent. Caller holds the home shard
// latch.
func (m *Manager) sealFast(h *lockHeader) { m.sealFastWord(h) }

// sealFastWord is sealFast returning the sealed word and whether this call
// performed the unfenced→fenced transition. open == true means the word's
// counts were live at the instant of the seal — they are exactly the
// header's granted group (the settle invariant) — which lets the caller
// settle a single holder removal with O(1) word arithmetic instead of an
// O(holders) recompute. (0, false) for unpublished headers, (w, false) when
// the word was already fenced.
func (m *Manager) sealFastWord(h *lockHeader) (w uint64, open bool) {
	if !h.published {
		return 0, false
	}
	for {
		w := h.word.Load()
		if w&wordFence != 0 {
			return w, false
		}
		if w&wordLk != 0 {
			// A fast op owns the header for a few plain stores; it never
			// blocks while holding lk, so this spin is brief even on one
			// core (Gosched lets the holder run).
			runtime.Gosched()
			continue
		}
		if h.word.CompareAndSwap(w, w|wordFence) {
			return w | wordFence, true
		}
	}
}

// settleFast republishes a header's grant word from its latched chain
// state — counts and group mode when the state is fast-representable, a
// fence otherwise — bumping the settle sequence. It also performs first
// publication: a header that has proven hot (table granularity, or ≥ 2
// holders) and fast-eligible is installed in its shard's slot array, if
// the slot is free. Latched sections call it on every header they sealed
// (or may have mutated) before dropping the latch. Caller holds the home
// shard latch.
func (m *Manager) settleFast(s *shard, h *lockHeader) {
	if !h.published {
		// Publication check. Fail fast for the common unpublishable cases
		// (X/U/SIX headers, single-holder rows) so non-fast workloads pay
		// one or two branches here.
		if !fastEligible(h.groupMode) || h.groupMode == ModeNone {
			return
		}
		if h.name.Gran != GranTable && h.grantedLen() < 2 {
			return
		}
		if len(h.converters) != 0 || len(h.waiters) != 0 || len(h.culled) != 0 {
			return
		}
		slot := &s.fastSlots[fastSlotIndex(hashName(h.name))]
		if slot.Load() != nil {
			return // slot taken by another hot header; stay latched
		}
		h.published = true
		h.word.Store(m.recomputeWord(h, h.epoch.Load()&wordSeqMask))
		// Word before slot: a fast op that observes the pointer observes
		// an initialized word (sequentially consistent atomics).
		slot.Store(h)
		s.fastPublishedN.Add(1)
		return
	}
	// The settle seq is the low 11 bits of the 64-bit epoch, bumped iff the
	// settled word is not S-token-admissible (fenced or nIX > 0). Every
	// grant of a mode incompatible with a token — IX, SIX, U, X — settles
	// to exactly such a word, so no invalidation is ever missed; settles
	// between two open S/IS-only words are compatible count changes
	// (S/IS releases, latched S/IS grants, no-op posts) and must NOT bump,
	// or every commit-release of a real S lock would spuriously kill all
	// outstanding tokens on the header. Bump-then-store keeps the
	// word-seq ≡ epoch&mask identity CheckInvariants enforces: seq and
	// epoch move in lockstep, both or neither.
	nw := m.recomputeWord(h, 0)
	var e uint64
	if nw&wordFence != 0 || (nw>>wordNIXShift)&wordCntMask != 0 {
		e = h.epoch.Add(1)
	} else {
		e = h.epoch.Load()
	}
	h.word.Store(nw | (e&wordSeqMask)<<wordSeqShift)
}

// recomputeWord builds the grant word for h's current latched state: the
// packed counts when every holder is a non-converting IS/S/IX grant and no
// queue exists, a fence otherwise. Caller holds the home shard latch with
// the header sealed (or not yet published).
func (m *Manager) recomputeWord(h *lockHeader, seq uint64) uint64 {
	w := seq << wordSeqShift
	if len(h.converters) != 0 || len(h.waiters) != 0 || len(h.culled) != 0 {
		// Culled waiters fence the word like queued ones: every release on
		// a throttled header must take the latched path and reach post,
		// which is where culled waiters get reactivated (throttle.go).
		return w | wordFence
	}
	var nS, nIS, nIX uint64
	bad := false
	h.eachGranted(func(g *request) bool {
		if g.converting || !fastEligible(g.mode) {
			bad = true
			return false
		}
		switch g.mode {
		case ModeIS:
			nIS++
		case ModeS:
			nS++
		case ModeIX:
			nIX++
		}
		return true
	})
	if bad || nS >= wordCntMask || nIS >= wordCntMask || nIX >= wordCntMask {
		return w | wordFence
	}
	return w | uint64(wordGroupMode(nS, nIS, nIX))<<wordGMShift |
		nS<<wordNSShift | nIS<<wordNISShift | nIX<<wordNIXShift
}

// takeFastCredit CAS-claims weight structures from the shard's fast
// credit. Latch-free; never drives the balance negative.
func (s *shard) takeFastCredit(weight int64) bool {
	for {
		v := s.fastFree.Load()
		if v < weight {
			return false
		}
		if s.fastFree.CompareAndSwap(v, v-weight) {
			return true
		}
	}
}

// maybeRefillFastCredit tops the shard's fast credit up to
// fastCreditChunk when it has fallen below the low watermark, leasing from
// the shard pool (which refills from the chain as needed). Called on the
// latched acquire path — the fallbacks a dry credit causes are exactly
// what brings the refill here. Caller holds the shard latch.
func (m *Manager) maybeRefillFastCredit(s *shard) {
	free := s.fastFree.Load()
	if free >= fastCreditLow {
		return
	}
	lease, got := s.pool.Lease(fastCreditChunk - int(free))
	if got > 0 {
		s.fastLease.Absorb(lease)
		s.fastLeaseTotal += got
		s.fastFree.Add(int64(got))
	}
}

// drainFastCredit returns the shard's idle fast credit to its lease pool,
// so the global admission pipeline and the shrink path see it as free.
// Credit backing in-flight fast grants stays leased (their latched free
// will recredit it). Safe against concurrent fast ops: the Swap leaves a
// racing CAS-decrement to observe zero and fall back. Caller holds the
// shard latch.
func (m *Manager) drainFastCredit(s *shard) {
	v := int(s.fastFree.Swap(0))
	if v == 0 {
		return
	}
	h := s.fastLease.Split(v)
	s.fastLeaseTotal -= v
	s.pool.Restore(h)
}

// quotaFastCached is the latch-free quota check: cached percent only,
// with every uncertain case answered "no" so the latched path (which
// refreshes the cache or reads the provider fresh) decides. In
// particular a stride expiry falls back rather than calling the provider
// from the fast path.
func (m *Manager) quotaFastCached(app *App, weight int) bool {
	q := m.cfg.Quota
	if q == nil {
		return true
	}
	if prefersEscalation(q, app.id) {
		return false // biased quota; the cache holds the unbiased percent
	}
	if m.chain.Requests() >= m.quotaNext.Load() {
		return false // stride expired; latched path refreshes the cache
	}
	quota := math.Float64frombits(m.quotaPct.Load())
	limit := quota / 100 * float64(m.chain.Capacity())
	return float64(app.structs.Load()+int64(weight)) <= limit
}

// grantedSingleton is the pre-completed Pending returned by owner-local
// re-acquire cache hits: the grant is decided before any shared state is
// touched, so all hits share one terminal Pending (Status/Done are safe on
// a completed Pending from any number of goroutines).
var grantedSingleton = func() *Pending {
	p := newPending()
	p.complete(StatusGranted, nil)
	return p
}()

// tryFastAcquire attempts to admit a fast-eligible request without the
// shard latch: first through the owner-local re-acquire cache (the owner
// already holds a covering lock — the re-entrant table-intent hits TPC-C
// generates), then through a CAS on the home header's grant word. It
// returns the completed Pending on success and nil when the request must
// take the latched path. It mutates nothing when it returns nil.
func (m *Manager) tryFastAcquire(o *Owner, name Name, mode Mode, weight int, hash uint64, si int, recyclable, sampled bool) *Pending {
	s := &m.shards[si]
	// Gate entry before any state is read (Dekker pairing with runGlobal:
	// either we see the raised gate here, or runGlobal's drain waits for
	// our exit).
	s.fastOps.Add(1)
	if m.fastGate.Load() != 0 {
		s.fastOps.Add(-1)
		return nil
	}
	p := m.fastAcquireGated(o, name, mode, weight, hash, si, s, recyclable, sampled)
	s.fastOps.Add(-1)
	return p
}

func (m *Manager) fastAcquireGated(o *Owner, name Name, mode Mode, weight int, hash uint64, si int, s *shard, recyclable, sampled bool) *Pending {
	o.mu.Lock()
	if o.released {
		o.mu.Unlock()
		p := newPending()
		p.complete(StatusDenied, fmt.Errorf("lockmgr: owner %d already released", o.id))
		return p
	}
	// Owner-local re-acquire cache: the owner already holds this very lock
	// at a mode at least as strong, or a table lock covering the row. Both
	// checks read only owner-mu-guarded state; a hit touches no shared
	// structure at all.
	if cur, ok := o.held.get(name); ok {
		if cur.granted && !cur.converting && Supremum(cur.mode, mode) == cur.mode {
			o.mu.Unlock()
			m.stats.grants.Add(1)
			m.fastHits.Shard(si).Inc()
			return grantedSingleton
		}
		o.mu.Unlock()
		return nil // conversion (or in-flight state): latched path
	}
	if name.Gran == GranRow {
		if ot := o.tableFor(name.Table); ot != nil && ot.tableReq != nil &&
			ot.tableReq.granted && !ot.tableReq.converting && covers(ot.tableReq.mode, mode) {
			o.mu.Unlock()
			m.stats.grants.Add(1)
			m.fastHits.Shard(si).Inc()
			return grantedSingleton
		}
	}

	// Grant-word CAS admission.
	h := s.fastSlots[fastSlotIndex(hash)].Load()
	if h == nil || h.name != name {
		o.mu.Unlock()
		return nil // name not published (yet); latched path
	}
	if !m.quotaFastCached(o.app, weight) {
		o.mu.Unlock()
		return nil
	}
	if !s.takeFastCredit(int64(weight)) {
		o.mu.Unlock()
		return nil // dry credit; the latched fallback refills it
	}
	var nw uint64
	acquired := false
	for tries := 0; tries < 4; {
		w := h.word.Load()
		if w&wordFence != 0 {
			break // a latched section owns the header (or state is ineligible)
		}
		if w&wordLk != 0 {
			runtime.Gosched() // another fast op's brief hold; not a try
			continue
		}
		if !wordAdmit(w, mode) {
			break
		}
		nw = wordAdd(w, mode)
		if h.word.CompareAndSwap(w, nw|wordLk) {
			acquired = true
			break
		}
		tries++
	}
	if !acquired {
		s.fastFree.Add(int64(weight))
		o.mu.Unlock()
		return nil
	}

	// CAS succeeded: we hold lk (exclusive ownership of the header's
	// granted-group fields against other fast ops; latched sections spin
	// in sealFast until the Store below). Finish the grant under
	// lk + o.mu, then release lk by storing the unlocked word.
	if mode == ModeIX {
		// An IX arrival invalidates optimistic S readers but bypasses the
		// seal/settle protocol, so it must bump the reader epoch itself —
		// and mirror the bump into the word's seq bits to keep the
		// word-seq ≡ epoch&mask identity. S/IS admissions skip this: they
		// cannot invalidate any optimistic reader (see optimistic.go's
		// writer-obligations table).
		e := h.epoch.Add(1)
		nw = nw&^(wordSeqMask<<wordSeqShift) | (e&wordSeqMask)<<wordSeqShift
	}
	o.markTouched(si)
	box, _ := m.fastBoxPool.Get().(*requestAndPending)
	if box == nil {
		box = &requestAndPending{}
	}
	req := &box.req
	req.owner = o
	req.header = h
	req.name = name
	req.mode = mode
	req.weight = weight
	req.granted = true
	req.fastLeased = true
	req.recyclable = recyclable
	req.obsSampled = sampled
	req.box = box
	// The box's Pending is left untouched (req.pending stays nil, as it
	// would be after m.grant): the outcome is decided right here, so the
	// caller gets the shared pre-completed singleton and the recycler's
	// reset of the pristine Pending is free.
	if sampled {
		req.grantedAt = time.Now()
	}
	h.addGranted(req)
	h.groupMode = Mode((nw >> wordGMShift) & wordGMMask)
	o.held.set(name, req)
	ot := o.tableOrCreate(name.Table)
	if name.Gran == GranTable {
		ot.tableReq = req
	} else {
		ot.setRow(name.Row, req)
		ot.rowStructs += weight
	}
	h.word.Store(nw) // release lk; publishes the plain writes above
	o.mu.Unlock()

	// The credit was reserved at lease time; consuming it is two atomic
	// adds on the chain, keeping STMM-facing Used/Requests exact.
	m.chain.ConsumeReserved(weight)
	o.app.structs.Add(int64(weight))
	m.stats.grants.Add(1)
	m.fastHits.Shard(si).Inc()
	return grantedSingleton
}

// tryFastRelease is the symmetric CAS decrement for a fast-path grant: it
// removes the owner's holder from the grant word and the granted group
// without the shard latch, recrediting the structures. Header reclamation
// is deferred to the latched path — an emptied published header stays
// resident with an admitting word. Returns false when the release must
// take the latched path (not fast-granted, converted to a non-eligible
// mode, fenced, gated); it mutates nothing in that case.
func (m *Manager) tryFastRelease(o *Owner, name Name, si int) bool {
	s := &m.shards[si]
	s.fastOps.Add(1)
	if m.fastGate.Load() != 0 {
		s.fastOps.Add(-1)
		return false
	}
	done := m.fastReleaseGated(o, name, si, s)
	s.fastOps.Add(-1)
	return done
}

func (m *Manager) fastReleaseGated(o *Owner, name Name, si int, s *shard) bool {
	o.mu.Lock()
	req, ok := o.held.get(name)
	if !ok || !req.granted || req.converting || !req.fastLeased ||
		!fastEligible(req.mode) || req.header == nil || !req.header.published {
		o.mu.Unlock()
		return false
	}
	h := req.header
	var nw uint64
	acquired := false
	for tries := 0; tries < 4; {
		w := h.word.Load()
		if w&wordFence != 0 {
			break
		}
		if w&wordLk != 0 {
			runtime.Gosched()
			continue
		}
		nw = wordSub(w, req.mode)
		if h.word.CompareAndSwap(w, nw|wordLk) {
			acquired = true
			break
		}
		tries++
	}
	if !acquired {
		o.mu.Unlock()
		return false
	}
	if !req.grantedAt.IsZero() {
		held := time.Since(req.grantedAt).Nanoseconds()
		m.holdHist.RecordStripe(si, held)
		req.grantedAt = time.Time{}
		if m.flight != nil {
			m.flightAdd(si, trace.KindRelease, o.app.id,
				fmt.Sprintf("%s mode=%s owner=%d held=%s (fast)", req.name, req.mode, o.id, time.Duration(held)))
		}
	}
	h.removeGranted(o)
	h.groupMode = Mode((nw >> wordGMShift) & wordGMMask)
	m.releaseOwnerStateLocked(req)
	req.fastLeased = false
	weight := req.weight
	h.word.Store(nw) // release lk
	o.mu.Unlock()
	s.fastFree.Add(int64(weight))
	m.chain.ReturnReserved(weight)
	o.app.structs.Add(-int64(weight))
	return true
}

// FastPathHits returns the cumulative number of grants admitted without
// the shard latch — owner-local re-acquire cache hits plus grant-word CAS
// admissions. Lock-free.
func (m *Manager) FastPathHits() int64 { return m.fastHits.Total() }

// FastPathFallbacks returns the cumulative number of acquisitions that
// took the latched admission path (including modes the fast path never
// attempts). Hits + fallbacks partition all acquisitions. Lock-free.
func (m *Manager) FastPathFallbacks() int64 { return m.fastFallbacks.Total() }

// FastPathHitCounters exposes the per-shard fast-path hit counters for
// metrics wiring.
func (m *Manager) FastPathHitCounters() *metrics.ShardCounters { return m.fastHits }

// FastPathFallbackCounters exposes the per-shard fallback counters for
// metrics wiring.
func (m *Manager) FastPathFallbackCounters() *metrics.ShardCounters { return m.fastFallbacks }
