package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Concurrency stress tests for the sharded lock table. They are written to
// run under the race detector (`go test -race ./internal/lockmgr`) and
// assert the two properties the sharding refactor must preserve:
//
//  1. per-lock FIFO grant order survives concurrent completion, and
//  2. UsedStructs + FreeStructs == CapacityStructs holds exactly at every
//     "tuning interval" (here: every background sweep), even while shard
//     lease pools hold batched structures mid-flight.

// TestStressFIFOOrder enqueues a known sequence of waiters on one hot row
// and lets concurrent goroutines complete them. The grant order observed
// must match the enqueue order exactly.
func TestStressFIFOOrder(t *testing.T) {
	const waiters = 64
	m := newMgr(Config{})
	app := m.RegisterApp()

	holder := m.NewOwner(app)
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	// Enqueue from a single goroutine so the FIFO order is well defined.
	owners := make([]*Owner, waiters)
	pendings := make([]*Pending, waiters)
	for i := range owners {
		owners[i] = m.NewOwner(app)
		pendings[i] = m.AcquireAsync(owners[i], row, ModeX, 1)
		mustWait(t, pendings[i], "queued waiter")
	}

	// Each goroutine waits for its grant, records its position in the
	// observed grant sequence, and releases — unblocking the next waiter.
	var seq atomic.Int64
	order := make([]int64, waiters)
	var wg sync.WaitGroup
	for i := range owners {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-pendings[i].Done()
			if st, err := pendings[i].Status(); st != StatusGranted {
				t.Errorf("waiter %d: status=%v err=%v", i, st, err)
				return
			}
			order[i] = seq.Add(1) - 1
			m.ReleaseAll(owners[i])
		}(i)
	}
	m.ReleaseAll(holder)
	wg.Wait()

	for i, got := range order {
		if got != int64(i) {
			t.Fatalf("FIFO violated: waiter %d granted at position %d", i, got)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStressShardedTable runs transactional workers over disjoint and hot
// rows while a background sweeper performs the cross-shard operations
// (deadlock detection, timeouts, resize) and validates the memory
// accounting at every interval. Deadlocks are expected — hot-row upgrades
// collide — and are handled by aborting the transaction, exactly as the
// engine does.
func TestStressShardedTable(t *testing.T) {
	const (
		workers     = 8
		txPerWorker = 250
		rowsPerTx   = 8
		hotRows     = 4
	)
	if testing.Short() {
		t.Skip("stress test")
	}
	m := newMgr(Config{InitialPages: 32 * 64, Shards: 8})

	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		sweeps   atomic.Int64
		aborts   atomic.Int64
		invErrMu sync.Mutex
		invErr   error
	)

	// Background sweeper: the stand-in for the engine's tuning interval.
	// Each pass breaks deadlocks, flexes the chain size to force lease
	// repatriation, and asserts the exact accounting identity. The pass is
	// stop-the-world, so it must be paced: an unthrottled loop starves the
	// workers outright under the race detector on small machines.
	var sweeperWG sync.WaitGroup
	sweeperWG.Add(1)
	go func() {
		defer sweeperWG.Done()
		shrunk := false
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			m.DetectDeadlocks()
			m.SweepTimeouts()
			if shrunk {
				m.Resize(32 * 64)
			} else {
				m.Resize(32 * 48)
			}
			shrunk = !shrunk
			if u, f, c := m.UsedStructs(), m.FreeStructs(), m.CapacityStructs(); u+f != c {
				invErrMu.Lock()
				invErr = fmt.Errorf("used %d + free %d != capacity %d", u, f, c)
				invErrMu.Unlock()
				return
			}
			if err := m.CheckInvariants(); err != nil {
				invErrMu.Lock()
				invErr = err
				invErrMu.Unlock()
				return
			}
			sweeps.Add(1)
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			app := m.RegisterApp()
			rng := rand.New(rand.NewSource(int64(w)))
			table := uint32(100 + w)
			for tx := 0; tx < txPerWorker; tx++ {
				o := m.NewOwner(app)
				ok := true
				// Disjoint rows: private table, always grantable.
				for r := 0; r < rowsPerTx; r++ {
					p := m.AcquireAsync(o, RowName(table, uint64(tx*rowsPerTx+r)), ModeX, 1)
					if st, err := p.Status(); st != StatusGranted {
						t.Errorf("disjoint acquire: status=%v err=%v", st, err)
						ok = false
						break
					}
				}
				// Hot rows in ascending order, sometimes upgrading S→X.
				// Upgrades from concurrent S holders deadlock; the sweeper
				// picks a victim and we abort.
				for h := 0; ok && h < hotRows; h++ {
					if rng.Intn(2) == 0 {
						continue
					}
					mode := ModeS
					if rng.Intn(4) == 0 {
						mode = ModeX
					}
					err := m.Acquire(context.Background(), o, RowName(99, uint64(h)), mode, 1)
					if err == nil && mode == ModeS && rng.Intn(4) == 0 {
						err = m.Acquire(context.Background(), o, RowName(99, uint64(h)), ModeX, 1)
					}
					if err != nil {
						if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrTimeout) {
							t.Errorf("hot acquire: %v", err)
						}
						aborts.Add(1)
						ok = false
					}
				}
				m.ReleaseAll(o)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sweeperWG.Wait()

	invErrMu.Lock()
	err := invErr
	invErrMu.Unlock()
	if err != nil {
		t.Fatalf("invariant violated during run: %v", err)
	}
	if sweeps.Load() == 0 {
		t.Fatal("sweeper never completed a pass")
	}
	// All transactions released: the table must be empty and the exact
	// accounting identity must hold after lease reconciliation.
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("used structs after run = %d, want 0", got)
	}
	if u, f, c := m.UsedStructs(), m.FreeStructs(), m.CapacityStructs(); u+f != c {
		t.Fatalf("used %d + free %d != capacity %d", u, f, c)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("sweeps=%d aborts=%d latchWaits=%d", sweeps.Load(), aborts.Load(), m.LatchWaits())
}
