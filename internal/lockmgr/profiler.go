// profiler.go is the lock manager's contention profiler: the hot-lock
// blame sketch, the blocked-on blame export behind /debug/waiters, the
// per-shard flight recorder, and the latch hold/wait profile. Everything
// here rides existing hot-path state — the sketch records with one or two
// uncontended atomic adds, the blame export reuses the deadlock detector's
// per-shard edge walk (one shard latch at a time, GlobalRuns unchanged),
// and latch hold times are sampled on a per-shard counter that advances
// under the latch it measures, so the profiler adds no shared cache line
// to any fast path.
package lockmgr

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

const (
	// hotSlotsPerStripe sizes each shard's space-saving slot array. Eight
	// slots per shard tracks 8×shards keys exactly and keeps the scan in
	// one cache line pair.
	hotSlotsPerStripe = 8
	// hotEventBlameNs is the fixed blame (1 µs) charged per contention
	// event that has no duration of its own: an enqueue or an
	// optimistic-validation failure. It ranks "lots of cheap friction"
	// against "few long waits" on one nanosecond scale. Fast-path
	// fallbacks carry no blame — every latched acquisition is a fallback,
	// so their counter rides along on already-tracked keys only.
	hotEventBlameNs = 1000
	// flightRingCap is each shard's flight-recorder capacity. 256 events
	// of recent grant/wait/release history per shard is an incident
	// window, not an archive.
	flightRingCap = 256
	// latchSampleStride samples one in 64 latch holds (power of two; the
	// mask is stride−1).
	latchSampleStride = 64
)

// initProfiler wires the contention profiler into a freshly built manager.
// The sketch and flight recorder run on the manager's clock (deterministic
// under the simulated clock) and stay on unless ProfileDisabled; the latch
// profile is wall-clock and additionally obeys the ObsSampleStride switch
// (negative = wall-clock sampling off), like the hold/admission
// histograms.
func (m *Manager) initProfiler(cfg Config, ns int, wallStride int) {
	if cfg.ProfileDisabled {
		return
	}
	m.hot = obs.NewHotSketch[Name](ns, hotSlotsPerStripe)
	m.flight = make([]*trace.Ring, ns)
	for i := range m.flight {
		m.flight[i] = trace.NewRing(flightRingCap)
	}
	if wallStride > 0 {
		m.latchProf = obs.NewLatchProf(ns)
		m.latchSampleMask = latchSampleStride - 1
	}
}

// hotObserve charges blame to a lock name on its home stripe. Nil-safe and
// lock-free; see obs.HotSketch.
func (m *Manager) hotObserve(si int, name Name, scoreDelta int64, metric int, delta int64) {
	m.hot.Observe(si, name, scoreDelta, metric, delta)
}

// flightAdd appends one event to shard si's flight ring, stamped on the
// manager's clock. Callers guard with m.flight != nil before building the
// detail string, so disabled profilers pay nothing.
func (m *Manager) flightAdd(si int, k trace.Kind, appID int, detail string) {
	if m.flight == nil {
		return
	}
	m.flight[si].Add(trace.Event{Time: m.clk.Now(), Kind: k, AppID: appID, Detail: detail})
}

// FlightEvents returns flight-recorder events, oldest first. shard ≥ 0
// selects one shard's ring; negative merges every shard's retained window
// into one time-ordered stream. last > 0 keeps only the most recent that
// many events. Returns nil when the profiler is disabled.
func (m *Manager) FlightEvents(shard, last int) []trace.Event {
	if m.flight == nil {
		return nil
	}
	var evs []trace.Event
	if shard >= 0 {
		evs = m.flight[uint64(shard)&m.shardMask].Events()
	} else {
		for _, r := range m.flight {
			evs = append(evs, r.Events()...)
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	}
	if last > 0 && len(evs) > last {
		evs = evs[len(evs)-last:]
	}
	return evs
}

// HotLock is one entry of the hot-lock ranking, shaped for
// /debug/hotlocks.
type HotLock struct {
	// Name is the lock name; Shard its home shard (the sketch stripe).
	Name  string `json:"name"`
	Shard int    `json:"shard"`
	// BlameNs is the decayed blame score ranking this lock; ErrNs its
	// worst-case overestimate (true blame is within [BlameNs−ErrNs,
	// BlameNs]).
	BlameNs int64 `json:"blame_ns"`
	ErrNs   int64 `json:"err_ns"`
	// WaitNs is cumulative attributed wait time; QueueDepthMax the
	// queue-depth high-water mark; Fallbacks and OptFailures the
	// fast-path fallback and optimistic-validation-failure counts.
	WaitNs        int64 `json:"wait_ns"`
	QueueDepthMax int64 `json:"queue_depth_max"`
	Fallbacks     int64 `json:"fallbacks"`
	OptFailures   int64 `json:"optimistic_failures"`
}

// HotLocks returns the current top-n hot locks, highest blame first.
// Lock-free; nil when the profiler is disabled.
func (m *Manager) HotLocks(n int) []HotLock {
	if m.hot == nil {
		return nil
	}
	var out []HotLock
	for _, e := range m.hot.TopK(n) {
		out = append(out, HotLock{
			Name:          e.Key.String(),
			Shard:         e.Stripe,
			BlameNs:       e.Score,
			ErrNs:         e.Err,
			WaitNs:        e.Vals[obs.HotWaitNs],
			QueueDepthMax: e.Vals[obs.HotQueueMax],
			Fallbacks:     e.Vals[obs.HotFallbacks],
			OptFailures:   e.Vals[obs.HotOptFailures],
		})
	}
	return out
}

// DecayHotLocks halves every sketch entry's blame — the epoch step that
// ages past storms out of the ranking. The engine calls it every 64 ticks;
// tests may call it directly. Lock-free, nil-safe.
func (m *Manager) DecayHotLocks() { m.hot.Decay() }

// HotLockBlameNs sums the current (decayed) blame across every tracked
// lock — a deterministic aggregate under the simulated clock, recorded by
// the sim as a byte-compared series. Lock-free; 0 when disabled.
func (m *Manager) HotLockBlameNs() int64 {
	if m.hot == nil {
		return 0
	}
	return m.hot.TotalScore()
}

// LatchProfile returns the per-shard latch hold/wait profile (nil when
// wall-clock sampling or the profiler is disabled).
func (m *Manager) LatchProfile() *obs.LatchProf { return m.latchProf }

// DumpWaiters exports the live wait-for edges as a blocked-on blame
// report: who is blocked on which lock, held by whom, for how long —
// convoys and the longest blocked-on chain included. It is the deadlock
// detector's phase-1 walk pointed at a different consumer: one shard latch
// at a time, idle shards skipped by their nWaiting mirror, GlobalRuns
// unchanged. Like any per-shard snapshot the edge set is fuzzy across
// shards; it is diagnostics, not a correctness surface.
func (m *Manager) DumpWaiters() obs.BlameReport {
	now := m.clk.Now()
	var edges []obs.BlameEdge
	for i := range m.shards {
		if m.shards[i].nWaiting.Load() == 0 {
			continue
		}
		s := m.lockShard(i)
		for req := range s.waiting {
			if req.parked || req.culled {
				continue // parked/culled requests hold no queue position
			}
			for _, to := range m.waitEdges(req) {
				edges = append(edges, obs.BlameEdge{
					WaiterID:  req.owner.id,
					WaiterApp: req.owner.app.id,
					HolderID:  to.id,
					HolderApp: to.app.id,
					Lock:      req.name.String(),
					Mode:      req.effectiveMode().String(),
					WaitNs:    now.Sub(req.waitStart).Nanoseconds(),
				})
			}
		}
		m.unlockShard(s)
	}
	return obs.BuildBlame(edges)
}

// ContentionReport renders the profiler's end-of-run summary: the top-K
// hot locks, the current blocked-on picture, and the per-shard latch
// profile. Both CLIs print it under -profile.
func (m *Manager) ContentionReport(topK int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "contention profile (top %d hot locks)\n", topK)
	hot := m.HotLocks(topK)
	if len(hot) == 0 {
		b.WriteString("  no contention recorded\n")
	}
	for i, hl := range hot {
		fmt.Fprintf(&b, "  %2d. %-24s blame=%-12s wait=%-12s qmax=%-3d fallbacks=%-6d optfail=%-6d (shard %d, err ≤ %s)\n",
			i+1, hl.Name, time.Duration(hl.BlameNs), time.Duration(hl.WaitNs),
			hl.QueueDepthMax, hl.Fallbacks, hl.OptFailures, hl.Shard, time.Duration(hl.ErrNs))
	}
	rep := m.DumpWaiters()
	fmt.Fprintf(&b, "blocked-on blame: %d waiting owner(s), %d convoy(s), longest chain %d\n",
		rep.Waiters, len(rep.Convoys), rep.LongestChainLen)
	for _, c := range rep.Convoys {
		fmt.Fprintf(&b, "  convoy: %d waiters behind owner %d on %s\n", c.Waiters, c.HolderID, c.Lock)
	}
	for _, row := range rep.Rows {
		fmt.Fprintf(&b, "  %s\n", row)
	}
	if lp := m.latchProf; lp != nil {
		hold, wait := lp.MergedHold(), lp.MergedWait()
		fmt.Fprintf(&b, "latch profile: %d sampled holds (p50 %s, p99 %s), %d contended acquires (p50 %s, p99 %s)\n",
			hold.Total, time.Duration(int64(hold.Quantile(0.5))), time.Duration(int64(hold.Quantile(0.99))),
			wait.Total, time.Duration(int64(wait.Quantile(0.5))), time.Duration(int64(wait.Quantile(0.99))))
		worst, worstN := -1, uint64(0)
		for i := 0; i < lp.Shards(); i++ {
			if n := lp.Wait(i).Total; n > worstN {
				worst, worstN = i, n
			}
		}
		if worst >= 0 {
			w := lp.Wait(worst)
			fmt.Fprintf(&b, "  most contended shard: %d (%d contended acquires, p99 wait %s)\n",
				worst, w.Total, time.Duration(int64(w.Quantile(0.99))))
		}
	}
	return b.String()
}
