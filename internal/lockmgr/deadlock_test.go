package lockmgr

import (
	"errors"
	"testing"
)

// TestClassicDeadlock: two owners acquire rows in opposite order and upgrade
// into each other — the detector must deny exactly one victim.
func TestClassicDeadlock(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	a, b := RowName(1, 1), RowName(1, 2)

	mustGrant(t, m.AcquireAsync(o1, a, ModeX, 1), "o1 a")
	mustGrant(t, m.AcquireAsync(o2, b, ModeX, 1), "o2 b")
	p1 := m.AcquireAsync(o1, b, ModeX, 1)
	p2 := m.AcquireAsync(o2, a, ModeX, 1)
	mustWait(t, p1, "o1 waits for b")
	mustWait(t, p2, "o2 waits for a")

	if n := m.DetectDeadlocks(); n != 1 {
		t.Fatalf("victims = %d, want 1", n)
	}
	st1, err1 := p1.Status()
	st2, err2 := p2.Status()
	denied := 0
	if st1 == StatusDenied {
		denied++
		if !errors.Is(err1, ErrDeadlock) {
			t.Fatalf("o1 err = %v", err1)
		}
	}
	if st2 == StatusDenied {
		denied++
		if !errors.Is(err2, ErrDeadlock) {
			t.Fatalf("o2 err = %v", err2)
		}
	}
	if denied != 1 {
		t.Fatalf("denied = %d, want exactly 1", denied)
	}
	// The survivor proceeds once the victim aborts.
	if st1 == StatusDenied {
		m.ReleaseAll(o1)
		mustGrant(t, p2, "o2 after o1 abort")
	} else {
		m.ReleaseAll(o2)
		mustGrant(t, p1, "o1 after o2 abort")
	}
	if got := m.Stats().Deadlocks; got != 1 {
		t.Fatalf("deadlock stat = %d", got)
	}
}

// TestConvertDeadlock: two S holders both upgrading to X deadlock through
// the converter queue.
func TestConvertDeadlock(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o1, row, ModeS, 1), "o1 S")
	mustGrant(t, m.AcquireAsync(o2, row, ModeS, 1), "o2 S")
	p1 := m.AcquireAsync(o1, row, ModeX, 1)
	p2 := m.AcquireAsync(o2, row, ModeX, 1)
	mustWait(t, p1, "o1 convert")
	mustWait(t, p2, "o2 convert")

	if n := m.DetectDeadlocks(); n == 0 {
		t.Fatal("convert deadlock not detected")
	}
	// The victim's conversion is denied but its original S lock survives.
	var victim *Owner
	if st, _ := p1.Status(); st == StatusDenied {
		victim = o1
	} else if st, _ := p2.Status(); st == StatusDenied {
		victim = o2
	} else {
		t.Fatal("no conversion denied")
	}
	if req, ok := victim.held.get(row); !ok || req.mode != ModeS {
		t.Fatalf("victim's original S lock lost: %+v", req)
	}
	// After the victim commits, the survivor converts.
	m.ReleaseAll(victim)
	if victim == o1 {
		mustGrant(t, p2, "o2 convert after abort")
	} else {
		mustGrant(t, p1, "o1 convert after abort")
	}
}

// TestThreeWayDeadlock: a cycle across three owners.
func TestThreeWayDeadlock(t *testing.T) {
	m := newMgr(Config{})
	os := make([]*Owner, 3)
	rows := []Name{RowName(1, 0), RowName(1, 1), RowName(1, 2)}
	for i := range os {
		os[i] = m.NewOwner(m.RegisterApp())
		mustGrant(t, m.AcquireAsync(os[i], rows[i], ModeX, 1), "seed")
	}
	ps := make([]*Pending, 3)
	for i := range os {
		ps[i] = m.AcquireAsync(os[i], rows[(i+1)%3], ModeX, 1)
		mustWait(t, ps[i], "cycle edge")
	}
	if n := m.DetectDeadlocks(); n != 1 {
		t.Fatalf("victims = %d, want 1", n)
	}
}

// TestNoFalsePositives: plain waiting without a cycle must not be broken.
func TestNoFalsePositives(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	o3 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o1, row, ModeX, 1), "o1 X")
	p2 := m.AcquireAsync(o2, row, ModeX, 1)
	p3 := m.AcquireAsync(o3, row, ModeX, 1)
	if n := m.DetectDeadlocks(); n != 0 {
		t.Fatalf("false positives: %d", n)
	}
	mustWait(t, p2, "o2")
	mustWait(t, p3, "o3")
}

// TestDeadlockVictimIsYoungest: the newest owner in the cycle is chosen.
func TestDeadlockVictimIsYoungest(t *testing.T) {
	m := newMgr(Config{})
	older := m.NewOwner(m.RegisterApp())
	younger := m.NewOwner(m.RegisterApp())
	a, b := RowName(1, 1), RowName(1, 2)
	mustGrant(t, m.AcquireAsync(older, a, ModeX, 1), "older a")
	mustGrant(t, m.AcquireAsync(younger, b, ModeX, 1), "younger b")
	pOld := m.AcquireAsync(older, b, ModeX, 1)
	pYoung := m.AcquireAsync(younger, a, ModeX, 1)
	if n := m.DetectDeadlocks(); n != 1 {
		t.Fatalf("victims = %d", n)
	}
	if st, _ := pYoung.Status(); st != StatusDenied {
		t.Fatal("younger owner should be the victim")
	}
	mustWait(t, pOld, "older survives")
}
