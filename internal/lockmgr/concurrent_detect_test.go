package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin down the concurrent control plane's two promises:
//
//  1. Liveness/steady-state: DetectDeadlocks, SweepTimeouts, Stats,
//     ShardStatsSnapshot, and DumpLocks never take the all-shard latch
//     (GlobalRuns stays flat) — asserted directly on the counter, not on
//     timing.
//  2. Safety under churn (-race): continuous detection against a churning
//     acyclic workload denies no one (no false victims), while injected
//     cycles are still found and broken within two detector passes (no
//     lost deadlocks).

// TestControlPlaneStaysOffGlobalPath drives ordinary traffic — including
// real wait queues — through the fast path, exercises every steady-state
// control-plane entry point, and asserts the all-shard latch was never
// taken.
func TestControlPlaneStaysOffGlobalPath(t *testing.T) {
	m := newMgr(Config{LockTimeout: time.Hour})
	app := m.RegisterApp()

	// Contended traffic: o1 holds X on a hot row, o2 queues behind it,
	// plus a spread of uncontended locks across shards.
	o1 := m.NewOwner(app)
	o2 := m.NewOwner(app)
	hot := RowName(1, 7)
	mustGrant(t, m.AcquireAsync(o1, hot, ModeX, 1), "o1 hot")
	for i := 0; i < 64; i++ {
		mustGrant(t, m.AcquireAsync(o1, RowName(2, uint64(i)), ModeS, 1), "spread")
	}
	pw := m.AcquireAsync(o2, hot, ModeX, 1)
	mustWait(t, pw, "o2 queued behind o1")

	// Steady-state control plane: none of these may enter global mode.
	if n := m.DetectDeadlocks(); n != 0 {
		t.Fatalf("acyclic table produced %d victims", n)
	}
	m.SweepTimeouts()
	_ = m.Stats()
	_ = m.ShardStatsSnapshot()
	_ = m.DumpLocks()
	if n := m.DetectDeadlocks(); n != 0 {
		t.Fatalf("second pass produced %d victims", n)
	}

	if runs := m.GlobalRuns(); runs != 0 {
		t.Fatalf("steady-state control plane took the all-shard latch %d times", runs)
	}
	if hold := m.GlobalHoldMax(); hold != 0 {
		t.Fatalf("GlobalHoldMax = %v with no global runs", hold)
	}

	m.ReleaseAll(o1)
	mustGrant(t, pw, "o2 after o1 release")
	m.ReleaseAll(o2)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// CheckInvariants is the deliberate runGlobal survivor; now the
	// gauges must show it.
	if m.GlobalRuns() == 0 {
		t.Fatal("CheckInvariants did not register a global run")
	}
}

// TestGlobalGaugesTrackEscalation: the admission path of last resort is a
// runGlobal survivor, and its stall must be visible in the gauges.
func TestGlobalGaugesTrackEscalation(t *testing.T) {
	m := New(Config{InitialPages: 32, Quota: fixedQuota(10)})
	app := m.RegisterApp()
	o := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIS, 1), "intent")
	for i := 0; m.Stats().Escalations == 0; i++ {
		if i > 400 {
			t.Fatal("no escalation")
		}
		mustGrant(t, m.AcquireAsync(o, RowName(1, uint64(i)), ModeS, 1), "row")
	}
	if m.GlobalRuns() == 0 {
		t.Fatal("escalation did not go through the global path")
	}
	if m.GlobalHoldMax() <= 0 {
		t.Fatal("global hold gauge not recorded")
	}
	m.ReleaseAll(o)
}

// TestDetectStressNoFalseVictims runs continuous deadlock detection against
// a churning, deadlock-free workload and asserts nobody is ever denied.
// Workers lock strictly in ascending (table, row) order with no mode
// upgrades, so the waits-for graph is acyclic by construction: every
// ErrDeadlock would be a false victim, and every detector pass must return
// 0. Run under -race this also exercises the export/validate phases against
// concurrent grants and releases.
func TestDetectStressNoFalseVictims(t *testing.T) {
	m := newMgr(Config{InitialPages: 32 * 16})
	app := m.RegisterApp()

	const (
		workers = 8
		iters   = 300
		hotRows = 4 // contended X rows -> real wait queues for the detector
	)
	ctx := context.Background()
	stop := make(chan struct{})
	var detPasses atomic.Int64

	var detWG sync.WaitGroup
	detWG.Add(1)
	go func() {
		defer detWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := m.DetectDeadlocks(); n != 0 {
				t.Errorf("detector denied %d victims on an acyclic workload", n)
				return
			}
			detPasses.Add(1)
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				o := m.NewOwner(app)
				// Private S spread (different shard homes), then the
				// shared hot X rows in ascending order.
				for r := 0; r < 3; r++ {
					name := RowName(2, uint64(w)<<20|uint64(n*4+r))
					if err := m.Acquire(ctx, o, name, ModeS, 1); err != nil {
						t.Errorf("worker %d: private S: %v", w, err)
						return
					}
				}
				for r := 0; r < hotRows; r++ {
					if err := m.Acquire(ctx, o, RowName(3, uint64(r)), ModeX, 1); err != nil {
						t.Errorf("worker %d: hot X row %d: %v", w, r, err)
						return
					}
				}
				m.ReleaseAll(o)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	detWG.Wait()

	if detPasses.Load() == 0 {
		t.Fatal("detector never completed a pass")
	}
	if got := m.Stats().Deadlocks; got != 0 {
		t.Fatalf("deadlock stat = %d on an acyclic workload", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDetectStressInjectedCycles repeatedly injects a genuine two-owner
// cycle while an acyclic churn workload runs alongside, and asserts every
// cycle is broken within two detector passes, the victim is the younger
// owner, the survivor proceeds, and the churn never produces a victim (no
// lost deadlocks, no false victims — under -race).
func TestDetectStressInjectedCycles(t *testing.T) {
	m := newMgr(Config{InitialPages: 32 * 16})
	app := m.RegisterApp()

	stop := make(chan struct{})
	ctx := context.Background()
	var churnWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		churnWG.Add(1)
		go func(w int) {
			defer churnWG.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				o := m.NewOwner(app)
				for r := 0; r < 2; r++ {
					if err := m.Acquire(ctx, o, RowName(10, uint64(r)), ModeX, 1); err != nil {
						t.Errorf("churn %d: %v", w, err)
						return
					}
				}
				m.ReleaseAll(o)
			}
		}(w)
	}

	const cycles = 50
	for c := 0; c < cycles; c++ {
		o1 := m.NewOwner(app)
		o2 := m.NewOwner(app) // younger: the designated victim
		a := RowName(20, uint64(c*2))
		b := RowName(20, uint64(c*2+1))
		mustGrant(t, m.AcquireAsync(o1, a, ModeX, 1), "o1 a")
		mustGrant(t, m.AcquireAsync(o2, b, ModeX, 1), "o2 b")
		p1 := m.AcquireAsync(o1, b, ModeX, 1)
		p2 := m.AcquireAsync(o2, a, ModeX, 1)
		mustWait(t, p1, "o1 behind o2")
		mustWait(t, p2, "o2 behind o1")

		// The cycle is fully formed; it must be broken within two passes.
		denied := m.DetectDeadlocks()
		if denied == 0 {
			denied = m.DetectDeadlocks()
		}
		if denied == 0 {
			t.Fatalf("cycle %d not broken within 2 detector passes", c)
		}
		st2, err2 := p2.Status()
		if st2 != StatusDenied || !errors.Is(err2, ErrDeadlock) {
			t.Fatalf("cycle %d: younger owner not the victim (status=%v err=%v)", c, st2, err2)
		}
		if st1, err1 := p1.Status(); st1 == StatusDenied {
			t.Fatalf("cycle %d: survivor denied too: %v", c, err1)
		}
		m.ReleaseAll(o2) // victim aborts; survivor must proceed
		mustGrant(t, p1, fmt.Sprintf("cycle %d survivor", c))
		m.ReleaseAll(o1)
	}
	close(stop)
	churnWG.Wait()

	// Every denial must belong to an injected cycle; churn is acyclic.
	if got, want := m.Stats().Deadlocks, int64(cycles); got != want {
		t.Fatalf("deadlock stat = %d, want exactly %d (one per injected cycle)", got, want)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDetectorThroughputOverhead measures grant throughput with the
// detector running at the simulator cadence versus detector-off, and
// asserts the detector costs no more than 10% — the acceptance bound for
// taking stop-the-world out of the control plane. The workload mirrors the
// engine benchmark: private X ranges plus a shared hot row, so wait queues
// are real. Multiple attempts absorb scheduler noise; the bound must hold
// on at least one attempt.
func TestDetectorThroughputOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped in -short mode")
	}
	const (
		workers  = 8
		iters    = 400
		per      = 6   // locks per transaction
		detEvery = 250 // commits per detector pass (sim cadence ~5 ticks)
	)
	run := func(detector bool) float64 {
		m := newMgr(Config{InitialPages: 32 * 16})
		app := m.RegisterApp()
		ctx := context.Background()
		stop := make(chan struct{})
		var commits atomic.Int64
		var detWG sync.WaitGroup
		if detector {
			detWG.Add(1)
			go func() {
				defer detWG.Done()
				next := int64(detEvery)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if commits.Load() < next {
						runtime.Gosched()
						continue
					}
					next += detEvery
					m.SweepTimeouts()
					m.DetectDeadlocks()
				}
			}()
		}
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for n := 0; n < iters; n++ {
					o := m.NewOwner(app)
					base := uint64(w)<<20 | uint64(n*per)
					for r := 0; r < per-1; r++ {
						if err := m.Acquire(ctx, o, RowName(2, base+uint64(r)), ModeX, 1); err != nil {
							t.Error(err)
							return
						}
					}
					if err := m.Acquire(ctx, o, RowName(3, uint64(n%4)), ModeX, 1); err != nil {
						t.Error(err)
						return
					}
					m.ReleaseAll(o)
					commits.Add(1)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(stop)
		detWG.Wait()
		return float64(workers*iters) / elapsed.Seconds()
	}

	const attempts = 5
	var best float64
	for a := 0; a < attempts; a++ {
		off := run(false)
		on := run(true)
		ratio := on / off
		if ratio > best {
			best = ratio
		}
		if best >= 0.90 {
			return
		}
	}
	t.Fatalf("detector-on throughput stuck at %.0f%% of detector-off (bound 90%%) across %d attempts",
		best*100, attempts)
}
