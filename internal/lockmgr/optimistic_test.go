package lockmgr

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// publishTable latches in one IS grant on a table name, which publishes
// its header (table granularity publishes at the first settle), then
// releases it so the header sits quiescent and admitting.
func publishTable(t *testing.T, m *Manager, app *App, name Name) {
	t.Helper()
	o := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o, name, ModeIS, 1), "publishing IS")
	m.ReleaseAll(o)
}

// --- Unit tests: token issue, validation, no-op release ---------------------

func TestOptimisticTokenBasics(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	name := TableName(11)
	publishTable(t, m, app, name)

	hits0, fails0 := m.OptimisticHits(), m.OptimisticFailures()
	tok, ok := m.TryOptimisticRead(name, ModeS)
	if !ok || !tok.Valid() {
		t.Fatal("optimistic S read refused on a quiescent published header")
	}
	if got := m.OptimisticHits(); got != hits0+1 {
		t.Fatalf("optimistic hits = %d, want %d", got, hits0+1)
	}

	// A token is not a lock: an X request from another owner must be
	// granted immediately — no holder count was incremented, so there is
	// nothing to wait for. (This is exactly the "release is a no-op"
	// property: there is nothing to decrement either.)
	ox := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(ox, name, ModeX, 1), "X past an outstanding token")

	// ...and that X invalidates the token.
	if m.ValidateOptimistic(tok) {
		t.Fatal("token validated across a conflicting X grant")
	}
	if got := m.OptimisticFailures(); got != fails0+1 {
		t.Fatalf("optimistic failures = %d, want %d", got, fails0+1)
	}
	m.ReleaseAll(ox)

	// A fresh token over a quiet window validates, and validating it
	// changes nothing — CheckInvariants still balances and a second
	// validation still passes.
	tok2, ok := m.TryOptimisticRead(name, ModeS)
	if !ok {
		t.Fatal("optimistic S read refused after the header quiesced")
	}
	if !m.ValidateOptimistic(tok2) {
		t.Fatal("token failed over a quiet window")
	}
	if !m.ValidateOptimistic(tok2) {
		t.Fatal("validation must be repeatable (no state consumed)")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The zero token never validates.
	if m.ValidateOptimistic(OptToken{}) {
		t.Fatal("zero token validated")
	}
}

func TestOptimisticMissCases(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()

	// Unpublished name: no token.
	if _, ok := m.TryOptimisticRead(RowName(1, 99), ModeS); ok {
		t.Fatal("token issued for an unpublished name")
	}

	name := TableName(21)
	publishTable(t, m, app, name)

	// Non-read modes: no token.
	for _, mode := range []Mode{ModeIX, ModeU, ModeX, ModeSIX, ModeNone} {
		if _, ok := m.TryOptimisticRead(name, mode); ok {
			t.Fatalf("token issued for mode %v", mode)
		}
	}

	// Fenced header (X held): no token in either read mode.
	ox := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(ox, name, ModeX, 1), "fencing X")
	if _, ok := m.TryOptimisticRead(name, ModeS); ok {
		t.Fatal("S token issued under a granted X")
	}
	if _, ok := m.TryOptimisticRead(name, ModeIS); ok {
		t.Fatal("IS token issued under a granted X")
	}
	m.ReleaseAll(ox)

	// IX holder: S must be refused (S–IX conflict), IS admitted.
	oix := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(oix, name, ModeIX, 1), "IX holder")
	if _, ok := m.TryOptimisticRead(name, ModeS); ok {
		t.Fatal("S token issued alongside a granted IX")
	}
	tok, ok := m.TryOptimisticRead(name, ModeIS)
	if !ok {
		t.Fatal("IS token refused alongside a compatible IX")
	}
	if !m.ValidateOptimistic(tok) {
		t.Fatal("IS token failed with only compatible traffic")
	}
	m.ReleaseAll(oix)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOptimisticInvalidatedByFastIX pins the one invalidating transition
// that bypasses seal/settle: a fast-path CAS admission of IX must bump the
// reader epoch itself, or an S token spanning the IX's lifetime would
// validate falsely.
func TestOptimisticInvalidatedByFastIX(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	name := TableName(31)
	publishTable(t, m, app, name)

	tok, ok := m.TryOptimisticRead(name, ModeS)
	if !ok {
		t.Fatal("token refused on quiescent header")
	}

	// Fast IX admission (grant-word CAS, no latch, no seal/settle)…
	oix := m.NewOwner(app)
	hits0 := m.FastPathHits()
	mustGrant(t, m.AcquireAsync(oix, name, ModeIX, 1), "fast IX")
	if m.FastPathHits() != hits0+1 {
		t.Fatal("IX was not admitted by the fast path; test setup broken")
	}
	// …then fast release, restoring a bit-identical *count* state.
	if err := m.Release(oix, name); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(oix)

	if m.ValidateOptimistic(tok) {
		t.Fatal("S token validated across a fast-path IX admission window")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Seq wraparound / ABA ---------------------------------------------------

// TestOptimisticSeqWraparound forces more than 2048 settle transitions
// inside one optimistic read window. The packed word's 11-bit settle seq
// wraps back to a bit-identical word — an 11-bit validator would ABA and
// accept — but the 64-bit epoch still differs, so the reader must fall
// back.
func TestOptimisticSeqWraparound(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	name := TableName(41)
	publishTable(t, m, app, name)

	h := m.shardFor(name).table[name]
	if h == nil || !h.published {
		t.Fatal("header not published")
	}

	tok, ok := m.TryOptimisticRead(name, ModeS)
	if !ok {
		t.Fatal("token refused on quiescent header")
	}
	w0 := h.word.Load()
	e0 := h.epoch.Load()

	// Each X acquire is one bumping settle (the grant fences the word); the
	// release settles back to an open empty word, which by design does not
	// bump (reopening invalidates nobody the grant didn't already). 2048
	// pairs are exactly 2048 epoch bumps, wrapping the 11-bit seq to its
	// starting value.
	o := m.NewOwner(app)
	ctx := context.Background()
	for i := 0; i < 2048; i++ {
		if err := m.Acquire(ctx, o, name, ModeX, 1); err != nil {
			t.Fatal(err)
		}
		if err := m.Release(o, name); err != nil {
			t.Fatal(err)
		}
	}
	m.FinishOwner(o)

	e1 := h.epoch.Load()
	if e1-e0 != 2048 {
		t.Fatalf("epoch advanced by %d, want exactly 2048 (test must wrap the 11-bit seq precisely)", e1-e0)
	}
	if w1 := h.word.Load(); w1 != w0 {
		t.Fatalf("grant word %#x differs from original %#x — the ABA this test needs did not occur", w1, w0)
	}
	// The word is bit-identical, the window was storm-free at both ends —
	// only the 64-bit epoch knows 2048 transitions happened.
	if m.ValidateOptimistic(tok) {
		t.Fatal("token validated across a wrapped settle seq (11-bit ABA)")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInvariantsCatchesEpochDesync corrupts the epoch under the
// world-stopped check and asserts the cross-check trips: the word-seq ≡
// epoch identity is load-bearing for wraparound detection.
func TestCheckInvariantsCatchesEpochDesync(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	name := TableName(51)
	publishTable(t, m, app, name)

	h := m.shardFor(name).table[name]
	h.epoch.Add(1) // desync: no matching word-seq bump
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("CheckInvariants accepted a desynced epoch")
	}
	h.epoch.Add(^uint64(0)) // restore
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Torn-read storm (-race) ------------------------------------------------

// TestOptimisticTornRead is the seqlock correctness storm: writers update a
// two-word payload strictly under an X lock on the guarding header while
// optimistic readers snapshot the payload and validate. A validated token
// asserts the whole read window was write-free, so the two payload halves
// must agree; observing a half-updated ("torn") pair with a validated
// token is the bug this tier must never exhibit. Run under -race this also
// proves the protocol's happens-before edges.
func TestOptimisticTornRead(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	name := TableName(61)
	publishTable(t, m, app, name)

	const (
		writers   = 4
		readers   = 4
		writeIter = 400
	)
	var payloadA, payloadB atomic.Uint64 // atomics: readers race by design
	var validated, torn, invalidated atomic.Int64
	var done atomic.Bool
	var writerWg, readerWg sync.WaitGroup

	ctx := context.Background()
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			o := m.NewOwner(app)
			defer m.FinishOwner(o)
			for i := 0; i < writeIter; i++ {
				if err := m.Acquire(ctx, o, name, ModeX, 1); err != nil {
					t.Error(err)
					return
				}
				payloadA.Add(1)
				payloadB.Add(1)
				if err := m.Release(o, name); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for !done.Load() {
				tok, ok := m.TryOptimisticRead(name, ModeS)
				if !ok {
					continue // fenced by a writer; the locking tiers would serve this read
				}
				a := payloadA.Load()
				b := payloadB.Load()
				if m.ValidateOptimistic(tok) {
					validated.Add(1)
					if a != b {
						torn.Add(1)
					}
				} else {
					invalidated.Add(1)
				}
			}
		}()
	}

	// Readers run against live writers for the whole storm; once the
	// writers drain, the header quiesces and reads must start validating —
	// so the test exercises both verdicts before stopping the readers.
	writerWg.Wait()
	for i := 0; i < 1_000_000 && validated.Load() == 0; i++ {
		runtime.Gosched()
	}
	done.Store(true)
	readerWg.Wait()

	if validated.Load() == 0 {
		t.Fatal("no read validated even after the writers drained")
	}
	if got := torn.Load(); got != 0 {
		t.Fatalf("%d validated reads observed a torn payload", got)
	}
	if payloadA.Load() != writers*writeIter || payloadB.Load() != writers*writeIter {
		t.Fatalf("payload = (%d,%d), want (%d,%d)", payloadA.Load(), payloadB.Load(), writers*writeIter, writers*writeIter)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("validated=%d invalidated=%d", validated.Load(), invalidated.Load())
}
