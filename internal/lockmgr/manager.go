// Package lockmgr implements a DB2-style multigranularity lock manager: the
// substrate whose memory consumption the paper's algorithm tunes.
//
// Locks are identified by Name (table or row), requested in the modes of
// mode.go, and stored as lock structures allocated from a memblock.Chain —
// the 128 KB block list of section 2.2. Waiters queue FIFO and are granted
// by posting (section 2.3, Figure 3): when locks are released, the manager
// wakes queued requests strictly in arrival order, so a compatible request
// that arrived behind an incompatible one does not jump the queue.
//
// The manager implements the two lock-escalation triggers the paper tunes
// around:
//
//   - per-application quota (MAXLOCKS / lockPercentPerApplication): a new
//     lock that would push the application above its percentage of the lock
//     memory escalates the application's row locks on its most-locked table
//     into a single table lock;
//   - lock memory exhaustion: an allocation the block chain cannot satisfy
//     first attempts synchronous growth through the GrowSync hook (database
//     overflow memory), then escalates, and only then fails.
//
// Escalation converts the application's existing table intent lock (IS/IX)
// to the supremum of its row-lock modes (S, SIX or X), which may itself have
// to wait for incompatible holders — exactly the concurrency collapse of
// Figures 7 and 8.
package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/memblock"
)

// Errors returned to lock requesters.
var (
	// ErrTimeout means the request waited longer than the lock timeout.
	ErrTimeout = errors.New("lockmgr: lock wait timeout")
	// ErrDeadlock means the request was chosen as a deadlock victim.
	ErrDeadlock = errors.New("lockmgr: deadlock victim")
	// ErrLockMemory means lock memory was exhausted and neither
	// synchronous growth nor escalation could free enough structures.
	ErrLockMemory = errors.New("lockmgr: out of lock memory")
	// ErrQuotaExceeded means the application exceeded
	// lockPercentPerApplication and escalation could not bring it back
	// under the quota.
	ErrQuotaExceeded = errors.New("lockmgr: application lock quota exceeded")
	// ErrCanceled means the request was canceled by its owner.
	ErrCanceled = errors.New("lockmgr: request canceled")
)

// Status is the state of a Pending lock request.
type Status uint8

const (
	// StatusWaiting — queued behind incompatible holders.
	StatusWaiting Status = iota
	// StatusGranted — the lock is held.
	StatusGranted
	// StatusDenied — the request failed; see the error.
	StatusDenied
)

func (s Status) String() string {
	switch s {
	case StatusWaiting:
		return "waiting"
	case StatusGranted:
		return "granted"
	case StatusDenied:
		return "denied"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Pending is the handle for an asynchronous lock request. Done is closed
// when the request leaves the waiting state.
type Pending struct {
	mu     sync.Mutex
	done   chan struct{}
	status Status
	err    error
}

func newPending() *Pending {
	return &Pending{done: make(chan struct{})}
}

// Done returns a channel closed when the request is granted or denied.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Status returns the current state and, for StatusDenied, the reason.
func (p *Pending) Status() (Status, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status, p.err
}

func (p *Pending) complete(st Status, err error) {
	p.mu.Lock()
	if p.status != StatusWaiting {
		p.mu.Unlock()
		return
	}
	p.status = st
	p.err = err
	p.mu.Unlock()
	close(p.done)
}

// QuotaProvider supplies the live lockPercentPerApplication value. The
// manager consults it on every allocation of new lock structures; the
// provider decides whether the refresh period has elapsed (core.QuotaTracker
// implements this policy). A nil provider means "no quota" (100%).
type QuotaProvider interface {
	// QuotaPercent returns the percentage of total lock memory the given
	// application may hold, given the cumulative number of lock-structure
	// requests and the structures currently in use. Most providers ignore
	// appID; the engine's escalation-policy extension biases individual
	// applications that prefer escalation over memory growth.
	QuotaPercent(appID int, structRequests int64, usedStructs int) float64
}

// EscalationPreferrer is an optional extension of QuotaProvider: providers
// implementing it can mark individual applications as preferring lock
// escalation over lock-memory growth (the paper's section 6.1 application
// policies). For such applications the manager escalates at the quota
// rather than growing the lock memory to accommodate them.
type EscalationPreferrer interface {
	PrefersEscalation(appID int) bool
}

func prefersEscalation(q QuotaProvider, appID int) bool {
	p, ok := q.(EscalationPreferrer)
	return ok && p.PrefersEscalation(appID)
}

// EventSink receives notifications of noteworthy lock-manager events for
// diagnostics (the engine forwards them to its trace ring). Methods are
// invoked with the manager latch held: implementations must be fast and
// must not call back into the Manager.
type EventSink interface {
	OnEscalation(appID int, table uint32, to Mode)
	OnDeadlockVictim(appID int, ownerID uint64)
	OnTimeout(appID int)
	OnSyncGrowth(pages int)
	OnDenial(appID int, reason error)
}

// Config configures a Manager.
type Config struct {
	// InitialPages is the starting LOCKLIST size in 4 KB pages.
	InitialPages int
	// Clock drives wait deadlines; nil means clock.Real.
	Clock clock.Clock
	// LockTimeout denies waits older than this at each SweepTimeouts
	// call. Zero disables timeouts.
	LockTimeout time.Duration
	// GrowSync, if non-nil, is called (with the manager latch held) when
	// an allocation fails; it should grant up to needPages of database
	// overflow memory and return the pages granted (0 = none).
	GrowSync func(needPages int) int
	// Quota supplies lockPercentPerApplication; nil disables the quota.
	Quota QuotaProvider
	// Events, if non-nil, receives diagnostic event notifications.
	Events EventSink
}

// App is a connected application, the unit of quota accounting.
type App struct {
	id      int
	structs int // lock structures held; guarded by Manager.mu
}

// ID returns the application's identifier.
func (a *App) ID() int { return a.id }

// Owner is a lock requester — one transaction. All of an owner's locks are
// released together by ReleaseAll at commit or abort (strict two-phase
// locking).
type Owner struct {
	id       uint64
	app      *App
	held     map[Name]*request
	byTable  map[uint32]*ownerTable
	released bool // set by ReleaseAll; further requests are rejected
}

// ID returns the owner (transaction) identifier.
func (o *Owner) ID() uint64 { return o.id }

// App returns the owning application.
func (o *Owner) App() *App { return o.app }

// ownerTable tracks one owner's locks on one table, for coverage checks and
// escalation victim selection.
type ownerTable struct {
	tableReq   *request
	rows       map[uint64]*request
	rowStructs int
}

// request is one (owner, name) lock request: granted or waiting.
type request struct {
	owner  *Owner
	header *lockHeader
	name   Name

	mode    Mode // granted mode, or requested mode while waiting
	convert Mode // conversion target while a granted request waits to convert

	weight int
	handle memblock.Handle

	granted    bool
	converting bool
	parked     bool // created but not yet started (escalation in progress)

	pending  *Pending
	deadline time.Time
	onGrant  func(m *Manager)            // run under m.mu after grant
	onDeny   func(m *Manager, err error) // run under m.mu after denial
}

// effectiveMode is the mode the request currently holds (for granted
// requests) or requests.
func (r *request) effectiveMode() Mode {
	if r.converting {
		return r.convert
	}
	return r.mode
}

// lockHeader is the lock table entry for one Name.
type lockHeader struct {
	name       Name
	granted    map[*Owner]*request
	groupMode  Mode
	converters []*request // FIFO, priority over waiters
	waiters    []*request // FIFO
}

func (h *lockHeader) recomputeGroupMode() {
	h.groupMode = ModeNone
	for _, g := range h.granted {
		h.groupMode = Supremum(h.groupMode, g.mode)
	}
}

func (h *lockHeader) empty() bool {
	return len(h.granted) == 0 && len(h.converters) == 0 && len(h.waiters) == 0
}

// Stats is a snapshot of the manager's event counters.
type Stats struct {
	Grants               int64
	Waits                int64
	Timeouts             int64
	Deadlocks            int64
	Escalations          int64
	ExclusiveEscalations int64
	MemoryDenials        int64
	QuotaDenials         int64
	SyncGrowths          int64
	SyncGrowthPages      int64
}

// Manager is the lock manager. All public methods are safe for concurrent
// use.
type Manager struct {
	mu    sync.Mutex
	chain *memblock.Chain
	clk   clock.Clock
	cfg   Config

	table   map[Name]*lockHeader
	apps    map[int]*App
	owners  map[uint64]*Owner
	waiting map[*request]struct{}

	nextApp   int
	nextOwner uint64

	grantQueue []*request
	draining   bool

	stats Stats
}

// New creates a lock manager with the given configuration.
func New(cfg Config) *Manager {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &Manager{
		chain:   memblock.New(cfg.InitialPages),
		clk:     cfg.Clock,
		cfg:     cfg,
		table:   make(map[Name]*lockHeader),
		apps:    make(map[int]*App),
		owners:  make(map[uint64]*Owner),
		waiting: make(map[*request]struct{}),
	}
}

// RegisterApp adds a connected application.
func (m *Manager) RegisterApp() *App {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextApp++
	a := &App{id: m.nextApp}
	m.apps[a.id] = a
	return a
}

// UnregisterApp removes an application. The caller must have released all
// of its owners' locks first.
func (m *Manager) UnregisterApp(a *App) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.structs != 0 {
		return fmt.Errorf("lockmgr: app %d still holds %d lock structures", a.id, a.structs)
	}
	delete(m.apps, a.id)
	return nil
}

// NumApps returns the number of connected applications — the
// num_applications input of minLockMemory.
func (m *Manager) NumApps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.apps)
}

// NewOwner creates a lock owner (transaction) for an application.
func (m *Manager) NewOwner(a *App) *Owner {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextOwner++
	o := &Owner{
		id:      m.nextOwner,
		app:     a,
		held:    make(map[Name]*request),
		byTable: make(map[uint32]*ownerTable),
	}
	m.owners[o.id] = o
	return o
}

// AcquireAsync requests a lock without blocking. weight is the number of
// lock structures the request consumes (1 for ordinary locks; bulk scans may
// lock contiguous row chunks that account as multiple structures). The
// returned Pending may already be complete.
func (m *Manager) AcquireAsync(o *Owner, name Name, mode Mode, weight int) *Pending {
	p := newPending()
	if !mode.Valid() || weight < 1 {
		p.complete(StatusDenied, fmt.Errorf("lockmgr: invalid request mode=%v weight=%d", mode, weight))
		return p
	}
	if name.Gran == GranTable && weight != 1 {
		p.complete(StatusDenied, errors.New("lockmgr: table locks have weight 1"))
		return p
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	req := &request{
		owner:   o,
		name:    name,
		mode:    mode,
		weight:  weight,
		pending: p,
	}
	m.startRequest(req)
	m.drainGrants()
	return p
}

// Acquire requests a lock and blocks until grant, denial, or ctx
// cancellation. On cancellation the request is withdrawn.
func (m *Manager) Acquire(ctx context.Context, o *Owner, name Name, mode Mode, weight int) error {
	p := m.AcquireAsync(o, name, mode, weight)
	select {
	case <-p.Done():
		_, err := p.Status()
		return err
	case <-ctx.Done():
		m.cancel(o, name)
		// The cancel may have raced with a grant; report the final state.
		if st, err := p.Status(); st == StatusDenied {
			return err
		}
		<-p.Done()
		_, err := p.Status()
		return err
	}
}

// startRequest runs the admission pipeline for a new or parked request:
// coverage, conversion, quota, allocation, grant-or-enqueue. Caller holds
// m.mu.
func (m *Manager) startRequest(req *request) {
	o, name := req.owner, req.name
	req.parked = false

	if o.released {
		// Use-after-release: the transaction already committed or
		// aborted. Granting would leak a lock with no one to free it.
		req.pending.complete(StatusDenied,
			fmt.Errorf("lockmgr: owner %d already released", o.id))
		return
	}

	// Coverage: a table lock the owner already holds may subsume a row
	// request (notably right after this owner escalated).
	if name.Gran == GranRow {
		if ot := o.byTable[name.Table]; ot != nil && ot.tableReq != nil && ot.tableReq.granted &&
			!ot.tableReq.converting && covers(ot.tableReq.mode, req.mode) {
			m.grant(req)
			return
		}
	}

	// Conversion: the owner already holds this lock.
	if cur, ok := o.held[name]; ok && cur.granted {
		target := Supremum(cur.mode, req.mode)
		if target == cur.mode {
			m.grant(req) // already strong enough; nothing to do
			return
		}
		if cur.converting {
			// One conversion at a time per lock keeps the protocol
			// simple; a second upgrade while one is in flight is a
			// transaction-layer bug.
			req.pending.complete(StatusDenied,
				fmt.Errorf("lockmgr: %v already converting", name))
			return
		}
		m.startConversion(cur, target, req.pending, req.onGrant, req.onDeny)
		return
	}

	// New lock: enforce the application quota, then allocate structures.
	if !m.admitStructs(req) {
		return // admitStructs completed the pending (denied or parked)
	}

	h := m.headerFor(name)
	if len(h.converters) == 0 && len(h.waiters) == 0 && Compatible(req.mode, h.groupMode) {
		m.installGranted(h, req)
		m.grant(req)
		return
	}
	req.deadline = m.deadline()
	h.waiters = append(h.waiters, req)
	req.header = h
	m.waiting[req] = struct{}{}
	m.stats.Waits++
}

// startConversion upgrades a granted request to target mode, waiting in the
// converter queue if incompatible holders exist. extra pending/handlers are
// attached to the conversion outcome.
func (m *Manager) startConversion(cur *request, target Mode, p *Pending, onGrant func(*Manager), onDeny func(*Manager, error)) {
	h := cur.header
	cur.converting = true
	cur.convert = target
	cur.pending = p
	cur.onGrant = onGrant
	cur.onDeny = onDeny
	if m.canConvert(cur, target) {
		m.finishConversion(cur)
		return
	}
	cur.deadline = m.deadline()
	h.converters = append(h.converters, cur)
	m.waiting[cur] = struct{}{}
	m.stats.Waits++
}

// canConvert reports whether cur can convert to target given the other
// granted holders. Caller holds m.mu.
func (m *Manager) canConvert(cur *request, target Mode) bool {
	for _, g := range cur.header.granted {
		if g != cur && !Compatible(target, g.mode) {
			return false
		}
	}
	return true
}

func (m *Manager) finishConversion(cur *request) {
	cur.mode = cur.convert
	cur.converting = false
	cur.convert = ModeNone
	cur.header.recomputeGroupMode()
	m.grant(cur)
}

// admitStructs enforces the per-application quota and allocates weight
// structures for req, escalating or growing synchronously as needed. It
// returns true when the request may proceed to the lock table. On false the
// pending has been completed or the request parked behind an escalation.
// Caller holds m.mu.
func (m *Manager) admitStructs(req *request) bool {
	app := req.owner.app

	if over, quota := m.overQuota(app, req.weight); over {
		// MAXLOCKS trigger. The algorithm's goal is "to avoid lock
		// escalation at all times by adjusting the lock memory", so
		// before escalating, grow the lock memory until the quota —
		// a percentage of total capacity — accommodates the holder.
		// Applications that declared a preference for escalation skip
		// the growth and escalate directly.
		if m.cfg.GrowSync != nil && quota > 0 && !prefersEscalation(m.cfg.Quota, app.id) {
			needCap := int(float64(app.structs+req.weight)*100/quota) + 1
			needBlocks := (needCap - m.chain.Capacity() + memblock.StructsPerBlock - 1) / memblock.StructsPerBlock
			if needBlocks > 0 {
				if granted := m.cfg.GrowSync(needBlocks * memblock.BlockPages); granted > 0 {
					m.chain.Grow(granted)
					m.stats.SyncGrowths++
					m.stats.SyncGrowthPages += int64(granted)
					if m.cfg.Events != nil {
						m.cfg.Events.OnSyncGrowth(granted)
					}
				}
			}
			over, quota = m.overQuota(app, req.weight)
		}
		if over {
			// Growth is capped out (LMOmax or maxLockMemory):
			// escalate this application's largest table, then retry
			// the request.
			if m.escalate(req.owner, req) {
				return false // parked behind the escalation
			}
			// Nothing to escalate: the request alone exceeds the quota.
			m.stats.QuotaDenials++
			if m.cfg.Events != nil {
				m.cfg.Events.OnDenial(app.id, ErrQuotaExceeded)
			}
			req.pending.complete(StatusDenied, fmt.Errorf("%w: %d structs held + %d requested > %.1f%% of %d",
				ErrQuotaExceeded, app.structs, req.weight, quota, m.chain.Capacity()))
			return false
		}
	}

	h, err := m.chain.Alloc(req.weight)
	if err == nil {
		req.handle = h
		app.structs += req.weight
		return true
	}

	// Memory exhausted: grow synchronously from overflow memory. Requests
	// are whole 128 KB blocks, at least one, matching the allocation unit.
	if m.cfg.GrowSync != nil {
		needStructs := req.weight - m.chain.FreeStructs()
		needBlocks := (needStructs + memblock.StructsPerBlock - 1) / memblock.StructsPerBlock
		needPages := needBlocks * memblock.BlockPages
		if granted := m.cfg.GrowSync(needPages); granted > 0 {
			m.chain.Grow(granted)
			m.stats.SyncGrowths++
			m.stats.SyncGrowthPages += int64(granted)
			if m.cfg.Events != nil {
				m.cfg.Events.OnSyncGrowth(granted)
			}
			if h, err := m.chain.Alloc(req.weight); err == nil {
				req.handle = h
				app.structs += req.weight
				return true
			}
		}
	}

	// Still constrained: escalate to free structures.
	if m.escalate(req.owner, req) {
		return false // parked; retried after the escalation completes
	}

	m.stats.MemoryDenials++
	if m.cfg.Events != nil {
		m.cfg.Events.OnDenial(app.id, ErrLockMemory)
	}
	req.pending.complete(StatusDenied, ErrLockMemory)
	return false
}

// overQuota reports whether adding weight structures would put the app above
// lockPercentPerApplication, and returns the quota used.
func (m *Manager) overQuota(app *App, weight int) (bool, float64) {
	if m.cfg.Quota == nil {
		return false, 100
	}
	quota := m.cfg.Quota.QuotaPercent(app.id, m.chain.Requests(), m.chain.Used())
	limit := quota / 100 * float64(m.chain.Capacity())
	return float64(app.structs+weight) > limit, quota
}

// headerFor returns (creating if necessary) the lock table entry for name.
func (m *Manager) headerFor(name Name) *lockHeader {
	h, ok := m.table[name]
	if !ok {
		h = &lockHeader{name: name, granted: make(map[*Owner]*request)}
		m.table[name] = h
	}
	return h
}

// installGranted records req as a granted holder of h.
func (m *Manager) installGranted(h *lockHeader, req *request) {
	req.header = h
	req.granted = true
	h.granted[req.owner] = req
	h.groupMode = Supremum(h.groupMode, req.mode)
	m.indexOwner(req)
}

// indexOwner wires req into its owner's held/byTable maps.
func (m *Manager) indexOwner(req *request) {
	o := req.owner
	o.held[req.name] = req
	ot := o.byTable[req.name.Table]
	if ot == nil {
		ot = &ownerTable{rows: make(map[uint64]*request)}
		o.byTable[req.name.Table] = ot
	}
	if req.name.Gran == GranTable {
		ot.tableReq = req
	} else {
		ot.rows[req.name.Row] = req
		ot.rowStructs += req.weight
	}
}

// grant completes req's pending as granted and queues its continuation (if
// any) for drainGrants. Covered and no-op grants hold no structures and are
// not registered in the lock table; they pass through here all the same.
func (m *Manager) grant(req *request) {
	m.stats.Grants++
	p := req.pending
	req.pending = nil
	req.onDeny = nil
	if p != nil {
		p.complete(StatusGranted, nil)
	}
	if req.onGrant != nil {
		m.grantQueue = append(m.grantQueue, req)
	}
}

// drainGrants runs deferred onGrant continuations (escalation steps)
// iteratively to avoid recursion through post(). Caller holds m.mu.
func (m *Manager) drainGrants() {
	if m.draining {
		return
	}
	m.draining = true
	for len(m.grantQueue) > 0 {
		req := m.grantQueue[0]
		m.grantQueue = m.grantQueue[1:]
		og := req.onGrant
		req.onGrant = nil
		if og != nil {
			og(m)
		}
	}
	m.draining = false
}

// deny completes a waiting request with err, reverting conversions and
// freeing structures of never-granted requests. Caller holds m.mu.
func (m *Manager) deny(req *request, err error) {
	delete(m.waiting, req)
	if req.granted && !req.converting {
		// Defensive: the request was granted between being selected as
		// a victim and this call; there is nothing left to deny.
		return
	}
	h := req.header
	if req.converting {
		// Failed conversion: drop back to the original granted mode.
		for i, c := range h.converters {
			if c == req {
				h.converters = append(h.converters[:i], h.converters[i+1:]...)
				break
			}
		}
		req.converting = false
		req.convert = ModeNone
		// The dead converter may have been the head of the priority
		// queue, blocking requests that are now grantable.
		m.post(h)
	} else if h != nil {
		for i, w := range h.waiters {
			if w == req {
				h.waiters = append(h.waiters[:i], h.waiters[i+1:]...)
				break
			}
		}
		m.freeRequestStructs(req)
		// Likewise: an incompatible head waiter's removal can unblock
		// the requests queued behind it.
		m.post(h)
		m.maybeDeleteHeader(h)
	}
	p := req.pending
	req.pending = nil
	od := req.onDeny
	req.onGrant, req.onDeny = nil, nil
	if p != nil {
		p.complete(StatusDenied, err)
	}
	if od != nil {
		od(m, err)
	}
}

func (m *Manager) freeRequestStructs(req *request) {
	if req.handle.Structs() > 0 {
		m.chain.Free(req.handle)
		req.owner.app.structs -= req.weight
		req.handle = memblock.Handle{}
	}
}

func (m *Manager) maybeDeleteHeader(h *lockHeader) {
	if h != nil && h.empty() {
		delete(m.table, h.name)
	}
}

// post wakes queued requests on h after a release or conversion, in strict
// FIFO order: converters first, then waiters, stopping at the first
// incompatible request. Caller holds m.mu.
func (m *Manager) post(h *lockHeader) {
	for len(h.converters) > 0 {
		c := h.converters[0]
		if !m.canConvert(c, c.convert) {
			return // converters have priority; nothing else may jump
		}
		h.converters = h.converters[1:]
		delete(m.waiting, c)
		m.finishConversion(c)
	}
	for len(h.waiters) > 0 {
		w := h.waiters[0]
		if !Compatible(w.mode, h.groupMode) {
			return
		}
		h.waiters = h.waiters[1:]
		delete(m.waiting, w)
		m.installGranted(h, w)
		m.grant(w)
	}
}

// releaseGranted removes a granted request from the lock table, frees its
// structures, and posts the queue. Caller holds m.mu.
func (m *Manager) releaseGranted(req *request) {
	h := req.header
	o := req.owner
	delete(h.granted, o)
	delete(o.held, req.name)
	if ot := o.byTable[req.name.Table]; ot != nil {
		if req.name.Gran == GranTable {
			ot.tableReq = nil
		} else {
			delete(ot.rows, req.name.Row)
			ot.rowStructs -= req.weight
		}
		if ot.tableReq == nil && len(ot.rows) == 0 {
			delete(o.byTable, req.name.Table)
		}
	}
	req.granted = false
	m.freeRequestStructs(req)
	h.recomputeGroupMode()
	m.post(h)
	m.maybeDeleteHeader(h)
}

// Release drops one granted lock, or cancels a waiting request for name.
// Strict 2PL callers use ReleaseAll instead; Release supports weaker
// isolation (e.g. cursor-stability read locks released at fetch).
func (m *Manager) Release(o *Owner, name Name) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	req, ok := o.held[name]
	if !ok {
		return fmt.Errorf("lockmgr: owner %d does not hold %v", o.id, name)
	}
	if req.converting {
		m.deny(req, ErrCanceled)
	}
	m.releaseGranted(req)
	m.drainGrants()
	return nil
}

// cancel withdraws a waiting request for name — a queued new request, a
// parked request, or an in-flight conversion (which reverts to its granted
// mode).
func (m *Manager) cancel(o *Owner, name Name) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for req := range m.waiting {
		if req.owner == o && req.name == name {
			m.deny(req, ErrCanceled)
			break
		}
	}
	m.drainGrants()
}

// ReleaseAll releases every lock held or requested by the owner and removes
// the owner. Called at transaction commit or abort.
func (m *Manager) ReleaseAll(o *Owner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Cancel outstanding waits first (abort path).
	for req := range m.waiting {
		if req.owner == o {
			m.deny(req, ErrCanceled)
		}
	}
	// Release row locks before table locks so coverage bookkeeping stays
	// consistent, then everything else.
	for _, req := range snapshotHeld(o, GranRow) {
		m.releaseGranted(req)
	}
	for _, req := range snapshotHeld(o, GranTable) {
		m.releaseGranted(req)
	}
	o.released = true
	delete(m.owners, o.id)
	m.drainGrants()
}

func snapshotHeld(o *Owner, g Granularity) []*request {
	out := make([]*request, 0, len(o.held))
	for _, r := range o.held {
		if r.name.Gran == g {
			out = append(out, r)
		}
	}
	return out
}

// deadline computes the wait deadline for a new waiter.
func (m *Manager) deadline() time.Time {
	if m.cfg.LockTimeout <= 0 {
		return time.Time{}
	}
	return m.clk.Now().Add(m.cfg.LockTimeout)
}

// SweepTimeouts denies waiting requests whose deadline has passed and
// returns how many were denied. The simulation calls this each tick; a
// real-time deployment calls it from a ticker goroutine.
func (m *Manager) SweepTimeouts() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.LockTimeout <= 0 {
		return 0
	}
	now := m.clk.Now()
	var victims []*request
	for req := range m.waiting {
		if !req.deadline.IsZero() && now.After(req.deadline) {
			victims = append(victims, req)
		}
	}
	denied := 0
	for _, req := range victims {
		// An earlier denial's queue post may have granted this one.
		if req.pending == nil {
			continue
		}
		if st, _ := req.pending.Status(); st != StatusWaiting {
			continue
		}
		m.stats.Timeouts++
		if m.cfg.Events != nil {
			m.cfg.Events.OnTimeout(req.owner.app.id)
		}
		m.deny(req, ErrTimeout)
		denied++
	}
	m.drainGrants()
	return denied
}

// Resize grows or shrinks the lock memory toward targetPages. Growth is
// exact (whole blocks); shrinking is best-effort, limited to entirely free
// blocks, per the section 2.2 protocol. It returns the new size in pages.
func (m *Manager) Resize(targetPages int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.chain.Pages()
	switch {
	case targetPages > cur:
		m.chain.Grow(targetPages - cur)
	case targetPages < cur:
		m.chain.ShrinkBest(cur - targetPages)
	}
	return m.chain.Pages()
}

// GrowPages grows the lock memory by exactly the given pages (rounded up to
// blocks); used when synchronous growth is managed externally.
func (m *Manager) GrowPages(pages int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.chain.Grow(pages)
}

// Pages returns the current lock memory size in pages.
func (m *Manager) Pages() int { return m.chain.Pages() }

// UsedStructs returns the lock structures in use.
func (m *Manager) UsedStructs() int { return m.chain.Used() }

// CapacityStructs returns the lock structures the allocation can hold.
func (m *Manager) CapacityStructs() int { return m.chain.Capacity() }

// FreeFraction returns the fraction of lock structures that are free.
func (m *Manager) FreeFraction() float64 { return m.chain.FreeFraction() }

// StructRequests returns the cumulative lock-structure request count.
func (m *Manager) StructRequests() int64 { return m.chain.Requests() }

// UsedPages returns lock-structure usage in whole pages.
func (m *Manager) UsedPages() int { return m.chain.UsedPages() }

// AppStructs returns the lock structures currently held by an application.
func (m *Manager) AppStructs(a *App) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return a.structs
}

// Stats returns a snapshot of the event counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// HeldMode returns the mode the owner currently holds on name, or ModeNone.
func (m *Manager) HeldMode(o *Owner, name Name) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if req, ok := o.held[name]; ok && req.granted {
		return req.mode
	}
	return ModeNone
}
