// Package lockmgr implements a DB2-style multigranularity lock manager: the
// substrate whose memory consumption the paper's algorithm tunes.
//
// Locks are identified by Name (table or row), requested in the modes of
// mode.go, and stored as lock structures allocated from a memblock.Chain —
// the 128 KB block list of section 2.2. Waiters queue FIFO and are granted
// by posting (section 2.3, Figure 3): when locks are released, the manager
// wakes queued requests strictly in arrival order, so a compatible request
// that arrived behind an incompatible one does not jump the queue.
//
// The manager implements the two lock-escalation triggers the paper tunes
// around:
//
//   - per-application quota (MAXLOCKS / lockPercentPerApplication): a new
//     lock that would push the application above its percentage of the lock
//     memory escalates the application's row locks on its most-locked table
//     into a single table lock;
//   - lock memory exhaustion: an allocation the block chain cannot satisfy
//     first attempts synchronous growth through the GrowSync hook (database
//     overflow memory), then escalates, and only then fails.
//
// Escalation converts the application's existing table intent lock (IS/IX)
// to the supremum of its row-lock modes (S, SIX or X), which may itself have
// to wait for incompatible holders — exactly the concurrency collapse of
// Figures 7 and 8.
//
// # Concurrency: the striped lock table
//
// The lock table is striped across a power-of-two array of shards. A Name
// hashes to exactly one shard, which owns that name's lock header, its FIFO
// grant queues, its slice of the waiting set, and a lease pool of lock
// structures batched out of the shared block chain. The per-lock FIFO
// posting discipline is untouched by sharding: a lock's entire queue lives
// in one shard, under one latch.
//
// Latching protocol, innermost last:
//
//  1. shard latches, always in ascending index order. Fast-path operations
//     (Acquire, Release, conversions) take exactly one; the few surviving
//     cross-shard operations (the admission pipeline of last resort,
//     invariant checks) take all of them via runGlobal. Multi-shard readers
//     that need a simultaneous view of a handful of shards (deadlock-cycle
//     re-validation) latch only those shards, still in ascending order, so
//     they cannot deadlock against runGlobal or each other.
//  2. Owner.mu — leaf lock guarding one owner's held/byTable indexes and
//     the granted/converting/mode fields of its requests. Writers hold
//     (home-shard latch + Owner.mu); readers hold either Owner.mu (the
//     cross-shard coverage check) or the relevant shard latches. Owner.mu
//     is never held while acquiring a shard latch.
//  3. Leaves of the leaves: chain.mu (inside pool refills and global
//     allocation), contMu (continuation queue), ownersMu (app/owner
//     registry), and the Pending mutex. None of these is ever held while
//     taking a latch above it.
//
// Admission runs on a fast path that touches only the home shard: quota
// check against a cached lockPercentPerApplication (refreshed at most once
// per quotaRefreshStride lock-structure requests, so the provider's mutex
// stays off the per-acquire path), then an allocation from the shard's
// lease pool. If either step cannot be satisfied locally the fast path
// backs out — having mutated nothing — and the request restarts in global
// mode, which holds every shard latch and runs the original single-latch
// admission logic verbatim: quota growth (with a fresh quota read), pool
// repatriation (flushing all shard leases back to the chain before
// declaring memory exhausted), synchronous growth, then escalation.
//
// # The concurrent control plane
//
// Control-plane work — deadlock detection, statistics, introspection,
// escalation continuations — deliberately stays off the all-shard latch in
// steady state, so observing and policing the lock table does not
// periodically freeze the fast path it polices:
//
//   - DetectDeadlocks exports wait-for edges one shard latch at a time,
//     finds cycles latch-free, and re-validates each candidate cycle under
//     only the latches of the shards hosting that cycle's waiting requests
//     (see deadlock.go for the no-false-victims argument).
//   - Snapshot-style reads (Stats, ShardStatsSnapshot, LatchWaits, the
//     memory accessors) come from atomic counters and per-shard
//     sequence-stamped summaries; they take no latches at all.
//   - Escalation continuations (free the escalated rows, retry the parked
//     request) are enqueued anywhere and drained with no latches held; each
//     continuation re-latches the shards it touches and re-validates its
//     targets under those latches, so a release, grant, or timeout racing
//     the drain is observed rather than clobbered (see escalate.go).
//
// runGlobal survives for exactly two jobs: the admission pipeline of last
// resort (quota growth, escalation, and synchronous growth need a
// consistent view of every lease pool and the chain) and CheckInvariants
// (whose cross-shard accounting only balances when the table is quiescent).
// Every runGlobal records its all-shard hold time in a max gauge
// (GlobalHoldMax — the fast-path stall ceiling) and bumps a run counter
// (GlobalRuns) that tests use to prove steady-state detection and
// observation never touch the global path.
package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/latch"
	"repro/internal/memblock"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Errors returned to lock requesters.
var (
	// ErrTimeout means the request waited longer than the lock timeout.
	ErrTimeout = errors.New("lockmgr: lock wait timeout")
	// ErrDeadlock means the request was chosen as a deadlock victim.
	ErrDeadlock = errors.New("lockmgr: deadlock victim")
	// ErrLockMemory means lock memory was exhausted and neither
	// synchronous growth nor escalation could free enough structures.
	ErrLockMemory = errors.New("lockmgr: out of lock memory")
	// ErrQuotaExceeded means the application exceeded
	// lockPercentPerApplication and escalation could not bring it back
	// under the quota.
	ErrQuotaExceeded = errors.New("lockmgr: application lock quota exceeded")
	// ErrCanceled means the request was canceled by its owner.
	ErrCanceled = errors.New("lockmgr: request canceled")
)

// Status is the state of a Pending lock request.
type Status uint8

const (
	// StatusWaiting — queued behind incompatible holders.
	StatusWaiting Status = iota
	// StatusGranted — the lock is held.
	StatusGranted
	// StatusDenied — the request failed; see the error.
	StatusDenied
)

func (s Status) String() string {
	switch s {
	case StatusWaiting:
		return "waiting"
	case StatusGranted:
		return "granted"
	case StatusDenied:
		return "denied"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Pending is the handle for an asynchronous lock request. Done is closed
// when the request leaves the waiting state. The channel is created lazily
// on the first Done call, so callers that poll Status (the common
// immediate-grant case) never pay for a channel allocation; Status and
// complete are mutex-free on that path.
type Pending struct {
	// status holds a Status value; it transitions from StatusWaiting to a
	// terminal state exactly once. err is written before the terminal
	// store, so a reader that observes a terminal status also observes
	// err (atomics establish happens-before).
	status  atomic.Int32
	err     error
	hasDone atomic.Bool // true once done has been created

	dmu    sync.Mutex // guards done and closed
	done   chan struct{}
	closed bool
}

func newPending() *Pending {
	return &Pending{}
}

// Done returns a channel closed when the request is granted or denied.
func (p *Pending) Done() <-chan struct{} {
	p.dmu.Lock()
	defer p.dmu.Unlock()
	if p.done == nil {
		p.done = make(chan struct{})
		p.hasDone.Store(true)
		if Status(p.status.Load()) != StatusWaiting && !p.closed {
			close(p.done)
			p.closed = true
		}
	}
	return p.done
}

// Status returns the current state and, for StatusDenied, the reason.
func (p *Pending) Status() (Status, error) {
	st := Status(p.status.Load())
	if st == StatusWaiting {
		return StatusWaiting, nil
	}
	return st, p.err
}

// complete moves p to a terminal state. Calls for one Pending are
// serialized by its request's home shard latch (or happen before the
// request is ever published), so the waiting-state check cannot race with
// another completer; the Done interplay is covered by seq-cst atomics plus
// dmu (whichever of complete/Done runs second observes the other's store
// and performs the close, with closed deduplicating).
func (p *Pending) complete(st Status, err error) {
	if Status(p.status.Load()) != StatusWaiting {
		return
	}
	p.err = err
	p.status.Store(int32(st))
	if p.hasDone.Load() {
		p.dmu.Lock()
		if p.done != nil && !p.closed {
			close(p.done)
			p.closed = true
		}
		p.dmu.Unlock()
	}
}

// reset returns a Pending to its zero (waiting) state for box recycling.
// The caller must own the Pending exclusively: ReleaseAll only resets boxes
// whose blocking Acquire returned before the commit (happens-before via the
// owner's single-goroutine contract) and that never entered a wait queue.
// Assigning the struct wholesale would copy dmu, so fields are cleared
// individually.
func (p *Pending) reset() {
	// The caller has exclusive ownership, but the fields stay atomics for
	// the concurrent phases of the Pending's life — so skip the relatively
	// expensive atomic stores when the value is already right (a fast-path
	// box's Pending was never touched at all, making its reset free).
	if p.status.Load() != int32(StatusWaiting) {
		p.status.Store(int32(StatusWaiting))
	}
	p.err = nil
	if p.hasDone.Load() {
		p.hasDone.Store(false)
		p.done = nil
		p.closed = false
	}
}

// QuotaProvider supplies the live lockPercentPerApplication value. The
// manager consults it on every allocation of new lock structures; the
// provider decides whether the refresh period has elapsed (core.QuotaTracker
// implements this policy). A nil provider means "no quota" (100%).
//
// Providers must be safe for concurrent use and idempotent for repeated
// calls with the same structRequests value: the fast admission path and the
// global fallback may both consult the quota for one request.
type QuotaProvider interface {
	// QuotaPercent returns the percentage of total lock memory the given
	// application may hold, given the cumulative number of lock-structure
	// requests and the structures currently in use. Most providers ignore
	// appID; the engine's escalation-policy extension biases individual
	// applications that prefer escalation over memory growth.
	QuotaPercent(appID int, structRequests int64, usedStructs int) float64
}

// EscalationPreferrer is an optional extension of QuotaProvider: providers
// implementing it can mark individual applications as preferring lock
// escalation over lock-memory growth (the paper's section 6.1 application
// policies). For such applications the manager escalates at the quota
// rather than growing the lock memory to accommodate them.
type EscalationPreferrer interface {
	PrefersEscalation(appID int) bool
}

func prefersEscalation(q QuotaProvider, appID int) bool {
	p, ok := q.(EscalationPreferrer)
	return ok && p.PrefersEscalation(appID)
}

// EventSink receives notifications of noteworthy lock-manager events for
// diagnostics (the engine forwards them to its trace ring). Methods are
// invoked with one or more shard latches held: implementations must be fast
// and must not call back into the Manager.
type EventSink interface {
	OnEscalation(appID int, table uint32, to Mode)
	OnDeadlockVictim(appID int, ownerID uint64)
	OnTimeout(appID int)
	OnSyncGrowth(pages int)
	OnDenial(appID int, reason error)
}

// Config configures a Manager.
type Config struct {
	// InitialPages is the starting LOCKLIST size in 4 KB pages.
	InitialPages int
	// Clock drives wait deadlines; nil means clock.Real.
	Clock clock.Clock
	// LockTimeout denies waits older than this at each SweepTimeouts
	// call. Zero disables timeouts.
	LockTimeout time.Duration
	// GrowSync, if non-nil, is called (with the shard latches held) when
	// an allocation fails; it should grant up to needPages of database
	// overflow memory and return the pages granted (0 = none).
	GrowSync func(needPages int) int
	// Quota supplies lockPercentPerApplication; nil disables the quota.
	Quota QuotaProvider
	// Events, if non-nil, receives diagnostic event notifications.
	Events EventSink
	// Shards is the number of lock-table shards. Zero selects a default
	// derived from GOMAXPROCS; other values are rounded up to a power of
	// two and clamped to [1, 1024].
	Shards int
	// LeaseChunk is the batch size, in lock structures, of per-shard
	// leases from the block chain. Zero selects
	// memblock.DefaultLeaseChunk.
	LeaseChunk int
	// ObsSampleStride controls the wall-clock sampling of admission
	// latency and lock hold time: one in ObsSampleStride acquisitions is
	// timed (rounded up to a power of two). Zero selects the default
	// (64); negative disables wall-clock sampling entirely. Lock-wait
	// durations are always recorded — they use the manager's Clock, not
	// the wall clock, and cost one atomic add at grant/deny.
	ObsSampleStride int
	// ProfileDisabled switches the contention profiler (hot-lock sketch,
	// flight recorder, latch profile — see profiler.go) off entirely.
	// The default (false) keeps it on: its hot-path cost is one or two
	// uncontended atomic adds per contention event, benchmarked under 3%
	// (see bench-obs-profiler).
	ProfileDisabled bool
	// LatchSpin overrides the shard-latch spin policy. 0 (the default)
	// enables the adaptive per-shard controller: each latch's spin
	// budget is retuned from its sampled hold times and spin outcomes,
	// collapsing to 0 on a single P or when spinners outnumber P's.
	// A positive value pins every shard latch to that fixed spin budget
	// (clamped to latch.BudgetCap) — the experimental control for A/B
	// runs, which also bypasses the adaptive guards so the budget is
	// spent exactly as configured. A negative value pins the budget to 0
	// (park immediately, the stock sync.Mutex-like behaviour).
	LatchSpin int
	// Throttle configures saturation-aware admission throttling
	// (throttle.go). 0 (the default) enables the adaptive controller:
	// per-shard concurrency ceilings engage only when RetuneThrottle —
	// driven on the STMM cadence — observes a queue-depth high-water
	// past the saturation knee, so quiet tables never pay anything. A
	// positive value pins every shard's ceiling to that fixed waiter
	// count from the start (the experimental control for A/B runs). A
	// negative value disables throttling entirely: no ceiling ever
	// engages and the admission path never consults the culled set.
	Throttle int
}

// App is a connected application, the unit of quota accounting.
type App struct {
	id      int
	structs atomic.Int64 // lock structures held
}

// ID returns the application's identifier.
func (a *App) ID() int { return a.id }

// maxShardWords is the shard bitmap size in uint64 words: one bit per
// shard at the 1024-shard configuration ceiling. releaseBatch keeps a
// full-width bitmap inline (it is pooled, so the 128 bytes are paid once);
// Owner keeps only the first word inline and spills the rest lazily, since
// per-transaction memory is the commit path's main allocation.
const maxShardWords = 1024 / 64

// Owner is a lock requester — one transaction. All of an owner's locks are
// released together by ReleaseAll at commit or abort (strict two-phase
// locking). An owner's lock requests must be issued from a single goroutine
// (the transaction), but distinct owners operate fully in parallel.
type Owner struct {
	id  uint64
	app *App

	// mu guards held, byTable, released, touched, and the owner-visible
	// request fields (granted/converting/convert/mode) of this owner's
	// requests. It is a leaf lock: never held while acquiring a shard
	// latch.
	mu       sync.Mutex
	held     heldSet
	released bool // set by ReleaseAll; further requests are rejected

	// Per-table indexes: the first table an owner touches lives in the
	// inline slot (ot0), further tables spill to the lazily allocated
	// byTable map. Most OLTP transactions touch one or two tables, so the
	// common case allocates neither the map nor an ownerTable.
	ot0used bool
	ot0tid  uint32
	ot0     ownerTable
	byTable map[uint32]*ownerTable // nil until a second table appears

	// touched is the owner's touched-shard set: bit i is set (under mu, at
	// admission time) before any of this owner's requests can exist in
	// shard i, and bits are never cleared — owners are discarded at
	// ReleaseAll. The commit fast path visits only touched shards instead
	// of sweeping the whole shard array, so release cost is O(locks held),
	// not O(shards). The set is conservative: a bit may be set for a shard
	// the owner never actually locked (a backed-out fast path, a covered
	// grant), which costs at most one latch visit at commit.
	//
	// Shards 0–63 live in the inline word; tables configured with more
	// shards get the spill slice at NewOwner time (sized once, never
	// grown), keeping the common-case Owner small.
	touched0  uint64
	touchedHi []uint64 // nil unless the table has > 64 shards

	// inWait counts this owner's requests currently in a wait queue
	// (waiters, converters, parked requests). Incremented when a request
	// first enters a queue (beginWait / escalation park), decremented by
	// endWait only once the request is either installed in held (grant) or
	// terminally denied — so ReleaseAll reading 0 under mu proves the held
	// snapshot is complete and no cancel sweep is needed.
	inWait atomic.Int32

	// obsTick is the owner-local admission-sampling counter: acquireAsync
	// samples one in obsSampler.Stride() of this owner's acquisitions. A
	// plain field, touched only by the owner's requesting goroutine (the
	// documented single-goroutine contract) — striping the sampler by
	// owner keeps the global sampler's shared cacheline off the per-grant
	// path entirely.
	obsTick uint64

	// everWaited is set (under the home shard latch, before the owner's
	// release can complete) the first time any of the owner's requests
	// enters a wait queue. FinishOwner refuses to recycle such owners:
	// denial and grant continuations may still hold the pointer briefly
	// after ReleaseAll returns, so they are left to the garbage collector.
	everWaited bool

	// stagedRefs counts the owner's release batches still staged on shard
	// flush lists, plus one bias held by the release walk itself
	// (grouprelease.go). The walk stores the bias under o.mu before any
	// batch is published and drops it as its very last touch of the
	// owner; each flush leader drops one ref after it has fully applied a
	// staged batch. Whoever drops the count to zero owns the teardown:
	// if recycleOnZero is set (FinishOwner's exclusive-pointer contract,
	// decided before the first publish) it resets and pools the owner.
	stagedRefs    atomic.Int32
	recycleOnZero bool

	// Commit-walk scratch, reused across this owner's transactions so the
	// steady-state release walk touches no sync.Pool at all: the collect
	// snapshot, the deferred posting/wake drain, and a small arsenal of
	// staged-batch slots for storm-mode shard visits (overflow falls back
	// to releaseBatchPool). A slot is safe to reuse because the owner is
	// only recycled — and the walk only restarted — after stagedRefs hits
	// zero, which requires every previously staged slot to have been
	// applied. Touched only by the walk goroutine and (per staged slot,
	// hand-off via the staging-list CAS) the one flush leader applying it.
	walkBatch releaseBatch
	drain     releaseDrain
	sbArsenal [2]releaseBatch
	sbUsed    int8

	// Registry list links, guarded by Manager.ownersMu.
	regPrev, regNext *Owner
}

// markTouched records that the owner may have a request homed in shard si.
// Caller holds o.mu.
func (o *Owner) markTouched(si int) {
	if si < 64 {
		o.touched0 |= 1 << uint(si)
		return
	}
	o.touchedHi[(si>>6)-1] |= 1 << (uint(si) & 63)
}

// isTouched reports whether shard si's touched bit is set. Used by
// CheckInvariants (all latches held) to verify the bitmap is conservative:
// every shard hosting one of the owner's requests must be marked.
func (o *Owner) isTouched(si int) bool {
	if si < 64 {
		return o.touched0&(1<<uint(si)) != 0
	}
	return o.touchedHi[(si>>6)-1]&(1<<(uint(si)&63)) != 0
}

// tableFor returns the owner's per-table index for tid, or nil. Caller
// holds o.mu.
func (o *Owner) tableFor(tid uint32) *ownerTable {
	if o.ot0used && o.ot0tid == tid {
		return &o.ot0
	}
	return o.byTable[tid] // nil-map read is fine
}

// tableOrCreate returns the per-table index for tid, creating it in the
// inline slot or the spill map. Caller holds o.mu.
func (o *Owner) tableOrCreate(tid uint32) *ownerTable {
	if !o.ot0used {
		o.ot0used, o.ot0tid = true, tid
		return &o.ot0
	}
	if o.ot0tid == tid {
		return &o.ot0
	}
	if ot := o.byTable[tid]; ot != nil {
		return ot
	}
	if o.byTable == nil {
		o.byTable = make(map[uint32]*ownerTable)
	}
	ot := &ownerTable{}
	o.byTable[tid] = ot
	return ot
}

// eachTable calls f for every per-table index until f returns false.
// Caller holds o.mu (or owns the owner exclusively).
func (o *Owner) eachTable(f func(uint32, *ownerTable) bool) {
	if o.ot0used {
		if !f(o.ot0tid, &o.ot0) {
			return
		}
	}
	for tid, ot := range o.byTable {
		if !f(tid, ot) {
			return
		}
	}
}

// touchedShards appends the owner's touched shard indexes, ascending.
// Caller holds o.mu (or owns the released owner).
func (o *Owner) touchedShards(buf []int) []int {
	word := o.touched0
	for word != 0 {
		b := bits.TrailingZeros64(word)
		buf = append(buf, b)
		word &^= 1 << uint(b)
	}
	for w, hi := range o.touchedHi {
		base := (w + 1) * 64
		for hi != 0 {
			b := bits.TrailingZeros64(hi)
			buf = append(buf, base+b)
			hi &^= 1 << uint(b)
		}
	}
	return buf
}

// heldSmallMax is the number of locks an owner indexes in the inline array
// before spilling to a map. Most OLTP transactions hold a handful of locks;
// a linear scan over ≤10 entries beats a Name-keyed map's hash+probe, and
// insert/delete become an append and a swap-remove. The size is a
// per-transaction memory trade: the inline array is the biggest field in
// Owner, and every commit allocates one.
const heldSmallMax = 10

type heldEntry struct {
	name Name
	req  *request
}

// heldSet indexes one owner's granted requests by name: a small array for
// the common case, spilling to a map once the owner exceeds heldSmallMax
// locks (it never shrinks back; the owner is discarded at ReleaseAll). The
// zero value is ready to use. Guarded by the owner's mu like the map it
// replaces.
type heldSet struct {
	arr [heldSmallMax]heldEntry // inline: no allocation for small owners
	n   int
	m   map[Name]*request // nil until spill
}

func (hs *heldSet) get(name Name) (*request, bool) {
	if hs.m != nil {
		r, ok := hs.m[name]
		return r, ok
	}
	for i := 0; i < hs.n; i++ {
		if hs.arr[i].name == name {
			return hs.arr[i].req, true
		}
	}
	return nil, false
}

func (hs *heldSet) set(name Name, r *request) {
	if hs.m != nil {
		hs.m[name] = r
		return
	}
	for i := 0; i < hs.n; i++ {
		if hs.arr[i].name == name {
			hs.arr[i].req = r
			return
		}
	}
	if hs.n < heldSmallMax {
		hs.arr[hs.n] = heldEntry{name, r}
		hs.n++
		return
	}
	hs.m = make(map[Name]*request, 2*heldSmallMax)
	for i := 0; i < hs.n; i++ {
		hs.m[hs.arr[i].name] = hs.arr[i].req
	}
	hs.n = 0
	hs.m[name] = r
}

func (hs *heldSet) del(name Name) {
	if hs.m != nil {
		delete(hs.m, name)
		return
	}
	for i := 0; i < hs.n; i++ {
		if hs.arr[i].name == name {
			hs.n--
			hs.arr[i] = hs.arr[hs.n]
			hs.arr[hs.n] = heldEntry{}
			return
		}
	}
}

// each calls f for every (name, request) pair. f must not mutate the set.
func (hs *heldSet) each(f func(Name, *request)) {
	if hs.m != nil {
		for n, r := range hs.m {
			f(n, r)
		}
		return
	}
	for i := 0; i < hs.n; i++ {
		f(hs.arr[i].name, hs.arr[i].req)
	}
}

// ID returns the owner (transaction) identifier.
func (o *Owner) ID() uint64 { return o.id }

// App returns the owning application.
func (o *Owner) App() *App { return o.app }

// rowsSmallMax is the number of row locks an ownerTable indexes inline
// before spilling to a map — the same small-case trick as heldSet, so a
// short transaction's per-table row index costs zero allocations.
const rowsSmallMax = 8

type rowEntry struct {
	row uint64
	r   *request
}

// ownerTable tracks one owner's locks on one table, for coverage checks and
// escalation victim selection. Entries are kept (empty) after their last
// lock is released so churning transactions reuse the index. Access only
// through the row methods; the representation spills from the inline array
// to a map past rowsSmallMax rows.
type ownerTable struct {
	tableReq   *request
	rowStructs int
	nRows      int
	rowsArr    [rowsSmallMax]rowEntry
	rowsMap    map[uint64]*request // nil until spill
}

func (ot *ownerTable) rowCount() int {
	if ot.rowsMap != nil {
		return len(ot.rowsMap)
	}
	return ot.nRows
}

func (ot *ownerTable) getRow(row uint64) (*request, bool) {
	if ot.rowsMap != nil {
		r, ok := ot.rowsMap[row]
		return r, ok
	}
	for i := 0; i < ot.nRows; i++ {
		if ot.rowsArr[i].row == row {
			return ot.rowsArr[i].r, true
		}
	}
	return nil, false
}

func (ot *ownerTable) setRow(row uint64, r *request) {
	if ot.rowsMap != nil {
		ot.rowsMap[row] = r
		return
	}
	for i := 0; i < ot.nRows; i++ {
		if ot.rowsArr[i].row == row {
			ot.rowsArr[i].r = r
			return
		}
	}
	if ot.nRows < rowsSmallMax {
		ot.rowsArr[ot.nRows] = rowEntry{row, r}
		ot.nRows++
		return
	}
	ot.rowsMap = make(map[uint64]*request, 2*rowsSmallMax)
	for i := 0; i < ot.nRows; i++ {
		ot.rowsMap[ot.rowsArr[i].row] = ot.rowsArr[i].r
	}
	ot.nRows = 0
	ot.rowsMap[row] = r
}

func (ot *ownerTable) delRow(row uint64) {
	if ot.rowsMap != nil {
		delete(ot.rowsMap, row)
		return
	}
	for i := 0; i < ot.nRows; i++ {
		if ot.rowsArr[i].row == row {
			ot.nRows--
			ot.rowsArr[i] = ot.rowsArr[ot.nRows]
			ot.rowsArr[ot.nRows] = rowEntry{}
			return
		}
	}
}

// eachRow calls f for every (row, request) pair. f must not mutate the set.
func (ot *ownerTable) eachRow(f func(uint64, *request)) {
	if ot.rowsMap != nil {
		for row, r := range ot.rowsMap {
			f(row, r)
		}
		return
	}
	for i := 0; i < ot.nRows; i++ {
		f(ot.rowsArr[i].row, ot.rowsArr[i].r)
	}
}

// request is one (owner, name) lock request: granted or waiting.
type request struct {
	owner  *Owner
	header *lockHeader
	name   Name

	mode    Mode // granted mode, or requested mode while waiting
	convert Mode // conversion target while a granted request waits to convert

	weight int
	handle memblock.Handle

	granted    bool
	converting bool
	parked     bool // created but not yet started (escalation in progress)

	// culled marks a waiter held back by the admission throttle
	// (throttle.go): it is registered in the shard's waiting set (so
	// timeout, cancel, and abort sweeps find it) and stacked on its
	// header's culled LIFO, but holds no queue position, no lock
	// structures, and exports no deadlock-graph edges until reactivated.
	// culledPass stamps the SweepTimeouts pass at which it was culled;
	// the sweep's liveness valve force-reactivates stragglers whose
	// pass age says the active queue stopped draining (see
	// sweepCulled).
	culled     bool
	culledPass uint64

	pending  *Pending
	deadline time.Time
	onGrant  func(m *Manager)            // self-latching continuation, drained with no latches held
	onDeny   func(m *Manager, err error) // self-latching continuation, drained with no latches held

	// Observability stamps. waitStart is set (manager clock) when the
	// request enters a wait queue and cleared when the wait ends at
	// grant/deny — its difference feeds the lock-wait histogram.
	// grantedAt is a wall-clock stamp taken only for sampled requests
	// (obsSampled); it feeds the hold-time histogram at release.
	waitStart  time.Time
	grantedAt  time.Time
	obsSampled bool

	// fastLeased marks a grant admitted by the latch-free fast path: its
	// structures came from the home shard's fast credit (fastpath.go)
	// rather than a pool handle, so frees recredit fastFree instead of
	// freeing a handle. Guarded like granted (writers hold the home shard
	// latch or the header's lk bit, plus Owner.mu).
	fastLeased bool

	// Recycling state. box points back at the request's co-allocation so
	// ReleaseAll can return it to the home shard's cache. recyclable is set
	// only for boxes born in the blocking Acquire path, whose Pending
	// provably has no external references once the transaction commits
	// (Acquire returned before the owner's goroutine could call
	// ReleaseAll). everQueued is set, stickily, the first time the request
	// enters a wait queue: queued requests may be captured by the deadlock
	// detector's latch-free snapshot, which holds *request pointers across
	// phases, so they are never recycled.
	box        *requestAndPending
	recyclable bool
	everQueued bool
}

// requestAndPending co-allocates a request with its Pending so the
// AcquireAsync fast path costs a single heap object. The Pending outlives
// the request's table membership (the caller holds it), which keeps the
// whole box alive; requests are small, so this trades no meaningful memory
// for one less malloc per acquire.
type requestAndPending struct {
	req  request
	pend Pending
}

// effectiveMode is the mode the request currently holds (for granted
// requests) or requests.
func (r *request) effectiveMode() Mode {
	if r.converting {
		return r.convert
	}
	return r.mode
}

// lockHeader is the lock table entry for one Name. The granted group is a
// single inline slot (g0) plus a lazily allocated overflow map: most locks
// have exactly one holder, and the inline slot spares that case a map
// assign+delete (and the iteration seeding of range-over-map) per
// acquire/release cycle.
type lockHeader struct {
	name       Name
	g0         *request            // single-holder fast slot
	gmap       map[*Owner]*request // overflow holders; nil until needed
	groupMode  Mode
	converters []*request // FIFO, priority over waiters
	waiters    []*request // FIFO

	// culled is the admission throttle's passive waiter stack (LIFO —
	// the most recently culled request reactivates first, Dice & Kogan's
	// cache-warm ordering). Culled requests hold no lock structures and
	// no FIFO queue position; they re-enter the admission pipeline via
	// reactivation continuations as the active queue drains (see
	// throttle.go). reactInFlight counts reactivations popped from the
	// stack whose continuations have not yet re-run admission, so one
	// drain cannot over-reactivate past the ceiling. Guarded by the
	// shard latch.
	culled        []*request
	reactInFlight int

	// postPending marks a header already appended to the current shard
	// visit's deferred posting list (grouprelease.go): when a flush leader
	// applies several owners' release batches under one latch hold, two
	// batches unlinking holders of the same header must queue it for the
	// FIFO posting pass exactly once. Guarded by the shard latch; always
	// false outside a latched release visit.
	postPending bool

	// word is the packed latch-free grant word (see fastpath.go); it is
	// meaningful only once published is set (latch-guarded) and the
	// header is installed in its shard's fastSlots. Published headers are
	// never recycled onto the header freelist and never evicted from the
	// table — an emptied one stays resident with an admitting word
	// (deferred reclamation), which is what keeps a hot key latch-free
	// across transactions.
	word      atomic.Uint64
	published bool

	// epoch is the 64-bit extension of the word's 11-bit settle seq: it is
	// bumped by every latched settle and by every fast-path admission of a
	// reader-invalidating mode (IX), and the word's seq field always equals
	// its low 11 bits (CheckInvariants enforces the identity). Optimistic
	// zero-CAS readers stamp their tokens with it and validate it unchanged
	// at release, so a seq wraparound (>2048 transitions inside one read
	// window) can never ABA a reader into a false validation — the 64-bit
	// epoch still differs even when the packed word is bit-identical. See
	// optimistic.go.
	epoch atomic.Uint64
}

// addGranted records r as a holder. Caller guarantees r's owner is not
// already in the granted group (re-requests go through conversion).
func (h *lockHeader) addGranted(r *request) {
	if h.g0 == nil {
		h.g0 = r
		return
	}
	if h.gmap == nil {
		h.gmap = make(map[*Owner]*request, 4)
	}
	h.gmap[r.owner] = r
}

// removeGranted drops o's granted request, if any.
func (h *lockHeader) removeGranted(o *Owner) {
	if h.g0 != nil && h.g0.owner == o {
		h.g0 = nil
		return
	}
	delete(h.gmap, o)
}

// getGranted returns o's granted request, or nil.
func (h *lockHeader) getGranted(o *Owner) *request {
	if h.g0 != nil && h.g0.owner == o {
		return h.g0
	}
	return h.gmap[o]
}

// grantedLen returns the number of holders.
func (h *lockHeader) grantedLen() int {
	n := len(h.gmap)
	if h.g0 != nil {
		n++
	}
	return n
}

// eachGranted calls f for every holder until f returns false.
func (h *lockHeader) eachGranted(f func(*request) bool) {
	if h.g0 != nil && !f(h.g0) {
		return
	}
	for _, g := range h.gmap {
		if !f(g) {
			return
		}
	}
}

func (h *lockHeader) recomputeGroupMode() {
	if len(h.gmap) == 0 {
		// Fast path: zero or one holder.
		if h.g0 != nil {
			h.groupMode = h.g0.mode
		} else {
			h.groupMode = ModeNone
		}
		return
	}
	mode := ModeNone
	if h.g0 != nil {
		mode = h.g0.mode
	}
	for _, g := range h.gmap {
		mode = Supremum(mode, g.mode)
	}
	h.groupMode = mode
}

func (h *lockHeader) empty() bool {
	return h.g0 == nil && len(h.gmap) == 0 && len(h.converters) == 0 &&
		len(h.waiters) == 0 && len(h.culled) == 0
}

// Stats is a snapshot of the manager's event counters.
type Stats struct {
	Grants               int64
	Waits                int64
	Timeouts             int64
	Deadlocks            int64
	Escalations          int64
	ExclusiveEscalations int64
	MemoryDenials        int64
	QuotaDenials         int64
	SyncGrowths          int64
	SyncGrowthPages      int64
}

// statCounters is the live, lock-free form of Stats.
type statCounters struct {
	grants               atomic.Int64
	waits                atomic.Int64
	timeouts             atomic.Int64
	deadlocks            atomic.Int64
	escalations          atomic.Int64
	exclusiveEscalations atomic.Int64
	memoryDenials        atomic.Int64
	quotaDenials         atomic.Int64
	syncGrowths          atomic.Int64
	syncGrowthPages      atomic.Int64
}

// headerFreelistCap bounds each shard's recycled lock-header stack.
const headerFreelistCap = 64

// boxFreelistCap bounds each shard's recycled request-box stack.
const boxFreelistCap = 64

// shard is one stripe of the lock table.
type shard struct {
	// mu is the shard latch: an adaptive spin-then-park latch
	// (internal/latch) whose per-shard spin budget is retuned from the
	// sampled hold times unlockShard feeds it. Acquire through lockShard
	// or tryLockShard (they run the profiler bookkeeping); raw
	// s.mu.Unlock() remains correct everywhere a paired unlockShard is
	// not wanted (runGlobal's descending sweep, deadlock validation).
	mu      latch.Latch
	idx     int // position in Manager.shards; set once at New
	table   map[Name]*lockHeader
	waiting map[*request]struct{}

	// Latch-profile sampling state, guarded by mu: latchTick advances on
	// every latched acquisition (lockShard and tryLockShard); when it
	// hits the sampling stride the acquisition stamps holdT0 and the
	// matching unlockShard records the hold time. Raw s.mu.Unlock()
	// sites (runGlobal's descending sweep) simply leave a stale stamp,
	// which the next stamped acquisition — lockShard or tryLockShard —
	// clears before anything reads it.
	latchTick uint64
	holdT0    time.Time
	pool      *memblock.Pool // lease cache; guarded by mu
	hfree     []*lockHeader  // recycled headers (with empty granted maps)

	// rfree is the shard's cache of recycled request+Pending boxes,
	// guarded by mu like hfree; boxes are pushed (zeroed) by ReleaseAll
	// and popped by the acquire path, so a steady commit workload stops
	// allocating per lock request. rfreeN mirrors len(rfree) so the
	// acquire path can pre-allocate outside the latch when the cache is
	// empty instead of allocating inside the critical section.
	rfree  []*requestAndPending
	rfreeN atomic.Int32

	// Latch-free admission state (fastpath.go). fastSlots is the
	// published-header lookup array (slot = top hash bits); fastFree the
	// struct credit fast grants CAS against; fastOps the gate in-flight
	// counter runGlobal drains; fastPublishedN a latch-free hint that the
	// shard has any published headers at all (a zero short-circuits the
	// Release probe and credit refills). fastLease and fastLeaseTotal —
	// guarded by mu — hold the standing pool lease backing the credit:
	// fastLeaseTotal - fastFree is exactly the weight of in-flight
	// fast-leased grants homed here.
	fastSlots      [fastSlotsPerShard]atomic.Pointer[lockHeader]
	fastFree       atomic.Int64
	fastOps        atomic.Int64
	fastPublishedN atomic.Int32
	fastLease      memblock.Handle
	fastLeaseTotal int

	// Group-release staging (grouprelease.go). relHead is the MPSC list
	// of detached release batches published by committing owners on a
	// storming shard; relLen mirrors its length for the latch-free flush
	// triggers. A flush leader — elected by CAS on relFlush, or any
	// latched visitor finding the list non-empty — swaps the list out and
	// applies every staged batch in one latched section. relMu/relCond
	// park stagers that hit the high-water backpressure bound until the
	// next drain completes (relMu is never held together with the shard
	// latch).
	relHead  atomic.Pointer[releaseBatch]
	relLen   atomic.Int32
	relFlush atomic.Int32
	relMu    sync.Mutex
	relCond  *sync.Cond

	// relStorm is the shard's commit-storm arm (hysteresis for the group
	// stage). 0 means quiet: commits TryLock and apply directly, and only
	// a failed TryLock — real latch contention — arms the shard. While
	// armed, every commit visit stages its batch and yields briefly
	// before electing a leader, so concurrent committers coalesce into
	// one latched drain even when individual latched sections are too
	// short to collide. Multi-batch drains re-arm to relStormArm;
	// single-batch drains decay the arm by one, so a shard whose storm
	// has passed falls back to the direct path within a few visits.
	relStorm atomic.Int32

	// relInline is the drain scratch for the admission path's piggyback
	// drain (drainStagedInline). Latch-protected, like the table map, so
	// the per-acquire drain allocates nothing.
	relInline releaseDrain

	// seq stamps the shard's published summary: it is bumped (under mu)
	// whenever lock-table membership or wait-queue membership changes, so
	// latch-free observers can tell whether two reads straddled a
	// mutation. nLocks and nWaiting mirror len(table) and len(waiting)
	// for those same observers.
	seq      atomic.Uint64
	nLocks   atomic.Int64
	nWaiting atomic.Int64

	// Admission-throttle state (throttle.go). throtCeil is the shard's
	// live concurrency ceiling: 0 means disengaged (the admission path
	// pays exactly one relaxed atomic load and moves on — the quiet-lock
	// hysteresis ISSUE demands), > 0 caps any one header's active wait
	// queue at that many waiters, excess being culled. throtDepthHW is
	// the queue-depth high-water mark since the last retune window
	// (updated by enqueueWaiter with a CAS-max, swapped to 0 by
	// RetuneThrottle). The remaining fields are the controller's
	// between-window scratch, touched only by RetuneThrottle's single
	// caller (the STMM cadence): grants seen at the last window edge,
	// the previous window's throughput delta, and how many consecutive
	// quiet windows have passed (disengage hysteresis).
	throtCeil    atomic.Int32
	throtDepthHW atomic.Int32
	throtGrants  int64
	throtDelta   int64
	throtP99     int64
	throtDir     int
	throtQuiet   int
}

// addWaiting registers a queued request in the shard's waiting set and
// republishes the latch-free summary. Caller holds the shard latch.
func (s *shard) addWaiting(r *request) {
	s.waiting[r] = struct{}{}
	s.nWaiting.Store(int64(len(s.waiting)))
	s.seq.Add(1)
}

// delWaiting removes a request from the waiting set (no-op if absent) and
// republishes the latch-free summary. Caller holds the shard latch.
func (s *shard) delWaiting(r *request) {
	if _, ok := s.waiting[r]; !ok {
		return
	}
	delete(s.waiting, r)
	s.nWaiting.Store(int64(len(s.waiting)))
	s.seq.Add(1)
}

// popBox takes a recycled request box from the shard cache, or nil. Caller
// holds the shard latch. The box was zeroed when it was pushed.
func (s *shard) popBox() *requestAndPending {
	n := len(s.rfree)
	if n == 0 {
		return nil
	}
	b := s.rfree[n-1]
	s.rfree[n-1] = nil
	s.rfree = s.rfree[:n-1]
	s.rfreeN.Store(int32(len(s.rfree)))
	return b
}

// pushBox zeroes a request box and returns it to the shard cache (bounded;
// overflow is left to the garbage collector). Caller holds the shard latch
// and guarantees no external references to the box or its Pending remain.
func (s *shard) pushBox(b *requestAndPending) {
	if len(s.rfree) >= boxFreelistCap {
		return
	}
	b.req = request{}
	b.pend.reset()
	s.rfree = append(s.rfree, b)
	s.rfreeN.Store(int32(len(s.rfree)))
}

// Manager is the lock manager. All public methods are safe for concurrent
// use by distinct owners; a single owner's requests must come from one
// goroutine.
type Manager struct {
	chain *memblock.Chain
	clk   clock.Clock
	cfg   Config

	shards    []shard
	shardMask uint64

	// ownerPool recycles Owner structs handed back through FinishOwner.
	// Per-manager (not package-global) so a pooled owner's touchedHi spill
	// is always sized for this manager's shard count.
	ownerPool sync.Pool

	ownersMu sync.Mutex // registry of apps and owners
	apps     map[int]*App
	// owners is an intrusive doubly-linked list (head; regPrev/regNext in
	// Owner) rather than a map: registration and deregistration run once
	// per transaction on the commit path, and list splicing is two pointer
	// writes against a map's hash, probe, and bucket churn. Only
	// introspection iterates it.
	owners    *Owner
	nOwners   int
	nextApp   int
	nextOwner uint64
	numApps   atomic.Int64

	// Deferred grant/deny continuations (escalation steps). Each
	// continuation latches the shards it touches itself, so the queue is
	// enqueued anywhere and drained by flushConts with no latches held.
	contMu sync.Mutex
	conts  []func(*Manager)
	contN  atomic.Int64

	// Control-plane observability. globalRuns counts runGlobal entries —
	// all-shard latch acquisitions — and globalHold records the maximum
	// wall-clock time any single one held every latch: together they are
	// the evidence that steady-state detection and observation stay off
	// the global path, and the ceiling on the stall they cause when they
	// do not.
	globalRuns atomic.Int64
	globalHold metrics.MaxGauge

	// Cached lockPercentPerApplication for the fast admission path. The
	// cache holds Float64bits of the last quota percent read
	// (quotaPct) and the chain.Requests() value at which it should next
	// be refreshed (quotaNext); capacity changes force a refresh by
	// zeroing quotaNext. Staleness is bounded by quotaRefreshStride
	// requests — the same bounded-staleness contract as the paper's
	// QuotaTracker refresh period — and only affects the fast path: the
	// global admission pipeline always reads the provider fresh.
	quotaPct  atomic.Uint64
	quotaNext atomic.Int64

	// fastGate is the Dekker-style gate pairing the latch-free fast path
	// with runGlobal: fast ops bump their shard's fastOps counter before
	// reading the gate and back out if it is raised; runGlobal raises it,
	// takes every latch, then waits for the counters to drain — restoring
	// the "all latches held ⇒ world stopped" contract escalation and
	// CheckInvariants rely on. fastHits/fastFallbacks count grants
	// admitted without the latch vs. acquisitions that took the latched
	// path (the two partition all acquisitions).
	fastGate      atomic.Int64
	fastHits      *metrics.ShardCounters
	fastFallbacks *metrics.ShardCounters

	// optHits counts zero-CAS optimistic read tokens issued; optFailures
	// counts tokens that failed validation at release/commit (see
	// optimistic.go). Together with fastHits/fastFallbacks these partition
	// the read traffic: optHits + fastHits + fastFallbacks covers every
	// admission attempt, and optFailures / optHits is the invalidation
	// rate the workbench reports.
	optHits     *metrics.ShardCounters
	optFailures *metrics.ShardCounters

	// fastBoxPool recycles request+Pending boxes for the latch-free grant
	// path, which cannot pop the shard's latched rfree cache. Boxes enter
	// zeroed (same contract as pushBox: recyclable, never queued, no
	// external references) from ReleaseAll when the shard cache is full —
	// on a steady fast-path workload that is nearly every commit, so fast
	// grants stop allocating per lock request.
	fastBoxPool sync.Pool

	// latchWaits counts contended shard-latch acquisitions; latchAcqs
	// counts every acquisition, contended or not — the direct evidence
	// that the commit fast path visits O(shards touched) rather than
	// 3×shards per transaction.
	latchWaits *metrics.ShardCounters
	latchAcqs  *metrics.ShardCounters

	// Group-release evidence (grouprelease.go). relBatches counts release
	// batches applied per shard (one per owner-visit, whether the owner
	// latched directly or a flush leader drained its staged batch);
	// wakesCoalesced counts FIFO grant wakeups whose Pending completion
	// was deferred out of the latched release section and fired in the
	// post-walk pass; flushWaits counts owner-visits that staged their
	// batch on a busy shard and waited for a leader instead of latching.
	// relBatches / commits is the combining factor; flushWaits > 0 proves
	// the staging path runs at all.
	relBatches     *metrics.ShardCounters
	wakesCoalesced *metrics.ShardCounters
	flushWaits     *metrics.ShardCounters

	// Admission-throttle evidence (throttle.go). throtCulled counts
	// waiters diverted into the passive culled set; throtReact counts
	// culled waiters fed back into the admission pipeline as the active
	// queue drained; throtDenied counts culled waiters denied in place
	// (timeout, cancel, abort, shutdown). Every culled waiter resolves
	// exactly one way, so culled == reactivated + denied + live-culled is
	// an invariant CheckInvariants enforces. throtDL receives one
	// decision record per ceiling adjustment (kind "throttle-tune");
	// sweepPass numbers SweepTimeouts passes for the culled-set liveness
	// valve.
	throtCulled *metrics.ShardCounters
	throtReact  *metrics.ShardCounters
	throtDenied *metrics.ShardCounters
	throtLive   atomic.Int64 // culled waiters currently parked
	throtDL     atomic.Pointer[obs.DecisionLog]
	sweepPass   atomic.Uint64

	// Latency histograms (lock-free; see internal/obs). waitHist records
	// every wait's duration on the manager's clock — deterministic under
	// the simulated clock — striped by home-shard index; releaseHist
	// records ReleaseAll durations the same way (striped by owner id),
	// sampled by relSampler so the commit fast path does not pay two
	// clock reads per transaction (the sampling counter is a
	// deterministic stride, so sim runs stay byte-reproducible). holdHist
	// and admitHist are wall-clock and recorded only for requests
	// admitted by obsSampler, keeping the hot path at one atomic add per
	// event.
	waitHist    *obs.Histogram
	holdHist    *obs.Histogram
	admitHist   *obs.Histogram
	releaseHist *obs.Histogram
	obsSampler  obs.Sampler
	relSampler  obs.Sampler

	// Contention profiler (profiler.go): the hot-lock blame sketch and
	// per-shard flight recorder run on the manager's clock and are on
	// unless Config.ProfileDisabled; the latch hold/wait profile is
	// wall-clock and additionally obeys ObsSampleStride < 0. All
	// nil-safe: a disabled profiler costs one predictable branch per
	// hook.
	hot             *obs.HotSketch[Name]
	latchProf       *obs.LatchProf
	flight          []*trace.Ring
	latchSampleMask uint64

	stats statCounters
}

// defaultShards picks the shard count for Config.Shards == 0: enough
// stripes that GOMAXPROCS goroutines rarely collide, clamped to [8, 512].
func defaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	return nextPow2(n)
}

func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// New creates a lock manager with the given configuration.
func New(cfg Config) *Manager {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	ns := cfg.Shards
	if ns <= 0 {
		ns = defaultShards()
	}
	if ns > 1024 {
		ns = 1024
	}
	ns = nextPow2(ns)
	m := &Manager{
		chain:          memblock.New(cfg.InitialPages),
		clk:            cfg.Clock,
		cfg:            cfg,
		shards:         make([]shard, ns),
		shardMask:      uint64(ns - 1),
		apps:           make(map[int]*App),
		latchWaits:     metrics.NewShardCounters("lock table latch waits", ns),
		latchAcqs:      metrics.NewShardCounters("lock table latch acquisitions", ns),
		fastHits:       metrics.NewShardCounters("fast-path grants", ns),
		fastFallbacks:  metrics.NewShardCounters("fast-path fallbacks", ns),
		optHits:        metrics.NewShardCounters("optimistic read tokens", ns),
		optFailures:    metrics.NewShardCounters("optimistic validation failures", ns),
		relBatches:     metrics.NewShardCounters("release batches applied", ns),
		wakesCoalesced: metrics.NewShardCounters("wakeups coalesced", ns),
		flushWaits:     metrics.NewShardCounters("flush follower waits", ns),
		throtCulled:    metrics.NewShardCounters("throttle culled waiters", ns),
		throtReact:     metrics.NewShardCounters("throttle reactivated waiters", ns),
		throtDenied:    metrics.NewShardCounters("throttle culled denials", ns),
	}
	stripes := ns
	if stripes > 64 {
		stripes = 64 // histograms mask the shard index into range
	}
	m.waitHist = obs.NewHistogram("lock_wait", "ns", stripes)
	m.holdHist = obs.NewHistogram("lock_hold", "ns", stripes)
	m.admitHist = obs.NewHistogram("lock_admission", "ns", stripes)
	m.releaseHist = obs.NewHistogram("lock_release", "ns", stripes)
	stride := cfg.ObsSampleStride
	if stride == 0 {
		stride = 64
	}
	if stride > 0 {
		m.obsSampler = obs.NewSampler(stride)
		// Releases are roughly 1/L as frequent as acquisitions (one per
		// transaction), so the release histogram samples more densely.
		rel := stride / 4
		if rel < 1 {
			rel = 1
		}
		m.relSampler = obs.NewSampler(rel)
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.idx = i
		s.mu.Init()
		switch {
		case cfg.LatchSpin > 0:
			s.mu.SetFixedBudget(cfg.LatchSpin)
		case cfg.LatchSpin < 0:
			s.mu.SetFixedBudget(0)
		}
		s.table = make(map[Name]*lockHeader)
		s.waiting = make(map[*request]struct{})
		s.pool = m.chain.NewPool(cfg.LeaseChunk)
		s.relCond = sync.NewCond(&s.relMu)
		if cfg.Throttle > 0 {
			s.throtCeil.Store(int32(min(cfg.Throttle, throttleCeilMax)))
		}
	}
	m.initProfiler(cfg, ns, stride)
	return m
}

// hashName mixes a Name into a well-distributed 64-bit value
// (splitmix64-style finalizer).
func hashName(n Name) uint64 {
	x := n.Row*0x9E3779B97F4A7C15 ^ uint64(n.Table)*0xBF58476D1CE4E5B9 ^ uint64(n.Gran)<<56
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// shardOf returns the index of the shard owning name.
func (m *Manager) shardOf(name Name) int {
	return int(hashName(name) & m.shardMask)
}

// shardFor returns the shard owning name without latching it.
func (m *Manager) shardFor(name Name) *shard {
	return &m.shards[m.shardOf(name)]
}

// lockShard latches shard i, counting every acquisition (latchAcqs) and
// contended acquisitions (latchWaits) separately. The unconditional count
// is one uncontended atomic add on a shard-padded counter; it is what lets
// tests and benchmarks prove how many latches an operation really took.
func (m *Manager) lockShard(i int) *shard {
	s := &m.shards[i]
	m.latchAcqs.Shard(i).Inc()
	if lp := m.latchProf; lp != nil {
		// LockProfiled times only the contended path: the goroutine is
		// about to spin or park anyway, so the two clock reads are not
		// on any fast path.
		if waitNs, contended := s.mu.LockProfiled(); contended {
			m.latchWaits.Shard(i).Inc()
			lp.RecordWait(i, waitNs)
		}
	} else if s.mu.Lock() {
		m.latchWaits.Shard(i).Inc()
	}
	m.stampLatchAcquire(s)
	return s
}

// tryLockShard attempts shard i's latch without blocking. A successful
// attempt runs the same acquire-side bookkeeping as lockShard — the
// acquisition count and the sampled hold-stamp advance, which also clears
// any stale stamp a raw unlock left behind, so a TryLock'd visit can never
// attribute a bogus hold time to the profile (the manager.go:946 stale
// holdT0 hazard). A failed attempt is a contended acquire: the latch's own
// contended counter records it (the unified contention signal the spin
// controller and the commit-storm hysteresis share); latchWaits is not
// bumped because no acquisition happened.
func (m *Manager) tryLockShard(i int) (*shard, bool) {
	s := &m.shards[i]
	if !s.mu.TryLock() {
		return s, false
	}
	m.latchAcqs.Shard(i).Inc()
	m.stampLatchAcquire(s)
	return s, true
}

// stampLatchAcquire advances the sampled hold-time stamp under a
// just-taken shard latch: one-in-stride acquisitions stamp holdT0 for
// unlockShard to read; every other acquisition clears a stale stamp left
// by a raw unlock before anything could misread it.
func (m *Manager) stampLatchAcquire(s *shard) {
	if m.latchProf != nil {
		// The tick lives in the shard and advances under its latch — no
		// shared cache line.
		s.latchTick++
		if s.latchTick&m.latchSampleMask == 0 {
			s.holdT0 = time.Now()
		} else if !s.holdT0.IsZero() {
			s.holdT0 = time.Time{}
		}
	}
}

// unlockShard releases a latch taken by lockShard or tryLockShard,
// recording the sampled hold time when this acquisition was the
// one-in-stride stamped one — into the latch profile and, as the same
// sample, into the latch's own hold EWMA, which is what its adaptive spin
// budget retunes from. The paired form is diagnostics only: raw
// s.mu.Unlock() remains correct everywhere (the sample is simply dropped).
func (m *Manager) unlockShard(s *shard) {
	if lp := m.latchProf; lp != nil && !s.holdT0.IsZero() {
		ns := time.Since(s.holdT0).Nanoseconds()
		lp.RecordHold(s.idx, ns)
		s.mu.NoteHold(ns)
		s.holdT0 = time.Time{}
	}
	s.mu.Unlock()
}

// runGlobal executes f with every shard latch held (taken in ascending
// index order). It is the stop-the-world primitive the concurrent control
// plane works to avoid: every entry bumps GlobalRuns and its latches-held
// wall time feeds the GlobalHoldMax stall gauge, so callers are observable.
// Continuations are NOT drained here — they self-latch and must run with no
// latches held (flushConts).
func (m *Manager) runGlobal(f func()) {
	m.globalRuns.Add(1)
	// Raise the fast-path gate before latching, then drain in-flight fast
	// ops: a fast op bumps its shard's fastOps before reading the gate
	// (both seq-cst), so either it sees the raised gate and backs out, or
	// the drain below sees its count and waits. Ops seen here complete
	// without blocking on any latch (they take only their owner's mu and a
	// brief lk spin), so the drain terminates; ops arriving later observe
	// the gate and mutate nothing. After the drain, all latches held once
	// again means the whole table — grant words included — stands still.
	m.fastGate.Add(1)
	for i := range m.shards {
		m.lockShard(i)
	}
	for i := range m.shards {
		for m.shards[i].fastOps.Load() != 0 {
			runtime.Gosched()
		}
	}
	t0 := time.Now()
	f()
	m.globalHold.Observe(int64(time.Since(t0)))
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
	m.fastGate.Add(-1)
}

// GlobalRuns returns how many times the all-shard latch has been taken
// (runGlobal entries) since the manager was created. Steady-state
// control-plane operations — DetectDeadlocks, SweepTimeouts, Stats,
// ShardStatsSnapshot, DumpLocks — leave it unchanged; tests assert on that
// directly instead of relying on timing. Lock-free.
func (m *Manager) GlobalRuns() int64 { return m.globalRuns.Load() }

// GlobalHoldMax returns the maximum wall-clock duration any single
// all-shard critical section has held every latch — the worst fast-path
// stall the control plane has caused. Lock-free; Observe-only high
// watermark (it never decays).
func (m *Manager) GlobalHoldMax() time.Duration {
	return time.Duration(m.globalHold.Value())
}

// enqueueCont defers a continuation to the next global drain.
func (m *Manager) enqueueCont(f func(*Manager)) {
	m.contMu.Lock()
	m.conts = append(m.conts, f)
	m.contMu.Unlock()
	m.contN.Add(1)
}

// drainConts runs queued continuations FIFO until none remain. The caller
// must hold NO shard latches: continuations latch the shards they touch
// themselves (and may call runGlobal). Continuations may enqueue further
// continuations; the loop picks those up too. Concurrent drainers are safe
// — each continuation is popped, and therefore run, exactly once.
func (m *Manager) drainConts() {
	for m.contN.Load() > 0 {
		m.contMu.Lock()
		if len(m.conts) == 0 {
			m.contMu.Unlock()
			return
		}
		f := m.conts[0]
		m.conts = m.conts[1:]
		if len(m.conts) == 0 {
			m.conts = nil
		}
		m.contMu.Unlock()
		m.contN.Add(-1)
		f(m)
	}
}

// flushConts drains pending continuations, if any, with no latches held.
// Operations call it after releasing their shard latch(es); the atomic
// counter makes the common no-continuations case a single load. This used
// to enter global mode (runGlobal with an empty body) purely to get the
// continuations run under all latches — now that continuations self-latch,
// the drain costs only the shards each continuation actually touches.
func (m *Manager) flushConts() {
	if m.contN.Load() > 0 {
		m.drainConts()
	}
}

// RegisterApp adds a connected application.
func (m *Manager) RegisterApp() *App {
	m.ownersMu.Lock()
	defer m.ownersMu.Unlock()
	m.nextApp++
	a := &App{id: m.nextApp}
	m.apps[a.id] = a
	m.numApps.Add(1)
	return a
}

// UnregisterApp removes an application. The caller must have released all
// of its owners' locks first.
func (m *Manager) UnregisterApp(a *App) error {
	m.ownersMu.Lock()
	defer m.ownersMu.Unlock()
	if n := a.structs.Load(); n != 0 {
		return fmt.Errorf("lockmgr: app %d still holds %d lock structures", a.id, n)
	}
	if _, ok := m.apps[a.id]; ok {
		delete(m.apps, a.id)
		m.numApps.Add(-1)
	}
	return nil
}

// NumApps returns the number of connected applications — the
// num_applications input of minLockMemory. It is lock-free.
func (m *Manager) NumApps() int {
	return int(m.numApps.Load())
}

// NewOwner creates a lock owner (transaction) for an application.
func (m *Manager) NewOwner(a *App) *Owner {
	m.ownersMu.Lock()
	defer m.ownersMu.Unlock()
	m.nextOwner++
	o, _ := m.ownerPool.Get().(*Owner)
	if o == nil {
		o = &Owner{}
		if ns := len(m.shards); ns > 64 {
			o.touchedHi = make([]uint64, (ns+63)/64-1)
		}
	}
	o.id, o.app = m.nextOwner, a
	if m.owners != nil {
		m.owners.regPrev = o
	}
	o.regNext = m.owners
	m.owners = o
	m.nOwners++
	return o
}

// AcquireAsync requests a lock without blocking. weight is the number of
// lock structures the request consumes (1 for ordinary locks; bulk scans may
// lock contiguous row chunks that account as multiple structures). The
// returned Pending may already be complete.
func (m *Manager) AcquireAsync(o *Owner, name Name, mode Mode, weight int) *Pending {
	// Async callers keep the Pending for as long as they like, so the box
	// can never be recycled at commit.
	return m.acquireAsync(o, name, mode, weight, false)
}

// acquireAsync is the shared admission front end. recyclable marks boxes
// whose Pending cannot outlive the transaction (the blocking Acquire path);
// ReleaseAll returns those to the home shard's box cache.
func (m *Manager) acquireAsync(o *Owner, name Name, mode Mode, weight int, recyclable bool) *Pending {
	if !mode.Valid() || weight < 1 {
		p := newPending()
		p.complete(StatusDenied, fmt.Errorf("lockmgr: invalid request mode=%v weight=%d", mode, weight))
		return p
	}
	if name.Gran == GranTable && weight != 1 {
		p := newPending()
		p.complete(StatusDenied, errors.New("lockmgr: table locks have weight 1"))
		return p
	}
	// Admission-latency sampling: one in obsSampler.Stride() of each
	// owner's acquisitions pays for two time.Now calls; everything else
	// pays a plain owner-local increment (no shared sampler cacheline on
	// the per-grant path).
	var admit0 time.Time
	sampled := false
	if stride := uint64(m.obsSampler.Stride()); stride != 0 {
		o.obsTick++
		sampled = o.obsTick&(stride-1) == 0
	}
	if sampled {
		admit0 = time.Now()
	}
	hash := hashName(name)
	si := int(hash & m.shardMask)
	// Latch-free admission first: fast-eligible modes (IS/S/IX) try the
	// owner-local re-acquire cache and then a CAS on the published grant
	// word. A nil return means the attempt backed out having mutated
	// nothing; the request proceeds on the latched path below, which is
	// byte-for-byte the pre-fast-path pipeline plus a credit refill.
	if fastEligible(mode) {
		if p := m.tryFastAcquire(o, name, mode, weight, hash, si, recyclable, sampled); p != nil {
			if sampled {
				m.admitHist.RecordStripe(si, time.Since(admit0).Nanoseconds())
			}
			return p
		}
	}
	m.fastFallbacks.Shard(si).Inc()
	// Attribute-only (zero blame): every latched acquisition lands here —
	// including modes the fast path never attempts — so charging blame per
	// fallback would let cold private keys churn the sketch's slots and
	// evict genuinely wait-blamed locks. A zero-score observation credits
	// the counter on already-tracked keys and is dropped otherwise, which
	// also keeps this hook allocation- and CAS-free.
	m.hot.Observe(si, name, 0, obs.HotFallbacks, 1)
	// The request and its Pending are one allocation — and on a steady
	// commit workload not even that: ReleaseAll recycles the boxes of
	// committed transactions into the home shard's cache. The cache is
	// only poppable under the latch; when the latch-free mirror says it is
	// empty, allocate before latching so the malloc stays out of the
	// critical section.
	var box *requestAndPending
	if m.shards[si].rfreeN.Load() == 0 {
		box = &requestAndPending{}
	}
	s := m.lockShard(si)
	if box == nil {
		if box = s.popBox(); box == nil {
			box = &requestAndPending{} // raced empty; rare
		}
	}
	req := &box.req
	req.owner = o
	req.name = name
	req.mode = mode
	req.weight = weight
	req.pending = &box.pend
	req.box = box
	req.recyclable = recyclable
	req.obsSampled = sampled
	p := &box.pend
	ok := m.startRequest(s, si, req, false)
	if ok && s.fastPublishedN.Load() > 0 {
		// The shard serves fast-path traffic; top its credit up while the
		// latch is held. (Fast-path credit misses fall back to exactly
		// this path, so a dry shard self-heals here.)
		m.maybeRefillFastCredit(s)
	}
	m.unlockShard(s)
	if !ok {
		// The fast path backed out (quota or lease shortfall) without
		// mutating anything; re-run the full admission pipeline with
		// every latch held. runGlobal survivor: quota growth, pool
		// repatriation, synchronous growth, and escalation all need a
		// consistent simultaneous view of every lease pool and the chain —
		// no per-shard protocol can decide "memory is truly exhausted".
		m.runGlobal(func() {
			if !m.startRequest(s, si, req, true) {
				panic("lockmgr: global admission deferred")
			}
		})
		m.flushConts() // escalation continuations run after the latches drop
		if req.obsSampled {
			m.admitHist.RecordStripe(si, time.Since(admit0).Nanoseconds())
		}
		return p
	}
	m.flushConts()
	if req.obsSampled {
		m.admitHist.RecordStripe(si, time.Since(admit0).Nanoseconds())
	}
	return p
}

// Acquire requests a lock and blocks until grant, denial, or ctx
// cancellation. On cancellation the request is withdrawn.
func (m *Manager) Acquire(ctx context.Context, o *Owner, name Name, mode Mode, weight int) error {
	p := m.acquireAsync(o, name, mode, weight, true)
	if st, err := p.Status(); st != StatusWaiting {
		if st == StatusDenied {
			return err
		}
		return nil
	}
	select {
	case <-p.Done():
		_, err := p.Status()
		return err
	case <-ctx.Done():
		m.cancel(o, name)
		// The cancel may have raced with a grant; report the final state.
		if st, err := p.Status(); st == StatusDenied {
			return err
		}
		<-p.Done()
		_, err := p.Status()
		return err
	}
}

// startRequest runs the admission pipeline for a new or parked request:
// coverage, conversion, quota, allocation, grant-or-enqueue. s must be
// name's home shard and si its index. In fast mode (global == false) the
// caller holds only that latch; a false return means the request could not
// be admitted locally and nothing was mutated — the caller restarts it in
// global mode, where the caller holds every latch and startRequest always
// returns true.
func (m *Manager) startRequest(s *shard, si int, req *request, global bool) bool {
	o, name := req.owner, req.name
	req.parked = false

	// Staged group releases (grouprelease.go) are applied before this
	// request's conflict evaluation can observe them as conflicts, so no
	// waiter ever blocks behind — and no quota check ever charges for — a
	// lock whose release has committed. The drain piggybacks on the latch
	// the caller already holds, so every acquire that lands on a storming
	// shard is a free flush: the release side's latch acquisition is gone
	// entirely, not merely amortized. One predictable load when the list
	// is empty.
	if s.relHead.Load() != nil {
		m.drainStagedInline(s, si)
	}

	o.mu.Lock()
	if o.released {
		// Use-after-release: the transaction already committed or
		// aborted. Granting would leak a lock with no one to free it.
		// A parked request retried after release ends its wait here
		// (endWait settles the owner's inWait accounting; it is a no-op
		// for never-queued requests).
		o.mu.Unlock()
		m.endWait(req)
		req.pending.complete(StatusDenied,
			fmt.Errorf("lockmgr: owner %d already released", o.id))
		return true
	}
	// Touched-shard invariant: the bit is set before the request can be
	// granted, queued, or parked in this shard, so every request of a live
	// owner is homed in a touched shard and ReleaseAll need visit nothing
	// else. Marked even when the fast path backs out or the grant is
	// covered — conservative bits cost one latch at commit, never
	// correctness.
	o.markTouched(si)

	// Coverage: a table lock the owner already holds may subsume a row
	// request (notably right after this owner escalated). The table lock
	// may live in another shard; its owner-visible fields are stable
	// under o.mu.
	if name.Gran == GranRow {
		if ot := o.tableFor(name.Table); ot != nil && ot.tableReq != nil && ot.tableReq.granted &&
			!ot.tableReq.converting && covers(ot.tableReq.mode, req.mode) {
			o.mu.Unlock()
			m.grant(req)
			return true
		}
	}
	cur, isHeld := o.held.get(name)

	// Conversion: the owner already holds this lock. cur is homed in this
	// very shard, so its queue state is stable under the latch we hold.
	if isHeld && cur.granted {
		o.mu.Unlock()
		target := Supremum(cur.mode, req.mode)
		if target == cur.mode {
			m.grant(req) // already strong enough; nothing to do
			return true
		}
		if cur.converting {
			// One conversion at a time per lock keeps the protocol
			// simple; a second upgrade while one is in flight is a
			// transaction-layer bug.
			req.pending.complete(StatusDenied,
				fmt.Errorf("lockmgr: %v already converting", name))
			return true
		}
		m.startConversion(cur, target, req.pending, req.onGrant, req.onDeny)
		return true
	}

	// Saturation throttle (throttle.go): when the shard's concurrency
	// ceiling is engaged and this name's active wait queue has reached it,
	// divert the new waiter into the header's culled set instead of the
	// admission pipeline — it takes no quota, no structures, and no queue
	// position until the active queue drains. Checked before allocation so
	// a culled waiter is free to hold back; never applied to conversions
	// (they hold a grant the queue may be waiting behind). One atomic load
	// when the ceiling is disengaged.
	if !isHeld && s.throtCeil.Load() > 0 && m.maybeCull(s, si, req) {
		o.mu.Unlock()
		return true
	}

	if global {
		// The full admission pipeline may escalate, which re-enters this
		// owner's state (releaseGranted takes o.mu); drop o.mu first.
		o.mu.Unlock()
		// Every latch is held: apply all staged releases everywhere before
		// deciding that memory is truly exhausted — they are freeable
		// structs no escalation should have to reclaim.
		for i := range m.shards {
			if ss := &m.shards[i]; ss.relHead.Load() != nil {
				m.drainStagedInline(ss, i)
			}
		}
		switch m.admitStructsGlobal(req) {
		case admitDone:
			return true // pipeline completed the pending (denied/parked)
		default:
		}
		h := s.headerFor(name)
		m.sealFast(h)
		if len(h.converters) == 0 && len(h.waiters) == 0 && Compatible(req.mode, h.groupMode) {
			m.installGranted(h, req)
			m.settleFast(s, h)
			m.grant(req)
			return true
		}
		m.enqueueWaiter(s, si, h, req)
		return true
	}

	// Fast path: quota check and allocation touch only atomics and the
	// latched shard's lease pool, so o.mu stays held straight through the
	// grant — one critical section instead of two. On any obstacle, back
	// out with nothing mutated and let the caller go global.
	app := o.app
	if m.overQuotaFast(app, req.weight) {
		o.mu.Unlock()
		return false // quota growth/escalation needs all latches
	}
	hdl, ok := s.pool.Alloc(req.weight)
	if !ok {
		// The shard lease could not be refilled: free structures may be
		// stranded in other shards' pools, or memory is genuinely
		// exhausted. Either way the global path decides (flush, grow,
		// escalate).
		o.mu.Unlock()
		return false
	}
	req.handle = hdl
	app.structs.Add(int64(req.weight))
	h := s.headerFor(name)
	// Sealing under o.mu is deadlock-free: fast-path operations always take
	// o.mu *before* spinning for the word lock, and a word-lock holder never
	// blocks, so this spin terminates (see fastpath.go, "Lock ordering").
	m.sealFast(h)
	if len(h.converters) == 0 && len(h.waiters) == 0 && Compatible(req.mode, h.groupMode) {
		m.installGrantedLocked(h, req)
		m.settleFast(s, h)
		o.mu.Unlock()
		m.grant(req)
		return true
	}
	o.mu.Unlock()
	m.enqueueWaiter(s, si, h, req)
	return true
}

// testHookPreEnqueue, when non-nil, runs right before an admission
// enqueues a waiter or converter (shard latch held in fast mode, every
// latch in global mode; o.mu dropped) — inside the window between
// startRequest's entry drain and the waiting-set store. Tests use it to
// interleave a staged release into that window; always nil outside tests.
var testHookPreEnqueue func(m *Manager, si int)

// enqueueWaiter queues req on h's waiter list and registers it in the
// shard's waiting set. Caller holds the shard latch (and every other
// latch in global mode) but not o.mu.
//
// The staged-release re-check after the enqueue closes a lost-trigger
// race with the group-release walk (grouprelease.go): a batch staged
// during this latched section races its walk-end flush trigger against
// this enqueue — maybeFlushShard's nWaiting load can run before
// addWaiting's store and, with the list below the combining threshold,
// skip the flush, leaving this waiter blocked behind an already-committed
// release with no trigger left on a quiet shard. The accesses cross
// (stager: push relHead, then load nWaiting; here: store nWaiting, then
// load relHead — all sequentially consistent), so at least one side
// always observes the other: either the trigger sees the waiter and
// flushes, or the re-check sees the batch and drains it under the latch
// already held — symmetric with the entry check in startRequest.
func (m *Manager) enqueueWaiter(s *shard, si int, h *lockHeader, req *request) {
	if testHookPreEnqueue != nil {
		testHookPreEnqueue(m, si)
	}
	m.beginWait(req)
	h.waiters = append(h.waiters, req)
	req.header = h
	s.addWaiting(req)
	// Contention-profiler hooks: charge the enqueue and record the queue
	// depth high-water, then log the wait in the shard's flight ring. The
	// requester is about to park, so the Sprintf is off every fast path.
	depth := len(h.converters) + len(h.waiters)
	// The throttle controller's engage signal: track the deepest active
	// queue this shard saw since the last retune window (throttle.go).
	throtDepthMax(s, int32(depth))
	m.hot.Observe(si, h.name, hotEventBlameNs, obs.HotQueueMax, int64(depth))
	if m.flight != nil {
		m.flightAdd(si, trace.KindWait, req.owner.app.id,
			fmt.Sprintf("%s mode=%s owner=%d depth=%d", h.name, req.mode, req.owner.id, depth))
	}
	m.settleFast(s, h)
	if s.relHead.Load() != nil {
		m.drainStagedInline(s, si)
	}
}

// startConversion upgrades a granted request to target mode, waiting in the
// converter queue if incompatible holders exist. extra pending/handlers are
// attached to the conversion outcome. Caller holds cur's home shard latch.
func (m *Manager) startConversion(cur *request, target Mode, p *Pending, onGrant func(*Manager), onDeny func(*Manager, error)) {
	h := cur.header
	si := m.shardOf(cur.name)
	s := &m.shards[si]
	// A conversion mutates the granted group (mode change) or the converter
	// queue; either way the grant word must be fenced first so no fast CAS
	// admits against a stale group mode mid-conversion.
	m.sealFast(h)
	o := cur.owner
	o.mu.Lock()
	cur.converting = true
	cur.convert = target
	o.mu.Unlock()
	cur.pending = p
	cur.onGrant = onGrant
	cur.onDeny = onDeny
	if m.canConvert(cur, target) {
		m.finishConversion(cur, nil)
		m.settleFast(s, h)
		return
	}
	if testHookPreEnqueue != nil {
		testHookPreEnqueue(m, si)
	}
	m.beginWait(cur)
	h.converters = append(h.converters, cur)
	s.addWaiting(cur)
	// Same profiler hooks as enqueueWaiter, for the converter queue.
	depth := len(h.converters) + len(h.waiters)
	m.hot.Observe(si, h.name, hotEventBlameNs, obs.HotQueueMax, int64(depth))
	if m.flight != nil {
		m.flightAdd(si, trace.KindWait, cur.owner.app.id,
			fmt.Sprintf("%s convert=%s owner=%d depth=%d", h.name, target, cur.owner.id, depth))
	}
	m.settleFast(s, h)
	// Same lost-trigger re-check as enqueueWaiter: a release staged during
	// this latched section may hold exactly the incompatible grant this
	// conversion is queued behind, and its walk-end trigger may have read
	// nWaiting before the addWaiting store above.
	if s.relHead.Load() != nil {
		m.drainStagedInline(s, si)
	}
}

// canConvert reports whether cur can convert to target given the other
// granted holders. Caller holds cur's home shard latch.
func (m *Manager) canConvert(cur *request, target Mode) bool {
	ok := true
	cur.header.eachGranted(func(g *request) bool {
		if g != cur && !Compatible(target, g.mode) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func (m *Manager) finishConversion(cur *request, d *releaseDrain) {
	o := cur.owner
	o.mu.Lock()
	cur.mode = cur.convert
	cur.converting = false
	cur.convert = ModeNone
	o.mu.Unlock()
	cur.header.recomputeGroupMode()
	m.grantDeferred(cur, d)
}

// admitResult is the outcome of the admission/allocation step.
type admitResult uint8

const (
	// admitOK — structures allocated; proceed to the lock table.
	admitOK admitResult = iota
	// admitDone — the pending was completed (denied) or the request was
	// parked behind an escalation; nothing further to do.
	admitDone
)

// admitStructsGlobal is the full admission pipeline — quota growth,
// escalation, pool repatriation, synchronous growth — run with every shard
// latch held. It never returns admitRetryGlobal.
func (m *Manager) admitStructsGlobal(req *request) admitResult {
	app := req.owner.app

	if over, quota := m.overQuota(app, req.weight); over {
		// MAXLOCKS trigger. The algorithm's goal is "to avoid lock
		// escalation at all times by adjusting the lock memory", so
		// before escalating, grow the lock memory until the quota —
		// a percentage of total capacity — accommodates the holder.
		// Applications that declared a preference for escalation skip
		// the growth and escalate directly.
		if m.cfg.GrowSync != nil && quota > 0 && !prefersEscalation(m.cfg.Quota, app.id) {
			needCap := int(float64(app.structs.Load()+int64(req.weight))*100/quota) + 1
			needBlocks := (needCap - m.chain.Capacity() + memblock.StructsPerBlock - 1) / memblock.StructsPerBlock
			if needBlocks > 0 {
				if granted := m.cfg.GrowSync(needBlocks * memblock.BlockPages); granted > 0 {
					m.chain.Grow(granted)
					m.noteSyncGrowth(granted)
				}
			}
			over, quota = m.overQuota(app, req.weight)
		}
		if over {
			// Growth is capped out (LMOmax or maxLockMemory):
			// escalate this application's largest table, then retry
			// the request.
			if m.escalate(req.owner, req) {
				return admitDone // parked behind the escalation
			}
			// Nothing to escalate: the request alone exceeds the quota.
			m.stats.quotaDenials.Add(1)
			if m.cfg.Events != nil {
				m.cfg.Events.OnDenial(app.id, ErrQuotaExceeded)
			}
			req.pending.complete(StatusDenied, fmt.Errorf("%w: %d structs held + %d requested > %.1f%% of %d",
				ErrQuotaExceeded, app.structs.Load(), req.weight, quota, m.chain.Capacity()))
			return admitDone
		}
	}

	// Repatriate per-shard leases before the allocation of last resort, so
	// structures idling in pools never masquerade as memory pressure.
	if m.chain.Unreserved() < req.weight {
		m.flushPools()
	}
	if h, err := m.chain.Alloc(req.weight); err == nil {
		req.handle = h
		app.structs.Add(int64(req.weight))
		return admitOK
	}

	// Memory exhausted: grow synchronously from overflow memory. Requests
	// are whole 128 KB blocks, at least one, matching the allocation unit.
	if m.cfg.GrowSync != nil {
		needStructs := req.weight - m.chain.FreeStructs()
		needBlocks := (needStructs + memblock.StructsPerBlock - 1) / memblock.StructsPerBlock
		needPages := needBlocks * memblock.BlockPages
		if granted := m.cfg.GrowSync(needPages); granted > 0 {
			m.chain.Grow(granted)
			m.noteSyncGrowth(granted)
			if h, err := m.chain.Alloc(req.weight); err == nil {
				req.handle = h
				app.structs.Add(int64(req.weight))
				return admitOK
			}
		}
	}

	// Still constrained: escalate to free structures.
	if m.escalate(req.owner, req) {
		return admitDone // parked; retried after the escalation completes
	}

	m.stats.memoryDenials.Add(1)
	if m.cfg.Events != nil {
		m.cfg.Events.OnDenial(app.id, ErrLockMemory)
	}
	req.pending.complete(StatusDenied, ErrLockMemory)
	return admitDone
}

func (m *Manager) noteSyncGrowth(pages int) {
	m.stats.syncGrowths.Add(1)
	m.stats.syncGrowthPages.Add(int64(pages))
	m.invalidateQuotaCache()
	if m.cfg.Events != nil {
		m.cfg.Events.OnSyncGrowth(pages)
	}
}

// flushPools returns every shard's lease to the chain. Idle fast credit is
// drained back into the pool first so it is repatriated too — fast credit
// must never masquerade as memory pressure. Caller holds all shard latches
// (runGlobal, so the fast-op gate is drained).
func (m *Manager) flushPools() {
	for i := range m.shards {
		s := &m.shards[i]
		m.drainFastCredit(s)
		s.pool.Flush()
	}
}

// overQuota reports whether adding weight structures would put the app above
// lockPercentPerApplication, and returns the quota used. It reads the
// provider fresh — and therefore pays the provider's synchronization — so it
// is reserved for the global admission pipeline and for applications with
// per-app quota bias; the fast path uses overQuotaFast.
func (m *Manager) overQuota(app *App, weight int) (bool, float64) {
	if m.cfg.Quota == nil {
		return false, 100
	}
	quota := m.cfg.Quota.QuotaPercent(app.id, m.chain.Requests(), m.chain.Used())
	limit := quota / 100 * float64(m.chain.Capacity())
	return float64(app.structs.Load()+int64(weight)) > limit, quota
}

// quotaRefreshStride is how many lock-structure requests may elapse between
// fast-path refreshes of the cached quota percent. The paper's own
// QuotaTracker already tolerates a refresh period of 128 requests, so a
// 64-request cache stride adds no staleness class the tuning loop does not
// already absorb; it removes the provider's mutex from the per-acquire path.
const quotaRefreshStride = 64

// overQuotaFast is the admission fast path's quota check: it consults a
// cached quota percent, refreshing from the provider only when
// chain.Requests() has advanced past the stride watermark (or after a
// capacity change zeroed the watermark). The limit itself is always
// computed against the live capacity, so resizes take effect immediately
// even between refreshes. Applications with a per-app escalation bias
// bypass the cache entirely — the cached percent is the unbiased value and
// would overstate their quota. A stale answer is never load-bearing: "over"
// merely diverts the request to the global pipeline, which re-reads the
// provider fresh, and "under" admits at most a stride's worth of requests
// against a quota the provider would already have let drift that long.
func (m *Manager) overQuotaFast(app *App, weight int) bool {
	q := m.cfg.Quota
	if q == nil {
		return false
	}
	if prefersEscalation(q, app.id) {
		over, _ := m.overQuota(app, weight)
		return over
	}
	reqs := m.chain.Requests()
	if reqs >= m.quotaNext.Load() {
		pct := q.QuotaPercent(app.id, reqs, m.chain.Used())
		m.quotaPct.Store(math.Float64bits(pct))
		m.quotaNext.Store(reqs + quotaRefreshStride)
	}
	quota := math.Float64frombits(m.quotaPct.Load())
	limit := quota / 100 * float64(m.chain.Capacity())
	return float64(app.structs.Load()+int64(weight)) > limit
}

// invalidateQuotaCache forces the next fast-path quota check to re-read the
// provider. Called whenever lock-memory capacity changes, since the
// provider's percent may be a function of capacity.
func (m *Manager) invalidateQuotaCache() {
	m.quotaNext.Store(0)
}

// headerFor returns (creating if necessary) the lock table entry for name,
// recycling headers from the shard's freelist. Caller holds the shard latch.
func (s *shard) headerFor(name Name) *lockHeader {
	h, ok := s.table[name]
	if !ok {
		if n := len(s.hfree); n > 0 {
			h = s.hfree[n-1]
			s.hfree[n-1] = nil
			s.hfree = s.hfree[:n-1]
			h.name = name
		} else {
			h = &lockHeader{name: name}
		}
		s.table[name] = h
		s.syncTableMirror()
	}
	return h
}

// installGranted records req as a granted holder of h. Caller holds the
// home shard latch.
func (m *Manager) installGranted(h *lockHeader, req *request) {
	o := req.owner
	o.mu.Lock()
	m.installGrantedLocked(h, req)
	o.mu.Unlock()
}

// installGrantedLocked is installGranted for callers already holding the
// owner's mutex (the fast acquire path). Caller holds the home shard latch
// and req.owner.mu.
func (m *Manager) installGrantedLocked(h *lockHeader, req *request) {
	req.header = h
	h.addGranted(req)
	h.groupMode = Supremum(h.groupMode, req.mode)
	o := req.owner
	req.granted = true
	o.held.set(req.name, req)
	ot := o.tableOrCreate(req.name.Table)
	if req.name.Gran == GranTable {
		ot.tableReq = req
	} else {
		ot.setRow(req.name.Row, req)
		ot.rowStructs += req.weight
	}
}

// grant completes req's pending as granted and queues its continuation (if
// any) for the next global drain. Covered and no-op grants hold no
// structures and are not registered in the lock table; they pass through
// here all the same.
func (m *Manager) grant(req *request) {
	m.grantDeferred(req, nil)
}

// grantDeferred is grant with the wake-side work optionally coalesced: with
// a non-nil drain the Pending completion (a channel close — a runtime
// wakeup) and the onGrant continuation are appended to the drain's wake
// list instead of firing under the latch; the release walk fires them in
// one pass after every latch has been dropped (fireWakes). Everything the
// lock-table invariants depend on — the grant install, the wait-histogram
// sample, the inWait decrement — still happens here, under the latch, so a
// stopped world never observes a granted request still counted as waiting.
func (m *Manager) grantDeferred(req *request, d *releaseDrain) {
	m.stats.grants.Add(1)
	if m.flight != nil && !req.waitStart.IsZero() {
		si := m.shardOf(req.name)
		m.flightAdd(si, trace.KindGrant, req.owner.app.id,
			fmt.Sprintf("%s mode=%s owner=%d waited=%s",
				req.name, req.effectiveMode(), req.owner.id, m.clk.Now().Sub(req.waitStart)))
	}
	m.endWait(req)
	if req.obsSampled {
		req.grantedAt = time.Now()
	}
	p := req.pending
	og := req.onGrant
	req.pending = nil
	req.onGrant, req.onDeny = nil, nil
	if d != nil {
		if p != nil || og != nil {
			d.wakes = append(d.wakes, wakeEntry{p: p, og: og})
		}
		return
	}
	if p != nil {
		p.complete(StatusGranted, nil)
	}
	if og != nil {
		m.enqueueCont(og)
	}
}

// deny completes a waiting request with err, reverting conversions and
// freeing structures of never-granted requests. Caller holds the home shard
// latch.
func (m *Manager) deny(req *request, err error) {
	s := m.shardFor(req.name)
	s.delWaiting(req)
	m.endWait(req)
	if req.granted && !req.converting {
		// Defensive: the request was granted between being selected as
		// a victim and this call; there is nothing left to deny.
		return
	}
	h := req.header
	if h != nil {
		m.sealFast(h)
	}
	if req.converting {
		// Failed conversion: drop back to the original granted mode.
		for i, c := range h.converters {
			if c == req {
				h.converters = append(h.converters[:i], h.converters[i+1:]...)
				break
			}
		}
		o := req.owner
		o.mu.Lock()
		req.converting = false
		req.convert = ModeNone
		o.mu.Unlock()
		// The dead converter may have been the head of the priority
		// queue, blocking requests that are now grantable.
		m.post(s, h, nil)
	} else if req.culled {
		// Culled waiter (throttle.go): it holds no queue position and no
		// structures — unlink it from its header's culled stack and count
		// the denial, so the culled == reactivated + denied + live
		// identity CheckInvariants enforces stays exact. Removing it
		// unblocks nothing, but the header may now be empty.
		h.removeCulled(req)
		req.culled = false
		m.throtDenied.Shard(s.idx).Inc()
		m.throtLive.Add(-1)
		m.freeRequestStructs(s, req) // defensive: culled requests hold none
		s.cacheOrEvict(h)
	} else if h != nil {
		for i, w := range h.waiters {
			if w == req {
				h.waiters = append(h.waiters[:i], h.waiters[i+1:]...)
				break
			}
		}
		m.freeRequestStructs(s, req)
		// Likewise: an incompatible head waiter's removal can unblock
		// the requests queued behind it.
		m.post(s, h, nil)
		s.cacheOrEvict(h)
	} else {
		// Parked request: never entered a queue, but may hold structures
		// if it was parked after allocation (it is not today; keep the
		// accounting safe regardless).
		m.freeRequestStructs(s, req)
	}
	if h != nil {
		m.settleFast(s, h)
	}
	p := req.pending
	od := req.onDeny
	req.pending = nil
	req.onGrant, req.onDeny = nil, nil
	if p != nil {
		p.complete(StatusDenied, err)
	}
	if od != nil {
		m.enqueueCont(func(mm *Manager) { od(mm, err) })
	}
}

// freeRequestStructs returns req's structures to its home shard's lease
// pool. s must be req's home shard; the caller holds its latch.
func (m *Manager) freeRequestStructs(s *shard, req *request) {
	if req.fastLeased {
		// Fast-path grant: the structures were consumed from the shard's
		// fast credit, not its latched pool. Recredit them (the next fast
		// grant reuses the lease) and reverse the chain consumption.
		req.fastLeased = false
		s.fastFree.Add(int64(req.weight))
		m.chain.ReturnReserved(req.weight)
		req.owner.app.structs.Add(-int64(req.weight))
		return
	}
	if req.handle.Structs() > 0 {
		s.pool.Free(req.handle)
		req.owner.app.structs.Add(-int64(req.weight))
		req.handle = memblock.Handle{}
	}
}

// cacheOrEvict removes an empty header from the shard's table and recycles
// it on the bounded freelist (its emptied granted map is reused by the next
// header the shard creates). Caller holds the shard latch.
func (s *shard) cacheOrEvict(h *lockHeader) {
	if s.cacheOrEvictDeferred(h) {
		s.syncTableMirror()
	}
}

// cacheOrEvictDeferred is cacheOrEvict without the latch-free mirror
// update: the batch release path evicts several headers per shard visit
// and calls syncTableMirror once at the end. Returns whether the header
// was removed. Caller holds the shard latch and must sync the mirror
// before releasing it.
func (s *shard) cacheOrEvictDeferred(h *lockHeader) bool {
	if h == nil || h.published || !h.empty() || h.reactInFlight > 0 {
		// Published headers are never evicted or recycled: a fast op may
		// hold a slot-loaded pointer to one at any time, and keeping the
		// empty header resident (with an admitting all-zero grant word) is
		// exactly what keeps a hot key's grants latch-free across
		// transactions. Reclamation is deferred to Resize/slot pressure.
		// A header with reactivations in flight is likewise pinned: the
		// continuation decrements reactInFlight through req.header under
		// this latch (throttle.go), so the header must stay resident until
		// every popped culled waiter has re-entered admission.
		return false
	}
	delete(s.table, h.name)
	// Canonicalize before recycling (or dropping): settleFast on an evicted
	// header must see ModeNone and publish nothing.
	h.groupMode = ModeNone
	h.converters = nil
	h.waiters = nil
	h.culled = nil
	if len(s.hfree) < headerFreelistCap {
		s.hfree = append(s.hfree, h)
	}
	return true
}

// syncTableMirror refreshes the latch-free mirror of the shard's table
// size and bumps the fuzzy-read sequence. Caller holds the shard latch;
// CheckInvariants verifies the mirror is exact whenever no latch section
// is in flight.
func (s *shard) syncTableMirror() {
	s.nLocks.Store(int64(len(s.table)))
	s.seq.Add(1)
}

// post wakes queued requests on h after a release or conversion, in strict
// FIFO order: converters first, then waiters, stopping at the first
// incompatible request. s is h's shard; the caller holds its latch. A
// non-nil drain defers each grant's Pending completion to the post-walk
// wake pass (grantDeferred); the grant itself — queue removal, install,
// accounting — is still applied here, so FIFO order is decided under the
// latch and the deferred completions merely deliver it.
func (m *Manager) post(s *shard, h *lockHeader, d *releaseDrain) {
	m.postQueues(s, h, d)
	// Refill the active queue from the culled set once the grant pass has
	// drained what it can: every posting site — direct releases, denials,
	// and the group-release flush leader's deferred posting pass
	// (finishShardVisit) — feeds culled waiters back as headroom opens, so
	// reactivation piggybacks on the latches those paths already hold.
	if len(h.culled) != 0 {
		m.reactivateCulled(s, h)
	}
}

// postQueues is post's FIFO grant pass over the converter and waiter
// queues, stopping at the first incompatible request.
func (m *Manager) postQueues(s *shard, h *lockHeader, d *releaseDrain) {
	if len(h.converters) == 0 && len(h.waiters) == 0 {
		return
	}
	for len(h.converters) > 0 {
		c := h.converters[0]
		if !m.canConvert(c, c.convert) {
			return // converters have priority; nothing else may jump
		}
		h.converters = h.converters[1:]
		s.delWaiting(c)
		m.finishConversion(c, d)
	}
	for len(h.waiters) > 0 {
		w := h.waiters[0]
		if !Compatible(w.mode, h.groupMode) {
			return
		}
		h.waiters = h.waiters[1:]
		s.delWaiting(w)
		m.installGranted(h, w)
		m.grantDeferred(w, d)
	}
}

// releaseGranted removes a granted request from the lock table, frees its
// structures, and posts the queue. Caller holds the home shard latch.
func (m *Manager) releaseGranted(req *request) {
	s := m.shardFor(req.name)
	o := req.owner
	o.mu.Lock()
	m.releaseOwnerStateLocked(req)
	o.mu.Unlock()
	m.finishRelease(s, req)
}

// releaseOwnerStateLocked unlinks req from its owner's indexes. Caller
// holds the home shard latch and req.owner.mu.
func (m *Manager) releaseOwnerStateLocked(req *request) {
	o := req.owner
	o.held.del(req.name)
	if ot := o.tableFor(req.name.Table); ot != nil {
		if req.name.Gran == GranTable {
			ot.tableReq = nil
		} else {
			ot.delRow(req.name.Row)
			ot.rowStructs -= req.weight
		}
		// The (now possibly empty) ownerTable entry is kept: a
		// transaction cycling locks on the same table reuses it and its
		// row index instead of reallocating both every time.
	}
	req.granted = false
}

// finishRelease completes a release after the owner state is unlinked:
// lock-table removal, structure free, FIFO posting. s must be req's home
// shard; the caller holds its latch (and NOT req.owner.mu — posting may
// take other owners' mutexes).
func (m *Manager) finishRelease(s *shard, req *request) {
	if !req.grantedAt.IsZero() {
		held := time.Since(req.grantedAt).Nanoseconds()
		m.holdHist.RecordStripe(m.shardOf(req.name), held)
		req.grantedAt = time.Time{}
		if m.flight != nil {
			// Sampled (same 1/stride population as the hold histogram),
			// so the flight ring sees a representative release stream
			// without a Sprintf per commit.
			m.flightAdd(m.shardOf(req.name), trace.KindRelease, req.owner.app.id,
				fmt.Sprintf("%s mode=%s owner=%d held=%s", req.name, req.mode, req.owner.id, time.Duration(held)))
		}
	}
	h := req.header
	m.sealFast(h)
	h.removeGranted(req.owner)
	m.freeRequestStructs(s, req)
	h.recomputeGroupMode()
	m.post(s, h, nil)
	s.cacheOrEvict(h)
	m.settleFast(s, h)
}

// Release drops one granted lock, or cancels a waiting request for name.
// Strict 2PL callers use ReleaseAll instead; Release supports weaker
// isolation (e.g. cursor-stability read locks released at fetch).
func (m *Manager) Release(o *Owner, name Name) error {
	si := m.shardOf(name)
	// Symmetric fast path: a fast-granted IS/S/IX hold on a published
	// header releases by CAS decrement, deferring header reclamation to the
	// latched path (the emptied header stays resident and admitting).
	if m.shards[si].fastPublishedN.Load() > 0 && m.tryFastRelease(o, name, si) {
		return nil
	}
	s := m.lockShard(si)
	o.mu.Lock()
	req, ok := o.held.get(name)
	if !ok {
		o.mu.Unlock()
		m.unlockShard(s)
		return fmt.Errorf("lockmgr: owner %d does not hold %v", o.id, name)
	}
	if req.converting {
		// Rare path: withdraw the in-flight conversion first. deny and
		// releaseGranted take o.mu themselves.
		o.mu.Unlock()
		m.deny(req, ErrCanceled)
		m.releaseGranted(req)
		m.unlockShard(s)
		m.flushConts()
		return nil
	}
	m.releaseOwnerStateLocked(req)
	o.mu.Unlock()
	m.finishRelease(s, req)
	m.unlockShard(s)
	m.flushConts()
	return nil
}

// cancel withdraws a waiting request for name — a queued new request, a
// parked request, or an in-flight conversion (which reverts to its granted
// mode). When the home shard's published waiter count is zero there is
// nothing to withdraw and the latch is never taken: the canceling goroutine
// enqueued the request itself (program order), so if it were still waiting
// the nWaiting store would be visible; a zero means the request already
// left the queue (granted or denied) and the final state is readable from
// its Pending.
func (m *Manager) cancel(o *Owner, name Name) {
	si := m.shardOf(name)
	if m.shards[si].nWaiting.Load() == 0 {
		return
	}
	s := m.lockShard(si)
	for req := range s.waiting {
		if req.owner == o && req.name == name {
			m.deny(req, ErrCanceled)
			break
		}
	}
	m.unlockShard(s)
	m.flushConts()
}

// ReleaseAll releases every lock held or requested by the owner and removes
// the owner. Called at transaction commit or abort; calling it again is a
// no-op. This is the commit fast path: it visits only the owner's touched
// shards — O(locks held), not O(shards) — latching each exactly once, in
// ascending index order, and within each visit cancels the owner's waiting
// requests, then releases its row locks, then its table locks, posting each
// lock's FIFO queue as it goes.
//
// Ordering argument. Row-before-table release is preserved per shard; the
// global two-pass order the full sweep used to provide is unobservable once
// o.released is set: the owner issues no new requests (so its own coverage
// checks never run again), other owners' coverage checks read only their
// own byTable state, and escalation victim selection runs only for owners
// requesting locks. Invariant checks are order-independent — they hold at
// every latch release. TestReleaseOrderRowsBeforeTables pins the per-shard
// ordering choice.
//
// Concurrency. released is set under o.mu before the held set is read, so
// any concurrent admission either lands in the snapshot or is denied. If
// the owner has no requests in flight (inWait == 0 — see beginWait/endWait
// for the ordering proof), the snapshot is complete and only shards with
// held locks are visited, with no waiting-set scan at all. Otherwise every
// touched shard is visited and the held set is re-read under each shard's
// latch, so a wait granted between snapshot and visit is still found — in
// the shard's waiting set (denied) or in the re-read held set (released).
// Escalation continuations racing the walk are handled by per-request
// revalidation: a request is released only if it is still the owner's live
// entry for its name.
func (m *Manager) ReleaseAll(o *Owner) {
	m.releaseAll(o, false)
}

// FinishOwner is ReleaseAll plus Owner recycling for callers that can
// guarantee exclusive ownership of o: no concurrent or later use of the
// pointer, by ReleaseAll or anything else. (The transaction layer
// qualifies — its state machine calls finish exactly once.) Owners whose
// requests ever waited are not recycled: a denial or grant continuation
// can still hold the pointer for a moment after the release completes, so
// those owners are left to the garbage collector. ReleaseAll itself keeps
// the stronger guarantee that duplicate concurrent calls are harmless.
func (m *Manager) FinishOwner(o *Owner) {
	m.releaseAll(o, true)
}

// releaseAll does the work; it reports whether this call performed the
// release (false when a racing ReleaseAll got there first). recycle is
// FinishOwner's exclusive-pointer promise: when set (and the owner never
// waited) the owner is pooled after its last staged batch is applied —
// by this call if none were staged, by the final flush leader otherwise.
func (m *Manager) releaseAll(o *Owner, recycle bool) bool {
	// Release-latency sampling: one in relSampler.Stride() commits pays
	// for the two clock reads bracketing the walk. The stride counter is
	// deterministic, so under the simulated clock the recorded series
	// stays byte-reproducible.
	sampled := m.relSampler.Tick()
	var t0 time.Time
	if sampled {
		t0 = m.clk.Now()
	}

	o.mu.Lock()
	if o.released {
		o.mu.Unlock()
		return false // double release: commit and abort already raced, no-op
	}
	o.released = true
	quiesced := o.inWait.Load() == 0

	// Snapshot (name, request, shard) triples, rows before tables. Names
	// are copied out of the held index — revalidation and shard routing
	// never dereference a request pointer that a concurrent continuation
	// might have released (and recycling might have rewritten). The batch,
	// the drain, and the staged-batch arsenal are all owner-embedded
	// scratch, so the steady-state commit walk allocates nothing and
	// touches no sync.Pool.
	batch := &o.walkBatch
	batch.reset()
	shards := o.touchedShards(batch.buf[:0])
	if quiesced {
		// Snapshot AND detach in one pass: from here on the batch (and
		// any per-shard staged copies of it) is the only path to these
		// requests, so flush leaders never touch the owner's indexes.
		// The walk holds one stagedRefs bias; it is dropped as the very
		// last step below, so a leader draining a staged batch early can
		// never tear the owner down under the walk. everWaited is stable
		// for a quiesced owner, so the recycle decision is final here.
		batch.collectDetach(m, o)
		o.stagedRefs.Store(1)
		o.recycleOnZero = recycle && !o.everWaited
		o.sbUsed = 0
	}
	o.mu.Unlock()

	drain := &o.drain
	for _, si := range shards {
		if quiesced && !batch.hasShard(si) {
			continue // nothing held there and no waits in flight
		}
		if quiesced {
			// Commit path: group release. The visit latches the shard
			// itself only when the latch is free; otherwise the batch is
			// staged on the shard's MPSC list for a flush leader to apply
			// together with every other committer's (grouprelease.go).
			m.releaseShardGrouped(si, o, batch, drain)
			continue
		}
		s := m.lockShard(si)
		// Abort path: withdraw this shard's waiting requests first
		// (queued waiters, parked requests, in-flight conversions —
		// a denied conversion reverts to its granted mode and is
		// then released below). Skipped entirely when the shard has
		// no waiters at all.
		if len(s.waiting) > 0 {
			var victims []*request
			for req := range s.waiting {
				if req.owner == o {
					victims = append(victims, req)
				}
			}
			for _, req := range victims {
				m.deny(req, ErrCanceled)
			}
		}
		// Re-read the held set for this shard: a wait granted after
		// the release flag was set landed here under this latch.
		batch.reset()
		o.mu.Lock()
		batch.collectShard(m, o, si)
		o.mu.Unlock()
		m.releaseShardPhase1(s, si, o, batch, false, drain)
		m.relBatches.Shard(si).Inc()
		m.finishShardVisit(s, si, drain)
		m.unlockShard(s)
	}
	// Flush triggers: the walk staged fire-and-forget batches on storming
	// shards; before letting go, elect this committer flush leader on any
	// touched shard whose staging list is due — enough batches for a
	// worthwhile combined drain, or waiters that must not be left behind
	// staged releases. The drained grants merge into this walk's wake
	// pass. Shards below both bars keep accumulating: the next commit,
	// the next conflicting acquire (which always flushes first), or an
	// invariant sweep picks them up.
	if quiesced {
		for _, si := range shards {
			m.maybeFlushShard(si, drain)
		}
	}
	batch.buf = shards[:0]
	batch.reset()

	// The single deferred wake pass: every FIFO grant the walk (and any
	// staged batches its shard visits drained) produced is completed here,
	// with no latches held — wake-side work never re-latches a shard the
	// walk already dropped. The owner-embedded drain is safe to use up to
	// this point: the walk's stagedRefs bias (dropped below, last) keeps
	// the owner from being recycled under it.
	m.fireWakes(drain)

	if sampled {
		m.releaseHist.RecordStripe(int(o.id), int64(m.clk.Now().Sub(t0)))
	}

	// Deregister: unlink from the owners list. Exactly one ReleaseAll
	// reaches this point per owner (the released flag gates the walk), so
	// the links are spliced once.
	m.ownersMu.Lock()
	if o.regPrev != nil {
		o.regPrev.regNext = o.regNext
	} else {
		m.owners = o.regNext
	}
	if o.regNext != nil {
		o.regNext.regPrev = o.regPrev
	}
	o.regPrev, o.regNext = nil, nil
	m.nOwners--
	lastOut := m.nOwners == 0
	m.ownersMu.Unlock()
	m.flushConts()
	if lastOut {
		// Last one out turns off the lights: with no owner left to commit
		// (and thus no future flush trigger), force-apply every staged
		// batch so an idle manager charges nothing for finished
		// transactions. New owners registering concurrently stage into
		// freshly observed lists and carry their own triggers.
		m.flushAllStaged(drain)
	}

	if quiesced {
		// Drop the walk's stagedRefs bias — the walk's very last touch of
		// the owner. If every staged batch has already been applied this
		// performs the teardown; otherwise the final flush leader does.
		m.dropStagedRef(o)
	} else if recycle && !o.everWaited {
		// Abort path never stages (and in practice never recycles — an
		// owner with waits in flight has everWaited set); kept for the
		// contract's sake.
		o.resetForReuse()
		m.ownerPool.Put(o)
	}
	return true
}

// resetForReuse returns the owner to its zero state (keeping the sized
// touchedHi spill) so NewOwner can hand it to a fresh transaction. The
// inline arrays are cleared in full — swap-remove deletion and map spills
// can leave stale entries past the live prefix, and a recycled owner must
// not pin dead requests.
func (o *Owner) resetForReuse() {
	o.app = nil
	o.held.arr = [heldSmallMax]heldEntry{}
	o.held.n = 0
	o.held.m = nil
	o.released = false
	o.ot0used, o.ot0tid = false, 0
	o.ot0.reset()
	o.byTable = nil
	o.touched0 = 0
	for i := range o.touchedHi {
		o.touchedHi[i] = 0
	}
	o.inWait.Store(0)
	o.obsTick = 0
	o.stagedRefs.Store(0)
	o.recycleOnZero = false
}

// reset clears a per-table index for owner reuse.
func (ot *ownerTable) reset() {
	ot.tableReq = nil
	ot.rowStructs = 0
	ot.nRows = 0
	ot.rowsArr = [rowsSmallMax]rowEntry{}
	ot.rowsMap = nil
}

// releaseEntry is one held lock queued for release: the name is a copy, so
// routing and revalidation are safe even if the request itself is released
// (and its box recycled) by a racing escalation continuation. The home
// shard is computed once at collect time.
type releaseEntry struct {
	name Name
	req  *request
	si   int
}

// releaseBatch snapshots an owner's held locks for the touched-shard
// release walk: two flat slices (rows, then tables — the pinned per-shard
// release order) plus a bitmap of the shards they live in. Batches are
// pooled and their slices keep their capacity across commits, so the
// steady-state walk allocates nothing.
type releaseBatch struct {
	rows   []releaseEntry
	tables []releaseEntry
	shards [maxShardWords]uint64
	buf    []int // scratch for touchedShards
	live   []*request

	// Staging fields (grouprelease.go). A commit visiting a storming
	// shard copies that shard's entries into a dedicated pooled batch and
	// publishes it on the shard's MPSC list — fire-and-forget: the
	// entries were already detached from the owner's indexes at collect
	// time, so the stager never touches the batch again and a flush
	// leader returns it to the pool after applying it. next links the
	// staging list: it is written before the publishing CAS and read only
	// after the leader's Swap, so it needs no atomicity of its own.
	next        *releaseBatch
	stagedOwner *Owner
	pooled      bool // from releaseBatchPool (vs owner arsenal): leader returns it
	stagedShard int
}

var releaseBatchPool = sync.Pool{New: func() any { return new(releaseBatch) }}

func (b *releaseBatch) reset() {
	b.rows = b.rows[:0]
	b.tables = b.tables[:0]
	b.shards = [maxShardWords]uint64{}
}

func (b *releaseBatch) add(si int, name Name, r *request) {
	if name.Gran == GranRow {
		b.rows = append(b.rows, releaseEntry{name, r, si})
	} else {
		b.tables = append(b.tables, releaseEntry{name, r, si})
	}
	b.shards[si>>6] |= 1 << (uint(si) & 63)
}

func (b *releaseBatch) hasShard(si int) bool {
	return b.shards[si>>6]&(1<<(uint(si)&63)) != 0
}

// collect buckets every held lock. Caller holds o.mu.
func (b *releaseBatch) collect(m *Manager, o *Owner) {
	o.held.each(func(name Name, r *request) {
		b.add(m.shardOf(name), name, r)
	})
}

// collectDetach buckets every held lock and then wipes the owner's held
// and per-table indexes wholesale. Caller holds o.mu and has proved the
// owner quiesced (released set, inWait == 0), so the snapshot is exact and
// nothing can repopulate the indexes. Detaching here — rather than under
// each shard latch during the walk — is what makes staged batches
// self-contained: a flush leader applying one touches the lock table, the
// request, and the app's atomic quota, but never the owner's indexes, so
// leaders on different shards can apply the same owner's batches
// concurrently. The requests stay granted (table truth is untouched until
// a latched drain applies the batch); only the owner-side view is gone.
func (b *releaseBatch) collectDetach(m *Manager, o *Owner) {
	b.collect(m, o)
	for i := 0; i < o.held.n && i < heldSmallMax; i++ {
		o.held.arr[i] = heldEntry{}
	}
	o.held.n = 0
	o.held.m = nil
	o.ot0used, o.ot0tid = false, 0
	o.ot0.reset()
	o.byTable = nil
}

// collectShard buckets the held locks homed in shard si. Caller holds
// o.mu (and the shard latch, so the filtered view stays accurate).
func (b *releaseBatch) collectShard(m *Manager, o *Owner, si int) {
	o.held.each(func(name Name, r *request) {
		if m.shardOf(name) == si {
			b.add(si, name, r)
		}
	})
}

// releaseShardPhase1 releases one shard's share of the batch: revalidate
// and unlink every entry in a single o.mu critical section (rows first,
// then tables — the pinned order), then unlink each release from the lock
// table, free its structures, and recycle the boxes of committed blocking
// acquires into the shard's cache. Headers that still need a FIFO posting
// pass, the pooled frees awaiting one SettleFree, and the fast credit
// awaiting one recredit accumulate into the drain: the caller finishes the
// visit — settle once, post once — with finishShardVisit, after applying
// every batch it means to (its own plus any staged by other committers).
// Caller holds the shard latch.
//
// frozen says the caller proved the owner's held set can no longer change
// concurrently (the quiesced commit path: released was set under o.mu with
// inWait == 0, so any in-flight admission is denied before touching held,
// and no waits or escalation continuations exist to complete). Frozen
// batches were also detached from the owner's indexes at collect time
// (collectDetach), so the frozen walk touches only the requests, the lock
// table, and the app's atomic quota — never o.mu or the held index. That
// is what lets flush leaders on different shards apply the same owner's
// staged batches concurrently: each request lives in exactly one batch,
// and everything a leader touches is either request-local or guarded by
// the latch it holds. The abort path (waits in flight) passes frozen=false
// and pays o.mu plus pointer revalidation.
func (m *Manager) releaseShardPhase1(s *shard, si int, o *Owner, b *releaseBatch, frozen bool, d *releaseDrain) {
	live := b.live[:0]
	if !frozen {
		o.mu.Lock()
	}
	for _, lst := range [2][]releaseEntry{b.rows, b.tables} {
		for _, e := range lst {
			if e.si != si {
				continue
			}
			if !frozen {
				// Revalidate under latch + o.mu: an escalation
				// continuation may have released this entry since the
				// snapshot. Pointer identity against the live held index
				// decides; only a match proves e.req is still this
				// owner's request (and therefore not recycled), making
				// its fields safe to touch.
				if cur, ok := o.held.get(e.name); !ok || cur != e.req || !e.req.granted {
					continue
				}
				m.releaseOwnerStateLocked(e.req)
			} else {
				// Frozen batches were detached from the owner's indexes
				// at collect time (collectDetach); only the table-facing
				// grant flag remains to clear, under this latch, together
				// with the removeGranted below.
				e.req.granted = false
			}
			live = append(live, e.req)
		}
	}
	if !frozen {
		o.mu.Unlock()
	}
	// Unlink every released request from the lock table and return its
	// structures to the shard pool, accumulating the chain and app
	// accounting instead of paying an atomic per lock. Within one batch
	// headers are distinct (one request per name per owner), but a leader
	// draining several batches can meet the same header again — the
	// postPending flag queues it for the posting pass exactly once. A
	// published queue-free header is settled immediately after its unlink —
	// post would be a no-op and cacheOrEvictDeferred keeps it resident
	// regardless — so the hot headers of a fast-path workload are fenced
	// for one holder removal, not the whole batch. (The word reopens before
	// the accounting below lands; a racing fast grant that sees the stale
	// credit or quota merely falls back.) Everything else — headers with
	// queues (fenced anyway) and unpublished headers (not fast-reachable) —
	// defers to the visit's posting pass.
	poolFreed, weightFreed, fastFreed := 0, 0, 0
	for _, r := range live {
		if !r.grantedAt.IsZero() {
			m.holdHist.RecordStripe(m.shardOf(r.name), time.Since(r.grantedAt).Nanoseconds())
			r.grantedAt = time.Time{}
		}
		h := r.header
		w, open := m.sealFastWord(h)
		h.removeGranted(r.owner)
		if r.fastLeased {
			// Fast-path grant released at commit: recredit the shard's
			// fast-free balance instead of the latched pool.
			r.fastLeased = false
			fastFreed += r.weight
			weightFreed += r.weight
		} else if r.handle.Structs() > 0 {
			poolFreed += s.pool.FreeBatched(r.handle)
			weightFreed += r.weight
			r.handle = memblock.Handle{}
		}
		if open {
			// The seal caught a live word, so its counts are exactly the
			// pre-release granted group (and r — a granted holder of such a
			// header — is a non-converting IS/S/IX grant represented in
			// them): settle the removal with O(1) word arithmetic instead
			// of an O(holders) chain recompute. Releasing a compatible
			// holder is never an invalidating transition, so the epoch
			// (and with it the word seq — wordSub preserves the seq
			// bits) bumps only when the settled word still carries IX
			// weight and thus is not S-token-admissible; an S/IS-only
			// settle leaves outstanding optimistic tokens standing.
			nw := wordSub(w&^wordFence, r.mode)
			if (nw>>wordNIXShift)&wordCntMask != 0 {
				e := h.epoch.Add(1)
				nw = nw&^(wordSeqMask<<wordSeqShift) | (e&wordSeqMask)<<wordSeqShift
			}
			h.groupMode = Mode((nw >> wordGMShift) & wordGMMask)
			h.word.Store(nw)
			continue
		}
		h.recomputeGroupMode()
		if h.published && len(h.converters) == 0 && len(h.waiters) == 0 && len(h.culled) == 0 {
			m.settleFast(s, h)
		} else if !h.postPending {
			h.postPending = true
			d.hdrs = append(d.hdrs, h)
		}
	}
	d.poolFreed += poolFreed
	d.fastFreed += fastFreed
	// App quota settles per batch (each batch has its own application);
	// chain and pool totals settle once per visit in finishShardVisit.
	if weightFreed > 0 {
		o.app.structs.Add(-int64(weightFreed))
	}
	// Box recycling: live requests are fully unlinked (never queued, so
	// the posting pass cannot reference them) — recycle before the drain
	// moves on to the next batch.
	for _, r := range live {
		if r.recyclable && !r.everQueued {
			if len(s.rfree) < boxFreelistCap {
				s.pushBox(r.box)
			} else {
				// Shard cache full: feed the latch-free grant path's pool
				// instead of the garbage collector. Same ownership contract
				// as pushBox; boxes enter the pool zeroed.
				b := r.box
				b.req = request{}
				b.pend.reset()
				m.fastBoxPool.Put(b)
			}
		}
	}
	b.live = live[:0]
}

// finishShardVisit completes a latched release visit after every batch —
// the caller's own and any staged ones — has gone through
// releaseShardPhase1: settle the pooled frees and fast credit once, run the
// FIFO posting pass over the deferred headers (grant completions coalesce
// into the drain's wake list), and sync the table mirror once. Caller holds
// the shard latch and drops it right after; the wakes fire later, with no
// latches held (fireWakes).
func (m *Manager) finishShardVisit(s *shard, si int, d *releaseDrain) {
	// Settle accounting before posting: a grant fired by post reads the
	// app quota and chain usage, and must see the whole release.
	s.pool.SettleFree(d.poolFreed)
	if d.fastFreed > 0 {
		s.fastFree.Add(int64(d.fastFreed))
		m.chain.ReturnReserved(d.fastFreed)
	}
	evicted := false
	wakes0 := len(d.wakes)
	for _, h := range d.hdrs {
		h.postPending = false
		m.post(s, h, d)
		evicted = s.cacheOrEvictDeferred(h) || evicted
		m.settleFast(s, h)
	}
	if evicted {
		s.syncTableMirror()
	}
	if n := len(d.wakes) - wakes0; n > 0 {
		m.wakesCoalesced.Shard(si).Add(int64(n))
	}
	d.hdrs = d.hdrs[:0]
	d.poolFreed, d.fastFreed = 0, 0
}

// deadline computes the wait deadline for a new waiter.
func (m *Manager) deadline() time.Time {
	if m.cfg.LockTimeout <= 0 {
		return time.Time{}
	}
	return m.clk.Now().Add(m.cfg.LockTimeout)
}

// beginWait stamps a request entering a wait queue: the timeout deadline,
// the wait-start instant (manager clock, so simulated runs record
// deterministic wait durations), and the waits counter. It also marks the
// request ever-queued (excluding it from box recycling) and counts it in
// the owner's inWait gauge — exactly once, even if the request re-waits
// after being parked (the non-zero waitStart dedupes). The caller holds
// the home shard latch and appends the request to the waiter/converter
// queue itself.
func (m *Manager) beginWait(req *request) {
	now := m.clk.Now()
	req.everQueued = true
	req.owner.everWaited = true
	if req.waitStart.IsZero() {
		req.owner.inWait.Add(1)
	}
	req.waitStart = now
	if m.cfg.LockTimeout > 0 {
		req.deadline = now.Add(m.cfg.LockTimeout)
	} else {
		req.deadline = time.Time{}
	}
	m.stats.waits.Add(1)
}

// endWait records a completed wait (grant or deny) into the lock-wait
// histogram, striped by the request's home shard, and drops the owner's
// inWait count. One branch on the no-wait fast path, one atomic add when a
// wait actually ended. For grants it runs after installGranted, so an
// owner observing inWait == 0 under its mutex sees every granted request
// already in its held index.
func (m *Manager) endWait(req *request) {
	if req.waitStart.IsZero() {
		return
	}
	d := m.clk.Now().Sub(req.waitStart)
	req.waitStart = time.Time{}
	si := m.shardOf(req.name)
	m.waitHist.RecordStripe(si, int64(d))
	// Blame the lock for the whole wait (manager clock — deterministic
	// under the simulated clock). Nil-safe no-op when the profiler is off.
	m.hot.Observe(si, req.name, int64(d), obs.HotWaitNs, int64(d))
	req.owner.inWait.Add(-1)
}

// SweepTimeouts denies waiting requests whose deadline has passed and
// returns how many were denied. The simulation calls this each tick; a
// real-time deployment calls it from a ticker goroutine. Each shard is
// swept independently.
func (m *Manager) SweepTimeouts() int {
	// The sweep doubles as the culled set's liveness valve (throttle.go):
	// even with timeouts disabled, a pass must number itself and visit
	// shards whose culled waiters have stopped draining, so a culled
	// waiter whose progress depends on the deadlock detector regains its
	// wait-graph edges within a bounded number of passes.
	pass := m.sweepPass.Add(1)
	timeouts := m.cfg.LockTimeout > 0
	if !timeouts && m.throtLive.Load() == 0 {
		// Timeouts disabled and no culled waiters parked anywhere: the
		// sweep has nothing to do and takes no latches.
		return 0
	}
	now := m.clk.Now()
	denied := 0
	for i := range m.shards {
		// Idle-shard skip: the nWaiting mirror is published on every
		// wait-queue membership change, so a zero means the shard had no
		// waiters at some instant between the previous sweep and this one
		// — exactly the fuzziness a periodic sweep already tolerates. The
		// latch is never taken; an idle lock table sweeps with zero latch
		// acquisitions. Culled waiters live in the same set, so a shard
		// with any culled work is never skipped.
		if m.shards[i].nWaiting.Load() == 0 {
			continue
		}
		s := m.lockShard(i)
		var victims []*request
		var stale []*lockHeader
		for req := range s.waiting {
			if timeouts && !req.deadline.IsZero() && now.After(req.deadline) {
				victims = append(victims, req)
			}
			if req.culled && pass-req.culledPass >= 2 && req.header != nil {
				stale = appendHeaderOnce(stale, req.header)
			}
		}
		for _, req := range victims {
			// An earlier denial's queue post may have granted this one.
			if req.pending == nil {
				continue
			}
			if st, _ := req.pending.Status(); st != StatusWaiting {
				continue
			}
			m.stats.timeouts.Add(1)
			if m.cfg.Events != nil {
				m.cfg.Events.OnTimeout(req.owner.app.id)
			}
			m.deny(req, ErrTimeout)
			denied++
		}
		m.sweepCulled(s, stale)
		m.unlockShard(s)
	}
	m.flushConts()
	return denied
}

// Resize grows or shrinks the lock memory toward targetPages. Growth is
// exact (whole blocks); shrinking is best-effort, limited to entirely free
// blocks, per the section 2.2 protocol — shard leases are flushed first so
// idle pool reservations never pin blocks against the tuner. It returns the
// new size in pages.
func (m *Manager) Resize(targetPages int) int {
	cur := m.chain.Pages()
	switch {
	case targetPages > cur:
		m.chain.Grow(targetPages - cur)
	case targetPages < cur:
		// Flush each shard's lease under its latch, then shrink. Idle fast
		// credit is drained first (the Swap is safe against concurrent fast
		// ops — a racing CAS observes zero and falls back to the latched
		// path). A pool may re-lease between its flush and the shrink;
		// ShrinkBest is best-effort either way.
		for i := range m.shards {
			s := m.lockShard(i)
			m.drainFastCredit(s)
			s.pool.Flush()
			m.unlockShard(s)
		}
		m.chain.ShrinkBest(cur - targetPages)
	}
	m.invalidateQuotaCache()
	return m.chain.Pages()
}

// GrowPages grows the lock memory by exactly the given pages (rounded up to
// blocks); used when synchronous growth is managed externally.
func (m *Manager) GrowPages(pages int) int {
	n := m.chain.Grow(pages)
	m.invalidateQuotaCache()
	return n
}

// Pages returns the current lock memory size in pages. Lock-free.
func (m *Manager) Pages() int { return m.chain.Pages() }

// UsedStructs returns the lock structures in use. Lock-free; structures
// leased to shard pools but not serving a request count as free.
func (m *Manager) UsedStructs() int { return m.chain.Used() }

// CapacityStructs returns the lock structures the allocation can hold.
// Lock-free.
func (m *Manager) CapacityStructs() int { return m.chain.Capacity() }

// FreeStructs returns the lock structures not serving a request, including
// those leased to shard pools. UsedStructs + FreeStructs ==
// CapacityStructs holds at all times. Lock-free.
func (m *Manager) FreeStructs() int { return m.chain.FreeStructs() }

// FreeFraction returns the fraction of lock structures that are free.
// Lock-free.
func (m *Manager) FreeFraction() float64 { return m.chain.FreeFraction() }

// StructRequests returns the cumulative lock-structure request count.
// Lock-free.
func (m *Manager) StructRequests() int64 { return m.chain.Requests() }

// UsedPages returns lock-structure usage in whole pages. Lock-free.
func (m *Manager) UsedPages() int { return m.chain.UsedPages() }

// AppStructs returns the lock structures currently held by an application.
// Lock-free.
func (m *Manager) AppStructs(a *App) int {
	return int(a.structs.Load())
}

// Stats returns a snapshot of the event counters. Lock-free: the snapshot
// is not a single atomic cut across counters, which monitoring tolerates.
func (m *Manager) Stats() Stats {
	return Stats{
		Grants:               m.stats.grants.Load(),
		Waits:                m.stats.waits.Load(),
		Timeouts:             m.stats.timeouts.Load(),
		Deadlocks:            m.stats.deadlocks.Load(),
		Escalations:          m.stats.escalations.Load(),
		ExclusiveEscalations: m.stats.exclusiveEscalations.Load(),
		MemoryDenials:        m.stats.memoryDenials.Load(),
		QuotaDenials:         m.stats.quotaDenials.Load(),
		SyncGrowths:          m.stats.syncGrowths.Load(),
		SyncGrowthPages:      m.stats.syncGrowthPages.Load(),
	}
}

// HeldMode returns the mode the owner currently holds on name, or ModeNone.
func (m *Manager) HeldMode(o *Owner, name Name) Mode {
	s := m.lockShard(m.shardOf(name))
	defer m.unlockShard(s)
	o.mu.Lock()
	req, ok := o.held.get(name)
	o.mu.Unlock()
	if ok && req.granted {
		return req.mode
	}
	return ModeNone
}

// NumShards returns the number of lock-table shards.
func (m *Manager) NumShards() int { return len(m.shards) }

// ShardOf returns the index of the shard that homes name. Workload
// generators and benchmarks use it to build shard-targeted access patterns
// (e.g. a commit storm confined to a few hot shards); it takes no latches.
func (m *Manager) ShardOf(name Name) int { return m.shardOf(name) }

// LatchWaits returns the total number of contended shard-latch
// acquisitions — the direct measure of lock-table latch contention the
// striping is meant to eliminate. Lock-free.
func (m *Manager) LatchWaits() int64 { return m.latchWaits.Total() }

// LatchWaitCounters exposes the per-shard latch-wait counters for metrics
// wiring.
func (m *Manager) LatchWaitCounters() *metrics.ShardCounters { return m.latchWaits }

// LatchAcquisitions returns the total number of shard-latch acquisitions,
// contended or not. Together with a commit counter it proves the release
// path's latch cost: the full-sweep ReleaseAll paid 3×shards latches per
// commit; the touched-shard walk pays one per shard actually holding the
// owner's locks. Lock-free.
func (m *Manager) LatchAcquisitions() int64 { return m.latchAcqs.Total() }

// LatchAcqCounters exposes the per-shard latch-acquisition counters for
// metrics wiring.
func (m *Manager) LatchAcqCounters() *metrics.ShardCounters { return m.latchAcqs }

// WaitHist returns the lock-wait latency histogram. Durations are measured
// on the manager's clock — deterministic whole-tick values under the
// simulated clock, wall time in real deployments — and every completed
// wait is recorded (no sampling). Lock-free.
func (m *Manager) WaitHist() *obs.Histogram { return m.waitHist }

// HoldHist returns the lock hold-time histogram (wall clock, sampled at
// Config.ObsSampleStride). Lock-free.
func (m *Manager) HoldHist() *obs.Histogram { return m.holdHist }

// AdmissionHist returns the AcquireAsync end-to-end latency histogram
// (wall clock, sampled at Config.ObsSampleStride): latch acquisition,
// admission pipeline, and continuation flush. Lock-free.
func (m *Manager) AdmissionHist() *obs.Histogram { return m.admitHist }

// ReleaseHist returns the ReleaseAll (commit release) latency histogram.
// Durations are measured on the manager's clock — deterministic whole-tick
// values under the simulated clock, wall time in real deployments — and
// every first ReleaseAll per owner is recorded (no sampling; double
// releases are no-ops and not recorded). Lock-free.
func (m *Manager) ReleaseHist() *obs.Histogram { return m.releaseHist }

// ShardStats is a point-in-time view of one lock-table shard.
type ShardStats struct {
	// LatchWaits is the number of contended latch acquisitions.
	LatchWaits int64
	// LeaseRefills is the number of lease batches taken from the chain.
	LeaseRefills int64
	// LeaseReturns is the number of lease batches given back.
	LeaseReturns int64
	// PooledStructs is the shard's current idle lease balance.
	PooledStructs int
	// Locks is the number of lock headers in the shard.
	Locks int
	// Waiting is the number of requests waiting in the shard.
	Waiting int
	// Seq is the shard's summary sequence number at sampling time: it
	// advances on every lock-table or wait-queue membership change, so two
	// snapshots with equal Seq saw the shard in the same membership state.
	Seq uint64
}

// ShardStatsSnapshot captures each shard's summary counters. It is entirely
// latch-free: every field is an atomic counter or an atomically published
// mirror (nLocks/nWaiting/pooled), stamped with the shard's sequence number.
// A row whose Seq matches a later read's Seq saw no membership change in
// between; the data path is never stalled to take the picture.
func (m *Manager) ShardStatsSnapshot() []ShardStats {
	out := make([]ShardStats, len(m.shards))
	for i := range m.shards {
		s := &m.shards[i]
		out[i] = ShardStats{
			LatchWaits:    m.latchWaits.Shard(i).Value(),
			LeaseRefills:  s.pool.Refills(),
			LeaseReturns:  s.pool.Returns(),
			PooledStructs: s.pool.Pooled(),
			Locks:         int(s.nLocks.Load()),
			Waiting:       int(s.nWaiting.Load()),
			Seq:           s.seq.Load(),
		}
	}
	return out
}

// LeaseRefills returns the cumulative number of lease batches shards have
// taken from the chain; with LeaseReturns it measures how often the chain
// mutex appears on the data path.
func (m *Manager) LeaseRefills() int64 {
	var n int64
	for i := range m.shards {
		n += m.shards[i].pool.Refills()
	}
	return n
}

// LeaseReturns returns the cumulative number of lease batches given back to
// the chain.
func (m *Manager) LeaseReturns() int64 {
	var n int64
	for i := range m.shards {
		n += m.shards[i].pool.Returns()
	}
	return n
}
