package lockmgr

// Tests for the saturation-aware admission throttle (throttle.go): fixed
// ceilings cull and reactivate, culled waiters keep their liveness
// semantics (timeout, abort, deadlock via the sweep valve), and the
// adaptive controller engages, steps, and disengages with every move in
// the decision log.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// throttleIdentity asserts the lifetime accounting identity
// culled == reactivated + denied + live and runs CheckInvariants.
func throttleIdentity(t *testing.T, m *Manager) {
	t.Helper()
	c, r, d, l := m.ThrottleCulled(), m.ThrottleReactivated(), m.ThrottleDenied(), m.ThrottleLive()
	if c != r+d+l {
		t.Fatalf("throttle identity broken: culled=%d reactivated=%d denied=%d live=%d", c, r, d, l)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestThrottleFixedCeilingCullAndDrain pins the tentpole mechanics with a
// fixed ceiling: waiters beyond the ceiling divert into the culled set,
// stay StatusWaiting, and are fed back by releases until the backlog
// drains — every culled waiter eventually granted, none lost.
func TestThrottleFixedCeilingCullAndDrain(t *testing.T) {
	m := newMgr(Config{Throttle: 2, Shards: 1})
	row := RowName(1, 1)
	holder := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	const n = 6
	owners := make([]*Owner, n)
	pends := make([]*Pending, n)
	for i := range owners {
		owners[i] = m.NewOwner(m.RegisterApp())
		pends[i] = m.AcquireAsync(owners[i], row, ModeS, 1)
		mustWait(t, pends[i], "S waiter")
	}
	// Ceiling 2: the first two occupy the active queue, the other four
	// are culled.
	if got := m.ThrottleCulled(); got != n-2 {
		t.Fatalf("culled = %d, want %d", got, n-2)
	}
	if got := m.ThrottleLive(); got != n-2 {
		t.Fatalf("live = %d, want %d", got, n-2)
	}
	throttleIdentity(t, m)

	// Drain: each release posts the queue and refills it from the culled
	// stack. Every waiter must resolve granted within n rounds.
	m.ReleaseAll(holder)
	for round := 0; round < n; round++ {
		done := true
		for i, p := range pends {
			st, err := p.Status()
			switch st {
			case StatusGranted:
				m.ReleaseAll(owners[i])
				pends[i] = nil
			case StatusWaiting:
				done = false
			default:
				t.Fatalf("waiter %d: status=%v err=%v", i, st, err)
			}
		}
		// Compact the granted-and-released entries.
		live := pends[:0]
		liveOwners := owners[:0]
		for i, p := range pends {
			if p != nil {
				live = append(live, p)
				liveOwners = append(liveOwners, owners[i])
			}
		}
		pends, owners = live, liveOwners
		if done && len(pends) == 0 {
			break
		}
	}
	if len(pends) != 0 {
		t.Fatalf("%d waiters never drained", len(pends))
	}
	if c, r := m.ThrottleCulled(), m.ThrottleReactivated(); c != n-2 || r != c {
		t.Fatalf("culled=%d reactivated=%d, want %d each after drain", c, r, n-2)
	}
	if got := m.ThrottleLive(); got != 0 {
		t.Fatalf("live = %d after drain, want 0", got)
	}
	throttleIdentity(t, m)
}

// TestThrottleDisabled pins the negative Config.Throttle escape hatch: no
// waiter is ever culled regardless of queue depth.
func TestThrottleDisabled(t *testing.T) {
	m := newMgr(Config{Throttle: -1, Shards: 1})
	row := RowName(1, 1)
	holder := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")
	for i := 0; i < 32; i++ {
		mustWait(t, m.AcquireAsync(m.NewOwner(m.RegisterApp()), row, ModeS, 1), "S waiter")
	}
	m.RetuneThrottle() // must be a no-op too
	if got := m.ThrottleCulled(); got != 0 {
		t.Fatalf("culled = %d with throttle disabled", got)
	}
	if got := m.ThrottleCeilingMax(); got != 0 {
		t.Fatalf("ceiling = %d with throttle disabled", got)
	}
}

// TestThrottleTimeoutWhileCulled: culled waiters stay in the shard's
// waiting set, so LockTimeout still fires for them — denied in place with
// ErrTimeout, never reactivated.
func TestThrottleTimeoutWhileCulled(t *testing.T) {
	clk := clock.NewSim()
	m := newMgr(Config{Throttle: 1, Shards: 1, Clock: clk, LockTimeout: 10 * time.Second})
	row := RowName(1, 1)
	holder := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	// Staggered deadlines: the active waiter (deadline t=10) expires
	// first; LIFO reactivation then refills the freed slot with c2 (the
	// newest, deadline re-stamped on reactivation), so c1 times out at
	// t=12 while still culled — the in-place denial path.
	active := m.AcquireAsync(m.NewOwner(m.RegisterApp()), row, ModeS, 1)
	mustWait(t, active, "active waiter")
	clk.Advance(2 * time.Second)
	c1 := m.AcquireAsync(m.NewOwner(m.RegisterApp()), row, ModeS, 1)
	mustWait(t, c1, "c1 (culled)")
	clk.Advance(2 * time.Second)
	c2owner := m.NewOwner(m.RegisterApp())
	c2 := m.AcquireAsync(c2owner, row, ModeS, 1)
	mustWait(t, c2, "c2 (culled)")
	if got := m.ThrottleCulled(); got != 2 {
		t.Fatalf("culled = %d, want 2", got)
	}

	clk.Advance(7 * time.Second) // t=11: only the active waiter expired
	if n := m.SweepTimeouts(); n != 1 {
		t.Fatalf("swept %d at t=11, want 1 (active waiter)", n)
	}
	if st, err := active.Status(); st != StatusDenied || !errors.Is(err, ErrTimeout) {
		t.Fatalf("active waiter: status=%v err=%v, want timeout denial", st, err)
	}
	// The freed slot was refilled newest-first: c2 reactivated, c1 still
	// culled.
	if r := m.ThrottleReactivated(); r != 1 {
		t.Fatalf("reactivated = %d after refill, want 1 (c2)", r)
	}
	mustWait(t, c2, "c2 after reactivation")

	clk.Advance(2 * time.Second) // t=13: c1 (deadline 12) expired while culled
	if n := m.SweepTimeouts(); n != 1 {
		t.Fatalf("swept %d at t=13, want 1 (c1)", n)
	}
	if st, err := c1.Status(); st != StatusDenied || !errors.Is(err, ErrTimeout) {
		t.Fatalf("c1: status=%v err=%v, want timeout denial while culled", st, err)
	}
	if d := m.ThrottleDenied(); d != 1 {
		t.Fatalf("denied = %d, want 1 (c1 denied in place)", d)
	}
	if l := m.ThrottleLive(); l != 0 {
		t.Fatalf("live = %d after denial, want 0", l)
	}
	throttleIdentity(t, m)
	m.ReleaseAll(holder)
	mustGrant(t, c2, "c2 after holder release")
	m.ReleaseAll(c2owner)
	throttleIdentity(t, m)
}

// TestThrottleAbortWhileCulled: an owner abort (ReleaseAll with a wait in
// flight) withdraws its culled request like any waiting one — denied with
// ErrCanceled, accounting exact.
func TestThrottleAbortWhileCulled(t *testing.T) {
	m := newMgr(Config{Throttle: 1, Shards: 1})
	row := RowName(1, 1)
	holder := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	mustWait(t, m.AcquireAsync(m.NewOwner(m.RegisterApp()), row, ModeS, 1), "active waiter")
	aborter := m.NewOwner(m.RegisterApp())
	culled := m.AcquireAsync(aborter, row, ModeS, 1)
	mustWait(t, culled, "culled waiter")
	if got := m.ThrottleCulled(); got != 1 {
		t.Fatalf("culled = %d, want 1", got)
	}

	m.ReleaseAll(aborter) // abort: the culled wait is withdrawn in place
	if st, err := culled.Status(); st != StatusDenied || !errors.Is(err, ErrCanceled) {
		t.Fatalf("culled waiter: status=%v err=%v, want cancel denial", st, err)
	}
	if d := m.ThrottleDenied(); d != 1 {
		t.Fatalf("denied = %d, want 1", d)
	}
	throttleIdentity(t, m)
	m.ReleaseAll(holder)
	throttleIdentity(t, m)
}

// TestThrottleDeadlockVictimCulledThenReactivated pins the liveness valve:
// a deadlock cycle through a culled waiter is invisible to the detector
// (culled waiters export no wait-graph edges), but SweepTimeouts
// force-reactivates stale culled waiters, after which the detector sees
// the cycle and breaks it.
func TestThrottleDeadlockVictimCulledThenReactivated(t *testing.T) {
	m := newMgr(Config{Throttle: 1, Shards: 1})
	rowA, rowB := RowName(1, 1), RowName(1, 2)
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	filler := m.NewOwner(m.RegisterApp())

	mustGrant(t, m.AcquireAsync(o1, rowA, ModeX, 1), "o1 X A")
	mustGrant(t, m.AcquireAsync(o2, rowB, ModeX, 1), "o2 X B")

	// The filler occupies rowA's single active-queue slot so o2's request
	// for A is culled — its wait-for edge to o1 disappears from the graph.
	pFiller := m.AcquireAsync(filler, rowA, ModeS, 1)
	mustWait(t, pFiller, "filler S A")
	p2 := m.AcquireAsync(o2, rowA, ModeS, 1)
	mustWait(t, p2, "o2 S A (culled)")
	if got := m.ThrottleCulled(); got != 1 {
		t.Fatalf("culled = %d, want 1", got)
	}
	// Close the cycle: o1 waits for B, held by o2.
	p1 := m.AcquireAsync(o1, rowB, ModeS, 1)
	mustWait(t, p1, "o1 S B")

	// The cycle exists but one edge is culled: the detector must not see
	// it (no false victim, but also no detection).
	if n := m.DetectDeadlocks(); n != 0 {
		t.Fatalf("detector denied %d with the edge culled, want 0", n)
	}

	// Two sweep passes age the culled waiter past the valve threshold and
	// force-reactivate it into the active queue, restoring its edge.
	m.SweepTimeouts()
	m.SweepTimeouts()
	if got := m.ThrottleReactivated(); got != 1 {
		t.Fatalf("reactivated = %d after valve sweeps, want 1", got)
	}

	if n := m.DetectDeadlocks(); n == 0 {
		t.Fatal("detector found nothing after reactivation, want a victim")
	}
	// The victim is the youngest owner on the cycle (o2): exactly one of
	// the two cycle edges must have been denied with ErrDeadlock.
	st1, err1 := p1.Status()
	st2, err2 := p2.Status()
	deadlocked := 0
	if st1 == StatusDenied && errors.Is(err1, ErrDeadlock) {
		deadlocked++
	}
	if st2 == StatusDenied && errors.Is(err2, ErrDeadlock) {
		deadlocked++
	}
	if deadlocked != 1 {
		t.Fatalf("deadlock denials = %d (p1=%v/%v p2=%v/%v), want exactly 1",
			deadlocked, st1, err1, st2, err2)
	}
	throttleIdentity(t, m)
	m.ReleaseAll(o1)
	m.ReleaseAll(o2)
	m.ReleaseAll(filler)
	throttleIdentity(t, m)
}

// TestRetuneThrottleEngageStepDisengage drives the adaptive controller
// through its whole lifecycle — engage past the knee, hill-climb step,
// disengage after quiet windows — and checks every move landed in the
// decision log.
func TestRetuneThrottleEngageStepDisengage(t *testing.T) {
	m := newMgr(Config{Shards: 1}) // Throttle 0: adaptive
	dl := obs.NewDecisionLog(64)
	m.SetThrottleDecisionLog(dl)
	row := RowName(1, 1)
	holder := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	// Build a queue past the engage threshold while disengaged: nothing
	// is culled, but the high-water mark records the depth.
	var owners []*Owner
	for i := 0; i < throttleEngageHW+4; i++ {
		o := m.NewOwner(m.RegisterApp())
		owners = append(owners, o)
		mustWait(t, m.AcquireAsync(o, row, ModeS, 1), "S waiter")
	}
	if got := m.ThrottleCulled(); got != 0 {
		t.Fatalf("culled = %d while disengaged, want 0", got)
	}

	m.RetuneThrottle()
	if got := m.ThrottleCeilingMax(); got != throttleEngageCeil {
		t.Fatalf("ceiling = %d after engage window, want %d", got, throttleEngageCeil)
	}
	// With the ceiling engaged and the active queue far past it, the next
	// arrival is culled.
	late := m.NewOwner(m.RegisterApp())
	owners = append(owners, late)
	mustWait(t, m.AcquireAsync(late, row, ModeS, 1), "late S waiter")
	if got := m.ThrottleCulled(); got != 1 {
		t.Fatalf("culled = %d after engage, want 1", got)
	}

	// Second busy window with no grants: throughput regressed, so the
	// controller reverses and steps the ceiling up.
	m.RetuneThrottle()
	stepped := m.ThrottleCeilingMax()
	if stepped == throttleEngageCeil || stepped == 0 {
		t.Fatalf("ceiling = %d after regressed window, want a step away from %d",
			stepped, throttleEngageCeil)
	}

	// Drain everything, then two quiet windows disengage.
	m.ReleaseAll(holder)
	for round := 0; round < len(owners); round++ {
		for _, o := range owners {
			m.ReleaseAll(o)
		}
	}
	if got := m.ThrottleLive(); got != 0 {
		t.Fatalf("live = %d after drain, want 0", got)
	}
	m.RetuneThrottle() // clears the drain window's residual high-water mark
	m.RetuneThrottle() // quiet window 1
	m.RetuneThrottle() // quiet window 2: disengage
	if got := m.ThrottleCeilingMax(); got != 0 {
		t.Fatalf("ceiling = %d after quiet windows, want 0 (disengaged)", got)
	}

	actions := map[string]int{}
	for _, d := range dl.Decisions() {
		if d.Kind != obs.KindThrottleTune {
			t.Fatalf("decision kind = %q, want %q", d.Kind, obs.KindThrottleTune)
		}
		if d.CeilingBefore == d.CeilingAfter {
			t.Fatalf("decision %+v records no ceiling change", d)
		}
		actions[d.Action]++
	}
	if actions["throttle-engage"] == 0 || actions["throttle-disengage"] == 0 {
		t.Fatalf("decision log actions = %v, want engage and disengage present", actions)
	}
	if len(dl.Decisions()) < 3 {
		t.Fatalf("decision log has %d entries, want every ceiling move (≥3)", len(dl.Decisions()))
	}
	throttleIdentity(t, m)
}

// TestThrottleConcurrentHammer pounds one hot lock from many goroutines
// with a fixed ceiling while sweeps, detection, and invariant checks run
// concurrently — the -race gate's target for the culled-set paths.
func TestThrottleConcurrentHammer(t *testing.T) {
	m := newMgr(Config{Throttle: 2, Shards: 2, LockTimeout: 20 * time.Millisecond})
	app := m.RegisterApp()
	row := RowName(7, 7)
	stop := make(chan struct{})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				o := m.NewOwner(app)
				mode := ModeS
				if (seed+i)%4 == 0 {
					mode = ModeX
				}
				// Errors (timeout under the storm) are expected; the
				// accounting identity at the end is the assertion.
				_ = m.Acquire(context.Background(), o, row, mode, 1)
				m.ReleaseAll(o)
			}
		}(g)
	}
	// Control plane: the maintenance loops the real engine runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.SweepTimeouts()
			m.DetectDeadlocks()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	m.SweepTimeouts() // final valve pass for any parked stragglers
	if got := m.ThrottleLive(); got != 0 {
		t.Fatalf("live = %d after full drain, want 0", got)
	}
	throttleIdentity(t, m)
}
