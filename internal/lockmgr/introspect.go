package lockmgr

import (
	"fmt"
	"sort"
	"strings"
)

// Introspection: point-in-time views of the lock table for operators and
// tests, in the spirit of DB2's `db2pd -locks`.

// LockInfo describes one lock table entry.
type LockInfo struct {
	Name      Name
	GroupMode Mode
	Holders   []HolderInfo
	Waiters   []WaiterInfo
}

// HolderInfo describes one granted request.
type HolderInfo struct {
	OwnerID    uint64
	AppID      int
	Mode       Mode
	Weight     int
	Converting bool
	ConvertTo  Mode
}

// WaiterInfo describes one queued request.
type WaiterInfo struct {
	OwnerID uint64
	AppID   int
	Mode    Mode
}

// DumpLocks returns every lock table entry, ordered by name, for
// diagnostics. It is a snapshot: the table may change immediately after.
func (m *Manager) DumpLocks() []LockInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LockInfo, 0, len(m.table))
	for _, h := range m.table {
		li := LockInfo{Name: h.name, GroupMode: h.groupMode}
		for _, g := range h.granted {
			li.Holders = append(li.Holders, HolderInfo{
				OwnerID:    g.owner.id,
				AppID:      g.owner.app.id,
				Mode:       g.mode,
				Weight:     g.weight,
				Converting: g.converting,
				ConvertTo:  g.convert,
			})
		}
		sort.Slice(li.Holders, func(i, j int) bool { return li.Holders[i].OwnerID < li.Holders[j].OwnerID })
		for _, w := range append(append([]*request{}, h.converters...), h.waiters...) {
			li.Waiters = append(li.Waiters, WaiterInfo{
				OwnerID: w.owner.id,
				AppID:   w.owner.app.id,
				Mode:    w.effectiveMode(),
			})
		}
		out = append(out, li)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Name, out[j].Name
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Gran != b.Gran {
			return a.Gran < b.Gran
		}
		return a.Row < b.Row
	})
	return out
}

// String renders a LockInfo as a single diagnostic line.
func (li LockInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s mode=%-4s holders=[", li.Name, li.GroupMode)
	for i, h := range li.Holders {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "txn%d:%s", h.OwnerID, h.Mode)
		if h.Converting {
			fmt.Fprintf(&b, "→%s", h.ConvertTo)
		}
	}
	b.WriteString("]")
	if len(li.Waiters) > 0 {
		b.WriteString(" waiters=[")
		for i, w := range li.Waiters {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "txn%d:%s", w.OwnerID, w.Mode)
		}
		b.WriteString("]")
	}
	return b.String()
}

// CheckInvariants verifies internal consistency of the lock table; tests
// and long-running simulations call it. It returns the first violation
// found, or nil.
func (m *Manager) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()

	appStructs := make(map[int]int)
	for name, h := range m.table {
		if h.name != name {
			return fmt.Errorf("lockmgr: header name mismatch %v vs %v", h.name, name)
		}
		if h.empty() {
			return fmt.Errorf("lockmgr: empty header %v not deleted", name)
		}
		// Granted group mutually compatible, and groupMode correct.
		want := ModeNone
		holders := make([]*request, 0, len(h.granted))
		for o, g := range h.granted {
			if g.owner != o {
				return fmt.Errorf("lockmgr: %v granted map owner mismatch", name)
			}
			if !g.granted {
				return fmt.Errorf("lockmgr: %v non-granted request in granted group", name)
			}
			holders = append(holders, g)
			want = Supremum(want, g.mode)
			appStructs[g.owner.app.id] += g.handle.Structs()
		}
		for i := 0; i < len(holders); i++ {
			for j := i + 1; j < len(holders); j++ {
				if !Compatible(holders[i].mode, holders[j].mode) {
					return fmt.Errorf("lockmgr: %v incompatible granted group: %v vs %v",
						name, holders[i].mode, holders[j].mode)
				}
			}
		}
		if h.groupMode != want {
			return fmt.Errorf("lockmgr: %v groupMode %v, want %v", name, h.groupMode, want)
		}
		// Every waiter is registered in the waiting set, and — FIFO
		// soundness — the head waiter is genuinely blocked.
		for _, c := range h.converters {
			if _, ok := m.waiting[c]; !ok {
				return fmt.Errorf("lockmgr: %v converter missing from waiting set", name)
			}
			if !c.converting {
				return fmt.Errorf("lockmgr: %v non-converting request on converter queue", name)
			}
		}
		for _, w := range h.waiters {
			if _, ok := m.waiting[w]; !ok {
				return fmt.Errorf("lockmgr: %v waiter missing from waiting set", name)
			}
			appStructs[w.owner.app.id] += w.handle.Structs()
		}
		if len(h.converters) == 0 && len(h.waiters) > 0 {
			if Compatible(h.waiters[0].mode, h.groupMode) {
				return fmt.Errorf("lockmgr: %v head waiter %v compatible with group %v but not granted",
					name, h.waiters[0].mode, h.groupMode)
			}
		}
	}

	// Owner indexes agree with the lock table.
	for _, o := range m.owners {
		for name, req := range o.held {
			h := m.table[name]
			if h == nil || h.granted[o] != req {
				return fmt.Errorf("lockmgr: owner %d holds %v not present in table", o.id, name)
			}
		}
		for tid, ot := range o.byTable {
			structs := 0
			for row, r := range ot.rows {
				if o.held[RowName(tid, row)] != r {
					return fmt.Errorf("lockmgr: owner %d byTable row %d desynced", o.id, row)
				}
				structs += r.weight
			}
			if structs != ot.rowStructs {
				return fmt.Errorf("lockmgr: owner %d table %d rowStructs %d, want %d",
					o.id, tid, ot.rowStructs, structs)
			}
		}
	}

	// Per-application struct accounting matches the chain.
	total := 0
	for id, n := range appStructs {
		if app := m.apps[id]; app != nil && app.structs != n {
			return fmt.Errorf("lockmgr: app %d structs %d, want %d", id, app.structs, n)
		}
		total += n
	}
	if used := m.chain.Used(); used != total {
		return fmt.Errorf("lockmgr: chain used %d, requests account for %d", used, total)
	}
	return nil
}
