package lockmgr

import (
	"fmt"
	"sort"
	"strings"
)

// Introspection: point-in-time views of the lock table for operators and
// tests, in the spirit of DB2's `db2pd -locks`. DumpLocks reads the table
// one shard latch at a time — a fuzzy snapshot, like db2pd's own unlatched
// walk, that never stalls the fast path. CheckInvariants is the one
// deliberate exception: it is stop-the-world (runGlobal), because the
// cross-shard accounting it verifies only balances on a single consistent
// cut.

// LockInfo describes one lock table entry.
type LockInfo struct {
	Name      Name
	GroupMode Mode
	Holders   []HolderInfo
	Waiters   []WaiterInfo
}

// HolderInfo describes one granted request.
type HolderInfo struct {
	OwnerID    uint64
	AppID      int
	Mode       Mode
	Weight     int
	Converting bool
	ConvertTo  Mode
}

// WaiterInfo describes one queued request.
type WaiterInfo struct {
	OwnerID uint64
	AppID   int
	Mode    Mode
}

// DumpLocks returns every lock table entry, ordered by name, for
// diagnostics. Each shard is read under its own latch, one at a time, so
// the dump never freezes the whole table; entries from different shards may
// reflect slightly different instants (a lock released in shard 0 after its
// visit can still appear held in shard 5's rows). Within one entry the view
// is exact.
func (m *Manager) DumpLocks() []LockInfo {
	var out []LockInfo
	for i := range m.shards {
		s := m.lockShard(i)
		for _, h := range s.table {
			// Published headers accept latch-free grants; seal the word so
			// the granted group is stable (and race-free) while we copy it,
			// settle before moving on.
			m.sealFast(h)
			li := LockInfo{Name: h.name, GroupMode: h.groupMode}
			h.eachGranted(func(g *request) bool {
				li.Holders = append(li.Holders, HolderInfo{
					OwnerID:    g.owner.id,
					AppID:      g.owner.app.id,
					Mode:       g.mode,
					Weight:     g.weight,
					Converting: g.converting,
					ConvertTo:  g.convert,
				})
				return true
			})
			sort.Slice(li.Holders, func(i, j int) bool { return li.Holders[i].OwnerID < li.Holders[j].OwnerID })
			for _, w := range append(append([]*request{}, h.converters...), h.waiters...) {
				li.Waiters = append(li.Waiters, WaiterInfo{
					OwnerID: w.owner.id,
					AppID:   w.owner.app.id,
					Mode:    w.effectiveMode(),
				})
			}
			m.settleFast(s, h)
			out = append(out, li)
		}
		m.unlockShard(s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Name, out[j].Name
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Gran != b.Gran {
			return a.Gran < b.Gran
		}
		return a.Row < b.Row
	})
	return out
}

// String renders a LockInfo as a single diagnostic line.
func (li LockInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s mode=%-4s holders=[", li.Name, li.GroupMode)
	for i, h := range li.Holders {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "txn%d:%s", h.OwnerID, h.Mode)
		if h.Converting {
			fmt.Fprintf(&b, "→%s", h.ConvertTo)
		}
	}
	b.WriteString("]")
	if len(li.Waiters) > 0 {
		b.WriteString(" waiters=[")
		for i, w := range li.Waiters {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "txn%d:%s", w.OwnerID, w.Mode)
		}
		b.WriteString("]")
	}
	return b.String()
}

// CheckInvariants verifies internal consistency of the lock table; tests
// and long-running simulations call it. It returns the first violation
// found, or nil.
//
// This is a deliberate runGlobal survivor — the only steady-state reader
// left on the all-shard latch. It cross-checks owner indexes against lock
// tables in other shards, sums per-application structures across every
// shard, and reconciles chain reservations against all lease pools: none of
// those identities hold on a fuzzy cut, only when the whole table stands
// still. Tests accept the stall; production observers use the latch-free
// Stats/ShardStatsSnapshot instead.
func (m *Manager) CheckInvariants() error {
	var err error
	m.runGlobal(func() {
		err = m.checkInvariantsLocked()
	})
	return err
}

// checkInvariantsLocked does the work. Caller holds all shard latches.
func (m *Manager) checkInvariantsLocked() error {
	appStructs := make(map[int]int)
	inWait := make(map[*Owner]int)
	liveCulled, reactInFlight := 0, 0
	for i := range m.shards {
		s := &m.shards[i]
		// The latch-free observation mirrors must agree exactly with the
		// latched truth while every latch is held.
		if got, want := s.nLocks.Load(), int64(len(s.table)); got != want {
			return fmt.Errorf("lockmgr: shard %d nLocks mirror %d, table has %d", i, got, want)
		}
		if got, want := s.nWaiting.Load(), int64(len(s.waiting)); got != want {
			return fmt.Errorf("lockmgr: shard %d nWaiting mirror %d, waiting has %d", i, got, want)
		}
		if got, want := s.pool.Pooled(), s.pool.Structs(); got != want {
			return fmt.Errorf("lockmgr: shard %d pooled mirror %d, pool holds %d", i, got, want)
		}
		fastInUse := 0  // Σ granted fast-leased weights in this shard
		publishedN := 0 // published headers resident in this shard's table
		culledHere := 0 // culled requests on this shard's header stacks
		for name, h := range s.table {
			if h.published {
				publishedN++
				slot := s.fastSlots[fastSlotIndex(hashName(name))].Load()
				if slot != h {
					return fmt.Errorf("lockmgr: published header %v not in its fast slot", name)
				}
			}
			if h.name != name {
				return fmt.Errorf("lockmgr: header name mismatch %v vs %v", h.name, name)
			}
			if m.shardOf(name) != i {
				return fmt.Errorf("lockmgr: %v hashed to shard %d but stored in %d", name, m.shardOf(name), i)
			}
			if h.empty() && !h.published {
				// Published headers are deliberately kept resident while
				// empty (deferred reclamation keeps hot keys latch-free);
				// everything else must be evicted when its last interest
				// leaves.
				return fmt.Errorf("lockmgr: empty header %v not deleted", name)
			}
			// Grant word vs latched chain state. The world is stopped
			// (runGlobal gate), so no fast op can hold lk and the word must
			// be exactly what a settle would store: the packed counts +
			// group mode when the state is fast-representable, a fence
			// otherwise. Unpublished headers never carry a word.
			if w := h.word.Load(); h.published {
				if w&wordLk != 0 {
					return fmt.Errorf("lockmgr: %v grant word locked with the world stopped", name)
				}
				seq := (w >> wordSeqShift) & wordSeqMask
				if want := m.recomputeWord(h, seq); w != want {
					return fmt.Errorf("lockmgr: %v grant word %#x disagrees with chain state %#x", name, w, want)
				}
				// Optimistic epoch cross-check: the word's 11-bit settle
				// seq is defined as the low bits of the 64-bit reader
				// epoch. Every latched settle and every fast IX admission
				// bumps both together; with the world stopped they must
				// coincide, or a wrapped seq could ABA an optimistic
				// reader past a missed invalidation.
				if e := h.epoch.Load(); e&wordSeqMask != seq {
					return fmt.Errorf("lockmgr: %v settle seq %d desynced from epoch %d (low bits %d)",
						name, seq, e, e&wordSeqMask)
				}
			} else if w != 0 {
				return fmt.Errorf("lockmgr: %v unpublished header carries grant word %#x", name, w)
			}
			// Granted group mutually compatible, and groupMode correct.
			// The overflow map (if any) must key by owner.
			for o, g := range h.gmap {
				if g.owner != o {
					return fmt.Errorf("lockmgr: %v granted map owner mismatch", name)
				}
			}
			want := ModeNone
			holders := make([]*request, 0, h.grantedLen())
			var grantErr error
			h.eachGranted(func(g *request) bool {
				if !g.granted {
					grantErr = fmt.Errorf("lockmgr: %v non-granted request in granted group", name)
					return false
				}
				holders = append(holders, g)
				want = Supremum(want, g.mode)
				if g.fastLeased {
					// Fast-path grants hold no handle; their structures
					// live in the shard's standing fast lease.
					appStructs[g.owner.app.id] += g.weight
					fastInUse += g.weight
				} else {
					appStructs[g.owner.app.id] += g.handle.Structs()
				}
				return true
			})
			if grantErr != nil {
				return grantErr
			}
			for i := 0; i < len(holders); i++ {
				for j := i + 1; j < len(holders); j++ {
					if !Compatible(holders[i].mode, holders[j].mode) {
						return fmt.Errorf("lockmgr: %v incompatible granted group: %v vs %v",
							name, holders[i].mode, holders[j].mode)
					}
				}
			}
			if h.groupMode != want {
				return fmt.Errorf("lockmgr: %v groupMode %v, want %v", name, h.groupMode, want)
			}
			// Every waiter is registered in its shard's waiting set, and —
			// FIFO soundness — the head waiter is genuinely blocked.
			for _, c := range h.converters {
				if _, ok := s.waiting[c]; !ok {
					return fmt.Errorf("lockmgr: %v converter missing from waiting set", name)
				}
				if !c.converting {
					return fmt.Errorf("lockmgr: %v non-converting request on converter queue", name)
				}
			}
			for _, w := range h.waiters {
				if _, ok := s.waiting[w]; !ok {
					return fmt.Errorf("lockmgr: %v waiter missing from waiting set", name)
				}
				appStructs[w.owner.app.id] += w.handle.Structs()
			}
			// Culled-set accounting (throttle.go): every culled request is
			// flagged, registered in the waiting set (so sweeps find it),
			// belongs to this header, holds no grant, no conversion, and
			// no lock structures or fast lease — it was culled before
			// allocation and reconciles to zero charged weight.
			for _, c := range h.culled {
				if !c.culled {
					return fmt.Errorf("lockmgr: %v unflagged request on culled stack", name)
				}
				if _, ok := s.waiting[c]; !ok {
					return fmt.Errorf("lockmgr: %v culled request missing from waiting set", name)
				}
				if c.header != h {
					return fmt.Errorf("lockmgr: %v culled request headed elsewhere", name)
				}
				if c.granted || c.converting {
					return fmt.Errorf("lockmgr: %v culled request granted/converting", name)
				}
				if c.handle.Structs() != 0 || c.fastLeased {
					return fmt.Errorf("lockmgr: %v culled request holds lock structures", name)
				}
				culledHere++
			}
			if h.reactInFlight < 0 {
				return fmt.Errorf("lockmgr: %v negative reactivations in flight", name)
			}
			reactInFlight += h.reactInFlight
			if len(h.converters) == 0 && len(h.waiters) > 0 {
				if Compatible(h.waiters[0].mode, h.groupMode) {
					return fmt.Errorf("lockmgr: %v head waiter %v compatible with group %v but not granted",
						name, h.waiters[0].mode, h.groupMode)
				}
			}
		}
		// Every member of the waiting set (queued waiters, converters, and
		// parked requests) counts toward its owner's inWait gauge and must
		// have its home shard's touched bit set — the bit is set before the
		// request can reach any queue, and never cleared.
		waitingCulled := 0
		for req := range s.waiting {
			inWait[req.owner]++
			if req.culled {
				waitingCulled++
			}
			if !req.everQueued {
				return fmt.Errorf("lockmgr: shard %d waiting request on %v not marked everQueued", i, req.name)
			}
			if !req.owner.isTouched(i) {
				return fmt.Errorf("lockmgr: owner %d waits in shard %d without touched bit", req.owner.id, i)
			}
		}
		// No lost culled waiters: every culled request in the waiting set
		// sits on exactly one header's culled stack, and vice versa.
		if waitingCulled != culledHere {
			return fmt.Errorf("lockmgr: shard %d waiting set holds %d culled requests, header stacks hold %d",
				i, waitingCulled, culledHere)
		}
		liveCulled += culledHere
		// Fast-path slot array: every non-nil slot points at a published
		// header of this shard's table, and the published population mirror
		// is exact.
		slotN := 0
		for j := range s.fastSlots {
			h := s.fastSlots[j].Load()
			if h == nil {
				continue
			}
			slotN++
			if !h.published {
				return fmt.Errorf("lockmgr: shard %d slot %d holds unpublished header %v", i, j, h.name)
			}
			if s.table[h.name] != h {
				return fmt.Errorf("lockmgr: shard %d slot %d header %v not in table", i, j, h.name)
			}
			if fastSlotIndex(hashName(h.name)) != j {
				return fmt.Errorf("lockmgr: shard %d header %v in wrong slot %d", i, h.name, j)
			}
		}
		if slotN != publishedN || int(s.fastPublishedN.Load()) != publishedN {
			return fmt.Errorf("lockmgr: shard %d published-header counts disagree: slots %d, table %d, mirror %d",
				i, slotN, publishedN, s.fastPublishedN.Load())
		}
		// Fast credit: the standing lease physically backs the whole credit
		// line; the consumed part is exactly the granted fast-leased weight
		// resident in this shard.
		free := int(s.fastFree.Load())
		if free < 0 || free > s.fastLeaseTotal {
			return fmt.Errorf("lockmgr: shard %d fast credit %d outside [0,%d]", i, free, s.fastLeaseTotal)
		}
		if s.fastLease.Structs() != s.fastLeaseTotal {
			return fmt.Errorf("lockmgr: shard %d fast lease holds %d structs, accounted %d",
				i, s.fastLease.Structs(), s.fastLeaseTotal)
		}
		if s.fastLeaseTotal-free != fastInUse {
			return fmt.Errorf("lockmgr: shard %d fast credit in use %d, granted fast-leased weight %d",
				i, s.fastLeaseTotal-free, fastInUse)
		}
	}

	// Culled-set lifetime identity (throttle.go): every waiter the
	// throttle ever culled resolved exactly one way — reactivated into the
	// admission pipeline, denied in place, or still parked on a stack —
	// and the latch-free live gauge mirrors the parked population exactly
	// while the world is stopped. reactInFlight is informational here:
	// popped waiters are already counted reactivated whether or not their
	// continuation has run.
	_ = reactInFlight
	if culled, react, den := m.throtCulled.Total(), m.throtReact.Total(), m.throtDenied.Total(); culled != react+den+int64(liveCulled) {
		return fmt.Errorf("lockmgr: culled waiters lost: culled %d != reactivated %d + denied %d + live %d",
			culled, react, den, liveCulled)
	}
	if got := m.throtLive.Load(); got != int64(liveCulled) {
		return fmt.Errorf("lockmgr: culled live gauge %d, stacks hold %d", got, liveCulled)
	}

	// Staged-but-unflushed group-release batches (grouprelease.go) are pure
	// intent: every entry must still be fully resident — granted in its
	// home shard's table, counted by the chain/quota/lease checks above —
	// and its owner's teardown refcount must cover the batch. Staging is
	// latch-free, so concurrent pushes can extend a list under the stopped
	// world; drains cannot (they need the latch), which makes the snapshot
	// walk and the ≥-style mirror checks stable.
	stagedBatches := make(map[*Owner]int32)
	stagedWeight := make(map[int]int64)
	for i := range m.shards {
		s := &m.shards[i]
		staged := int32(0)
		for sb := s.relHead.Load(); sb != nil; sb = sb.next {
			staged++
			o := sb.stagedOwner
			if o == nil {
				return fmt.Errorf("lockmgr: shard %d staged batch without owner", i)
			}
			if sb.stagedShard != i {
				return fmt.Errorf("lockmgr: shard %d staged batch homed to shard %d", i, sb.stagedShard)
			}
			stagedBatches[o]++
			for _, lst := range [2][]releaseEntry{sb.rows, sb.tables} {
				for _, e := range lst {
					if e.si != i {
						return fmt.Errorf("lockmgr: staged entry %v routed to shard %d, staged on %d", e.name, e.si, i)
					}
					h := s.table[e.name]
					if h == nil || h.getGranted(o) != e.req {
						return fmt.Errorf("lockmgr: staged release of %v no longer granted in table", e.name)
					}
					if !e.req.granted {
						return fmt.Errorf("lockmgr: staged release of %v lost its granted flag before the drain", e.name)
					}
					if e.req.fastLeased {
						stagedWeight[o.app.id] += int64(e.req.weight)
					} else {
						stagedWeight[o.app.id] += int64(e.req.handle.Structs())
					}
				}
			}
		}
		if got := s.relLen.Load(); got < staged {
			return fmt.Errorf("lockmgr: shard %d staging length mirror %d below %d staged batches", i, got, staged)
		}
	}
	for o, n := range stagedBatches {
		if got := o.stagedRefs.Load(); got < n {
			return fmt.Errorf("lockmgr: owner %d staged refcount %d below %d staged batches", o.id, got, n)
		}
	}
	// Staged weight is still charged weight: until a flush leader applies
	// the batch, the quota gauges must keep carrying every staged struct.
	for id, w := range stagedWeight {
		if charged := int64(appStructs[id]); w > charged {
			return fmt.Errorf("lockmgr: app %d staged-but-unflushed weight %d exceeds charged structs %d", id, w, charged)
		}
	}

	// Owner indexes agree with the lock table. ownersMu is held across the
	// whole pass, not just a list snapshot: a deregistered owner's
	// teardown (dropStagedRef → resetForReuse, and pool reuse by NewOwner)
	// wipes the indexes latch-free, and deregistration itself needs
	// ownersMu — so pinning ownersMu keeps every visited owner alive and
	// un-recycled for the duration. Lock order is shard latches → ownersMu
	// → o.mu; both tails are leaves (no path takes ownersMu or a shard
	// latch while holding o.mu, and none takes a latch under ownersMu).
	apps := make(map[int]*App)
	ownerErr := func() error {
		m.ownersMu.Lock()
		defer m.ownersMu.Unlock()
		for id, a := range m.apps {
			apps[id] = a
		}
		for o := m.owners; o != nil; o = o.regNext {
			// o.mu excludes a commit mid-collect (collectDetach mutates
			// the held indexes under o.mu alone); every other mutation is
			// under a shard latch, excluded by the stopped world.
			o.mu.Lock()
			var heldErr error
			o.held.each(func(name Name, req *request) {
				h := m.shardFor(name).table[name]
				if h == nil || h.getGranted(o) != req {
					heldErr = fmt.Errorf("lockmgr: owner %d holds %v not present in table", o.id, name)
				}
				if !o.isTouched(m.shardOf(name)) {
					heldErr = fmt.Errorf("lockmgr: owner %d holds %v in shard %d without touched bit",
						o.id, name, m.shardOf(name))
				}
			})
			if heldErr != nil {
				o.mu.Unlock()
				return heldErr
			}
			// The latch-free inWait gauge must equal the owner's waiting-set
			// population exactly while every latch is held: increments happen
			// before a request joins a waiting set (under its shard latch) and
			// decrements after it leaves, so with the whole table stopped the
			// two counts coincide.
			if got, want := o.inWait.Load(), int32(inWait[o]); got != want {
				o.mu.Unlock()
				return fmt.Errorf("lockmgr: owner %d inWait gauge %d, waiting sets hold %d", o.id, got, want)
			}
			var tblErr error
			o.eachTable(func(tid uint32, ot *ownerTable) bool {
				structs := 0
				ot.eachRow(func(row uint64, r *request) {
					if hr, ok := o.held.get(RowName(tid, row)); !ok || hr != r {
						tblErr = fmt.Errorf("lockmgr: owner %d byTable row %d desynced", o.id, row)
					}
					structs += r.weight
				})
				if tblErr == nil && structs != ot.rowStructs {
					tblErr = fmt.Errorf("lockmgr: owner %d table %d rowStructs %d, want %d",
						o.id, tid, ot.rowStructs, structs)
				}
				return tblErr == nil
			})
			o.mu.Unlock()
			if tblErr != nil {
				return tblErr
			}
		}
		return nil
	}()
	if ownerErr != nil {
		return ownerErr
	}

	// Per-application struct accounting matches the chain.
	total := 0
	for id, n := range appStructs {
		if app := apps[id]; app != nil && app.structs.Load() != int64(n) {
			return fmt.Errorf("lockmgr: app %d structs %d, want %d", id, app.structs.Load(), n)
		}
		total += n
	}
	if used := m.chain.Used(); used != total {
		return fmt.Errorf("lockmgr: chain used %d, requests account for %d", used, total)
	}

	// Memory-chain internal consistency, and exact STMM-facing totals:
	// Used + Free == Capacity must hold even mid-lease.
	if err := m.chain.CheckInvariants(); err != nil {
		return err
	}
	if u, f, c := m.chain.Used(), m.chain.FreeStructs(), m.chain.Capacity(); u+f != c {
		return fmt.Errorf("lockmgr: used %d + free %d != capacity %d", u, f, c)
	}

	// Lease reconciliation: everything the chain has reserved beyond
	// request-level usage must sit in exactly one shard's pool or in a
	// shard's unconsumed fast credit (granted fast-leased weight has been
	// consumed against the chain, so only the free balance counts here).
	pooled := 0
	for i := range m.shards {
		pooled += m.shards[i].pool.Structs()
		pooled += int(m.shards[i].fastFree.Load())
	}
	if leased := m.chain.Reserved() - m.chain.Used(); leased != pooled {
		return fmt.Errorf("lockmgr: chain leases %d structs beyond use, shard pools + fast credit hold %d", leased, pooled)
	}

	// Contention-profiler sketch cross-check (profiler.go). Under the
	// stopped world every latched recorder is quiescent, so the sketch
	// must be internally consistent with the lock table's own structure:
	// every tracked key homes to the stripe it is filed under (the
	// stripe-by-home-shard discipline all Observe calls follow), no key
	// appears twice in one stripe, no counter is negative, and each
	// stripe's Σ Score never exceeds its lifetime observed blame — the
	// space-saving total identity (takeovers move score between keys,
	// decay only shrinks it).
	if m.hot != nil {
		type stripeKey struct {
			stripe int
			name   Name
		}
		seen := make(map[stripeKey]struct{})
		perStripe := make(map[int]int64)
		for _, e := range m.hot.Entries() {
			if got := m.shardOf(e.Key); got != e.Stripe {
				return fmt.Errorf("lockmgr: hot sketch key %s filed on stripe %d, homes to shard %d", e.Key, e.Stripe, got)
			}
			sk := stripeKey{e.Stripe, e.Key}
			if _, dup := seen[sk]; dup {
				return fmt.Errorf("lockmgr: hot sketch key %s tracked twice on stripe %d", e.Key, e.Stripe)
			}
			seen[sk] = struct{}{}
			if e.Score < 0 || e.Err < 0 {
				return fmt.Errorf("lockmgr: hot sketch key %s has negative score %d / err %d", e.Key, e.Score, e.Err)
			}
			for mi, v := range e.Vals {
				if v < 0 {
					return fmt.Errorf("lockmgr: hot sketch key %s metric %d negative (%d)", e.Key, mi, v)
				}
			}
			perStripe[e.Stripe] += e.Score
		}
		for stripe, sum := range perStripe {
			if lifetime := m.hot.StripeObserved(stripe); sum > lifetime {
				return fmt.Errorf("lockmgr: hot sketch stripe %d scores sum to %d, only %d blame ever observed", stripe, sum, lifetime)
			}
		}
	}
	return nil
}
