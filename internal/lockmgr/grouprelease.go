package lockmgr

// Group release: the commit-side batching stage of the release path.
//
// A quiesced commit detaches its whole held set from the owner's indexes
// in one o.mu section (collectDetach) and then visits each touched shard.
// On a quiet shard it latches and applies its batch directly — the same
// single latch acquisition the touched-shard walk always paid. On a
// storming shard (armed by real commit-side latch contention, and kept
// armed by multi-batch drains) the visit does NOT latch at all: it copies
// the shard's entries into a dedicated pooled batch and publishes it on
// the shard's MPSC staging list, fire-and-forget. Staged batches are pure
// intent — the lock table, grant words, quotas, and every invariant still
// describe the locks as held — so nothing needs to wait for them.
//
// Flush leaders turn the staged intent into releases in one latched
// section per group: swap the list, apply every batch (one frozen unlink
// pass each), then settle pool/chain/quota, run one FIFO posting pass,
// and sync the table mirror once (finishShardVisit). Leadership has three
// triggers, each elected by CAS on the shard's flush word:
//
//   - a committing walk, at walk end, for any touched shard whose list
//     has reached the combining threshold — or that has waiters, which
//     must never be left behind staged releases;
//   - any acquirer entering the shard's latched admission path while the
//     list is non-empty (drainStagedInline — a piggyback drain under the
//     latch the acquirer already paid for, no election needed), so
//     conflict evaluation and quota checks always see staged releases
//     applied first, at zero extra latch acquisitions. The admission path
//     re-checks the list again right after a request joins the waiting
//     set (enqueueWaiter / startConversion): the post-addWaiting re-check
//     and the walk's waiter-aware trigger form a store/load pair in both
//     directions, so a batch staged inside an acquirer's latched section
//     can never slip past both — the one interleave where neither side
//     alone would fire (trigger reads nWaiting before the enqueue, list
//     still below threshold, shard then goes quiet) is caught by the
//     re-check;
//   - a stager that hits the high-water bound (backpressure) — the one
//     case a committer waits: it spins, then parks on the shard's flush
//     condition until a drain completes, electing itself if no leader is
//     active, so parked stagers always have a live leader to wake them.
//
// Grant wakeups coalesce across the whole walk: post() defers each grant's
// Pending completion (a channel close — a runtime wakeup) and onGrant
// continuation into the drain's wake list, and the walk fires the list
// once after the last latch has been dropped. Wake-side work therefore
// never re-acquires a latch the walk already dropped, and a leader's
// latched section does no channel operations at all.
//
// Owner teardown is refcounted (Owner.stagedRefs): the walk holds one
// bias ref, each staged batch one more. Whoever drops the count to zero —
// the walk itself when nothing stayed staged, else the last flush leader —
// recycles the owner if FinishOwner promised exclusive ownership. That is
// what keeps a staged batch self-contained: its owner (and the app
// pointer the drain's quota settle needs) cannot be reset or reused while
// any batch is in flight.
//
// Contended-acquire signal (internal/latch): the storm arm and the shard
// latch's adaptive spin-budget controller share one definition of
// contention — a latch acquire that found the latch held. A commit visit's
// failed TryLock records exactly one contended acquire on the latch (the
// same event a blocking acquire's slow-path entry records), so the
// hysteresis that routes commits into the staging path and the tuner that
// sizes the latch's spin budget observe the same stream: a shard whose
// commits keep failing TryLock is simultaneously armed for group release
// and retuned toward its hold-time-appropriate spin budget. The arming
// rule itself is unchanged — quiet-shard visits TryLock (via
// tryLockShard, which also runs lockShard's acquire-side profiler
// bookkeeping) and a failure arms relStorm.
//
// Interaction with the fast path (fastpath.go): staging touches no grant
// word — it is invisible to CAS admissions and optimistic readers. The
// leader's unlink pass uses the same seal/settle protocol as a direct
// release (sealFastWord per holder removal, O(1) word settle for live
// words, settleFast in the posting pass), so the PR 5/6 fence and
// epoch-bump rules hold unchanged; a hot header merely stays fenced for
// one combined visit instead of several consecutive ones.

import (
	"runtime"

	"repro/internal/metrics"
)

// flushThreshold is how many staged batches make a shard's list due for a
// combined drain at commit walk end. Below it the list keeps
// accumulating — deferring the latch acquisition and the per-visit settle
// until enough release work has piled up to amortize them.
const flushThreshold = 8

// flushHighWater bounds a shard's staging list. A stager that would push
// past it first drains the list (or waits for the active leader to), so
// staged-but-unflushed intent — and the deferred teardown debt behind
// it — stays bounded under any arrival pattern.
const flushHighWater = 64

// flushSpinBudget is how many Gosched spins a backpressured stager burns
// before parking on the shard's flush condition.
const flushSpinBudget = 32

// flushCombineRounds bounds the leader's combining window: after draining
// the staging list it re-polls up to this many times, picking up batches
// staged while it was applying the previous round, before releasing the
// latch. Bounded so a steady arrival stream cannot capture the latch
// forever.
const flushCombineRounds = 4

// relStormArm is the arm value a shard gets on evidence of a commit storm
// (a failed commit-side TryLock, or a drain that combined ≥ 2 batches).
// Each single-batch combined drain decays the arm by one, so the shard
// needs that many consecutive solo drains to fall back to the direct
// path.
const relStormArm = 8

// wakeEntry is one deferred FIFO grant wakeup: the Pending to complete
// and/or the onGrant continuation to enqueue. The grant itself (install,
// accounting, inWait) was applied under the latch; only the notification
// is deferred.
type wakeEntry struct {
	p  *Pending
	og func(*Manager)
}

// releaseDrain accumulates the cross-batch work of a release walk: the
// per-visit deferred posting list and settle totals (reset by
// finishShardVisit), and the walk-wide wake list (fired by fireWakes once
// every latch is dropped). Pooled; the steady-state commit walk allocates
// nothing.
type releaseDrain struct {
	hdrs      []*lockHeader // deferred posting pass; deduped via postPending
	poolFreed int           // pooled frees awaiting one SettleFree
	fastFreed int           // fast credit awaiting one recredit
	wakes     []wakeEntry   // deferred grant completions, FIFO per header
}

// releaseShardGrouped is one quiesced commit's visit to shard si: latch
// and apply directly when the shard is quiet, publish a detached batch on
// the staging list when it is storming. b carries the owner's detached
// snapshot (collectDetach ran under o.mu); d accumulates deferred wakeups
// for the caller's post-walk pass.
func (m *Manager) releaseShardGrouped(si int, o *Owner, b *releaseBatch, d *releaseDrain) {
	s := &m.shards[si]
	if s.relStorm.Load() == 0 && s.relHead.Load() == nil {
		if _, ok := m.tryLockShard(si); ok {
			// Quiet shard: a group of one. A batch staged between the
			// list check and the TryLock (a racing commit that failed
			// its own TryLock against us) is drained here too.
			m.releaseShardPhase1(s, si, o, b, true, d)
			m.relBatches.Shard(si).Inc()
			// No relCond broadcast for batches drained here: stagers only
			// park while a relFlush leader is active, and that leader
			// broadcasts when it finishes.
			m.drainStagedLocked(s, si, d)
			m.finishShardVisit(s, si, d)
			m.unlockShard(s)
			return
		}
		// Contended commit-side acquire. The failed TryLock just recorded
		// one contended acquire on the shard latch itself — the same
		// signal its spin-budget controller tunes from — so the storm arm
		// and the latch tuner fire on one shared definition of "this
		// shard is contended" (see the header). Arm the storm stage and
		// fall through to the group protocol.
		s.relStorm.Store(relStormArm)
	}

	// Storming shard: publish and move on. The entries were detached from
	// the owner at collect time, so after the CAS below the stager never
	// touches the staged batch (or these requests) again — the flush
	// leader owns it until the drain, after which arsenal slots revert to
	// the owner (guarded by stagedRefs) and pooled overflow batches go
	// back to releaseBatchPool.
	if int(s.relLen.Load()) >= flushHighWater {
		m.flushBackpressured(s, si, d)
	}
	var sb *releaseBatch
	if int(o.sbUsed) < len(o.sbArsenal) {
		sb = &o.sbArsenal[o.sbUsed]
		o.sbUsed++
		sb.pooled = false
	} else {
		sb = releaseBatchPool.Get().(*releaseBatch)
		sb.pooled = true
	}
	sb.reset()
	for _, e := range b.rows {
		if e.si == si {
			sb.rows = append(sb.rows, e)
		}
	}
	for _, e := range b.tables {
		if e.si == si {
			sb.tables = append(sb.tables, e)
		}
	}
	sb.stagedOwner, sb.stagedShard = o, si
	o.stagedRefs.Add(1)
	// relLen rises before the push and falls after a drain's pops, so it
	// never under-reports the list: the high-water bound and the
	// invariant checker can rely on it as an upper envelope.
	s.relLen.Add(1)
	for {
		head := s.relHead.Load()
		sb.next = head
		if s.relHead.CompareAndSwap(head, sb) {
			break
		}
	}
	m.flushWaits.Shard(si).Inc()
}

// maybeFlushShard is the commit walk's flush trigger, run per touched
// shard after the last visit: elect this committer flush leader if the
// shard's staging list has reached the combining threshold, or if the
// shard has waiters — staged releases may be exactly what the head waiter
// needs, and a stager must never leave waiters behind its own staged
// batch. In the waiter case the trigger waits out an active leader
// instead of skipping: the leader's last swap may predate our push.
//
// The nWaiting read is racy against an acquirer mid-admission: its
// latched section may have checked relHead before our push and not yet
// reached addWaiting when we load here. That interleave is closed on the
// admission side — enqueueWaiter re-checks relHead after the addWaiting
// store (see its comment for the pairing argument), so skipping on a
// stale nWaiting can never strand a waiter.
func (m *Manager) maybeFlushShard(si int, d *releaseDrain) {
	s := &m.shards[si]
	for {
		if s.relHead.Load() == nil {
			return
		}
		waiters := s.nWaiting.Load() > 0
		if !waiters && int(s.relLen.Load()) < flushThreshold {
			return
		}
		if s.relFlush.CompareAndSwap(0, 1) {
			m.lockShard(si)
			n := m.drainStagedLocked(s, si, d)
			m.finishShardVisit(s, si, d)
			m.unlockShard(s)
			s.relFlush.Store(0)
			m.signalFlushed(s)
			// Combining feedback: group drains keep the shard armed,
			// solo drains decay it toward the direct path. A racing
			// re-arm losing one decrement is harmless.
			if n >= 2 {
				s.relStorm.Store(relStormArm)
			} else if n == 1 {
				if arm := s.relStorm.Load(); arm > 0 {
					s.relStorm.Store(arm - 1)
				}
			}
			return
		}
		if !waiters {
			return // active leader owns the list; a later trigger finishes it
		}
		runtime.Gosched()
	}
}

// drainStagedInline applies shard si's staged batches under a latch the
// caller already holds — the admission path's drain, costing zero extra
// latch acquisitions. Grant wakeups fire immediately (under the latch,
// like a plain grant); the deferred-wake optimization is reserved for the
// release walk. No flush-word election: the latch itself serializes
// against every latch-taking leader, and the list Swap is atomic against
// all of them. No relCond broadcast either — stagers only park while a
// relFlush leader is active, and that leader broadcasts when it is done.
// The drain scratch is embedded in the shard (latch-protected, like the
// table map), so the per-acquire drain allocates nothing.
func (m *Manager) drainStagedInline(s *shard, si int) {
	d := &s.relInline
	m.drainStagedLocked(s, si, d)
	m.finishShardVisit(s, si, d)
	m.fireWakes(d)
}

// flushBackpressured bounds the staging list: called when a stager finds
// it at high water. Elect and drain if no leader is active; otherwise
// spin briefly and then park on the flush condition until the active
// leader's drain completes. The park guard re-checks under relMu: a
// leader lowers relFlush before it broadcasts (also under relMu), so
// observing relFlush != 0 here means that leader's broadcast is still
// ahead of us — no lost wakeup — and observing 0 means we must not park
// (we elect instead).
func (m *Manager) flushBackpressured(s *shard, si int, d *releaseDrain) {
	spins := 0
	for int(s.relLen.Load()) >= flushHighWater {
		if s.relFlush.CompareAndSwap(0, 1) {
			m.lockShard(si)
			m.drainStagedLocked(s, si, d)
			m.finishShardVisit(s, si, d)
			m.unlockShard(s)
			s.relFlush.Store(0)
			m.signalFlushed(s)
			return
		}
		if spins < flushSpinBudget {
			spins++
			runtime.Gosched()
			continue
		}
		s.relMu.Lock()
		if int(s.relLen.Load()) >= flushHighWater && s.relFlush.Load() != 0 {
			s.relCond.Wait()
		}
		s.relMu.Unlock()
		spins = 0
	}
}

// drainStagedLocked swaps the shard's staging list out and applies every
// staged batch, re-polling up to flushCombineRounds times for batches that
// arrived mid-drain. Each batch is returned to the pool — and its owner
// ref dropped — only after phase 1 has completely finished with it.
// Returns the number of batches drained. Caller holds the shard latch and
// must finish the visit (finishShardVisit) before dropping it.
func (m *Manager) drainStagedLocked(s *shard, si int, d *releaseDrain) int {
	n := 0
	for round := 0; round < flushCombineRounds; round++ {
		if s.relHead.Load() == nil {
			break // plain load keeps the empty case off the RMW path
		}
		sb := s.relHead.Swap(nil)
		if sb == nil {
			break
		}
		for sb != nil {
			next := sb.next
			o := sb.stagedOwner
			m.releaseShardPhase1(s, si, o, sb, true, d)
			m.relBatches.Shard(si).Inc()
			sb.next, sb.stagedOwner = nil, nil
			if sb.pooled {
				sb.reset()
				releaseBatchPool.Put(sb)
			}
			m.dropStagedRef(o)
			n++
			sb = next
		}
	}
	if n > 0 {
		s.relLen.Add(int32(-n))
	}
	return n
}

// dropStagedRef releases one hold on the owner's staged-teardown count;
// the drop to zero — every staged batch applied and the release walk
// finished — performs the deferred FinishOwner recycling when it was
// promised. The atomic decrement orders the teardown after every
// batch-side use of the owner.
func (m *Manager) dropStagedRef(o *Owner) {
	if o.stagedRefs.Add(-1) == 0 && o.recycleOnZero {
		o.resetForReuse()
		m.ownerPool.Put(o)
	}
}

// flushAllStaged force-drains every shard's staging list regardless of
// length. This is the quiesce hook: staged batches are pure intent, so an
// idle manager would otherwise carry their charged structs forever. The
// last deregistering owner runs it (releaseAll), restoring the classical
// "all transactions finished ⇒ zero used structs" identity that callers
// of UsedStructs rely on. Racing leaders are waited out — on return every
// list observed non-empty here has been applied.
func (m *Manager) flushAllStaged(d *releaseDrain) {
	for si := range m.shards {
		s := &m.shards[si]
		for s.relHead.Load() != nil {
			if s.relFlush.CompareAndSwap(0, 1) {
				m.lockShard(si)
				m.drainStagedLocked(s, si, d)
				m.finishShardVisit(s, si, d)
				m.unlockShard(s)
				s.relFlush.Store(0)
				m.signalFlushed(s)
				m.fireWakes(d)
				continue
			}
			runtime.Gosched()
		}
	}
}

// FlushStaged applies every staged release batch immediately. Harnesses
// and shutdown paths that assert exact struct accounting while
// transactions may still be staging can call it to force quiescence.
func (m *Manager) FlushStaged() {
	var d releaseDrain
	m.flushAllStaged(&d)
}

// signalFlushed wakes every backpressured stager parked on the shard's
// flush condition. Callers must have lowered relFlush first; the
// broadcast runs under relMu so it cannot slip between a parker's guard
// check and its Wait.
func (m *Manager) signalFlushed(s *shard) {
	s.relMu.Lock()
	s.relCond.Broadcast()
	s.relMu.Unlock()
}

// fireWakes delivers the walk's deferred grant wakeups — Pending
// completions and onGrant continuations — in the order post() granted
// them. Caller holds no latches.
func (m *Manager) fireWakes(d *releaseDrain) {
	for i := range d.wakes {
		e := &d.wakes[i]
		if e.p != nil {
			e.p.complete(StatusGranted, nil)
		}
		if e.og != nil {
			m.enqueueCont(e.og)
		}
		d.wakes[i] = wakeEntry{}
	}
	d.wakes = d.wakes[:0]
}

// ReleaseBatches returns the total number of release batches applied
// across all shards (one per owner-visit; batches drained by a flush
// leader count toward the shard they were staged on). Lock-free.
func (m *Manager) ReleaseBatches() int64 { return m.relBatches.Total() }

// ReleaseBatchCounters exposes the per-shard release-batch counters for
// metrics wiring.
func (m *Manager) ReleaseBatchCounters() *metrics.ShardCounters { return m.relBatches }

// WakeupsCoalesced returns how many FIFO grant wakeups were deferred out
// of a latched release section and fired in a post-walk pass. Lock-free.
func (m *Manager) WakeupsCoalesced() int64 { return m.wakesCoalesced.Total() }

// WakeupsCoalescedCounters exposes the per-shard coalesced-wakeup counters
// for metrics wiring.
func (m *Manager) WakeupsCoalescedCounters() *metrics.ShardCounters { return m.wakesCoalesced }

// FlushFollowerWaits returns how many commit-side shard visits deferred
// to a flush leader — staged their release batch instead of latching the
// shard themselves. Lock-free.
func (m *Manager) FlushFollowerWaits() int64 { return m.flushWaits.Total() }

// FlushFollowerWaitCounters exposes the per-shard follower-wait counters
// for metrics wiring.
func (m *Manager) FlushFollowerWaitCounters() *metrics.ShardCounters { return m.flushWaits }
