package lockmgr

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// --- Unit tests: publication, fast grant/release, counters -----------------

// TestFastPathPublishAndGrant drives the canonical TPC-C shape: a table
// intent every transaction takes. The first latched grant publishes the
// header; subsequent compatible grants and releases must run latch-free and
// keep every invariant.
func TestFastPathPublishAndGrant(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	name := TableName(7)

	o1 := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o1, name, ModeIS, 1), "publishing IS")

	// The publishing acquire also primed the shard's fast credit, so this
	// second IS must be admitted by grant-word CAS.
	o2 := m.NewOwner(app)
	hits0 := m.FastPathHits()
	mustGrant(t, m.AcquireAsync(o2, name, ModeIS, 1), "fast IS")
	if got := m.FastPathHits(); got != hits0+1 {
		t.Fatalf("fast hits = %d, want %d (grant-word CAS admission)", got, hits0+1)
	}

	// Re-acquire of a held lock: owner-local cache, no shard interaction.
	mustGrant(t, m.AcquireAsync(o2, name, ModeIS, 1), "re-acquire IS")
	if got := m.FastPathHits(); got != hits0+2 {
		t.Fatalf("fast hits = %d, want %d (re-acquire cache)", got, hits0+2)
	}

	// Coverage: a table S lock covers row S requests — owner-local too.
	oS := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(oS, name, ModeS, 1), "fast S")
	mustGrant(t, m.AcquireAsync(oS, RowName(7, 1), ModeS, 1), "row covered by table S")
	if got := m.FastPathHits(); got != hits0+4 {
		t.Fatalf("fast hits = %d, want %d (coverage cache)", got, hits0+4)
	}
	m.ReleaseAll(oS)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Fast release: symmetric CAS decrement. The published header must stay
	// resident (deferred reclamation) with an admitting word.
	if err := m.Release(o2, name); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(o1)
	m.ReleaseAll(o2)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Hot key across transactions: the very first grant of a fresh owner
	// must already be latch-free.
	o3 := m.NewOwner(app)
	hits1 := m.FastPathHits()
	mustGrant(t, m.AcquireAsync(o3, name, ModeS, 1), "fast S on emptied header")
	if got := m.FastPathHits(); got != hits1+1 {
		t.Fatalf("fast hits = %d, want %d (empty published header admits)", got, hits1+1)
	}
	m.ReleaseAll(o3)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathFairness pins the starvation bound: once an X waiter queues,
// the grant word is fenced and no later compatible request may be admitted
// past it — neither latch-free nor latched. FIFO order is exactly the
// pre-fast-path order.
func TestFastPathFairness(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	name := TableName(3)

	o1 := m.NewOwner(app)
	o2 := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o1, name, ModeIS, 1), "IS 1")
	mustGrant(t, m.AcquireAsync(o2, name, ModeIS, 1), "IS 2 (fast)")

	oX := m.NewOwner(app)
	pX := m.AcquireAsync(oX, name, ModeX, 1)
	mustWait(t, pX, "X behind two IS")

	// A new IS must NOT jump the fence: the fast path sees the fenced word
	// and falls back, and the latched path queues it behind X.
	o4 := m.NewOwner(app)
	hits0 := m.FastPathHits()
	p4 := m.AcquireAsync(o4, name, ModeIS, 1)
	mustWait(t, p4, "IS behind queued X")
	if got := m.FastPathHits(); got != hits0 {
		t.Fatalf("fast path admitted %d grants past a queued X waiter", got-hits0)
	}

	m.ReleaseAll(o1)
	m.ReleaseAll(o2)
	mustGrant(t, pX, "X after holders released")
	mustWait(t, p4, "IS while X held")
	m.ReleaseAll(oX)
	mustGrant(t, p4, "IS after X released")
	m.ReleaseAll(o4)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathConversionOfFastGrant converts a fast-admitted IS up to S and
// to X: the conversion runs latched (sealing the word), and the release of
// the converted request must return its structures through the fast-credit
// accounting it was granted under.
func TestFastPathConversionOfFastGrant(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	name := TableName(9)

	o1 := m.NewOwner(app)
	o2 := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o1, name, ModeIS, 1), "publishing IS")
	mustGrant(t, m.AcquireAsync(o2, name, ModeIS, 1), "fast IS")

	// IS -> S: latched conversion; the settled word must carry the S count.
	mustGrant(t, m.AcquireAsync(o2, name, ModeS, 1), "convert IS->S")
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// IS -> X (after o1 leaves): fences the word for good until release.
	m.ReleaseAll(o1)
	mustGrant(t, m.AcquireAsync(o2, name, ModeX, 1), "convert S->X")
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(o2)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Property test: the word predicate vs the mode tables ------------------

// TestWordPredicateMatchesModeTables exhaustively ties wordAdmit and
// wordGroupMode to the compat/sup matrices: over every reachable count
// vector shape and all 49 (held, requested) mode pairs, the latch-free
// predicate must agree with Compatible against the supremum-folded group
// mode. Any divergence would let the fast path admit what the latched path
// would queue (or vice versa).
func TestWordPredicateMatchesModeTables(t *testing.T) {
	modes := []Mode{ModeNone, ModeIS, ModeIX, ModeS, ModeSIX, ModeU, ModeX}

	// All 49 pairs: a single holder of mode a, a request of mode b. Holder
	// modes outside the fast-eligible set can never appear in a word —
	// recomputeWord fences them — so the predicate is only defined (and
	// must agree) on the eligible ones.
	for _, a := range modes {
		for _, b := range modes {
			if !fastEligible(a) || a == ModeNone {
				continue
			}
			w := wordAdd(0, a)
			got := wordAdmit(w, b)
			want := fastEligible(b) && Compatible(b, a)
			if got != want {
				t.Errorf("single holder %v, request %v: wordAdmit=%v, Compatible=%v", a, b, got, want)
			}
		}
	}

	// Every reachable count vector (nS and nIX never coexist — S and IX are
	// incompatible, so no admission order can produce both). The group mode
	// must equal the supremum fold, and admission must match Compatible.
	counts := []uint64{0, 1, 2, 5, wordCntMask - 1, wordCntMask}
	for _, nS := range counts {
		for _, nIS := range counts {
			for _, nIX := range counts {
				if nS > 0 && nIX > 0 {
					continue // unreachable
				}
				w := nS<<wordNSShift | nIS<<wordNISShift | nIX<<wordNIXShift
				gm := wordGroupMode(nS, nIS, nIX)

				// Supremum fold over the multiset.
				want := ModeNone
				if nIS > 0 {
					want = Supremum(want, ModeIS)
				}
				if nS > 0 {
					want = Supremum(want, ModeS)
				}
				if nIX > 0 {
					want = Supremum(want, ModeIX)
				}
				if gm != want {
					t.Fatalf("counts (S=%d IS=%d IX=%d): group mode %v, supremum %v", nS, nIS, nIX, gm, want)
				}

				for _, b := range modes {
					got := wordAdmit(w, b)
					compat := fastEligible(b) && Compatible(b, gm)
					// Saturation is the one deliberate divergence: the
					// request is compatible but must take the latched path.
					saturated := (b == ModeIS && nIS >= wordCntMask) ||
						(b == ModeS && nS >= wordCntMask) ||
						(b == ModeIX && nIX >= wordCntMask)
					if saturated {
						if got {
							t.Fatalf("counts (S=%d IS=%d IX=%d): %v admitted at saturation", nS, nIS, nIX, b)
						}
						continue
					}
					if got != compat {
						t.Errorf("counts (S=%d IS=%d IX=%d) group %v, request %v: wordAdmit=%v, Compatible=%v",
							nS, nIS, nIX, gm, b, got, compat)
					}
				}
			}
		}
	}

	// wordAdd/wordSub are inverses and keep the group-mode bits coherent.
	for _, a := range []Mode{ModeIS, ModeS, ModeIX} {
		w := wordAdd(wordAdd(0, a), a)
		if Mode((w>>wordGMShift)&wordGMMask) != a {
			t.Fatalf("wordAdd group mode bits wrong for %v", a)
		}
		if wordSub(wordSub(w, a), a) != 0 {
			t.Fatalf("wordSub does not invert wordAdd for %v", a)
		}
	}
}

// --- Race tests: the fast path vs conversions, escalation, resize ----------

// TestFastPathRaceConversions runs fast IS/S traffic on shared hot tables
// against in-flight conversions and periodic X writers, then checks every
// invariant (grant word vs chain state included). Run under -race this is
// the memory-model check for the seal/settle protocol; the invariant pass
// is the lost/double-counted-grant check.
func TestFastPathRaceConversions(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	const goroutines = 8
	iters := 150
	if testing.Short() {
		iters = 40
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				o := m.NewOwner(app)
				table := uint32(1 + rng.Intn(3))
				name := TableName(table)
				switch rng.Intn(10) {
				case 0:
					// Writer: X fences the word and must queue fairly.
					if err := m.Acquire(ctx, o, name, ModeX, 1); err != nil {
						t.Error(err)
					}
				case 1, 2:
					// Converter: fast IS, then upgrade to S (latched).
					if err := m.Acquire(ctx, o, name, ModeIS, 1); err != nil {
						t.Error(err)
					}
					if err := m.Acquire(ctx, o, name, ModeS, 1); err != nil {
						t.Error(err)
					}
				default:
					// Reader: fast IS + a covered row re-acquire.
					if err := m.Acquire(ctx, o, name, ModeIS, 1); err != nil {
						t.Error(err)
					}
					if err := m.Acquire(ctx, o, RowName(table, uint64(i)), ModeIS, 1); err != nil {
						t.Error(err)
					}
				}
				m.ReleaseAll(o)
				m.FinishOwner(o)
			}
		}(int64(g))
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.FastPathHits() == 0 {
		t.Fatal("race workload never hit the fast path")
	}
}

// TestFastPathRaceResize races the fast path against Resize (which drains
// fast credit and shrinks under per-shard latches) and the stop-the-world
// CheckInvariants gate.
func TestFastPathRaceResize(t *testing.T) {
	m := newMgr(Config{InitialPages: 32 * 8})
	app := m.RegisterApp()
	iters := 200
	if testing.Short() {
		iters = 50
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				o := m.NewOwner(app)
				name := TableName(uint32(1 + rng.Intn(2)))
				mode := ModeIS
				if rng.Intn(4) == 0 {
					mode = ModeS
				}
				if err := m.Acquire(ctx, o, name, mode, 1); err != nil {
					t.Error(err)
				}
				if rng.Intn(2) == 0 {
					_ = m.Release(o, name) // fast release path
				}
				m.ReleaseAll(o)
				m.FinishOwner(o)
			}
		}(int64(g))
	}
	resizerDone := make(chan struct{})
	go func() {
		defer close(resizerDone)
		sizes := []int{32 * 4, 32 * 8, 32 * 2, 32 * 8}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Resize(sizes[i%len(sizes)])
			if err := m.CheckInvariants(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	<-resizerDone
	m.Resize(32 * 8)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathRaceEscalation puts a tight per-application quota on a
// row-hungry workload so MAXLOCKS escalation (a runGlobal full-fence
// operation) races the latch-free admissions on the shared table intents.
func TestFastPathRaceEscalation(t *testing.T) {
	m := New(Config{InitialPages: 32, Quota: fixedQuota(10)})
	app := m.RegisterApp()
	iters := 60
	if testing.Short() {
		iters = 20
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				o := m.NewOwner(app)
				// Shared hot table: latch-free intent.
				if err := m.Acquire(ctx, o, TableName(1), ModeIS, 1); err != nil {
					t.Error(err)
				}
				// Private table: enough rows to trip the quota and escalate.
				priv := uint32(100 + seed)
				for r := 0; r < 8; r++ {
					if err := m.Acquire(ctx, o, RowName(priv, uint64(rng.Intn(64))), ModeS, 2); err != nil {
						t.Error(err)
					}
				}
				m.ReleaseAll(o)
				m.FinishOwner(o)
			}
		}(int64(g))
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
