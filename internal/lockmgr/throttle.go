package lockmgr

// throttle.go is the saturation-aware admission throttle: a per-shard
// concurrency limiter that keeps a hot lock's active wait queue at an
// adaptive ceiling and parks the excess in a passive per-header culled set,
// after Dice & Kogan ("Avoiding Scalability Collapse by Restricting
// Concurrency"): past a contended lock's saturation knee, every additional
// active waiter *reduces* throughput — it lengthens the FIFO grant walk,
// fattens the deadlock detector's wait-graph export, and multiplies wakeup
// traffic — so the highest-throughput policy is to admit only as many
// waiters as the queue can drain and feed the rest back as it does.
//
// Mechanics. A culled request is registered in its shard's waiting set
// (so SweepTimeouts, cancel, and the abort path find it — it still honors
// LockTimeout and owner abort) and stacked on its header's culled LIFO,
// but holds no lock structures, no quota, no FIFO queue position, and
// exports no deadlock-graph edges. Reactivation piggybacks on the posting
// pass (post): direct releases, denials, and the group-release flush
// leader's deferred posting pass all refill the active queue from the
// culled stack as headroom opens, re-running the full admission pipeline
// via a self-latching continuation (retryCulled, the retryParked shape).
// LIFO order is deliberate — the most recently culled waiter's goroutine
// and cache state are the warmest (Dice & Kogan's "passive set" policy).
//
// Liveness. Culled waiters are throughput-invisible but NOT
// liveness-invisible: a culled owner may hold locks the active queue
// needs, and with no wait-graph edges the deadlock detector cannot see
// the cycle. SweepTimeouts doubles as the valve — each pass
// force-reactivates the oldest culled waiter of any header whose culled
// set has stopped draining (pass age ≥ 2), so every culled waiter regains
// detector visibility within a bounded number of sweep passes and real
// cycles are broken at most two passes late (see docs/ALGORITHM.md,
// "Saturation-aware throttling").
//
// Control. The per-shard ceiling is retuned by RetuneThrottle on the same
// STMM cadence that tunes lock memory, from signals the manager already
// exports: the queue-depth high-water mark since the last window, the
// lock-wait p99, and the grant-throughput delta between windows. A
// disengaged shard (ceiling 0) pays exactly one atomic load per admission
// — quiet tables never pay anything — and the controller disengages again
// after two quiet windows (hysteresis). Every adjustment lands in the
// decision log as kind "throttle-tune", replayable via /debug/tuner.

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
)

const (
	// throttleCeilMin / throttleCeilMax clamp every ceiling the
	// controller (or a fixed Config.Throttle) can set: below 2 the active
	// queue cannot pipeline a grant with the next waiter's wakeup; above
	// 64 the FIFO walk and detector export costs the limiter exists to
	// bound are already back.
	throttleCeilMin = 2
	throttleCeilMax = 64
	// throttleEngageHW is the queue-depth high-water mark at which a
	// disengaged shard's controller engages: depth 16 is past the knee on
	// every shape we bench while short convoys on quiet tables (the
	// common case) never trip it.
	throttleEngageHW = 16
	// throttleEngageCeil is the ceiling installed at engage — half the
	// engage threshold, so the first window already restricts.
	throttleEngageCeil = 8
	// throttleQuietWindows is how many consecutive retune windows with a
	// zero high-water mark disengage the ceiling (hysteresis: one idle
	// window is not proof the storm has passed).
	throttleQuietWindows = 2
	// throttleStalePasses is the culled-set liveness valve's age bound:
	// a header whose oldest culled waiter has sat through this many
	// SweepTimeouts passes without draining gets one waiter
	// force-reactivated per pass.
	throttleStalePasses = 2
)

// maybeCull decides whether req — a new, non-conversion request — should
// be diverted into its header's culled set instead of the admission
// pipeline, and performs the cull if so. Caller holds the shard latch and
// req.owner.mu, and has already checked that the shard's ceiling is
// engaged. Returns whether the request was culled (its Pending stays
// StatusWaiting; grant or denial arrives via reactivation, timeout,
// cancel, or abort).
func (m *Manager) maybeCull(s *shard, si int, req *request) bool {
	if req.everQueued {
		// A request that has already waited — reactivated from the culled
		// set, or retried after an escalation park — is never culled
		// (again). Re-culling a reactivated waiter would bounce it between
		// the stack and the admission pipeline whenever the queue refilled
		// first, and would defeat the liveness valve outright: a
		// force-reactivated waiter must actually reach the active queue to
		// regain its deadlock-graph edges.
		return false
	}
	h, ok := s.table[req.name]
	if !ok {
		// No header means no contention on this name: a quiet lock is
		// never culled (it will be granted, not queued).
		return false
	}
	ceil := int(s.throtCeil.Load())
	if ceil <= 0 || len(h.waiters)+h.reactInFlight < ceil {
		return false
	}
	m.beginWait(req)
	req.culled = true
	req.culledPass = m.sweepPass.Load()
	req.header = h
	h.culled = append(h.culled, req)
	s.addWaiting(req)
	m.throtCulled.Shard(si).Inc()
	m.throtLive.Add(1)
	// The backlog still counts toward the lock's blamed queue depth and
	// the controller's high-water signal: a culled waiter is deferred
	// demand, not absent demand.
	depth := len(h.converters) + len(h.waiters) + len(h.culled)
	throtDepthMax(s, int32(depth))
	m.hot.Observe(si, h.name, hotEventBlameNs, obs.HotQueueMax, int64(depth))
	if m.flight != nil {
		m.flightAdd(si, trace.KindWait, req.owner.app.id,
			fmt.Sprintf("%s mode=%s owner=%d culled depth=%d", h.name, req.mode, req.owner.id, depth))
	}
	// Fence the grant word while culled waiters exist (recomputeWord
	// treats them like queued ones), so every release takes the latched
	// path and reaches post — the reactivation trigger. Usually a no-op:
	// culling requires a full active queue, which already fences.
	m.sealFast(h)
	m.settleFast(s, h)
	return true
}

// removeCulled unlinks req from h's culled stack (no-op if absent).
// Caller holds the shard latch.
func (h *lockHeader) removeCulled(req *request) {
	for i, c := range h.culled {
		if c == req {
			copy(h.culled[i:], h.culled[i+1:])
			h.culled[len(h.culled)-1] = nil
			h.culled = h.culled[:len(h.culled)-1]
			return
		}
	}
}

// reactivateCulled refills h's active queue from its culled stack, newest
// first, up to the shard's ceiling headroom — or entirely, if the ceiling
// has since disengaged. Each popped waiter re-enters the admission
// pipeline via a self-latching continuation; reactInFlight reserves its
// queue slot until that continuation runs, so one posting pass cannot
// over-admit past the ceiling. Caller holds the shard latch; callers
// flush continuations after dropping it (every posting site already
// does).
func (m *Manager) reactivateCulled(s *shard, h *lockHeader) {
	free := len(h.culled)
	if ceil := int(s.throtCeil.Load()); ceil > 0 {
		free = ceil - (len(h.waiters) + len(h.converters) + h.reactInFlight)
	}
	for free > 0 && len(h.culled) > 0 {
		m.popCulled(s, h, len(h.culled)-1)
		free--
	}
}

// popCulled removes h.culled[i], counts the reactivation, and enqueues the
// continuation that re-runs admission for it. Caller holds the shard
// latch.
func (m *Manager) popCulled(s *shard, h *lockHeader, i int) {
	req := h.culled[i]
	copy(h.culled[i:], h.culled[i+1:])
	h.culled[len(h.culled)-1] = nil
	h.culled = h.culled[:len(h.culled)-1]
	req.culled = false
	h.reactInFlight++
	m.throtReact.Shard(s.idx).Inc()
	m.throtLive.Add(-1)
	m.enqueueCont(func(mm *Manager) { mm.retryCulled(req) })
}

// retryCulled re-runs the admission pipeline for a reactivated culled
// waiter, unless it was denied (timeout, cancel, abort) in the window
// between the pop and this continuation. It runs with no latches held and
// mirrors retryParked: latch the home shard, release the reserved queue
// slot, re-check the pending, then fast-path admission with a global
// fallback. The header stays resident across the window — eviction is
// pinned by reactInFlight (cacheOrEvictDeferred) — so the decrement
// through req.header is safe.
func (m *Manager) retryCulled(req *request) {
	si := m.shardOf(req.name)
	s := m.lockShard(si)
	h := req.header
	if h != nil && h.reactInFlight > 0 {
		h.reactInFlight--
	}
	s.delWaiting(req)
	if req.pending == nil {
		s.cacheOrEvict(h)
		m.unlockShard(s)
		return // already denied while culled
	}
	if st, _ := req.pending.Status(); st != StatusWaiting {
		s.cacheOrEvict(h)
		m.unlockShard(s)
		return
	}
	ok := m.startRequest(s, si, req, false)
	m.unlockShard(s)
	if !ok {
		// Same admission-of-last-resort rationale as retryParked: the
		// retry may need quota growth or an escalation, which require
		// every latch.
		m.runGlobal(func() {
			if !m.startRequest(s, si, req, true) {
				panic("lockmgr: global culled retry deferred admission")
			}
		})
	}
}

// sweepCulled is the liveness valve (see the file comment): for each
// header whose oldest culled waiter has aged past throttleStalePasses, it
// force-reactivates that oldest waiter — the culled LIFO's bottom entry,
// which was culled no later than any other — bypassing the ceiling.
// Progress restores the waiter's deadlock-graph edges, so a cycle through
// a culled owner becomes detectable within a bounded number of passes.
// Caller holds the shard latch; SweepTimeouts flushes the continuations.
func (m *Manager) sweepCulled(s *shard, stale []*lockHeader) {
	for _, h := range stale {
		if len(h.culled) == 0 {
			continue
		}
		m.popCulled(s, h, 0)
	}
}

// appendHeaderOnce appends h to list unless already present (the stale
// lists the sweep builds are a handful of headers, so linear dedup beats
// a map allocation).
func appendHeaderOnce(list []*lockHeader, h *lockHeader) []*lockHeader {
	for _, x := range list {
		if x == h {
			return list
		}
	}
	return append(list, h)
}

// throtDepthMax raises s.throtDepthHW to depth (CAS max — enqueues race).
func throtDepthMax(s *shard, depth int32) {
	for {
		cur := s.throtDepthHW.Load()
		if depth <= cur || s.throtDepthHW.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// RetuneThrottle runs one pass of the adaptive ceiling controller over
// every shard. The STMM controller calls it on the same cadence as the
// lock-memory tuner (stmm.Controller.TuneOnce); tests and the sweep
// benches call it directly. It must have a single caller at a time — the
// per-shard scratch (grants at last window, previous delta, quiet count)
// is unsynchronized controller state, like the tuner's own.
//
// The policy per shard: disengaged ceilings engage when the queue-depth
// high-water mark since the last window crosses the saturation knee
// (throttleEngageHW). Engaged ceilings hill-climb on the grant-throughput
// delta between windows — keep stepping in the direction that improved
// throughput, reverse when it regressed — with a lock-wait p99 relief
// valve (a doubled p99 steps the ceiling up regardless), clamped to
// [throttleCeilMin, throttleCeilMax]. Two consecutive windows with a zero
// high-water mark disengage. Every change is recorded in the decision log
// (kind "throttle-tune"). No-op unless Config.Throttle == 0 (adaptive).
func (m *Manager) RetuneThrottle() {
	if m.cfg.Throttle != 0 {
		return // fixed or disabled ceiling: nothing adaptive to do
	}
	grantsNow := m.stats.grants.Load()
	p99 := int64(m.waitHist.Snapshot().Quantile(0.99))
	for i := range m.shards {
		s := &m.shards[i]
		hw := int(s.throtDepthHW.Swap(0))
		ceil := int(s.throtCeil.Load())
		delta := grantsNow - s.throtGrants
		s.throtGrants = grantsNow
		prevDelta, prevP99 := s.throtDelta, s.throtP99
		s.throtDelta, s.throtP99 = delta, p99

		if ceil == 0 {
			if hw < throttleEngageHW {
				continue
			}
			s.throtDir = -1 // restricting is the move that pays past the knee
			s.throtQuiet = 0
			s.throtCeil.Store(throttleEngageCeil)
			m.throtDecide(i, 0, throttleEngageCeil, hw, delta, p99, "throttle-engage",
				fmt.Sprintf("queue depth hw %d ≥ %d", hw, throttleEngageHW))
			continue
		}

		if hw == 0 {
			s.throtQuiet++
			if s.throtQuiet < throttleQuietWindows {
				continue
			}
			s.throtQuiet = 0
			s.throtCeil.Store(0)
			m.throtDecide(i, ceil, 0, hw, delta, p99, "throttle-disengage",
				fmt.Sprintf("%d quiet windows", throttleQuietWindows))
			continue
		}
		s.throtQuiet = 0

		step := ceil / 4
		if step < 1 {
			step = 1
		}
		next := ceil
		action, reason := "", ""
		switch {
		case prevP99 > 0 && p99 > 2*prevP99 && ceil < throttleCeilMax:
			// Latency relief valve: the restricted queue is hurting wait
			// p99 more than the knee was — give back some concurrency.
			next = ceil + step
			action = "throttle-up"
			reason = fmt.Sprintf("wait p99 %dns > 2× previous %dns", p99, prevP99)
		case prevDelta <= 0:
			// First engaged window (no baseline yet): hold and measure.
		case delta < prevDelta-prevDelta/8:
			// Throughput regressed > 12.5% since the last move: reverse.
			s.throtDir = -s.throtDir
			next = ceil + s.throtDir*step
			action = "throttle-reverse"
			reason = fmt.Sprintf("grants/window %d < previous %d", delta, prevDelta)
		default:
			// Improved or flat: keep climbing in the same direction.
			next = ceil + s.throtDir*step
			action = "throttle-step"
			reason = fmt.Sprintf("grants/window %d vs previous %d", delta, prevDelta)
		}
		if next < throttleCeilMin {
			next = throttleCeilMin
		}
		if next > throttleCeilMax {
			next = throttleCeilMax
		}
		if next == ceil {
			continue
		}
		s.throtCeil.Store(int32(next))
		m.throtDecide(i, ceil, next, hw, delta, p99, action, reason)
	}
}

// throtDecide records one ceiling adjustment in the throttle decision log
// (nil-safe no-op until SetThrottleDecisionLog wires one).
func (m *Manager) throtDecide(si, before, after, hw int, delta, p99 int64, action, reason string) {
	dl := m.throtDL.Load()
	if dl == nil {
		return
	}
	dl.Add(obs.Decision{
		Time:          m.clk.Now(),
		Kind:          obs.KindThrottleTune,
		Shard:         si,
		CeilingBefore: before,
		CeilingAfter:  after,
		QueueDepthHW:  int64(hw),
		GrantsDelta:   delta,
		WaitP99Ns:     p99,
		Action:        action,
		Reason:        reason,
	})
}

// SetThrottleDecisionLog routes every ceiling adjustment RetuneThrottle
// makes into dl, as KindThrottleTune decisions stamped on the manager's
// clock — the same leaf discipline as SetLatchDecisionLog (DecisionLog.Add
// takes only the log's own mutex). The engine wires it during Open.
func (m *Manager) SetThrottleDecisionLog(dl *obs.DecisionLog) {
	if dl == nil {
		return
	}
	m.throtDL.Store(dl)
}

// ThrottleCulled returns how many waiters the admission throttle has
// diverted into the passive culled set, ever. Lock-free.
func (m *Manager) ThrottleCulled() int64 { return m.throtCulled.Total() }

// ThrottleReactivated returns how many culled waiters have been fed back
// into the admission pipeline. Lock-free.
func (m *Manager) ThrottleReactivated() int64 { return m.throtReact.Total() }

// ThrottleDenied returns how many culled waiters were denied in place
// (timeout, cancel, abort). Every culled waiter resolves exactly once:
// ThrottleCulled == ThrottleReactivated + ThrottleDenied + ThrottleLive.
// Lock-free.
func (m *Manager) ThrottleDenied() int64 { return m.throtDenied.Total() }

// ThrottleLive returns how many culled waiters are parked right now.
// Lock-free.
func (m *Manager) ThrottleLive() int64 { return m.throtLive.Load() }

// ThrottleCulledValues returns the per-shard culled counts.
func (m *Manager) ThrottleCulledValues() []int64 { return m.throtCulled.Values() }

// ThrottleReactivatedValues returns the per-shard reactivation counts.
func (m *Manager) ThrottleReactivatedValues() []int64 { return m.throtReact.Values() }

// ThrottleCeilings returns each shard's live concurrency ceiling (0 =
// disengaged). Lock-free.
func (m *Manager) ThrottleCeilings() []int {
	out := make([]int, len(m.shards))
	for i := range m.shards {
		out[i] = int(m.shards[i].throtCeil.Load())
	}
	return out
}

// ThrottleCeilingMax returns the highest engaged ceiling across shards (0
// when fully disengaged) — the scalar the engine snapshot and sim series
// report. Lock-free.
func (m *Manager) ThrottleCeilingMax() int {
	max := 0
	for i := range m.shards {
		if c := int(m.shards[i].throtCeil.Load()); c > max {
			max = c
		}
	}
	return max
}
