package lockmgr

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestDumpLocks(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(3, 7)
	mustGrant(t, m.AcquireAsync(o1, TableName(3), ModeIX, 1), "intent")
	mustGrant(t, m.AcquireAsync(o1, row, ModeX, 1), "row")
	p := m.AcquireAsync(o2, row, ModeS, 1)
	mustWait(t, p, "waiter")

	dump := m.DumpLocks()
	if len(dump) != 2 {
		t.Fatalf("entries = %d, want 2 (table + row)", len(dump))
	}
	// Sorted: table before row within table 3.
	if dump[0].Name != TableName(3) || dump[1].Name != row {
		t.Fatalf("order wrong: %v, %v", dump[0].Name, dump[1].Name)
	}
	ri := dump[1]
	if ri.GroupMode != ModeX || len(ri.Holders) != 1 || len(ri.Waiters) != 1 {
		t.Fatalf("row info = %+v", ri)
	}
	if ri.Holders[0].OwnerID != o1.ID() || ri.Waiters[0].Mode != ModeS {
		t.Fatalf("row info = %+v", ri)
	}
	s := ri.String()
	if !strings.Contains(s, "row(3.7)") || !strings.Contains(s, "waiters=") {
		t.Fatalf("render = %q", s)
	}
}

func TestDumpShowsConversions(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o1, row, ModeS, 1), "o1 S")
	mustGrant(t, m.AcquireAsync(o2, row, ModeS, 1), "o2 S")
	mustWait(t, m.AcquireAsync(o1, row, ModeX, 1), "convert")

	dump := m.DumpLocks()
	var conv *HolderInfo
	for i := range dump[0].Holders {
		if dump[0].Holders[i].Converting {
			conv = &dump[0].Holders[i]
		}
	}
	if conv == nil || conv.ConvertTo != ModeX {
		t.Fatalf("conversion not visible: %+v", dump[0])
	}
	if !strings.Contains(dump[0].String(), "→X") {
		t.Fatalf("render = %q", dump[0].String())
	}
}

func TestCheckInvariantsOnHealthyManager(t *testing.T) {
	m := newMgr(Config{})
	o := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIX, 1), "intent")
	for i := 0; i < 50; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(1, uint64(i)), ModeX, 1), "row")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(o)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedStressInvariants churns many owners through acquire,
// convert, cancel, timeout, deadlock detection, escalation and resize, and
// verifies the full invariant set after every phase. This is the heaviest
// correctness net for the lock manager.
func TestRandomizedStressInvariants(t *testing.T) {
	clk := clock.NewSim()
	m := New(Config{
		InitialPages: 64,
		Clock:        clk,
		LockTimeout:  20 * time.Second,
		Quota:        fixedQuota(30),
		GrowSync: func(need int) int {
			if need > 64 { // a grudging, bounded overflow
				need = 64
			}
			return need
		},
	})
	rng := rand.New(rand.NewSource(99))

	type actor struct {
		owner *Owner
		app   *App
	}
	var actors []*actor
	for i := 0; i < 12; i++ {
		app := m.RegisterApp()
		actors = append(actors, &actor{owner: m.NewOwner(app), app: app})
	}

	modes := []Mode{ModeS, ModeS, ModeS, ModeU, ModeX}
	for step := 0; step < 4000; step++ {
		a := actors[rng.Intn(len(actors))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // acquire a row (intent first)
			table := uint32(rng.Intn(3) + 1)
			mode := modes[rng.Intn(len(modes))]
			m.AcquireAsync(a.owner, TableName(table), intentFor(mode), 1)
			m.AcquireAsync(a.owner, RowName(table, uint64(rng.Intn(60))), mode, 1+rng.Intn(3))
		case 6: // commit: release everything, new owner
			m.ReleaseAll(a.owner)
			a.owner = m.NewOwner(a.app)
		case 7: // time passes; sweeps run
			clk.Advance(time.Duration(rng.Intn(10)) * time.Second)
			m.SweepTimeouts()
		case 8:
			m.DetectDeadlocks()
		case 9: // resize churn
			m.Resize(32 * (1 + rng.Intn(8)))
		}
		if step%200 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	for _, a := range actors {
		m.ReleaseAll(a.owner)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("structs leaked: %d", got)
	}
}
