package lockmgr

import (
	"testing"
	"time"

	"repro/internal/latch"
	"repro/internal/obs"
)

// TestTryLockShardClearsStaleHoldStamp pins the stale-holdT0 fix: a raw
// s.mu.Unlock() (runGlobal's descending sweep) leaves the sampled hold
// stamp behind, and a later TryLock'd release visit used to acquire the
// latch without the acquire-side bookkeeping — so its unlockShard
// attributed the entire stamp-to-visit gap as a bogus latch hold.
// tryLockShard now advances the stamp like lockShard does, so a skipped
// unlock sample can never surface as a hold time.
func TestTryLockShardClearsStaleHoldStamp(t *testing.T) {
	m := New(Config{InitialPages: 1024, Shards: 4})
	if m.latchProf == nil {
		t.Fatal("contention profiler expected on by default")
	}
	m.latchSampleMask = 0 // stamp every acquisition

	s := m.lockShard(0)
	if s.holdT0.IsZero() {
		t.Fatal("stamped acquisition left no hold stamp")
	}
	s.mu.Unlock() // raw unlock: the stale stamp survives

	const staleGap = 5 * time.Millisecond
	time.Sleep(staleGap)

	before := m.latchProf.Hold(0)
	s2, ok := m.tryLockShard(0)
	if !ok {
		t.Fatal("tryLockShard failed on a free latch")
	}
	m.unlockShard(s2)
	after := m.latchProf.Hold(0)

	// The visit records its own fresh (sub-millisecond) sample; what it
	// must never record is the staleGap. No bucket at or above 1 ms may
	// have grown.
	for b := obs.BucketOf(time.Millisecond.Nanoseconds()); b < obs.NumBuckets; b++ {
		if after.Counts[b] != before.Counts[b] {
			t.Fatalf("stale stamp attributed as a hold: bucket %d grew %d→%d",
				b, before.Counts[b], after.Counts[b])
		}
	}
	if after.Total != before.Total+1 {
		t.Fatalf("expected exactly one fresh hold sample, got %d→%d",
			before.Total, after.Total)
	}
}

// TestTryLockShardContendedSignal pins the unified contention definition:
// a failed tryLockShard counts one contended acquire on the latch itself
// (the signal the spin controller and the commit-storm arm share) but no
// latchWaits acquisition — nothing was acquired.
func TestTryLockShardContendedSignal(t *testing.T) {
	m := New(Config{InitialPages: 1024, Shards: 4})
	s := m.lockShard(0)
	waitsBefore := m.LatchWaits()
	contendedBefore := s.mu.Contended()
	if _, ok := m.tryLockShard(0); ok {
		t.Fatal("tryLockShard succeeded on a held latch")
	}
	if got := s.mu.Contended(); got != contendedBefore+1 {
		t.Fatalf("failed TryLock should record one contended acquire, got %d→%d",
			contendedBefore, got)
	}
	if got := m.LatchWaits(); got != waitsBefore {
		t.Fatalf("failed TryLock should not count a latch wait, got %d→%d",
			waitsBefore, got)
	}
	m.unlockShard(s)
}

// TestLatchDecisionLogRecordsRetunes checks the OnTune wiring: a budget
// change made by a shard latch's controller lands in the decision log as a
// replayable KindLatchTune record carrying the controller's inputs. The
// retune is driven directly (hold EWMA past the park threshold → budget
// collapses to 0) so the test is deterministic on any core count; the
// TuneStride trigger under real contention is covered by internal/latch's
// own tests.
func TestLatchDecisionLogRecordsRetunes(t *testing.T) {
	m := New(Config{InitialPages: 1024, Shards: 2})
	dl := obs.NewDecisionLog(64)
	m.SetLatchDecisionLog(dl)

	s := &m.shards[1]
	// A hold EWMA well past the park threshold forces target 0, which
	// differs from the cold-start DefaultBudget, so the retune must fire
	// the hook exactly once.
	s.mu.NoteHold(1_000_000)
	s.mu.Retune(8)

	decs := dl.Query(obs.KindLatchTune, 0)
	if len(decs) != 1 {
		t.Fatalf("expected exactly one latch-tune decision, got %d", len(decs))
	}
	d := decs[0]
	if d.Shard != 1 {
		t.Fatalf("decision attributed to shard %d, want 1", d.Shard)
	}
	if d.SpinBudgetBefore != latch.DefaultBudget || d.SpinBudgetAfter != 0 {
		t.Fatalf("budget transition %d→%d, want %d→0",
			d.SpinBudgetBefore, d.SpinBudgetAfter, latch.DefaultBudget)
	}
	if d.Action != "latch-spin-down" || d.HoldEwmaNs == 0 {
		t.Fatalf("malformed latch-tune decision: %+v", d)
	}

	// A retune that leaves the budget unchanged must stay silent.
	s.mu.Retune(8)
	if n := len(dl.Query(obs.KindLatchTune, 0)); n != 1 {
		t.Fatalf("unchanged retune added decisions: %d", n)
	}
}
