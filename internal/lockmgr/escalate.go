package lockmgr

// Lock escalation (paper sections 1 and 2.2): when lock memory is
// constrained, or an application exceeds lockPercentPerApplication, the
// manager promotes the application's row locks on one table to a single
// table lock, dramatically reducing memory at the cost of concurrency.
//
// Escalation here converts the owner's existing table intent lock (IS/IX)
// to the supremum of its row-lock modes — S for pure readers, SIX or X when
// updates are involved. The conversion may have to wait for incompatible
// holders; the triggering request is "parked" and retried once the
// escalation completes (its row locks having been freed, or the new table
// lock covering it outright).
//
// Escalation touches one owner's locks across many shards (the victim
// table's rows hash anywhere), so it runs only in global mode: every
// function in this file requires all shard latches (see runGlobal). The
// continuations it schedules are likewise drained only under all latches.

// escalate promotes o's row locks on its most structure-hungry table.
// parked, if non-nil, is the request that triggered escalation; it is
// retried after the escalation completes. Returns false when there is
// nothing to escalate (the caller then denies the triggering request).
// Caller holds all shard latches (global mode).
func (m *Manager) escalate(o *Owner, parked *request) bool {
	// Victim selection: the owner's table with the most row lock
	// structures, mirroring "promoting one or more row level locks to...
	// a table level lock" where it pays the most.
	var victim uint32
	var victimOT *ownerTable
	for tid, ot := range o.byTable {
		if ot.tableReq == nil || !ot.tableReq.granted || len(ot.rows) == 0 {
			continue
		}
		if ot.tableReq.converting {
			continue // an escalation is already in flight on this table
		}
		if victimOT == nil || ot.rowStructs > victimOT.rowStructs {
			victim, victimOT = tid, ot
		}
	}
	if victimOT == nil {
		return false
	}

	// Target mode: the weakest table mode covering every row lock held
	// (plus the triggering request if it is a row of the victim table).
	target := victimOT.tableReq.mode
	for _, r := range victimOT.rows {
		target = Supremum(target, r.mode)
	}
	if parked != nil && parked.name.Gran == GranRow && parked.name.Table == victim {
		target = Supremum(target, parked.mode)
	}

	m.stats.escalations.Add(1)
	if target == ModeX {
		m.stats.exclusiveEscalations.Add(1)
	}
	if m.cfg.Events != nil {
		m.cfg.Events.OnEscalation(o.app.id, victim, target)
	}

	if parked != nil {
		parked.parked = true
		parked.deadline = m.deadline()
		m.shardFor(parked.name).waiting[parked] = struct{}{}
	}

	continueAfter := func(m *Manager) {
		m.freeEscalatedRows(o, victim)
		m.retryParked(parked)
	}
	abandon := func(m *Manager, err error) {
		// parked.pending is nil when the parked request was already
		// completed (e.g. it timed out before the escalation did).
		if parked != nil && parked.pending != nil {
			if st, _ := parked.pending.Status(); st == StatusWaiting {
				m.deny(parked, err)
			}
		}
	}

	if Supremum(victimOT.tableReq.mode, target) == victimOT.tableReq.mode {
		// The table lock is already strong enough (e.g. a prior
		// escalation); just shed the redundant row locks.
		continueAfter(m)
		return true
	}

	m.startConversion(victimOT.tableReq, target, newPending(), continueAfter, abandon)
	return true
}

// freeEscalatedRows releases every row lock o holds on the table; the
// escalated table lock now covers them. Caller holds all shard latches
// (global mode).
func (m *Manager) freeEscalatedRows(o *Owner, table uint32) {
	ot := o.byTable[table]
	if ot == nil {
		return
	}
	rows := make([]*request, 0, len(ot.rows))
	for _, r := range ot.rows {
		rows = append(rows, r)
	}
	for _, r := range rows {
		if r.converting {
			// A row conversion in flight is subsumed by the table lock.
			m.deny(r, ErrCanceled)
		}
		m.releaseGranted(r)
	}
}

// retryParked re-runs the admission pipeline for a request that was parked
// behind an escalation, unless it was denied (timed out) in the meantime.
// Caller holds all shard latches (global mode).
func (m *Manager) retryParked(parked *request) {
	if parked == nil {
		return
	}
	delete(m.shardFor(parked.name).waiting, parked)
	if parked.pending == nil {
		return // already denied (timed out) while parked
	}
	if st, _ := parked.pending.Status(); st != StatusWaiting {
		return
	}
	if !m.startRequest(m.shardFor(parked.name), parked, true) {
		panic("lockmgr: global retry deferred admission")
	}
}
