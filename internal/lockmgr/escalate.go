package lockmgr

import (
	"fmt"

	"repro/internal/trace"
)

// Lock escalation (paper sections 1 and 2.2): when lock memory is
// constrained, or an application exceeds lockPercentPerApplication, the
// manager promotes the application's row locks on one table to a single
// table lock, dramatically reducing memory at the cost of concurrency.
//
// Escalation here converts the owner's existing table intent lock (IS/IX)
// to the supremum of its row-lock modes — S for pure readers, SIX or X when
// updates are involved. The conversion may have to wait for incompatible
// holders; the triggering request is "parked" and retried once the
// escalation completes (its row locks having been freed, or the new table
// lock covering it outright).
//
// escalate itself still runs in global mode: it is reached only from the
// admission pipeline of last resort (admitStructsGlobal), whose quota and
// memory decisions need a consistent view of every pool and the chain. The
// continuations it schedules — free the escalated rows, retry the parked
// request, abandon it on failure — do NOT: they are drained with no latches
// held and latch the shards they touch themselves, re-validating each
// target under its latch. A row released, a transaction committed, or a
// parked request timed out between enqueue and drain is simply observed and
// skipped; stale snapshot entries cost a latch acquisition, never
// correctness.

// escalate promotes o's row locks on its most structure-hungry table.
// parked, if non-nil, is the request that triggered escalation; it is
// retried after the escalation completes. Returns false when there is
// nothing to escalate (the caller then denies the triggering request).
// Caller holds all shard latches (global mode).
func (m *Manager) escalate(o *Owner, parked *request) bool {
	// Victim selection: the owner's table with the most row lock
	// structures, mirroring "promoting one or more row level locks to...
	// a table level lock" where it pays the most.
	var victim uint32
	var victimOT *ownerTable
	o.eachTable(func(tid uint32, ot *ownerTable) bool {
		if ot.tableReq == nil || !ot.tableReq.granted || ot.rowCount() == 0 {
			return true
		}
		if ot.tableReq.converting {
			return true // an escalation is already in flight on this table
		}
		if victimOT == nil || ot.rowStructs > victimOT.rowStructs {
			victim, victimOT = tid, ot
		}
		return true
	})
	if victimOT == nil {
		return false
	}

	// Target mode: the weakest table mode covering every row lock held
	// (plus the triggering request if it is a row of the victim table).
	target := victimOT.tableReq.mode
	victimOT.eachRow(func(_ uint64, r *request) {
		target = Supremum(target, r.mode)
	})
	if parked != nil && parked.name.Gran == GranRow && parked.name.Table == victim {
		target = Supremum(target, parked.mode)
	}

	m.stats.escalations.Add(1)
	if target == ModeX {
		m.stats.exclusiveEscalations.Add(1)
	}
	if m.cfg.Events != nil {
		m.cfg.Events.OnEscalation(o.app.id, victim, target)
	}
	if m.flight != nil {
		tn := victimOT.tableReq.name
		m.flightAdd(m.shardOf(tn), trace.KindEscalation, o.app.id,
			fmt.Sprintf("%s to=%s owner=%d", tn, target, o.id))
	}

	if parked != nil {
		parked.parked = true
		parked.deadline = m.deadline()
		// The park is a wait from the requester's point of view: stamp it
		// so the wait histogram includes escalation stalls (the counter in
		// stats.waits is deliberately not bumped — parked requests are
		// retried, not queued behind a lock). Parked requests join the
		// waiting set, so they are ever-queued (never box-recycled) and
		// count in the owner's inWait gauge — once, even across re-parks.
		parked.everQueued = true
		parked.owner.everWaited = true
		if parked.waitStart.IsZero() {
			parked.owner.inWait.Add(1)
		}
		parked.waitStart = m.clk.Now()
		m.shardFor(parked.name).addWaiting(parked)
	}

	continueAfter := func(m *Manager) {
		m.freeEscalatedRows(o, victim)
		m.retryParked(parked)
	}
	abandon := func(m *Manager, err error) {
		m.abandonParked(parked, err)
	}

	if Supremum(victimOT.tableReq.mode, target) == victimOT.tableReq.mode {
		// The table lock is already strong enough (e.g. a prior
		// escalation); just shed the redundant row locks. The continuation
		// self-latches, so it cannot run here under every latch — it is
		// queued and drained as soon as the global section ends.
		m.enqueueCont(continueAfter)
		return true
	}

	m.startConversion(victimOT.tableReq, target, newPending(), continueAfter, abandon)
	return true
}

// freeEscalatedRows releases every row lock o holds on the table; the
// escalated table lock now covers them. It runs as a continuation with no
// latches held: the row set is snapshotted under o.mu, grouped by home
// shard, and every row is re-validated under its shard's latch (plus o.mu
// for the map read) before release — rows the owner released or converted
// in the meantime are skipped.
func (m *Manager) freeEscalatedRows(o *Owner, table uint32) {
	// Snapshot (row, request) pairs under o.mu. The row keys are copied
	// out of the index: shard routing and revalidation below must not
	// dereference a request pointer the owner's commit may have released
	// concurrently — a released box can be recycled and rewritten by an
	// unrelated acquire.
	type rowSnap struct {
		row uint64
		r   *request
	}
	o.mu.Lock()
	ot := o.tableFor(table)
	var rows []rowSnap
	if ot != nil {
		rows = make([]rowSnap, 0, ot.rowCount())
		ot.eachRow(func(row uint64, r *request) {
			rows = append(rows, rowSnap{row, r})
		})
	}
	o.mu.Unlock()
	if len(rows) == 0 {
		return
	}

	// Group by home shard so each shard is latched once.
	byShard := make(map[int][]rowSnap)
	for _, e := range rows {
		i := m.shardOf(RowName(table, e.row))
		byShard[i] = append(byShard[i], e)
	}
	for i, batch := range byShard {
		s := m.lockShard(i)
		// Re-validate under the latch: a row request's granted/converting
		// state and its ot.rows membership only change under its home
		// shard latch (held) plus o.mu (taken for the map read), so the
		// filtered batch is accurate for as long as we hold the latch.
		// Pointer identity decides first; only a match proves e.r is
		// still this owner's live request, making its fields safe to read.
		live := batch[:0]
		o.mu.Lock()
		for _, e := range batch {
			if cur, ok := ot.getRow(e.row); ok && cur == e.r && e.r.granted {
				live = append(live, e)
			}
		}
		o.mu.Unlock()
		for _, e := range live {
			if e.r.converting {
				// A row conversion in flight is subsumed by the table lock.
				m.deny(e.r, ErrCanceled)
			}
			m.releaseGranted(e.r)
		}
		m.unlockShard(s)
	}
}

// retryParked re-runs the admission pipeline for a request that was parked
// behind an escalation, unless it was denied (timed out) in the meantime.
// It runs as a continuation with no latches held: it latches the parked
// request's home shard, re-checks that the request is still pending, and
// first attempts fast-path admission — the escalation just freed structures,
// so the common case grants locally. Only if the fast path backs out does
// it fall back to the global pipeline.
func (m *Manager) retryParked(parked *request) {
	if parked == nil {
		return
	}
	si := m.shardOf(parked.name)
	s := m.lockShard(si)
	s.delWaiting(parked)
	if parked.pending == nil {
		m.unlockShard(s)
		return // already denied (timed out) while parked
	}
	if st, _ := parked.pending.Status(); st != StatusWaiting {
		m.unlockShard(s)
		return
	}
	ok := m.startRequest(s, si, parked, false)
	m.unlockShard(s)
	if !ok {
		// runGlobal survivor: same admission-of-last-resort rationale as
		// AcquireAsync — the retry may itself need quota growth or a
		// further escalation, which require every latch.
		m.runGlobal(func() {
			if !m.startRequest(s, si, parked, true) {
				panic("lockmgr: global retry deferred admission")
			}
		})
	}
}

// abandonParked denies a parked request after its escalation failed. It
// runs as a continuation with no latches held; the deny happens under the
// parked request's home shard latch, and a request that was already
// completed (e.g. it timed out before the escalation did) is left alone.
func (m *Manager) abandonParked(parked *request, err error) {
	if parked == nil {
		return
	}
	s := m.lockShard(m.shardOf(parked.name))
	// parked.pending is nil when the parked request was already completed.
	if parked.pending != nil {
		if st, _ := parked.pending.Status(); st == StatusWaiting {
			m.deny(parked, err)
		}
	}
	m.unlockShard(s)
}
