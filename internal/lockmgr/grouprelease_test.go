package lockmgr

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Group-release concurrency tests. Like stress_test.go they are written
// for the race detector (`go test -race ./internal/lockmgr`) and pin the
// three properties the staged release path must preserve:
//
//  1. FIFO grant order survives release-by-staging: a flush leader
//     applying another owner's batch posts that owner's header exactly
//     like a direct release would, so no waiter is starved or woken out
//     of order;
//  2. backpressured stagers parked on the flush condition always make
//     progress — when the active leader retires, a parked stager elects
//     itself and drains (leader handoff);
//  3. the invariant checker's stopped world composes with staged batches,
//     escalation, and deadlock detection running concurrently.

// stormRowsInShard returns n distinct row ids of table whose lock names
// all hash to one shard, together with that shard's index.
func stormRowsInShard(m *Manager, table uint32, n int) (int, []uint64) {
	si := m.ShardOf(RowName(table, 0))
	rows := make([]uint64, 0, n)
	for row := uint64(0); len(rows) < n; row++ {
		if m.ShardOf(RowName(table, row)) == si {
			rows = append(rows, row)
		}
	}
	return si, rows
}

// TestGroupReleaseFIFOOrder: the storm path must preserve per-lock FIFO.
// Every release in the chain goes through staging (the shard is re-armed
// before each one), so each waiter's grant is produced by a flush leader
// applying a staged batch — and the observed grant sequence must still
// match the enqueue order exactly.
func TestGroupReleaseFIFOOrder(t *testing.T) {
	const waiters = 32
	m := newMgr(Config{})
	app := m.RegisterApp()

	row := RowName(1, 1)
	si := m.ShardOf(row)
	s := &m.shards[si]

	holder := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	owners := make([]*Owner, waiters)
	pendings := make([]*Pending, waiters)
	for i := range owners {
		owners[i] = m.NewOwner(app)
		pendings[i] = m.AcquireAsync(owners[i], row, ModeX, 1)
		mustWait(t, pendings[i], "queued waiter")
	}

	var seq atomic.Int64
	order := make([]int64, waiters)
	var wg sync.WaitGroup
	for i := range owners {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-pendings[i].Done()
			if st, err := pendings[i].Status(); st != StatusGranted {
				t.Errorf("waiter %d: status=%v err=%v", i, st, err)
				return
			}
			order[i] = seq.Add(1) - 1
			// Keep the shard storming so this release stages too (solo
			// drains would otherwise decay the arm back to the direct
			// path partway through the chain).
			s.relStorm.Store(relStormArm)
			m.ReleaseAll(owners[i])
		}(i)
	}
	s.relStorm.Store(relStormArm)
	m.ReleaseAll(holder)
	wg.Wait()

	for i, got := range order {
		if got != int64(i) {
			t.Fatalf("FIFO violated: waiter %d granted at position %d", i, got)
		}
	}
	if m.WakeupsCoalesced() == 0 {
		t.Fatal("no wakeups were coalesced — the storm path never engaged")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupReleaseBackpressureHandoff: a stager that parks at the
// high-water bound behind an active flush leader must be woken when that
// leader retires, and must then elect itself and drain (no lost wakeup,
// no permanent park). The "active leader" is simulated by holding the
// flush word; the committer goroutine stages past high water, parks, and
// must finish once the word is released and the condition signalled.
func TestGroupReleaseBackpressureHandoff(t *testing.T) {
	const committers = flushHighWater + 8
	m := newMgr(Config{InitialPages: 32 * 16})
	app := m.RegisterApp()
	si, rows := stormRowsInShard(m, 1, committers)
	s := &m.shards[si]

	owners := make([]*Owner, committers)
	for i := range owners {
		owners[i] = m.NewOwner(app)
		mustGrant(t, m.AcquireAsync(owners[i], RowName(1, rows[i]), ModeX, 1), "setup X")
	}

	// Pose as an active flush leader, then commit every owner from one
	// goroutine: each visit stages (the shard is re-armed each time), and
	// the visit that finds the list at high water parks behind "us".
	s.relFlush.Store(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, o := range owners {
			s.relStorm.Store(relStormArm)
			m.FinishOwner(o)
		}
	}()

	// Wait until the list is full and the committer has had time to burn
	// its spin budget and park.
	deadline := time.Now().Add(5 * time.Second)
	for int(s.relLen.Load()) < flushHighWater {
		if time.Now().After(deadline) {
			t.Fatal("staging list never reached high water")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("committer finished despite a held flush word and a full list")
	default:
	}

	// Leader handoff: retire the fake leader. The parked stager must wake,
	// elect itself, drain, and finish the remaining commits.
	s.relFlush.Store(0)
	m.signalFlushed(s)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("parked stager never woke after leader handoff")
	}

	// Drain whatever the last walk left staged (below threshold, no
	// waiters) via the admission path's piggyback drain, then verify the
	// world is clean.
	s.relStorm.Store(0)
	o := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o, RowName(1, rows[0]), ModeX, 1), "drain trigger")
	m.FinishOwner(o)
	if s.relHead.Load() != nil || s.relLen.Load() != 0 {
		t.Fatalf("staging list not empty after drains: len=%d", s.relLen.Load())
	}
	if m.FlushFollowerWaits() < committers {
		t.Fatalf("follower waits %d, want >= %d (every visit should have staged)",
			m.FlushFollowerWaits(), committers)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupReleaseStagedInvariants: CheckInvariants must hold while
// batches sit staged-but-unflushed — the lock table still describes the
// staged locks as held, and the checker's staged pass cross-checks the
// list against owner refcounts and app quota charges.
func TestGroupReleaseStagedInvariants(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	si, rows := stormRowsInShard(m, 1, 2)
	s := &m.shards[si]

	// A second registered owner pins the manager non-idle: the last owner
	// out force-flushes every staging list (flushAllStaged), which would
	// defeat the staged-state assertions below.
	pin := m.NewOwner(app)
	defer m.FinishOwner(pin)

	o := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o, RowName(1, rows[0]), ModeX, 1), "row 0")
	mustGrant(t, m.AcquireAsync(o, RowName(1, rows[1]), ModeX, 1), "row 1")

	s.relStorm.Store(relStormArm)
	m.FinishOwner(o)
	if s.relHead.Load() == nil {
		t.Fatal("commit did not stage (storm path never engaged)")
	}
	// The staged batch is pure intent: locks still in the table, weight
	// still charged, owner teardown still pending.
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants with staged batch: %v", err)
	}

	// Drain through the piggyback path and re-verify.
	s.relStorm.Store(0)
	o2 := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o2, RowName(1, rows[0]), ModeX, 1), "drain trigger")
	m.FinishOwner(o2)
	if s.relHead.Load() != nil || s.relLen.Load() != 0 {
		t.Fatal("staged batch not drained by the admission path")
	}
	if m.ReleaseBatches() == 0 || m.FlushFollowerWaits() == 0 {
		t.Fatalf("counters: batches=%d followerWaits=%d, want both > 0",
			m.ReleaseBatches(), m.FlushFollowerWaits())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupReleaseAdmissionWindowRace pins the lost-flush-trigger
// interleave: an acquirer's latched admission section checks the staging
// list at entry (empty), and a commit then stages the release of the very
// lock the acquirer is about to queue behind — before the acquirer's
// addWaiting store. The commit's walk-end trigger sees no waiters and a
// below-threshold list, so it skips the flush; with no further traffic on
// the shard, only the admission path's post-enqueue re-check is left to
// apply the staged release. Without it the waiter blocks forever behind
// an already-committed release. The hook fires the commit synchronously
// inside the window, making the interleave deterministic.
func TestGroupReleaseAdmissionWindowRace(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	row := RowName(1, 1)
	s := &m.shards[m.ShardOf(row)]

	holder := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	waiter := m.NewOwner(app) // registered before the commit: no last-owner-out force flush
	fired := false
	testHookPreEnqueue = func(*Manager, int) {
		if fired {
			return
		}
		fired = true
		s.relStorm.Store(relStormArm)
		m.FinishOwner(holder)
		if s.relHead.Load() == nil {
			t.Error("commit did not stage (storm path never engaged)")
		}
	}
	defer func() { testHookPreEnqueue = nil }()

	p := m.AcquireAsync(waiter, row, ModeX, 1)
	if !fired {
		t.Fatal("admission never reached the enqueue window")
	}
	select {
	case <-p.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("waiter stranded behind a staged release (lost flush trigger)")
	}
	if st, err := p.Status(); st != StatusGranted {
		t.Fatalf("waiter: status=%v err=%v", st, err)
	}
	m.FinishOwner(waiter)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupReleaseConversionWindowRace: the same lost-trigger interleave
// against the converter queue — a commit stages the release of the only
// incompatible shared holder while an upgrade (S→X) is inside its latched
// section, after conflict evaluation but before the converter joins the
// waiting set. The post-enqueue re-check in startConversion must drain
// the staged batch and let the conversion complete.
func TestGroupReleaseConversionWindowRace(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	row := RowName(1, 1)
	s := &m.shards[m.ShardOf(row)]

	other := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(other, row, ModeS, 1), "other S")

	conv := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(conv, row, ModeS, 1), "conv S")

	fired := false
	testHookPreEnqueue = func(*Manager, int) {
		if fired {
			return
		}
		fired = true
		s.relStorm.Store(relStormArm)
		m.FinishOwner(other)
		if s.relHead.Load() == nil {
			t.Error("commit did not stage (storm path never engaged)")
		}
	}
	defer func() { testHookPreEnqueue = nil }()

	p := m.AcquireAsync(conv, row, ModeX, 1)
	if !fired {
		t.Fatal("conversion never reached the enqueue window")
	}
	select {
	case <-p.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("converter stranded behind a staged release (lost flush trigger)")
	}
	if st, err := p.Status(); st != StatusGranted {
		t.Fatalf("conversion: status=%v err=%v", st, err)
	}
	m.FinishOwner(conv)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupReleaseStormRacingControlPlane: a commit storm (every release
// staged) racing the whole control plane — CheckInvariants' stopped-world
// sweep, deadlock detection, timeout sweeps, and quota-driven escalation.
// The tight per-app quota forces escalations to table locks mid-storm;
// concurrent escalations of the same table can genuinely deadlock, which
// is exactly what the racing detector must resolve. The test asserts no
// invariant violation, no lost transaction, and a clean final state.
func TestGroupReleaseStormRacingControlPlane(t *testing.T) {
	const (
		goroutines = 8
		txPerG     = 200
		hotRows    = 64
	)
	m := newMgr(Config{
		InitialPages: 32,
		Quota:        fixedQuota(25),
		LockTimeout:  5 * time.Second,
	})

	stop := make(chan struct{})
	var sweeperWG sync.WaitGroup
	sweeperWG.Add(1)
	go func() {
		defer sweeperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.CheckInvariants(); err != nil {
				t.Errorf("invariants: %v", err)
				return
			}
			m.DetectDeadlocks()
			m.SweepTimeouts()
			// Keep every shard storming so commits stage even when the
			// race is quiet.
			for i := range m.shards {
				m.shards[i].relStorm.Store(relStormArm)
			}
		}
	}()

	ctx := context.Background()
	var wg sync.WaitGroup
	var commits, denials atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := m.RegisterApp()
			for tx := 0; tx < txPerG; tx++ {
				o := m.NewOwner(app)
				ok := true
				// Ascending row order: conflicts queue FIFO instead of
				// deadlocking (escalation can still deadlock — that is
				// the detector's job).
				for l := 0; l < 3; l++ {
					row := uint64((g*txPerG + tx*3 + l*7) % hotRows)
					if err := m.Acquire(ctx, o, RowName(1, row), ModeX, 1); err != nil {
						if !errors.Is(err, ErrQuotaExceeded) && !errors.Is(err, ErrDeadlock) &&
							!errors.Is(err, ErrLockMemory) && !errors.Is(err, ErrTimeout) {
							t.Errorf("g%d tx%d: %v", g, tx, err)
						}
						denials.Add(1)
						ok = false
						break
					}
				}
				m.FinishOwner(o)
				if ok {
					commits.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	sweeperWG.Wait()

	if commits.Load() == 0 {
		t.Fatal("no transaction ever committed")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.ReleaseBatches() == 0 {
		t.Fatal("no release batches were applied")
	}
}
