package lockmgr

// latchtune.go wires the shard latches' adaptive spin-budget controllers
// (internal/latch) into the manager's observability surface: the STMM
// decision-log sink that makes every budget change replayable from
// /debug/tuner, and the per-shard spin/park/handoff counters the metrics
// layer exposes as lockmem_latch_{spins,parks,handoffs}_total.
//
// The controller itself lives in the latch: every TuneStride contended
// acquires a latch re-derives its spin budget from the hold-time EWMA
// (fed by unlockShard's sampled hold stamps — the same samples the latch
// profile records) and its spin success rate, collapsing to zero on a
// single P, past the park threshold, or when spinners outnumber P's
// (Nikolaev's retrial rule). This file only observes it.

import (
	"fmt"

	"repro/internal/latch"
	"repro/internal/obs"
)

// SetLatchDecisionLog routes every adaptive spin-budget change the shard
// latches make into dl, as KindLatchTune decisions stamped on the
// manager's clock. The OnTune hook runs on the acquiring goroutine while
// it holds the retuned shard's latch, so the sink must stay a leaf —
// DecisionLog.Add takes only the log's own mutex, the same discipline the
// sync-growth records rely on. Must be called before the manager serves
// concurrent traffic (the engine wires it during Open).
func (m *Manager) SetLatchDecisionLog(dl *obs.DecisionLog) {
	if dl == nil {
		return
	}
	for i := range m.shards {
		s := &m.shards[i]
		si := i
		s.mu.OnTune(func(old, next int, holdNs int64, tries, wins int) {
			action := "latch-spin-up"
			if next < old {
				action = "latch-spin-down"
			}
			dl.Add(obs.Decision{
				Time:             m.clk.Now(),
				Kind:             obs.KindLatchTune,
				Shard:            si,
				SpinBudgetBefore: old,
				SpinBudgetAfter:  next,
				HoldEwmaNs:       holdNs,
				SpinTries:        tries,
				SpinWins:         wins,
				Action:           action,
				Reason: fmt.Sprintf("hold ewma %dns, spin wins %d/%d",
					holdNs, wins, tries),
			})
		})
	}
}

// latchTotals sums f over every shard latch.
func (m *Manager) latchTotals(f func(*latch.Latch) uint64) int64 {
	var n int64
	for i := range m.shards {
		n += int64(f(&m.shards[i].mu))
	}
	return n
}

// latchValues collects f per shard, in shard order — the CounterVec shape
// the metrics exposition wants.
func (m *Manager) latchValues(f func(*latch.Latch) uint64) []int64 {
	out := make([]int64, len(m.shards))
	for i := range m.shards {
		out[i] = int64(f(&m.shards[i].mu))
	}
	return out
}

// LatchSpinHits returns how many contended shard-latch acquires were won
// in the spin phase (no park). Lock-free.
func (m *Manager) LatchSpinHits() int64 {
	return m.latchTotals((*latch.Latch).SpinHits)
}

// LatchParks returns how many contended shard-latch acquires parked on
// the latch's condition. Lock-free.
func (m *Manager) LatchParks() int64 {
	return m.latchTotals((*latch.Latch).Parks)
}

// LatchHandoffs returns how many shard-latch unlocks signalled a parked
// waiter. Lock-free.
func (m *Manager) LatchHandoffs() int64 {
	return m.latchTotals((*latch.Latch).Handoffs)
}

// LatchWaitNsTotal returns the exact wall-clock nanoseconds contended
// shard-latch acquires have spent in the slow path, summed across shards.
// Divided by LatchSpinHits()+LatchParks() it is the exact mean contended
// wait — unlike the latch profile's histogram mean, which quantizes to
// power-of-two buckets. Lock-free.
func (m *Manager) LatchWaitNsTotal() int64 {
	var n int64
	for i := range m.shards {
		n += m.shards[i].mu.WaitNs()
	}
	return n
}

// LatchSpinHitValues returns the per-shard spin-hit counts.
func (m *Manager) LatchSpinHitValues() []int64 {
	return m.latchValues((*latch.Latch).SpinHits)
}

// LatchParkValues returns the per-shard park counts.
func (m *Manager) LatchParkValues() []int64 {
	return m.latchValues((*latch.Latch).Parks)
}

// LatchHandoffValues returns the per-shard handoff counts.
func (m *Manager) LatchHandoffValues() []int64 {
	return m.latchValues((*latch.Latch).Handoffs)
}

// LatchSpinBudgets returns each shard latch's current spin budget — the
// adaptive controller's live state (or the pinned value under a fixed
// Config.LatchSpin).
func (m *Manager) LatchSpinBudgets() []int {
	out := make([]int, len(m.shards))
	for i := range m.shards {
		out[i] = m.shards[i].mu.Budget()
	}
	return out
}
