package lockmgr

import (
	"testing"
)

// Scenario tests for the finer points of multigranularity semantics: U
// locks, SIX, coverage interactions and weighted requests.

// TestULockProtocol: U is the classic convert-deadlock killer — readers may
// keep reading under a U holder, but a second U (or X) must wait, so only
// one transaction is ever positioned to upgrade.
func TestULockProtocol(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	o3 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)

	mustGrant(t, m.AcquireAsync(o1, row, ModeU, 1), "o1 U")
	mustGrant(t, m.AcquireAsync(o2, row, ModeS, 1), "o2 S reads under U")
	p3 := m.AcquireAsync(o3, row, ModeU, 1)
	mustWait(t, p3, "second U must wait")

	// o1 upgrades U→X: waits only for o2's S, not for queued U.
	pc := m.AcquireAsync(o1, row, ModeX, 1)
	mustWait(t, pc, "U→X blocked by reader")
	m.ReleaseAll(o2)
	mustGrant(t, pc, "U→X after reader leaves")
	mustWait(t, p3, "queued U still behind X")
	m.ReleaseAll(o1)
	mustGrant(t, p3, "queued U proceeds")
}

// TestSIXSemantics: SIX = table S + intent X. Readers' IS coexists; other
// writers' IX does not.
func TestSIXSemantics(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	o3 := m.NewOwner(m.RegisterApp())

	mustGrant(t, m.AcquireAsync(o1, TableName(1), ModeSIX, 1), "SIX")
	mustGrant(t, m.AcquireAsync(o2, TableName(1), ModeIS, 1), "reader IS vs SIX")
	p := m.AcquireAsync(o3, TableName(1), ModeIX, 1)
	mustWait(t, p, "writer IX vs SIX")

	// The SIX holder's own row X locks proceed (SIX covers S reads, and
	// intent-X admits its row X locks).
	mustGrant(t, m.AcquireAsync(o1, RowName(1, 5), ModeX, 1), "SIX holder's row X")
	// Its row S reads are covered — no structures.
	used := m.UsedStructs()
	mustGrant(t, m.AcquireAsync(o1, RowName(1, 6), ModeS, 1), "covered read")
	if m.UsedStructs() != used {
		t.Fatal("covered read consumed a structure")
	}
}

// TestIXPlusSBecomesSIX: the standard conversion — a reader that already
// scans (S table) and then wants to update rows converts to SIX.
func TestIXPlusSBecomesSIX(t *testing.T) {
	m := newMgr(Config{})
	o := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeS, 1), "table S")
	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIX, 1), "upgrade with IX")
	if got := m.HeldMode(o, TableName(1)); got != ModeSIX {
		t.Fatalf("mode = %v, want SIX", got)
	}
}

// TestIntentEscalationKeepsOtherReaders: escalation to S (pure readers)
// does not disturb concurrent readers of the same table.
func TestIntentEscalationKeepsOtherReaders(t *testing.T) {
	m := New(Config{InitialPages: 32, Quota: fixedQuota(10)})
	reader := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(reader, TableName(1), ModeIS, 1), "bystander IS")
	mustGrant(t, m.AcquireAsync(reader, RowName(1, 9_000_000), ModeS, 1), "bystander row")

	hog := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(hog, TableName(1), ModeIS, 1), "hog IS")
	for i := 0; m.Stats().Escalations == 0; i++ {
		mustGrant(t, m.AcquireAsync(hog, RowName(1, uint64(i)), ModeS, 1), "hog rows")
		if i > 400 {
			t.Fatal("no escalation")
		}
	}
	// The hog now holds table S; the bystander's locks are untouched.
	if got := m.HeldMode(hog, TableName(1)); got != ModeS {
		t.Fatalf("escalated mode = %v, want S", got)
	}
	if got := m.HeldMode(reader, RowName(1, 9_000_000)); got != ModeS {
		t.Fatal("bystander's row lock disturbed")
	}
	// And the bystander can still read more rows.
	mustGrant(t, m.AcquireAsync(reader, RowName(1, 9_000_001), ModeS, 1), "bystander continues")
}

// TestWeightedWaiterFreesOnCancel: a waiting weighted request holds its
// structures while queued and frees them when withdrawn.
func TestWeightedWaiterFreesOnCancel(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 0)
	mustGrant(t, m.AcquireAsync(o1, row, ModeX, 1), "holder")
	p := m.AcquireAsync(o2, row, ModeS, 64)
	mustWait(t, p, "weighted waiter")
	if got := m.UsedStructs(); got != 65 {
		t.Fatalf("used = %d, want 65 (waiters hold their structures)", got)
	}
	m.ReleaseAll(o2)
	if got := m.UsedStructs(); got != 1 {
		t.Fatalf("used = %d after withdraw, want 1", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupModeAfterPartialRelease: releasing the strongest member weakens
// the group mode and admits previously blocked requests.
func TestGroupModeAfterPartialRelease(t *testing.T) {
	m := newMgr(Config{})
	oIS := m.NewOwner(m.RegisterApp())
	oIX := m.NewOwner(m.RegisterApp())
	oS := m.NewOwner(m.RegisterApp())
	tab := TableName(4)

	mustGrant(t, m.AcquireAsync(oIS, tab, ModeIS, 1), "IS")
	mustGrant(t, m.AcquireAsync(oIX, tab, ModeIX, 1), "IX")
	pS := m.AcquireAsync(oS, tab, ModeS, 1)
	mustWait(t, pS, "S vs group IX")

	m.ReleaseAll(oIX) // group weakens to IS
	mustGrant(t, pS, "S after IX release")
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEscalationWithMixedModesGoesSIXOrX: rows S + rows X under IX escalate
// to at least SIX (covering the reads, keeping write intent).
func TestEscalationWithMixedModes(t *testing.T) {
	m := New(Config{InitialPages: 32, Quota: fixedQuota(10)})
	o := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIX, 1), "IX")
	mode := ModeS
	for i := 0; m.Stats().Escalations == 0; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(1, uint64(i)), mode, 1), "row")
		if mode == ModeS {
			mode = ModeX
		} else {
			mode = ModeS
		}
		if i > 400 {
			t.Fatal("no escalation")
		}
	}
	got := m.HeldMode(o, TableName(1))
	if got != ModeSIX && got != ModeX {
		t.Fatalf("escalated mode = %v, want SIX or X", got)
	}
}

// TestHeldModeAccessor covers the diagnostic accessor.
func TestHeldModeAccessor(t *testing.T) {
	m := newMgr(Config{})
	o := m.NewOwner(m.RegisterApp())
	if got := m.HeldMode(o, RowName(1, 1)); got != ModeNone {
		t.Fatalf("unheld = %v", got)
	}
	mustGrant(t, m.AcquireAsync(o, RowName(1, 1), ModeU, 1), "U")
	if got := m.HeldMode(o, RowName(1, 1)); got != ModeU {
		t.Fatalf("held = %v", got)
	}
}
