package lockmgr

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the O(locks-held) commit fast path: ReleaseAll walks only the
// owner's touched shards, idle control-plane sweeps take no latches, and the
// per-shard rows-before-tables release order is pinned. The latch cost
// proofs use the unconditional LatchAcquisitions counter, so they are exact,
// not statistical.

// TestReleaseAllLatchesOnlyTouchedShards proves the tentpole bound: a commit
// latches exactly the distinct shards hosting the owner's locks — not the
// 3×shards full sweep the release path used to cost.
func TestReleaseAllLatchesOnlyTouchedShards(t *testing.T) {
	m := newMgr(Config{Shards: 8})
	app := m.RegisterApp()
	o := m.NewOwner(app)

	names := []Name{
		TableName(1), RowName(1, 1), RowName(1, 2),
		TableName(2), RowName(2, 7),
	}
	touched := make(map[int]struct{})
	for _, n := range names {
		mode := ModeX
		if n.Gran == GranTable {
			mode = ModeIX
		}
		mustGrant(t, m.AcquireAsync(o, n, mode, 1), "acquire")
		touched[m.shardOf(n)] = struct{}{}
	}

	base := m.LatchAcquisitions()
	m.ReleaseAll(o)
	delta := m.LatchAcquisitions() - base

	if want := int64(len(touched)); delta != want {
		t.Fatalf("ReleaseAll took %d latch acquisitions, want %d (one per touched shard)", delta, want)
	}
	if full := int64(3 * m.NumShards()); delta >= full {
		t.Fatalf("ReleaseAll took %d latches, not better than the %d full-sweep cost", delta, full)
	}
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("used structs after commit = %d, want 0", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseAllEmptyOwnerTakesNoLatches: a transaction that acquired
// nothing commits without touching a single shard latch, and a double
// release stays free too.
func TestReleaseAllEmptyOwnerTakesNoLatches(t *testing.T) {
	m := newMgr(Config{Shards: 8})
	app := m.RegisterApp()
	o := m.NewOwner(app)

	base := m.LatchAcquisitions()
	m.ReleaseAll(o)
	m.ReleaseAll(o) // double release: no-op, still latch-free
	if delta := m.LatchAcquisitions() - base; delta != 0 {
		t.Fatalf("empty-owner ReleaseAll took %d latch acquisitions, want 0", delta)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIdleControlPlaneTakesNoLatches: with locks held but nobody waiting,
// the timeout sweep, the deadlock detector, and a cancel probe all observe
// the published nWaiting mirrors and return without latching anything.
func TestIdleControlPlaneTakesNoLatches(t *testing.T) {
	m := newMgr(Config{Shards: 8, LockTimeout: time.Second})
	app := m.RegisterApp()
	o := m.NewOwner(app)
	for i := 0; i < 6; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(uint32(i+1), uint64(i)), ModeX, 1), "grant")
	}

	base := m.LatchAcquisitions()
	if n := m.SweepTimeouts(); n != 0 {
		t.Fatalf("idle SweepTimeouts denied %d", n)
	}
	if n := m.DetectDeadlocks(); n != 0 {
		t.Fatalf("idle DetectDeadlocks denied %d", n)
	}
	m.cancel(o, RowName(1, 0)) // granted, not waiting: mirror reads zero
	if delta := m.LatchAcquisitions() - base; delta != 0 {
		t.Fatalf("idle control plane took %d latch acquisitions, want 0", delta)
	}

	m.ReleaseAll(o)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseOrderRowsBeforeTables pins the per-shard release ordering
// choice: within one shard visit the batch buckets rows ahead of tables, in
// ascending shard order, and releaseShardBatch walks rows first — so an
// intent table lock never disappears before the row locks it covers.
func TestReleaseOrderRowsBeforeTables(t *testing.T) {
	m := newMgr(Config{Shards: 1})
	app := m.RegisterApp()
	o := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o, TableName(7), ModeIX, 1), "intent")
	for i := 0; i < 3; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(7, uint64(i)), ModeX, 1), "row")
	}

	var b releaseBatch
	o.mu.Lock()
	b.collect(m, o)
	o.mu.Unlock()
	if !b.hasShard(0) || b.hasShard(1) {
		t.Fatalf("single-shard batch shard bits wrong: %v", b.shards)
	}
	if got := len(b.rows); got != 3 {
		t.Fatalf("row list holds %d entries, want 3", got)
	}
	if got := len(b.tables); got != 1 {
		t.Fatalf("table list holds %d entries, want 1", got)
	}
	for _, e := range b.rows {
		if e.name.Gran != GranRow {
			t.Fatalf("non-row entry %v in row list", e.name)
		}
	}
	for _, e := range b.tables {
		if e.name.Gran != GranTable {
			t.Fatalf("non-table entry %v in table list", e.name)
		}
	}
	m.ReleaseAll(o)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseBatchAscendingShards: the walk visits shards in ascending
// index order (the multi-shard latch protocol), and every shard the batch
// marks carries a touched bit.
func TestReleaseBatchAscendingShards(t *testing.T) {
	m := newMgr(Config{Shards: 8})
	app := m.RegisterApp()
	o := m.NewOwner(app)
	for i := 0; i < 32; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(uint32(1+i%5), uint64(i*37)), ModeS, 1), "row")
	}

	var b releaseBatch
	o.mu.Lock()
	b.collect(m, o)
	touched := o.touchedShards(nil)
	o.mu.Unlock()

	marked := 0
	for si := 0; si < m.NumShards(); si++ {
		if b.hasShard(si) {
			marked++
		}
	}
	if marked < 2 {
		t.Fatalf("expected rows to span multiple shards, got %d", marked)
	}
	touchedSet := make(map[int]struct{}, len(touched))
	for j, si := range touched {
		if j > 0 && touched[j-1] >= si {
			t.Fatalf("touched shard order not ascending: %v", touched)
		}
		touchedSet[si] = struct{}{}
	}
	for si := 0; si < m.NumShards(); si++ {
		if !b.hasShard(si) {
			continue
		}
		if _, ok := touchedSet[si]; !ok {
			t.Fatalf("batched shard %d missing from touched set %v", si, touched)
		}
	}
	// Every entry's cached shard index must match its name's home shard.
	for _, e := range b.rows {
		if e.si != m.shardOf(e.name) {
			t.Fatalf("entry %v cached shard %d, home is %d", e.name, e.si, m.shardOf(e.name))
		}
	}
	m.ReleaseAll(o)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseAllAbortsInFlightWaits exercises the non-quiesced walk: an
// owner released while one of its requests still waits has that request
// denied (ErrCanceled) before any of its granted locks are freed, and
// nothing leaks.
func TestReleaseAllAbortsInFlightWaits(t *testing.T) {
	m := newMgr(Config{Shards: 8})
	app := m.RegisterApp()
	holder := m.NewOwner(app)
	row := RowName(3, 14)
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	waiter := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(waiter, RowName(4, 1), ModeX, 1), "waiter's own row")
	p := m.AcquireAsync(waiter, row, ModeX, 1)
	mustWait(t, p, "queued behind holder")

	m.ReleaseAll(waiter) // abort: must withdraw the queued request
	if st, err := p.Status(); st != StatusDenied || !errors.Is(err, ErrCanceled) {
		t.Fatalf("aborted wait: status=%v err=%v, want denied/ErrCanceled", st, err)
	}
	m.ReleaseAll(holder)
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("used structs after aborts = %d, want 0", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleReleaseAllConcurrent: two goroutines racing ReleaseAll on the
// same owner — a commit/abort race — release every lock exactly once.
func TestDoubleReleaseAllConcurrent(t *testing.T) {
	m := newMgr(Config{Shards: 8})
	app := m.RegisterApp()
	for round := 0; round < 50; round++ {
		o := m.NewOwner(app)
		for i := 0; i < 8; i++ {
			mustGrant(t, m.AcquireAsync(o, RowName(uint32(1+i%3), uint64(round*100+i)), ModeX, 1), "row")
		}
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.ReleaseAll(o)
			}()
		}
		wg.Wait()
		if got := m.UsedStructs(); got != 0 {
			t.Fatalf("round %d: used structs = %d, want 0", round, got)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitStormReleasePath is the commit-storm stress run: concurrent
// commits and aborts over shared and private tables, escalations forced by
// a small per-application quota, aborts fired while async requests are
// still queued, racing double releases — all under a continuous deadlock
// detector + timeout sweeper that asserts CheckInvariants throughout. Run
// it with -race.
func TestCommitStormReleasePath(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		workers     = 8
		txPerWorker = 120
		hotRows     = 4
	)
	m := New(Config{
		InitialPages: 32, // one block: 2048 structs, quota bites at 102
		Shards:       8,
		Quota:        fixedQuota(5),
		LockTimeout:  50 * time.Millisecond,
	})

	var (
		stop     = make(chan struct{})
		sweeps   atomic.Int64
		aborts   atomic.Int64
		invErrMu sync.Mutex
		invErr   error
	)
	var sweeperWG sync.WaitGroup
	sweeperWG.Add(1)
	go func() {
		defer sweeperWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			m.DetectDeadlocks()
			m.SweepTimeouts()
			if err := m.CheckInvariants(); err != nil {
				invErrMu.Lock()
				invErr = err
				invErrMu.Unlock()
				return
			}
			sweeps.Add(1)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			app := m.RegisterApp()
			rng := rand.New(rand.NewSource(int64(w)))
			private := uint32(100 + w)
			for tx := 0; tx < txPerWorker; tx++ {
				o := m.NewOwner(app)
				ok := true
				if err := m.Acquire(context.Background(), o, TableName(private), ModeIX, 1); err != nil {
					t.Errorf("private intent: %v", err)
					ok = false
				}
				// Every 10th transaction blows through the 5%% quota on its
				// private table, forcing an escalation (and the parked-
				// request retry) on the commit path about to run.
				rows := 4 + rng.Intn(8)
				if tx%10 == 5 {
					rows = 120
				}
				for r := 0; ok && r < rows; r++ {
					err := m.Acquire(context.Background(), o, RowName(private, uint64(tx*200+r)), ModeX, 1)
					if err != nil {
						if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrLockMemory) {
							t.Errorf("private row: %v", err)
						}
						aborts.Add(1)
						ok = false
					}
				}
				// Hot shared rows: S with occasional X upgrades → convert
				// deadlocks, broken by the sweeper; timeouts tolerated.
				for h := 0; ok && h < hotRows; h++ {
					if rng.Intn(2) == 0 {
						continue
					}
					mode := ModeS
					if rng.Intn(4) == 0 {
						mode = ModeX
					}
					if err := m.Acquire(context.Background(), o, RowName(99, uint64(h)), mode, 1); err != nil {
						if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrLockMemory) {
							t.Errorf("hot row: %v", err)
						}
						aborts.Add(1)
						ok = false
					}
				}
				// Sometimes abort with an async request still in flight: the
				// non-quiesced walk must withdraw it.
				var inflight *Pending
				if ok && rng.Intn(4) == 0 {
					inflight = m.AcquireAsync(o, RowName(99, uint64(rng.Intn(hotRows))), ModeX, 1)
				}
				// Sometimes race a second ReleaseAll against the first.
				if rng.Intn(4) == 0 {
					var rel sync.WaitGroup
					rel.Add(1)
					go func() {
						defer rel.Done()
						m.ReleaseAll(o)
					}()
					m.ReleaseAll(o)
					rel.Wait()
				} else {
					// The exactly-once path hands the owner back for
					// recycling, as the transaction layer does; owners
					// that ever waited are left to the GC (FinishOwner
					// checks), so this is safe under the storm.
					m.FinishOwner(o)
				}
				if inflight != nil {
					if st, _ := inflight.Status(); st == StatusWaiting {
						t.Errorf("in-flight request still waiting after ReleaseAll")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sweeperWG.Wait()

	invErrMu.Lock()
	err := invErr
	invErrMu.Unlock()
	if err != nil {
		t.Fatalf("invariant violated during storm: %v", err)
	}
	if sweeps.Load() == 0 {
		t.Fatal("sweeper never completed a pass")
	}
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("used structs after storm = %d, want 0", got)
	}
	if st := m.Stats(); st.Escalations == 0 {
		t.Fatal("storm produced no escalations; quota pressure miswired")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("sweeps=%d aborts=%d escalations=%d latchAcqs=%d",
		sweeps.Load(), aborts.Load(), m.Stats().Escalations, m.LatchAcquisitions())
}

// TestBoxRecycling: committed blocking acquires return their request boxes
// to the home shard's cache, and a recycled box serves a later acquire
// without confusing revalidation.
func TestBoxRecycling(t *testing.T) {
	m := newMgr(Config{Shards: 1})
	app := m.RegisterApp()
	ctx := context.Background()

	for round := 0; round < 3; round++ {
		o := m.NewOwner(app)
		for i := 0; i < 4; i++ {
			if err := m.Acquire(ctx, o, RowName(1, uint64(i)), ModeX, 1); err != nil {
				t.Fatal(err)
			}
		}
		m.ReleaseAll(o)
	}
	s := &m.shards[0]
	s.mu.Lock()
	cached := len(s.rfree)
	mirror := s.rfreeN.Load()
	s.mu.Unlock()
	if cached == 0 {
		t.Fatal("no boxes recycled after committed blocking acquires")
	}
	if int32(cached) != mirror {
		t.Fatalf("rfree mirror %d, cache holds %d", mirror, cached)
	}

	// Async pendings are caller-held and must never be recycled.
	o := m.NewOwner(app)
	p := m.AcquireAsync(o, RowName(2, 1), ModeX, 1)
	mustGrant(t, p, "async")
	m.ReleaseAll(o)
	if st, err := p.Status(); st != StatusGranted || err != nil {
		t.Fatalf("caller-held pending corrupted after release: status=%v err=%v", st, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFinishOwnerRecycling: FinishOwner hands never-waited owners back to
// the manager's pool, and a recycled owner starts from a clean slate —
// fresh id, empty held index, cleared touched set. Owners whose requests
// ever waited are released but not recycled, since continuations may still
// hold the pointer.
func TestFinishOwnerRecycling(t *testing.T) {
	m := New(Config{InitialPages: 8, Shards: 8})
	app := m.RegisterApp()
	ctx := context.Background()

	var lastID uint64
	for round := 0; round < 64; round++ {
		o := m.NewOwner(app)
		if o.id <= lastID {
			t.Fatalf("round %d: owner id %d not monotonic (last %d)", round, o.id, lastID)
		}
		lastID = o.id
		if o.released || o.held.n != 0 || o.held.m != nil || o.touched0 != 0 || o.ot0used || o.everWaited {
			t.Fatalf("round %d: recycled owner not reset: %+v", round, o)
		}
		for l := 0; l < 5; l++ {
			if err := m.Acquire(ctx, o, RowName(1, uint64(round*8+l)), ModeX, 1); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		m.FinishOwner(o)
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("UsedStructs = %d after all owners finished, want 0", got)
	}

	// An owner that waited is released but kept from the pool.
	holder := m.NewOwner(app)
	if err := m.Acquire(ctx, holder, RowName(2, 1), ModeX, 1); err != nil {
		t.Fatal(err)
	}
	waiter := m.NewOwner(app)
	p := m.AcquireAsync(waiter, RowName(2, 1), ModeX, 1)
	if st, _ := p.Status(); st != StatusWaiting {
		t.Fatalf("conflicting request status %v, want waiting", st)
	}
	m.FinishOwner(holder) // grants the waiter
	if st, _ := p.Status(); st != StatusGranted {
		t.Fatalf("waiter status %v after holder release, want granted", st)
	}
	if !waiter.everWaited {
		t.Fatal("waiter owner not marked everWaited")
	}
	m.FinishOwner(waiter)
	if !waiter.released {
		t.Fatal("FinishOwner did not release the waited owner")
	}
	// Not recycled: the released flag survives, so a stale pointer stays a
	// terminal no-op forever.
	m.ReleaseAll(waiter)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
