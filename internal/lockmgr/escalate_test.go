package lockmgr

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/memblock"
)

// fixedQuota is a QuotaProvider returning a constant percentage — the
// pre-DB2 9 static MAXLOCKS behaviour.
type fixedQuota float64

func (q fixedQuota) QuotaPercent(int, int64, int) float64 { return float64(q) }

// acquireRows locks `n` rows of table in the given mode (intent lock first),
// asserting grants.
func acquireRows(t *testing.T, m *Manager, o *Owner, table uint32, mode Mode, n int) {
	t.Helper()
	mustGrant(t, m.AcquireAsync(o, TableName(table), intentFor(mode), 1), "intent")
	for i := 0; i < n; i++ {
		p := m.AcquireAsync(o, RowName(table, uint64(i)), mode, 1)
		mustGrant(t, p, "row")
	}
}

// TestQuotaEscalation exercises the MAXLOCKS trigger: with a 10% quota on
// one block (2048 structs → 204 structs), an application acquiring row locks
// escalates at the quota and continues under a table lock.
func TestQuotaEscalation(t *testing.T) {
	m := New(Config{InitialPages: 32, Quota: fixedQuota(10)})
	app := m.RegisterApp()
	o := m.NewOwner(app)

	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIS, 1), "intent")
	limit := memblock.StructsPerBlock / 10 // 10% quota = 204 structs
	for i := 0; ; i++ {
		if i > limit+10 {
			t.Fatal("no escalation at the quota")
		}
		p := m.AcquireAsync(o, RowName(1, uint64(i)), ModeS, 1)
		mustGrant(t, p, "row under quota")
		if m.Stats().Escalations > 0 {
			break
		}
	}
	// After escalation: one S table lock, no row locks, app usage tiny.
	if got := m.AppStructs(app); got > 2 {
		t.Fatalf("app structs after escalation = %d, want <= 2", got)
	}
	st := m.Stats()
	if st.Escalations != 1 {
		t.Fatalf("escalations = %d, want 1", st.Escalations)
	}
	if st.ExclusiveEscalations != 0 {
		t.Fatalf("S-row escalation counted as exclusive")
	}
	// The table lock now covers further rows: no growth in structs.
	used := m.UsedStructs()
	mustGrant(t, m.AcquireAsync(o, RowName(1, 9999), ModeS, 1), "covered row")
	if m.UsedStructs() != used {
		t.Fatal("covered row consumed a structure after escalation")
	}
}

// TestMemoryEscalation exercises the exhaustion trigger: one block, no
// synchronous growth, X-mode rows → exclusive escalation when the chain
// fills.
func TestMemoryEscalation(t *testing.T) {
	m := New(Config{InitialPages: 32})
	app := m.RegisterApp()
	o := m.NewOwner(app)

	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIX, 1), "intent")
	for i := 0; ; i++ {
		if i > memblock.StructsPerBlock+10 {
			t.Fatal("no escalation at memory exhaustion")
		}
		p := m.AcquireAsync(o, RowName(1, uint64(i)), ModeX, 1)
		mustGrant(t, p, "row X")
		if m.Stats().Escalations > 0 {
			break
		}
	}
	st := m.Stats()
	if st.Escalations != 1 || st.ExclusiveEscalations != 1 {
		t.Fatalf("stats = %+v, want one exclusive escalation", st)
	}
	// Memory is freed: almost everything is available again.
	if frac := m.FreeFraction(); frac < 0.99 {
		t.Fatalf("free fraction after escalation = %g", frac)
	}
}

// TestSyncGrowthAvoidsEscalation: with a GrowSync hook standing in for
// database overflow memory, exhaustion grows the chain instead of
// escalating — the core promise of section 3.3.
func TestSyncGrowthAvoidsEscalation(t *testing.T) {
	granted := 0
	m := New(Config{
		InitialPages: 32,
		GrowSync: func(needPages int) int {
			granted += needPages
			return needPages
		},
	})
	app := m.RegisterApp()
	o := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIX, 1), "intent")
	for i := 0; i < 3*memblock.StructsPerBlock; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(1, uint64(i)), ModeX, 1), "row")
	}
	if m.Stats().Escalations != 0 {
		t.Fatal("escalated despite synchronous growth")
	}
	if granted == 0 || m.Pages() <= 32 {
		t.Fatalf("no synchronous growth happened: granted=%d pages=%d", granted, m.Pages())
	}
	if m.Stats().SyncGrowths == 0 || m.Stats().SyncGrowthPages == 0 {
		t.Fatalf("sync growth stats not recorded: %+v", m.Stats())
	}
}

// TestSyncGrowthDeniedThenEscalates: the hook refuses (overflow constrained)
// and escalation fires — the "massive spikes" fallback.
func TestSyncGrowthDeniedThenEscalates(t *testing.T) {
	m := New(Config{
		InitialPages: 32,
		GrowSync:     func(needPages int) int { return 0 },
	})
	o := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIX, 1), "intent")
	for i := 0; i <= memblock.StructsPerBlock; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(1, uint64(i)), ModeX, 1), "row")
	}
	if m.Stats().Escalations == 0 {
		t.Fatal("expected escalation when growth denied")
	}
}

// TestEscalationPicksBiggestTable: the victim is the table with the most
// row-lock structures.
func TestEscalationPicksBiggestTable(t *testing.T) {
	m := New(Config{InitialPages: 32, Quota: fixedQuota(10)})
	app := m.RegisterApp()
	o := m.NewOwner(app)

	mustGrant(t, m.AcquireAsync(o, TableName(1), ModeIS, 1), "t1 intent")
	mustGrant(t, m.AcquireAsync(o, TableName(2), ModeIS, 1), "t2 intent")
	for i := 0; i < 50; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(1, uint64(i)), ModeS, 1), "t1 row")
	}
	for i := 0; i < 140; i++ { // t2 is bigger
		mustGrant(t, m.AcquireAsync(o, RowName(2, uint64(i)), ModeS, 1), "t2 row")
	}
	// Push over the 10% quota (204 structs): next row escalates table 2.
	for i := 140; m.Stats().Escalations == 0; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(2, uint64(i)), ModeS, 1), "t2 row over quota")
		if i > 300 {
			t.Fatal("no escalation")
		}
	}
	// Table 1's rows must survive; table 2's must be gone.
	ot1 := o.tableFor(1)
	if ot1 == nil || ot1.rowCount() != 50 {
		t.Fatalf("table 1 rows disturbed: %+v", ot1)
	}
	ot2 := o.tableFor(2)
	if ot2 == nil || ot2.rowCount() != 0 {
		t.Fatalf("table 2 rows not escalated: %d rows", ot2.rowCount())
	}
	if ot2.tableReq.mode != ModeS {
		t.Fatalf("table 2 escalated mode = %v, want S", ot2.tableReq.mode)
	}
}

// TestEscalationBlocksOtherClients reproduces the concurrency catastrophe of
// Figures 7–8 in miniature: after an X escalation, other applications' row
// requests on the table block at their intent locks.
func TestEscalationBlocksOtherClients(t *testing.T) {
	m := New(Config{InitialPages: 32})
	o1 := m.NewOwner(m.RegisterApp())

	mustGrant(t, m.AcquireAsync(o1, TableName(1), ModeIX, 1), "o1 intent")
	for i := 0; m.Stats().Escalations == 0; i++ {
		mustGrant(t, m.AcquireAsync(o1, RowName(1, uint64(i)), ModeX, 1), "o1 row")
		if i > memblock.StructsPerBlock+10 {
			t.Fatal("no escalation")
		}
	}
	// o2 now cannot even get an intent lock on the table.
	o2 := m.NewOwner(m.RegisterApp())
	p := m.AcquireAsync(o2, TableName(1), ModeIS, 1)
	mustWait(t, p, "o2 intent blocked by escalated X")

	// When o1 commits, o2 proceeds.
	m.ReleaseAll(o1)
	mustGrant(t, p, "o2 after o1 commit")
}

// TestEscalationWaitsForConflicts: escalation's table conversion queues
// behind an incompatible holder, and the triggering request parks until the
// escalation completes.
func TestEscalationWaitsForConflicts(t *testing.T) {
	m := New(Config{InitialPages: 32})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())

	// o2 holds an IS intent (reader elsewhere in the table).
	mustGrant(t, m.AcquireAsync(o2, TableName(1), ModeIS, 1), "o2 IS")

	mustGrant(t, m.AcquireAsync(o1, TableName(1), ModeIX, 1), "o1 IX")
	var last *Pending
	for i := 0; m.Stats().Escalations == 0; i++ {
		last = m.AcquireAsync(o1, RowName(1, uint64(i)), ModeX, 1)
		if i > memblock.StructsPerBlock+10 {
			t.Fatal("no escalation")
		}
	}
	// The escalation to X conflicts with o2's IS: the triggering row
	// request is parked.
	mustWait(t, last, "parked behind escalation")

	m.ReleaseAll(o2)
	mustGrant(t, last, "granted after escalation completes")
	// After escalation, o1's request is covered by the table X lock.
	if got := o1.tableFor(1).rowCount(); got != 0 {
		t.Fatalf("row locks remain after escalation: %d", got)
	}
}

// TestParkedRequestTimesOut: if the escalation cannot complete before the
// lock timeout, the parked request is denied.
func TestParkedRequestTimesOut(t *testing.T) {
	clk := clock.NewSim()
	m := New(Config{InitialPages: 32, Clock: clk, LockTimeout: 10 * time.Second})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o2, TableName(1), ModeIS, 1), "o2 IS")
	mustGrant(t, m.AcquireAsync(o1, TableName(1), ModeIX, 1), "o1 IX")
	var last *Pending
	for i := 0; m.Stats().Escalations == 0; i++ {
		last = m.AcquireAsync(o1, RowName(1, uint64(i)), ModeX, 1)
		if i > memblock.StructsPerBlock+10 {
			t.Fatal("no escalation")
		}
	}
	mustWait(t, last, "parked")
	clk.Advance(11 * time.Second)
	if n := m.SweepTimeouts(); n == 0 {
		t.Fatal("sweep denied nothing")
	}
	if st, err := last.Status(); st != StatusDenied || !errors.Is(err, ErrTimeout) {
		t.Fatalf("parked request status=%v err=%v", st, err)
	}
}

// TestQuotaDenialWithNothingToEscalate: a single oversized request with no
// row locks to escalate is denied outright.
func TestQuotaDenialWithNothingToEscalate(t *testing.T) {
	m := New(Config{InitialPages: 32, Quota: fixedQuota(1)}) // 20 structs
	o := m.NewOwner(m.RegisterApp())
	p := m.AcquireAsync(o, RowName(1, 1), ModeS, 100)
	if st, err := p.Status(); st != StatusDenied || !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("status=%v err=%v, want quota denial", st, err)
	}
	if m.Stats().QuotaDenials != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

// TestMemoryDenialWithNothingToEscalate: exhaustion with no escalatable
// locks yields ErrLockMemory.
func TestMemoryDenialWithNothingToEscalate(t *testing.T) {
	m := New(Config{InitialPages: 32})
	o := m.NewOwner(m.RegisterApp())
	p := m.AcquireAsync(o, RowName(1, 1), ModeS, memblock.StructsPerBlock+1)
	if st, err := p.Status(); st != StatusDenied || !errors.Is(err, ErrLockMemory) {
		t.Fatalf("status=%v err=%v, want memory denial", st, err)
	}
	if m.Stats().MemoryDenials != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}
