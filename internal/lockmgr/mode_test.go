package lockmgr

import (
	"testing"
	"testing/quick"
)

var allModes = []Mode{ModeIS, ModeIX, ModeS, ModeSIX, ModeU, ModeX}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeNone: "NONE", ModeIS: "IS", ModeIX: "IX", ModeS: "S",
		ModeSIX: "SIX", ModeU: "U", ModeX: "X",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if Mode(42).String() != "Mode(42)" {
		t.Errorf("unknown mode string = %q", Mode(42).String())
	}
}

func TestModeValid(t *testing.T) {
	if ModeNone.Valid() {
		t.Error("NONE must not be valid")
	}
	if Mode(99).Valid() {
		t.Error("out-of-range mode must not be valid")
	}
	for _, m := range allModes {
		if !m.Valid() {
			t.Errorf("%v must be valid", m)
		}
	}
}

func TestCompatibilityMatrixSpotChecks(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{ModeS, ModeS, true},
		{ModeS, ModeX, false},
		{ModeX, ModeX, false},
		{ModeIS, ModeIX, true},
		{ModeIS, ModeX, false},
		{ModeIX, ModeIX, true},
		{ModeIX, ModeS, false},
		{ModeSIX, ModeIS, true},
		{ModeSIX, ModeIX, false},
		{ModeU, ModeS, true},  // readers may read under an update lock
		{ModeU, ModeU, false}, // two update intents conflict
		{ModeU, ModeX, false},
	}
	for _, tc := range cases {
		if got := Compatible(tc.a, tc.b); got != tc.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompatibilityIsSymmetric(t *testing.T) {
	for _, a := range allModes {
		for _, b := range allModes {
			if Compatible(a, b) != Compatible(b, a) {
				t.Errorf("compatibility asymmetric for (%v,%v)", a, b)
			}
		}
	}
}

func TestEverythingCompatibleWithNone(t *testing.T) {
	for _, a := range allModes {
		if !Compatible(a, ModeNone) || !Compatible(ModeNone, a) {
			t.Errorf("%v must be compatible with NONE", a)
		}
	}
}

func TestSupremumLatticeLaws(t *testing.T) {
	for _, a := range allModes {
		if Supremum(a, a) != a {
			t.Errorf("sup(%v,%v) not idempotent", a, a)
		}
		if Supremum(a, ModeNone) != a {
			t.Errorf("sup(%v,NONE) = %v, want %v", a, Supremum(a, ModeNone), a)
		}
		for _, b := range allModes {
			if Supremum(a, b) != Supremum(b, a) {
				t.Errorf("sup not commutative for (%v,%v)", a, b)
			}
			if Supremum(a, ModeX) != ModeX {
				t.Errorf("X must absorb %v", a)
			}
		}
	}
}

func TestSupremumSpotChecks(t *testing.T) {
	cases := []struct{ a, b, want Mode }{
		{ModeIS, ModeIX, ModeIX},
		{ModeIX, ModeS, ModeSIX},
		{ModeS, ModeU, ModeU},
		{ModeIX, ModeU, ModeSIX},
		{ModeSIX, ModeU, ModeSIX},
		{ModeIS, ModeS, ModeS},
	}
	for _, tc := range cases {
		if got := Supremum(tc.a, tc.b); got != tc.want {
			t.Errorf("sup(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestGroupModeSoundness verifies the invariant that makes groupMode-based
// grant checks exact: compatibility with a supremum equals compatibility
// with both operands.
func TestGroupModeSoundness(t *testing.T) {
	for _, a := range allModes {
		for _, b := range allModes {
			for _, c := range allModes {
				got := Compatible(a, Supremum(b, c))
				want := Compatible(a, b) && Compatible(a, c)
				if got != want {
					t.Fatalf("Compatible(%v, sup(%v,%v)) = %v, want %v", a, b, c, got, want)
				}
			}
		}
	}
}

// Property: a supremum is at least as restrictive as its operands — anything
// incompatible with an operand is incompatible with the supremum.
func TestQuickSupremumRestrictive(t *testing.T) {
	f := func(ai, bi, ci uint8) bool {
		a := allModes[int(ai)%len(allModes)]
		b := allModes[int(bi)%len(allModes)]
		c := allModes[int(ci)%len(allModes)]
		if !Compatible(c, a) && Compatible(c, Supremum(a, b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntentFor(t *testing.T) {
	if IntentFor(ModeS) != ModeIS {
		t.Error("S rows need IS")
	}
	if IntentFor(ModeU) != ModeIX || IntentFor(ModeX) != ModeIX {
		t.Error("U/X rows need IX")
	}
}

func TestCovers(t *testing.T) {
	cases := []struct {
		table, row Mode
		want       bool
	}{
		{ModeX, ModeX, true},
		{ModeX, ModeS, true},
		{ModeS, ModeS, true},
		{ModeS, ModeX, false},
		{ModeSIX, ModeS, true},
		{ModeSIX, ModeX, false},
		{ModeU, ModeS, true},
		{ModeIS, ModeS, false},
		{ModeIX, ModeX, false},
	}
	for _, tc := range cases {
		if got := covers(tc.table, tc.row); got != tc.want {
			t.Errorf("covers(%v,%v) = %v, want %v", tc.table, tc.row, got, tc.want)
		}
	}
}

func TestNameConstructors(t *testing.T) {
	tn := TableName(7)
	if tn.Gran != GranTable || tn.Table != 7 || tn.String() != "table(7)" {
		t.Errorf("TableName = %+v %q", tn, tn.String())
	}
	rn := RowName(7, 99)
	if rn.Gran != GranRow || rn.Table != 7 || rn.Row != 99 || rn.String() != "row(7.99)" {
		t.Errorf("RowName = %+v %q", rn, rn.String())
	}
	if GranTable.String() != "table" || GranRow.String() != "row" {
		t.Error("granularity strings wrong")
	}
	if Granularity(9).String() != "Granularity(9)" {
		t.Error("unknown granularity string wrong")
	}
}
