package lockmgr

// Zero-CAS optimistic reads: the seqlock tier above the latch-free CAS
// fast path.
//
// PR 5's CAS admission removed the shard latch from the read path but kept
// one shared write per grant — the CAS on the header's grant word — so
// every S admission on a hot header still bounces that cacheline between
// cores. This tier removes the last shared write: an S (or IS) request on
// a quiescent published header performs a pure read-side seqlock
// transaction. The reader
//
//  1. observes the header's 64-bit epoch, then its grant word;
//  2. admits itself only if the word is quiescent for its mode — no lk, no
//     fence (the fence bit plays the classic "seq is odd" role: a latched
//     section owns the header), and no granted mode incompatible with the
//     read (for S: no IX holders; X/U/SIX holders and queues always fence);
//  3. runs its critical section holding only an epoch-stamped OptToken —
//     no holder count was incremented, no credit consumed, no owner state
//     written;
//  4. validates at release: the word must still be quiescent and the
//     epoch unchanged. Release of a validated token is a no-op — there is
//     nothing to decrement.
//
// Validation is sound because of the writer-side protocol: every
// transition that could invalidate a reader bumps the header's epoch
// before the reader could re-observe a quiescent word.
//
// # Writer seq-bump obligations
//
// A latched settle bumps the epoch iff the settled word is not
// S-token-admissible — fenced, or carrying IX weight. Every grant of a
// mode incompatible with a token (IX, SIX, U, X; queues and converters
// fence too) settles to exactly such a word, so no invalidation is ever
// missed; a settle between two open S/IS-only words is a compatible count
// change and leaves outstanding tokens standing.
//
//	transition                        path      invalidates      bump
//	------------------------------    -------   -------------    ------------------
//	X/U/SIX grant, queue, convert     latched   S and IS         seal fences; settle
//	                                                             bumps epoch+seq
//	latched IX grant                  latched   S (IS over-      settle bumps (word
//	                                            approximated)    carries IX weight)
//	escalation to X / fence-keeping   latched   S and IS         seal + settle bump
//	settle (resize, post with queue)
//	latched S/IS release or grant,    latched   none             none (open S/IS-only
//	open-word settle                                             word; epoch+seq keep)
//	X/U/SIX release (reopens word)    latched   none (the        none
//	                                            grant bumped)
//	fast CAS IX admission             CAS       S                explicit epoch+seq
//	                                                             bump under lk
//	fast CAS S/IS admit/release       CAS       none             none (counts only)
//	fast CAS IX release               CAS       none             none (the paired
//	                                                             admission bumped)
//
// The word's 11-bit settle seq is defined as the low 11 bits of the 64-bit
// epoch (CheckInvariants enforces the identity with the world stopped —
// seq and epoch move in lockstep, both or neither), so >2048 invalidating
// transitions inside one read window — which wrap the packed seq back to a
// bit-identical word — still fail validation: the epoch comparison is
// full-width and cannot ABA. Bumps that do not logically invalidate a
// given token (an IX admission seen by an IS token, a fenced resize) cause
// a spurious invalidation, never a missed one, and cost only a retry.
//
// Tokens deliberately bypass every accounting structure: no owner held-set
// entry, no lock structure, no fast credit, no app quota charge. That is
// what makes the read path write-free — and it is safe because a token is
// not a lock: it is a verdict, decided at validation time, that an S lock
// *would have been held* for the whole window. A failed validation means
// the verdict is "no" and the caller must retry through the locking tiers
// (the CAS fast path, then the latched path). The readonly transaction
// level in internal/txn packages that retry loop.
//
// Published headers are never evicted or recycled (deferred reclamation),
// so the header pointer inside a token stays valid for arbitrarily long
// windows; a stale token is invalid, never dangling.

import (
	"runtime"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// OptToken is an epoch-stamped optimistic read token: evidence that mode
// was admissible on its header when issued, validated (or refuted) by
// ValidateOptimistic. The zero OptToken validates false.
type OptToken struct {
	h     *lockHeader
	epoch uint64
	mode  Mode
	si    int32
}

// Valid reports whether the token was issued (non-zero). It says nothing
// about whether the token will pass validation.
func (t OptToken) Valid() bool { return t.h != nil }

// wordOptAdmit reports whether an unfenced, unlocked grant word admits an
// optimistic reader of mode: for S no IX holder may be granted (S–IX
// conflict is the only one representable in an unfenced word); for IS the
// fence already excludes every conflicting mode (X, and the U/SIX holders
// that fence the word). Caller has checked lk and fence.
func wordOptAdmit(w uint64, mode Mode) bool {
	if mode == ModeS {
		return (w>>wordNIXShift)&wordCntMask == 0
	}
	return mode == ModeIS
}

// TryOptimisticRead attempts to issue a zero-CAS optimistic read token for
// mode (ModeS or ModeIS) on name. It performs no shared write beyond the
// per-shard hit counter: no CAS, no holder-count increment, no owner or
// credit mutation. ok == false means the caller must fall back to the
// locking tiers (AcquireAsync: CAS fast path, then latched); nothing was
// mutated.
func (m *Manager) TryOptimisticRead(name Name, mode Mode) (OptToken, bool) {
	if mode != ModeS && mode != ModeIS {
		return OptToken{}, false
	}
	hash := hashName(name)
	si := int(hash & m.shardMask)
	s := &m.shards[si]
	if s.fastPublishedN.Load() == 0 {
		return OptToken{}, false
	}
	h := s.fastSlots[fastSlotIndex(hash)].Load()
	if h == nil || h.name != name {
		return OptToken{}, false
	}
	// Epoch before word (seqlock read order): a settle that lands between
	// the two loads bumped the epoch first, so validation still catches it.
	e := h.epoch.Load()
	w := h.word.Load()
	if w&(wordLk|wordFence) != 0 || !wordOptAdmit(w, mode) {
		return OptToken{}, false
	}
	m.optHits.Shard(si).Inc()
	return OptToken{h: h, epoch: e, mode: mode, si: int32(si)}, true
}

// ValidateOptimistic closes an optimistic read window: it reports whether
// the token's header stayed quiescent for the token's mode — epoch
// unchanged and word still admitting — for the whole window. true means
// the read stands as if an S/IS lock had been held throughout; the release
// is thereby a no-op (no holder count was ever incremented). false means a
// writer, fence, or seq wrap intervened; the failure counter is bumped and
// the caller must rerun the read through the locking tiers.
func (m *Manager) ValidateOptimistic(t OptToken) bool {
	if t.h == nil {
		return false
	}
	// Word before epoch: a fast IX admission bumps the epoch under lk
	// before its releasing store, so a quiescent word here with an
	// unchanged epoch proves no invalidating transition completed — and an
	// in-flight one still shows lk or fence. A brief lk hold by a harmless
	// S/IS fast op is waited out rather than failed.
	var w uint64
	for spins := 0; ; spins++ {
		w = t.h.word.Load()
		if w&wordLk == 0 || spins >= 8 {
			break
		}
		runtime.Gosched()
	}
	if w&(wordLk|wordFence) != 0 || !wordOptAdmit(w, t.mode) || t.h.epoch.Load() != t.epoch {
		m.optFailures.Shard(int(t.si)).Inc()
		// Blame the lock for the wasted optimistic read (latch-free — the
		// sketch's CAS path tolerates racing validators).
		m.hot.Observe(int(t.si), t.h.name, hotEventBlameNs, obs.HotOptFailures, 1)
		return false
	}
	return true
}

// OptimisticHits returns the cumulative number of optimistic read tokens
// issued. Lock-free.
func (m *Manager) OptimisticHits() int64 { return m.optHits.Total() }

// OptimisticFailures returns the cumulative number of optimistic read
// tokens that failed validation. Lock-free.
func (m *Manager) OptimisticFailures() int64 { return m.optFailures.Total() }

// OptimisticHitCounters exposes the per-shard optimistic hit counters for
// metrics wiring.
func (m *Manager) OptimisticHitCounters() *metrics.ShardCounters { return m.optHits }

// OptimisticFailureCounters exposes the per-shard validation-failure
// counters for metrics wiring.
func (m *Manager) OptimisticFailureCounters() *metrics.ShardCounters { return m.optFailures }
