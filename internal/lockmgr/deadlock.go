package lockmgr

// Deadlock detection: a periodic waits-for-graph sweep, complementing lock
// wait timeouts. Escalations to exclusive table locks readily produce
// convert deadlocks (two holders of IX both upgrading to X), which is part
// of why Figure 8's throughput collapses; the detector keeps the simulated
// system live enough to measure rather than wedging entirely.
//
// The sweep needs a consistent view of every wait queue at once, so it is
// a stop-the-world operation on the sharded lock table: DetectDeadlocks
// latches all shards (ascending, via runGlobal) and walks each shard's
// waiting set.

// waitEdges returns the owners blocking req. Caller holds all shard
// latches (global mode).
func (m *Manager) waitEdges(req *request) []*Owner {
	h := req.header
	if h == nil {
		return nil
	}
	var out []*Owner
	want := req.effectiveMode()
	h.eachGranted(func(g *request) bool {
		if g.owner != req.owner && !Compatible(want, g.mode) {
			out = append(out, g.owner)
		}
		return true
	})
	if !req.converting {
		// FIFO discipline: a waiter is also behind every converter and
		// every earlier waiter.
		for _, c := range h.converters {
			if c.owner != req.owner {
				out = append(out, c.owner)
			}
		}
		for _, w := range h.waiters {
			if w == req {
				break
			}
			if w.owner != req.owner {
				out = append(out, w.owner)
			}
		}
	}
	return out
}

// DetectDeadlocks finds wait-for cycles and denies one victim per cycle —
// the youngest owner (largest id), whose rollback is presumed cheapest. It
// returns the number of victims denied.
func (m *Manager) DetectDeadlocks() int {
	n := 0
	m.runGlobal(func() {
		// Build the owner-level waits-for graph from every shard's
		// waiting set.
		edges := make(map[*Owner]map[*Owner]struct{})
		waitingBy := make(map[*Owner][]*request)
		for i := range m.shards {
			for req := range m.shards[i].waiting {
				if req.parked {
					continue // parked requests hold no queue position
				}
				waitingBy[req.owner] = append(waitingBy[req.owner], req)
				for _, to := range m.waitEdges(req) {
					set := edges[req.owner]
					if set == nil {
						set = make(map[*Owner]struct{})
						edges[req.owner] = set
					}
					set[to] = struct{}{}
				}
			}
		}

		const (
			white = 0
			grey  = 1
			black = 2
		)
		color := make(map[*Owner]int)
		var stack []*Owner
		victims := make(map[*Owner]struct{})

		var dfs func(o *Owner)
		dfs = func(o *Owner) {
			color[o] = grey
			stack = append(stack, o)
			for to := range edges[o] {
				if _, dead := victims[to]; dead {
					continue
				}
				switch color[to] {
				case white:
					dfs(to)
				case grey:
					// Cycle: pick the youngest owner on the stack
					// segment forming the cycle.
					victim := to
					for i := len(stack) - 1; i >= 0; i-- {
						if stack[i].id > victim.id {
							victim = stack[i]
						}
						if stack[i] == to {
							break
						}
					}
					victims[victim] = struct{}{}
				}
			}
			stack = stack[:len(stack)-1]
			color[o] = black
		}
		for o := range edges {
			if color[o] == white {
				dfs(o)
			}
		}

		for v := range victims {
			for _, req := range waitingBy[v] {
				// Denying an earlier victim posts its queues, which may
				// have granted or completed requests captured in this
				// snapshot; a nil pending marks such stale entries.
				if req.pending == nil {
					continue
				}
				if st, _ := req.pending.Status(); st == StatusWaiting {
					m.stats.deadlocks.Add(1)
					if m.cfg.Events != nil {
						m.cfg.Events.OnDeadlockVictim(v.app.id, v.id)
					}
					m.deny(req, ErrDeadlock)
					n++
				}
			}
		}
	})
	return n
}
