package lockmgr

import "sort"

// Deadlock detection: a periodic waits-for-graph sweep, complementing lock
// wait timeouts. Escalations to exclusive table locks readily produce
// convert deadlocks (two holders of IX both upgrading to X), which is part
// of why Figure 8's throughput collapses; the detector keeps the simulated
// system live enough to measure rather than wedging entirely.
//
// # Concurrent (epoch-snapshot) detection
//
// The sweep used to be stop-the-world: runGlobal latched every shard so the
// graph was one consistent cut, periodically freezing the fast path the
// sharding had just unblocked. It now runs in three phases and never takes
// the all-shard latch:
//
//  1. Export. Each shard's wait-for edges (waiting request → blocking
//     owners) are read under that shard's latch alone. waitEdges only
//     touches the request's header — granted group, converter queue,
//     earlier waiters — and a lock's entire queue lives in its home shard,
//     so a single latch suffices. The result is a fuzzy snapshot: shards
//     are sampled at different instants.
//  2. Search. The owner-level graph is assembled and DFS cycle detection
//     runs with no latches held at all. Each candidate cycle is kept as an
//     explicit edge list, every edge carrying the waiting request that
//     witnessed it.
//  3. Re-validation. A fuzzy snapshot can contain phantom cycles (an edge
//     observed in shard A may be gone by the time shard B is sampled), so
//     no one is denied on snapshot evidence. For each candidate cycle the
//     detector latches just the home shards of the cycle's witness
//     requests — a handful, taken in ascending index order like every
//     multi-shard path — and recomputes every edge fresh. Only if all
//     edges hold simultaneously under those latches does the cycle exist
//     at that instant, and a wait cycle that exists at an instant is a
//     genuine deadlock: no false victims. Any edge that evaporated (a
//     grant, release, timeout, or cancellation beat the detector) voids
//     the cycle at the cost of a few latch acquisitions; a real deadlock
//     is permanent and will validate on this pass or the next.
//
// The victim policy is unchanged: the youngest owner (largest id) on each
// validated cycle is denied — all of its waiting requests, each counted —
// and its granted locks survive (a denied conversion reverts to its granted
// mode), so the transaction layer can roll it back.

// waitEdges returns the owners blocking req. Caller holds req's home shard
// latch (which owns req.header and every request queued on it); no other
// latches are needed.
func (m *Manager) waitEdges(req *request) []*Owner {
	h := req.header
	if h == nil {
		return nil
	}
	var out []*Owner
	want := req.effectiveMode()
	h.eachGranted(func(g *request) bool {
		if g.owner != req.owner && !Compatible(want, g.mode) {
			out = append(out, g.owner)
		}
		return true
	})
	if !req.converting {
		// FIFO discipline: a waiter is also behind every converter and
		// every earlier waiter.
		for _, c := range h.converters {
			if c.owner != req.owner {
				out = append(out, c.owner)
			}
		}
		for _, w := range h.waiters {
			if w == req {
				break
			}
			if w.owner != req.owner {
				out = append(out, w.owner)
			}
		}
	}
	return out
}

// waitEdge is one observed owner→owner wait, witnessed by the waiting
// request that produced it.
type waitEdge struct {
	from *Owner
	to   *Owner
	via  *request
}

// stillWaiting reports whether via is still a live queued request. Caller
// holds via's home shard latch.
func (m *Manager) stillWaiting(via *request) bool {
	if via.pending == nil || via.parked || via.culled {
		return false
	}
	if st, _ := via.pending.Status(); st != StatusWaiting {
		return false
	}
	_, ok := m.shardFor(via.name).waiting[via]
	return ok
}

// blocksOn reports whether via (still waiting) is currently blocked by
// owner to. Caller holds via's home shard latch.
func (m *Manager) blocksOn(via *request, to *Owner) bool {
	for _, o := range m.waitEdges(via) {
		if o == to {
			return true
		}
	}
	return false
}

// DetectDeadlocks finds wait-for cycles and denies one victim per cycle —
// the youngest owner (largest id), whose rollback is presumed cheapest. It
// returns the number of waiting requests denied. Steady-state cost is one
// latch per shard, held briefly and one at a time; the all-shard latch is
// never taken (GlobalRuns does not advance).
func (m *Manager) DetectDeadlocks() int {
	// Phase 1: export each shard's edges under its own latch. Shards whose
	// published nWaiting mirror reads zero are skipped without latching —
	// a shard with no waiters contributes no edges, and the mirror's
	// fuzziness is the same fuzziness the per-shard export already has
	// (phase 3 re-validates everything). An idle lock table detects with
	// zero latch acquisitions.
	edges := make(map[*Owner]map[*Owner]*request)
	waitingBy := make(map[*Owner][]*request)
	for i := range m.shards {
		if m.shards[i].nWaiting.Load() == 0 {
			continue
		}
		s := m.lockShard(i)
		for req := range s.waiting {
			if req.parked || req.culled {
				// Parked and culled requests hold no queue position and
				// export no wait-graph edges. Culled waiters regain
				// visibility at reactivation; the SweepTimeouts valve
				// bounds how long that can take (throttle.go).
				continue
			}
			waitingBy[req.owner] = append(waitingBy[req.owner], req)
			for _, to := range m.waitEdges(req) {
				set := edges[req.owner]
				if set == nil {
					set = make(map[*Owner]*request)
					edges[req.owner] = set
				}
				if set[to] == nil {
					set[to] = req // first witness wins; any suffices
				}
			}
		}
		m.unlockShard(s)
	}

	// Phase 2: latch-free DFS over the snapshot graph, collecting each
	// cycle as an explicit edge list.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Owner]int)
	index := make(map[*Owner]int) // stack position of grey owners
	var stack []*Owner
	var cycles [][]waitEdge

	var dfs func(o *Owner)
	dfs = func(o *Owner) {
		color[o] = grey
		index[o] = len(stack)
		stack = append(stack, o)
		for to, via := range edges[o] {
			switch color[to] {
			case white:
				dfs(to)
			case grey:
				// Cycle: the stack segment from to..o plus the closing
				// edge o→to. Consecutive stack entries are connected by
				// the edges DFS descended through.
				seg := stack[index[to]:]
				cyc := make([]waitEdge, 0, len(seg))
				for k := 0; k+1 < len(seg); k++ {
					cyc = append(cyc, waitEdge{
						from: seg[k],
						to:   seg[k+1],
						via:  edges[seg[k]][seg[k+1]],
					})
				}
				cyc = append(cyc, waitEdge{from: o, to: to, via: via})
				cycles = append(cycles, cyc)
			}
		}
		stack = stack[:len(stack)-1]
		delete(index, o)
		color[o] = black
	}
	for o := range edges {
		if color[o] == white {
			dfs(o)
		}
	}

	// Phase 3: re-validate each candidate cycle under only its own shards'
	// latches; deny the youngest owner of each cycle that survives.
	n := 0
	for _, cyc := range cycles {
		n += m.validateAndBreak(cyc, waitingBy)
	}
	m.flushConts()
	return n
}

// validateAndBreak re-checks one candidate cycle under the latches of the
// shards hosting its witness requests and, if every edge still holds,
// denies all waiting requests of the cycle's youngest owner. It returns the
// number of requests denied (0 for a stale cycle).
func (m *Manager) validateAndBreak(cyc []waitEdge, waitingBy map[*Owner][]*request) int {
	// Collect the distinct home shards of the cycle's witnesses and latch
	// them in ascending order — the same protocol runGlobal uses, so
	// concurrent global sections and other validations cannot deadlock
	// against us.
	shardSet := make(map[int]struct{}, len(cyc))
	for _, e := range cyc {
		shardSet[m.shardOf(e.via.name)] = struct{}{}
	}
	shards := make([]int, 0, len(shardSet))
	for i := range shardSet {
		shards = append(shards, i)
	}
	sort.Ints(shards)
	for _, i := range shards {
		m.lockShard(i)
	}
	unlatch := func() {
		for k := len(shards) - 1; k >= 0; k-- {
			m.shards[shards[k]].mu.Unlock()
		}
	}

	// Every edge must hold simultaneously under the held latches;
	// otherwise some transaction in the candidate made progress and there
	// is no deadlock here now.
	var victim *Owner
	for _, e := range cyc {
		if !m.stillWaiting(e.via) || !m.blocksOn(e.via, e.to) {
			unlatch()
			return 0
		}
		if victim == nil || e.from.id > victim.id {
			victim = e.from
		}
	}

	// The cycle is proven. Deny the victim's waiting requests: those homed
	// in already-latched shards now, the rest after unlatching (each under
	// its own shard latch). The victim's in-cycle witness is necessarily in
	// a latched shard, so the cycle is broken before the latches drop.
	n := 0
	var rest []*request
	for _, req := range waitingBy[victim] {
		if _, held := shardSet[m.shardOf(req.name)]; !held {
			rest = append(rest, req)
			continue
		}
		n += m.denyVictimReq(victim, req)
	}
	unlatch()
	for _, req := range rest {
		s := m.lockShard(m.shardOf(req.name))
		n += m.denyVictimReq(victim, req)
		m.unlockShard(s)
	}
	return n
}

// denyVictimReq denies one waiting request of a deadlock victim, if it is
// still waiting, and updates the counters. Caller holds req's home shard
// latch.
func (m *Manager) denyVictimReq(v *Owner, req *request) int {
	// Denying an earlier request posts its queues, which may have granted
	// or completed requests captured in the snapshot; a nil pending (or a
	// terminal status) marks such stale entries.
	if req.pending == nil {
		return 0
	}
	if st, _ := req.pending.Status(); st != StatusWaiting {
		return 0
	}
	m.stats.deadlocks.Add(1)
	if m.cfg.Events != nil {
		m.cfg.Events.OnDeadlockVictim(v.app.id, v.id)
	}
	m.deny(req, ErrDeadlock)
	return 1
}
