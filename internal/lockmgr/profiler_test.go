package lockmgr

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/trace"
)

// TestHotLockBlameDeterministic drives contention single-threaded on the
// simulated clock and checks the sketch against exactly computed blame.
// With fewer distinct contended locks than slots per stripe the sketch's
// documented bound collapses to exactness (Err == 0): blame is the sum of
// clock-measured wait time plus hotEventBlameNs per enqueue.
func TestHotLockBlameDeterministic(t *testing.T) {
	clk := clock.NewSim()
	m := New(Config{InitialPages: 64, Clock: clk})

	rowA, rowB := RowName(1, 1), RowName(2, 2)
	expect := map[Name]struct{ blame, wait int64 }{}

	// rowA: one 5ms wait, one 7ms wait (sequential, so each is one
	// enqueue charging hotEventBlameNs plus its measured duration).
	for _, d := range []time.Duration{5 * time.Millisecond, 7 * time.Millisecond} {
		h := m.NewOwner(m.RegisterApp())
		w := m.NewOwner(m.RegisterApp())
		mustGrant(t, m.AcquireAsync(h, rowA, ModeX, 1), "holder X")
		p := m.AcquireAsync(w, rowA, ModeS, 1)
		mustWait(t, p, "waiter S")
		clk.Advance(d)
		m.ReleaseAll(h)
		mustGrant(t, p, "waiter granted on release")
		m.ReleaseAll(w)
		e := expect[rowA]
		e.blame += hotEventBlameNs + d.Nanoseconds()
		e.wait += d.Nanoseconds()
		expect[rowA] = e
	}

	// rowB: one 3ms wait.
	h := m.NewOwner(m.RegisterApp())
	w := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(h, rowB, ModeX, 1), "holder X")
	p := m.AcquireAsync(w, rowB, ModeS, 1)
	mustWait(t, p, "waiter S")
	clk.Advance(3 * time.Millisecond)
	m.ReleaseAll(h)
	mustGrant(t, p, "waiter granted on release")
	m.ReleaseAll(w)
	expect[rowB] = struct{ blame, wait int64 }{hotEventBlameNs + 3e6, 3e6}

	hot := m.HotLocks(10)
	if len(hot) != 2 {
		t.Fatalf("tracked %d locks, want 2: %+v", len(hot), hot)
	}
	// Highest blame first: rowA (12ms + 2µs) over rowB (3ms + 1µs).
	if hot[0].Name != rowA.String() {
		t.Fatalf("top lock %s, want %s", hot[0].Name, rowA.String())
	}
	for _, hl := range hot {
		var want struct{ blame, wait int64 }
		switch hl.Name {
		case rowA.String():
			want = expect[rowA]
		case rowB.String():
			want = expect[rowB]
		default:
			t.Fatalf("unexpected lock %q", hl.Name)
		}
		if hl.BlameNs != want.blame || hl.ErrNs != 0 {
			t.Errorf("%s: blame %d err %d, want exactly %d err 0", hl.Name, hl.BlameNs, hl.ErrNs, want.blame)
		}
		if hl.WaitNs != want.wait {
			t.Errorf("%s: wait %d, want %d", hl.Name, hl.WaitNs, want.wait)
		}
		if hl.QueueDepthMax != 1 {
			t.Errorf("%s: queue max %d, want 1 (one waiter at a time)", hl.Name, hl.QueueDepthMax)
		}
	}

	wantTotal := expect[rowA].blame + expect[rowB].blame
	if got := m.HotLockBlameNs(); got != wantTotal {
		t.Fatalf("total blame %d, want %d", got, wantTotal)
	}
	// Decay halves the ranking; the total follows deterministically.
	m.DecayHotLocks()
	if got := m.HotLockBlameNs(); got != expect[rowA].blame/2+expect[rowB].blame/2 {
		t.Fatalf("decayed total %d", got)
	}

	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants with populated sketch: %v", err)
	}
}

// TestDumpWaitersConvoy parks four waiters behind one X holder and checks
// the blocked-on report sees the convoy — holder, every blocked owner, the
// lock — without ever taking the all-shard latch.
func TestDumpWaitersConvoy(t *testing.T) {
	clk := clock.NewSim()
	m := New(Config{InitialPages: 64, Clock: clk})
	row := RowName(4, 8)
	holder := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	const nWaiters = 4
	waiters := make([]*Owner, nWaiters)
	pending := make([]*Pending, nWaiters)
	for i := range waiters {
		waiters[i] = m.NewOwner(m.RegisterApp())
		pending[i] = m.AcquireAsync(waiters[i], row, ModeS, 1)
		mustWait(t, pending[i], "convoy waiter")
	}
	clk.Advance(2 * time.Millisecond)

	g0 := m.GlobalRuns()
	rep := m.DumpWaiters()
	if got := m.GlobalRuns(); got != g0 {
		t.Fatalf("DumpWaiters took the all-shard latch: GlobalRuns %d → %d", g0, got)
	}

	if rep.Waiters != nWaiters {
		t.Fatalf("waiters = %d, want %d", rep.Waiters, nWaiters)
	}
	// Queue predecessors block too, so earlier waiters head their own
	// smaller convoys; the most crowded — the holder with every waiter
	// behind it — sorts first.
	if len(rep.Convoys) == 0 || rep.Convoys[0].HolderID != holder.id ||
		rep.Convoys[0].Waiters != nWaiters || rep.Convoys[0].Lock != row.String() {
		t.Fatalf("convoys = %+v", rep.Convoys)
	}
	// Every waiter appears blocked behind the holder with the advanced
	// clock's wait duration.
	behindHolder := 0
	for _, e := range rep.Edges {
		if e.HolderID == holder.id {
			behindHolder++
			if e.WaitNs != (2 * time.Millisecond).Nanoseconds() {
				t.Errorf("edge wait %d, want 2ms", e.WaitNs)
			}
			if e.Mode != "S" || e.Lock != row.String() {
				t.Errorf("edge %+v", e)
			}
		}
	}
	if behindHolder != nWaiters {
		t.Fatalf("%d edges behind holder, want %d", behindHolder, nWaiters)
	}
	if rep.LongestChainLen != nWaiters+1 {
		t.Fatalf("chain len %d, want %d (last waiter through the queue to the holder)",
			rep.LongestChainLen, nWaiters+1)
	}

	// The rendered report carries the same picture.
	report := m.ContentionReport(5)
	if !strings.Contains(report, "convoy: 4 waiters") || !strings.Contains(report, row.String()) {
		t.Fatalf("report missing convoy:\n%s", report)
	}

	m.ReleaseAll(holder)
	for i, p := range pending {
		mustGrant(t, p, "waiter after release")
		m.ReleaseAll(waiters[i])
	}
	if rep := m.DumpWaiters(); rep.Waiters != 0 {
		t.Fatalf("waiters after drain = %d", rep.Waiters)
	}
}

// TestFlightRecorder checks the per-shard flight rings capture the
// wait → grant → (sampled) release lifecycle with manager-clock
// timestamps, and that the shard/last query knobs work.
func TestFlightRecorder(t *testing.T) {
	clk := clock.NewSim()
	m := New(Config{InitialPages: 64, Clock: clk})
	row := RowName(3, 3)
	h := m.NewOwner(m.RegisterApp())
	w := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(h, row, ModeX, 1), "holder X")
	p := m.AcquireAsync(w, row, ModeS, 1)
	mustWait(t, p, "waiter")
	clk.Advance(time.Millisecond)
	m.ReleaseAll(h)
	mustGrant(t, p, "granted")

	evs := m.FlightEvents(-1, 0)
	var sawWait, sawGrant bool
	for _, e := range evs {
		switch e.Kind {
		case trace.KindWait:
			sawWait = true
			if !strings.Contains(e.Detail, row.String()) || !strings.Contains(e.Detail, "depth=1") {
				t.Errorf("wait detail %q", e.Detail)
			}
		case trace.KindGrant:
			sawGrant = true
			if !strings.Contains(e.Detail, "waited=1ms") {
				t.Errorf("grant detail %q", e.Detail)
			}
		}
	}
	if !sawWait || !sawGrant {
		t.Fatalf("lifecycle missing (wait=%v grant=%v): %v", sawWait, sawGrant, evs)
	}

	// last=1 returns only the newest event of the merged view.
	if got := m.FlightEvents(-1, 1); len(got) != 1 {
		t.Fatalf("last=1 returned %d events", len(got))
	}
	// Selecting the row's home shard keeps the events; every other shard's
	// ring is empty of this lock's lifecycle.
	home := int(uint64(m.shardOf(row)))
	homeEvs := m.FlightEvents(home, 0)
	if len(homeEvs) == 0 {
		t.Fatalf("home shard %d has no events", home)
	}
	total := 0
	for i := 0; i < int(m.shardMask)+1; i++ {
		total += len(m.FlightEvents(i, 0))
	}
	if total != len(evs) {
		t.Fatalf("per-shard sum %d != merged %d", total, len(evs))
	}
}

// TestProfilerDisabled checks ProfileDisabled turns every surface into a
// cheap no-op while the blocked-on export (pure lock-table state) stays up.
func TestProfilerDisabled(t *testing.T) {
	clk := clock.NewSim()
	m := New(Config{InitialPages: 64, Clock: clk, ProfileDisabled: true})
	h := m.NewOwner(m.RegisterApp())
	w := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(h, row, ModeX, 1), "X")
	p := m.AcquireAsync(w, row, ModeS, 1)
	mustWait(t, p, "S")
	clk.Advance(time.Millisecond)

	if got := m.HotLocks(5); got != nil {
		t.Fatalf("HotLocks = %v", got)
	}
	if m.HotLockBlameNs() != 0 || m.FlightEvents(-1, 0) != nil || m.LatchProfile() != nil {
		t.Fatal("disabled profiler leaked state")
	}
	m.DecayHotLocks() // must not panic

	if rep := m.DumpWaiters(); rep.Waiters != 1 {
		t.Fatalf("DumpWaiters with profiler off: %+v", rep)
	}
	if !strings.Contains(m.ContentionReport(3), "no contention recorded") {
		t.Fatal("report should say the sketch is empty")
	}
	m.ReleaseAll(h)
}

// TestProfilerConcurrentReads races every profiler read surface —
// HotLocks, DumpWaiters, FlightEvents, ContentionReport, Decay — against
// live contended traffic. Run under -race (the race gate covers this
// package); correctness here is "no race, no panic, invariants hold".
func TestProfilerConcurrentReads(t *testing.T) {
	m := New(Config{InitialPages: 128, LockTimeout: 5 * time.Second, ObsSampleStride: 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o := m.NewOwner(m.RegisterApp())
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Hot rows shared across goroutines: real waits, enqueues
				// and flight events.
				p := m.AcquireAsync(o, RowName(1, uint64(i%4)), ModeX, 1)
				<-p.Done()
				m.ReleaseAll(o)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.HotLocks(5)
			_ = m.DumpWaiters()
			_ = m.FlightEvents(-1, 16)
			_ = m.HotLockBlameNs()
			if i%10 == 0 {
				m.DecayHotLocks()
				_ = m.ContentionReport(3)
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLatchProfileSampling drives enough acquisitions through the latched
// path to cross the 1-in-64 hold sampling stride and checks samples land
// in the merged histogram.
func TestLatchProfileSampling(t *testing.T) {
	m := New(Config{InitialPages: 64, Shards: 1, ObsSampleStride: 64})
	lp := m.LatchProfile()
	if lp == nil {
		t.Fatal("latch profile nil with sampling on")
	}
	o := m.NewOwner(m.RegisterApp())
	for i := 0; i < 1000; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(1, uint64(i)), ModeX, 1), "X")
	}
	m.ReleaseAll(o)
	if got := lp.MergedHold().Total; got == 0 {
		t.Fatal("no latch holds sampled after 1000 latched acquisitions")
	}
}
