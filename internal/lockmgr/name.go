package lockmgr

import "fmt"

// Granularity distinguishes the lockable object classes.
type Granularity uint8

const (
	// GranTable locks a whole table (also used for intent locks).
	GranTable Granularity = iota + 1
	// GranRow locks a single row (or, with weight > 1, a contiguous
	// chunk of rows accounted as multiple lock structures).
	GranRow
)

func (g Granularity) String() string {
	switch g {
	case GranTable:
		return "table"
	case GranRow:
		return "row"
	default:
		return fmt.Sprintf("Granularity(%d)", uint8(g))
	}
}

// Name identifies a lockable object. Names are comparable and used as map
// keys in the lock table.
type Name struct {
	Gran  Granularity
	Table uint32
	Row   uint64 // meaningful only for GranRow
}

// TableName returns the lock name for a whole table.
func TableName(table uint32) Name {
	return Name{Gran: GranTable, Table: table}
}

// RowName returns the lock name for a row of a table.
func RowName(table uint32, row uint64) Name {
	return Name{Gran: GranRow, Table: table, Row: row}
}

func (n Name) String() string {
	if n.Gran == GranTable {
		return fmt.Sprintf("table(%d)", n.Table)
	}
	return fmt.Sprintf("row(%d.%d)", n.Table, n.Row)
}

// MarshalJSON renders the name in its diagnostic form ("table(2)",
// "row(2.7)") so /debug/locks dumps read like `db2pd -locks` output
// instead of bare struct fields. Names are never unmarshalled back.
func (n Name) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", n.String())), nil
}
