package lockmgr

import "fmt"

// Mode is a lock mode in DB2's multigranularity scheme. Table locks use the
// full set; row locks use S, U and X.
type Mode uint8

const (
	// ModeNone is the absence of a lock; it is never granted.
	ModeNone Mode = iota
	// ModeIS — intention share: the holder reads rows of the table.
	ModeIS
	// ModeIX — intention exclusive: the holder updates rows of the table.
	ModeIX
	// ModeS — share: the holder reads the whole object.
	ModeS
	// ModeSIX — share with intention exclusive: whole-object read plus
	// row-level updates.
	ModeSIX
	// ModeU — update: read with intent to modify; compatible with S but
	// not with another U, which prevents the classic convert deadlock.
	ModeU
	// ModeX — exclusive.
	ModeX
	numModes
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "NONE"
	case ModeIS:
		return "IS"
	case ModeIX:
		return "IX"
	case ModeS:
		return "S"
	case ModeSIX:
		return "SIX"
	case ModeU:
		return "U"
	case ModeX:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// MarshalJSON renders the mode symbolically ("IX", "X") for the debug
// endpoints; modes are never unmarshalled back.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", m.String())), nil
}

// Valid reports whether m is a grantable mode.
func (m Mode) Valid() bool { return m > ModeNone && m < numModes }

// compat is the standard DB2-style compatibility matrix.
var compat = [numModes][numModes]bool{
	//            NONE   IS     IX     S      SIX    U      X
	ModeNone: {true, true, true, true, true, true, true},
	ModeIS:   {true, true, true, true, true, true, false},
	ModeIX:   {true, true, true, false, false, false, false},
	ModeS:    {true, true, false, true, false, true, false},
	ModeSIX:  {true, true, false, false, false, false, false},
	ModeU:    {true, true, false, true, false, false, false},
	ModeX:    {true, false, false, false, false, false, false},
}

// Compatible reports whether locks of modes a and b may be held
// simultaneously by different owners.
func Compatible(a, b Mode) bool { return compat[a][b] }

// sup is the least-upper-bound (conversion) matrix: the weakest single mode
// at least as strong as both inputs, where "at least as strong" means its
// compatibility set is a subset. This makes grant checks against the group
// mode exact: Compatible(a, sup(b,c)) == Compatible(a,b) && Compatible(a,c),
// verified exhaustively by TestGroupModeSoundness.
var sup = [numModes][numModes]Mode{
	ModeNone: {ModeNone, ModeIS, ModeIX, ModeS, ModeSIX, ModeU, ModeX},
	ModeIS:   {ModeIS, ModeIS, ModeIX, ModeS, ModeSIX, ModeU, ModeX},
	ModeIX:   {ModeIX, ModeIX, ModeIX, ModeSIX, ModeSIX, ModeSIX, ModeX},
	ModeS:    {ModeS, ModeS, ModeSIX, ModeS, ModeSIX, ModeU, ModeX},
	ModeSIX:  {ModeSIX, ModeSIX, ModeSIX, ModeSIX, ModeSIX, ModeSIX, ModeX},
	ModeU:    {ModeU, ModeU, ModeSIX, ModeU, ModeSIX, ModeU, ModeX},
	ModeX:    {ModeX, ModeX, ModeX, ModeX, ModeX, ModeX, ModeX},
}

// Supremum returns the weakest mode at least as strong as both a and b —
// the target of a lock conversion.
func Supremum(a, b Mode) Mode { return sup[a][b] }

// intentFor maps a row-lock mode to the table intent lock that must be held
// while row locks of that mode are acquired.
func intentFor(rowMode Mode) Mode {
	switch rowMode {
	case ModeS:
		return ModeIS
	case ModeU, ModeX:
		return ModeIX
	default:
		return ModeIS
	}
}

// IntentFor exposes the row-mode → table-intent mapping (IS for S; IX for U
// and X) used by the transaction layer.
func IntentFor(rowMode Mode) Mode { return intentFor(rowMode) }

// covers reports whether a held table lock of mode t makes a row lock of
// mode r redundant: X covers everything; S, SIX and U cover reads.
func covers(t, r Mode) bool {
	switch t {
	case ModeX:
		return true
	case ModeS, ModeSIX, ModeU:
		return r == ModeS
	default:
		return false
	}
}
