package lockmgr

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/memblock"
)

// newMgr builds a manager with one block of lock memory and no timeout.
func newMgr(cfg Config) *Manager {
	if cfg.InitialPages == 0 {
		cfg.InitialPages = 32 * 8 // eight blocks
	}
	return New(cfg)
}

// mustGrant asserts that a pending completed as granted.
func mustGrant(t *testing.T, p *Pending, what string) {
	t.Helper()
	st, err := p.Status()
	if st != StatusGranted {
		t.Fatalf("%s: status=%v err=%v, want granted", what, st, err)
	}
}

// mustWait asserts that a pending is still waiting.
func mustWait(t *testing.T, p *Pending, what string) {
	t.Helper()
	if st, err := p.Status(); st != StatusWaiting {
		t.Fatalf("%s: status=%v err=%v, want waiting", what, st, err)
	}
}

func TestAcquireReleaseBasics(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	o := m.NewOwner(app)

	p := m.AcquireAsync(o, RowName(1, 1), ModeS, 1)
	mustGrant(t, p, "first S")
	if got := m.UsedStructs(); got != 1 {
		t.Fatalf("used structs = %d, want 1", got)
	}
	if got := m.AppStructs(app); got != 1 {
		t.Fatalf("app structs = %d, want 1", got)
	}

	if err := m.Release(o, RowName(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("used structs after release = %d, want 0", got)
	}
	if err := m.Release(o, RowName(1, 1)); err == nil {
		t.Fatal("double release must error")
	}
}

func TestInvalidRequests(t *testing.T) {
	m := newMgr(Config{})
	o := m.NewOwner(m.RegisterApp())
	if st, _ := m.AcquireAsync(o, RowName(1, 1), ModeNone, 1).Status(); st != StatusDenied {
		t.Fatal("NONE mode must be denied")
	}
	if st, _ := m.AcquireAsync(o, RowName(1, 1), ModeS, 0).Status(); st != StatusDenied {
		t.Fatal("weight 0 must be denied")
	}
	if st, _ := m.AcquireAsync(o, TableName(1), ModeS, 4).Status(); st != StatusDenied {
		t.Fatal("weighted table lock must be denied")
	}
}

func TestSharedGrant(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o1, RowName(1, 5), ModeS, 1), "o1 S")
	mustGrant(t, m.AcquireAsync(o2, RowName(1, 5), ModeS, 1), "o2 S")
	if got := m.UsedStructs(); got != 2 {
		t.Fatalf("used = %d, want 2 (one struct per holder)", got)
	}
}

// TestLockQueuingFigure3 reproduces the scenario of Figure 3: apps 1 and 2
// share a row in S; app 3 requests X and waits; app 4 requests S and must
// queue behind app 3 rather than jump in with the current S holders.
func TestLockQueuingFigure3(t *testing.T) {
	m := newMgr(Config{})
	owners := make([]*Owner, 5)
	for i := 1; i <= 4; i++ {
		owners[i] = m.NewOwner(m.RegisterApp())
	}
	row := RowName(9, 42)

	p1 := m.AcquireAsync(owners[1], row, ModeS, 1)
	p2 := m.AcquireAsync(owners[2], row, ModeS, 1)
	mustGrant(t, p1, "app1 S")
	mustGrant(t, p2, "app2 S")

	p3 := m.AcquireAsync(owners[3], row, ModeX, 1)
	mustWait(t, p3, "app3 X")

	p4 := m.AcquireAsync(owners[4], row, ModeS, 1)
	mustWait(t, p4, "app4 S queues behind app3 (no queue jumping)")

	// App1 releases: app3 still blocked by app2.
	if err := m.Release(owners[1], row); err != nil {
		t.Fatal(err)
	}
	mustWait(t, p3, "app3 X after one release")
	mustWait(t, p4, "app4 S")

	// App2 releases: app3 gets X; app4 still behind app3.
	if err := m.Release(owners[2], row); err != nil {
		t.Fatal(err)
	}
	mustGrant(t, p3, "app3 X after both releases")
	mustWait(t, p4, "app4 S blocked by app3's X")

	// App3 releases: app4 finally granted — strict request order.
	if err := m.Release(owners[3], row); err != nil {
		t.Fatal(err)
	}
	mustGrant(t, p4, "app4 S at the end of the chain")
}

func TestFIFOOrderPreserved(t *testing.T) {
	m := newMgr(Config{})
	row := RowName(1, 1)
	holder := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(holder, row, ModeX, 1), "holder X")

	// Queue S, X, S, S: on release, the first S is granted alone? No —
	// strict FIFO grants S then stops at X. After the X holder releases,
	// S1 is granted; then X2 blocks S3, S4 even though they are
	// compatible with S1.
	o := make([]*Owner, 5)
	p := make([]*Pending, 5)
	modes := []Mode{0, ModeS, ModeX, ModeS, ModeS}
	for i := 1; i <= 4; i++ {
		o[i] = m.NewOwner(m.RegisterApp())
		p[i] = m.AcquireAsync(o[i], row, modes[i], 1)
		mustWait(t, p[i], "queued")
	}
	if err := m.Release(holder, row); err != nil {
		t.Fatal(err)
	}
	mustGrant(t, p[1], "S1")
	mustWait(t, p[2], "X2 blocked by S1")
	mustWait(t, p[3], "S3 must not jump X2")
	mustWait(t, p[4], "S4 must not jump X2")
}

func TestReacquireWeakerIsNoop(t *testing.T) {
	m := newMgr(Config{})
	o := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o, row, ModeX, 1), "X")
	used := m.UsedStructs()
	mustGrant(t, m.AcquireAsync(o, row, ModeS, 1), "S re-acquire under X")
	if m.UsedStructs() != used {
		t.Fatal("weaker re-acquire must not consume structures")
	}
}

func TestConversionImmediate(t *testing.T) {
	m := newMgr(Config{})
	o := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o, row, ModeS, 1), "S")
	used := m.UsedStructs()
	mustGrant(t, m.AcquireAsync(o, row, ModeX, 1), "S→X with no other holders")
	if m.UsedStructs() != used {
		t.Fatal("conversion must not consume structures")
	}
}

func TestConversionWaitsForOtherHolder(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o1, row, ModeS, 1), "o1 S")
	mustGrant(t, m.AcquireAsync(o2, row, ModeS, 1), "o2 S")

	pc := m.AcquireAsync(o1, row, ModeX, 1) // convert S→X
	mustWait(t, pc, "conversion blocked by o2's S")

	if err := m.Release(o2, row); err != nil {
		t.Fatal(err)
	}
	mustGrant(t, pc, "conversion after o2 release")
}

func TestConverterPriorityOverWaiters(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	o3 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o1, row, ModeS, 1), "o1 S")
	mustGrant(t, m.AcquireAsync(o2, row, ModeS, 1), "o2 S")

	p3 := m.AcquireAsync(o3, row, ModeS, 1) // compatible, grants right away
	mustGrant(t, p3, "o3 S")

	pc := m.AcquireAsync(o1, row, ModeX, 1) // conversion waits on o2, o3
	mustWait(t, pc, "conversion")

	// A new S request must now wait: converters block later arrivals.
	o4 := m.NewOwner(m.RegisterApp())
	p4 := m.AcquireAsync(o4, row, ModeS, 1)
	mustWait(t, p4, "S behind pending conversion")

	if err := m.Release(o2, row); err != nil {
		t.Fatal(err)
	}
	mustWait(t, pc, "conversion still blocked by o3")
	if err := m.Release(o3, row); err != nil {
		t.Fatal(err)
	}
	mustGrant(t, pc, "conversion first")
	mustWait(t, p4, "S blocked by converted X")
}

func TestTableCoverageSkipsRowLocks(t *testing.T) {
	m := newMgr(Config{})
	o := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o, TableName(3), ModeX, 1), "table X")
	used := m.UsedStructs()
	mustGrant(t, m.AcquireAsync(o, RowName(3, 1), ModeX, 1), "covered row X")
	mustGrant(t, m.AcquireAsync(o, RowName(3, 2), ModeS, 1), "covered row S")
	if m.UsedStructs() != used {
		t.Fatal("covered rows must not consume structures")
	}
	// Coverage is per-owner: another owner following the intent protocol
	// blocks at the table intent lock.
	o2 := m.NewOwner(m.RegisterApp())
	p := m.AcquireAsync(o2, TableName(3), ModeIS, 1)
	mustWait(t, p, "other owner's IS intent vs table X")
}

func TestIntentThenRowPattern(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	// Two writers on different rows of one table coexist via IX.
	mustGrant(t, m.AcquireAsync(o1, TableName(1), ModeIX, 1), "o1 IX")
	mustGrant(t, m.AcquireAsync(o2, TableName(1), ModeIX, 1), "o2 IX")
	mustGrant(t, m.AcquireAsync(o1, RowName(1, 1), ModeX, 1), "o1 row 1 X")
	mustGrant(t, m.AcquireAsync(o2, RowName(1, 2), ModeX, 1), "o2 row 2 X")
	// Same row conflicts.
	p := m.AcquireAsync(o2, RowName(1, 1), ModeX, 1)
	mustWait(t, p, "o2 row 1 X vs o1's X")
}

func TestWeightedLockAccounting(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	o := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o, RowName(1, 0), ModeS, 64), "chunk lock")
	if got := m.UsedStructs(); got != 64 {
		t.Fatalf("used = %d, want 64", got)
	}
	if got := m.AppStructs(app); got != 64 {
		t.Fatalf("app structs = %d, want 64", got)
	}
	m.ReleaseAll(o)
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("used after ReleaseAll = %d, want 0", got)
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o1, row, ModeX, 1), "o1 X")
	p := m.AcquireAsync(o2, row, ModeS, 1)
	mustWait(t, p, "o2 S")
	m.ReleaseAll(o1)
	mustGrant(t, p, "o2 S after o1 commit")
}

func TestReleaseAllCancelsOwnWaits(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o1, row, ModeX, 1), "o1 X")
	p := m.AcquireAsync(o2, row, ModeS, 1)
	mustWait(t, p, "o2 S")
	m.ReleaseAll(o2) // abort while waiting
	if st, err := p.Status(); st != StatusDenied || !errors.Is(err, ErrCanceled) {
		t.Fatalf("status=%v err=%v, want denied/canceled", st, err)
	}
	if got := m.UsedStructs(); got != 1 {
		t.Fatalf("used = %d, want 1 (only o1's lock)", got)
	}
}

func TestUnregisterAppGuard(t *testing.T) {
	m := newMgr(Config{})
	app := m.RegisterApp()
	o := m.NewOwner(app)
	mustGrant(t, m.AcquireAsync(o, RowName(1, 1), ModeS, 1), "S")
	if err := m.UnregisterApp(app); err == nil {
		t.Fatal("unregister with held locks must fail")
	}
	m.ReleaseAll(o)
	if err := m.UnregisterApp(app); err != nil {
		t.Fatal(err)
	}
	if got := m.NumApps(); got != 0 {
		t.Fatalf("apps = %d, want 0", got)
	}
}

func TestBlockingAcquire(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	if err := m.Acquire(context.Background(), o1, row, ModeX, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.Acquire(context.Background(), o2, row, ModeS, 1)
	}()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(o1)
	if err := <-done; err != nil {
		t.Fatalf("blocking acquire: %v", err)
	}
}

func TestBlockingAcquireContextCancel(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	if err := m.Acquire(context.Background(), o1, row, ModeX, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := m.Acquire(ctx, o2, row, ModeS, 1)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The canceled waiter must be fully withdrawn.
	m.ReleaseAll(o1)
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("used = %d, want 0", got)
	}
}

func TestTimeoutSweep(t *testing.T) {
	clk := clock.NewSim()
	m := New(Config{InitialPages: 64, Clock: clk, LockTimeout: 30 * time.Second})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	row := RowName(1, 1)
	mustGrant(t, m.AcquireAsync(o1, row, ModeX, 1), "o1 X")
	p := m.AcquireAsync(o2, row, ModeS, 1)
	mustWait(t, p, "o2 S")

	clk.Advance(29 * time.Second)
	if n := m.SweepTimeouts(); n != 0 {
		t.Fatalf("swept %d before deadline", n)
	}
	clk.Advance(2 * time.Second)
	if n := m.SweepTimeouts(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if st, err := p.Status(); st != StatusDenied || !errors.Is(err, ErrTimeout) {
		t.Fatalf("status=%v err=%v, want timeout denial", st, err)
	}
	if got := m.Stats().Timeouts; got != 1 {
		t.Fatalf("timeout stat = %d", got)
	}
}

func TestNoTimeoutWhenDisabled(t *testing.T) {
	clk := clock.NewSim()
	m := New(Config{InitialPages: 64, Clock: clk}) // LockTimeout zero
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o1, RowName(1, 1), ModeX, 1), "X")
	p := m.AcquireAsync(o2, RowName(1, 1), ModeS, 1)
	clk.Advance(time.Hour)
	if n := m.SweepTimeouts(); n != 0 {
		t.Fatalf("swept %d with timeouts disabled", n)
	}
	mustWait(t, p, "still waiting")
}

func TestResize(t *testing.T) {
	m := newMgr(Config{InitialPages: 64})
	if got := m.Resize(256); got != 256 {
		t.Fatalf("grow resize = %d, want 256", got)
	}
	if got := m.Resize(128); got != 128 {
		t.Fatalf("shrink resize = %d, want 128", got)
	}
	// Shrink below live data is best-effort.
	o := m.NewOwner(m.RegisterApp())
	for i := 0; i < memblock.StructsPerBlock+1; i++ {
		mustGrant(t, m.AcquireAsync(o, RowName(1, uint64(i)), ModeS, 1), "fill")
	}
	got := m.Resize(32)
	if got < 64 {
		t.Fatalf("resize freed live blocks: %d pages", got)
	}
}

func TestStatsCounters(t *testing.T) {
	m := newMgr(Config{})
	o1 := m.NewOwner(m.RegisterApp())
	o2 := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o1, RowName(1, 1), ModeX, 1), "X")
	m.AcquireAsync(o2, RowName(1, 1), ModeS, 1)
	s := m.Stats()
	if s.Grants != 1 || s.Waits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentChurn(t *testing.T) {
	m := New(Config{InitialPages: 32 * 64})
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			app := m.RegisterApp()
			for i := 0; i < 200; i++ {
				o := m.NewOwner(app)
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				table := uint32(rng.Intn(3))
				rowMode := ModeS
				if rng.Intn(2) == 0 {
					rowMode = ModeX
				}
				if err := m.Acquire(ctx, o, TableName(table), intentFor(rowMode), 1); err == nil {
					for j := 0; j < rng.Intn(5); j++ {
						_ = m.Acquire(ctx, o, RowName(table, uint64(rng.Intn(40))), rowMode, 1)
					}
				}
				cancel()
				m.ReleaseAll(o)
			}
			wg2 := m.UsedStructs() // touch accessor concurrently
			_ = wg2
		}(int64(g))
	}
	wg.Wait()
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("used after churn = %d, want 0", got)
	}
}

func TestAcquireAfterReleaseAllRejected(t *testing.T) {
	m := newMgr(Config{})
	o := m.NewOwner(m.RegisterApp())
	mustGrant(t, m.AcquireAsync(o, RowName(1, 1), ModeS, 1), "S")
	m.ReleaseAll(o)
	p := m.AcquireAsync(o, RowName(1, 2), ModeX, 1)
	if st, err := p.Status(); st != StatusDenied || err == nil {
		t.Fatalf("ghost owner acquired: %v %v", st, err)
	}
	if got := m.UsedStructs(); got != 0 {
		t.Fatalf("leak: %d structs", got)
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	m := newMgr(Config{InitialPages: 64})
	app := m.RegisterApp()
	o := m.NewOwner(app)
	if o.App() != app || o.ID() == 0 || app.ID() == 0 {
		t.Fatal("identity accessors wrong")
	}
	if StatusWaiting.String() != "waiting" || StatusGranted.String() != "granted" ||
		StatusDenied.String() != "denied" || Status(9).String() != "Status(9)" {
		t.Fatal("status strings wrong")
	}
	mustGrant(t, m.AcquireAsync(o, RowName(1, 1), ModeS, 1), "S")
	if m.CapacityStructs() != 64*memblock.StructsPerPage {
		t.Fatalf("capacity = %d", m.CapacityStructs())
	}
	if m.UsedPages() != 1 || m.StructRequests() == 0 {
		t.Fatalf("usedPages=%d requests=%d", m.UsedPages(), m.StructRequests())
	}
	if got := m.GrowPages(32); got != 32 {
		t.Fatalf("GrowPages = %d", got)
	}
	if m.Pages() != 96 {
		t.Fatalf("pages = %d", m.Pages())
	}
}
