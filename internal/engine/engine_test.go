package engine

import (
	"context"
	"testing"

	"repro/internal/lockmgr"
	"repro/internal/memblock"
)

func openAdaptive(t *testing.T) *Database {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenDefaults(t *testing.T) {
	db := openAdaptive(t)
	if db.Policy() != PolicyAdaptive {
		t.Fatalf("policy = %v", db.Policy())
	}
	if db.Locks().Pages() != 512 { // 2 MB minimum, block aligned
		t.Fatalf("initial lock pages = %d, want 512", db.Locks().Pages())
	}
	if db.Set().TotalPages() != 131072 {
		t.Fatalf("db pages = %d", db.Set().TotalPages())
	}
	if db.Catalog().Len() == 0 {
		t.Fatal("no catalog")
	}
	if err := db.Set().CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Heap and chain agree.
	if db.lockHeap.Pages() != db.Locks().Pages() {
		t.Fatalf("heap %d != chain %d", db.lockHeap.Pages(), db.Locks().Pages())
	}
}

func TestOpenRejectsBadParams(t *testing.T) {
	cfg := Config{}
	cfg.Params.MinFreeFrac = 0.9 // incomplete params: invalid
	if _, err := Open(cfg); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestConnectAndClose(t *testing.T) {
	db := openAdaptive(t)
	c := db.Connect()
	if got := db.Locks().NumApps(); got != 1 {
		t.Fatalf("apps = %d", got)
	}
	tx := c.Begin()
	if err := tx.LockRow(context.Background(), 1, 1, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err == nil {
		t.Fatal("close with held locks must fail")
	}
	tx.Commit()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Locks().NumApps(); got != 0 {
		t.Fatalf("apps after close = %d", got)
	}
}

func TestEndToEndTransactionAndTuning(t *testing.T) {
	db := openAdaptive(t)
	conn := db.Connect()
	lineitem := db.Catalog().ByName("lineitem")

	tx := conn.Begin()
	for i := uint64(0); i < 50_000; i++ {
		if err := tx.LockRow(context.Background(), lineitem.ID, i, lockmgr.ModeS); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		db.TouchRow(lineitem, i)
	}
	snap := db.Snapshot()
	if snap.LockStats.Escalations != 0 {
		t.Fatalf("escalations = %d (sync growth should cover)", snap.LockStats.Escalations)
	}
	if snap.LockPages <= 512 {
		t.Fatal("lock memory did not grow synchronously")
	}
	rep, ok := db.TuneOnce()
	if !ok {
		t.Fatal("adaptive policy must tune")
	}
	if rep.LockPagesAfter < rep.Decision.MinPages {
		t.Fatalf("tuned below min: %+v", rep)
	}
	if err := db.Set().CheckConservation(); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if got := db.Locks().UsedStructs(); got != 0 {
		t.Fatalf("structs after commit = %d", got)
	}
}

func TestStaticPolicyEscalates(t *testing.T) {
	db, err := Open(Config{
		Policy:           PolicyStatic,
		InitialLockPages: 96, // ≈ 0.4 MB, the Figure 7 configuration
		StaticQuotaPct:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TuneOnce(); ok {
		t.Fatal("static policy must not tune")
	}
	conn := db.Connect()
	tx := conn.Begin()
	// 10% of 96 pages = 614 structs: escalation at the quota.
	for i := uint64(0); i < 1000; i++ {
		if err := tx.LockRow(context.Background(), 3, i, lockmgr.ModeX); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if got := db.Snapshot().LockStats.Escalations; got == 0 {
		t.Fatal("static policy did not escalate")
	}
	if got := db.Locks().Pages(); got != 96 {
		t.Fatalf("static LOCKLIST moved: %d", got)
	}
	tx.Commit()
}

func TestSQLServerPolicyGrowsAndTriggersAt5000(t *testing.T) {
	db, err := Open(Config{Policy: PolicySQLServer, InitialLockPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	conn := db.Connect()
	tx := conn.Begin()
	for i := uint64(0); i < 6000; i++ {
		if err := tx.LockRow(context.Background(), 3, i, lockmgr.ModeS); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	snap := db.Snapshot()
	if snap.LockStats.Escalations == 0 {
		t.Fatal("no escalation at 5000 locks")
	}
	if snap.LockPages <= 64 {
		t.Fatal("SQL Server model did not grow")
	}
	if err := db.Set().CheckConservation(); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestPreferEscalationConnection(t *testing.T) {
	db := openAdaptive(t)
	normal := db.Connect()
	biased := db.Connect(WithPreferEscalation())

	// The biased connection escalates at ~2% of lock memory (512 pages →
	// 32768 structs → ~655 structs) instead of growing.
	tx := biased.Begin()
	for i := uint64(0); i < 2000; i++ {
		if err := tx.LockRow(context.Background(), 5, i, lockmgr.ModeS); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if got := db.Snapshot().LockStats.Escalations; got == 0 {
		t.Fatal("escalation-preferred connection did not escalate")
	}
	tx.Commit()

	// A normal connection with the same footprint grows instead.
	before := db.Snapshot().LockStats.Escalations
	tx2 := normal.Begin()
	for i := uint64(0); i < 2000; i++ {
		if err := tx2.LockRow(context.Background(), 6, i, lockmgr.ModeS); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if got := db.Snapshot().LockStats.Escalations; got != before {
		t.Fatal("normal connection escalated")
	}
	tx2.Commit()
}

func TestSnapshotFields(t *testing.T) {
	db := openAdaptive(t)
	conn := db.Connect()
	tx := conn.Begin()
	if err := tx.LockRow(context.Background(), 1, 1, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	s := db.Snapshot()
	if s.UsedStructs != 2 || s.NumApps != 1 || s.ActiveTxns != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.QuotaPercent <= 0 || s.QuotaPercent > 98 {
		t.Fatalf("quota = %g", s.QuotaPercent)
	}
	if s.BufferPoolPages == 0 || s.Overflow == 0 {
		t.Fatalf("memory fields empty: %+v", s)
	}
	tx.Commit()
	s2 := db.Snapshot()
	if s2.Commits != 1 || s2.ActiveTxns != 0 {
		t.Fatalf("post-commit snapshot = %+v", s2)
	}
}

func TestTickRunsSweeps(t *testing.T) {
	db := openAdaptive(t)
	db.Tick() // must not panic with nothing waiting
}

func TestPolicyString(t *testing.T) {
	if PolicyAdaptive.String() != "adaptive" || PolicyStatic.String() != "static" ||
		PolicySQLServer.String() != "sqlserver" || Policy(9).String() != "Policy(9)" {
		t.Fatal("policy strings wrong")
	}
}

func TestOpenUnknownPolicy(t *testing.T) {
	if _, err := Open(Config{Policy: Policy(42)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// --- Compiler stub ---

func TestCompilerStableView(t *testing.T) {
	db := openAdaptive(t)
	want := 13107 // 10% of 131072
	if got := db.Compiler().ViewPages(); got != want {
		t.Fatalf("view = %d, want %d", got, want)
	}
	// Small statements choose row locking; outrageous ones do not.
	if !db.Compiler().ChooseRowLocking("oltp", 100) {
		t.Fatal("small statement must row-lock")
	}
	if db.Compiler().ChooseRowLocking("scan-all", want*structsPerPage+1) {
		t.Fatal("oversized statement must table-lock")
	}
}

func TestCompilerLearning(t *testing.T) {
	c := NewCompiler(100, true) // view = 6400 structs
	// Optimizer estimate says tiny, reality says huge: after observing,
	// the learned footprint flips the choice.
	if !c.ChooseRowLocking("report", 10) {
		t.Fatal("initial choice should trust the estimate")
	}
	c.Observe("report", 1_000_000)
	if c.ChooseRowLocking("report", 10) {
		t.Fatal("learned footprint must override the estimate")
	}
	if v, ok := c.Learned("report"); !ok || v != 1_000_000 {
		t.Fatalf("learned = %g %v", v, ok)
	}
	// EWMA moves toward newer observations.
	c.Observe("report", 0)
	if v, _ := c.Learned("report"); v >= 1_000_000 {
		t.Fatalf("EWMA did not move: %g", v)
	}
}

func TestCompilerLearningDisabled(t *testing.T) {
	c := NewCompiler(100, false)
	c.Observe("x", 1_000_000)
	if _, ok := c.Learned("x"); ok {
		t.Fatal("learning disabled but observation stored")
	}
}

func TestConfigBlockAlignsInitialLockPages(t *testing.T) {
	db, err := Open(Config{InitialLockPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Locks().Pages(); got != 128 {
		t.Fatalf("lock pages = %d, want 128 (block rounded)", got)
	}
	if db.lockHeap.Pages() != 128 {
		t.Fatalf("heap = %d", db.lockHeap.Pages())
	}
}

func TestQuotaProviderWiring(t *testing.T) {
	db := openAdaptive(t)
	// The adaptive quota is near 98 when memory is ample.
	q := db.quota.QuotaPercent(1, 0, 0)
	if q < 90 || q > 98 {
		t.Fatalf("quota = %g", q)
	}
	_ = memblock.BlockPages
}
