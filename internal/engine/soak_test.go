package engine_test

// The kitchen-sink integration soak: a day-in-the-life mix driven directly
// against the engine — OLTP churn at three isolation levels, TPC-C
// terminals, a reporting scan, a batch rollout, and a load shed — with the
// full cross-component consistency check (Database.SelfCheck) at every
// tuning interval. It lives in an external test package so it can use the
// workload clients without an import cycle.

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/lockmgr"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/workload"
)

func TestMixedWorkloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	clk := clock.NewSim()
	db, err := engine.Open(engine.Config{Clock: clk, LockTimeout: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog()

	var clients []sim.Client

	// 30 plain OLTP clients (repeatable read).
	rr := workload.DefaultOLTPProfile(cat)
	for i := 0; i < 30; i++ {
		clients = append(clients, workload.NewOLTP(db, rr, int64(100+i)))
	}
	// 20 cursor-stability readers and 10 dirty readers.
	cs := workload.DefaultOLTPProfile(cat)
	cs.WriteFrac = 0
	cs.Isolation = txn.CursorStability
	for i := 0; i < 20; i++ {
		clients = append(clients, workload.NewOLTP(db, cs, int64(200+i)))
	}
	ur := cs
	ur.Isolation = txn.UncommittedRead
	for i := 0; i < 10; i++ {
		clients = append(clients, workload.NewOLTP(db, ur, int64(300+i)))
	}
	// 20 TPC-C terminals.
	for i := 0; i < 20; i++ {
		tc, err := workload.NewTPCC(db, workload.DefaultTPCCProfile(), int64(400+i))
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, tc)
	}

	// A reporting scan at t=600 and a batch rollout at t=1100.
	report := workload.NewDSS(db, workload.DSSProfile{
		Table: cat.ByName("lineitem"), ChunkRows: 64,
		Chunks: 4000, ChunksPerTick: 200, HoldTicks: 90, SortPages: 1024,
	})
	rollout := workload.NewDSS(db, workload.DSSProfile{
		Table: cat.ByName("history"), Mode: lockmgr.ModeX,
		Chunks: 1500, ChunkRows: 32, ChunksPerTick: 100, HoldTicks: 60,
	})

	res := sim.Run(sim.Config{
		DB:    db,
		Clock: clk,
		Ticks: 1800,
		// Ramp in, full strength, then shed to a third.
		Clients: clients,
		Schedule: func(s float64) int {
			switch {
			case s < 120:
				return 1 + int(s/120*float64(len(clients)-1))
			case s < 1400:
				return len(clients)
			default:
				return len(clients) / 3
			}
		},
		Standalone: []sim.Client{report, rollout},
		Events: []sim.Event{
			{AtTick: 600, Fire: func() { report.SetActive(true) }},
			{AtTick: 1100, Fire: func() { rollout.SetActive(true) }},
		},
	})

	// The sim ran; now the deep checks.
	if err := db.SelfCheck(); err != nil {
		t.Fatal(err)
	}
	if !report.Done() || !rollout.Done() {
		t.Fatalf("bulk jobs incomplete: report=%v rollout=%v", report.Done(), rollout.Done())
	}
	if res.TotalCommits < 1000 {
		t.Fatalf("commits = %d", res.TotalCommits)
	}
	if res.Final.LockStats.Escalations != 0 {
		t.Fatalf("escalations = %d under adaptive tuning", res.Final.LockStats.Escalations)
	}
	// The shed must eventually relax the allocation below its peak.
	lock := res.Series.Get("lock memory")
	if lock.Last().Value >= lock.Max() {
		t.Fatalf("no relaxation after shed: last=%g peak=%g", lock.Last().Value, lock.Max())
	}
}
