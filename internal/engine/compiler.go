package engine

import (
	"sync"
)

// Compiler is the SQL plan-choice stub of section 3.6. The query optimizer
// only needs a *stable, generous* estimate of available lock memory —
// sqlCompilerLockMem = 10% of database memory — so that plans keep choosing
// row locking and leave the runtime tuner room to avoid escalation. Exposing
// the instantaneous allocation instead would bake table locking into plans
// compiled at a low-memory moment.
//
// With learning enabled (the section 6.1 future-work extension) the compiler
// also tracks the actual lock footprint per statement class and uses an
// exponentially weighted average of observations instead of the optimizer's
// a-priori estimate.
type Compiler struct {
	mu        sync.Mutex
	viewPages int
	learning  bool
	learned   map[string]float64 // statement class -> EWMA of actual rows
}

// ewmaAlpha weights recent observations in the learning extension.
const ewmaAlpha = 0.3

// NewCompiler creates the stub with the given stable lock-memory view.
func NewCompiler(viewPages int, learning bool) *Compiler {
	return &Compiler{
		viewPages: viewPages,
		learning:  learning,
		learned:   make(map[string]float64),
	}
}

// ViewPages returns sqlCompilerLockMem in pages.
func (c *Compiler) ViewPages() int { return c.viewPages }

// structsPerPage mirrors memblock.StructsPerPage without the import.
const structsPerPage = 64

// ChooseRowLocking decides the locking granularity for a statement class
// with the optimizer's estimated row footprint: row locking when the
// footprint fits the compiler's lock-memory view, table locking otherwise.
func (c *Compiler) ChooseRowLocking(class string, estimatedRows int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	est := float64(estimatedRows)
	if c.learning {
		if v, ok := c.learned[class]; ok {
			est = v
		}
	}
	return est <= float64(c.viewPages*structsPerPage)
}

// Observe records a statement's actual lock footprint for the learning
// extension; a no-op when learning is disabled.
func (c *Compiler) Observe(class string, actualRows int) {
	if !c.learning {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.learned[class]; ok {
		c.learned[class] = (1-ewmaAlpha)*v + ewmaAlpha*float64(actualRows)
	} else {
		c.learned[class] = float64(actualRows)
	}
}

// Learned returns the learned footprint for a class and whether one exists.
func (c *Compiler) Learned(class string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.learned[class]
	return v, ok
}

// syncSet is a tiny concurrent set of application ids.
type syncSet struct {
	mu sync.Mutex
	m  map[int]struct{}
}

func (s *syncSet) add(id int) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[int]struct{})
	}
	s.m[id] = struct{}{}
	s.mu.Unlock()
}

func (s *syncSet) remove(id int) {
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

func (s *syncSet) has(id int) bool {
	s.mu.Lock()
	_, ok := s.m[id]
	s.mu.Unlock()
	return ok
}
