package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/lockmgr"
)

func TestSaveAndLoadConfigRoundTrip(t *testing.T) {
	db := openAdaptive(t)

	// Drive demand up and tune so the externalized LOCKLIST reflects it.
	conn := db.Connect()
	tx := conn.Begin()
	for i := uint64(0); i < 60_000; i++ {
		if err := tx.LockRow(context.Background(), 2, i, lockmgr.ModeS); err != nil {
			t.Fatal(err)
		}
	}
	rep, _ := db.TuneOnce()
	tx.Commit()

	var buf bytes.Buffer
	if err := db.SaveConfig(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "locklist_pages") {
		t.Fatalf("serialized config = %q", buf.String())
	}

	dc, err := LoadDiskConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dc.LockListPages != rep.LMOC {
		t.Fatalf("saved LOCKLIST = %d, want LMOC %d", dc.LockListPages, rep.LMOC)
	}
	if dc.Policy != "adaptive" || dc.DatabasePages != 131072 {
		t.Fatalf("disk config = %+v", dc)
	}

	// Restart continuity: a new engine seeded from the disk config starts
	// at the tuned allocation instead of the 2 MB minimum.
	var cfg Config
	dc.ApplyTo(&cfg)
	db2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Locks().Pages(); got != dc.LockListPages {
		t.Fatalf("restarted LOCKLIST = %d, want %d", got, dc.LockListPages)
	}
}

func TestLoadDiskConfigErrors(t *testing.T) {
	if _, err := LoadDiskConfig(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadDiskConfig(strings.NewReader(`{"locklist_pages":-5}`)); err == nil {
		t.Fatal("negative sizes accepted")
	}
}

func TestApplyToPolicyMapping(t *testing.T) {
	for name, pol := range map[string]Policy{
		"adaptive": PolicyAdaptive, "static": PolicyStatic, "sqlserver": PolicySQLServer, "": PolicyAdaptive,
	} {
		var cfg Config
		DiskConfig{Policy: name, LockListPages: 128}.ApplyTo(&cfg)
		if cfg.Policy != pol {
			t.Fatalf("policy %q mapped to %v", name, cfg.Policy)
		}
	}
	// Existing database size is preserved.
	cfg := Config{DatabasePages: 999}
	DiskConfig{DatabasePages: 555}.ApplyTo(&cfg)
	if cfg.DatabasePages != 999 {
		t.Fatal("ApplyTo overwrote database size")
	}
}
