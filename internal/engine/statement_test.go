package engine

import (
	"context"
	"testing"

	"repro/internal/lockmgr"
)

func TestExecPointReadsRowLock(t *testing.T) {
	db := openAdaptive(t)
	conn := db.Connect()
	tx := conn.Begin()
	customer := db.Catalog().ByName("customer")

	rowLocking, err := db.Exec(context.Background(), tx, Stmt{
		Class: "oltp.read",
		Table: customer,
		Rows:  []uint64{1, 2, 3},
	})
	if err != nil || !rowLocking {
		t.Fatalf("rowLocking=%v err=%v", rowLocking, err)
	}
	// 3 rows + IS intent.
	if got := db.Locks().UsedStructs(); got != 4 {
		t.Fatalf("structs = %d, want 4", got)
	}
	tx.Commit()
}

func TestExecUpdateUsesXLocks(t *testing.T) {
	db := openAdaptive(t)
	conn := db.Connect()
	tx := conn.Begin()
	stock := db.Catalog().ByName("stock")
	if _, err := db.Exec(context.Background(), tx, Stmt{
		Class: "oltp.update", Table: stock, Rows: []uint64{7}, Update: true,
	}); err != nil {
		t.Fatal(err)
	}
	if got := db.Locks().HeldMode(tx.Owner(), lockmgr.RowName(uint32(stock.ID), 7)); got != lockmgr.ModeX {
		t.Fatalf("mode = %v, want X", got)
	}
	tx.Commit()
}

func TestExecScanLocksChunks(t *testing.T) {
	db := openAdaptive(t)
	conn := db.Connect()
	tx := conn.Begin()
	lineitem := db.Catalog().ByName("lineitem")
	rowLocking, err := db.Exec(context.Background(), tx, Stmt{
		Class: "report.scan",
		Table: lineitem,
		Scan:  &ScanRange{Start: 0, Count: 1000, ChunkRows: 64},
	})
	if err != nil || !rowLocking {
		t.Fatalf("rowLocking=%v err=%v", rowLocking, err)
	}
	// 1000 structures of rows (chunked) + intent.
	if got := db.Locks().UsedStructs(); got != 1001 {
		t.Fatalf("structs = %d, want 1001", got)
	}
	tx.Commit()
}

func TestExecHugeFootprintTableLocks(t *testing.T) {
	db := openAdaptive(t)
	conn := db.Connect()
	tx := conn.Begin()
	lineitem := db.Catalog().ByName("lineitem")
	// Footprint beyond sqlCompilerLockMem (13107 pages × 64 = 838848
	// structures): the plan goes to table granularity.
	rowLocking, err := db.Exec(context.Background(), tx, Stmt{
		Class: "report.everything",
		Table: lineitem,
		Scan:  &ScanRange{Start: 0, Count: 2_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rowLocking {
		t.Fatal("oversized statement must table-lock")
	}
	if got := db.Locks().HeldMode(tx.Owner(), lockmgr.TableName(uint32(lineitem.ID))); got != lockmgr.ModeS {
		t.Fatalf("table mode = %v, want S", got)
	}
	// One table lock only.
	if got := db.Locks().UsedStructs(); got != 1 {
		t.Fatalf("structs = %d, want 1", got)
	}
	tx.Commit()
}

func TestExecLearningFlipsPlan(t *testing.T) {
	db, err := Open(Config{CompilerLearning: true})
	if err != nil {
		t.Fatal(err)
	}
	conn := db.Connect()
	lineitem := db.Catalog().ByName("lineitem")

	// First execution: the optimizer estimate (tiny) picks row locking,
	// but the statement actually locks a large range — execution observes
	// the real footprint. (Stmt carries the actual rows; the estimate is
	// what Exec's ChooseRowLocking sees, which for learning-enabled
	// compilers is the learned value once one exists.)
	tx := conn.Begin()
	if _, err := db.Exec(context.Background(), tx, Stmt{
		Class: "report.learned",
		Table: lineitem,
		Scan:  &ScanRange{Start: 0, Count: 1_000_000},
	}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// The learned footprint (1M rows > compiler view) now forces table
	// locking regardless of any optimistic estimate.
	if db.Compiler().ChooseRowLocking("report.learned", 10) {
		t.Fatal("learning did not flip the plan to table locking")
	}
}

func TestExecValidation(t *testing.T) {
	db := openAdaptive(t)
	conn := db.Connect()
	tx := conn.Begin()
	if _, err := db.Exec(context.Background(), tx, Stmt{Class: "x"}); err == nil {
		t.Fatal("statement without table accepted")
	}
	tx.Commit()
}
