package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/lockmgr"
)

// TestCompilerStabilityPreventsPlanFlip demonstrates section 3.6: a
// compiler that looked at the *instantaneous* lock memory at a low-memory
// moment would bake table locking into the plan, pre-empting the runtime
// tuner; the stable sqlCompilerLockMem view keeps the plan on row locking,
// and the runtime then grows to accommodate it without escalation.
func TestCompilerStabilityPreventsPlanFlip(t *testing.T) {
	db := openAdaptive(t)
	const stmtRows = 200_000 // the statement's lock footprint

	// Naive alternative: a compiler seeded with the instantaneous
	// allocation (512 pages = 32768 structures) would reject row locking.
	naive := NewCompiler(db.Locks().Pages(), false)
	if naive.ChooseRowLocking("report", stmtRows) {
		t.Fatal("naive compiler should have chosen table locking")
	}

	// The stable 10% view (13107 pages = 838k structures) chooses row
	// locking.
	if !db.Compiler().ChooseRowLocking("report", stmtRows) {
		t.Fatal("stable compiler should choose row locking")
	}

	// And the runtime honours that plan: the tuner grows lock memory
	// synchronously, no escalation occurs.
	conn := db.Connect()
	tx := conn.Begin()
	fact := db.Catalog().ByName("lineitem")
	for i := 0; i < stmtRows/64; i++ {
		if err := tx.LockRow(context.Background(), fact.ID, uint64(i*64), lockmgr.ModeS); err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
	}
	if got := db.Locks().Stats().Escalations; got != 0 {
		t.Fatalf("escalations = %d; the stable view should leave runtime room", got)
	}
	db.Compiler().Observe("report", stmtRows)
	tx.Commit()
}

// TestRealTimeSoak runs goroutine-per-connection clients against the wall
// clock with the STMM controller's Run loop — the deployment mode, as
// opposed to the discrete simulation.
func TestRealTimeSoak(t *testing.T) {
	db, err := Open(Config{
		TuningInterval: 30 * time.Second, // Run's first pass fires after this; TuneOnce is also called inline below
		LockTimeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	go db.Controller().Run(ctx)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			conn := db.Connect()
			table := db.Catalog().ByName("stock")
			for i := 0; i < 300; i++ {
				tx := conn.Begin()
				for r := 0; r < 20; r++ {
					row := uint64((seed*31 + i*20 + r) % 100000)
					if err := tx.LockRow(ctx, table.ID, row, lockmgr.ModeX); err != nil {
						break
					}
				}
				tx.Commit()
			}
		}(g)
	}
	// Tuning passes interleave with the running clients.
	for i := 0; i < 5; i++ {
		db.TuneOnce()
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	<-ctx.Done()

	if err := db.Locks().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := db.Set().CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := db.Locks().UsedStructs(); got != 0 {
		t.Fatalf("structs leaked: %d", got)
	}
	commits, _, _ := db.Txns().Stats()
	if commits == 0 {
		t.Fatal("no transactions committed")
	}
}
