// Package engine binds the substrates — shared memory set, buffer pool,
// sort heap, lock manager, transaction manager, STMM controller — into a
// Database facade with connections, mirroring how the pieces compose inside
// DB2 9.
//
// Three lock-memory policies are selectable, matching the paper's section
// 2.3 comparison:
//
//   - PolicyAdaptive — the paper's contribution: STMM self-tuning lock
//     memory with synchronous overflow growth and the adaptive
//     lockPercentPerApplication curve;
//   - PolicyStatic — a fixed LOCKLIST and fixed MAXLOCKS (default 10%), the
//     pre-DB2 9 configuration used for the Figure 7/8 catastrophe;
//   - PolicySQLServer — the SQL Server 2005 model: grow-only lock memory up
//     to 60% of database memory, escalation at 40% used or 5000 locks per
//     application, no shrink.
//
// (The Oracle on-page model has no lock memory to tune and lives in
// internal/baseline as its own structure.)
package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/bufferpool"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/memblock"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/sortheap"
	"repro/internal/stmm"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/txn"
)

// Policy selects the lock-memory management policy.
type Policy int

const (
	// PolicyAdaptive is DB2 9 self-tuning lock memory (the paper).
	PolicyAdaptive Policy = iota
	// PolicyStatic is a fixed LOCKLIST + fixed MAXLOCKS.
	PolicyStatic
	// PolicySQLServer is the SQL Server 2005 model of section 2.3.
	PolicySQLServer
)

func (p Policy) String() string {
	switch p {
	case PolicyAdaptive:
		return "adaptive"
	case PolicyStatic:
		return "static"
	case PolicySQLServer:
		return "sqlserver"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// EscalationBiasPercent is the quota applied to applications that opted in
// to "prefer escalation" (the section 6.1 future-work policy): their lock
// usage escalates early instead of growing lock memory.
const EscalationBiasPercent = 2.0

// Config configures a Database. Zero values get sensible defaults.
type Config struct {
	// DatabasePages is databaseMemory in 4 KB pages (default 131072 =
	// 512 MB; the paper's experiments use 1,340,000 ≈ 5.11 GB).
	DatabasePages int
	// OverflowGoalFrac is the overflow area goal as a fraction of
	// database memory (default 0.10, as in the Figure 6 example).
	OverflowGoalFrac float64
	// InitialLockPages is the starting LOCKLIST (rounded up to whole
	// 128 KB blocks; default = the algorithm's 2 MB minimum).
	InitialLockPages int
	// BufferPoolFrac and SortHeapFrac set the initial PMC sizes as
	// fractions of database memory (defaults 0.60 and 0.10).
	BufferPoolFrac, SortHeapFrac float64
	// Params are the Table 1 parameters (zero → DefaultParams).
	Params core.Params
	// Policy selects the lock-memory policy (default PolicyAdaptive).
	Policy Policy
	// StaticQuotaPct is MAXLOCKS under PolicyStatic (default 10, the
	// previous DB2 default the paper cites).
	StaticQuotaPct float64
	// Clock drives timeouts and is shared with the simulation (nil →
	// wall clock).
	Clock clock.Clock
	// LockTimeout bounds lock waits (0 = disabled).
	LockTimeout time.Duration
	// TuningInterval is the STMM interval (default 30 s; informational —
	// the driver calls TuneOnce).
	TuningInterval time.Duration
	// Catalog is the table catalog (nil → storage.CombinedTPCCTPCH).
	Catalog *storage.Catalog
	// CompilerLearning enables the section 6.1 learning extension in the
	// plan-choice stub.
	CompilerLearning bool
	// LockShards overrides the lock-table shard count (0 = the lock
	// manager's GOMAXPROCS-derived default). Tests that need
	// machine-independent output pin it.
	LockShards int
	// ObsSampleStride is the wall-clock sampling stride for admission and
	// hold-time histograms (0 = default 64, negative = disabled); see
	// lockmgr.Config.ObsSampleStride.
	ObsSampleStride int
	// ProfileDisabled switches the lock manager's contention profiler
	// (hot-lock sketch, flight recorder, latch profile) off; see
	// lockmgr.Config.ProfileDisabled.
	ProfileDisabled bool
	// LatchSpin overrides the shard latches' spin policy; see
	// lockmgr.Config.LatchSpin (0 = adaptive controller, >0 = fixed spin
	// budget, <0 = park immediately).
	LatchSpin int
	// Throttle configures the saturation-aware admission throttle; see
	// lockmgr.Config.Throttle (0 = adaptive ceilings retuned on the STMM
	// cadence, >0 = fixed ceiling, <0 = disabled).
	Throttle int
}

func (c *Config) fillDefaults() {
	if c.DatabasePages == 0 {
		c.DatabasePages = 131072
	}
	if c.OverflowGoalFrac == 0 {
		c.OverflowGoalFrac = 0.10
	}
	if c.BufferPoolFrac == 0 {
		c.BufferPoolFrac = 0.60
	}
	if c.SortHeapFrac == 0 {
		c.SortHeapFrac = 0.10
	}
	if c.Params == (core.Params{}) {
		c.Params = core.DefaultParams()
	}
	if c.InitialLockPages == 0 {
		c.InitialLockPages = c.Params.MinLockPages(0)
	}
	c.InitialLockPages = roundUpBlocks(c.InitialLockPages)
	if c.StaticQuotaPct == 0 {
		c.StaticQuotaPct = 10
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.TuningInterval == 0 {
		c.TuningInterval = 30 * time.Second
	}
	if c.Catalog == nil {
		c.Catalog = storage.CombinedTPCCTPCH()
	}
}

func roundUpBlocks(pages int) int {
	if pages <= 0 {
		return 0
	}
	return (pages + memblock.BlockPages - 1) / memblock.BlockPages * memblock.BlockPages
}

// Database is the assembled engine.
type Database struct {
	cfg Config

	set      *memory.Set
	lockHeap *memory.Heap
	bpHeap   *memory.Heap
	sortHeap *memory.Heap

	pool  *bufferpool.Pool
	sorts *sortheap.Heap
	locks *lockmgr.Manager
	txns  *txn.Manager

	ctl    *stmm.Controller          // PolicyAdaptive only
	sqlsrv *baseline.SQLServerPolicy // PolicySQLServer only
	quota  *biasedQuota
	comp   *Compiler
	events *trace.Ring

	decis    *obs.DecisionLog // tuning decisions (adaptive policy)
	tuneHist *obs.Histogram   // TuneOnce wall-clock duration
	ticks    atomic.Int64     // Tick() count, drives hot-lock decay epochs
}

// Open builds a Database from cfg.
func Open(cfg Config) (*Database, error) {
	cfg.fillDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}

	set := memory.NewSet(cfg.DatabasePages, int(cfg.OverflowGoalFrac*float64(cfg.DatabasePages)))
	bpPages := int(cfg.BufferPoolFrac * float64(cfg.DatabasePages))
	sortPages := int(cfg.SortHeapFrac * float64(cfg.DatabasePages))

	bpHeap, err := set.Register("bufferpool", bpPages, 1024, 0)
	if err != nil {
		return nil, err
	}
	sortHeap, err := set.Register("sortheap", sortPages, 256, 0)
	if err != nil {
		return nil, err
	}
	lockHeap, err := set.Register("locklist", cfg.InitialLockPages, 0, 0)
	if err != nil {
		return nil, err
	}

	db := &Database{
		cfg:      cfg,
		set:      set,
		lockHeap: lockHeap,
		bpHeap:   bpHeap,
		sortHeap: sortHeap,
		pool:     bufferpool.New(bpPages),
		sorts:    sortheap.New(sortPages),
		events:   trace.NewRing(512),
		decis:    obs.NewDecisionLog(512),
		tuneHist: obs.NewHistogram("tuning_pass", "ns", 1),
	}

	lockCfg := lockmgr.Config{
		InitialPages:    cfg.InitialLockPages,
		Clock:           cfg.Clock,
		LockTimeout:     cfg.LockTimeout,
		Events:          (*eventForwarder)(db),
		Shards:          cfg.LockShards,
		ObsSampleStride: cfg.ObsSampleStride,
		ProfileDisabled: cfg.ProfileDisabled,
		LatchSpin:       cfg.LatchSpin,
		Throttle:        cfg.Throttle,
	}

	switch cfg.Policy {
	case PolicyAdaptive:
		db.ctl = stmm.New(stmm.Config{
			Set:      set,
			LockHeap: lockHeap,
			Params:   cfg.Params,
			Interval: cfg.TuningInterval,
		})
		db.ctl.SetDecisionLog(db.decis, cfg.Clock)
		db.quota = &biasedQuota{inner: db.ctl}
		lockCfg.GrowSync = db.ctl.SyncGrow
		lockCfg.Quota = db.quota
	case PolicyStatic:
		db.quota = &biasedQuota{inner: fixedQuota(cfg.StaticQuotaPct)}
		lockCfg.Quota = db.quota
		// No GrowSync: the LOCKLIST is fixed.
	case PolicySQLServer:
		db.sqlsrv = baseline.NewSQLServerPolicy(cfg.DatabasePages)
		db.quota = &biasedQuota{inner: db.sqlsrv}
		lockCfg.Quota = db.quota
		lockCfg.GrowSync = db.sqlServerGrow
	default:
		return nil, fmt.Errorf("engine: unknown policy %v", cfg.Policy)
	}

	db.locks = lockmgr.New(lockCfg)
	// Latch spin-budget retunes are tuning decisions like any other: route
	// them into the same decision log so /debug/tuner can replay them.
	db.locks.SetLatchDecisionLog(db.decis)
	db.locks.SetThrottleDecisionLog(db.decis)
	db.txns = txn.NewManager(db.locks)

	if db.ctl != nil {
		db.ctl.BindLock(db.locks)
		db.ctl.BindEscalations(func() int64 { return db.locks.Stats().Escalations })
		db.ctl.BindThrottle(db.locks)
		db.ctl.RegisterPMC(bpHeap, db.pool)
		db.ctl.RegisterPMC(sortHeap, db.sorts)
		db.comp = NewCompiler(db.ctl.CompilerLockPages(), cfg.CompilerLearning)
	} else {
		// Non-adaptive policies expose the same 10% view for plan
		// stability comparisons.
		db.comp = NewCompiler(cfg.Params.CompilerLockPages(cfg.DatabasePages), cfg.CompilerLearning)
	}
	if db.sqlsrv != nil {
		db.sqlsrv.Bind(db.locks)
	}
	live.Store(db)
	return db, nil
}

// sqlServerGrow funds SQL Server's grow-only lock memory from overflow,
// then from the buffer pool, honouring the 60% ceiling.
func (db *Database) sqlServerGrow(needPages int) int {
	allowed := db.sqlsrv.GrowSync(needPages)
	if allowed <= 0 {
		return 0
	}
	got := db.set.GrowUpTo(db.lockHeap, allowed)
	if got < allowed {
		moved := db.set.Transfer(db.bpHeap, db.lockHeap, allowed-got)
		if moved > 0 {
			db.pool.ApplySize(db.bpHeap.Pages())
			got += moved
		}
	}
	if rem := got % memblock.BlockPages; rem != 0 {
		got -= db.set.Shrink(db.lockHeap, rem)
	}
	return got
}

// fixedQuota is the static MAXLOCKS provider.
type fixedQuota float64

func (q fixedQuota) QuotaPercent(int, int64, int) float64 { return float64(q) }

// biasedQuota layers the section 6.1 escalation-preference policy over the
// base provider: opted-in applications get a tiny quota so their heavy lock
// use escalates early instead of inflating lock memory.
type biasedQuota struct {
	inner  lockmgr.QuotaProvider
	prefer syncSet
}

// PrefersEscalation implements lockmgr.EscalationPreferrer so the lock
// manager escalates opted-in applications instead of growing lock memory to
// cover them.
func (b *biasedQuota) PrefersEscalation(appID int) bool { return b.prefer.has(appID) }

func (b *biasedQuota) QuotaPercent(appID int, requests int64, used int) float64 {
	v := 100.0
	if b.inner != nil {
		v = b.inner.QuotaPercent(appID, requests, used)
	}
	if b.prefer.has(appID) && v > EscalationBiasPercent {
		v = EscalationBiasPercent
	}
	return v
}

// Conn is a database connection (one application).
type Conn struct {
	db     *Database
	app    *lockmgr.App
	prefer bool
}

// ConnOption customizes Connect.
type ConnOption func(*Conn)

// WithPreferEscalation opts this connection into the escalation-preferred
// policy: its transactions escalate at EscalationBiasPercent of lock memory
// rather than driving lock-memory growth.
func WithPreferEscalation() ConnOption {
	return func(c *Conn) { c.prefer = true }
}

// Connect registers a new application connection.
func (db *Database) Connect(opts ...ConnOption) *Conn {
	c := &Conn{db: db}
	for _, o := range opts {
		o(c)
	}
	c.app = db.locks.RegisterApp()
	if c.prefer {
		db.quota.prefer.add(c.app.ID())
	}
	return c
}

// Close disconnects the application. All of its transactions must have
// finished.
func (c *Conn) Close() error {
	c.db.quota.prefer.remove(c.app.ID())
	return c.db.locks.UnregisterApp(c.app)
}

// App returns the underlying lock-manager application.
func (c *Conn) App() *lockmgr.App { return c.app }

// Begin starts a transaction on this connection.
func (c *Conn) Begin() *txn.Txn { return c.db.txns.Begin(c.app) }

// Locks returns the lock manager.
func (db *Database) Locks() *lockmgr.Manager { return db.locks }

// Txns returns the transaction manager.
func (db *Database) Txns() *txn.Manager { return db.txns }

// Pool returns the buffer pool.
func (db *Database) Pool() *bufferpool.Pool { return db.pool }

// Sorts returns the sort heap.
func (db *Database) Sorts() *sortheap.Heap { return db.sorts }

// Set returns the shared memory set.
func (db *Database) Set() *memory.Set { return db.set }

// Catalog returns the table catalog.
func (db *Database) Catalog() *storage.Catalog { return db.cfg.Catalog }

// Controller returns the STMM controller, or nil for non-adaptive policies.
func (db *Database) Controller() *stmm.Controller { return db.ctl }

// Compiler returns the plan-choice stub.
func (db *Database) Compiler() *Compiler { return db.comp }

// Policy returns the configured lock-memory policy.
func (db *Database) Policy() Policy { return db.cfg.Policy }

// TouchRow simulates reading the data page of (table, row) through the
// buffer pool and reports whether it was a cache hit.
func (db *Database) TouchRow(t *storage.Table, row uint64) bool {
	return db.pool.Access(t.PageOf(row))
}

// TuneOnce runs one STMM pass. The second result is false for policies
// without asynchronous tuning (static, SQL Server).
func (db *Database) TuneOnce() (stmm.Report, bool) {
	if db.ctl == nil {
		return stmm.Report{}, false
	}
	t0 := time.Now()
	rep := db.ctl.TuneOnce()
	db.tuneHist.Record(time.Since(t0).Nanoseconds())
	db.events.Add(trace.Event{
		Time: db.cfg.Clock.Now(),
		Kind: trace.KindTuningPass,
		Detail: fmt.Sprintf("%s %d→%d pages (quota %.1f%%): %s",
			rep.Decision.Action, rep.LockPagesBefore, rep.LockPagesAfter,
			rep.QuotaPercent, rep.Decision.Reason),
	})
	return rep, true
}

// Events returns the diagnostic event ring.
func (db *Database) Events() *trace.Ring { return db.events }

// Decisions returns the tuning-decision log. It is always non-nil;
// non-adaptive policies simply never add to it.
func (db *Database) Decisions() *obs.DecisionLog { return db.decis }

// TuneHist returns the TuneOnce wall-clock duration histogram.
func (db *Database) TuneHist() *obs.Histogram { return db.tuneHist }

// eventForwarder adapts the Database to lockmgr.EventSink. The sink methods
// run under the lock manager latch, so they only append to the ring.
type eventForwarder Database

func (f *eventForwarder) add(kind trace.Kind, appID int, detail string) {
	f.events.Add(trace.Event{Time: f.cfg.Clock.Now(), Kind: kind, AppID: appID, Detail: detail})
}

func (f *eventForwarder) OnEscalation(appID int, table uint32, to lockmgr.Mode) {
	f.add(trace.KindEscalation, appID, fmt.Sprintf("table %d escalated to %s", table, to))
}

func (f *eventForwarder) OnDeadlockVictim(appID int, ownerID uint64) {
	f.add(trace.KindDeadlock, appID, fmt.Sprintf("txn %d chosen as victim", ownerID))
}

func (f *eventForwarder) OnTimeout(appID int) {
	f.add(trace.KindTimeout, appID, "lock wait timed out")
}

func (f *eventForwarder) OnSyncGrowth(pages int) {
	f.add(trace.KindSyncGrowth, 0, fmt.Sprintf("+%d pages from overflow memory", pages))
}

func (f *eventForwarder) OnDenial(appID int, reason error) {
	kind := trace.KindMemoryDenial
	if reason == lockmgr.ErrQuotaExceeded {
		kind = trace.KindQuotaDenial
	}
	f.add(kind, appID, reason.Error())
}

// hotDecayEvery is the hot-lock decay epoch in ticks: every 64 ticks the
// contention profiler halves its blame scores, aging past storms out of
// the /debug/hotlocks ranking.
const hotDecayEvery = 64

// Tick performs the per-tick maintenance a real engine would run on
// background threads: lock wait timeouts, deadlock detection, and the
// contention profiler's decay epoch.
func (db *Database) Tick() {
	db.locks.SweepTimeouts()
	db.locks.DetectDeadlocks()
	if db.ticks.Add(1)%hotDecayEvery == 0 {
		db.locks.DecayHotLocks()
	}
}

// Snapshot is a point-in-time view of the engine for metrics capture.
type Snapshot struct {
	LockPages       int
	UsedStructs     int
	CapacityStructs int
	FreeFraction    float64
	LockStats       lockmgr.Stats
	LockLatchWaits  int64
	// LockGlobalRuns counts all-shard latch acquisitions by the lock
	// manager's control plane; LockGlobalHoldMax is the longest any single
	// one froze the fast path (wall clock). Together they bound the stall
	// the control plane has ever caused — in steady state neither should
	// advance between snapshots.
	LockGlobalRuns    int64
	LockGlobalHoldMax time.Duration
	// LockFastPathHits counts grants admitted without the shard latch
	// (grant-word CAS + owner-local re-acquire cache); LockFastPathFallbacks
	// counts acquisitions that took the latched admission path. Together
	// they partition all acquisitions; the hit ratio is the latch-free
	// admission rate.
	LockFastPathHits      int64
	LockFastPathFallbacks int64
	// LockOptimisticHits counts zero-CAS optimistic read tokens issued;
	// LockOptimisticFailures counts tokens refuted at validation (a
	// writer, fence, or settle-seq wrap landed inside the read window).
	// Optimistic hits ride above the fast-path partition: hits +
	// fast-path hits + fallbacks covers every admission attempt.
	LockOptimisticHits     int64
	LockOptimisticFailures int64
	// LockReleaseBatches counts release batches applied by the group-release
	// path (one per owner-visit, whether applied directly or drained by a
	// flush leader). LockWakeupsCoalesced counts FIFO grant wakeups deferred
	// out of a latched release section and fired in a post-walk pass.
	// LockFlushFollowerWaits counts commit-side shard visits that staged
	// their batch for a flush leader instead of latching the shard.
	LockReleaseBatches     int64
	LockWakeupsCoalesced   int64
	LockFlushFollowerWaits int64
	// LockLatchSpins counts contended shard-latch acquisitions won in the
	// spin phase of the spin-then-park latch; LockLatchParks counts those
	// that parked on the latch's condition instead; LockLatchHandoffs
	// counts unlocks that signalled a parked waiter. Spins + parks is the
	// contended-acquire total the adaptive spin-budget controller tunes
	// against (LockLatchWaits remains the profiler's sampled view).
	LockLatchSpins    int64
	LockLatchParks    int64
	LockLatchHandoffs int64
	// LockThrottleCulled counts waiters the saturation-aware admission
	// throttle diverted into the passive culled set;
	// LockThrottleReactivated counts culled waiters fed back into the
	// admission pipeline as the active queue drained (the remainder were
	// denied in place or are still parked). LockThrottleCeiling is the
	// highest engaged per-shard concurrency ceiling (0 = fully
	// disengaged).
	LockThrottleCulled      int64
	LockThrottleReactivated int64
	LockThrottleCeiling     int
	QuotaPercent            float64
	Overflow                int
	OverflowGoal            int
	BufferPoolPages         int
	SortHeapPages           int
	Commits, Aborts         int64
	ActiveTxns              int
	NumApps                 int
	LMOC                    int
}

// Snapshot captures the current engine state.
func (db *Database) Snapshot() Snapshot {
	mem := db.set.Snapshot()
	commits, aborts, active := db.txns.Stats()
	s := Snapshot{
		LockPages:               db.locks.Pages(),
		UsedStructs:             db.locks.UsedStructs(),
		CapacityStructs:         db.locks.CapacityStructs(),
		FreeFraction:            db.locks.FreeFraction(),
		LockStats:               db.locks.Stats(),
		LockLatchWaits:          db.locks.LatchWaits(),
		LockGlobalRuns:          db.locks.GlobalRuns(),
		LockGlobalHoldMax:       db.locks.GlobalHoldMax(),
		LockFastPathHits:        db.locks.FastPathHits(),
		LockFastPathFallbacks:   db.locks.FastPathFallbacks(),
		LockOptimisticHits:      db.locks.OptimisticHits(),
		LockOptimisticFailures:  db.locks.OptimisticFailures(),
		LockReleaseBatches:      db.locks.ReleaseBatches(),
		LockWakeupsCoalesced:    db.locks.WakeupsCoalesced(),
		LockFlushFollowerWaits:  db.locks.FlushFollowerWaits(),
		LockLatchSpins:          db.locks.LatchSpinHits(),
		LockLatchParks:          db.locks.LatchParks(),
		LockLatchHandoffs:       db.locks.LatchHandoffs(),
		LockThrottleCulled:      db.locks.ThrottleCulled(),
		LockThrottleReactivated: db.locks.ThrottleReactivated(),
		LockThrottleCeiling:     db.locks.ThrottleCeilingMax(),
		Overflow:                mem.Overflow,
		OverflowGoal:            mem.OverflowGoal,
		BufferPoolPages:         mem.HeapPages["bufferpool"],
		SortHeapPages:           mem.HeapPages["sortheap"],
		Commits:                 commits,
		Aborts:                  aborts,
		ActiveTxns:              active,
		NumApps:                 db.locks.NumApps(),
	}
	if db.ctl != nil {
		s.QuotaPercent = db.ctl.CurrentQuota()
		s.LMOC = db.ctl.LMOC()
	} else {
		s.QuotaPercent = db.quota.QuotaPercent(0, db.locks.StructRequests(), db.locks.UsedStructs())
		s.LMOC = db.locks.Pages()
	}
	return s
}

// SelfCheck verifies cross-component consistency: the lock table's internal
// invariants, page conservation across the memory set, and agreement
// between the lock heap and the block chain. Long-running simulations call
// it at tuning intervals; it returns the first violation found.
func (db *Database) SelfCheck() error {
	if err := db.locks.CheckInvariants(); err != nil {
		return err
	}
	if err := db.set.CheckConservation(); err != nil {
		return err
	}
	if hp, cp := db.lockHeap.Pages(), db.locks.Pages(); hp != cp {
		return fmt.Errorf("engine: lock heap %d pages != chain %d pages", hp, cp)
	}
	return nil
}
