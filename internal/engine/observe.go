// observe.go is the engine's exposition wiring: it flattens a Database
// into the Prometheus text format and adapts the debug endpoints'
// callbacks onto the live engine objects (lock-table dump, event ring,
// tuning-decision log). The obs package knows formats and transports;
// this file knows what an engine is.

package engine

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

// live is the most recently opened Database, for process-wide exposition
// (the CLIs open exactly one engine; the HTTP mux fetches it per request
// so a restart inside the process is picked up automatically).
var live atomic.Pointer[Database]

// Live returns the most recently opened Database (nil before any Open).
func Live() *Database { return live.Load() }

// queryEvents applies a /debug/events query (kind filter, then recency
// limit) to the ring's retained window.
func queryEvents(r *trace.Ring, q obs.EventQuery) []trace.Event {
	evs := trace.Filter(r.Events(), q.Kind)
	if q.Last > 0 && len(evs) > q.Last {
		evs = evs[len(evs)-q.Last:]
	}
	return evs
}

// Handlers adapts this Database to the obs HTTP surface.
func (db *Database) Handlers() obs.Handlers {
	return obs.Handlers{
		Metrics:  db.WriteMetrics,
		Locks:    func() any { return db.locks.DumpLocks() },
		Events:   func(q obs.EventQuery) any { return queryEvents(db.events, q) },
		Tuner:    func(q obs.TunerQuery) any { return db.decis.Query(q.Kind, q.N) },
		Hotlocks: func(n int) any { return db.locks.HotLocks(n) },
		Waiters:  func() any { return db.locks.DumpWaiters() },
		Flight:   func(q obs.FlightQuery) any { return db.locks.FlightEvents(q.Shard, q.Last) },
	}
}

// LiveHandlers returns handlers that resolve the live Database on every
// request: the mux can be built before the engine is opened, and survives
// the engine being reopened. With no live database, /metrics emits only a
// liveness gauge and the debug endpoints return empty results.
func LiveHandlers() obs.Handlers {
	return obs.Handlers{
		Metrics: func(m *obs.MetricWriter) {
			db := Live()
			if db == nil {
				m.Gauge("lockmem_up", "1 when a database is open", 0)
				return
			}
			db.WriteMetrics(m)
		},
		Locks: func() any {
			if db := Live(); db != nil {
				return db.locks.DumpLocks()
			}
			return nil
		},
		Events: func(q obs.EventQuery) any {
			if db := Live(); db != nil {
				return queryEvents(db.events, q)
			}
			return nil
		},
		Tuner: func(q obs.TunerQuery) any {
			if db := Live(); db != nil {
				return db.decis.Query(q.Kind, q.N)
			}
			return nil
		},
		Hotlocks: func(n int) any {
			if db := Live(); db != nil {
				return db.locks.HotLocks(n)
			}
			return nil
		},
		Waiters: func() any {
			if db := Live(); db != nil {
				return db.locks.DumpWaiters()
			}
			return nil
		},
		Flight: func(q obs.FlightQuery) any {
			if db := Live(); db != nil {
				return db.locks.FlightEvents(q.Shard, q.Last)
			}
			return nil
		},
	}
}

// kindTotalsToStrings re-keys trace per-kind totals for exposition.
func kindTotalsToStrings(in map[trace.Kind]int64) map[string]int64 {
	out := make(map[string]int64, len(in))
	for k, v := range in {
		out[k.String()] = v
	}
	return out
}

// WriteMetrics renders the full engine state in the Prometheus text
// exposition format. Everything it reads is latch-free (atomic counters,
// striped histograms, sequence-stamped mirrors), so scraping never stalls
// the lock-manager fast path.
func (db *Database) WriteMetrics(m *obs.MetricWriter) {
	m.Gauge("lockmem_up", "1 when a database is open", 1)

	snap := db.Snapshot()
	st := snap.LockStats

	// Lock-manager activity counters.
	m.Counter("lockmem_grants_total", "lock requests granted", st.Grants)
	m.Counter("lockmem_waits_total", "lock requests that waited", st.Waits)
	m.Counter("lockmem_timeouts_total", "lock waits denied by timeout", st.Timeouts)
	m.Counter("lockmem_deadlocks_total", "deadlock victims denied", st.Deadlocks)
	m.Counter("lockmem_escalations_total", "lock escalations", st.Escalations)
	m.Counter("lockmem_exclusive_escalations_total", "escalations to X table locks", st.ExclusiveEscalations)
	m.Counter("lockmem_memory_denials_total", "requests denied for lock memory", st.MemoryDenials)
	m.Counter("lockmem_quota_denials_total", "requests denied by per-app quota", st.QuotaDenials)
	m.Counter("lockmem_sync_growths_total", "synchronous overflow growths", st.SyncGrowths)
	m.Counter("lockmem_sync_growth_pages_total", "pages granted synchronously from overflow", st.SyncGrowthPages)
	m.Counter("lockmem_commits_total", "transactions committed", snap.Commits)
	m.Counter("lockmem_aborts_total", "transactions aborted", snap.Aborts)

	// Memory-state gauges (pages are 4 KB).
	m.Gauge("lockmem_database_pages", "databaseMemory size", float64(db.cfg.DatabasePages))
	m.Gauge("lockmem_lock_pages", "current LOCKLIST allocation", float64(snap.LockPages))
	m.Gauge("lockmem_lock_structs_used", "lock structures in use", float64(snap.UsedStructs))
	m.Gauge("lockmem_lock_structs_capacity", "lock structures the allocation can hold", float64(snap.CapacityStructs))
	m.Gauge("lockmem_lock_free_fraction", "fraction of lock structures free", snap.FreeFraction)
	m.Gauge("lockmem_quota_percent", "lockPercentPerApplication (MAXLOCKS)", snap.QuotaPercent)
	m.Gauge("lockmem_overflow_pages", "database overflow memory", float64(snap.Overflow))
	m.Gauge("lockmem_overflow_goal_pages", "overflow memory goal", float64(snap.OverflowGoal))
	m.Gauge("lockmem_bufferpool_pages", "buffer pool heap size", float64(snap.BufferPoolPages))
	m.Gauge("lockmem_sortheap_pages", "sort heap size", float64(snap.SortHeapPages))
	m.Gauge("lockmem_lmoc_pages", "externalized lock memory configuration", float64(snap.LMOC))
	m.Gauge("lockmem_active_txns", "transactions in flight", float64(snap.ActiveTxns))
	m.Gauge("lockmem_connected_apps", "connected applications", float64(snap.NumApps))

	// Control-plane cost.
	m.Counter("lockmem_global_runs_total", "all-shard latch acquisitions", snap.LockGlobalRuns)
	m.Gauge("lockmem_global_hold_max_seconds", "longest single all-shard hold", snap.LockGlobalHoldMax.Seconds())

	// Per-shard latch contention.
	m.CounterVec("lockmem_latch_waits_total", "contended shard-latch acquisitions", "shard",
		db.locks.LatchWaitCounters().Values())

	// Spin-then-park latch outcomes: contended acquires won by spinning vs
	// parked on the latch condition, and unlocks that signalled a parked
	// waiter. spins/(spins+parks) is the adaptive spin controller's live
	// success rate; budgets themselves are replayable from the decision log.
	m.CounterVec("lockmem_latch_spins_total", "contended shard-latch acquires won in the spin phase", "shard",
		db.locks.LatchSpinHitValues())
	m.CounterVec("lockmem_latch_parks_total", "contended shard-latch acquires parked on the latch condition", "shard",
		db.locks.LatchParkValues())
	m.CounterVec("lockmem_latch_handoffs_total", "shard-latch unlocks signalling a parked waiter", "shard",
		db.locks.LatchHandoffValues())

	// Latch-free admission fast path: hits (grant-word CAS admissions plus
	// owner-local re-acquire cache hits) vs fallbacks to the latched
	// admission path. Hits + fallbacks partition all acquisitions.
	m.CounterVec("lockmem_fastpath_hits_total", "grants admitted without the shard latch", "shard",
		db.locks.FastPathHitCounters().Values())
	m.CounterVec("lockmem_fastpath_fallbacks_total", "acquisitions on the latched admission path", "shard",
		db.locks.FastPathFallbackCounters().Values())

	// Zero-CAS optimistic read tier: tokens issued vs tokens refuted at
	// validation. failures/hits is the invalidation rate; hits ride above
	// the fast-path partition (hits + fastpath hits + fallbacks covers
	// every admission attempt).
	m.CounterVec("lockmem_optimistic_hits_total", "optimistic read tokens issued", "shard",
		db.locks.OptimisticHitCounters().Values())
	m.CounterVec("lockmem_optimistic_failures_total", "optimistic read tokens failing validation", "shard",
		db.locks.OptimisticFailureCounters().Values())

	// Group release: batches applied per shard (direct visits plus flush-
	// leader drains), grant wakeups coalesced out of latched sections, and
	// commit-side visits that staged for a leader instead of latching.
	m.CounterVec("lockmem_release_batches_total", "release batches applied", "shard",
		db.locks.ReleaseBatchCounters().Values())
	m.CounterVec("lockmem_wakeups_coalesced_total", "grant wakeups deferred out of latched release sections", "shard",
		db.locks.WakeupsCoalescedCounters().Values())
	m.CounterVec("lockmem_flush_follower_waits_total", "commit visits staged for a flush leader", "shard",
		db.locks.FlushFollowerWaitCounters().Values())

	// Saturation-aware admission throttle: waiters culled into the passive
	// set, culled waiters reactivated as the active queue drained, and
	// each shard's live concurrency ceiling (0 = disengaged). Ceiling
	// changes are replayable from the decision log (kind "throttle-tune").
	m.CounterVec("lockmem_throttle_culled_total", "waiters culled by the admission throttle", "shard",
		db.locks.ThrottleCulledValues())
	m.CounterVec("lockmem_throttle_reactivated_total", "culled waiters reactivated into the admission pipeline", "shard",
		db.locks.ThrottleReactivatedValues())
	ceilings := db.locks.ThrottleCeilings()
	ceil64 := make([]int64, len(ceilings))
	for i, c := range ceilings {
		ceil64[i] = int64(c)
	}
	m.GaugeVec("lockmem_throttle_ceiling", "per-shard admission concurrency ceiling (0 = disengaged)", "shard",
		ceil64)

	// Event ring: lifetime per-kind totals (survive eviction) + eviction.
	m.CounterMap("lockmem_trace_events_total", "diagnostic events by kind", "kind",
		kindTotalsToStrings(db.events.TotalByKind()))
	m.Counter("lockmem_trace_evicted_total", "events aged out of the ring", db.events.Evicted())

	// Tuning-decision log.
	m.CounterMap("lockmem_tuning_decisions_total", "tuning decisions by kind", "kind",
		db.decis.TotalByKind())
	m.Counter("lockmem_tuning_decisions_evicted_total", "decisions aged out of the log", db.decis.Evicted())

	// Latency distributions (recorded in ns; exposed in seconds).
	m.Histogram("lockmem_lock_wait_seconds", "lock wait time (engine clock)",
		db.locks.WaitHist().Snapshot(), 1e-9)
	m.Histogram("lockmem_lock_release_seconds", "ReleaseAll commit-release time (engine clock)",
		db.locks.ReleaseHist().Snapshot(), 1e-9)
	m.Histogram("lockmem_lock_hold_seconds", "lock hold time (sampled, wall clock)",
		db.locks.HoldHist().Snapshot(), 1e-9)

	// Commit fast-path cost: total shard-latch acquisitions (every lockShard
	// call, contended or not). With the touched-shard release walk this grows
	// by O(shards touched) per commit, not 3× the shard count.
	m.CounterVec("lockmem_latch_acquisitions_total", "shard-latch acquisitions", "shard",
		db.locks.LatchAcqCounters().Values())
	m.Histogram("lockmem_lock_admission_seconds", "AcquireAsync latency (sampled, wall clock)",
		db.locks.AdmissionHist().Snapshot(), 1e-9)
	m.Histogram("lockmem_tuning_pass_seconds", "STMM TuneOnce duration (wall clock)",
		db.tuneHist.Snapshot(), 1e-9)

	// Contention profiler: the current top-10 hot locks as labelled gauges
	// (blame is a decayed score, so these are gauges, not counters), plus
	// the merged per-shard latch hold/wait profile when wall-clock sampling
	// is on. Scrapes are lock-free like everything above.
	if hot := db.locks.HotLocks(10); len(hot) > 0 {
		blame := make(map[string]float64, len(hot))
		wait := make(map[string]float64, len(hot))
		qmax := make(map[string]float64, len(hot))
		fb := make(map[string]float64, len(hot))
		opt := make(map[string]float64, len(hot))
		for _, hl := range hot {
			blame[hl.Name] = float64(hl.BlameNs) * 1e-9
			wait[hl.Name] = float64(hl.WaitNs) * 1e-9
			qmax[hl.Name] = float64(hl.QueueDepthMax)
			fb[hl.Name] = float64(hl.Fallbacks)
			opt[hl.Name] = float64(hl.OptFailures)
		}
		m.GaugeMap("lockmem_hotlock_blame_seconds", "decayed contention blame of the top-K hot locks", "lock", blame)
		m.GaugeMap("lockmem_hotlock_wait_seconds", "attributed wait time of the top-K hot locks", "lock", wait)
		m.GaugeMap("lockmem_hotlock_queue_depth_max", "queue-depth high-water of the top-K hot locks", "lock", qmax)
		m.GaugeMap("lockmem_hotlock_fallbacks", "fast-path fallbacks attributed to the top-K hot locks", "lock", fb)
		m.GaugeMap("lockmem_hotlock_optimistic_failures", "optimistic validation failures attributed to the top-K hot locks", "lock", opt)
	}
	if lp := db.locks.LatchProfile(); lp != nil {
		m.Histogram("lockmem_latch_hold_seconds", "shard-latch hold time (sampled, wall clock)",
			lp.MergedHold(), 1e-9)
		m.Histogram("lockmem_latch_wait_seconds", "contended shard-latch acquire time (wall clock)",
			lp.MergedWait(), 1e-9)
	}
}
