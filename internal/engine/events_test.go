package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/lockmgr"
	"repro/internal/trace"
)

// TestEventsFlowToRing verifies the diagnostic pipeline: escalations, sync
// growth and tuning passes all land in the engine's event ring.
func TestEventsFlowToRing(t *testing.T) {
	db := openAdaptive(t)
	conn := db.Connect()

	// Heavy demand: sync growth events.
	tx := conn.Begin()
	for i := uint64(0); i < 40_000; i++ {
		if err := tx.LockRow(context.Background(), 2, i, lockmgr.ModeS); err != nil {
			t.Fatal(err)
		}
	}
	db.TuneOnce() // tuning-pass event
	tx.Commit()

	counts := db.Events().CountByKind()
	if counts[trace.KindSyncGrowth] == 0 {
		t.Fatalf("no sync-growth events: %v", counts)
	}
	if counts[trace.KindTuningPass] == 0 {
		t.Fatalf("no tuning-pass events: %v", counts)
	}
	if db.Events().Total() == 0 {
		t.Fatal("ring empty")
	}
}

func TestEscalationEventsRecorded(t *testing.T) {
	db, err := Open(Config{
		Policy:           PolicyStatic,
		InitialLockPages: 96,
		StaticQuotaPct:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn := db.Connect()
	tx := conn.Begin()
	for i := uint64(0); i < 1000; i++ {
		if err := tx.LockRow(context.Background(), 3, i, lockmgr.ModeX); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	if got := db.Events().CountByKind()[trace.KindEscalation]; got == 0 {
		t.Fatal("escalation events missing")
	}
}

// TestEscalationRecoveryEndToEnd drives the paper's rare-but-real scenario
// through the whole stack: overflow memory is constrained, a massive spike
// forces escalations, and the tuner's doubling rule grows the lock memory
// across intervals until the demand fits and escalations stop.
func TestEscalationRecoveryEndToEnd(t *testing.T) {
	clk := clock.NewSim()
	db, err := Open(Config{
		DatabasePages:    131072,
		OverflowGoalFrac: 0.02, // almost no reserve
		BufferPoolFrac:   0.93, // and the PMCs hold nearly everything
		SortHeapFrac:     0.02, // → free overflow ≈ 6000 pages, LMOmax ≈ 3900
		Clock:            clk,
		LockTimeout:      30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	conn := db.Connect()
	fact := db.Catalog().ByName("lineitem")

	// The spike: far more than the starved overflow can fund at once.
	// LMOmax ≈ 0.65 × ~2800 free pages, while demand is ~10000 pages of
	// structures. Each transaction retries after an escalation denial.
	var escalationsSeen int64
	demandChunks := 10000
	acquired := 0
	tx := conn.Begin()
	for round := 0; round < 40 && acquired < demandChunks; round++ {
		for acquired < demandChunks {
			op := tx.AcquireRow(fact.ID, uint64(acquired)*64, lockmgr.ModeS, 64)
			st := op.Poll()
			if st == 2 { // txn.OpDenied
				break
			}
			if st == 0 { // waiting (escalation in flight)
				break
			}
			acquired++
		}
		escalationsSeen = db.Locks().Stats().Escalations
		// An STMM interval passes: doubling should kick in while
		// escalations continue.
		clk.Advance(30 * time.Second)
		db.Locks().SweepTimeouts()
		db.TuneOnce()
	}
	if escalationsSeen == 0 {
		t.Fatal("setup failed: constrained overflow never escalated")
	}
	if acquired < demandChunks {
		t.Fatalf("demand never accommodated: %d/%d chunks (lock pages %d)",
			acquired, demandChunks, db.Locks().Pages())
	}
	// The doubling rule grew the allocation well beyond what overflow
	// alone could fund (LMOmax ≈ 3900 pages), taking pages from the PMCs.
	if got := db.Locks().Pages(); got <= 4096 {
		t.Fatalf("doubling did not grow lock memory: %d pages", got)
	}
	tx.Commit()

	// With the recovered allocation, a comparable fresh demand now runs
	// without any further escalation.
	before := db.Locks().Stats().Escalations
	tx2 := conn.Begin()
	refit := db.Locks().CapacityStructs() / 64 / 4 // quarter of capacity, in chunks
	for i := 0; i < refit; i++ {
		op := tx2.AcquireRow(fact.ID, uint64(i)*64, lockmgr.ModeS, 64)
		if op.Poll() != 1 { // txn.OpGranted
			t.Fatalf("chunk %d failed after recovery: %v", i, op.Err())
		}
	}
	if got := db.Locks().Stats().Escalations; got != before {
		t.Fatalf("escalations continued after recovery: %d new", got-before)
	}
	tx2.Commit()
	if err := db.Set().CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
