package engine

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func renderMetrics(db *Database) string {
	var b strings.Builder
	db.WriteMetrics(obs.NewMetricWriter(&b))
	return b.String()
}

// TestWriteMetricsGolden pins the full /metrics output of a freshly
// opened engine. Everything in it is deterministic: the simulated clock,
// a pinned shard count, and no workload — so the exposition format itself
// is under regression test, byte for byte.
func TestWriteMetricsGolden(t *testing.T) {
	db, err := Open(Config{Clock: clock.NewSim(), LockShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := renderMetrics(db)

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("metrics output drifted from golden file (run with -update to accept):\n--- got ---\n%s", got)
	}
}

// TestMetricsUnderWorkload checks the exposition against a live engine:
// histogram buckets populated by real waits, per-shard latch counters,
// and decision records whose inputs reproduce the recorded action.
func TestMetricsUnderWorkload(t *testing.T) {
	clk := clock.NewSim()
	db, err := Open(Config{Clock: clk, LockShards: 4, LockTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A contended pair: tx1 holds row X; tx2 waits; ticks pass; release.
	c1, c2 := db.Connect(), db.Connect()
	tx1 := c1.Begin()
	if err := tx1.LockRow(ctx, 1, 42, lockmgr.ModeX); err != nil {
		t.Fatal(err)
	}
	tx2 := c2.Begin()
	done := make(chan error, 1)
	go func() { done <- tx2.LockRow(ctx, 1, 42, lockmgr.ModeX) }()
	for i := 0; i < 3; i++ {
		time.Sleep(5 * time.Millisecond)
		clk.Advance(time.Second)
	}
	tx1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	db.TuneOnce()

	// The wait shows up in the lock-wait histogram with its sim duration.
	ws := db.Locks().WaitHist().Snapshot()
	if ws.Total == 0 {
		t.Fatal("no lock waits recorded")
	}
	if q := ws.Quantile(1.0); q < 1e9/2 {
		t.Errorf("max wait estimate %.0fns; want ≥ ~1 simulated second", q)
	}

	out := renderMetrics(db)
	for _, want := range []string{
		"lockmem_lock_wait_seconds_bucket{le=",
		`lockmem_latch_waits_total{shard="0"}`,
		`lockmem_latch_waits_total{shard="3"}`,
		"lockmem_grants_total",
		"lockmem_quota_percent",
		"lockmem_tuning_pass_seconds_count 1",
		`lockmem_tuning_decisions_total{kind="tuning-pass"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHTTPEndpointsEndToEnd serves the engine's handlers over a real mux
// and checks /metrics, /debug/locks, /debug/events, and /debug/tuner —
// including that every served decision record replays to its recorded
// action (the acceptance criterion behind /debug/tuner).
func TestHTTPEndpointsEndToEnd(t *testing.T) {
	clk := clock.NewSim()
	db, err := Open(Config{Clock: clk, LockShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := db.Connect()
	tx := c.Begin()
	if err := tx.LockRow(context.Background(), 2, 7, lockmgr.ModeS); err != nil {
		t.Fatal(err)
	}
	db.TuneOnce()
	clk.Advance(30 * time.Second)
	db.TuneOnce()

	srv := httptest.NewServer(obs.NewMux(db.Handlers()))
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "lockmem_lock_pages") {
		t.Errorf("/metrics: %.200s", body)
	}
	if body := get("/debug/locks"); !strings.Contains(body, "row(2.7)") {
		t.Errorf("/debug/locks missing held lock: %.300s", body)
	}
	if body := get("/debug/events?n=5"); !strings.Contains(body, "tuning-pass") {
		t.Errorf("/debug/events: %.300s", body)
	}

	var recs []obs.Decision
	if err := json.Unmarshal([]byte(get("/debug/tuner?kind=tuning-pass")), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("decisions = %d, want 2", len(recs))
	}
	for _, rec := range recs {
		// The served inputs must reproduce the served action.
		tuner := core.NewTuner(db.cfg.Params)
		tuner.RestorePrevTarget(rec.PrevTarget)
		dec := tuner.Decide(core.Inputs{
			DatabasePages:   rec.DatabasePages,
			LockPages:       rec.LockPagesBefore,
			UsedStructs:     rec.UsedStructs,
			CapacityStructs: rec.CapacityStructs,
			NumApplications: rec.NumApps,
			Escalations:     rec.Escalations,
		})
		if dec.TargetPages != rec.TargetPages || dec.Action.String() != rec.Action {
			t.Errorf("seq %d: replay %s→%d, served %s→%d", rec.Seq, dec.Action, dec.TargetPages, rec.Action, rec.TargetPages)
		}
	}
}

func TestLiveHandlers(t *testing.T) {
	db, err := Open(Config{Clock: clock.NewSim(), LockShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = db
	h := LiveHandlers()
	var b strings.Builder
	h.Metrics(obs.NewMetricWriter(&b))
	if !strings.Contains(b.String(), "lockmem_up 1") {
		t.Errorf("live metrics: %.200s", b.String())
	}
	if Live() == nil {
		t.Fatal("Live() nil after Open")
	}
}
