package engine

import (
	"context"
	"fmt"

	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Stmt is a structured statement: the engine's stand-in for a compiled SQL
// statement. Execution chooses the locking granularity the way section 3.6
// describes — the compiler's stable lock-memory view decides between row
// locking and table locking at "compile time" (Exec entry), and the actual
// footprint is fed back to the learning extension.
type Stmt struct {
	// Class identifies the statement for the compiler's learning
	// extension (e.g. "neworder.stock", "report.scan").
	Class string
	// Table is the target table.
	Table *storage.Table
	// Rows lists point accesses; Scan describes a range instead.
	Rows []uint64
	// Scan, if non-nil, reads Count rows starting at Start, locking in
	// ChunkRows-row chunks (each chunk accounts ChunkRows structures).
	Scan *ScanRange
	// Update locks in X mode (writes); otherwise S (reads).
	Update bool
}

// ScanRange describes a range scan.
type ScanRange struct {
	Start, Count uint64
	// ChunkRows is the rows covered per lock request (default 64).
	ChunkRows int
}

// footprint returns the statement's estimated row-lock footprint.
func (s Stmt) footprint() int {
	if s.Scan != nil {
		return int(s.Scan.Count)
	}
	return len(s.Rows)
}

func (s Stmt) mode() lockmgr.Mode {
	if s.Update {
		return lockmgr.ModeX
	}
	return lockmgr.ModeS
}

// Exec runs the statement under tx. The granularity decision is made from
// the compiler's stable sqlCompilerLockMem view — not the instantaneous
// allocation — so plans stay on row locking and leave the runtime tuner
// room to avoid escalation. It returns whether row locking was used.
func (db *Database) Exec(ctx context.Context, tx *txn.Txn, s Stmt) (rowLocking bool, err error) {
	if s.Table == nil {
		return false, fmt.Errorf("engine: statement %q has no table", s.Class)
	}
	fp := s.footprint()
	rowLocking = db.comp.ChooseRowLocking(s.Class, fp)
	defer func() {
		if err == nil {
			db.comp.Observe(s.Class, fp)
		}
	}()

	if !rowLocking {
		// Table-granularity plan: one lock covers the statement.
		if err := tx.LockTable(ctx, s.Table.ID, s.mode()); err != nil {
			return false, err
		}
		db.touchSpan(s)
		return false, nil
	}

	if s.Scan != nil {
		chunk := s.Scan.ChunkRows
		if chunk <= 0 {
			chunk = 64
		}
		for off := uint64(0); off < s.Scan.Count; off += uint64(chunk) {
			n := uint64(chunk)
			if s.Scan.Count-off < n {
				n = s.Scan.Count - off
			}
			row := s.Scan.Start + off
			db.TouchRow(s.Table, row)
			if err := tx.LockRange(ctx, s.Table.ID, row, s.mode(), int(n)); err != nil {
				return true, err
			}
		}
		return true, nil
	}
	for _, row := range s.Rows {
		db.TouchRow(s.Table, row)
		if err := tx.LockRow(ctx, s.Table.ID, row, s.mode()); err != nil {
			return true, err
		}
	}
	return true, nil
}

// touchSpan simulates the page accesses of a table-granularity plan.
func (db *Database) touchSpan(s Stmt) {
	if s.Scan != nil {
		// Touch one page per 64 rows of the range (bounded).
		n := s.Scan.Count
		if n > 1<<14 {
			n = 1 << 14
		}
		for off := uint64(0); off < n; off += 64 {
			db.TouchRow(s.Table, s.Scan.Start+off)
		}
		return
	}
	for _, row := range s.Rows {
		db.TouchRow(s.Table, row)
	}
}
