package engine

import (
	"encoding/json"
	"fmt"
	"io"
)

// DiskConfig is the externalized database configuration — the counterpart
// of DB2's on-disk config that STMM writes at tuning intervals (the paper's
// LMOC, "Lock Memory On-disk Configuration", plus the externalized
// MAXLOCKS). Restarting a database from its DiskConfig resumes at the tuned
// allocation instead of re-converging from scratch.
type DiskConfig struct {
	// LockListPages is the tuned LOCKLIST size (LMOC).
	LockListPages int `json:"locklist_pages"`
	// MaxLocksPercent is the externalized lockPercentPerApplication.
	MaxLocksPercent float64 `json:"maxlocks_percent"`
	// DatabasePages records the memory set size the values were tuned
	// for.
	DatabasePages int `json:"database_pages"`
	// Policy names the lock-memory policy.
	Policy string `json:"policy"`
}

// DiskConfig returns the current externalized configuration.
func (db *Database) DiskConfig() DiskConfig {
	snap := db.Snapshot()
	return DiskConfig{
		LockListPages:   snap.LMOC,
		MaxLocksPercent: snap.QuotaPercent,
		DatabasePages:   db.cfg.DatabasePages,
		Policy:          db.cfg.Policy.String(),
	}
}

// SaveConfig writes the externalized configuration as JSON.
func (db *Database) SaveConfig(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.DiskConfig())
}

// LoadDiskConfig reads a configuration written by SaveConfig.
func LoadDiskConfig(r io.Reader) (DiskConfig, error) {
	var dc DiskConfig
	if err := json.NewDecoder(r).Decode(&dc); err != nil {
		return DiskConfig{}, fmt.Errorf("engine: decoding disk config: %w", err)
	}
	if dc.LockListPages < 0 || dc.DatabasePages < 0 {
		return DiskConfig{}, fmt.Errorf("engine: disk config has negative sizes: %+v", dc)
	}
	return dc, nil
}

// ApplyTo seeds an engine Config from the externalized values, so a restart
// begins at the tuned allocation. The database size is only adopted when
// the target config has none.
func (dc DiskConfig) ApplyTo(cfg *Config) {
	cfg.InitialLockPages = dc.LockListPages
	if cfg.DatabasePages == 0 {
		cfg.DatabasePages = dc.DatabasePages
	}
	switch dc.Policy {
	case "static":
		cfg.Policy = PolicyStatic
	case "sqlserver":
		cfg.Policy = PolicySQLServer
	case "adaptive", "":
		cfg.Policy = PolicyAdaptive
	}
}
