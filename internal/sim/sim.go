// Package sim is the discrete-time experiment driver. One tick is one
// virtual second: clients step, lock waits age, the STMM controller tunes on
// its interval (30 s in every experiment of the paper), and the metric
// series that regenerate the paper's figures are sampled.
//
// Everything is deterministic: a simulated clock, seeded client RNGs and a
// single driving goroutine.
package sim

import (
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/memblock"
	"repro/internal/metrics"
	"repro/internal/stmm"
	"repro/internal/workload"
)

// Client is a workload state machine stepped once per tick.
type Client interface {
	Step()
	SetActive(bool)
	Active() bool
	Commits() int64
}

// Event fires a callback at a given tick (e.g. injecting the DSS query).
type Event struct {
	AtTick int
	Fire   func()
}

// Config describes one experiment run.
type Config struct {
	// DB is the engine under test.
	DB *engine.Database
	// Clock must be the same simulated clock the engine was opened with.
	Clock *clock.Sim
	// Ticks is the run length in virtual seconds.
	Ticks int
	// TuneEvery is the STMM interval in ticks (default 30).
	TuneEvery int
	// DetectEvery runs deadlock detection every N ticks. The zero value
	// selects the default cadence (5); DetectDisabled (or any negative
	// value) disables the detector entirely — a configured 0 used to be
	// indistinguishable from "unset" and silently re-enabled it.
	DetectEvery int
	// Clients is the OLTP client pool; the Schedule activates a prefix.
	Clients []Client
	// Schedule sets the number of active clients over time (nil keeps
	// all clients active).
	Schedule workload.Schedule
	// Standalone clients are stepped every tick but not governed by the
	// Schedule (e.g. the injected DSS query; activate it via an Event).
	Standalone []Client
	// Events fire at specific ticks.
	Events []Event
	// SampleEvery thins the recorded series (default 1 = every tick).
	SampleEvery int
}

// DetectDisabled disables periodic deadlock detection when assigned to
// Config.DetectEvery (lock waits then end only by timeout). Distinct from
// the zero value, which means "unset" and selects the default cadence.
const DetectDisabled = -1

// defaultDetectEvery is the detector cadence when Config.DetectEvery is
// unset (zero).
const defaultDetectEvery = 5

// effectiveDetectEvery maps a configured DetectEvery to the cadence the run
// loop uses: 0 (unset) → the default, negative (DetectDisabled) → 0 (never
// detect), positive → itself.
func effectiveDetectEvery(configured int) int {
	switch {
	case configured == 0:
		return defaultDetectEvery
	case configured < 0:
		return 0
	default:
		return configured
	}
}

// VolatileSeries names the captured series whose values derive from wall
// clocks rather than simulated time ("global stall" is the max all-shard
// latch hold, measured in real microseconds; "admission p99" is the sampled
// AcquireAsync wall-clock latency). Determinism tests exclude exactly these
// via Set.CSVExcluding; every simulated-time series — including the lock-wait
// quantiles, which are recorded on the engine clock — remains byte-for-byte
// reproducible.
var VolatileSeries = []string{"global stall", "admission p99"}

// Result carries the captured series and end-state.
type Result struct {
	Series  *metrics.Set
	Final   engine.Snapshot
	Reports []stmm.Report
	// TotalCommits is the committed transaction count across clients.
	TotalCommits int64
}

// Throughput returns the mean throughput (tx/s) between two times.
func (r *Result) Throughput(fromSec, toSec float64) float64 {
	s := r.Series.Get("throughput")
	if s == nil {
		return 0
	}
	return s.MeanBetween(fromSec, toSec)
}

// Run executes the experiment.
func Run(cfg Config) *Result {
	if cfg.TuneEvery <= 0 {
		cfg.TuneEvery = 30
	}
	detectEvery := effectiveDetectEvery(cfg.DetectEvery)
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}

	set := metrics.NewSet()
	lockPages := set.Series("lock memory", "pages")
	usedPages := set.Series("lock memory used", "pages")
	throughput := set.Series("throughput", "tx/s")
	escalations := set.Series("escalations", "count")
	activeClients := set.Series("active clients", "clients")
	quota := set.Series("lockPercentPerApplication", "%")
	overflow := set.Series("overflow", "pages")
	bufferPool := set.Series("bufferpool", "pages")
	latchWaits := set.Series("latch waits", "count")
	globalRuns := set.Series("global latch runs", "count")
	fastHits := set.Series("fast-path hits", "count")
	fastFallbacks := set.Series("fast-path fallbacks", "count")
	// Optimistic token counts advance deterministically under the sim's
	// single-goroutine tick loop (token issue and validation are pure
	// functions of lock-table state), so neither series is volatile.
	optHits := set.Series("optimistic hits", "count")
	optFailures := set.Series("optimistic failures", "count")
	// Group-release counters advance deterministically under the sim's
	// single-goroutine tick loop: with one goroutine the commit path never
	// loses a TryLock, so every batch applies on the direct visit and the
	// follower-wait series stays zero — a property the determinism test
	// pins down.
	relBatches := set.Series("release batches", "count")
	wakesCoalesced := set.Series("wakeups coalesced", "count")
	flushFollowers := set.Series("flush follower waits", "count")
	// Spin-then-park latch outcomes advance deterministically for the same
	// reason: one goroutine never contends a shard latch, so all three
	// series stay zero under the sim — the determinism test pins that the
	// latch swap adds no contention of its own to the single-threaded path.
	latchSpins := set.Series("latch spins", "count")
	latchParks := set.Series("latch parks", "count")
	latchHandoffs := set.Series("latch handoffs", "count")
	globalStall := set.Series("global stall", "µs")
	// Lock-wait quantiles come from the engine-clock histogram, so they are
	// deterministic; admission latency is sampled wall clock → volatile.
	waitP95 := set.Series("lock wait p95", "ms")
	waitP99 := set.Series("lock wait p99", "ms")
	// Commit-release latency is stamped on the engine clock too (the sim
	// clock never advances inside a ReleaseAll), so the series is
	// deterministic — all zeros under the fake clock, real latencies live.
	releaseP99 := set.Series("lock release p99", "ms")
	admitP99 := set.Series("admission p99", "µs")
	// Hot-lock blame sums the contention profiler's decayed sketch scores.
	// Wait blame is stamped on the engine clock and event blame is a fixed
	// charge, so under the fake clock the series is byte-deterministic —
	// the determinism test pins the profiler's attribution itself.
	hotBlame := set.Series("hot-lock blame", "ms")
	// Admission-throttle series. Cull/reactivation counts are driven by
	// latched queue state and the deterministic sweep cadence, and the
	// ceiling by RetuneThrottle on the tuner cadence reading engine-clock
	// signals — all deterministic under the fake clock (a single-goroutine
	// sim rarely saturates, so these typically pin at zero).
	throtCulled := set.Series("throttle culled", "count")
	throtReact := set.Series("throttle reactivated", "count")
	throtCeiling := set.Series("throttle ceiling", "waiters")

	res := &Result{Series: set}
	var lastCommits int64
	eventIdx := 0
	events := cfg.Events

	for tick := 0; tick < cfg.Ticks; tick++ {
		now := float64(tick)
		cfg.Clock.Advance(time.Second)

		for eventIdx < len(events) && events[eventIdx].AtTick <= tick {
			events[eventIdx].Fire()
			eventIdx++
		}

		// Apply the activation schedule to the client pool prefix.
		if cfg.Schedule != nil {
			want := cfg.Schedule(now)
			if want > len(cfg.Clients) {
				want = len(cfg.Clients)
			}
			for i, c := range cfg.Clients {
				c.SetActive(i < want)
			}
		}

		// Step everyone — inactive clients no-op, draining clients
		// finish and disconnect.
		for _, c := range cfg.Clients {
			c.Step()
		}
		for _, c := range cfg.Standalone {
			c.Step()
		}

		cfg.DB.Locks().SweepTimeouts()
		if detectEvery > 0 && tick%detectEvery == 0 {
			cfg.DB.Locks().DetectDeadlocks()
		}
		// Same decay epoch the engine's Tick runs: deterministic, since it
		// is keyed to the tick counter, not any clock.
		if (tick+1)%64 == 0 {
			cfg.DB.Locks().DecayHotLocks()
		}
		if (tick+1)%cfg.TuneEvery == 0 {
			if rep, ok := cfg.DB.TuneOnce(); ok {
				res.Reports = append(res.Reports, rep)
			}
		}

		// Sample.
		if tick%cfg.SampleEvery == 0 {
			snap := cfg.DB.Snapshot()
			var commits int64
			active := 0
			for _, c := range cfg.Clients {
				commits += c.Commits()
				if c.Active() {
					active++
				}
			}
			for _, c := range cfg.Standalone {
				commits += c.Commits()
				if c.Active() {
					active++
				}
			}
			lockPages.Record(now, float64(snap.LockPages))
			usedPages.Record(now, float64((snap.UsedStructs+memblock.StructsPerPage-1)/memblock.StructsPerPage))
			throughput.Record(now, float64(commits-lastCommits)/float64(cfg.SampleEvery))
			lastCommits = commits
			escalations.Record(now, float64(snap.LockStats.Escalations))
			activeClients.Record(now, float64(active))
			quota.Record(now, snap.QuotaPercent)
			overflow.Record(now, float64(snap.Overflow))
			bufferPool.Record(now, float64(snap.BufferPoolPages))
			latchWaits.Record(now, float64(snap.LockLatchWaits))
			globalRuns.Record(now, float64(snap.LockGlobalRuns))
			fastHits.Record(now, float64(snap.LockFastPathHits))
			fastFallbacks.Record(now, float64(snap.LockFastPathFallbacks))
			optHits.Record(now, float64(snap.LockOptimisticHits))
			optFailures.Record(now, float64(snap.LockOptimisticFailures))
			relBatches.Record(now, float64(snap.LockReleaseBatches))
			wakesCoalesced.Record(now, float64(snap.LockWakeupsCoalesced))
			flushFollowers.Record(now, float64(snap.LockFlushFollowerWaits))
			latchSpins.Record(now, float64(snap.LockLatchSpins))
			latchParks.Record(now, float64(snap.LockLatchParks))
			latchHandoffs.Record(now, float64(snap.LockLatchHandoffs))
			throtCulled.Record(now, float64(snap.LockThrottleCulled))
			throtReact.Record(now, float64(snap.LockThrottleReactivated))
			throtCeiling.Record(now, float64(snap.LockThrottleCeiling))
			globalStall.Record(now, float64(snap.LockGlobalHoldMax)/1e3)
			ws := cfg.DB.Locks().WaitHist().Snapshot()
			waitP95.Record(now, ws.Quantile(0.95)/1e6)
			waitP99.Record(now, ws.Quantile(0.99)/1e6)
			releaseP99.Record(now, cfg.DB.Locks().ReleaseHist().Snapshot().Quantile(0.99)/1e6)
			admitP99.Record(now, cfg.DB.Locks().AdmissionHist().Snapshot().Quantile(0.99)/1e3)
			hotBlame.Record(now, float64(cfg.DB.Locks().HotLockBlameNs())/1e6)
		}
	}

	res.Final = cfg.DB.Snapshot()
	for _, c := range cfg.Clients {
		res.TotalCommits += c.Commits()
	}
	for _, c := range cfg.Standalone {
		res.TotalCommits += c.Commits()
	}
	return res
}
