package sim

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/workload"
)

func newSimDB(t *testing.T) (*engine.Database, *clock.Sim) {
	t.Helper()
	clk := clock.NewSim()
	db, err := engine.Open(engine.Config{Clock: clk, LockTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return db, clk
}

func pool(db *engine.Database, n int) []Client {
	prof := workload.DefaultOLTPProfile(db.Catalog())
	out := make([]Client, n)
	for i := range out {
		out[i] = workload.NewOLTP(db, prof, int64(i))
	}
	return out
}

func TestRunAdvancesClockAndSamples(t *testing.T) {
	db, clk := newSimDB(t)
	res := Run(Config{
		DB:       db,
		Clock:    clk,
		Ticks:    100,
		Clients:  pool(db, 5),
		Schedule: workload.Constant(5),
	})
	if got := clk.Elapsed(); got != 100*time.Second {
		t.Fatalf("clock advanced %v, want 100s", got)
	}
	for _, name := range []string{"lock memory", "throughput", "escalations", "active clients"} {
		s := res.Series.Get(name)
		if s == nil || s.Len() != 100 {
			t.Fatalf("series %q missing or wrong length", name)
		}
	}
	if res.TotalCommits == 0 {
		t.Fatal("no commits")
	}
	if res.Final.NumApps != 5 {
		t.Fatalf("final apps = %d", res.Final.NumApps)
	}
}

func TestRunTunesOnInterval(t *testing.T) {
	db, clk := newSimDB(t)
	res := Run(Config{
		DB:        db,
		Clock:     clk,
		Ticks:     90,
		TuneEvery: 30,
		Clients:   pool(db, 3),
		Schedule:  workload.Constant(3),
	})
	if got := len(res.Reports); got != 3 {
		t.Fatalf("tuning reports = %d, want 3", got)
	}
}

func TestRunScheduleActivatesPrefix(t *testing.T) {
	db, clk := newSimDB(t)
	res := Run(Config{
		DB:       db,
		Clock:    clk,
		Ticks:    200,
		Clients:  pool(db, 10),
		Schedule: workload.Step(2, 10, 100),
	})
	ac := res.Series.Get("active clients")
	if got := ac.ValueAt(50); got != 2 {
		t.Fatalf("active at t=50 = %g, want 2", got)
	}
	if got := ac.ValueAt(150); got != 10 {
		t.Fatalf("active at t=150 = %g, want 10", got)
	}
}

func TestRunEventsFire(t *testing.T) {
	db, clk := newSimDB(t)
	fired := -1
	Run(Config{
		DB:      db,
		Clock:   clk,
		Ticks:   50,
		Clients: pool(db, 1),
		Events: []Event{
			{AtTick: 20, Fire: func() { fired = 20 }},
		},
	})
	if fired != 20 {
		t.Fatalf("event fired = %d", fired)
	}
}

func TestRunSampleEveryThins(t *testing.T) {
	db, clk := newSimDB(t)
	res := Run(Config{
		DB:          db,
		Clock:       clk,
		Ticks:       100,
		SampleEvery: 10,
		Clients:     pool(db, 2),
		Schedule:    workload.Constant(2),
	})
	if got := res.Series.Get("lock memory").Len(); got != 10 {
		t.Fatalf("samples = %d, want 10", got)
	}
}

func TestThroughputHelper(t *testing.T) {
	db, clk := newSimDB(t)
	res := Run(Config{
		DB:       db,
		Clock:    clk,
		Ticks:    200,
		Clients:  pool(db, 5),
		Schedule: workload.Constant(5),
	})
	if got := res.Throughput(50, 200); got <= 0 {
		t.Fatalf("throughput = %g", got)
	}
	empty := &Result{Series: res.Series}
	_ = empty
	none := &Result{}
	if (&Result{Series: nil}) == none {
		t.Skip()
	}
}

func TestStandaloneClientsStepOutsideSchedule(t *testing.T) {
	db, clk := newSimDB(t)
	dss := workload.NewDSS(db, workload.DSSProfile{
		Table:         db.Catalog().ByName("lineitem"),
		ChunkRows:     64,
		Chunks:        20,
		ChunksPerTick: 5,
		HoldTicks:     2,
	})
	Run(Config{
		DB:         db,
		Clock:      clk,
		Ticks:      60,
		Clients:    pool(db, 2),
		Schedule:   workload.Constant(0), // schedule must NOT govern the DSS
		Standalone: []Client{dss},
		Events:     []Event{{AtTick: 5, Fire: func() { dss.SetActive(true) }}},
	})
	if !dss.Done() {
		t.Fatal("standalone DSS did not run")
	}
}

// TestRunIsDeterministic: identical configurations produce byte-identical
// series — the property that makes every figure reproducible.
func TestRunIsDeterministic(t *testing.T) {
	run := func() string {
		db, clk := newSimDB(t)
		prof := workload.DefaultOLTPProfile(db.Catalog())
		clients := make([]Client, 20)
		for i := range clients {
			clients[i] = workload.NewOLTP(db, prof, int64(i+1))
		}
		res := Run(Config{
			DB:       db,
			Clock:    clk,
			Ticks:    300,
			Clients:  clients,
			Schedule: workload.Ramp(1, 20, 0, 100),
		})
		// The "global stall" series is a wall-clock measurement (max
		// all-shard latch hold in real µs) and is legitimately different
		// run to run; every simulated-time series must still match byte
		// for byte.
		return res.Series.CSVExcluding(VolatileSeries...)
	}
	if a, b := run(), run(); a != b {
		t.Fatal("identical runs diverged")
	}
}

// TestDetectEveryConfig: a configured DetectDisabled must genuinely disable
// the detector, a zero value must select the default cadence, and a
// positive value must be honored as-is. (A configured 0 used to collapse
// into the default, so "disabled" was impossible to express.)
func TestDetectEveryConfig(t *testing.T) {
	cases := []struct {
		configured, want int
	}{
		{0, 5},
		{DetectDisabled, 0},
		{-7, 0},
		{1, 1},
		{30, 30},
	}
	for _, c := range cases {
		if got := effectiveDetectEvery(c.configured); got != c.want {
			t.Errorf("effectiveDetectEvery(%d) = %d, want %d", c.configured, got, c.want)
		}
	}
}

// TestDetectDisabledRunsNoDetection drives a run with the detector disabled
// and verifies no deadlock victims are produced even though detection at
// the default cadence is exercised by every other test in this package.
// With the concurrent detector, detection never takes the all-shard latch,
// so LockGlobalRuns must also stay flat between detector-on and -off runs
// (global sections come only from admission-of-last-resort, which this
// light workload never triggers).
func TestDetectDisabledRunsNoDetection(t *testing.T) {
	run := func(detectEvery int) engine.Snapshot {
		db, clk := newSimDB(t)
		res := Run(Config{
			DB:          db,
			Clock:       clk,
			Ticks:       100,
			DetectEvery: detectEvery,
			Clients:     pool(db, 5),
			Schedule:    workload.Constant(5),
		})
		return res.Final
	}
	on, off := run(1), run(DetectDisabled)
	if on.LockGlobalRuns != off.LockGlobalRuns {
		t.Errorf("global latch runs differ with detector on/off: %d vs %d — detection touched the all-shard latch",
			on.LockGlobalRuns, off.LockGlobalRuns)
	}
	_ = off.LockStats.Deadlocks // disabled detector cannot claim victims
	if off.LockStats.Deadlocks != 0 {
		t.Errorf("detector disabled but %d deadlock victims denied", off.LockStats.Deadlocks)
	}
}
