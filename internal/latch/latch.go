// Package latch implements the lock table's shard latch: an instrumented
// spin-then-park latch whose spin budget is tuned per instance from
// observed hold times and spin outcomes, replacing the stock sync.Mutex
// (which parks on first contention and makes every short-hold latched
// section pay a futex round trip).
//
// The design follows Nikolaev's Oracle latch/spinlock studies: any fixed
// spin count is wrong for some workload, so the right budget falls out of
// the hold-time distribution — a latch whose critical sections run shorter
// than the cost of a park/unpark should be spun on, one whose holds exceed
// it should be parked on immediately. Each Latch therefore carries:
//
//   - a packed atomic word: bit 0 is the lock bit, bits 1..24 count active
//     spinners, bits 25..48 count parked (or parking) waiters. Acquires
//     are a single CAS on the uncontended path; Unlock is a single atomic
//     add that reads the waiter count from its own return value, so the
//     no-waiter unlock touches no mutex;
//   - a spin budget in [0, BudgetCap], either fixed (the experimental
//     control) or retuned every TuneStride contended acquires from the
//     hold-time EWMA (fed by NoteHold from the owner's sampled
//     instrumentation) and the spin success rate of the last window;
//   - Nikolaev's retrial guards for adaptive mode: the budget is ignored
//     when GOMAXPROCS==1 (spinning can never observe a release: the
//     holder needs this P) or when the process-wide spinner count already
//     matches the P count (extra spinners burn cycles the holders need);
//   - a sync.Mutex + sync.Cond slow path for parking, with the classic
//     publish-then-recheck protocol: a waiter raises its waiter bit
//     before checking the lock bit under the mutex, an unlocker clears
//     the lock bit before reading the waiter count, and both operations
//     are seq-cst atomics on the same word — whichever side loses the
//     total order sees the other, so wakeups cannot be lost. Handoff
//     signals are deduped (wakePending) and gated on waiters actually
//     inside cond.Wait (parked), so an unlock storm issues one wakeup
//     per wake cycle instead of re-signalling a waiter the scheduler
//     has not yet run.
//
// State diagram of one contended acquire:
//
//	fast CAS fails
//	      │
//	      ▼
//	 [spin phase]  budget > 0 and guards pass: bounded retries with
//	      │        PAUSE-style backoff, yielding the P every
//	      │        goschedStride-th retry
//	      ├─ lock bit observed clear, CAS wins ──► acquired (spin hit)
//	      ▼ budget exhausted (or spin skipped)
//	 [park phase]  waiter count raised; lock bit rechecked under the
//	      │        mutex; cond.Wait until an unlock signals
//	      └─ woken, CAS wins ──► acquired (park)
//
// Tuning decisions are pure: TuneBudget maps (current budget, hold EWMA,
// spin window, P count) to the next budget, so the controller is unit
// testable without goroutines or clocks.
package latch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Packed word layout. 24-bit spinner and waiter fields cannot saturate:
// both are bounded by live goroutines, and the runtime falls over long
// before 16M of them block on one shard latch.
const (
	lockedBit   uint64 = 1
	spinnerOne  uint64 = 1 << 1
	spinnerMask uint64 = (1<<24 - 1) << 1
	waiterOne   uint64 = 1 << 25
	waiterMask  uint64 = (1<<24 - 1) << 25
)

// Two's-complement decrements for the packed fields.
const (
	negLocked  = ^(lockedBit - 1)  // -1: clears a set lock bit
	negSpinner = ^(spinnerOne - 1) // -spinnerOne
	negWaiter  = ^(waiterOne - 1)  // -waiterOne
)

// Controller parameters. All are compile-time constants so TuneBudget is a
// pure function of its arguments.
const (
	// BudgetCap bounds any spin budget: past it a hold is long enough
	// that parking is always cheaper than the wasted cycles.
	BudgetCap = 128
	// DefaultBudget is the adaptive controller's cold-start budget,
	// active until the first retune window accumulates evidence.
	DefaultBudget = 32
	// MinBudget is the smallest nonzero budget the hold-time rule emits:
	// fewer retries than this cannot cover even a back-to-back release.
	MinBudget = 4
	// TuneStride is how many contended acquires elapse between retunes
	// (power of two; the trigger is a mask test on the contended count).
	TuneStride = 128
	// SpinUnitNs approximates the cost of one spin retry (a PAUSE-style
	// backoff iteration plus the word reload), calibrated for current
	// x86/arm server cores. The hold-time rule divides by it: a latch
	// whose holds run H ns deserves about H/SpinUnitNs retries.
	SpinUnitNs = 40
	// ParkThresholdNs is the hold-time EWMA above which spinning never
	// repays: at ~4 µs of expected wait the futex round trip is cheaper
	// than the burned cycles, so the budget collapses to zero.
	ParkThresholdNs = 4096
	// tuneMinEvidence is the minimum spin attempts in a window before
	// the success-rate term may modulate the budget.
	tuneMinEvidence = 8
	// goschedStride: every goschedStride-th spin retry yields the P
	// instead of pausing, so a budgeted spinner cannot starve runnable
	// goroutines (the holder included) on an oversubscribed machine.
	goschedStride = 16
	// pauseIters sizes the PAUSE-style busy loop of one spin retry.
	pauseIters = 16
)

// globalSpinners is the process-wide count of goroutines currently inside
// an adaptive spin phase — the input to Nikolaev's retrial rule: once
// spinners match the P count, further spinning only steals cycles from the
// latch holders, so late arrivals park immediately.
var globalSpinners atomic.Int32

// procs caches runtime.GOMAXPROCS(0); refreshed by UpdateProcs on every
// retune so the guards track runtime changes without a runtime call per
// contended acquire.
var procs atomic.Int32

func init() { procs.Store(int32(runtime.GOMAXPROCS(0))) }

// UpdateProcs re-reads GOMAXPROCS into the package cache and returns it.
func UpdateProcs() int {
	p := runtime.GOMAXPROCS(0)
	procs.Store(int32(p))
	return p
}

// pause burns roughly SpinUnitNs of CPU without touching shared memory —
// the portable stand-in for a PAUSE/YIELD instruction. noinline so the
// loop (and the call) survive optimization.
//
//go:noinline
func pause() uint64 {
	acc := uint64(pauseIters)
	for i := 0; i < pauseIters; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}

// Latch is one adaptive spin-then-park latch. The zero value is not ready
// for use: call Init first (and SetFixedBudget / OnTune, if wanted) before
// the latch is shared. All other methods are safe for concurrent use.
type Latch struct {
	word atomic.Uint64

	// budget is the current spin budget; fixed pins it (SetFixedBudget),
	// which also bypasses the GOMAXPROCS/global-spinner guards so fixed
	// budgets measure exactly what they say — the experimental control
	// for the adaptive controller's A/B runs.
	budget atomic.Int32
	fixed  atomic.Bool

	// holdEwma is the EWMA (÷8) of sampled hold times fed by NoteHold.
	// Updated with a racy load/store pair: a lost update skews the
	// average by one sample, which the controller tolerates.
	holdEwma atomic.Int64

	// Stats. contended counts every acquire that found the latch held
	// (failed fast CAS entering the slow path, or failed TryLock) — the
	// one definition of "contended" shared by the spin controller and
	// the lock manager's commit-storm hysteresis. spinHits counts slow
	// acquires won in the spin phase, parks those that blocked on the
	// cond, handoffs the unlocks that signalled a parked waiter.
	contended atomic.Uint64
	spinHits  atomic.Uint64
	parks     atomic.Uint64
	handoffs  atomic.Uint64

	// waitNs accumulates the exact wall-clock nanoseconds contended
	// acquires spent in the slow path — the numerator of the mean
	// contended wait the A/B benchmarks compare (the latch profile's
	// histogram quantizes to power-of-two buckets, too coarse for a
	// 20% comparison over few events).
	waitNs atomic.Int64

	// Spin-outcome window for the success-rate term, reset each retune.
	winTries atomic.Uint32
	winWins  atomic.Uint32

	// onTune, if set, observes every budget change the adaptive
	// controller makes. It runs on the acquiring goroutine immediately
	// after the latch is taken, so it must be a leaf (the lock manager
	// appends to its decision log, whose Add takes only its own mutex).
	onTune func(old, new int, holdNs int64, tries, wins int)

	mu   sync.Mutex
	cond sync.Cond
	// parked, guarded by mu, counts waiters inside cond.Wait — the only
	// waiters a Signal can reach. Unlock gates on it rather than the
	// word's waiter count: a waiter between its word increment and
	// cond.Wait would let a Signal evaporate.
	parked int
	// wakePending, guarded by mu, dedups handoff signals: once an unlock
	// has signalled a parked waiter, further unlocks stay silent until
	// that wakeup lands (the woken waiter clears the flag). Without it,
	// every unlock during the waiter's scheduling delay re-signals — on
	// an oversubscribed box that is thousands of futile wakeups per park,
	// each one re-running the waiter just to lose the race again.
	wakePending bool
}

// Init prepares the latch (condition binding, cold-start budget). Must be
// called exactly once, before the latch is shared.
func (l *Latch) Init() {
	l.cond.L = &l.mu
	l.budget.Store(DefaultBudget)
}

// OnTune registers a callback observing adaptive budget changes
// (old, new, hold EWMA, window tries, window wins). Must be set before the
// latch is shared; the callback must not acquire this latch.
func (l *Latch) OnTune(f func(old, new int, holdNs int64, tries, wins int)) {
	l.onTune = f
}

// SetFixedBudget pins the spin budget to n (clamped to [0, BudgetCap]) and
// disables the adaptive controller and its retrial guards.
func (l *Latch) SetFixedBudget(n int) {
	l.fixed.Store(true)
	l.budget.Store(int32(clampBudget(n)))
}

// SetBudget sets the current budget (clamped) without leaving adaptive
// mode. Exposed for tests and manual overrides.
func (l *Latch) SetBudget(n int) { l.budget.Store(int32(clampBudget(n))) }

// Budget returns the current spin budget.
func (l *Latch) Budget() int { return int(l.budget.Load()) }

// Fixed reports whether the budget is pinned (SetFixedBudget).
func (l *Latch) Fixed() bool { return l.fixed.Load() }

// HoldEwmaNs returns the current hold-time EWMA in nanoseconds.
func (l *Latch) HoldEwmaNs() int64 { return l.holdEwma.Load() }

// Contended returns how many acquires found the latch held (slow-path
// entries plus failed TryLocks).
func (l *Latch) Contended() uint64 { return l.contended.Load() }

// SpinHits returns how many contended acquires were won by spinning.
func (l *Latch) SpinHits() uint64 { return l.spinHits.Load() }

// Parks returns how many contended acquires parked on the condition.
func (l *Latch) Parks() uint64 { return l.parks.Load() }

// Handoffs returns how many unlocks signalled a parked waiter.
func (l *Latch) Handoffs() uint64 { return l.handoffs.Load() }

// WaitNs returns the total wall-clock nanoseconds contended acquires have
// spent in the slow path; WaitNs()/Contended() is the exact mean contended
// wait (TryLock failures contribute zero wait).
func (l *Latch) WaitNs() int64 { return l.waitNs.Load() }

func clampBudget(n int) int {
	if n < 0 {
		return 0
	}
	if n > BudgetCap {
		return BudgetCap
	}
	return n
}

// TryLock acquires the latch if it is free, without blocking. A failed
// attempt counts as one contended acquire — the same signal a slow-path
// entry emits, so hysteresis built on TryLock failures and the spin
// controller see the same definition of contention.
func (l *Latch) TryLock() bool {
	for {
		w := l.word.Load()
		if w&lockedBit != 0 {
			l.contended.Add(1)
			return false
		}
		if l.word.CompareAndSwap(w, w|lockedBit) {
			return true
		}
	}
}

// Lock acquires the latch, reporting whether the acquire was contended
// (found the latch held and took the slow path).
func (l *Latch) Lock() (contended bool) {
	if l.word.CompareAndSwap(0, lockedBit) {
		return false
	}
	if w := l.word.Load(); w&lockedBit == 0 && l.word.CompareAndSwap(w, w|lockedBit) {
		return false
	}
	l.lockSlow()
	return true
}

// LockProfiled is Lock plus the wall-clock nanoseconds a contended acquire
// spent in the slow path (spin plus park); the uncontended CAS pays no
// extra work over Lock.
func (l *Latch) LockProfiled() (waitNs int64, contended bool) {
	if l.word.CompareAndSwap(0, lockedBit) {
		return 0, false
	}
	if w := l.word.Load(); w&lockedBit == 0 && l.word.CompareAndSwap(w, w|lockedBit) {
		return 0, false
	}
	return l.lockSlow(), true
}

// lockSlow is the contended acquire: bounded spin, then park. The slow
// path is timed (contended acquires are rare, so the two clock reads stay
// off every fast path) and the exact wait accumulates in waitNs. Retunes
// the budget every TuneStride contended acquires (adaptive mode only),
// after the latch is held — the tune itself is off the critical acquire
// path.
func (l *Latch) lockSlow() int64 {
	c := l.contended.Add(1)
	t0 := time.Now()
	if !l.trySpin() {
		l.park()
	}
	ns := time.Since(t0).Nanoseconds()
	l.waitNs.Add(ns)
	if c&(TuneStride-1) == 0 && !l.fixed.Load() {
		l.Retune(UpdateProcs())
	}
	return ns
}

// trySpin runs the bounded spin phase; it reports whether it acquired the
// latch. Adaptive mode applies the retrial guards (single P, or spinners
// already matching the P count → don't spin); fixed mode always spends its
// budget.
func (l *Latch) trySpin() bool {
	budget := int(l.budget.Load())
	if budget <= 0 {
		return false
	}
	if !l.fixed.Load() {
		p := procs.Load()
		if p <= 1 {
			return false
		}
		if g := globalSpinners.Add(1); g > p {
			globalSpinners.Add(-1)
			return false
		}
	} else {
		globalSpinners.Add(1)
	}
	l.word.Add(spinnerOne)
	acquired := false
	for i := 0; i < budget; i++ {
		w := l.word.Load()
		if w&lockedBit == 0 {
			if l.word.CompareAndSwap(w, (w+negSpinner)|lockedBit) {
				acquired = true
				break
			}
			continue // CAS raced with another field update; reload
		}
		if i%goschedStride == goschedStride-1 {
			runtime.Gosched()
		} else {
			pause()
		}
	}
	if !acquired {
		l.word.Add(negSpinner)
	}
	globalSpinners.Add(-1)
	l.winTries.Add(1)
	if acquired {
		l.winWins.Add(1)
		l.spinHits.Add(1)
	}
	return acquired
}

// park blocks until the latch is acquired. The waiter bit is raised before
// the under-mutex recheck; see the package comment for why that ordering,
// against Unlock's clear-then-read, cannot lose a wakeup.
func (l *Latch) park() {
	// Yield tier: one cooperative Gosched before the condition-variable
	// round trip. On a saturated P the holder cannot release until it runs
	// again — and on GOMAXPROCS=1 yielding is the only thing that lets it —
	// so a recheck after one scheduler rotation often catches the release
	// and skips both the park and the wakeup requeue latency a signalled
	// waiter pays. The win counts as a spin hit (contended acquire, no
	// park) but stays out of the winTries/winWins window: the budget
	// controller's success rate must reflect budgeted spinning only.
	runtime.Gosched()
	for {
		w := l.word.Load()
		if w&lockedBit != 0 {
			break
		}
		if l.word.CompareAndSwap(w, w|lockedBit) {
			l.spinHits.Add(1)
			return
		}
	}
	l.parks.Add(1)
	l.word.Add(waiterOne)
	l.mu.Lock()
	for {
		w := l.word.Load()
		if w&lockedBit == 0 {
			// Consume any outstanding wake credit: whether this waiter got
			// here via a signal or by observing the free bit on its own
			// recheck, the credit has done its job and the next unlock
			// with parked waiters must signal again.
			l.wakePending = false
			if l.word.CompareAndSwap(w, (w+negWaiter)|lockedBit) {
				break
			}
			continue
		}
		l.parked++
		l.cond.Wait()
		l.parked--
		// The wakeup has landed: re-arm signalling before re-checking, so
		// that if the acquire below loses to a thief, the thief's unlock
		// signals afresh.
		l.wakePending = false
	}
	l.mu.Unlock()
}

// Unlock releases the latch. With no parked waiters it is a single atomic
// add; otherwise it signals one waiter under the park mutex (the handoff)
// — unless a previous signal is still in flight (wakePending), in which
// case the woken waiter will re-check the now-free lock bit itself. The
// parked count (not the word's waiter count) gates the signal: a waiter
// that has raised its word bit but not yet reached cond.Wait would miss a
// Signal entirely, stranding the wake credit — such a waiter needs no
// signal anyway, since its under-mutex recheck sees the freed bit.
// Spinners need no signal — they observe the cleared lock bit directly.
func (l *Latch) Unlock() {
	w := l.word.Add(negLocked)
	if w&waiterMask != 0 {
		l.mu.Lock()
		if l.parked > 0 && !l.wakePending {
			l.wakePending = true
			l.handoffs.Add(1)
			l.cond.Signal()
		}
		l.mu.Unlock()
	}
}

// NoteHold feeds one sampled hold duration into the hold-time EWMA. The
// caller owns the sampling policy (the lock manager reuses its existing
// 1-in-stride latch-profile stamp, so no clock reads are added to any fast
// path). The load/store pair is deliberately racy: concurrent samples may
// drop one update, which only delays convergence by a sample.
func (l *Latch) NoteHold(ns int64) {
	if ns < 0 {
		return
	}
	old := l.holdEwma.Load()
	if old == 0 {
		l.holdEwma.Store(ns)
		return
	}
	l.holdEwma.Store(old - old/8 + ns/8)
}

// Retune recomputes the spin budget from the current hold EWMA and the
// spin-outcome window (which it consumes), given the P count. No-op in
// fixed mode or when the computed budget equals the current one; otherwise
// the change is published and reported to the OnTune observer.
func (l *Latch) Retune(p int) {
	if l.fixed.Load() {
		return
	}
	old := int(l.budget.Load())
	hold := l.holdEwma.Load()
	tries := int(l.winTries.Swap(0))
	wins := int(l.winWins.Swap(0))
	next := TuneBudget(old, hold, tries, wins, p)
	if next == old {
		return
	}
	l.budget.Store(int32(next))
	if f := l.onTune; f != nil {
		f(old, next, hold, tries, wins)
	}
}

// TuneBudget is the pure budget rule: given the current budget, the
// hold-time EWMA, the last window's spin outcomes and the P count, return
// the next spin budget.
//
//   - procs ≤ 1 → 0: on a single P the holder cannot run while anyone
//     spins, so every retry is a wasted slice (Nikolaev's degenerate case).
//   - holdNs > ParkThresholdNs → 0: holds this long never repay spinning.
//   - otherwise the hold-time rule sets the target at holdNs/SpinUnitNs
//     retries (at least MinBudget), i.e. just enough spinning to cover an
//     expected release; with no hold signal the current budget carries.
//   - the success-rate term then modulates AIMD-style once the window has
//     tuneMinEvidence attempts: under 25% spin success halves the target
//     (contenders are queueing, not racing a short hold), 75% or better
//     grows it by half — bounded by BudgetCap.
//
// The rule is monotone in holdNs on (0, ParkThresholdNs] for a fixed
// window, which the unit tests pin down.
func TuneBudget(cur int, holdNs int64, tries, wins, procs int) int {
	if procs <= 1 {
		return 0
	}
	if holdNs > ParkThresholdNs {
		return 0
	}
	target := cur
	if holdNs > 0 {
		target = int(holdNs / SpinUnitNs)
		if target < MinBudget {
			target = MinBudget
		}
	}
	if tries >= tuneMinEvidence {
		if wins*4 < tries {
			target /= 2
		} else if wins*4 >= tries*3 {
			target += target/2 + 1
		}
	}
	return clampBudget(target)
}
