package latch

import (
	"sync"
	"testing"
	"time"
)

func newLatch() *Latch {
	var l Latch
	l.Init()
	return &l
}

func TestTryLockBasics(t *testing.T) {
	l := newLatch()
	if !l.TryLock() {
		t.Fatal("TryLock on a free latch failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on a held latch succeeded")
	}
	if got := l.Contended(); got != 1 {
		t.Fatalf("failed TryLock should count one contended acquire, got %d", got)
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestLockUncontended(t *testing.T) {
	l := newLatch()
	if contended := l.Lock(); contended {
		t.Fatal("uncontended Lock reported contended")
	}
	l.Unlock()
	if waitNs, contended := l.LockProfiled(); contended || waitNs != 0 {
		t.Fatalf("uncontended LockProfiled reported (%d, %v)", waitNs, contended)
	}
	l.Unlock()
	if got := l.Contended(); got != 0 {
		t.Fatalf("uncontended acquires counted %d contended", got)
	}
}

func TestLockProfiledContended(t *testing.T) {
	l := newLatch()
	l.Lock()
	done := make(chan int64)
	go func() {
		waitNs, contended := l.LockProfiled()
		if !contended {
			t.Error("contended LockProfiled reported uncontended")
		}
		l.Unlock()
		done <- waitNs
	}()
	time.Sleep(2 * time.Millisecond)
	l.Unlock()
	if waitNs := <-done; waitNs <= 0 {
		t.Fatalf("contended LockProfiled measured %d ns", waitNs)
	}
}

// exclusionRun hammers one latch from g goroutines incrementing a plain
// (non-atomic) counter inside the critical section; under -race this is
// the mutual-exclusion proof, and the final count catches lost increments
// without -race too.
func exclusionRun(t *testing.T, l *Latch, g, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	counter := 0
	start := make(chan struct{})
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for n := 0; n < iters; n++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("exclusion run wedged: likely lost wakeup")
	}
	if counter != g*iters {
		t.Fatalf("counter = %d, want %d", counter, g*iters)
	}
}

func TestMutualExclusionAdaptive(t *testing.T) {
	exclusionRun(t, newLatch(), 64, 500)
}

func TestMutualExclusionParkOnly(t *testing.T) {
	l := newLatch()
	l.SetFixedBudget(0) // every contended acquire parks: pure cond path
	exclusionRun(t, l, 64, 500)
	if l.SpinHits() != 0 {
		t.Fatalf("park-only latch recorded %d spin hits", l.SpinHits())
	}
}

func TestMutualExclusionFixedSpin(t *testing.T) {
	l := newLatch()
	l.SetFixedBudget(BudgetCap) // force the spin phase even on 1 P
	exclusionRun(t, l, 64, 500)
}

// TestNoLostWakeups parks a crowd behind a held latch with spinning
// disabled, then releases once: the handoff chain must wake every waiter.
func TestNoLostWakeups(t *testing.T) {
	l := newLatch()
	l.SetFixedBudget(0)
	l.Lock()
	const waiters = 64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Lock()
			l.Unlock()
		}()
	}
	// Give the waiters time to park (not load-bearing: late arrivals
	// just find the latch free or park and get handed off anyway).
	time.Sleep(10 * time.Millisecond)
	l.Unlock()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("lost wakeup: %d parks, %d handoffs", l.Parks(), l.Handoffs())
	}
	if l.Parks() == 0 {
		t.Fatal("no waiter ever parked; test exercised nothing")
	}
}

// TestWakeDedupWithThieves is the regression test for the stranded
// wake-credit deadlock: handoff signals are deduped by wakePending, so if
// an unlock could Signal before the registered waiter reached cond.Wait
// (credit evaporates, flag stays set) and a TryLock thief then stole the
// latch, the parked waiter would sleep forever — every later unlock would
// see the stale wakePending and stay silent. The parked-count gate in
// Unlock forbids that Signal; this test hammers exactly that interleaving
// (parkers racing fastpath thieves) and fails by timeout if any waiter is
// ever stranded.
func TestWakeDedupWithThieves(t *testing.T) {
	l := newLatch()
	l.SetFixedBudget(0) // park immediately: maximize waiter traffic
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 2000; n++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	var thiefWG sync.WaitGroup
	thiefWG.Add(1)
	go func() {
		defer thiefWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if l.TryLock() {
				l.Unlock()
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stranded waiter: %d parks, %d handoffs, word=%#x",
			l.Parks(), l.Handoffs(), l.word.Load())
	}
	close(stop)
	thiefWG.Wait()
}

// TestRetuneRacingAcquires retunes and rebudgets the latch while a crowd
// acquires through it — the controller publishing budgets must never break
// mutual exclusion (checked by -race and the counter).
func TestRetuneRacingAcquires(t *testing.T) {
	l := newLatch()
	var wg sync.WaitGroup
	counter := 0
	stop := make(chan struct{})
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 400; n++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	var tunerWG sync.WaitGroup
	tunerWG.Add(1)
	go func() {
		defer tunerWG.Done()
		budgets := []int{0, 4, BudgetCap, 17, 1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.SetBudget(budgets[i%len(budgets)])
			l.NoteHold(int64(i%5000) + 1)
			l.Retune(8)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stop)
	tunerWG.Wait()
	if counter != 32*400 {
		t.Fatalf("counter = %d, want %d", counter, 32*400)
	}
}

func TestTuneBudgetGuards(t *testing.T) {
	if got := TuneBudget(DefaultBudget, 200, 0, 0, 1); got != 0 {
		t.Fatalf("procs=1 should collapse the budget, got %d", got)
	}
	if got := TuneBudget(DefaultBudget, ParkThresholdNs+1, 0, 0, 8); got != 0 {
		t.Fatalf("long holds should collapse the budget, got %d", got)
	}
}

// TestTuneBudgetMonotone pins the hold-time rule's shape: the budget is
// nondecreasing in the hold EWMA on (0, ParkThresholdNs], then drops to
// zero past the threshold.
func TestTuneBudgetMonotone(t *testing.T) {
	prev := 0
	for hold := int64(1); hold <= ParkThresholdNs; hold += 64 {
		got := TuneBudget(DefaultBudget, hold, 0, 0, 8)
		if got < prev {
			t.Fatalf("budget not monotone: hold %d → %d after %d", hold, got, prev)
		}
		if got <= 0 {
			t.Fatalf("short hold %d should keep a nonzero budget, got %d", hold, got)
		}
		if got > BudgetCap {
			t.Fatalf("budget %d exceeds cap", got)
		}
		prev = got
	}
	if got := TuneBudget(DefaultBudget, ParkThresholdNs*2, 0, 0, 8); got != 0 {
		t.Fatalf("hold past threshold should zero the budget, got %d", got)
	}
}

func TestTuneBudgetSuccessRate(t *testing.T) {
	base := TuneBudget(DefaultBudget, 2000, 0, 0, 8)
	// <25% spin success halves; ≥75% grows; sparse evidence leaves it.
	if got := TuneBudget(DefaultBudget, 2000, 16, 1, 8); got >= base {
		t.Fatalf("failing spins should shrink the budget: %d → %d", base, got)
	}
	if got := TuneBudget(DefaultBudget, 2000, 16, 15, 8); got <= base {
		t.Fatalf("winning spins should grow the budget: %d → %d", base, got)
	}
	if got := TuneBudget(DefaultBudget, 2000, tuneMinEvidence-1, 0, 8); got != base {
		t.Fatalf("sparse evidence should not modulate: %d → %d", base, got)
	}
}

// TestTuneBudgetConvergence replays synthetic workloads through the
// controller the way lockSlow drives it: a long-hold workload must
// converge to zero spin, a short-hold workload to a nonzero budget
// proportional to its holds.
func TestTuneBudgetConvergence(t *testing.T) {
	l := newLatch()
	for round := 0; round < 8; round++ {
		for s := 0; s < 16; s++ {
			l.NoteHold(50_000) // 50 µs holds: parking territory
		}
		l.Retune(8)
	}
	if got := l.Budget(); got != 0 {
		t.Fatalf("long-hold workload should converge to 0 spin, got %d", got)
	}
	for round := 0; round < 64; round++ {
		for s := 0; s < 16; s++ {
			l.NoteHold(800) // 800 ns holds: spinning repays
		}
		l.Retune(8)
	}
	got := l.Budget()
	if got < MinBudget || got > BudgetCap {
		t.Fatalf("short-hold workload should converge to a small nonzero budget, got %d", got)
	}
	if want := 800 / SpinUnitNs; got < want/2 || got > want*2 {
		t.Fatalf("short-hold budget %d far from hold-derived target %d", got, want)
	}
}

// TestRetuneReportsChanges wires an OnTune observer and checks a budget
// change is reported with its inputs, and that unchanged budgets stay
// silent.
func TestRetuneReportsChanges(t *testing.T) {
	l := newLatch()
	var calls int
	var lastOld, lastNew int
	l.OnTune(func(old, next int, holdNs int64, tries, wins int) {
		calls++
		lastOld, lastNew = old, next
	})
	l.NoteHold(100_000)
	l.Retune(8) // long hold → 0
	if calls != 1 || lastOld != DefaultBudget || lastNew != 0 {
		t.Fatalf("retune reported calls=%d %d→%d", calls, lastOld, lastNew)
	}
	l.Retune(8) // unchanged → silent
	if calls != 1 {
		t.Fatalf("unchanged retune should not report, got %d calls", calls)
	}
}

func TestFixedBudgetDisablesRetune(t *testing.T) {
	l := newLatch()
	l.SetFixedBudget(7)
	l.NoteHold(1_000_000)
	l.Retune(8)
	if got := l.Budget(); got != 7 {
		t.Fatalf("fixed budget retuned to %d", got)
	}
}

func TestNoteHoldEwma(t *testing.T) {
	l := newLatch()
	l.NoteHold(1000)
	if got := l.HoldEwmaNs(); got != 1000 {
		t.Fatalf("first sample should seed the EWMA, got %d", got)
	}
	for i := 0; i < 200; i++ {
		l.NoteHold(3000)
	}
	if got := l.HoldEwmaNs(); got < 2500 || got > 3200 {
		t.Fatalf("EWMA failed to converge toward 3000, got %d", got)
	}
}
