// Package bufferpool implements a clock-sweep page cache: the largest
// performance memory consumer (PMC) in the memory set and the lock memory's
// main counterpart in STMM trade-offs.
//
// The pool caches 4 KB data pages identified by 64-bit page numbers. It
// reports a marginal-benefit signal — misses per interval, normalised by
// size — that the STMM controller uses to decide which heap donates memory
// when the lock memory (a functional consumer) must grow, and which heap
// receives memory freed by δreduce shrinking.
package bufferpool

import (
	"sync"
)

// frame is one cached page.
type frame struct {
	page uint64
	ref  bool
	used bool
}

// Pool is a clock-sweep buffer pool. It is safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	frames []frame
	index  map[uint64]int // page -> frame position
	hand   int

	hits, misses      int64
	intervalHits      int64
	intervalMisses    int64
	intervalEvictions int64
	totalEvictions    int64
}

// New creates a pool holding up to `pages` pages.
func New(pages int) *Pool {
	if pages < 0 {
		pages = 0
	}
	return &Pool{
		frames: make([]frame, pages),
		index:  make(map[uint64]int, pages),
	}
}

// Pages returns the pool capacity in pages.
func (p *Pool) Pages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Access touches a page, returning true on a cache hit. On a miss the page
// is brought in, evicting via the clock sweep if the pool is full. A
// zero-sized pool always misses.
func (p *Pool) Access(page uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pos, ok := p.index[page]; ok {
		p.frames[pos].ref = true
		p.hits++
		p.intervalHits++
		return true
	}
	p.misses++
	p.intervalMisses++
	if len(p.frames) == 0 {
		return false
	}
	pos := p.evictLocked()
	if p.frames[pos].used {
		delete(p.index, p.frames[pos].page)
		p.totalEvictions++
		p.intervalEvictions++
	}
	// New pages enter with the reference bit clear: only a re-reference
	// earns a second chance, otherwise a full sweep degenerates to FIFO
	// and hot pages get no protection.
	p.frames[pos] = frame{page: page, used: true}
	p.index[page] = pos
	return false
}

// evictLocked runs the clock hand to a victim frame (or a free one).
func (p *Pool) evictLocked() int {
	for {
		f := &p.frames[p.hand]
		pos := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		if !f.used {
			return pos
		}
		if f.ref {
			f.ref = false
			continue
		}
		return pos
	}
}

// Resize changes the pool capacity. Shrinking evicts the frames beyond the
// new size; growing adds empty frames. Contents within the surviving prefix
// are preserved.
func (p *Pool) Resize(pages int) {
	if pages < 0 {
		pages = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := len(p.frames)
	switch {
	case pages < cur:
		for i := pages; i < cur; i++ {
			if p.frames[i].used {
				delete(p.index, p.frames[i].page)
				p.totalEvictions++
				p.intervalEvictions++
			}
		}
		p.frames = p.frames[:pages]
		if p.hand >= pages {
			p.hand = 0
		}
	case pages > cur:
		grown := make([]frame, pages)
		copy(grown, p.frames)
		p.frames = grown
	}
}

// HitRatio returns the lifetime hit ratio, or 0 with no accesses.
func (p *Pool) HitRatio() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Stats returns lifetime hits, misses and evictions.
func (p *Pool) Stats() (hits, misses, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.totalEvictions
}

// Benefit estimates the marginal value of additional pages for the current
// interval: misses that evicted live pages suggest the working set exceeds
// the pool. The value is interval evictions per 1000 pages of capacity, so
// a small, thrashing pool outranks a large, comfortable one.
func (p *Pool) Benefit() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.frames) == 0 {
		return float64(p.intervalMisses)
	}
	return float64(p.intervalEvictions) * 1000 / float64(len(p.frames))
}

// ResetInterval clears the per-interval counters; the STMM controller calls
// it after each tuning pass.
func (p *Pool) ResetInterval() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.intervalHits, p.intervalMisses, p.intervalEvictions = 0, 0, 0
}

// Name identifies the consumer in STMM reports.
func (p *Pool) Name() string { return "bufferpool" }

// ApplySize lets the STMM controller resize the pool after moving heap
// pages; it simply forwards to Resize.
func (p *Pool) ApplySize(pages int) { p.Resize(pages) }
