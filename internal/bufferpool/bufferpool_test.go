package bufferpool

import (
	"math/rand"
	"sync"
	"testing"
)

func TestColdMissThenHit(t *testing.T) {
	p := New(4)
	if p.Access(1) {
		t.Fatal("cold access must miss")
	}
	if !p.Access(1) {
		t.Fatal("second access must hit")
	}
	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if got := p.HitRatio(); got != 0.5 {
		t.Fatalf("hit ratio = %g, want 0.5", got)
	}
}

func TestWorkingSetFits(t *testing.T) {
	p := New(10)
	for round := 0; round < 5; round++ {
		for pg := uint64(0); pg < 10; pg++ {
			p.Access(pg)
		}
	}
	hits, misses, _ := p.Stats()
	if misses != 10 {
		t.Fatalf("misses = %d, want 10 (cold only)", misses)
	}
	if hits != 40 {
		t.Fatalf("hits = %d, want 40", hits)
	}
}

func TestEvictionWhenOversubscribed(t *testing.T) {
	p := New(4)
	for pg := uint64(0); pg < 8; pg++ {
		p.Access(pg)
	}
	_, _, ev := p.Stats()
	if ev != 4 {
		t.Fatalf("evictions = %d, want 4", ev)
	}
	if got := p.Pages(); got != 4 {
		t.Fatalf("pages = %d", got)
	}
}

func TestClockSecondChance(t *testing.T) {
	p := New(3)
	p.Access(1)
	p.Access(2)
	p.Access(3)
	// Re-reference page 1 so it gets a second chance.
	p.Access(1)
	// A new page evicts 2 or 3 (first unreferenced), not 1.
	p.Access(4)
	if !p.Access(1) {
		t.Fatal("referenced page 1 was evicted despite second chance")
	}
}

func TestZeroSizedPool(t *testing.T) {
	p := New(0)
	if p.Access(1) || p.Access(1) {
		t.Fatal("zero pool can never hit")
	}
	if p.Benefit() <= 0 {
		t.Fatal("starved zero pool must report demand")
	}
}

func TestResizeShrinkEvicts(t *testing.T) {
	p := New(8)
	for pg := uint64(0); pg < 8; pg++ {
		p.Access(pg)
	}
	p.Resize(4)
	if got := p.Pages(); got != 4 {
		t.Fatalf("pages = %d, want 4", got)
	}
	// The surviving prefix still hits.
	if !p.Access(0) {
		t.Fatal("page 0 must survive the shrink")
	}
	// Negative size clamps to zero.
	p.Resize(-5)
	if got := p.Pages(); got != 0 {
		t.Fatalf("pages = %d, want 0", got)
	}
}

func TestResizeGrowPreservesContents(t *testing.T) {
	p := New(4)
	for pg := uint64(0); pg < 4; pg++ {
		p.Access(pg)
	}
	p.Resize(16)
	for pg := uint64(0); pg < 4; pg++ {
		if !p.Access(pg) {
			t.Fatalf("page %d lost on grow", pg)
		}
	}
}

func TestBenefitReflectsPressure(t *testing.T) {
	calm := New(100)
	for pg := uint64(0); pg < 50; pg++ {
		calm.Access(pg)
	}
	thrash := New(10)
	for i := 0; i < 500; i++ {
		thrash.Access(uint64(i % 100))
	}
	if calm.Benefit() >= thrash.Benefit() {
		t.Fatalf("benefit ordering wrong: calm=%g thrash=%g", calm.Benefit(), thrash.Benefit())
	}
	thrash.ResetInterval()
	if got := thrash.Benefit(); got != 0 {
		t.Fatalf("benefit after reset = %g", got)
	}
}

func TestApplySizeAndName(t *testing.T) {
	p := New(4)
	p.ApplySize(8)
	if p.Pages() != 8 {
		t.Fatal("ApplySize did not resize")
	}
	if p.Name() != "bufferpool" {
		t.Fatal("name wrong")
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				p.Access(uint64(rng.Intn(200)))
				if i%500 == 0 {
					p.Resize(32 + rng.Intn(64))
				}
			}
		}(int64(g))
	}
	wg.Wait()
	hits, misses, _ := p.Stats()
	if hits+misses != 16000 {
		t.Fatalf("accesses = %d, want 16000", hits+misses)
	}
}
