// Package memblock implements DB2's lock-memory block allocator as described
// in section 2.2 of the paper.
//
// Lock memory (the LOCKLIST) is allocated in 128 KB blocks — one block per
// 32 pages of configured lock memory — each holding about 2000 lock
// structures (exactly 2048 here, at 64 bytes per structure). Blocks live on
// a linked list:
//
//   - Lock structures are taken from the block at the *head* of the list.
//   - When the head block is exhausted it moves to a separate "empty block"
//     list (empty of available structures, i.e. fully in use) and the next
//     block becomes the head.
//   - When structures allocated from a block are freed, the block returns to
//     the *head* of the list, so partially used blocks are refilled before
//     untouched blocks are broken into. Consequently, when demand uses only
//     part of the lock memory, blocks toward the tail stay entirely free —
//     which is exactly what makes shrinking cheap.
//   - A shrink request scans from the tail for blocks with no outstanding
//     structures, sets them aside, and frees them only if enough were found;
//     otherwise the set-aside blocks are reintegrated and the request fails.
//
// Concurrency model. The block lists are guarded by a single mutex, but the
// hot counters — structures in use, capacity, cumulative requests — are
// atomics, so the introspection surface (Used, Capacity, FreeStructs,
// FreeFraction, Requests, Pages) never contends with allocation. On top of
// the chain sit per-shard lease Pools: a Pool reserves structures from the
// chain in batches (block inUse accounting moves at lease granularity) and
// then serves allocations and frees without touching the chain mutex at
// all, adjusting only the atomic used counter. Reserved-but-unused
// structures still count as free in Used/FreeStructs — the accounting the
// STMM tuner sees is exact request-level usage, and
// Used + FreeStructs == Capacity holds at all times.
//
// The simulation accounts memory virtually — no 128 KB buffers are really
// allocated — but the block-list mechanics, counts and failure modes are the
// real algorithm.
package memblock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Memory layout constants shared by the whole system.
const (
	// PageSize is the unit of all memory configuration (DB2 uses 4 KB
	// pages for LOCKLIST and database memory alike).
	PageSize = 4096

	// BlockPages is the number of pages per lock memory block: 128 KB.
	BlockPages = 32

	// BlockBytes is the size of one lock memory block.
	BlockBytes = PageSize * BlockPages

	// LockSize is the size of one lock structure in bytes. The paper says
	// each 128 KB block stores "approximately 2000 locks"; 64 bytes gives
	// exactly 2048 per block.
	LockSize = 64

	// StructsPerBlock is the number of lock structures per block.
	StructsPerBlock = BlockBytes / LockSize

	// StructsPerPage is the number of lock structures per 4 KB page.
	StructsPerPage = PageSize / LockSize
)

// ErrNoMemory is returned when an allocation cannot be satisfied from the
// chain's free structures. The caller (the lock manager) reacts by growing
// the chain synchronously from overflow memory or, failing that, escalating.
var ErrNoMemory = errors.New("memblock: no free lock structures")

// ErrShrinkDenied is returned when a shrink request cannot find enough
// entirely free blocks; per the paper, set-aside blocks are reintegrated and
// the lock memory size is left unchanged.
var ErrShrinkDenied = errors.New("memblock: not enough free blocks to shrink")

type listID uint8

const (
	onAvail listID = iota + 1
	onExhausted
)

// block is one 128 KB unit of lock memory.
type block struct {
	prev, next *block
	list       listID
	inUse      int // structures reserved from this block (used or pooled)
}

// list is an intrusive doubly linked list of blocks.
type list struct {
	head, tail *block
	n          int
}

func (l *list) pushHead(b *block, id listID) {
	b.prev, b.next, b.list = nil, l.head, id
	if l.head != nil {
		l.head.prev = b
	} else {
		l.tail = b
	}
	l.head = b
	l.n++
}

func (l *list) pushTail(b *block, id listID) {
	b.prev, b.next, b.list = l.tail, nil, id
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
	l.n++
}

func (l *list) remove(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next, b.list = nil, nil, 0
	l.n--
}

// part records structures allocated from a single block.
type part struct {
	b *block
	n int
}

// Handle represents one allocation of lock structures. A single allocation
// may span blocks when it straddles the exhaustion of the head block. Free a
// handle exactly once; the zero Handle is valid and frees nothing.
//
// The first part is stored inline so the common case — an allocation served
// from a single block — performs no heap allocation at all. Only multi-block
// allocations spill into the extra slice.
type Handle struct {
	p0    part
	extra []part
}

// add appends structures taken from one block, merging with the most recent
// part when it references the same block.
func (h *Handle) add(pt part) {
	if pt.n <= 0 {
		return
	}
	if h.p0.b == nil {
		h.p0 = pt
		return
	}
	if len(h.extra) == 0 {
		if h.p0.b == pt.b {
			h.p0.n += pt.n
			return
		}
	} else if last := &h.extra[len(h.extra)-1]; last.b == pt.b {
		last.n += pt.n
		return
	}
	h.extra = append(h.extra, pt)
}

// allParts returns the handle's parts as one slice; it allocates and is
// meant for tests and diagnostics, not the hot path.
func (h Handle) allParts() []part {
	if h.p0.b == nil {
		return nil
	}
	out := make([]part, 0, 1+len(h.extra))
	out = append(out, h.p0)
	return append(out, h.extra...)
}

// Structs returns the number of lock structures covered by the handle.
func (h Handle) Structs() int {
	n := h.p0.n
	for _, p := range h.extra {
		n += p.n
	}
	return n
}

// Absorb merges other into h. Used by the fast-path lease: refills taken
// from a shard's pool are folded into the shard's standing lease handle.
func (h *Handle) Absorb(other Handle) {
	if other.p0.b != nil {
		h.add(other.p0)
	}
	for _, pt := range other.extra {
		h.add(pt)
	}
}

// Split removes up to n structures from h and returns a handle covering
// them, taking from the most recently added parts first (extra tail, then
// p0). The returned handle covers min(n, h.Structs()) structures.
func (h *Handle) Split(n int) Handle {
	var out Handle
	for n > 0 && len(h.extra) > 0 {
		last := &h.extra[len(h.extra)-1]
		t := last.n
		if t > n {
			t = n
		}
		out.add(part{b: last.b, n: t})
		last.n -= t
		n -= t
		if last.n == 0 {
			h.extra = h.extra[:len(h.extra)-1]
		}
	}
	if n > 0 && h.p0.b != nil {
		t := h.p0.n
		if t > n {
			t = n
		}
		out.add(part{b: h.p0.b, n: t})
		h.p0.n -= t
		if h.p0.n == 0 {
			if len(h.extra) > 0 {
				h.p0 = h.extra[0]
				h.extra = h.extra[1:]
			} else {
				h.p0 = part{}
			}
		}
	}
	return out
}

// Chain is the lock memory block chain. It is safe for concurrent use.
type Chain struct {
	mu        sync.Mutex
	avail     list // blocks with at least one free structure (or untouched)
	exhausted list // fully in-use blocks ("empty block" list in the paper)
	reserved  int  // structures reserved across all blocks (sum of inUse); guarded by mu

	used     atomic.Int64 // structures allocated to requests (exact usage)
	capacity atomic.Int64 // total structures across all blocks
	requests atomic.Int64 // cumulative request-allocation attempts
}

// New creates a chain sized to the given number of 4 KB pages, rounded up to
// whole 128 KB blocks (one block per 32 pages, as in DB2).
func New(pages int) *Chain {
	c := &Chain{}
	c.Grow(pages)
	return c
}

func blocksFor(pages int) int {
	if pages <= 0 {
		return 0
	}
	return (pages + BlockPages - 1) / BlockPages
}

// Grow appends enough new (entirely free) blocks to cover the given number
// of pages. New blocks go to the tail of the list, matching the paper's
// description of allocation-time list construction. It returns the number of
// pages actually added (a multiple of BlockPages).
func (c *Chain) Grow(pages int) int {
	nb := blocksFor(pages)
	if nb == 0 {
		return 0
	}
	c.mu.Lock()
	for i := 0; i < nb; i++ {
		c.avail.pushTail(&block{}, onAvail)
	}
	c.capacity.Add(int64(nb) * StructsPerBlock)
	c.mu.Unlock()
	return nb * BlockPages
}

// reserveLocked takes up to n structures from the blocks, preferring the
// head block, and appends the parts to h. It returns the structures actually
// reserved. Caller holds c.mu.
func (c *Chain) reserveLocked(n int, h *Handle) int {
	got := 0
	for got < n {
		b := c.avail.head
		if b == nil {
			break
		}
		take := StructsPerBlock - b.inUse
		if take > n-got {
			take = n - got
		}
		b.inUse += take
		c.reserved += take
		h.add(part{b: b, n: take})
		got += take
		if b.inUse == StructsPerBlock {
			c.avail.remove(b)
			c.exhausted.pushHead(b, onExhausted)
		}
	}
	return got
}

// unreserveLocked returns the reservation covered by h to its blocks. A
// block that receives structures back returns to the head of the available
// list, per the paper. Caller holds c.mu.
func (c *Chain) unreserveLocked(h Handle) {
	if h.p0.b != nil {
		c.unreservePart(h.p0)
	}
	for _, p := range h.extra {
		c.unreservePart(p)
	}
}

func (c *Chain) unreservePart(p part) {
	if p.n <= 0 {
		return
	}
	if p.b.inUse < p.n {
		panic(fmt.Sprintf("memblock: double free (block inUse=%d, freeing %d)", p.b.inUse, p.n))
	}
	p.b.inUse -= p.n
	c.reserved -= p.n
	if p.b.list == onExhausted {
		c.exhausted.remove(p.b)
		c.avail.pushHead(p.b, onAvail)
	}
}

// Alloc takes n lock structures from the chain, preferring the head block.
// It returns ErrNoMemory — without allocating anything — if fewer than n
// structures are unreserved in total. Every call counts as one lock-structure
// request for the purposes of refreshPeriodForAppPercent.
func (c *Chain) Alloc(n int) (Handle, error) {
	if n <= 0 {
		return Handle{}, fmt.Errorf("memblock: invalid allocation size %d", n)
	}
	c.requests.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(c.capacity.Load())-c.reserved < n {
		return Handle{}, ErrNoMemory
	}
	var h Handle
	c.reserveLocked(n, &h)
	c.used.Add(int64(n))
	return h, nil
}

// Free releases the structures covered by h back to their blocks.
func (c *Chain) Free(h Handle) {
	if h.p0.b == nil {
		return
	}
	c.mu.Lock()
	c.unreserveLocked(h)
	c.mu.Unlock()
	c.used.Add(int64(-h.Structs()))
}

// Shrink releases enough entirely free blocks to give back the requested
// number of pages (rounded up to whole blocks). Blocks are scanned from the
// tail of the available list, where free blocks accumulate. If not enough
// free blocks exist the set-aside blocks are reintegrated unchanged and
// ErrShrinkDenied is returned. On success it returns the pages released.
func (c *Chain) Shrink(pages int) (int, error) {
	nb := blocksFor(pages)
	if nb == 0 {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Scan from the tail, setting aside freeable blocks.
	var setAside []*block
	for b := c.avail.tail; b != nil && len(setAside) < nb; b = b.prev {
		if b.inUse == 0 {
			setAside = append(setAside, b)
		}
	}
	if len(setAside) < nb {
		// Reintegrate: nothing was unlinked yet, so the chain is unchanged.
		return 0, ErrShrinkDenied
	}
	for _, b := range setAside {
		c.avail.remove(b)
	}
	c.capacity.Add(int64(-nb) * StructsPerBlock)
	return nb * BlockPages, nil
}

// ShrinkBest releases up to the requested pages, freeing as many entirely
// free tail blocks as it can find. Unlike Shrink it never fails; it returns
// the pages actually released (possibly zero). The asynchronous δreduce path
// uses this: the tuner asks for 5% and takes whatever is truly free.
func (c *Chain) ShrinkBest(pages int) int {
	nb := blocksFor(pages)
	if nb == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	freed := 0
	for b := c.avail.tail; b != nil && freed < nb; {
		prev := b.prev
		if b.inUse == 0 {
			c.avail.remove(b)
			freed++
		}
		b = prev
	}
	c.capacity.Add(int64(-freed) * StructsPerBlock)
	return freed * BlockPages
}

// Blocks returns the total number of blocks in the chain.
func (c *Chain) Blocks() int {
	return int(c.capacity.Load()) / StructsPerBlock
}

// Pages returns the chain size in 4 KB pages.
func (c *Chain) Pages() int {
	return c.Blocks() * BlockPages
}

// Capacity returns the total number of lock structures the chain can hold.
func (c *Chain) Capacity() int {
	return int(c.capacity.Load())
}

// Used returns the number of lock structures currently allocated to
// requests. Structures leased to pools but not yet serving a request do not
// count: Used + FreeStructs == Capacity at all times.
func (c *Chain) Used() int {
	return int(c.used.Load())
}

// FreeStructs returns the number of lock structures not serving a request.
func (c *Chain) FreeStructs() int {
	return int(c.capacity.Load() - c.used.Load())
}

// FreeFraction returns the fraction of lock structures that are allocated
// but unused — the quantity the tuner holds between minFreeLockMemory and
// maxFreeLockMemory. An empty chain reports 0.
func (c *Chain) FreeFraction() float64 {
	cap := c.capacity.Load()
	if cap == 0 {
		return 0
	}
	return float64(cap-c.used.Load()) / float64(cap)
}

// WhollyFreeBlocks returns the number of blocks with no structures in use —
// the candidates for shrinking. Blocks pinned by outstanding pool leases
// count as in use; call Pool.Flush first for an exact shrinkability figure.
func (c *Chain) WhollyFreeBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for b := c.avail.head; b != nil; b = b.next {
		if b.inUse == 0 {
			n++
		}
	}
	return n
}

// UsedPages returns the lock-structure usage expressed in whole 4 KB pages,
// rounded up. This is the "used lock memory" figure the tuner works with.
func (c *Chain) UsedPages() int {
	used := int(c.used.Load())
	if used == 0 {
		return 0
	}
	return (used + StructsPerPage - 1) / StructsPerPage
}

// Requests returns the cumulative number of request allocations — the
// paper's "requests for new lock structures", which clocks the recomputation
// of lockPercentPerApplication.
func (c *Chain) Requests() int64 {
	return c.requests.Load()
}

// ConsumeReserved records that n already-reserved structures (held in a
// standing lease, e.g. a shard's fast-path credit) have been put to use by
// a request. It adjusts only the atomic counters — the structures' blocks
// were accounted at lease time — so it is safe to call without any latch.
// Like Pool.Alloc, it counts as one lock-structure request.
func (c *Chain) ConsumeReserved(n int) {
	if n <= 0 {
		return
	}
	c.used.Add(int64(n))
	c.requests.Add(1)
}

// ReturnReserved undoes ConsumeReserved: n structures return from request
// use to their standing lease. Latch-free, like ConsumeReserved.
func (c *Chain) ReturnReserved(n int) {
	if n <= 0 {
		return
	}
	c.used.Add(int64(-n))
}

// Reserved returns the structures currently reserved from blocks — request
// usage plus outstanding pool leases. Reserved - Used is exactly the number
// of structures sitting idle in lease pools.
func (c *Chain) Reserved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reserved
}

// Unreserved returns the structures available for immediate reservation
// (capacity minus reservations, including pool leases). Callers that find
// Unreserved short of a request flush the lease pools first: the flushed
// structures become unreserved again and Unreserved rises back to
// FreeStructs.
func (c *Chain) Unreserved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.capacity.Load()) - c.reserved
}

// CheckInvariants verifies internal consistency — block-list tags, the
// reserved/capacity/used accounting identities — and returns the first
// violation found. The lock manager's own CheckInvariants calls it so a
// single self-check covers both layers.
func (c *Chain) CheckInvariants() error {
	return c.checkInvariants()
}

// checkInvariants verifies internal consistency; used by tests.
func (c *Chain) checkInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	reserved, blocks := 0, 0
	for b := c.avail.head; b != nil; b = b.next {
		if b.list != onAvail {
			return errors.New("block on avail list with wrong tag")
		}
		if b.inUse >= StructsPerBlock {
			return errors.New("fully used block on avail list")
		}
		reserved += b.inUse
		blocks++
	}
	for b := c.exhausted.head; b != nil; b = b.next {
		if b.list != onExhausted {
			return errors.New("block on exhausted list with wrong tag")
		}
		if b.inUse != StructsPerBlock {
			return errors.New("non-full block on exhausted list")
		}
		reserved += b.inUse
		blocks++
	}
	if reserved != c.reserved {
		return fmt.Errorf("reserved mismatch: sum=%d tracked=%d", reserved, c.reserved)
	}
	if cap := int(c.capacity.Load()); cap != blocks*StructsPerBlock {
		return fmt.Errorf("capacity mismatch: atomic=%d blocks=%d", cap, blocks*StructsPerBlock)
	}
	if used := int(c.used.Load()); used > reserved {
		return fmt.Errorf("used %d exceeds reserved %d", used, reserved)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Lease pools

// DefaultLeaseChunk is the number of structures a Pool leases from the chain
// at a time: 1/16 of a block. Small enough that idle pools pin little
// memory, large enough to amortize the chain mutex over many allocations.
const DefaultLeaseChunk = StructsPerBlock / 16

// Pool is a lease cache in front of a Chain: it reserves structures from
// the chain in chunks and then serves Alloc/Free without the chain mutex,
// adjusting only the chain's atomic usage counter. Each lock-table shard
// owns one Pool.
//
// A Pool is NOT safe for concurrent use — the owning shard's latch guards
// it. Flush is called by cross-shard operations (shrink, allocation of last
// resort) with that same latch held.
//
// Parts are kept in a LIFO stack with adjacent same-block merging, so a
// steady acquire/release workload reuses the same reservation indefinitely
// and the pool's behaviour is deterministic (no map iteration).
type Pool struct {
	c     *Chain
	parts []part
	n     int // structures currently pooled
	chunk int

	refills atomic.Int64 // chain leases taken (refill batches)
	returns atomic.Int64 // chain leases returned (overflow batches)
	pooled  atomic.Int64 // mirror of n for latch-free observers
}

// NewPool creates a lease pool over the chain. chunk <= 0 selects
// DefaultLeaseChunk.
func (c *Chain) NewPool(chunk int) *Pool {
	if chunk <= 0 {
		chunk = DefaultLeaseChunk
	}
	return &Pool{c: c, chunk: chunk}
}

// pushRaw adds a part to the pool, merging with the top part when it
// references the same block, WITHOUT refreshing the latch-free pooled
// mirror. Batch free paths call it once per lock and sync the mirror once
// in SettleFree; everything else goes through push.
func (p *Pool) pushRaw(pt part) {
	if pt.n <= 0 {
		return
	}
	if len(p.parts) > 0 && p.parts[len(p.parts)-1].b == pt.b {
		p.parts[len(p.parts)-1].n += pt.n
	} else {
		p.parts = append(p.parts, pt)
	}
	p.n += pt.n
}

// push adds a part to the pool, merging with the top part when it
// references the same block.
func (p *Pool) push(pt part) {
	p.pushRaw(pt)
	p.pooled.Store(int64(p.n))
}

// take removes up to n structures from the pool stack and appends them to h.
func (p *Pool) take(n int, h *Handle) {
	for n > 0 {
		top := &p.parts[len(p.parts)-1]
		t := top.n
		if t > n {
			t = n
		}
		h.add(part{b: top.b, n: t})
		top.n -= t
		p.n -= t
		n -= t
		if top.n == 0 {
			p.parts = p.parts[:len(p.parts)-1]
		}
	}
	p.pooled.Store(int64(p.n))
}

// Alloc takes n structures from the pool, refilling from the chain in chunk
// batches when short. It returns ok=false — allocating nothing — when even
// a refill cannot cover the request; the caller falls back to the chain
// allocation of last resort (which reclaims other pools' leases first).
// A successful Alloc counts as one lock-structure request.
func (p *Pool) Alloc(n int) (Handle, bool) {
	if n <= 0 {
		return Handle{}, false
	}
	if p.n < n {
		want := n - p.n
		if want < p.chunk {
			want = p.chunk
		}
		var lease Handle
		p.c.mu.Lock()
		p.c.reserveLocked(want, &lease)
		p.c.mu.Unlock()
		p.refills.Add(1)
		if lease.p0.b != nil {
			p.push(lease.p0)
		}
		for _, pt := range lease.extra {
			p.push(pt)
		}
		if p.n < n {
			return Handle{}, false
		}
	}
	var h Handle
	p.take(n, &h)
	p.c.used.Add(int64(n))
	p.c.requests.Add(1)
	return h, true
}

// Free returns the structures covered by h to the pool. When the pool holds
// more than 4 chunks it returns the excess above one chunk to the chain, so
// idle shards do not pin lock memory against shrinking.
func (p *Pool) Free(h Handle) {
	total := h.Structs()
	if total == 0 {
		return
	}
	if h.p0.b != nil {
		p.push(h.p0)
	}
	for _, pt := range h.extra {
		p.push(pt)
	}
	p.c.used.Add(int64(-total))
	if p.n > 4*p.chunk {
		p.release(p.n - p.chunk)
	}
}

// FreeBatched returns the structures covered by h to the pool like Free,
// but defers the chain-level used accounting, the latch-free pooled
// mirror refresh, and the excess-release check to SettleFree. Batch
// release paths (a commit returning many locks to one shard) call it once
// per lock and settle once per shard visit, turning two per-lock atomics
// (the shared chain counter and the pooled mirror) into per-visit ones.
// It returns the number of structures freed, to be summed into SettleFree.
func (p *Pool) FreeBatched(h Handle) int {
	total := h.Structs()
	if total == 0 {
		return 0
	}
	if h.p0.b != nil {
		p.pushRaw(h.p0)
	}
	for _, pt := range h.extra {
		p.pushRaw(pt)
	}
	return total
}

// SettleFree completes a batch of FreeBatched calls: one used-counter
// update and one pooled-mirror refresh for the whole batch, then the same
// excess-release check Free performs. total must be the sum of the
// FreeBatched return values since the last settle. Caller holds the
// owning shard's latch throughout the batch, so chain accounting is exact
// again before any concurrent observer can latch the shard.
func (p *Pool) SettleFree(total int) {
	if total == 0 {
		return
	}
	p.pooled.Store(int64(p.n))
	p.c.used.Add(int64(-total))
	if p.n > 4*p.chunk {
		p.release(p.n - p.chunk)
	}
}

// release returns n pooled structures to the chain.
func (p *Pool) release(n int) {
	if n <= 0 || p.n == 0 {
		return
	}
	if n > p.n {
		n = p.n
	}
	var h Handle
	p.take(n, &h)
	p.c.mu.Lock()
	p.c.unreserveLocked(h)
	p.c.mu.Unlock()
	p.returns.Add(1)
}

// Flush returns every pooled structure to the chain. Cross-shard operations
// call it (with the shard latch held) before shrinking or before the
// allocation of last resort, so free structures stranded in per-shard pools
// become visible to the whole system.
func (p *Pool) Flush() {
	p.release(p.n)
}

// Lease moves up to n structures from the pool into a standing lease,
// refilling from the chain when the pool runs short. Unlike Alloc it does
// NOT bump the used or requests counters: leased structures stay reserved
// but idle until ConsumeReserved marks them in use. It returns the handle
// and the number of structures actually leased (possibly < n when the
// chain is short; possibly 0). Caller holds the owning shard's latch.
func (p *Pool) Lease(n int) (Handle, int) {
	if n <= 0 {
		return Handle{}, 0
	}
	if p.n < n {
		var refill Handle
		p.c.mu.Lock()
		p.c.reserveLocked(n-p.n, &refill)
		p.c.mu.Unlock()
		p.refills.Add(1)
		if refill.p0.b != nil {
			p.push(refill.p0)
		}
		for _, pt := range refill.extra {
			p.push(pt)
		}
	}
	got := n
	if got > p.n {
		got = p.n
	}
	var h Handle
	p.take(got, &h)
	return h, got
}

// Restore returns standing-lease structures to the pool — the inverse of
// Lease, with no used accounting. Caller holds the owning shard's latch.
// The usual excess-release check applies so a large restored lease does
// not strand memory in the pool.
func (p *Pool) Restore(h Handle) {
	if h.p0.b != nil {
		p.push(h.p0)
	}
	for _, pt := range h.extra {
		p.push(pt)
	}
	if p.n > 4*p.chunk {
		p.release(p.n - p.chunk)
	}
}

// Structs returns the number of structures currently pooled. Caller holds
// the owning shard's latch (like Alloc/Free).
func (p *Pool) Structs() int { return p.n }

// Pooled returns the number of structures currently pooled without
// requiring the owning shard's latch: it reads an atomic mirror of the
// balance, so latch-free observers (shard-stats summaries) can sample it
// while the shard keeps allocating.
func (p *Pool) Pooled() int { return int(p.pooled.Load()) }

// Refills returns the cumulative number of chain lease batches taken.
func (p *Pool) Refills() int64 { return p.refills.Load() }

// Returns returns the cumulative number of lease batches given back.
func (p *Pool) Returns() int64 { return p.returns.Load() }
