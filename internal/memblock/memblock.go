// Package memblock implements DB2's lock-memory block allocator as described
// in section 2.2 of the paper.
//
// Lock memory (the LOCKLIST) is allocated in 128 KB blocks — one block per
// 32 pages of configured lock memory — each holding about 2000 lock
// structures (exactly 2048 here, at 64 bytes per structure). Blocks live on
// a linked list:
//
//   - Lock structures are taken from the block at the *head* of the list.
//   - When the head block is exhausted it moves to a separate "empty block"
//     list (empty of available structures, i.e. fully in use) and the next
//     block becomes the head.
//   - When structures allocated from a block are freed, the block returns to
//     the *head* of the list, so partially used blocks are refilled before
//     untouched blocks are broken into. Consequently, when demand uses only
//     part of the lock memory, blocks toward the tail stay entirely free —
//     which is exactly what makes shrinking cheap.
//   - A shrink request scans from the tail for blocks with no outstanding
//     structures, sets them aside, and frees them only if enough were found;
//     otherwise the set-aside blocks are reintegrated and the request fails.
//
// The simulation accounts memory virtually — no 128 KB buffers are really
// allocated — but the block-list mechanics, counts and failure modes are the
// real algorithm.
package memblock

import (
	"errors"
	"fmt"
	"sync"
)

// Memory layout constants shared by the whole system.
const (
	// PageSize is the unit of all memory configuration (DB2 uses 4 KB
	// pages for LOCKLIST and database memory alike).
	PageSize = 4096

	// BlockPages is the number of pages per lock memory block: 128 KB.
	BlockPages = 32

	// BlockBytes is the size of one lock memory block.
	BlockBytes = PageSize * BlockPages

	// LockSize is the size of one lock structure in bytes. The paper says
	// each 128 KB block stores "approximately 2000 locks"; 64 bytes gives
	// exactly 2048 per block.
	LockSize = 64

	// StructsPerBlock is the number of lock structures per block.
	StructsPerBlock = BlockBytes / LockSize

	// StructsPerPage is the number of lock structures per 4 KB page.
	StructsPerPage = PageSize / LockSize
)

// ErrNoMemory is returned when an allocation cannot be satisfied from the
// chain's free structures. The caller (the lock manager) reacts by growing
// the chain synchronously from overflow memory or, failing that, escalating.
var ErrNoMemory = errors.New("memblock: no free lock structures")

// ErrShrinkDenied is returned when a shrink request cannot find enough
// entirely free blocks; per the paper, set-aside blocks are reintegrated and
// the lock memory size is left unchanged.
var ErrShrinkDenied = errors.New("memblock: not enough free blocks to shrink")

type listID uint8

const (
	onAvail listID = iota + 1
	onExhausted
)

// block is one 128 KB unit of lock memory.
type block struct {
	prev, next *block
	list       listID
	inUse      int // structures currently allocated from this block
}

// list is an intrusive doubly linked list of blocks.
type list struct {
	head, tail *block
	n          int
}

func (l *list) pushHead(b *block, id listID) {
	b.prev, b.next, b.list = nil, l.head, id
	if l.head != nil {
		l.head.prev = b
	} else {
		l.tail = b
	}
	l.head = b
	l.n++
}

func (l *list) pushTail(b *block, id listID) {
	b.prev, b.next, b.list = l.tail, nil, id
	if l.tail != nil {
		l.tail.next = b
	} else {
		l.head = b
	}
	l.tail = b
	l.n++
}

func (l *list) remove(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next, b.list = nil, nil, 0
	l.n--
}

// part records structures allocated from a single block.
type part struct {
	b *block
	n int
}

// Handle represents one allocation of lock structures. A single allocation
// may span blocks when it straddles the exhaustion of the head block. Free a
// handle exactly once; the zero Handle is valid and frees nothing.
type Handle struct {
	parts []part
}

// Structs returns the number of lock structures covered by the handle.
func (h Handle) Structs() int {
	n := 0
	for _, p := range h.parts {
		n += p.n
	}
	return n
}

// Chain is the lock memory block chain. It is safe for concurrent use.
type Chain struct {
	mu        sync.Mutex
	avail     list // blocks with at least one free structure (or untouched)
	exhausted list // fully in-use blocks ("empty block" list in the paper)
	used      int  // structures in use across all blocks
	requests  int64
}

// New creates a chain sized to the given number of 4 KB pages, rounded up to
// whole 128 KB blocks (one block per 32 pages, as in DB2).
func New(pages int) *Chain {
	c := &Chain{}
	c.Grow(pages)
	return c
}

func blocksFor(pages int) int {
	if pages <= 0 {
		return 0
	}
	return (pages + BlockPages - 1) / BlockPages
}

// Grow appends enough new (entirely free) blocks to cover the given number
// of pages. New blocks go to the tail of the list, matching the paper's
// description of allocation-time list construction. It returns the number of
// pages actually added (a multiple of BlockPages).
func (c *Chain) Grow(pages int) int {
	nb := blocksFor(pages)
	if nb == 0 {
		return 0
	}
	c.mu.Lock()
	for i := 0; i < nb; i++ {
		c.avail.pushTail(&block{}, onAvail)
	}
	c.mu.Unlock()
	return nb * BlockPages
}

// Alloc takes n lock structures from the chain, preferring the head block.
// It returns ErrNoMemory — without allocating anything — if fewer than n
// structures are free in total. Every call counts as one lock-structure
// request for the purposes of refreshPeriodForAppPercent.
func (c *Chain) Alloc(n int) (Handle, error) {
	if n <= 0 {
		return Handle{}, fmt.Errorf("memblock: invalid allocation size %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	if c.freeLocked() < n {
		return Handle{}, ErrNoMemory
	}
	var h Handle
	remaining := n
	for remaining > 0 {
		b := c.avail.head
		free := StructsPerBlock - b.inUse
		take := free
		if take > remaining {
			take = remaining
		}
		b.inUse += take
		c.used += take
		h.parts = append(h.parts, part{b: b, n: take})
		remaining -= take
		if b.inUse == StructsPerBlock {
			c.avail.remove(b)
			c.exhausted.pushHead(b, onExhausted)
		}
	}
	return h, nil
}

// Free releases the structures covered by h back to their blocks. A block
// that receives freed structures returns to the head of the available list,
// per the paper, so it will satisfy the next request before untouched blocks.
func (c *Chain) Free(h Handle) {
	if len(h.parts) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range h.parts {
		if p.n <= 0 {
			continue
		}
		if p.b.inUse < p.n {
			panic(fmt.Sprintf("memblock: double free (block inUse=%d, freeing %d)", p.b.inUse, p.n))
		}
		p.b.inUse -= p.n
		c.used -= p.n
		if p.b.list == onExhausted {
			c.exhausted.remove(p.b)
			c.avail.pushHead(p.b, onAvail)
		}
	}
}

// Shrink releases enough entirely free blocks to give back the requested
// number of pages (rounded up to whole blocks). Blocks are scanned from the
// tail of the available list, where free blocks accumulate. If not enough
// free blocks exist the set-aside blocks are reintegrated unchanged and
// ErrShrinkDenied is returned. On success it returns the pages released.
func (c *Chain) Shrink(pages int) (int, error) {
	nb := blocksFor(pages)
	if nb == 0 {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// Scan from the tail, setting aside freeable blocks.
	var setAside []*block
	for b := c.avail.tail; b != nil && len(setAside) < nb; b = b.prev {
		if b.inUse == 0 {
			setAside = append(setAside, b)
		}
	}
	if len(setAside) < nb {
		// Reintegrate: nothing was unlinked yet, so the chain is unchanged.
		return 0, ErrShrinkDenied
	}
	for _, b := range setAside {
		c.avail.remove(b)
	}
	return nb * BlockPages, nil
}

// ShrinkBest releases up to the requested pages, freeing as many entirely
// free tail blocks as it can find. Unlike Shrink it never fails; it returns
// the pages actually released (possibly zero). The asynchronous δreduce path
// uses this: the tuner asks for 5% and takes whatever is truly free.
func (c *Chain) ShrinkBest(pages int) int {
	nb := blocksFor(pages)
	if nb == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	freed := 0
	for b := c.avail.tail; b != nil && freed < nb; {
		prev := b.prev
		if b.inUse == 0 {
			c.avail.remove(b)
			freed++
		}
		b = prev
	}
	return freed * BlockPages
}

func (c *Chain) freeLocked() int {
	return c.capacityLocked() - c.used
}

func (c *Chain) capacityLocked() int {
	return (c.avail.n + c.exhausted.n) * StructsPerBlock
}

// Blocks returns the total number of blocks in the chain.
func (c *Chain) Blocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.avail.n + c.exhausted.n
}

// Pages returns the chain size in 4 KB pages.
func (c *Chain) Pages() int {
	return c.Blocks() * BlockPages
}

// Capacity returns the total number of lock structures the chain can hold.
func (c *Chain) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacityLocked()
}

// Used returns the number of lock structures currently allocated.
func (c *Chain) Used() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// FreeStructs returns the number of unallocated lock structures.
func (c *Chain) FreeStructs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freeLocked()
}

// FreeFraction returns the fraction of lock structures that are allocated
// but unused — the quantity the tuner holds between minFreeLockMemory and
// maxFreeLockMemory. An empty chain reports 0.
func (c *Chain) FreeFraction() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	cap := c.capacityLocked()
	if cap == 0 {
		return 0
	}
	return float64(cap-c.used) / float64(cap)
}

// WhollyFreeBlocks returns the number of blocks with no structures in use —
// the candidates for shrinking.
func (c *Chain) WhollyFreeBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for b := c.avail.head; b != nil; b = b.next {
		if b.inUse == 0 {
			n++
		}
	}
	return n
}

// UsedPages returns the lock-structure usage expressed in whole 4 KB pages,
// rounded up. This is the "used lock memory" figure the tuner works with.
func (c *Chain) UsedPages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.used == 0 {
		return 0
	}
	return (c.used + StructsPerPage - 1) / StructsPerPage
}

// Requests returns the cumulative number of Alloc calls — the paper's
// "requests for new lock structures", which clocks the recomputation of
// lockPercentPerApplication.
func (c *Chain) Requests() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests
}

// checkInvariants verifies internal consistency; used by tests.
func (c *Chain) checkInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	used := 0
	for b := c.avail.head; b != nil; b = b.next {
		if b.list != onAvail {
			return errors.New("block on avail list with wrong tag")
		}
		if b.inUse >= StructsPerBlock {
			return errors.New("fully used block on avail list")
		}
		used += b.inUse
	}
	for b := c.exhausted.head; b != nil; b = b.next {
		if b.list != onExhausted {
			return errors.New("block on exhausted list with wrong tag")
		}
		if b.inUse != StructsPerBlock {
			return errors.New("non-full block on exhausted list")
		}
		used += b.inUse
	}
	if used != c.used {
		return fmt.Errorf("used mismatch: sum=%d tracked=%d", used, c.used)
	}
	return nil
}
