package memblock

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestConstantsMatchPaper(t *testing.T) {
	if BlockBytes != 128*1024 {
		t.Fatalf("block size = %d, want 128 KB", BlockBytes)
	}
	if BlockPages != 32 {
		t.Fatalf("block pages = %d, want 32", BlockPages)
	}
	// "Each 128 KB memory block is enough memory to store approximately
	// 2000 locks."
	if StructsPerBlock != 2048 {
		t.Fatalf("structs per block = %d, want 2048", StructsPerBlock)
	}
	if StructsPerPage != 64 {
		t.Fatalf("structs per page = %d, want 64", StructsPerPage)
	}
}

func TestNewRoundsUpToBlocks(t *testing.T) {
	for _, tc := range []struct{ pages, wantBlocks int }{
		{0, 0}, {1, 1}, {32, 1}, {33, 2}, {100, 4}, {128, 4},
	} {
		c := New(tc.pages)
		if got := c.Blocks(); got != tc.wantBlocks {
			t.Errorf("New(%d).Blocks() = %d, want %d", tc.pages, got, tc.wantBlocks)
		}
		if got := c.Pages(); got != tc.wantBlocks*BlockPages {
			t.Errorf("New(%d).Pages() = %d, want %d", tc.pages, got, tc.wantBlocks*BlockPages)
		}
	}
}

func TestAllocAndFreeRoundTrip(t *testing.T) {
	c := New(32) // one block
	h, err := c.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Structs(); got != 100 {
		t.Fatalf("handle structs = %d, want 100", got)
	}
	if got := c.Used(); got != 100 {
		t.Fatalf("used = %d, want 100", got)
	}
	if got := c.FreeStructs(); got != StructsPerBlock-100 {
		t.Fatalf("free = %d, want %d", got, StructsPerBlock-100)
	}
	c.Free(h)
	if got := c.Used(); got != 0 {
		t.Fatalf("used after free = %d, want 0", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocInvalidSize(t *testing.T) {
	c := New(32)
	if _, err := c.Alloc(0); err == nil {
		t.Fatal("Alloc(0) must fail")
	}
	if _, err := c.Alloc(-5); err == nil {
		t.Fatal("Alloc(-5) must fail")
	}
}

func TestAllocExhaustionFailsCleanly(t *testing.T) {
	c := New(32)
	if _, err := c.Alloc(StructsPerBlock); err != nil {
		t.Fatal(err)
	}
	_, err := c.Alloc(1)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	// A failed allocation must not leak partial allocations.
	if got := c.Used(); got != StructsPerBlock {
		t.Fatalf("used = %d, want %d", got, StructsPerBlock)
	}
}

func TestAllocSpansBlocks(t *testing.T) {
	c := New(64) // two blocks
	h, err := c.Alloc(StructsPerBlock + 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.allParts()) != 2 {
		t.Fatalf("allocation spanning blocks has %d parts, want 2", len(h.allParts()))
	}
	if got := c.Used(); got != StructsPerBlock+10 {
		t.Fatalf("used = %d", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHeadReuse reproduces the behaviour described in section 2.2: after
// block A is exhausted and block B becomes the head, freeing structures from
// A returns A to the head so the next request is satisfied from A again.
func TestHeadReuse(t *testing.T) {
	c := New(64) // blocks A, B
	hA, err := c.Alloc(StructsPerBlock)
	if err != nil {
		t.Fatal(err)
	}
	// A is exhausted; next allocation comes from B.
	hB, err := c.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if hB.allParts()[0].b == hA.allParts()[0].b {
		t.Fatal("allocation after exhaustion should come from block B")
	}
	// Free A's structures: A returns to the head.
	c.Free(hA)
	hA2, err := c.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	if hA2.allParts()[0].b != hA.allParts()[0].b {
		t.Fatal("after freeing, new requests must be satisfied from block A again")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTailBlocksStayFree verifies the property the paper relies on for cheap
// shrinking: with demand at half of capacity, blocks toward the tail remain
// entirely free.
func TestTailBlocksStayFree(t *testing.T) {
	c := New(10 * 32) // ten blocks
	var handles []Handle
	// Steady churn using only ~half the capacity.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if len(handles) > 0 && (c.Used() > 5*StructsPerBlock || rng.Intn(2) == 0) {
			k := rng.Intn(len(handles))
			c.Free(handles[k])
			handles = append(handles[:k], handles[k+1:]...)
		} else {
			h, err := c.Alloc(1 + rng.Intn(64))
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
	}
	if got := c.WhollyFreeBlocks(); got < 3 {
		t.Fatalf("wholly free blocks = %d, want >= 3 with half-capacity demand", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkSucceedsWithFreeTail(t *testing.T) {
	c := New(4 * 32)
	h, err := c.Alloc(100) // head block partially used
	if err != nil {
		t.Fatal(err)
	}
	freed, err := c.Shrink(2 * 32)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 2*BlockPages {
		t.Fatalf("freed = %d pages, want %d", freed, 2*BlockPages)
	}
	if got := c.Blocks(); got != 2 {
		t.Fatalf("blocks after shrink = %d, want 2", got)
	}
	c.Free(h)
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkDeniedReintegrates(t *testing.T) {
	c := New(3 * 32)
	// Pin one structure in every block so none is entirely free.
	var handles []Handle
	for i := 0; i < 3; i++ {
		h, err := c.Alloc(StructsPerBlock - 1) // leaves 1 free, stays on avail
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		h2, err := c.Alloc(1) // fills the block, moves it to exhausted
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h2)
	}
	// Free one structure per block so each block is partially used again.
	c.Free(handles[1])
	c.Free(handles[3])
	c.Free(handles[5])

	_, err := c.Shrink(32)
	if !errors.Is(err, ErrShrinkDenied) {
		t.Fatalf("err = %v, want ErrShrinkDenied", err)
	}
	// The failed request must leave the chain unchanged.
	if got := c.Blocks(); got != 3 {
		t.Fatalf("blocks after denied shrink = %d, want 3", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkBestTakesWhatItCan(t *testing.T) {
	c := New(4 * 32)
	h, err := c.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	// Ask for all four blocks; three are entirely free.
	freed := c.ShrinkBest(4 * 32)
	if freed != 3*BlockPages {
		t.Fatalf("freed = %d pages, want %d", freed, 3*BlockPages)
	}
	if got := c.Blocks(); got != 1 {
		t.Fatalf("blocks = %d, want 1", got)
	}
	c.Free(h)
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkNeverFreesLiveBlock(t *testing.T) {
	c := New(2 * 32)
	h, err := c.Alloc(2*StructsPerBlock - 1) // both blocks hold live structures
	if err != nil {
		t.Fatal(err)
	}
	if freed := c.ShrinkBest(2 * 32); freed != 0 {
		t.Fatalf("ShrinkBest freed %d pages from live blocks", freed)
	}
	c.Free(h)
}

func TestGrowAddsToTail(t *testing.T) {
	c := New(32)
	h, err := c.Alloc(StructsPerBlock / 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Grow(32)
	// The next allocation must still come from the original (head) block.
	h2, err := c.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if h2.allParts()[0].b != h.allParts()[0].b {
		t.Fatal("growth must append to the tail; head allocation order changed")
	}
}

func TestFreeFraction(t *testing.T) {
	c := New(2 * 32)
	if got := c.FreeFraction(); got != 1.0 {
		t.Fatalf("empty chain free fraction = %g, want 1", got)
	}
	if _, err := c.Alloc(StructsPerBlock); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeFraction(); got != 0.5 {
		t.Fatalf("free fraction = %g, want 0.5", got)
	}
	empty := &Chain{}
	if got := empty.FreeFraction(); got != 0 {
		t.Fatalf("zero-capacity free fraction = %g, want 0", got)
	}
}

func TestUsedPagesRoundsUp(t *testing.T) {
	c := New(32)
	if got := c.UsedPages(); got != 0 {
		t.Fatalf("UsedPages empty = %d, want 0", got)
	}
	if _, err := c.Alloc(1); err != nil {
		t.Fatal(err)
	}
	if got := c.UsedPages(); got != 1 {
		t.Fatalf("UsedPages(1 struct) = %d, want 1", got)
	}
	if _, err := c.Alloc(StructsPerPage); err != nil {
		t.Fatal(err)
	}
	if got := c.UsedPages(); got != 2 {
		t.Fatalf("UsedPages(65 structs) = %d, want 2", got)
	}
}

func TestRequestsCounter(t *testing.T) {
	c := New(32)
	for i := 0; i < 5; i++ {
		if _, err := c.Alloc(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Alloc(StructsPerBlock); err == nil {
		t.Fatal("expected failure")
	}
	// Failed allocations still count as requests.
	if got := c.Requests(); got != 6 {
		t.Fatalf("requests = %d, want 6", got)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	c := New(32)
	h, err := c.Alloc(StructsPerBlock) // whole block: double free must underflow
	if err != nil {
		t.Fatal(err)
	}
	c.Free(h)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	c.Free(h)
}

func TestZeroHandleFreeIsNoop(t *testing.T) {
	c := New(32)
	c.Free(Handle{}) // must not panic or change state
	if got := c.Used(); got != 0 {
		t.Fatalf("used = %d", got)
	}
}

// Property: for any sequence of allocs and frees, used+free == capacity and
// the invariant checker passes.
func TestQuickConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New(8 * 32)
		var handles []Handle
		for _, op := range ops {
			if op%2 == 0 || len(handles) == 0 {
				n := int(op%200) + 1
				h, err := c.Alloc(n)
				if err == nil {
					handles = append(handles, h)
				}
			} else {
				k := int(op) % len(handles)
				c.Free(handles[k])
				handles = append(handles[:k], handles[k+1:]...)
			}
			if c.Used()+c.FreeStructs() != c.Capacity() {
				return false
			}
			if c.checkInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: capacity always equals 2048 × blocks, through grows and shrinks.
func TestQuickCapacityFormula(t *testing.T) {
	f := func(grows []uint8) bool {
		c := New(0)
		for _, g := range grows {
			if g%3 == 0 {
				c.ShrinkBest(int(g) * 4)
			} else {
				c.Grow(int(g))
			}
			if c.Capacity() != c.Blocks()*StructsPerBlock {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	c := New(64 * 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var handles []Handle
			for i := 0; i < 500; i++ {
				if rng.Intn(2) == 0 && len(handles) > 0 {
					k := rng.Intn(len(handles))
					c.Free(handles[k])
					handles = append(handles[:k], handles[k+1:]...)
				} else {
					h, err := c.Alloc(1 + rng.Intn(50))
					if err == nil {
						handles = append(handles, h)
					}
				}
			}
			for _, h := range handles {
				c.Free(h)
			}
		}(int64(g))
	}
	wg.Wait()
	if got := c.Used(); got != 0 {
		t.Fatalf("used after concurrent churn = %d, want 0", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
