package memblock

import "testing"

// FuzzChainOps replays an arbitrary operation tape against the block chain
// and checks conservation and list invariants after every step. The opcode
// byte selects alloc/free/grow/shrink; the payload sizes come from the next
// byte.
func FuzzChainOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 2, 32, 3, 32})
	f.Add([]byte{0, 255, 0, 255, 1, 0, 1, 1, 3, 64})

	f.Fuzz(func(t *testing.T, tape []byte) {
		c := New(4 * BlockPages)
		var handles []Handle
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], int(tape[i+1])
			switch op % 4 {
			case 0: // alloc 1..256 structs
				if h, err := c.Alloc(arg + 1); err == nil {
					handles = append(handles, h)
				}
			case 1: // free a held handle
				if len(handles) > 0 {
					k := arg % len(handles)
					c.Free(handles[k])
					handles = append(handles[:k], handles[k+1:]...)
				}
			case 2: // grow
				if c.Blocks() < 64 {
					c.Grow(arg)
				}
			case 3: // shrink (best effort)
				c.ShrinkBest(arg)
			}
			if c.Used()+c.FreeStructs() != c.Capacity() {
				t.Fatalf("step %d: conservation violated", i)
			}
			if c.Capacity() != c.Blocks()*StructsPerBlock {
				t.Fatalf("step %d: capacity formula violated", i)
			}
			if err := c.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	})
}
