package repro

// BenchmarkObsOverhead measures what the always-on observability layer
// costs on the engine's hot path. It runs the BenchmarkEngineThroughput
// workload (detector on — the steady-state production configuration) twice
// with identical iteration counts: once with wall-clock sampling disabled
// (ObsSampleStride = -1: no hold/admission sampling; the engine-clock
// lock-wait histogram still records, as it always does) and once with the
// default 1/64 stride. The acceptance bound is an overhead below 3% of
// commits/sec.
//
// Set BENCH_JSON=path (make bench-obs uses BENCH_OBS_OVERHEAD.json) to
// append one comparison record per goroutine count:
//
//	{"bench":"ObsOverhead","goroutines":16,
//	 "commits_per_sec_obs_min":..., "commits_per_sec_obs_on":...,
//	 "overhead_pct":..., "waits_recorded":..., "grants":...}

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/lockmgr"
	"repro/internal/storage"
)

type obsRecord struct {
	Bench            string  `json:"bench"`
	Goroutines       int     `json:"goroutines"`
	CommitsPerSecMin float64 `json:"commits_per_sec_obs_min"`
	CommitsPerSecOn  float64 `json:"commits_per_sec_obs_on"`
	OverheadPct      float64 `json:"overhead_pct"`
	WaitsRecorded    uint64  `json:"waits_recorded"`
	Grants           int64   `json:"grants"`
}

func emitObsJSON(b *testing.B, rec obsRecord) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		return
	}
	// Truncate rather than append: the benchmark framework re-runs the body
	// while calibrating b.N, and only the final (largest) run is the
	// evidence worth keeping.
	f, err := os.OpenFile(path, os.O_TRUNC|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		b.Logf("BENCH_JSON: %v", err)
		return
	}
	defer f.Close()
	if err := json.NewEncoder(f).Encode(rec); err != nil {
		b.Logf("BENCH_JSON: %v", err)
	}
}

// obsWorkloadCPS runs the engine-throughput transaction mix (6 private X
// row locks, 2 shared S locks, 1 contended hot-row X lock per commit) on g
// goroutines with the control plane at simulator cadence, and returns
// commits/sec plus end-state counters.
func obsWorkloadCPS(b *testing.B, g, iters, stride int) (cps float64, waits uint64, grants int64) {
	const (
		updatesPer  = 6
		readsPer    = 2
		hotRows     = 8
		tickCommits = 50
		detectEvery = 5
	)
	db, err := engine.Open(engine.Config{
		LockTimeout:     10 * time.Second,
		ObsSampleStride: stride,
	})
	if err != nil {
		b.Fatal(err)
	}
	cat := db.Catalog()
	stock := cat.ByName("stock")
	item := cat.ByName("item")
	wh := cat.ByName("warehouse")
	if stock == nil || item == nil || wh == nil {
		b.Fatal("catalog missing stock/item/warehouse tables")
	}

	stop := make(chan struct{})
	var commits atomic.Int64
	var passes int64
	var cpWG sync.WaitGroup
	cpWG.Add(1)
	go controlPlane(db, &commits, tickCommits, detectEvery, stop, &passes, &cpWG)

	ctx := context.Background()
	perG := iters/g + 1
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn := db.Connect()
			defer conn.Close()
			base := uint64(id) * 1 << 20
			for n := 0; n < perG; n++ {
				t := conn.Begin()
				off := base + uint64(n%4096)*16
				okTx := true
				for u := 0; u < updatesPer && okTx; u++ {
					if err := t.LockRow(ctx, storage.TableID(stock.ID), off+uint64(u), lockmgr.ModeX); err != nil {
						b.Error(err)
						okTx = false
					}
				}
				for r := 0; r < readsPer && okTx; r++ {
					if err := t.LockRow(ctx, storage.TableID(item.ID), uint64((n*readsPer+r)%1000), lockmgr.ModeS); err != nil {
						b.Error(err)
						okTx = false
					}
				}
				if okTx {
					if err := t.LockRow(ctx, storage.TableID(wh.ID), uint64((n+id)%hotRows), lockmgr.ModeX); err != nil {
						b.Error(err)
						okTx = false
					}
				}
				t.Commit()
				commits.Add(1)
				if !okTx {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(stop)
	cpWG.Wait()

	done := int64(g) * int64(perG)
	stats := db.Locks().Stats()
	return float64(done) / elapsed.Seconds(), db.Locks().WaitHist().Snapshot().Total, stats.Grants
}

func BenchmarkObsOverhead(b *testing.B) {
	for _, g := range []int{16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			// Same iteration count through both configurations so the
			// comparison is work-for-work, not time-for-time.
			b.ResetTimer()
			cpsMin, _, _ := obsWorkloadCPS(b, g, b.N, -1)
			cpsOn, waits, grants := obsWorkloadCPS(b, g, b.N, 0)
			b.StopTimer()

			overhead := (cpsMin - cpsOn) / cpsMin * 100
			b.ReportMetric(cpsMin, "commits/sec-obs-min")
			b.ReportMetric(cpsOn, "commits/sec-obs-on")
			b.ReportMetric(overhead, "overhead-%")
			emitObsJSON(b, obsRecord{
				Bench:            "ObsOverhead",
				Goroutines:       g,
				CommitsPerSecMin: cpsMin,
				CommitsPerSecOn:  cpsOn,
				OverheadPct:      overhead,
				WaitsRecorded:    waits,
				Grants:           grants,
			})
		})
	}
}
